package aerodrome

import (
	"bufio"
	"io"
	"os"
	"runtime"
	"sync"

	"aerodrome/internal/pipeline"
	"aerodrome/internal/rapidio"
)

// CheckReaderPipelined is CheckSTD with parsing pipelined on a separate
// goroutine: a producer fills pooled event batches from the STD log and
// hands them to the checker through a bounded channel, so tokenization
// overlaps vector-clock work. The verdict, violation index and event
// count are identical to CheckSTD on the same input — the pipeline is an
// ingestion optimization, not a semantic variant — which the differential
// test suite enforces across the golden corpus and fuzz seeds.
func CheckReaderPipelined(r io.Reader, a Algorithm) (*Report, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	v, n, err := pipeline.Run(eng, rapidio.NewReader(r), pipeline.Config{})
	if err != nil {
		return nil, err
	}
	return &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}, nil
}

// CheckBinaryReaderPipelined is CheckReaderPipelined for the compact
// binary ("ADB1") trace format.
func CheckBinaryReaderPipelined(r io.Reader, a Algorithm) (*Report, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	v, n, err := pipeline.Run(eng, rapidio.NewBinaryReader(r), pipeline.Config{})
	if err != nil {
		return nil, err
	}
	return &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}, nil
}

// FileError is the typed per-file error of a CheckFilesParallel run: it
// names the file and wraps the underlying failure (open failure, parse
// error), so batch callers — the CLI's -parallel mode, a service's batch
// endpoint — can both render the path and errors.Is/As into the cause.
type FileError struct {
	Path string
	Err  error
}

// Error implements error.
func (e *FileError) Error() string { return e.Path + ": " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is and errors.As.
func (e *FileError) Unwrap() error { return e.Err }

// FileReport is the outcome of checking one file of a CheckFilesParallel
// run: the report, or the *FileError that prevented one.
type FileReport struct {
	Path   string
	Report *Report
	Err    error
}

// CheckFilesParallel checks the given trace files concurrently, one
// independent engine (and one parse/check pipeline) per trace, using up
// to workers goroutines (GOMAXPROCS when ≤0). The format of each file is
// sniffed from its first bytes (binary "ADB1" magic vs. STD text).
// Results are returned in input order regardless of completion order;
// per-file failures land in the corresponding FileReport as a *FileError
// rather than aborting the batch. The only call-level error is an unknown
// algorithm. Each file's verdict and violation index are identical to
// checking it alone with CheckSTD.
func CheckFilesParallel(paths []string, a Algorithm, workers int) ([]FileReport, error) {
	if _, err := newEngine(a); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	out := make([]FileReport, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep, err := checkFilePipelined(paths[i], a)
				if err != nil {
					err = &FileError{Path: paths[i], Err: err}
				}
				out[i] = FileReport{Path: paths[i], Report: rep, Err: err}
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// checkFilePipelined opens one trace file, sniffs its format and runs the
// pipelined checker over it.
func checkFilePipelined(path string, a Algorithm) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, _ := br.Peek(4)
	if rapidio.IsBinary(head) {
		return CheckBinaryReaderPipelined(br, a)
	}
	return CheckReaderPipelined(br, a)
}

// IncrementalChecker checks a trace that arrives in byte chunks — the
// engine behind one aerodromed session, and the library hook for any
// front end that receives a trace stream over a wire rather than from a
// file. The format (STD text or ADB1 binary) is sniffed from the first
// bytes, exactly like the one-shot /v1/check endpoint, and chunk
// boundaries need not align with line or record boundaries. It is not
// safe for concurrent use; callers serialize (the chunk order defines the
// trace).
type IncrementalChecker struct {
	f      *pipeline.Feeder
	stages pipeline.StageStats
	algo   string
	viol   *Violation
	set    []AnalysisKind
	extras []analysisSink
}

// NewIncrementalChecker returns an incremental checker using the given
// algorithm (Optimized when empty), running the default analysis set
// (atomicity only).
func NewIncrementalChecker(a Algorithm) (*IncrementalChecker, error) {
	return NewIncrementalCheckerAnalyses(a, nil)
}

// NewIncrementalCheckerAnalyses is NewIncrementalChecker with an analysis
// set: every analysis consumes the same chunk stream from one parse, each
// latching at its own first violation. The atomicity verdict (and the
// legacy Violation/Processed surface) is byte-identical to a checker
// running atomicity alone; per-analysis verdicts are available through
// Analyses and in the final Report. The stream keeps being parsed until
// every requested analysis has latched, so a chunk fed after the
// atomicity violation can still advance the race analysis.
func NewIncrementalCheckerAnalyses(a Algorithm, analyses []AnalysisKind) (*IncrementalChecker, error) {
	set, err := NormalizeAnalyses(analyses)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	c := &IncrementalChecker{algo: eng.Name(), set: set}
	c.extras = newAnalysisSinks(set)
	c.f = pipeline.NewFeederSinks(eng, pipelineSinks(c.extras), pipeline.Config{Stats: &c.stages})
	return c, nil
}

// AnalysisSet returns the checker's effective analysis set.
func (c *IncrementalChecker) AnalysisSet() []AnalysisKind {
	out := make([]AnalysisKind, len(c.set))
	copy(out, c.set)
	return out
}

// Analyses returns a point-in-time per-analysis view: verdict so far,
// events consumed so far. The atomicity entry matches Violation and
// Processed exactly.
func (c *IncrementalChecker) Analyses() []AnalysisReport {
	return analysisReports(c.set, c.extras, func() AnalysisReport {
		v := c.Violation()
		return AnalysisReport{
			Analysis:  string(AnalysisAtomicity),
			Clean:     v == nil,
			Violation: v,
			Events:    c.f.Processed(),
			Algorithm: c.algo,
		}
	})
}

// Feed appends one chunk of the stream and processes every event whose
// line (or binary record) is now complete. It returns the latched violation, if any, and the
// terminal parse error if the stream is malformed. After a violation,
// further chunks are accepted and discarded — the verdict, violation index
// and event count equal running CheckSTD over the concatenated chunks.
func (c *IncrementalChecker) Feed(chunk []byte) (*Violation, error) {
	v, err := c.f.Feed(chunk)
	if v != nil && c.viol == nil {
		c.viol = fromInternal(v)
	}
	return c.viol, err
}

// Close marks the end of the stream (parsing a final unterminated line)
// and returns the final Report. The error is the terminal parse error, if
// any. Close is idempotent.
func (c *IncrementalChecker) Close() (*Report, error) {
	v, n, err := c.f.Close()
	if v != nil && c.viol == nil {
		c.viol = fromInternal(v)
	}
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Serializable: c.viol == nil,
		Violation:    c.viol,
		Events:       n,
		Algorithm:    c.algo,
	}
	if !defaultAnalysisSet(c.set) {
		rep.Analyses = analysisReports(c.set, c.extras, rep.atomicityEntry)
	}
	return rep, nil
}

// Violation returns the latched violation, if any.
func (c *IncrementalChecker) Violation() *Violation {
	if v := c.f.Violation(); v != nil && c.viol == nil {
		c.viol = fromInternal(v)
	}
	return c.viol
}

// Done reports that every requested analysis has latched a violation, so
// further chunks cannot change any verdict. With the default analysis set
// this is simply "a violation latched"; with extra analyses it requires
// each of them to have latched too.
func (c *IncrementalChecker) Done() bool { return c.f.Done() }

// Processed returns the number of events consumed so far.
func (c *IncrementalChecker) Processed() int64 { return c.f.Processed() }

// Algorithm returns the name of the engine backing this checker.
func (c *IncrementalChecker) Algorithm() string { return c.algo }
