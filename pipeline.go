package aerodrome

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"aerodrome/internal/pipeline"
	"aerodrome/internal/rapidio"
)

// CheckReaderPipelined is CheckSTD with parsing pipelined on a separate
// goroutine: a producer fills pooled event batches from the STD log and
// hands them to the checker through a bounded channel, so tokenization
// overlaps vector-clock work. The verdict, violation index and event
// count are identical to CheckSTD on the same input — the pipeline is an
// ingestion optimization, not a semantic variant — which the differential
// test suite enforces across the golden corpus and fuzz seeds.
func CheckReaderPipelined(r io.Reader, a Algorithm) (*Report, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	v, n, err := pipeline.Run(eng, rapidio.NewReader(r), pipeline.Config{})
	if err != nil {
		return nil, err
	}
	return &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}, nil
}

// CheckBinaryReaderPipelined is CheckReaderPipelined for the compact
// binary ("ADB1") trace format.
func CheckBinaryReaderPipelined(r io.Reader, a Algorithm) (*Report, error) {
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	v, n, err := pipeline.Run(eng, rapidio.NewBinaryReader(r), pipeline.Config{})
	if err != nil {
		return nil, err
	}
	return &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}, nil
}

// FileReport is the outcome of checking one file of a CheckFilesParallel
// run: the report, or the error that prevented one (open failure, parse
// error).
type FileReport struct {
	Path   string
	Report *Report
	Err    error
}

// CheckFilesParallel checks the given trace files concurrently, one
// independent engine (and one parse/check pipeline) per trace, using up
// to workers goroutines (GOMAXPROCS when ≤0). The format of each file is
// sniffed from its first bytes (binary "ADB1" magic vs. STD text).
// Results are returned in input order; per-file failures land in the
// corresponding FileReport rather than aborting the batch. The only
// call-level error is an unknown algorithm. Each file's verdict and
// violation index are identical to checking it alone with CheckSTD.
func CheckFilesParallel(paths []string, a Algorithm, workers int) ([]FileReport, error) {
	if _, err := newEngine(a); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	out := make([]FileReport, len(paths))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep, err := checkFilePipelined(paths[i], a)
				out[i] = FileReport{Path: paths[i], Report: rep, Err: err}
			}
		}()
	}
	for i := range paths {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// binaryMagic mirrors rapidio's "ADB1" header for format sniffing.
var binaryMagic = []byte{'A', 'D', 'B', '1'}

// checkFilePipelined opens one trace file, sniffs its format and runs the
// pipelined checker over it.
func checkFilePipelined(path string, a Algorithm) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, _ := br.Peek(len(binaryMagic))
	var rep *Report
	if bytes.Equal(head, binaryMagic) {
		rep, err = CheckBinaryReaderPipelined(br, a)
	} else {
		rep, err = CheckReaderPipelined(br, a)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
