package aerodrome_test

// Concurrency-differential suite for the pipelined and parallel checkers:
// introducing goroutines into a codebase whose correctness story is
// sequential replay is only sound if the concurrent paths are
// observationally identical to the sequential one. Every trace in the
// golden corpus, the paper's ρ1–ρ4 traces and the byte-program fuzz seeds
// is checked three ways — sequential CheckSTD, pipelined
// CheckReaderPipelined, parallel CheckFilesParallel — and the reports must
// agree byte for byte (verdict, violation index, check, thread, event
// count). CI runs this under -race; the fuzz target extends the same
// comparison to mutated byte programs.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aerodrome"
	"aerodrome/internal/core"
	"aerodrome/internal/pipeline"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// pipelineAlgos are the algorithms the differential suite replays. The
// pipeline is engine-agnostic; one engine per detection-point class plus
// the adaptive representations keeps the suite fast while covering every
// dispatch shape.
var pipelineAlgos = []aerodrome.Algorithm{
	aerodrome.Basic, aerodrome.Optimized, aerodrome.OptimizedHybrid, aerodrome.Auto,
}

// requireSameReport fails unless the two reports are observationally
// identical.
func requireSameReport(t *testing.T, ctx string, seq, got *aerodrome.Report) {
	t.Helper()
	if seq.Serializable != got.Serializable {
		t.Fatalf("%s: verdict serializable=%v, want %v", ctx, got.Serializable, seq.Serializable)
	}
	if seq.Events != got.Events {
		t.Fatalf("%s: events %d, want %d", ctx, got.Events, seq.Events)
	}
	if seq.Algorithm != got.Algorithm {
		t.Fatalf("%s: algorithm %q, want %q", ctx, got.Algorithm, seq.Algorithm)
	}
	if (seq.Violation == nil) != (got.Violation == nil) {
		t.Fatalf("%s: violation %v, want %v", ctx, got.Violation, seq.Violation)
	}
	if seq.Violation != nil {
		a, b := seq.Violation, got.Violation
		if a.EventIndex != b.EventIndex || a.Check != b.Check || a.Thread != b.Thread {
			t.Fatalf("%s: violation (index %d, %s, t%d), want (index %d, %s, t%d)",
				ctx, b.EventIndex, b.Check, b.Thread, a.EventIndex, a.Check, a.Thread)
		}
	}
}

// assertPipelinedMatchesSequential checks one STD byte stream three ways.
func assertPipelinedMatchesSequential(t *testing.T, name string, std []byte, a aerodrome.Algorithm) {
	t.Helper()
	seq, err := aerodrome.CheckSTD(bytes.NewReader(std), a)
	if err != nil {
		t.Fatalf("%s/%s: sequential: %v", name, a, err)
	}
	piped, err := aerodrome.CheckReaderPipelined(bytes.NewReader(std), a)
	if err != nil {
		t.Fatalf("%s/%s: pipelined: %v", name, a, err)
	}
	requireSameReport(t, fmt.Sprintf("%s/%s pipelined", name, a), seq, piped)

	// Small batches force verdicts to land mid-batch and at boundaries.
	small, err := checkSTDPipelinedSmall(std, a)
	if err != nil {
		t.Fatalf("%s/%s: small-batch pipelined: %v", name, a, err)
	}
	requireSameReport(t, fmt.Sprintf("%s/%s small-batch", name, a), seq, small)
}

// newInternalEngine maps the public algorithm names this suite uses onto
// the internal constructors (the public package does not expose pipeline
// tuning knobs, so the small-batch run goes through internal/pipeline).
func newInternalEngine(a aerodrome.Algorithm) core.Engine {
	switch a {
	case aerodrome.Basic:
		return core.NewBasic()
	case aerodrome.OptimizedHybrid:
		return core.NewOptimizedHybrid()
	case aerodrome.Auto:
		return core.NewOptimizedAuto()
	default:
		return core.NewOptimized()
	}
}

// checkSTDPipelinedSmall is CheckReaderPipelined with a deliberately tiny
// batch size and depth, driven through the internal pipeline to shake out
// boundary conditions the default configuration would hide.
func checkSTDPipelinedSmall(std []byte, a aerodrome.Algorithm) (*aerodrome.Report, error) {
	eng := newInternalEngine(a)
	v, n, err := pipeline.Run(eng, rapidio.NewReader(bytes.NewReader(std)), pipeline.Config{BatchSize: 3, Depth: 2})
	if err != nil {
		return nil, err
	}
	rep := &aerodrome.Report{Serializable: v == nil, Events: n, Algorithm: eng.Name()}
	if v != nil {
		rep.Violation = &aerodrome.Violation{
			EventIndex: v.Index, Thread: int(v.ActiveThread),
			Check: v.Check.String(), Algorithm: v.Algorithm,
		}
	}
	return rep, nil
}

func goldenPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "golden", "*.std"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("golden corpus missing: %v (%d files)", err, len(paths))
	}
	return paths
}

func TestPipelinedMatchesSequentialOnGoldenCorpus(t *testing.T) {
	for _, path := range goldenPaths(t) {
		std, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertPipelinedMatchesSequential(t, filepath.Base(path), std, a)
		}
	}
}

func TestPipelinedMatchesSequentialOnPaperTraces(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"rho1", testutil.Rho1()},
		{"rho2", testutil.Rho2()},
		{"rho3", testutil.Rho3()},
		{"rho4", testutil.Rho4()},
		{"phase-shift", testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
			Threads: 6, BurstRounds: 5, SteadyRounds: 25,
		})},
	} {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tc.tr); err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertPipelinedMatchesSequential(t, tc.name, std.Bytes(), a)
		}
	}
}

// TestPipelinedMatchesSequentialOnFuzzSeeds replays the byte-program fuzz
// seed set (the corpus FuzzPipelineDifferential starts from) through the
// three-way comparison.
func TestPipelinedMatchesSequentialOnFuzzSeeds(t *testing.T) {
	for i, seed := range pipelineFuzzSeedTraces() {
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, seed); err != nil {
			t.Fatal(err)
		}
		for _, a := range pipelineAlgos {
			assertPipelinedMatchesSequential(t, fmt.Sprintf("seed%d", i), std.Bytes(), a)
		}
	}
}

// TestParallelMatchesSequential checks the whole golden corpus through
// CheckFilesParallel and pins every file's report to its sequential
// counterpart, at several worker counts (1 = degenerate serial pool).
func TestParallelMatchesSequential(t *testing.T) {
	paths := goldenPaths(t)
	want := make([]*aerodrome.Report, len(paths))
	for i, path := range paths {
		std, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = aerodrome.CheckSTD(bytes.NewReader(std), aerodrome.Optimized)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 0} {
		reports, err := aerodrome.CheckFilesParallel(paths, aerodrome.Optimized, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != len(paths) {
			t.Fatalf("%d reports for %d paths", len(reports), len(paths))
		}
		for i, fr := range reports {
			if fr.Path != paths[i] {
				t.Fatalf("report %d out of order: %s, want %s", i, fr.Path, paths[i])
			}
			if fr.Err != nil {
				t.Fatalf("%s: %v", fr.Path, fr.Err)
			}
			requireSameReport(t, fmt.Sprintf("parallel(w=%d) %s", workers, filepath.Base(fr.Path)), want[i], fr.Report)
		}
	}
}

func TestCheckFilesParallelPerFileErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.std")
	if err := os.WriteFile(good, []byte("t0|begin|0\nt0|w(x)|0\nt0|end|0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.std")
	if err := os.WriteFile(bad, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.std")
	reports, err := aerodrome.CheckFilesParallel([]string{good, bad, missing}, aerodrome.Optimized, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Err != nil || reports[0].Report == nil || !reports[0].Report.Serializable {
		t.Fatalf("good file: %+v", reports[0])
	}
	if reports[1].Err == nil {
		t.Fatalf("parse error must surface per file: %+v", reports[1])
	}
	if reports[2].Err == nil {
		t.Fatalf("open error must surface per file: %+v", reports[2])
	}
	if _, err := aerodrome.CheckFilesParallel([]string{good}, "bogus", 1); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

// pipelineFuzzSeedTraces mirrors the engine fuzz corpus: the paper traces,
// the injected-violation workloads and the phase-shift shape.
func pipelineFuzzSeedTraces() []*trace.Trace {
	seeds := []*trace.Trace{
		testutil.Rho1(), testutil.Rho2(), testutil.Rho3(), testutil.Rho4(),
		testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{Threads: 5, BurstRounds: 4, SteadyRounds: 12}),
		testutil.ProducerConsumerTrace(testutil.ProducerConsumerOpts{Producers: 2, Consumers: 2, Rounds: 40, Slots: 4}),
		testutil.BarrierPhasesTrace(testutil.BarrierOpts{Threads: 6, Phases: 8, OpsPerTxn: 2}),
		testutil.LockConvoyTrace(testutil.LockConvoyOpts{Threads: 6, Rounds: 40, Nested: true}),
		testutil.QuotaThrashTrace(testutil.QuotaThrashOpts{Threads: 5, Bursts: 20, TxnsPerBurst: 3}),
	}
	for _, inj := range []workload.Violation{
		workload.ViolationCross, workload.ViolationDelayed, workload.ViolationLock,
	} {
		cfg := workload.Config{
			Name: "pipe-seed-" + string(inj), Threads: 6, Vars: 48, Locks: 8,
			Events: 400, OpsPerTxn: 3, Pattern: workload.PatternChain,
			Inject: inj, InjectAt: 0.7, TxnFraction: 0.5, Seed: 11,
		}
		seeds = append(seeds, trace.Collect(workload.New(cfg)))
	}
	return seeds
}

// FuzzPipelineDifferential decodes fuzz bytes into a well-formed trace
// (via the byte-program VM), renders it as an STD log, and requires the
// pipelined checker — default and tiny-batch configurations — to agree
// with the sequential checker event for event.
//
// Run long with:
//
//	go test -fuzz=FuzzPipelineDifferential .
func FuzzPipelineDifferential(f *testing.F) {
	for _, tr := range pipelineFuzzSeedTraces() {
		if enc := testutil.EncodeTrace(tr); enc != nil {
			f.Add(enc)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := testutil.TraceFromBytes(data)
		var std bytes.Buffer
		if err := rapidio.WriteTrace(&std, tr); err != nil {
			t.Fatal(err)
		}
		for _, a := range []aerodrome.Algorithm{aerodrome.Optimized, aerodrome.Auto} {
			assertPipelinedMatchesSequential(t, "fuzz", std.Bytes(), a)
		}
	})
}
