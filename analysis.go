package aerodrome

import (
	"fmt"
	"io"
	"strings"

	"aerodrome/internal/core"
	"aerodrome/internal/pipeline"
	"aerodrome/internal/race"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
)

// AnalysisKind names one analysis that can run over an ingested trace.
// The service's clock substrate computes the happens-before state every
// vector-clock analysis needs, so one parse and one event stream can
// drive several verdicts at once ("one parse, one clock substrate, N
// verdicts", ROADMAP item 4).
type AnalysisKind string

const (
	// AnalysisAtomicity is conflict-serializability checking — the
	// AeroDrome algorithms selected by Algorithm. It is the default
	// analysis and the one reported by the legacy top-level Report and
	// SessionView fields.
	AnalysisAtomicity AnalysisKind = "atomicity"
	// AnalysisHBRace is FastTrack-style happens-before data-race
	// detection (internal/race) on the same event stream.
	AnalysisHBRace AnalysisKind = "hbrace"
)

// AnalysisKinds lists all supported analyses.
func AnalysisKinds() []AnalysisKind {
	return []AnalysisKind{AnalysisAtomicity, AnalysisHBRace}
}

// validAnalysisNames renders the supported set for error messages.
func validAnalysisNames() string {
	names := make([]string, 0, len(AnalysisKinds()))
	for _, k := range AnalysisKinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// ParseAnalyses parses a comma-separated analysis list ("atomicity,hbrace")
// into a validated, deduplicated set preserving first-mention order. The
// empty string (and an empty list) selects the default set, just
// ["atomicity"]. Unknown names are rejected with the valid set listed.
func ParseAnalyses(s string) ([]AnalysisKind, error) {
	if strings.TrimSpace(s) == "" {
		return []AnalysisKind{AnalysisAtomicity}, nil
	}
	var set []AnalysisKind
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		set = append(set, AnalysisKind(name))
	}
	return NormalizeAnalyses(set)
}

// NormalizeAnalyses validates and deduplicates an analysis set, preserving
// first-mention order. An empty set selects the default ["atomicity"].
func NormalizeAnalyses(set []AnalysisKind) ([]AnalysisKind, error) {
	if len(set) == 0 {
		return []AnalysisKind{AnalysisAtomicity}, nil
	}
	seen := make(map[AnalysisKind]bool, len(set))
	out := make([]AnalysisKind, 0, len(set))
	for _, k := range set {
		switch k {
		case AnalysisAtomicity, AnalysisHBRace:
		default:
			return nil, fmt.Errorf("aerodrome: unknown analysis %q (valid: %s)", k, validAnalysisNames())
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}

// defaultAnalysisSet reports whether set is exactly the default
// ["atomicity"] — the case whose report and session wire formats must stay
// byte-identical to the single-analysis service.
func defaultAnalysisSet(set []AnalysisKind) bool {
	return len(set) == 1 && set[0] == AnalysisAtomicity
}

// AnalysisReport is one analysis' verdict within a multi-analysis Report
// or session view. The atomicity entry mirrors the legacy top-level
// fields exactly: same violation, same event count, same algorithm name.
type AnalysisReport struct {
	// Analysis names the analysis ("atomicity", "hbrace").
	Analysis string `json:"analysis"`
	// Clean is true iff the analysis found no violation: serializable for
	// atomicity, race-free for hbrace.
	Clean bool `json:"clean"`
	// Violation is non-nil iff not clean.
	Violation *Violation `json:"violation,omitempty"`
	// Events is the number of events this analysis consumed (each
	// analysis stops at its own first violation).
	Events int64 `json:"events"`
	// Algorithm names the engine or detector used.
	Algorithm string `json:"algorithm"`
}

// analysisSink is a non-atomicity analysis running over the shared event
// stream: a pipeline.Sink that can render its verdict as an
// AnalysisReport.
type analysisSink interface {
	pipeline.Sink
	kind() AnalysisKind
	analysisReport() AnalysisReport
}

// newAnalysisSinks builds the extra (non-atomicity) sinks for an analysis
// set, in set order. The atomicity analysis is carried by the core engine
// itself, not a sink.
func newAnalysisSinks(set []AnalysisKind) []analysisSink {
	var out []analysisSink
	for _, k := range set {
		if k == AnalysisHBRace {
			out = append(out, &raceSink{d: race.New()})
		}
	}
	return out
}

// pipelineSinks upcasts to the pipeline's Sink interface.
func pipelineSinks(extras []analysisSink) []pipeline.Sink {
	if len(extras) == 0 {
		return nil
	}
	out := make([]pipeline.Sink, len(extras))
	for i, s := range extras {
		out[i] = s
	}
	return out
}

// raceSink adapts the happens-before race detector to the analysis-sink
// surface.
type raceSink struct {
	d *race.Detector
}

func (s *raceSink) Process(e trace.Event) { s.d.Process(e) }
func (s *raceSink) Done() bool            { return s.d.Violation() != nil }
func (s *raceSink) kind() AnalysisKind    { return AnalysisHBRace }

func (s *raceSink) analysisReport() AnalysisReport {
	v := s.d.Violation()
	return AnalysisReport{
		Analysis:  string(AnalysisHBRace),
		Clean:     v == nil,
		Violation: raceFromInternal(v),
		Events:    s.d.Processed(),
		Algorithm: s.d.Name(),
	}
}

// raceFromInternal maps a race violation onto the public wire Violation.
func raceFromInternal(v *race.Violation) *Violation {
	if v == nil {
		return nil
	}
	target := int(v.Var)
	other := int(v.Other)
	return &Violation{
		EventIndex:  v.Index,
		Thread:      int(v.Thread),
		Check:       v.Check.String(),
		Algorithm:   v.Algorithm,
		Target:      &target,
		OtherThread: &other,
	}
}

// analysisReports assembles per-analysis reports in set order. atomicity
// builds the atomicity entry lazily (only when requested).
func analysisReports(set []AnalysisKind, extras []analysisSink, atomicity func() AnalysisReport) []AnalysisReport {
	out := make([]AnalysisReport, 0, len(set))
	next := 0
	for _, k := range set {
		if k == AnalysisAtomicity {
			out = append(out, atomicity())
			continue
		}
		out = append(out, extras[next].analysisReport())
		next++
	}
	return out
}

// CheckSTDAnalyses is CheckSTD running an analysis set over one parse of
// the trace. The top-level report fields always carry the atomicity
// verdict (the legacy wire format); per-analysis verdicts land in
// Report.Analyses unless the set is the default ["atomicity"], in which
// case the report is byte-identical to CheckSTD. Each analysis stops at
// its own first violation; the stream is consumed until every requested
// analysis has latched or the trace ends. A parse error positioned after
// the point where all analyses latched is not reported.
func CheckSTDAnalyses(r io.Reader, a Algorithm, analyses []AnalysisKind) (*Report, error) {
	set, err := NormalizeAnalyses(analyses)
	if err != nil {
		return nil, err
	}
	if defaultAnalysisSet(set) {
		return CheckSTD(r, a)
	}
	eng, err := newEngine(a)
	if err != nil {
		return nil, err
	}
	extras := newAnalysisSinks(set)
	viol, n, err := runMultiSequential(eng, extras, rapidio.NewReader(r))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Serializable: viol == nil,
		Violation:    fromInternal(viol),
		Events:       n,
		Algorithm:    eng.Name(),
	}
	rep.Analyses = analysisReports(set, extras, rep.atomicityEntry)
	return rep, nil
}

// atomicityEntry renders the report's legacy top-level fields as the
// atomicity AnalysisReport.
func (r *Report) atomicityEntry() AnalysisReport {
	return AnalysisReport{
		Analysis:  string(AnalysisAtomicity),
		Clean:     r.Serializable,
		Violation: r.Violation,
		Events:    r.Events,
		Algorithm: r.Algorithm,
	}
}

// sinksDone reports whether every extra analysis has latched.
func sinksDone(extras []analysisSink) bool {
	for _, s := range extras {
		if !s.Done() {
			return false
		}
	}
	return true
}

// runMultiSequential drives the engine and the extra sinks over one
// sequential event stream, stopping as soon as every analysis has latched
// (so a parse error in the discarded tail is never observed) or the
// stream ends. It mirrors core.Run exactly when extras is empty.
func runMultiSequential(eng core.Engine, extras []analysisSink, rd *rapidio.Reader) (*core.Violation, int64, error) {
	var viol *core.Violation
	for {
		if viol != nil && sinksDone(extras) {
			break
		}
		e, ok := rd.Next()
		if !ok {
			if err := rd.Err(); err != nil {
				return nil, 0, err
			}
			break
		}
		if viol == nil {
			viol = eng.Process(e)
		}
		for _, s := range extras {
			if !s.Done() {
				s.Process(e)
			}
		}
	}
	if viol == nil {
		viol = eng.Violation()
	}
	return viol, eng.Processed(), nil
}

// CheckReaderPipelinedAnalyses is CheckReaderPipelined running an analysis
// set over one parse, with the same report shape as CheckSTDAnalyses. The
// atomicity verdict, violation index and event count are identical to the
// single-analysis pipelined path (and therefore to CheckSTD).
func CheckReaderPipelinedAnalyses(r io.Reader, a Algorithm, analyses []AnalysisKind) (*Report, error) {
	rep, _, err := checkPipelinedStatsAnalyses(func() pipeline.BatchSource { return rapidio.NewReader(r) }, a, analyses)
	return rep, err
}

// CheckBinaryReaderPipelinedAnalyses is CheckReaderPipelinedAnalyses for
// the compact binary ("ADB1") trace format.
func CheckBinaryReaderPipelinedAnalyses(r io.Reader, a Algorithm, analyses []AnalysisKind) (*Report, error) {
	rep, _, err := checkPipelinedStatsAnalyses(func() pipeline.BatchSource { return rapidio.NewBinaryReader(r) }, a, analyses)
	return rep, err
}

// CheckReaderPipelinedStatsAnalyses is CheckReaderPipelinedAnalyses
// returning per-stage timings and engine introspection counters alongside
// the report (the aerodromed /v1/check backend).
func CheckReaderPipelinedStatsAnalyses(r io.Reader, a Algorithm, analyses []AnalysisKind) (*Report, CheckStats, error) {
	return checkPipelinedStatsAnalyses(func() pipeline.BatchSource { return rapidio.NewReader(r) }, a, analyses)
}

// CheckBinaryReaderPipelinedStatsAnalyses is the ADB1-format counterpart
// of CheckReaderPipelinedStatsAnalyses.
func CheckBinaryReaderPipelinedStatsAnalyses(r io.Reader, a Algorithm, analyses []AnalysisKind) (*Report, CheckStats, error) {
	return checkPipelinedStatsAnalyses(func() pipeline.BatchSource { return rapidio.NewBinaryReader(r) }, a, analyses)
}

func checkPipelinedStatsAnalyses(src func() pipeline.BatchSource, a Algorithm, analyses []AnalysisKind) (*Report, CheckStats, error) {
	set, err := NormalizeAnalyses(analyses)
	if err != nil {
		return nil, CheckStats{}, err
	}
	if defaultAnalysisSet(set) {
		return checkPipelinedStats(src(), a)
	}
	eng, err := newEngine(a)
	if err != nil {
		return nil, CheckStats{}, err
	}
	extras := newAnalysisSinks(set)
	var stages pipeline.StageStats
	v, n, err := pipeline.RunMulti(eng, pipelineSinks(extras), src(), pipeline.Config{Stats: &stages})
	if err != nil {
		return nil, CheckStats{}, err
	}
	cs := CheckStats{ParseTime: stages.ParseTime(), CheckTime: stages.CheckTime()}
	cs.Engine, cs.HasEngineStats = engineStatsOf(eng)
	rep := &Report{
		Serializable: v == nil,
		Violation:    fromInternal(v),
		Events:       n,
		Algorithm:    eng.Name(),
	}
	rep.Analyses = analysisReports(set, extras, rep.atomicityEntry)
	return rep, cs, nil
}
