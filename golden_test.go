package aerodrome_test

// Golden-trace regression corpus: small tracegen-produced STD logs checked
// in under testdata/golden, with expected verdict and first-violation
// snapshots, replayed end-to-end through internal/rapidio. Unlike the
// in-memory differential suites this pins the parser-to-engine path: a
// regression in STD tokenization, name interning or event mapping fails
// here even if every engine still agrees with every other.
//
// Regenerate the corpus and snapshots with:
//
//	go test -run TestGoldenTraces -update-golden .

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"aerodrome"
	"aerodrome/internal/core"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata/golden traces and expectation snapshots")

const goldenDir = "testdata/golden"

// goldenExpect is one trace's recorded outcome. Basic and ReadOpt agree on
// the exact violation event; the Optimized representations agree with each
// other and detect earlier or equal (lazy clocks never report later), so
// two snapshots cover all five engines.
type goldenExpect struct {
	Events         int64  `json:"events"`
	Violation      bool   `json:"violation"`
	BasicIndex     int64  `json:"basic_index,omitempty"`
	BasicCheck     string `json:"basic_check,omitempty"`
	OptimizedIndex int64  `json:"optimized_index,omitempty"`
	OptimizedCheck string `json:"optimized_check,omitempty"`
	// Happens-before race verdict for the same trace (the hbrace analysis,
	// PR 10). All race fields are additive and omitempty so the snapshot
	// format stays backward-compatible.
	Race       bool   `json:"race,omitempty"`
	RaceIndex  int64  `json:"race_index,omitempty"`
	RaceCheck  string `json:"race_check,omitempty"`
	RaceEvents int64  `json:"race_events,omitempty"`
}

func goldenConfigs() []workload.Config {
	var out []workload.Config
	for _, p := range []workload.Pattern{
		workload.PatternSharded, workload.PatternChain, workload.PatternHub,
		workload.PatternPhase, workload.PatternProducerConsumer,
		workload.PatternBarrier, workload.PatternConvoy, workload.PatternThrash,
	} {
		for _, inj := range []workload.Violation{
			workload.ViolationNone, workload.ViolationCross,
			workload.ViolationDelayed, workload.ViolationLock,
		} {
			out = append(out, workload.Config{
				Name: fmt.Sprintf("%s-%s", p, inj), Threads: 6, Vars: 64,
				Locks: 4, Events: 500, OpsPerTxn: 3, Pattern: p,
				Inject: inj, InjectAt: 0.7, TxnFraction: 0.5,
				AbsorbEvery: 4, Seed: 20260725,
			})
		}
	}
	return out
}

// goldenEngines returns the engines the corpus replays, split into the two
// detection-point classes.
func goldenEngines() (basicClass, optimizedClass []core.Algorithm) {
	return []core.Algorithm{core.AlgoBasic, core.AlgoReadOpt},
		[]core.Algorithm{core.AlgoOptimized, core.AlgoOptimizedTree, core.AlgoOptimizedHybrid, core.AlgoOptimizedAuto}
}

// replaySTDPipelined replays one golden trace through the public pipelined
// checker: the corpus pins the concurrent ingestion path to the same
// snapshots as the sequential one, so a pipeline regression (reordering,
// dropped batch, off-by-one latch) fails against recorded history even if
// both paths drift together relative to the snapshot.
func replaySTDPipelined(t *testing.T, path string) (*aerodrome.Report, int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := aerodrome.CheckReaderPipelined(f, aerodrome.Optimized)
	if err != nil {
		t.Fatalf("%s: pipelined replay: %v", path, err)
	}
	return rep, rep.Events
}

// replayRaceSTD replays one golden trace through the public dual-analysis
// checker and returns the hbrace entry — the same path aerodromed uses, so
// the snapshot pins parser-to-detector history end to end.
func replayRaceSTD(t *testing.T, path string) aerodrome.AnalysisReport {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := aerodrome.CheckSTDAnalyses(f, aerodrome.Optimized,
		[]aerodrome.AnalysisKind{aerodrome.AnalysisAtomicity, aerodrome.AnalysisHBRace})
	if err != nil {
		t.Fatalf("%s: dual-analysis replay: %v", path, err)
	}
	for _, ar := range rep.Analyses {
		if ar.Analysis == string(aerodrome.AnalysisHBRace) {
			return ar
		}
	}
	t.Fatalf("%s: no hbrace entry", path)
	return aerodrome.AnalysisReport{}
}

func replaySTD(t *testing.T, path string, algo core.Algorithm) (*core.Violation, int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := rapidio.NewReader(f)
	v, n := core.Run(core.New(algo), rd)
	if err := rd.Err(); err != nil {
		t.Fatalf("%s: parse error: %v", path, err)
	}
	return v, n
}

// sameViolation reports whether two engines' outcomes agree on verdict and,
// when violating, on the exact event and check.
func sameViolation(a, b *core.Violation) bool {
	if (a != nil) != (b != nil) {
		return false
	}
	return a == nil || (a.Index == b.Index && a.Check == b.Check)
}

func regenerateGolden(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	expects := map[string]goldenExpect{}
	for _, cfg := range goldenConfigs() {
		path := filepath.Join(goldenDir, cfg.Name+".std")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rapidio.WriteSource(f, workload.New(cfg)); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		// Validate the class assumptions (ReadOpt pinned to Basic's exact
		// violation event, tree/hybrid to flat's) at generation time, so a
		// change that breaks them is diagnosed here rather than by the
		// freshly written snapshots failing on the next plain test run.
		basicClass, optimizedClass := goldenEngines()
		vBasic, n := replaySTD(t, path, basicClass[0])
		for _, algo := range basicClass[1:] {
			v, _ := replaySTD(t, path, algo)
			if !sameViolation(vBasic, v) {
				t.Fatalf("%s: %v disagrees with %v at generation time (%v vs %v)",
					cfg.Name, algo, basicClass[0], v, vBasic)
			}
		}
		vOpt, _ := replaySTD(t, path, optimizedClass[0])
		for _, algo := range optimizedClass[1:] {
			v, _ := replaySTD(t, path, algo)
			if !sameViolation(vOpt, v) {
				t.Fatalf("%s: %v disagrees with %v at generation time (%v vs %v)",
					cfg.Name, algo, optimizedClass[0], v, vOpt)
			}
		}
		if (vBasic != nil) != (vOpt != nil) {
			t.Fatalf("%s: basic and optimized disagree at generation time", cfg.Name)
		}
		e := goldenExpect{Events: n, Violation: vBasic != nil}
		if vBasic != nil {
			e.BasicIndex, e.BasicCheck = vBasic.Index, vBasic.Check.String()
			e.OptimizedIndex, e.OptimizedCheck = vOpt.Index, vOpt.Check.String()
		}
		hb := replayRaceSTD(t, path)
		e.Race, e.RaceEvents = !hb.Clean, hb.Events
		if !hb.Clean {
			e.RaceIndex, e.RaceCheck = hb.Violation.EventIndex, hb.Violation.Check
		}
		expects[cfg.Name] = e
	}
	out, err := json.MarshalIndent(expects, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir, "expect.json"), append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden corpus regenerated: %d traces", len(expects))
}

func TestGoldenTraces(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
		return
	}
	raw, err := os.ReadFile(filepath.Join(goldenDir, "expect.json"))
	if err != nil {
		t.Fatalf("golden snapshots missing (%v); run: go test -run TestGoldenTraces -update-golden .", err)
	}
	var expects map[string]goldenExpect
	if err := json.Unmarshal(raw, &expects); err != nil {
		t.Fatal(err)
	}
	basicClass, optimizedClass := goldenEngines()
	for _, cfg := range goldenConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			want, ok := expects[cfg.Name]
			if !ok {
				t.Fatalf("no snapshot for %s; regenerate the corpus", cfg.Name)
			}
			path := filepath.Join(goldenDir, cfg.Name+".std")
			for _, algo := range basicClass {
				v, n := replaySTD(t, path, algo)
				if (v != nil) != want.Violation {
					t.Fatalf("%v: verdict violation=%v, want %v", algo, v != nil, want.Violation)
				}
				if want.Violation && (v.Index != want.BasicIndex || v.Check.String() != want.BasicCheck) {
					t.Fatalf("%v: violation (index %d, %s), want (index %d, %s)",
						algo, v.Index, v.Check, want.BasicIndex, want.BasicCheck)
				}
				if !want.Violation && n != want.Events {
					t.Fatalf("%v: processed %d events, want %d", algo, n, want.Events)
				}
			}
			for _, algo := range optimizedClass {
				v, n := replaySTD(t, path, algo)
				if (v != nil) != want.Violation {
					t.Fatalf("%v: verdict violation=%v, want %v", algo, v != nil, want.Violation)
				}
				if want.Violation && (v.Index != want.OptimizedIndex || v.Check.String() != want.OptimizedCheck) {
					t.Fatalf("%v: violation (index %d, %s), want (index %d, %s)",
						algo, v.Index, v.Check, want.OptimizedIndex, want.OptimizedCheck)
				}
				if !want.Violation && n != want.Events {
					t.Fatalf("%v: processed %d events, want %d", algo, n, want.Events)
				}
			}
			hb := replayRaceSTD(t, path)
			if !hb.Clean != want.Race {
				t.Fatalf("hbrace: verdict race=%v, want %v", !hb.Clean, want.Race)
			}
			if hb.Events != want.RaceEvents {
				t.Fatalf("hbrace: consumed %d events, want %d", hb.Events, want.RaceEvents)
			}
			if want.Race && (hb.Violation.EventIndex != want.RaceIndex || hb.Violation.Check != want.RaceCheck) {
				t.Fatalf("hbrace: violation (index %d, %s), want (index %d, %s)",
					hb.Violation.EventIndex, hb.Violation.Check, want.RaceIndex, want.RaceCheck)
			}
			rep, n := replaySTDPipelined(t, path)
			if rep.Serializable == want.Violation {
				t.Fatalf("pipelined: verdict violation=%v, want %v", !rep.Serializable, want.Violation)
			}
			if want.Violation && (rep.Violation.EventIndex != want.OptimizedIndex ||
				rep.Violation.Check != want.OptimizedCheck) {
				t.Fatalf("pipelined: violation (index %d, %s), want (index %d, %s)",
					rep.Violation.EventIndex, rep.Violation.Check, want.OptimizedIndex, want.OptimizedCheck)
			}
			if !want.Violation && n != want.Events {
				t.Fatalf("pipelined: processed %d events, want %d", n, want.Events)
			}
		})
	}
}
