// Command tracegen generates synthetic concurrent-program traces: either
// one of the paper's benchmark-row workloads by name (avrora, sunflow,
// batik, …; see internal/workload/tables.go) or a custom configuration from
// flags.
//
// Usage:
//
//	tracegen -row sunflow -events 1000000 > sunflow.std
//	tracegen -pattern hub -threads 8 -vars 5000 -inject cross -events 200000 -format bin -o hub.adb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aerodrome/internal/rapidio"
	"aerodrome/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	row := fs.String("row", "", "paper benchmark row name (table 1/2); overrides the custom flags")
	events := fs.Int64("events", 1_000_000, "approximate trace length")
	maxVars := fs.Int("maxvars", 20_000, "variable-pool cap for -row workloads")
	threads := fs.Int("threads", 4, "thread count (custom)")
	vars := fs.Int("vars", 1_000, "variable count (custom)")
	locks := fs.Int("locks", 4, "lock count (custom)")
	pattern := fs.String("pattern", "chain", "body pattern: hub, chain, sharded or phase (custom)")
	inject := fs.String("inject", "none", "violation to inject: none, cross, delayed or lock (custom)")
	injectAt := fs.Float64("inject-at", 0.9, "violation position as a fraction of the trace (custom)")
	absorb := fs.Int("absorb", 0, "hub absorb period (custom hub pattern)")
	txnFrac := fs.Float64("txn-frac", 1, "fraction of rounds inside transactions (custom sharded pattern)")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "std", "output format: std or bin")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg workload.Config
	if *row != "" {
		r, ok := workload.FindRow(*row, *events, *maxVars)
		if !ok {
			fmt.Fprintf(stderr, "tracegen: unknown row %q\n", *row)
			return 2
		}
		cfg = r.Config
	} else {
		cfg = workload.Config{
			Name:        "custom",
			Threads:     *threads,
			Vars:        *vars,
			Locks:       *locks,
			Events:      *events,
			Pattern:     workload.Pattern(*pattern),
			Inject:      workload.Violation(*inject),
			InjectAt:    *injectAt,
			AbsorbEvery: *absorb,
			TxnFraction: *txnFrac,
			Seed:        *seed,
		}
		switch cfg.Pattern {
		case workload.PatternHub, workload.PatternChain, workload.PatternSharded, workload.PatternPhase:
		default:
			fmt.Fprintf(stderr, "tracegen: unknown pattern %q\n", *pattern)
			return 2
		}
		switch cfg.Inject {
		case workload.ViolationNone, workload.ViolationCross, workload.ViolationDelayed, workload.ViolationLock:
		default:
			fmt.Fprintf(stderr, "tracegen: unknown inject %q\n", *inject)
			return 2
		}
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		defer f.Close()
		w = f
	}

	gen := workload.New(cfg)
	fmt.Fprintln(stderr, "tracegen:", gen.Describe())

	var n int64
	var err error
	switch *format {
	case "std":
		n, err = rapidio.WriteSource(w, gen)
	case "bin":
		bw := rapidio.NewBinaryWriter(w)
		for {
			e, ok := gen.Next()
			if !ok {
				break
			}
			if err = bw.Write(e); err != nil {
				break
			}
			n++
		}
		if err == nil {
			err = bw.Flush()
		}
	default:
		fmt.Fprintf(stderr, "tracegen: unknown format %q\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	fmt.Fprintf(stderr, "tracegen: wrote %d events\n", n)
	return 0
}
