package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRowGeneration(t *testing.T) {
	out := filepath.Join(t.TempDir(), "philo.std")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-row", "philo", "-o", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "|r(") && !strings.Contains(string(data), "|w(") {
		t.Fatalf("no accesses in output")
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Fatalf("missing summary: %q", stderr.String())
	}
}

func TestCustomGenerationBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "custom.adb")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-pattern", "hub", "-threads", "6", "-vars", "100", "-locks", "2",
		"-events", "2000", "-inject", "cross", "-format", "bin", "-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 || string(data[:4]) != "ADB1" {
		t.Fatalf("bad binary header")
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-row", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown row: exit %d", code)
	}
	if code := run([]string{"-pattern", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown pattern: exit %d", code)
	}
	if code := run([]string{"-inject", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown inject: exit %d", code)
	}
	if code := run([]string{"-format", "bogus", "-events", "100"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown format: exit %d", code)
	}
}

func TestStdoutGeneration(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-events", "500", "-threads", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	lines := strings.Count(stdout.String(), "\n")
	if lines < 400 {
		t.Fatalf("only %d lines generated", lines)
	}
}
