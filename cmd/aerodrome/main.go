// Command aerodrome checks a concurrent-program trace log for conflict
// serializability (atomicity) violations using the AeroDrome vector-clock
// algorithm (or, via -algo, any of the other checkers in this repository).
//
// Usage:
//
//	aerodrome [-algo optimized] [-format std] [-pipeline] [-stats] [trace-file]
//	aerodrome [-algo optimized] -par N [trace-file]
//	aerodrome [-algo optimized] -parallel N trace-file...
//	aerodrome [-algo auto] -serve :8421
//	aerodrome [-algo A] -remote http://host:8421 [-incremental] [trace-file]
//
// With no file argument the trace is read from standard input. -pipeline
// overlaps parsing and checking on separate goroutines; -par N checks ONE
// trace on up to N cores by partitioning it into provably independent
// shards (exact verdicts — unprovable traces replay sequentially, see
// internal/parcheck); -parallel N checks several trace files concurrently,
// one engine per trace, on N workers (N < 0 selects one per CPU; the
// format of each file is sniffed). -stats adds engine introspection
// lines after the check — the epoch fast-path hit rate and the clock
// representation transitions behind the verdict (aerodrome engines
// only; with -pipeline it also prints per-stage wall times). The exit
// code is 0 when every trace is conflict serializable, 1 when a
// violation was found, and 2 on usage or input errors.
//
// -serve runs the aerodromed service in-process on the given address
// (equivalent to the aerodromed command with default limits; -algo sets
// the server's default algorithm). -remote streams the trace to a running
// aerodromed instead of checking locally: same output, same exit codes,
// the format is sniffed by the server. Remote requests run under
// per-attempt timeouts (-timeout) and are retried with backoff (-retries)
// on transport errors and retryable statuses, honoring Retry-After.
//
// -remote -incremental replays the trace through the session API in
// -chunk-bytes chunks instead of one POST — the mode that exercises (and
// survives) the router's journaled session failover. If the session is
// lost beyond recovery (HTTP 409: the replay journal was truncated or the
// chunk sequence gapped; HTTP 404: the session vanished with its router),
// the client re-opens a fresh session and replays the file from the
// start, up to three times.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"aerodrome"
	"aerodrome/internal/core"
	"aerodrome/internal/doublechecker"
	"aerodrome/internal/parcheck"
	"aerodrome/internal/pipeline"
	"aerodrome/internal/race"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/server"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

func newEngine(algo string) (core.Engine, error) {
	switch algo {
	case "basic":
		return core.NewBasic(), nil
	case "readopt":
		return core.NewReadOpt(), nil
	case "optimized", "aerodrome", "":
		return core.NewOptimized(), nil
	case "treeclock":
		return core.NewOptimizedTree(), nil
	case "hybrid":
		return core.NewOptimizedHybrid(), nil
	case "auto":
		return core.NewOptimizedAuto(), nil
	case "velodrome":
		return velodrome.New(), nil
	case "velodrome-pk":
		return velodrome.New(velodrome.WithStrategy("pearce-kelly")), nil
	case "doublechecker":
		return doublechecker.New(0), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want basic, readopt, optimized, treeclock, hybrid, auto, velodrome, velodrome-pk or doublechecker)", algo)
}

func openSource(path, format string) (trace.Source, func() error, error) {
	var r io.Reader = os.Stdin
	closer := func() error { return nil }
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r = f
		closer = f.Close
	}
	switch format {
	case "std", "":
		return rapidio.NewReader(r), closer, nil
	case "bin":
		return rapidio.NewBinaryReader(r), closer, nil
	}
	return nil, nil, fmt.Errorf("unknown format %q (want std or bin)", format)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aerodrome", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "optimized", "checking algorithm: basic, readopt, optimized, treeclock, hybrid, auto, velodrome, velodrome-pk, doublechecker")
	analysesFlag := fs.String("analyses", "", "analysis set over the same event stream: comma-separated from atomicity, hbrace (default atomicity); hbrace adds happens-before data-race detection")
	format := fs.String("format", "std", "trace format: std (RAPID text) or bin (compact binary)")
	quiet := fs.Bool("q", false, "suppress everything except the verdict line")
	pipe := fs.Bool("pipeline", false, "pipeline parsing and checking on separate goroutines")
	stats := fs.Bool("stats", false, "print engine introspection counters (epoch fast-path hit rate, clock promotions) after the check; aerodrome engines only")
	parallel := fs.Int("parallel", 0, "check multiple trace files concurrently on this many workers (<0 = one per CPU); implies -pipeline, sniffs each file's format (-format and -q are ignored)")
	par := fs.Int("par", 0, "check ONE trace on this many cores by speculative shard partitioning (<0 = one per CPU); exact verdicts — falls back to a sequential pass when the trace cannot be partitioned; aerodrome engines only")
	serve := fs.String("serve", "", "run the aerodromed service on this address instead of checking a trace (server default algo is auto unless -algo is set)")
	remote := fs.String("remote", "", "stream the trace to a running aerodromed at this base URL instead of checking locally (the server's default algorithm applies unless -algo is set)")
	tenant := fs.String("tenant", "", "tenant name sent with -remote requests (the server's quota and metrics bucket)")
	traceKey := fs.String("trace", "", "trace routing key sent with -remote requests (pins the request to one backend behind a shard router)")
	incremental := fs.Bool("incremental", false, "with -remote: replay the trace through the incremental session API in -chunk-bytes chunks")
	chunkBytes := fs.Int("chunk-bytes", 64<<10, "with -remote -incremental: feed chunk size in bytes")
	timeout := fs.Duration("timeout", 0, "with -remote: per-attempt request timeout (0 = default 30s, negative = none)")
	retries := fs.Int("retries", 0, "with -remote: retry attempts for failed requests (0 = default 4, negative = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Validate the analysis set up front, in every mode: an unknown name is
	// a usage error here, exactly like an unknown -algo — never silently
	// dropped or deferred to a remote server to notice.
	analysisSet, err := aerodrome.ParseAnalyses(*analysesFlag)
	if err != nil {
		fmt.Fprintln(stderr, err) // the library error carries the aerodrome: prefix
		return 2
	}
	// The flag default "optimized" is the local-check default; the server
	// modes must be able to tell "unset" from an explicit choice, so the
	// server-side defaults (-serve boots with auto, -remote defers to the
	// remote server's configured default) are not silently overridden.
	algoSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "algo" {
			algoSet = true
		}
	})
	multiAnalyses := !(len(analysisSet) == 1 && analysisSet[0] == aerodrome.AnalysisAtomicity)
	if *serve != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(stderr, "usage: aerodrome -serve ADDR takes no trace-file arguments")
			return 2
		}
		if multiAnalyses {
			fmt.Fprintln(stderr, "aerodrome: -serve has no default analysis set; clients declare analyses per request")
			return 2
		}
		if !algoSet {
			*algo = "auto"
		}
		return runServe(*serve, *algo, stderr)
	}
	if *remote != "" {
		if !algoSet {
			*algo = "" // let the server apply its configured default
		}
		return runRemote(remoteOpts{
			baseURL: *remote, algo: *algo, analyses: *analysesFlag, tenant: *tenant,
			traceKey: *traceKey, incremental: *incremental, chunkBytes: *chunkBytes,
			timeout: *timeout, retries: *retries, quiet: *quiet,
		}, fs.Args(), stdout, stderr)
	}
	if *parallel != 0 {
		if multiAnalyses {
			fmt.Fprintln(stderr, "aerodrome: -parallel runs the atomicity analysis only")
			return 2
		}
		return runParallel(fs.Args(), *algo, *parallel, stdout, stderr)
	}
	if *par != 0 {
		if fs.NArg() > 1 {
			fmt.Fprintln(stderr, "usage: aerodrome -par N [trace-file]")
			return 2
		}
		if multiAnalyses {
			fmt.Fprintln(stderr, "aerodrome: -par runs the atomicity analysis only")
			return 2
		}
		return runParIntra(fs.Arg(0), *algo, *par, *format, *quiet, stdout, stderr)
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: aerodrome [-algo A] [-format F] [-pipeline] [trace-file], or aerodrome -parallel N trace-file...")
		return 2
	}

	eng, err := newEngine(*algo)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	// The hbrace analysis rides the same event stream as the atomicity
	// engine — one parse, two verdicts.
	var det *race.Detector
	for _, k := range analysisSet {
		if k == aerodrome.AnalysisHBRace {
			det = race.New()
		}
	}
	src, closeSrc, err := openSource(fs.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	defer closeSrc()

	start := time.Now()
	var v *core.Violation
	var n int64
	var stages pipeline.StageStats
	if *pipe {
		// Both rapidio readers implement the batch API behind trace.Source;
		// a future format that doesn't must fail as a usage error, not a
		// panic.
		bs, ok := src.(pipeline.BatchSource)
		if !ok {
			fmt.Fprintf(stderr, "aerodrome: -pipeline does not support format %q\n", *format)
			return 2
		}
		var sinks []pipeline.Sink
		if det != nil {
			sinks = append(sinks, detectorSink{det})
		}
		var perr error
		v, n, perr = pipeline.RunMulti(eng, sinks, bs, pipeline.Config{Stats: &stages})
		if perr != nil {
			fmt.Fprintln(stderr, "aerodrome:", perr)
			return 2
		}
	} else if det == nil {
		v, n = core.Run(eng, src)
	} else {
		// Sequential dual-analysis sweep: each analysis latches at its own
		// first violation; the stream stops once both have.
		for v == nil || det.Violation() == nil {
			e, ok := src.Next()
			if !ok {
				break
			}
			if v == nil {
				v = eng.Process(e)
			}
			if det.Violation() == nil {
				det.Process(e)
			}
		}
		if v == nil {
			v = eng.Violation()
		}
		n = eng.Processed()
	}
	elapsed := time.Since(start)

	if !*pipe {
		if errSrc, ok := src.(interface{ Err() error }); ok {
			if err := errSrc.Err(); err != nil {
				fmt.Fprintln(stderr, "aerodrome:", err)
				return 2
			}
		}
	}

	if !*quiet {
		fmt.Fprintf(stdout, "algorithm: %s\nevents:    %d\ntime:      %v\n", eng.Name(), n, elapsed)
	}
	if *stats {
		// An explicit -stats request prints even under -q.
		printEngineStats(stdout, eng)
		if *pipe {
			fmt.Fprintf(stdout, "stages:    parse %v, check %v\n", stages.ParseTime(), stages.CheckTime())
		}
	}
	code := 0
	if v != nil {
		fmt.Fprintf(stdout, "result: NOT conflict serializable — %v\n", v)
		code = 1
	} else {
		fmt.Fprintf(stdout, "result: conflict serializable (no atomicity violation)\n")
	}
	if det != nil {
		if rv := det.Violation(); rv != nil {
			fmt.Fprintf(stdout, "hbrace: data race — %v (%d events)\n", rv, det.Processed())
			code = 1
		} else {
			fmt.Fprintf(stdout, "hbrace: race free (%d events)\n", det.Processed())
		}
	}
	return code
}

// detectorSink adapts the race detector to the pipeline's Sink surface.
type detectorSink struct{ d *race.Detector }

func (s detectorSink) Process(e trace.Event) { s.d.Process(e) }
func (s detectorSink) Done() bool            { return s.d.Violation() != nil }

// printEngineStats renders the engine's introspection counters on one
// line, mirroring the par: partition line. Engines without counters
// (velodrome, doublechecker) print a note instead of silence, so -stats
// never looks like it was ignored.
func printEngineStats(w io.Writer, eng core.Engine) {
	r, ok := eng.(core.StatsReporter)
	if !ok {
		fmt.Fprintf(w, "engine:    %s reports no introspection counters\n", eng.Name())
		return
	}
	s := r.Stats()
	checks := s.EpochHits + s.EpochMisses
	rate := 0.0
	if checks > 0 {
		rate = 100 * float64(s.EpochHits) / float64(checks)
	}
	fmt.Fprintf(w, "engine:    epoch %d/%d hits (%.1f%%), ends %d full / %d collected, promotions %d sparse / %d width, tree %d demoted / %d repromoted\n",
		s.EpochHits, checks, rate, s.EndsFull, s.EndsCollected,
		s.SparsePromotions, s.WidthPromotions, s.TreeDemotions, s.TreeRepromotions)
}

// normalizeAlgo resolves the CLI-only alias "aerodrome" to the canonical
// engine name, in one place for every front-end mode. The empty string
// passes through: it means "caller's default" (the public API and the
// remote server each resolve it themselves).
func normalizeAlgo(algo string) string {
	if algo == "aerodrome" {
		return "optimized"
	}
	return algo
}

// runServe fronts the aerodromed daemon from the main CLI: same service,
// default limits, same auto default engine; an explicit -algo overrides.
// It blocks until SIGINT or SIGTERM, then drains gracefully.
func runServe(addr, algo string, stderr io.Writer) int {
	algo = normalizeAlgo(algo)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := server.RunDaemon(ctx, server.DaemonConfig{
		Addr:   addr,
		Server: server.Config{Algorithm: aerodrome.Algorithm(algo)},
		Log:    stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	return 0
}

// remoteOpts bundles the -remote mode's knobs.
type remoteOpts struct {
	baseURL, algo, analyses, tenant, traceKey string
	incremental                               bool
	chunkBytes                                int
	timeout                                   time.Duration
	retries                                   int
	quiet                                     bool
}

// runRemote streams one trace (file or stdin) to a running aerodromed (or
// shard router) and renders the report exactly like a local check.
func runRemote(opts remoteOpts, args []string, stdout, stderr io.Writer) int {
	if len(args) > 1 {
		fmt.Fprintln(stderr, "usage: aerodrome -remote URL [trace-file]")
		return 2
	}
	var r io.Reader = os.Stdin
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(stderr, "aerodrome:", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	algo := normalizeAlgo(opts.algo)
	client := &server.Client{
		BaseURL: opts.baseURL, Tenant: opts.tenant, TraceKey: opts.traceKey,
		Timeout: opts.timeout, MaxRetries: opts.retries,
	}
	start := time.Now()
	var rep *aerodrome.Report
	var err error
	if opts.incremental {
		rep, err = remoteIncremental(client, r, algo, opts.analyses, opts.chunkBytes)
	} else {
		rep, err = client.CheckAnalyses(r, algo, opts.analyses)
	}
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	if !opts.quiet {
		fmt.Fprintf(stdout, "algorithm: %s\nevents:    %d\ntime:      %v (remote)\n",
			rep.Algorithm, rep.Events, time.Since(start))
	}
	code := 0
	if !rep.Serializable {
		fmt.Fprintf(stdout, "result: NOT conflict serializable — %v\n", rep.Violation)
		code = 1
	} else {
		fmt.Fprintf(stdout, "result: conflict serializable (no atomicity violation)\n")
	}
	for _, ar := range rep.Analyses {
		if ar.Analysis == string(aerodrome.AnalysisAtomicity) {
			continue // rendered by the legacy result line above
		}
		if !ar.Clean {
			fmt.Fprintf(stdout, "%s: violation — %v (%d events)\n", ar.Analysis, ar.Violation, ar.Events)
			code = 1
		} else {
			fmt.Fprintf(stdout, "%s: clean (%d events)\n", ar.Analysis, ar.Events)
		}
	}
	return code
}

// remoteIncremental replays the trace through the session API chunk by
// chunk. Behind a fault-tolerant router a backend death is invisible here
// (the journal replays on another backend); only the unrecoverable 409 —
// journal truncated past the replay horizon — surfaces, and then the
// whole trace is replayed into a fresh session, which is exact because
// the checker is a deterministic single pass. Restart needs the trace
// bytes again, so stdin input is only retried when it fit in memory — a
// file is rewound with Seek.
func remoteIncremental(client *server.Client, r io.Reader, algo, analyses string, chunkBytes int) (*aerodrome.Report, error) {
	if chunkBytes <= 0 {
		chunkBytes = 64 << 10
	}
	seeker, rewindable := r.(io.ReadSeeker)
	if !rewindable {
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		seeker = bytes.NewReader(data)
	}
	const maxRestarts = 3
	var lastErr error
	for restart := 0; restart <= maxRestarts; restart++ {
		if _, err := seeker.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		rep, err := feedSession(client, seeker, algo, analyses, chunkBytes)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		// 409: affinity or replay horizon lost, or a chunk-sequence gap —
		// the session's server-side state can no longer be trusted. 404:
		// the session vanished outright (e.g. a restarted router re-derived
		// a placement on a backend that never held it). Both are recovered
		// the same way: a fresh session and a full replay.
		if !strings.Contains(err.Error(), "HTTP 409") && !strings.Contains(err.Error(), "HTTP 404") {
			return nil, err
		}
		time.Sleep(time.Duration(restart+1) * 200 * time.Millisecond)
	}
	return nil, fmt.Errorf("session lost %d times, giving up: %w", maxRestarts+1, lastErr)
}

// feedSession drives one session: create, feed chunks, finalize.
func feedSession(client *server.Client, r io.Reader, algo, analyses string, chunkBytes int) (*aerodrome.Report, error) {
	sess, err := client.NewSessionAnalyses(algo, analyses)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, chunkBytes)
	for {
		n, rerr := io.ReadFull(r, buf)
		if n > 0 {
			if _, err := sess.Feed(buf[:n]); err != nil {
				sess.Close()
				return nil, err
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			sess.Close()
			return nil, rerr
		}
	}
	return sess.Close()
}

// coreAlgo maps the CLI algorithm names onto internal/core variants; the
// non-core checkers (velodrome, velodrome-pk, doublechecker) are not
// partitionable and report ok=false.
func coreAlgo(algo string) (core.Algorithm, bool) {
	switch normalizeAlgo(algo) {
	case "basic":
		return core.AlgoBasic, true
	case "readopt":
		return core.AlgoReadOpt, true
	case "optimized", "":
		return core.AlgoOptimized, true
	case "treeclock":
		return core.AlgoOptimizedTree, true
	case "hybrid":
		return core.AlgoOptimizedHybrid, true
	case "auto":
		return core.AlgoOptimizedAuto, true
	}
	return 0, false
}

// runParIntra checks one trace with the speculative intra-trace
// partitioner (internal/parcheck): independent shards of the variable,
// lock and fork/join space run on their own engines in parallel, and
// anything unprovable replays sequentially, so the verdict is always
// identical to a plain run. The non-quiet output adds one line of
// partition observability.
func runParIntra(path, algo string, workers int, format string, quiet bool, stdout, stderr io.Writer) int {
	ca, ok := coreAlgo(algo)
	if !ok {
		fmt.Fprintf(stderr, "aerodrome: -par supports the aerodrome engines (basic, readopt, optimized, treeclock, hybrid, auto), not %q\n", algo)
		return 2
	}
	if workers < 0 {
		workers = runtime.NumCPU()
	}
	src, closeSrc, err := openSource(path, format)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	defer closeSrc()

	start := time.Now()
	events := trace.Collect(src).Events
	if errSrc, ok := src.(interface{ Err() error }); ok {
		if err := errSrc.Err(); err != nil {
			fmt.Fprintln(stderr, "aerodrome:", err)
			return 2
		}
	}
	v, n, stats := parcheck.Check(events, ca, workers)
	elapsed := time.Since(start)

	if !quiet {
		fmt.Fprintf(stdout, "algorithm: %s\nevents:    %d\ntime:      %v\n", ca, n, elapsed)
		detail := ""
		switch {
		case stats.Conflict:
			detail = fmt.Sprintf(" (cross-shard flow at event %d, replayed sequentially)", stats.ConflictIndex)
		case stats.Replayed:
			detail = " (not partitionable, ran sequentially)"
		}
		fmt.Fprintf(stdout, "par:       %d workers, %d shards, %d components, %d relays%s\n",
			workers, stats.Shards, stats.Components, stats.Relays, detail)
	}
	if v != nil {
		fmt.Fprintf(stdout, "result: NOT conflict serializable — %v\n", v)
		return 1
	}
	fmt.Fprintf(stdout, "result: conflict serializable (no atomicity violation)\n")
	return 0
}

// runParallel checks every file argument concurrently (one engine and one
// parse/check pipeline per trace) and prints one verdict line per file, in
// input order.
func runParallel(paths []string, algo string, workers int, stdout, stderr io.Writer) int {
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "usage: aerodrome -parallel N trace-file...")
		return 2
	}
	algo = normalizeAlgo(algo)
	reports, err := aerodrome.CheckFilesParallel(paths, aerodrome.Algorithm(algo), workers)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	code := 0
	for _, fr := range reports {
		switch {
		case fr.Err != nil:
			// FileReport errors are typed *aerodrome.FileError carrying the
			// path; unwrap so the path prints once.
			msg := fr.Err.Error()
			var fe *aerodrome.FileError
			if errors.As(fr.Err, &fe) {
				msg = fe.Err.Error()
			}
			fmt.Fprintf(stdout, "%s: error: %s\n", fr.Path, msg)
			code = 2
		case !fr.Report.Serializable:
			fmt.Fprintf(stdout, "%s: NOT conflict serializable — %v\n", fr.Path, fr.Report.Violation)
			if code == 0 {
				code = 1
			}
		default:
			fmt.Fprintf(stdout, "%s: conflict serializable (%d events, %s)\n",
				fr.Path, fr.Report.Events, fr.Report.Algorithm)
		}
	}
	return code
}
