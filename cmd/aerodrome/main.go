// Command aerodrome checks a concurrent-program trace log for conflict
// serializability (atomicity) violations using the AeroDrome vector-clock
// algorithm (or, via -algo, any of the other checkers in this repository).
//
// Usage:
//
//	aerodrome [-algo optimized] [-format std] [-pipeline] [trace-file]
//	aerodrome [-algo optimized] -parallel N trace-file...
//
// With no file argument the trace is read from standard input. -pipeline
// overlaps parsing and checking on separate goroutines; -parallel N checks
// several trace files concurrently, one engine per trace, on N workers
// (N < 0 selects one per CPU; the format of each file is sniffed). The
// exit code is 0 when every trace is conflict serializable, 1 when a
// violation was found, and 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aerodrome"
	"aerodrome/internal/core"
	"aerodrome/internal/doublechecker"
	"aerodrome/internal/pipeline"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

func newEngine(algo string) (core.Engine, error) {
	switch algo {
	case "basic":
		return core.NewBasic(), nil
	case "readopt":
		return core.NewReadOpt(), nil
	case "optimized", "aerodrome", "":
		return core.NewOptimized(), nil
	case "treeclock":
		return core.NewOptimizedTree(), nil
	case "hybrid":
		return core.NewOptimizedHybrid(), nil
	case "auto":
		return core.NewOptimizedAuto(), nil
	case "velodrome":
		return velodrome.New(), nil
	case "velodrome-pk":
		return velodrome.New(velodrome.WithStrategy("pearce-kelly")), nil
	case "doublechecker":
		return doublechecker.New(0), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want basic, readopt, optimized, treeclock, hybrid, auto, velodrome, velodrome-pk or doublechecker)", algo)
}

func openSource(path, format string) (trace.Source, func() error, error) {
	var r io.Reader = os.Stdin
	closer := func() error { return nil }
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r = f
		closer = f.Close
	}
	switch format {
	case "std", "":
		return rapidio.NewReader(r), closer, nil
	case "bin":
		return rapidio.NewBinaryReader(r), closer, nil
	}
	return nil, nil, fmt.Errorf("unknown format %q (want std or bin)", format)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aerodrome", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "optimized", "checking algorithm: basic, readopt, optimized, treeclock, hybrid, auto, velodrome, velodrome-pk, doublechecker")
	format := fs.String("format", "std", "trace format: std (RAPID text) or bin (compact binary)")
	quiet := fs.Bool("q", false, "suppress everything except the verdict line")
	pipe := fs.Bool("pipeline", false, "pipeline parsing and checking on separate goroutines")
	parallel := fs.Int("parallel", 0, "check multiple trace files concurrently on this many workers (<0 = one per CPU); implies -pipeline, sniffs each file's format (-format and -q are ignored)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel != 0 {
		return runParallel(fs.Args(), *algo, *parallel, stdout, stderr)
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: aerodrome [-algo A] [-format F] [-pipeline] [trace-file], or aerodrome -parallel N trace-file...")
		return 2
	}

	eng, err := newEngine(*algo)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	src, closeSrc, err := openSource(fs.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	defer closeSrc()

	start := time.Now()
	var v *core.Violation
	var n int64
	if *pipe {
		// Both rapidio readers implement the batch API behind trace.Source;
		// a future format that doesn't must fail as a usage error, not a
		// panic.
		bs, ok := src.(pipeline.BatchSource)
		if !ok {
			fmt.Fprintf(stderr, "aerodrome: -pipeline does not support format %q\n", *format)
			return 2
		}
		var perr error
		v, n, perr = pipeline.Run(eng, bs, pipeline.Config{})
		if perr != nil {
			fmt.Fprintln(stderr, "aerodrome:", perr)
			return 2
		}
	} else {
		v, n = core.Run(eng, src)
	}
	elapsed := time.Since(start)

	if !*pipe {
		if errSrc, ok := src.(interface{ Err() error }); ok {
			if err := errSrc.Err(); err != nil {
				fmt.Fprintln(stderr, "aerodrome:", err)
				return 2
			}
		}
	}

	if !*quiet {
		fmt.Fprintf(stdout, "algorithm: %s\nevents:    %d\ntime:      %v\n", eng.Name(), n, elapsed)
	}
	if v != nil {
		fmt.Fprintf(stdout, "result: NOT conflict serializable — %v\n", v)
		return 1
	}
	fmt.Fprintf(stdout, "result: conflict serializable (no atomicity violation)\n")
	return 0
}

// runParallel checks every file argument concurrently (one engine and one
// parse/check pipeline per trace) and prints one verdict line per file, in
// input order.
func runParallel(paths []string, algo string, workers int, stdout, stderr io.Writer) int {
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "usage: aerodrome -parallel N trace-file...")
		return 2
	}
	if algo == "aerodrome" || algo == "" {
		algo = "optimized"
	}
	reports, err := aerodrome.CheckFilesParallel(paths, aerodrome.Algorithm(algo), workers)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	code := 0
	for _, fr := range reports {
		switch {
		case fr.Err != nil:
			fmt.Fprintf(stdout, "%s: error: %v\n", fr.Path, fr.Err)
			code = 2
		case !fr.Report.Serializable:
			fmt.Fprintf(stdout, "%s: NOT conflict serializable — %v\n", fr.Path, fr.Report.Violation)
			if code == 0 {
				code = 1
			}
		default:
			fmt.Fprintf(stdout, "%s: conflict serializable (%d events, %s)\n",
				fr.Path, fr.Report.Events, fr.Report.Algorithm)
		}
	}
	return code
}
