// Command aerodrome checks a concurrent-program trace log for conflict
// serializability (atomicity) violations using the AeroDrome vector-clock
// algorithm (or, via -algo, any of the other checkers in this repository).
//
// Usage:
//
//	aerodrome [-algo optimized] [-format std] [trace-file]
//
// With no file argument the trace is read from standard input. The exit
// code is 0 when the trace is conflict serializable, 1 when a violation was
// found, and 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/doublechecker"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

func newEngine(algo string) (core.Engine, error) {
	switch algo {
	case "basic":
		return core.NewBasic(), nil
	case "readopt":
		return core.NewReadOpt(), nil
	case "optimized", "aerodrome", "":
		return core.NewOptimized(), nil
	case "treeclock":
		return core.NewOptimizedTree(), nil
	case "hybrid":
		return core.NewOptimizedHybrid(), nil
	case "velodrome":
		return velodrome.New(), nil
	case "velodrome-pk":
		return velodrome.New(velodrome.WithStrategy("pearce-kelly")), nil
	case "doublechecker":
		return doublechecker.New(0), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want basic, readopt, optimized, treeclock, hybrid, velodrome, velodrome-pk or doublechecker)", algo)
}

func openSource(path, format string) (trace.Source, func() error, error) {
	var r io.Reader = os.Stdin
	closer := func() error { return nil }
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		r = f
		closer = f.Close
	}
	switch format {
	case "std", "":
		return rapidio.NewReader(r), closer, nil
	case "bin":
		return rapidio.NewBinaryReader(r), closer, nil
	}
	return nil, nil, fmt.Errorf("unknown format %q (want std or bin)", format)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aerodrome", flag.ContinueOnError)
	fs.SetOutput(stderr)
	algo := fs.String("algo", "optimized", "checking algorithm: basic, readopt, optimized, treeclock, hybrid, velodrome, velodrome-pk, doublechecker")
	format := fs.String("format", "std", "trace format: std (RAPID text) or bin (compact binary)")
	quiet := fs.Bool("q", false, "suppress everything except the verdict line")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: aerodrome [-algo A] [-format F] [trace-file]")
		return 2
	}

	eng, err := newEngine(*algo)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	src, closeSrc, err := openSource(fs.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(stderr, "aerodrome:", err)
		return 2
	}
	defer closeSrc()

	start := time.Now()
	v, n := core.Run(eng, src)
	elapsed := time.Since(start)

	if errSrc, ok := src.(interface{ Err() error }); ok {
		if err := errSrc.Err(); err != nil {
			fmt.Fprintln(stderr, "aerodrome:", err)
			return 2
		}
	}

	if !*quiet {
		fmt.Fprintf(stdout, "algorithm: %s\nevents:    %d\ntime:      %v\n", eng.Name(), n, elapsed)
	}
	if v != nil {
		fmt.Fprintf(stdout, "result: NOT conflict serializable — %v\n", v)
		return 1
	}
	fmt.Fprintf(stdout, "result: conflict serializable (no atomicity violation)\n")
	return 0
}
