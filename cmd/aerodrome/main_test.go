package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aerodrome/internal/server"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const rho2STD = `t1|begin|0
t2|begin|0
t1|w(x)|0
t2|r(x)|0
t2|w(y)|0
t1|r(y)|0
t1|end|0
t2|end|0
`

const rho1STD = `t1|begin|0
t1|w(x)|0
t2|begin|0
t2|r(x)|0
t2|end|0
t3|begin|0
t3|w(z)|0
t3|end|0
t1|r(z)|0
t1|end|0
`

func TestViolatingTrace(t *testing.T) {
	path := writeTemp(t, "rho2.std", rho2STD)
	for _, algo := range []string{"basic", "readopt", "optimized", "velodrome", "velodrome-pk", "doublechecker"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-algo", algo, path}, &out, &errOut)
		if code != 1 {
			t.Fatalf("%s: exit = %d, want 1\n%s%s", algo, code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "NOT conflict serializable") {
			t.Fatalf("%s: output %q", algo, out.String())
		}
	}
}

func TestSerializableTrace(t *testing.T) {
	path := writeTemp(t, "rho1.std", rho1STD)
	var out, errOut bytes.Buffer
	code := run([]string{path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "conflict serializable") {
		t.Fatalf("output %q", out.String())
	}
	if !strings.Contains(out.String(), "events:    10") {
		t.Fatalf("event count missing: %q", out.String())
	}
}

func TestQuietFlag(t *testing.T) {
	path := writeTemp(t, "rho1.std", rho1STD)
	var out, errOut bytes.Buffer
	if code := run([]string{"-q", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out.String(), "algorithm:") {
		t.Fatalf("-q must suppress the header: %q", out.String())
	}
}

func TestPipelineFlag(t *testing.T) {
	viol := writeTemp(t, "rho2.std", rho2STD)
	ok := writeTemp(t, "rho1.std", rho1STD)
	for _, algo := range []string{"optimized", "auto", "basic"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-pipeline", "-algo", algo, ok}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit = %d\n%s%s", algo, code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "events:    10") {
			t.Fatalf("%s: event count missing: %q", algo, out.String())
		}
		out.Reset()
		if code := run([]string{"-pipeline", "-algo", algo, viol}, &out, &errOut); code != 1 {
			t.Fatalf("%s: exit = %d, want 1\n%s", algo, code, out.String())
		}
		if !strings.Contains(out.String(), "NOT conflict serializable") {
			t.Fatalf("%s: output %q", algo, out.String())
		}
	}
	// Malformed input still exits 2 through the pipeline.
	bad := writeTemp(t, "bad.std", "garbage\n")
	var out, errOut bytes.Buffer
	if code := run([]string{"-pipeline", bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed trace: exit %d", code)
	}
}

func TestParallelMode(t *testing.T) {
	ok := writeTemp(t, "rho1.std", rho1STD)
	viol := writeTemp(t, "rho2.std", rho2STD)
	var out, errOut bytes.Buffer
	code := run([]string{"-parallel", "2", ok, viol}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one line per file:\n%s", out.String())
	}
	if !strings.Contains(lines[0], "rho1.std: conflict serializable (10 events") {
		t.Fatalf("line 0: %q", lines[0])
	}
	if !strings.Contains(lines[1], "rho2.std: NOT conflict serializable") {
		t.Fatalf("line 1: %q", lines[1])
	}

	// Per-file errors surface without hiding the other verdicts, exit 2.
	out.Reset()
	code = run([]string{"-parallel", "-1", ok, "/nonexistent/trace.std"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "rho1.std: conflict serializable") ||
		!strings.Contains(out.String(), "error:") {
		t.Fatalf("output:\n%s", out.String())
	}

	// No files at all is a usage error.
	if code := run([]string{"-parallel", "4"}, &out, &errOut); code != 2 {
		t.Fatalf("no files: exit %d", code)
	}
}

// TestParIntraMode drives the -par intra-trace partitioner: verdicts
// and exit codes identical to a plain run, a partition-observability
// line in the default output, and the documented usage errors.
func TestParIntraMode(t *testing.T) {
	viol := writeTemp(t, "rho2.std", rho2STD)
	ok := writeTemp(t, "rho1.std", rho1STD)

	var out, errOut bytes.Buffer
	code := run([]string{"-par", "4", viol}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "NOT conflict serializable") ||
		!strings.Contains(out.String(), "at event 5") {
		t.Fatalf("output %q", out.String())
	}
	if !strings.Contains(out.String(), "par:") {
		t.Fatalf("missing partition observability line: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-par", "-1", ok}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "conflict serializable") {
		t.Fatalf("output %q", out.String())
	}

	// -q suppresses everything but the verdict.
	out.Reset()
	if code := run([]string{"-par", "2", "-q", ok}, &out, &errOut); code != 0 {
		t.Fatalf("quiet exit = %d\n%s", code, errOut.String())
	}
	if strings.Contains(out.String(), "par:") || strings.Contains(out.String(), "events:") {
		t.Fatalf("-q leaked detail: %q", out.String())
	}

	// Non-core checkers cannot be partitioned: usage error, exit 2.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-par", "2", "-algo", "velodrome", ok}, &out, &errOut); code != 2 {
		t.Fatalf("velodrome -par: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-par supports") {
		t.Fatalf("stderr %q", errOut.String())
	}

	// More than one file is a usage error; malformed input exits 2.
	if code := run([]string{"-par", "2", ok, viol}, &out, &errOut); code != 2 {
		t.Fatalf("two files: exit %d, want 2", code)
	}
	bad := writeTemp(t, "bad.std", "garbage\n")
	if code := run([]string{"-par", "2", bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed trace: exit %d, want 2", code)
	}
}

// TestRemoteMode fronts an in-process aerodromed and requires the client
// mode to render remote verdicts exactly like local checks, with the same
// exit codes.
func TestRemoteMode(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	ok := writeTemp(t, "rho1.std", rho1STD)
	viol := writeTemp(t, "rho2.std", rho2STD)

	var out, errOut bytes.Buffer
	if code := run([]string{"-remote", ts.URL, ok}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "events:    10") ||
		!strings.Contains(out.String(), "result: conflict serializable") {
		t.Fatalf("output %q", out.String())
	}
	// With -algo unset, the server's configured default (auto here) must
	// apply rather than the CLI's local "optimized" flag default.
	if !strings.Contains(out.String(), "auto") {
		t.Fatalf("server default algorithm not applied: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-remote", ts.URL, "-algo", "basic", viol}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "NOT conflict serializable") ||
		!strings.Contains(out.String(), "aerodrome-basic") {
		t.Fatalf("output %q", out.String())
	}

	// Remote failures are input errors: unknown algo, malformed trace,
	// unreachable server.
	out.Reset()
	if code := run([]string{"-remote", ts.URL, "-algo", "bogus", ok}, &out, &errOut); code != 2 {
		t.Fatalf("unknown algo via remote: exit %d", code)
	}
	bad := writeTemp(t, "bad.std", "garbage\n")
	if code := run([]string{"-remote", ts.URL, bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed trace via remote: exit %d", code)
	}
	if code := run([]string{"-remote", "http://127.0.0.1:1", ok}, &out, &errOut); code != 2 {
		t.Fatalf("unreachable server: exit %d", code)
	}
	if code := run([]string{"-remote", ts.URL, "a", "b"}, &out, &errOut); code != 2 {
		t.Fatalf("extra args: exit %d", code)
	}
}

func TestErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-algo", "bogus", "x"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown algo: exit %d", code)
	}
	if code := run([]string{"-format", "bogus", "x"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown format: exit %d", code)
	}
	if code := run([]string{"a", "b"}, &out, &errOut); code != 2 {
		t.Fatalf("extra args: exit %d", code)
	}
	if code := run([]string{"/nonexistent/file"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: exit %d", code)
	}
	bad := writeTemp(t, "bad.std", "not a trace line\n")
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed trace: exit %d", code)
	}
}

// dualSTD carries an atomicity violation with no race on x (lock-protected
// accesses split by another transaction) and a later write-write race on z
// — the two analyses latch at different trace points.
const dualSTD = `t1|begin|0
t1|acq(l)|0
t1|r(x)|0
t1|rel(l)|0
t2|acq(l)|0
t2|w(x)|0
t2|rel(l)|0
t1|acq(l)|0
t1|w(x)|0
t1|rel(l)|0
t1|end|0
t2|w(z)|0
t3|w(z)|0
`

func TestAnalysesFlagLocal(t *testing.T) {
	path := writeTemp(t, "dual.std", dualSTD)
	for _, pipeArgs := range [][]string{nil, {"-pipeline"}} {
		var out, errOut bytes.Buffer
		args := append(append([]string{}, pipeArgs...), "-analyses", "atomicity,hbrace", path)
		if code := run(args, &out, &errOut); code != 1 {
			t.Fatalf("%v: exit = %d, want 1\n%s%s", pipeArgs, code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "NOT conflict serializable") {
			t.Fatalf("%v: atomicity verdict missing: %q", pipeArgs, out.String())
		}
		if !strings.Contains(out.String(), "hbrace: data race") || !strings.Contains(out.String(), "write-write") {
			t.Fatalf("%v: hbrace verdict missing: %q", pipeArgs, out.String())
		}
	}
	// A fully lock-protected trace is clean under both analyses. (rho1 is
	// serializable yet racy — its accesses are unsynchronized — so it can't
	// serve as the race-free case.)
	clean := writeTemp(t, "locked.std", `t1|begin|0
t1|acq(l)|0
t1|w(x)|0
t1|rel(l)|0
t1|end|0
t2|begin|0
t2|acq(l)|0
t2|r(x)|0
t2|rel(l)|0
t2|end|0
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyses", "hbrace", clean}, &out, &errOut); code != 0 {
		t.Fatalf("clean dual: exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "hbrace: race free") {
		t.Fatalf("clean dual: %q", out.String())
	}
}

// TestAnalysesFlagRejectsUnknown pins the satellite fix: an unknown
// analysis name is a usage error (exit 2, valid set listed) in every mode
// — local and remote alike, before any request is sent.
func TestAnalysesFlagRejectsUnknown(t *testing.T) {
	path := writeTemp(t, "rho1.std", rho1STD)
	for _, args := range [][]string{
		{"-analyses", "bogus", path},
		{"-remote", "http://127.0.0.1:1", "-analyses", "bogus", path},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Fatalf("%v: exit = %d, want 2\n%s%s", args, code, out.String(), errOut.String())
		}
		if !strings.Contains(errOut.String(), "bogus") || !strings.Contains(errOut.String(), "atomicity, hbrace") {
			t.Fatalf("%v: rejection must name the bad analysis and the valid set: %q", args, errOut.String())
		}
	}
}

func TestAnalysesFlagRemote(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	path := writeTemp(t, "dual.std", dualSTD)
	for _, extra := range [][]string{nil, {"-incremental", "-chunk-bytes", "7"}} {
		var out, errOut bytes.Buffer
		args := append([]string{"-remote", ts.URL, "-analyses", "atomicity,hbrace"}, extra...)
		if code := run(append(args, path), &out, &errOut); code != 1 {
			t.Fatalf("%v: exit = %d, want 1\n%s%s", extra, code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "NOT conflict serializable") ||
			!strings.Contains(out.String(), "hbrace: violation") {
			t.Fatalf("%v: output %q", extra, out.String())
		}
	}
}
