package main

// Daemon wiring tests: flag validation, boot on an ephemeral port, a real
// check over HTTP, and the SIGTERM drain path (the process sends itself
// the signal the deployment environment would).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"aerodrome"
)

func TestUsageErrors(t *testing.T) {
	var logs bytes.Buffer
	if code := run([]string{"-algo", "bogus"}, &logs, nil); code != 2 {
		t.Fatalf("unknown algo: exit %d\n%s", code, logs.String())
	}
	if code := run([]string{"stray-arg"}, &logs, nil); code != 2 {
		t.Fatalf("stray argument: exit %d", code)
	}
	if code := run([]string{"-not-a-flag"}, &logs, nil); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

func TestServeCheckAndSigtermDrain(t *testing.T) {
	var logs bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-session-ttl", "1m"}, &logs, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready\n%s", logs.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/check", "text/plain",
		strings.NewReader("t0|begin|0\nt0|w(x)|1\nt0|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Serializable || rep.Events != 3 {
		t.Fatalf("report %+v, want serializable with 3 events", rep)
	}
	// The daemon default is the auto engine.
	if !strings.Contains(rep.Algorithm, "auto") {
		t.Fatalf("algorithm %q, want the auto default", rep.Algorithm)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d after SIGTERM, want 0\n%s", code, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Fatalf("drain log missing:\n%s", logs.String())
	}
}
