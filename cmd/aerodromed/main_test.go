package main

// Daemon wiring tests: flag validation, boot on an ephemeral port, a real
// check over HTTP, and the SIGTERM drain path (the process sends itself
// the signal the deployment environment would).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"aerodrome"
)

func TestUsageErrors(t *testing.T) {
	var logs bytes.Buffer
	if code := run([]string{"-algo", "bogus"}, &logs, nil); code != 2 {
		t.Fatalf("unknown algo: exit %d\n%s", code, logs.String())
	}
	if code := run([]string{"stray-arg"}, &logs, nil); code != 2 {
		t.Fatalf("stray argument: exit %d", code)
	}
	if code := run([]string{"-not-a-flag"}, &logs, nil); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run([]string{"-shard"}, &logs, nil); code != 2 {
		t.Fatalf("-shard without -backends: exit %d", code)
	}
	if code := run([]string{"-backends", "http://x"}, &logs, nil); code != 2 {
		t.Fatalf("-backends without -shard: exit %d", code)
	}
}

// TestShardRouterDaemon boots two backend daemons and a router daemon over
// them, checks a trace through the router (asserting backend attribution),
// then SIGTERMs the process: every daemon must drain cleanly.
func TestShardRouterDaemon(t *testing.T) {
	var backendLogs [2]bytes.Buffer
	var routerLogs bytes.Buffer
	exits := make(chan int, 3)
	var urls []string
	for i := 0; i < 2; i++ {
		ready := make(chan string, 1)
		logs := &backendLogs[i]
		go func() { exits <- run([]string{"-addr", "127.0.0.1:0"}, logs, ready) }()
		select {
		case addr := <-ready:
			urls = append(urls, "http://"+addr)
		case <-time.After(10 * time.Second):
			t.Fatalf("backend %d never ready\n%s", i, logs.String())
		}
	}
	ready := make(chan string, 1)
	go func() {
		exits <- run([]string{"-shard", "-backends", strings.Join(urls, ","),
			"-addr", "127.0.0.1:0", "-probe-interval", "50ms"}, &routerLogs, ready)
	}()
	var routerAddr string
	select {
	case routerAddr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("router never ready\n%s", routerLogs.String())
	}

	req, err := http.NewRequest(http.MethodPost, "http://"+routerAddr+"/v1/check?trace=t-1",
		strings.NewReader("t0|begin|0\nt0|w(x)|1\nt0|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Serializable || rep.Events != 3 {
		t.Fatalf("routed report %+v, want serializable with 3 events", rep)
	}
	if got := resp.Header.Get("X-Aerodrome-Backend"); got != urls[0] && got != urls[1] {
		t.Fatalf("X-Aerodrome-Backend = %q, want one of %v", got, urls)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		select {
		case code := <-exits:
			if code != 0 {
				t.Fatalf("daemon exit = %d after SIGTERM, want 0\nrouter: %s\nb0: %s\nb1: %s",
					code, routerLogs.String(), backendLogs[0].String(), backendLogs[1].String())
			}
		case <-time.After(15 * time.Second):
			t.Fatal("a daemon did not drain after SIGTERM")
		}
	}
	if !strings.Contains(routerLogs.String(), "drained cleanly") {
		t.Fatalf("router drain log missing:\n%s", routerLogs.String())
	}
}

func TestServeCheckAndSigtermDrain(t *testing.T) {
	var logs bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-session-ttl", "1m"}, &logs, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready\n%s", logs.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/check", "text/plain",
		strings.NewReader("t0|begin|0\nt0|w(x)|1\nt0|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Serializable || rep.Events != 3 {
		t.Fatalf("report %+v, want serializable with 3 events", rep)
	}
	// The daemon default is the auto engine.
	if !strings.Contains(rep.Algorithm, "auto") {
		t.Fatalf("algorithm %q, want the auto default", rep.Algorithm)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d after SIGTERM, want 0\n%s", code, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Fatalf("drain log missing:\n%s", logs.String())
	}
}
