// Command aerodromed is the multi-session streaming atomicity-checking
// service: an HTTP daemon that accepts trace streams and returns
// conflict-serializability verdicts, multiplexing many concurrent checks
// over the AeroDrome single-pass vector-clock algorithm.
//
// Usage:
//
//	aerodromed [-addr :8421] [-algo auto] [-max-sessions N]
//	           [-max-checks N] [-max-body BYTES] [-session-ttl D]
//	           [-tenant-sessions N] [-tenant-checks N] [-tenant-bytes-per-sec N]
//	           [-log-level info] [-debug-addr ADDR] [-shutdown-timeout D]
//	aerodromed -shard -backends URL,URL,... [-addr :8421]
//	           [-probe-interval D] [-probe-on-start] [-journal-mem BYTES]
//	           [-journal-max BYTES] [-journal-total BYTES] [-journal-spill DIR]
//	           [-log-level info] [-debug-addr ADDR] [-shutdown-timeout D]
//
// Endpoints: POST /v1/check (whole trace in, JSON report out; STD or
// binary format, sniffed), the incremental session API under
// /v1/sessions, GET /healthz and GET /metrics — expvar-style JSON by
// default (stage latency quantiles, engine introspection counters),
// Prometheus text exposition with ?format=prom. See the package
// documentation of aerodrome/internal/server for the wire format.
//
// Logs are structured (log/slog text) at -log-level (debug, info, warn,
// error); every request carries an X-Aerodrome-Request-Id — generated
// at the edge when absent, echoed in the response and propagated on
// every routed hop — on its access-log line. -debug-addr serves
// net/http/pprof on a separate listener (never the service address).
//
// The -tenant-* flags set the default per-tenant admission budget; the
// tenant is named by the X-Aerodrome-Tenant request header, and
// over-budget requests are rejected 429 + Retry-After, never queued.
//
// With -shard the daemon is a consistent-hash router instead of a
// checking backend: sessions and /v1/check requests are spread across the
// -backends aerodromed instances by the X-Aerodrome-Trace header (or
// ?trace=, or the tenant header), and backends are health-probed. The
// router journals every session chunk a backend acknowledged (bounded by
// the -journal-* flags); when a backend dies, its sessions fail over —
// recreated on the next ring point with the journal replayed — and only a
// session whose journal was truncated past the replay horizon answers a
// Retry-After-guarded 409. Every routed response carries
// X-Aerodrome-Backend.
//
// -chaos SPEC (or the AERODROME_CHAOS environment variable) enables
// seeded fault injection for the chaos harness: connection resets,
// partial writes, transport errors and latency, e.g.
// "reset=0.02,partial=0.01,error=0.05,latency=2ms@0.1,seed=7". Faults
// apply to this instance's own listener and, for -shard, to its backend
// transport. Never enable it in production.
//
// On SIGINT/SIGTERM the daemon drains: health flips to 503, new work is
// rejected, in-flight requests finish within -shutdown-timeout, then it
// exits 0. The exit code is 1 when serving or draining failed, 2 on usage
// errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aerodrome"
	"aerodrome/internal/faultinject"
	"aerodrome/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is main with its wiring exposed: args in, logs out, and an optional
// ready channel that receives the bound address (tests listen on :0).
func run(args []string, logw io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("aerodromed", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8421", "listen address")
	algo := fs.String("algo", "auto", "default checking algorithm for requests that do not name one")
	maxSessions := fs.Int("max-sessions", 0, "max concurrent incremental sessions (0 = default 1024)")
	maxChecks := fs.Int("max-checks", 0, "max concurrent /v1/check requests (0 = default 2x GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 0, "max request body bytes (0 = default 64 MiB)")
	sessionTTL := fs.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = default 5m)")
	tenantSessions := fs.Int("tenant-sessions", 0, "per-tenant concurrent-session budget (0 = unlimited)")
	tenantChecks := fs.Int("tenant-checks", 0, "per-tenant concurrent-check budget (0 = unlimited)")
	tenantBytes := fs.Int64("tenant-bytes-per-sec", 0, "per-tenant sustained ingest budget in bytes/sec (0 = unlimited)")
	shard := fs.Bool("shard", false, "run as a consistent-hash router over -backends instead of a checking backend")
	backends := fs.String("backends", "", "comma-separated backend base URLs (required with -shard)")
	probeInterval := fs.Duration("probe-interval", 0, "router backend health-probe cadence (0 = default 500ms)")
	probeOnStart := fs.Bool("probe-on-start", false, "router: probe every backend once before serving (restart hygiene)")
	journalMem := fs.Int64("journal-mem", 0, "router: per-session in-memory journal cap in bytes (0 = default 256 KiB)")
	journalMax := fs.Int64("journal-max", 0, "router: per-session total journal cap in bytes (0 = default 4 MiB)")
	journalTotal := fs.Int64("journal-total", 0, "router: shared in-memory journal budget in bytes (0 = default 64 MiB)")
	journalSpill := fs.String("journal-spill", "", "router: directory for journal spill files (empty = no spill)")
	chaosSpec := fs.String("chaos", os.Getenv("AERODROME_CHAOS"),
		"fault-injection spec, e.g. reset=0.02,error=0.05,latency=2ms@0.1,seed=7 (testing only)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	shutdownTimeout := fs.Duration("shutdown-timeout", 10*time.Second, "graceful drain deadline on SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(logw, "usage: aerodromed [flags]; aerodromed takes no arguments")
		return 2
	}
	chaosCfg, err := faultinject.ParseSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(logw, "aerodromed:", err)
		return 2
	}
	chaos := faultinject.New(chaosCfg)
	level, err := server.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(logw, "aerodromed:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shard {
		if *backends == "" {
			fmt.Fprintln(logw, "aerodromed: -shard requires -backends URL,URL,...")
			return 2
		}
		var urls []string
		for _, u := range strings.Split(*backends, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		err := server.RunRouterDaemon(ctx, server.RouterDaemonConfig{
			Addr: *addr,
			Router: server.RouterConfig{
				Backends:          urls,
				ProbeInterval:     *probeInterval,
				ProbeOnStart:      *probeOnStart,
				JournalMemBytes:   *journalMem,
				JournalMaxBytes:   *journalMax,
				JournalTotalBytes: *journalTotal,
				JournalSpillDir:   *journalSpill,
			},
			ShutdownTimeout: *shutdownTimeout,
			Log:             logw,
			LogLevel:        level,
			DebugAddr:       *debugAddr,
			Ready:           ready,
			Chaos:           chaos,
		})
		if err != nil {
			fmt.Fprintln(logw, "aerodromed:", err)
			return 1
		}
		return 0
	}

	if *backends != "" {
		fmt.Fprintln(logw, "aerodromed: -backends requires -shard")
		return 2
	}
	if _, err := aerodrome.NewCheckerErr(aerodrome.Algorithm(*algo)); err != nil {
		fmt.Fprintln(logw, "aerodromed:", err)
		return 2
	}
	err = server.RunDaemon(ctx, server.DaemonConfig{
		Addr: *addr,
		Server: server.Config{
			Algorithm:           aerodrome.Algorithm(*algo),
			MaxSessions:         *maxSessions,
			MaxConcurrentChecks: *maxChecks,
			MaxBodyBytes:        *maxBody,
			SessionTTL:          *sessionTTL,
			TenantQuota: server.TenantQuota{
				MaxSessions:         *tenantSessions,
				MaxConcurrentChecks: *tenantChecks,
				BytesPerSec:         *tenantBytes,
			},
		},
		ShutdownTimeout: *shutdownTimeout,
		Log:             logw,
		LogLevel:        level,
		DebugAddr:       *debugAddr,
		Ready:           ready,
		Chaos:           chaos,
	})
	if err != nil {
		fmt.Fprintln(logw, "aerodromed:", err)
		return 1
	}
	return 0
}
