// Command metainfo prints the basic characteristics of a trace log —
// events, threads, locks, variables, transactions, and per-operation counts
// — mirroring the MetaInfo analysis of the paper's RAPID tool (Appendix
// D.5.5), which produced the descriptive columns of Tables 1 and 2.
//
// Usage:
//
//	metainfo [-format std] [trace-file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("metainfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "std", "trace format: std or bin")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var r io.Reader = os.Stdin
	if path := fs.Arg(0); path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "metainfo:", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	var src trace.Source
	switch *format {
	case "std":
		src = rapidio.NewReader(r)
	case "bin":
		src = rapidio.NewBinaryReader(r)
	default:
		fmt.Fprintf(stderr, "metainfo: unknown format %q\n", *format)
		return 2
	}

	s := trace.ComputeStats(src)
	if errSrc, ok := src.(interface{ Err() error }); ok {
		if err := errSrc.Err(); err != nil {
			fmt.Fprintln(stderr, "metainfo:", err)
			return 2
		}
	}

	fmt.Fprintf(stdout, "events:        %d\n", s.Events)
	fmt.Fprintf(stdout, "threads:       %d\n", s.Threads)
	fmt.Fprintf(stdout, "locks:         %d\n", s.Locks)
	fmt.Fprintf(stdout, "variables:     %d\n", s.Vars)
	fmt.Fprintf(stdout, "transactions:  %d\n", s.Transactions)
	fmt.Fprintf(stdout, "reads:         %d\n", s.Reads)
	fmt.Fprintf(stdout, "writes:        %d\n", s.Writes)
	fmt.Fprintf(stdout, "acquires:      %d\n", s.Acquires)
	fmt.Fprintf(stdout, "releases:      %d\n", s.Releases)
	fmt.Fprintf(stdout, "forks:         %d\n", s.Forks)
	fmt.Fprintf(stdout, "joins:         %d\n", s.Joins)
	fmt.Fprintf(stdout, "begins:        %d\n", s.Begins)
	fmt.Fprintf(stdout, "ends:          %d\n", s.Ends)
	return 0
}
