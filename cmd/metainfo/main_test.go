package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMetaInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.std")
	log := `t0|fork(t1)|0
t0|begin|0
t0|w(x)|0
t0|end|0
t1|acq(l)|0
t1|r(x)|0
t1|rel(l)|0
t0|join(t1)|0
`
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{
		"events:        8", "threads:       2", "locks:         1",
		"variables:     1", "transactions:  1", "reads:         1",
		"writes:        1", "forks:         1", "joins:         1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestMetaInfoErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"/nonexistent"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: exit %d", code)
	}
	if code := run([]string{"-format", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("bad format: exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.std")
	os.WriteFile(bad, []byte("garbage\n"), 0o644)
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Fatalf("malformed: exit %d", code)
	}
}
