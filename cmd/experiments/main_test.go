package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFiguresRun(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "figures"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "⟨2,2,2⟩", "violation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestTinyTable2Run(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-run", "table2", "-events", "8000", "-vars", "300", "-timeout", "20s"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"batik", "fop", "tomcat", "velodrome", "aerodrome", "Speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestTinyAblationRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-run", "ablation", "-events", "8000", "-vars", "300", "-timeout", "20s"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"hub-retention", "chain-gc", "aerodrome-basic", "velodrome-pk"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestTinyDoubleCheckerRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-run", "doublechecker", "-events", "8000", "-vars", "300", "-timeout", "20s"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "doublechecker") {
		t.Fatalf("missing doublechecker column:\n%s", out.String())
	}
}

func TestUnknownRun(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d", code)
	}
}
