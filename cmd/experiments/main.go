// Command experiments regenerates the paper's evaluation: Table 1 (real
// atomicity specifications), Table 2 (naïve specifications), the worked
// Figures 5–7, and the ablation studies described in DESIGN.md. Output is
// Markdown with the paper's own numbers inlined for comparison; see
// EXPERIMENTS.md for a recorded run.
//
// Usage:
//
//	experiments -run tables -events 2000000 -timeout 30s
//	experiments -run figures
//	experiments -run ablation -events 300000
//	experiments -run doublechecker -events 300000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"aerodrome/internal/bench"
	"aerodrome/internal/core"
	"aerodrome/internal/loadgen"
	"aerodrome/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	what := fs.String("run", "tables", "what to run: tables, table1, table2, figures, ablation, bench, saturate, load, doublechecker, all")
	events := fs.Int64("events", 2_000_000, "event budget per benchmark row (the paper's traces go up to 2.8B)")
	maxVars := fs.Int("vars", 20_000, "variable-pool cap per row")
	timeout := fs.Duration("timeout", 30*time.Second, "per-engine timeout per row (the paper used 10h at full scale)")
	verbose := fs.Bool("v", false, "print per-engine progress while running")
	label := fs.String("label", "after", "label recorded in the -run bench JSON report")
	jsonOut := fs.String("json", "", "write the -run bench report to this file (default stdout)")
	runs := fs.Int("runs", 5, "timed runs per -run bench row (fastest wins)")
	gate := fs.Bool("gate", false, "with -run bench: run the CI perf-regression gate (pinned row subset vs the baseline's gate_rows; exit 1 on breach) instead of the full grid")
	updateGate := fs.Bool("update-gate", false, "with -run bench: re-measure the gate rows and rewrite them into the baseline file")
	baseline := fs.String("baseline", "BENCH_baseline.json", "baseline report for -gate / -update-gate")
	loadTarget := fs.String("load-target", "", "with -run load: drive this base URL instead of in-process topologies (the e2e script's daemons)")
	loadScenario := fs.String("load-scenario", "burst-smoke", "with -run load -load-target: which scenario to drive")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	o := bench.Options{
		MaxEvents: *events,
		MaxVars:   *maxVars,
		Timeout:   *timeout,
	}
	if *verbose {
		o.Progress = stderr
	}

	switch *what {
	case "figures":
		figures(stdout)
	case "table1":
		table(stdout, 1, o)
	case "table2":
		table(stdout, 2, o)
	case "tables":
		table(stdout, 1, o)
		fmt.Fprintln(stdout)
		table(stdout, 2, o)
	case "ablation":
		ablation(stdout, o)
	case "bench":
		switch {
		case *gate:
			if err := bench.RunGate(stdout, *baseline); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
		case *updateGate:
			if err := bench.UpdateGateBaseline(stdout, *baseline); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
		default:
			if err := benchJSON(stdout, stderr, *label, *jsonOut, *events, *runs); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 1
			}
		}
	case "saturate":
		if err := saturateJSON(stdout, stderr, *label, *jsonOut); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
	case "load":
		if err := loadJSON(stdout, stderr, *label, *jsonOut, *loadTarget, *loadScenario); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
	case "doublechecker":
		doubleCheckerRun(stdout, o)
	case "all":
		figures(stdout)
		fmt.Fprintln(stdout)
		table(stdout, 1, o)
		fmt.Fprintln(stdout)
		table(stdout, 2, o)
		fmt.Fprintln(stdout)
		ablation(stdout, o)
		fmt.Fprintln(stdout)
		doubleCheckerRun(stdout, o)
	default:
		fmt.Fprintf(stderr, "experiments: unknown -run %q\n", *what)
		return 2
	}
	return 0
}

// benchJSON runs the thread-scaling grid and emits the machine-readable
// report compared against BENCH_baseline.json across PRs. The default
// event budget of the other modes is far more than these timed rows need,
// so the grid caps at 200K events per row unless -events lowers it.
func benchJSON(stdout, stderr io.Writer, label, path string, events int64, runs int) error {
	if events > 200_000 {
		events = 200_000
	}
	engines := []bench.EngineSpec{
		bench.AeroDromeVariant(core.AlgoOptimized),
		bench.AeroDromeTree(),
		bench.AeroDromeHybrid(),
		bench.AeroDromeVariant(core.AlgoOptimizedAuto),
	}
	cfgs := bench.ThreadScalingConfigs(events)
	fmt.Fprintf(stderr, "measuring %d rows × %d engines (%d events, %d runs each)...\n",
		len(cfgs), len(engines), events, runs)
	rep := bench.MeasureReport(label, engines, cfgs, runs)
	// Par rows: the speculative intra-trace parallel checker on the same
	// grid — par-<pattern>-t<N> next to the single-core engines it is
	// measured against (see internal/bench/par.go for the reading guide).
	fmt.Fprintf(stderr, "measuring par rows (intra-trace parallel checker)...\n")
	rep.Rows = append(rep.Rows, bench.MeasureParRows(events, runs)...)
	// Ingest rows: parse+check over in-memory STD bytes, sequential vs
	// pipelined readers on the default engine.
	fmt.Fprintf(stderr, "measuring %d ingest rows (sequential vs pipelined)...\n", len(cfgs))
	for _, cfg := range cfgs {
		rep.Rows = append(rep.Rows, bench.MeasureIngestRows(cfg, runs)...)
	}
	// Server rows: the same bytes through an in-process aerodromed, so
	// serve-check vs ingest-pipe isolates the HTTP service tax.
	fmt.Fprintf(stderr, "measuring %d serve rows (aerodromed /v1/check)...\n", len(cfgs))
	for _, cfg := range cfgs {
		rep.Rows = append(rep.Rows, bench.MeasureServeRows(cfg, runs)...)
	}
	// Saturation rows: aggregate throughput under concurrent clients,
	// single server vs router+2 backends (see internal/bench/saturate.go).
	fmt.Fprintf(stderr, "measuring saturation rows (N clients, single vs router topology)...\n")
	rep.Rows = append(rep.Rows, bench.MeasureSaturationRows()...)
	// Load rows: the open-loop scenario zoo — latency quantiles, admission
	// rejections and failovers per (scenario, topology) pair (see
	// internal/loadgen).
	fmt.Fprintf(stderr, "measuring load rows (open-loop scenarios, single vs router topologies)...\n")
	rep.Rows = append(rep.Rows, loadgen.MeasureLoadRows()...)
	return writeReport(rep, stdout, path)
}

// loadJSON runs only the open-loop load grid. With -load-target it
// instead drives one named scenario against an externally booted
// topology — the e2e script's daemons — and fails on any client-visible
// hard failure.
func loadJSON(stdout, stderr io.Writer, label, path, target, scenario string) error {
	rep := bench.BenchReport{Label: label, GoVersion: runtime.Version()}
	if target != "" {
		fmt.Fprintf(stderr, "driving load scenario %q against %s...\n", scenario, target)
		row, err := loadgen.MeasureAgainst(scenario, target)
		if err != nil {
			return err
		}
		rep.Rows = []bench.BenchRow{row}
		return writeReport(rep, stdout, path)
	}
	fmt.Fprintf(stderr, "measuring load rows (open-loop scenarios, single vs router topologies)...\n")
	rep.Rows = loadgen.MeasureLoadRows()
	return writeReport(rep, stdout, path)
}

// saturateJSON runs only the saturation grid — the iteration loop for the
// scale-out rows, without re-measuring the engine grid.
func saturateJSON(stdout, stderr io.Writer, label, path string) error {
	fmt.Fprintf(stderr, "measuring saturation rows (N clients, single vs router topology)...\n")
	rep := bench.BenchReport{Label: label, GoVersion: runtime.Version()}
	rep.Rows = bench.MeasureSaturationRows()
	return writeReport(rep, stdout, path)
}

func writeReport(rep bench.BenchReport, stdout io.Writer, path string) error {
	if path == "" {
		return rep.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	// A truncated report artifact must not exit 0: surface the flush error.
	return f.Close()
}

func figures(w io.Writer) {
	fmt.Fprintln(w, "## Figures 5–7: AeroDrome's clock evolution on the paper's example traces")
	fmt.Fprintln(w, "```")
	bench.Figures(w)
	fmt.Fprintln(w, "```")
}

func table(w io.Writer, n int, o bench.Options) {
	fmt.Fprintf(w, "## Table %d reproduction (events scaled to ≤%s per row, timeout %v)\n\n",
		n, human(o.MaxEvents), o.Timeout)
	results := bench.RunTable(n, o)
	bench.FormatTable(w, results, o)
}

// ablation compares the three AeroDrome algorithm variants and the two
// Velodrome cycle-detection strategies on a retention-heavy and a
// GC-friendly workload.
func ablation(w io.Writer, o bench.Options) {
	events := o.MaxEvents
	if events > 400_000 {
		events = 400_000 // Basic is O(|Thr|·V) per end event; keep this tractable
	}
	fmt.Fprintf(w, "## Ablations (%s events per workload, timeout %v)\n\n", human(events), o.Timeout)

	engines := []bench.EngineSpec{
		bench.AeroDromeVariant(core.AlgoBasic),
		bench.AeroDromeVariant(core.AlgoReadOpt),
		bench.AeroDromeVariant(core.AlgoOptimized),
		bench.Velodrome(),
		bench.VelodromePK(),
	}

	workloads := []workload.Config{
		{
			Name: "hub-retention", Threads: 8, Vars: 4_000, Locks: 8,
			Events: events, OpsPerTxn: 4, Pattern: workload.PatternHub,
			Inject: workload.ViolationNone, AbsorbEvery: 8, Seed: 42,
		},
		{
			Name: "chain-gc", Threads: 8, Vars: 4_000, Locks: 8,
			Events: events, OpsPerTxn: 4, Pattern: workload.PatternChain,
			Inject: workload.ViolationNone, Seed: 42,
		},
		{
			Name: "unary-philo", Threads: 8, Vars: 64, Locks: 2,
			Events: events, OpsPerTxn: 4, Pattern: workload.PatternSharded,
			TxnFraction: 0, Inject: workload.ViolationNone, Seed: 42,
		},
	}

	fmt.Fprintf(w, "| Workload |")
	for _, e := range engines {
		fmt.Fprintf(w, " %s |", e.Label)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range engines {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for _, cfg := range workloads {
		fmt.Fprintf(w, "| %s |", cfg.Name)
		for _, spec := range engines {
			m := bench.RunTimed(spec, workload.New(cfg), o.Timeout)
			fmt.Fprintf(w, " %s |", m)
		}
		fmt.Fprintln(w)
	}
}

// doubleCheckerRun compares the two-phase analysis against the single-pass
// checkers on a violating workload.
func doubleCheckerRun(w io.Writer, o bench.Options) {
	events := o.MaxEvents
	if events > 400_000 {
		events = 400_000
	}
	fmt.Fprintf(w, "## DoubleChecker-style two-phase analysis (%s events; the paper declines a head-to-head, see §5.1)\n\n", human(events))
	cfg := workload.Config{
		Name: "dc-compare", Threads: 8, Vars: 4_000, Locks: 8,
		Events: events, OpsPerTxn: 4, Pattern: workload.PatternChain,
		Inject: workload.ViolationCross, InjectAt: 0.8, Seed: 7,
	}
	engines := []bench.EngineSpec{
		bench.AeroDrome(), bench.Velodrome(), bench.DoubleChecker(),
	}
	fmt.Fprintf(w, "| Workload |")
	for _, e := range engines {
		fmt.Fprintf(w, " %s |", e.Label)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range engines {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| %s |", cfg.Name)
	for _, spec := range engines {
		m := bench.RunTimed(spec, workload.New(cfg), o.Timeout)
		fmt.Fprintf(w, " %s |", m)
	}
	fmt.Fprintln(w)
}

func human(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.0fK", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}
