package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVelodromeViolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rho2.std")
	log := `t1|begin|0
t2|begin|0
t1|w(x)|0
t2|r(x)|0
t2|w(y)|0
t1|r(y)|0
t1|end|0
t2|end|0
`
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"dfs", "pearce-kelly"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-strategy", strategy, path}, &out, &errOut)
		if code != 1 {
			t.Fatalf("%s: exit %d: %s", strategy, code, errOut.String())
		}
		if !strings.Contains(out.String(), "witness cycle") {
			t.Fatalf("%s: missing witness:\n%s", strategy, out.String())
		}
		if !strings.Contains(out.String(), "graph size:") {
			t.Fatalf("%s: missing graph stats:\n%s", strategy, out.String())
		}
	}
}

func TestVelodromeSerializable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.std")
	log := "t1|begin|0\nt1|w(x)|0\nt1|end|0\n"
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "transactions: 1") {
		t.Fatalf("missing txn count:\n%s", out.String())
	}
}

func TestVelodromeErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-strategy", "bogus", "x"}, &out, &errOut); code != 2 {
		t.Fatalf("bad strategy: exit %d", code)
	}
	if code := run([]string{"-format", "bogus", "x"}, &out, &errOut); code != 2 {
		t.Fatalf("bad format: exit %d", code)
	}
	if code := run([]string{"/nonexistent"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file: exit %d", code)
	}
	if code := run([]string{"a", "b"}, &out, &errOut); code != 2 {
		t.Fatalf("extra args: exit %d", code)
	}
}
