// Command velodrome checks a trace log for conflict-serializability
// violations using the Velodrome transaction-graph algorithm (the baseline
// the paper evaluates AeroDrome against). It exists for parity with the
// paper's artifact scripts; it is equivalent to `aerodrome -algo velodrome`
// with graph statistics added.
//
// Usage:
//
//	velodrome [-strategy dfs] [-format std] [trace-file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("velodrome", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strategy := fs.String("strategy", "dfs", "cycle detection strategy: dfs or pearce-kelly")
	format := fs.String("format", "std", "trace format: std or bin")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: velodrome [-strategy S] [-format F] [trace-file]")
		return 2
	}
	if *strategy != "dfs" && *strategy != "pearce-kelly" && *strategy != "pk" {
		fmt.Fprintf(stderr, "velodrome: unknown strategy %q\n", *strategy)
		return 2
	}

	var r io.Reader = os.Stdin
	if path := fs.Arg(0); path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "velodrome:", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	var src trace.Source
	switch *format {
	case "std":
		src = rapidio.NewReader(r)
	case "bin":
		src = rapidio.NewBinaryReader(r)
	default:
		fmt.Fprintf(stderr, "velodrome: unknown format %q\n", *format)
		return 2
	}

	chk := velodrome.New(velodrome.WithStrategy(*strategy))
	start := time.Now()
	v, n := core.Run(chk, src)
	elapsed := time.Since(start)

	if errSrc, ok := src.(interface{ Err() error }); ok {
		if err := errSrc.Err(); err != nil {
			fmt.Fprintln(stderr, "velodrome:", err)
			return 2
		}
	}

	live, max := chk.GraphSize()
	fmt.Fprintf(stdout, "algorithm:    %s\nevents:       %d\ntransactions: %d\ngraph size:   %d live / %d peak\ntime:         %v\n",
		chk.Name(), n, chk.Transactions(), live, max, elapsed)
	if v != nil {
		fmt.Fprintf(stdout, "result: NOT conflict serializable — %v\n", v)
		if w := chk.Witness(); len(w) > 0 {
			fmt.Fprintf(stdout, "witness cycle (transaction ids): %v\n", w)
		}
		return 1
	}
	fmt.Fprintf(stdout, "result: conflict serializable (no atomicity violation)\n")
	return 0
}
