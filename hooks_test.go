package aerodrome_test

// Tests for the serving hooks: typed per-file errors and deterministic
// ordering from CheckFilesParallel, the Monitor's explicit-event feed and
// snapshot introspection, and the incremental (chunk-fed) checker — the
// pieces aerodromed builds its endpoints on.

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aerodrome"
	"aerodrome/internal/rapidio"
)

func encodeJSON(w io.Writer, v any) error { return json.NewEncoder(w).Encode(v) }

// rho2STD is the paper's ρ2 (a violating trace) in STD syntax.
const rho2STD = `t0|begin|0
t1|begin|0
t0|w(x)|1
t1|r(x)|1
t1|w(y)|2
t0|r(y)|2
t0|end|0
t1|end|0
`

const serializableSTD = `t0|begin|0
t0|w(x)|1
t0|end|0
t1|begin|0
t1|w(x)|1
t1|end|0
`

// TestCheckFilesParallelOrderAndTypedErrors pins the batch contract the
// server and the CLI -parallel mode rely on: results come back in input
// order regardless of completion order, and failures are typed per-file
// errors rather than a fail-fast abort.
func TestCheckFilesParallelOrderAndTypedErrors(t *testing.T) {
	dir := t.TempDir()
	// Vary file sizes wildly so completion order differs from input order.
	big := strings.Repeat("t0|begin|0\nt0|w(x)|1\nt0|end|0\n", 20_000)
	paths := []string{
		filepath.Join(dir, "big.std"),
		filepath.Join(dir, "missing.std"), // never created
		filepath.Join(dir, "viol.std"),
		filepath.Join(dir, "bad.std"),
		filepath.Join(dir, "small.std"),
	}
	writeFile := func(p, s string) {
		t.Helper()
		if err := os.WriteFile(p, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(paths[0], big)
	writeFile(paths[2], rho2STD)
	writeFile(paths[3], "t9|broken\n")
	writeFile(paths[4], serializableSTD)

	for trial := 0; trial < 4; trial++ {
		reports, err := aerodrome.CheckFilesParallel(paths, aerodrome.Auto, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(reports) != len(paths) {
			t.Fatalf("%d reports, want %d", len(reports), len(paths))
		}
		for i, fr := range reports {
			if fr.Path != paths[i] {
				t.Fatalf("result %d is %s, want %s (input order)", i, fr.Path, paths[i])
			}
		}
		if reports[0].Err != nil || !reports[0].Report.Serializable {
			t.Fatalf("big.std: %+v", reports[0])
		}
		var fe *aerodrome.FileError
		if !errors.As(reports[1].Err, &fe) || fe.Path != paths[1] {
			t.Fatalf("missing.std: error %v, want *FileError for %s", reports[1].Err, paths[1])
		}
		if !errors.Is(reports[1].Err, fs.ErrNotExist) {
			t.Fatalf("missing.std: %v does not unwrap to fs.ErrNotExist", reports[1].Err)
		}
		if reports[2].Err != nil || reports[2].Report.Serializable {
			t.Fatalf("viol.std: %+v", reports[2])
		}
		if !errors.As(reports[3].Err, &fe) || !errors.Is(fe, rapidio.ErrFormat) {
			t.Fatalf("bad.std: error %v, want *FileError wrapping a parse error", reports[3].Err)
		}
		if reports[4].Err != nil || !reports[4].Report.Serializable {
			t.Fatalf("small.std: %+v", reports[4])
		}
	}
}

// TestMonitorEventFeed pins Monitor.Event against the Checker on the same
// stream: same verdict, same index, same event accounting — the property
// that lets a decoded network stream drive a Monitor.
func TestMonitorEventFeed(t *testing.T) {
	events := []aerodrome.Event{
		{Thread: 0, Kind: aerodrome.TxBegin},
		{Thread: 0, Kind: aerodrome.OpFork, Target: 1},
		{Thread: 1, Kind: aerodrome.TxBegin},
		{Thread: 0, Kind: aerodrome.OpWrite, Target: 0},
		{Thread: 1, Kind: aerodrome.OpRead, Target: 0},
		{Thread: 1, Kind: aerodrome.OpWrite, Target: 1},
		{Thread: 0, Kind: aerodrome.OpRead, Target: 1},
		{Thread: 0, Kind: aerodrome.TxEnd},
		{Thread: 1, Kind: aerodrome.TxEnd},
	}
	checker := aerodrome.NewChecker(aerodrome.Auto)
	m := aerodrome.NewMonitor(aerodrome.WithAlgorithm(aerodrome.Auto))
	if got, want := m.Algorithm(), checker.Algorithm(); got != want {
		t.Fatalf("Algorithm = %q, want %q", got, want)
	}
	for _, e := range events {
		cv := checker.Event(e)
		mv := m.Event(e)
		if (cv != nil) != (mv != nil) {
			t.Fatalf("checker %v vs monitor %v after %+v", cv, mv, e)
		}
	}
	cv, mv := checker.Violation(), m.Violation()
	if cv == nil || mv == nil {
		t.Fatal("ρ2 must violate")
	}
	if mv.EventIndex != cv.EventIndex || mv.Check != cv.Check || mv.Thread != cv.Thread {
		t.Fatalf("monitor violation %+v, want %+v", mv, cv)
	}
	n, v := m.Snapshot()
	if n != checker.Processed() || v != mv {
		t.Fatalf("Snapshot = (%d, %v), want (%d, %v)", n, v, checker.Processed(), mv)
	}
}

// TestIncrementalChecker pins the chunk-fed checker against CheckSTD on
// the same bytes, across chunk sizes that split lines arbitrarily.
func TestIncrementalChecker(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{{"violating", rho2STD}, {"serializable", serializableSTD}} {
		want, err := aerodrome.CheckSTD(strings.NewReader(tc.data), aerodrome.Optimized)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 4, 1 << 16} {
			ic, err := aerodrome.NewIncrementalChecker(aerodrome.Optimized)
			if err != nil {
				t.Fatal(err)
			}
			if ic.Algorithm() != want.Algorithm {
				t.Fatalf("Algorithm = %q, want %q", ic.Algorithm(), want.Algorithm)
			}
			data := []byte(tc.data)
			for i := 0; i < len(data); i += chunk {
				end := min(i+chunk, len(data))
				if _, err := ic.Feed(data[i:end]); err != nil {
					t.Fatalf("%s/%d: feed: %v", tc.name, chunk, err)
				}
			}
			rep, err := ic.Close()
			if err != nil {
				t.Fatalf("%s/%d: close: %v", tc.name, chunk, err)
			}
			if rep.Serializable != want.Serializable || rep.Events != want.Events {
				t.Fatalf("%s/%d: report %+v, want %+v", tc.name, chunk, rep, want)
			}
			if !rep.Serializable && (rep.Violation.EventIndex != want.Violation.EventIndex ||
				rep.Violation.Check != want.Violation.Check) {
				t.Fatalf("%s/%d: violation %+v, want %+v", tc.name, chunk, rep.Violation, want.Violation)
			}
		}
	}
}

// TestIncrementalCheckerBinary pins the chunk-fed checker against
// CheckBinaryReader... semantics on the same bytes: the feeder sniffs the
// ADB1 magic like /v1/check, so a binary session's verdict, violation
// index and event count match the pull path regardless of how the records
// were chunked (including splits inside the magic and inside records).
func TestIncrementalCheckerBinary(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{{"violating", rho2STD}, {"serializable", serializableSTD}} {
		rd := rapidio.NewReader(strings.NewReader(tc.data))
		var bin bytes.Buffer
		bw := rapidio.NewBinaryWriter(&bin)
		for {
			ev, ok := rd.Next()
			if !ok {
				break
			}
			if err := bw.Write(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := rd.Err(); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		want, err := aerodrome.CheckBinaryReaderPipelined(bytes.NewReader(bin.Bytes()), aerodrome.Optimized)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 3, 8, 1 << 16} {
			ic, err := aerodrome.NewIncrementalChecker(aerodrome.Optimized)
			if err != nil {
				t.Fatal(err)
			}
			data := bin.Bytes()
			for i := 0; i < len(data); i += chunk {
				end := min(i+chunk, len(data))
				if _, err := ic.Feed(data[i:end]); err != nil {
					t.Fatalf("%s/%d: feed: %v", tc.name, chunk, err)
				}
			}
			rep, err := ic.Close()
			if err != nil {
				t.Fatalf("%s/%d: close: %v", tc.name, chunk, err)
			}
			if rep.Serializable != want.Serializable || rep.Events != want.Events {
				t.Fatalf("%s/%d: report %+v, want %+v", tc.name, chunk, rep, want)
			}
			if !rep.Serializable && (rep.Violation.EventIndex != want.Violation.EventIndex ||
				rep.Violation.Check != want.Violation.Check) {
				t.Fatalf("%s/%d: violation %+v, want %+v", tc.name, chunk, rep.Violation, want.Violation)
			}
		}
	}
}

// TestIncrementalCheckerParseError pins the failure mode a session turns
// into an HTTP 400: malformed chunks latch a typed parse error.
func TestIncrementalCheckerParseError(t *testing.T) {
	ic, err := aerodrome.NewIncrementalChecker(aerodrome.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ic.Feed([]byte("t0|begin|0\ngarbage\n")); !errors.Is(err, rapidio.ErrFormat) {
		t.Fatalf("feed error %v, want rapidio.ErrFormat", err)
	}
	if _, err := ic.Close(); !errors.Is(err, rapidio.ErrFormat) {
		t.Fatalf("close error %v, want rapidio.ErrFormat", err)
	}
}

// TestReportJSONShape pins the wire format served by aerodromed.
func TestReportJSONShape(t *testing.T) {
	rep, err := aerodrome.CheckSTD(strings.NewReader(rho2STD), aerodrome.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encodeJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"serializable":false`, `"event_index":`, `"check":`, `"algorithm":`, `"events":`} {
		if !strings.Contains(buf.String(), field) {
			t.Fatalf("report JSON %s missing %s", buf.String(), field)
		}
	}
}
