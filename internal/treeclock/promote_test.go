package treeclock

import (
	"testing"

	"aerodrome/internal/vc"
)

// TestPromoteFromFlatVersionStreamContinues is the regression test for the
// re-promotion version-stream bug: a peer clock that recorded a high
// version claim for a thread before its demotion must NOT use that stale
// claim to skip joins from the re-promoted tree. PromoteFromFlat must
// seat the owner's version stream above every previously published claim,
// not restart it at 1.
func TestPromoteFromFlatVersionStreamContinues(t *testing.T) {
	// Thread 1 pumps its version stream high and publishes a claim to a
	// peer via a tree-tree join.
	c1 := New()
	c1.InitUnit(1)
	for i := 0; i < 30; i++ {
		c1.Inc(1)
	}
	peer := New()
	peer.InitUnit(0)
	peer.Join(c1)
	if got := peer.At(1); got != 31 {
		t.Fatalf("peer.At(1) = %d, want 31 after first join", got)
	}

	// Thread 1 demotes (the flat side's mutation counter is seated above
	// the abandoned tree's, as hybridClock.demoteToFlat does), then
	// re-promotes and keeps going.
	flat := c1.Flat()
	flatMut := c1.Ver() + 1 // demoteToFlat's seating
	c1 = New()
	c1.PromoteFromFlat(1, flat, flatMut+1) // promoteToTree's seating
	for i := 0; i < 7; i++ {
		c1.Inc(1)
	}

	// The peer's stale claim (ver from before the demotion) must not
	// cover the re-promoted tree's content.
	peer.Join(c1)
	if got, want := peer.At(1), c1.At(1); got != want {
		t.Fatalf("peer.At(1) = %d, want %d: stale pre-demotion claim skipped the re-promoted join", got, want)
	}
	if !c1.Leq(peer) {
		t.Fatalf("c1 ⋢ peer after peer absorbed it")
	}
}

// TestPromoteFromFlatBasics pins the promoted tree's shape and semantics.
func TestPromoteFromFlatBasics(t *testing.T) {
	var m vc.Clock
	m = m.Set(0, 5).Set(2, 9).Set(3, 1)
	c := New()
	c.PromoteFromFlat(2, m, 100)
	if got := c.Flat(); !got.Leq(m) || !m.Leq(got) {
		t.Fatalf("promoted content %v, want %v", got, m)
	}
	if c.Ver() != 100 {
		t.Fatalf("Ver() = %d, want the verFloor 100", c.Ver())
	}
	// Owned: Inc must work and bump only the own component.
	c.Inc(2)
	if c.At(2) != 10 || c.At(0) != 5 {
		t.Fatalf("after Inc: At(2)=%d At(0)=%d", c.At(2), c.At(0))
	}
	// An owner absent from the flat vector still gets its unit component.
	c2 := New()
	c2.PromoteFromFlat(7, m, 1)
	if c2.At(7) != 1 {
		t.Fatalf("absent owner component = %d, want 1", c2.At(7))
	}
	// Joins out of a promoted tree transfer everything.
	dst := New()
	dst.InitUnit(4)
	dst.Join(c)
	for _, tid := range []int{0, 2, 3} {
		if dst.At(tid) != c.At(tid) {
			t.Fatalf("dst.At(%d) = %d, want %d", tid, dst.At(tid), c.At(tid))
		}
	}
}
