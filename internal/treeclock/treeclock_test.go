package treeclock

import (
	"fmt"
	"math/rand"
	"testing"

	"aerodrome/internal/vc"
)

// pair is a tree clock and the flat reference clock it must track.
type pair struct {
	tc *Clock
	fc vc.Clock
}

func (p *pair) check(t *testing.T, ctx string) {
	t.Helper()
	got := p.tc.Flat()
	if !got.Equal(p.fc) {
		t.Fatalf("%s: tree %v != flat %v\ntree:\n%s", ctx, got, p.fc, p.tc.debugTree())
	}
	// The lazily maintained flat mirror must agree with the node arena:
	// the flat-interop operations (and hence the hybrid engine's verdicts)
	// read the mirror, not the nodes.
	if mv := p.tc.flatView(); !mv.Equal(p.fc) {
		t.Fatalf("%s: mirror %v != flat %v\ntree:\n%s", ctx, mv, p.fc, p.tc.debugTree())
	}
}

// TestUnitAndInc checks the thread-clock lifecycle basics.
func TestUnitAndInc(t *testing.T) {
	c := New()
	c.InitUnit(3)
	if c.At(3) != 1 || c.At(0) != 0 || c.At(99) != 0 {
		t.Fatalf("unit clock wrong: %v", c)
	}
	c.Inc(3)
	c.Inc(3)
	if c.At(3) != 3 {
		t.Fatalf("inc: got %d", c.At(3))
	}
	if c.HasEntryOtherThan(3) {
		t.Fatalf("own-only clock reported foreign entries")
	}
	if !c.HasEntryOtherThan(4) {
		t.Fatalf("nonzero clock must have entries other than t4")
	}
}

func TestJoinBasic(t *testing.T) {
	a, b := New(), New()
	a.InitUnit(0)
	b.InitUnit(1)
	b.Inc(1)
	a.Join(b)
	if a.At(0) != 1 || a.At(1) != 2 {
		t.Fatalf("join: %v", a)
	}
	if !b.Leq(a) {
		t.Fatalf("b ⊑ a must hold after a ⊔= b")
	}
	if a.Leq(b) {
		t.Fatalf("a ⋢ b: a has component 0")
	}
}

// TestStaleRejoin reproduces the publish-absorb-publish pattern that makes
// the classical local-clock keying unsound for AeroDrome: thread 0
// publishes, absorbs new knowledge without incrementing, and publishes
// again; the second publish must not be skipped.
func TestStaleRejoin(t *testing.T) {
	c0, c1, c2 := New(), New(), New()
	c0.InitUnit(0)
	c1.InitUnit(1)
	c2.InitUnit(2)

	c1.Join(c0) // t1 absorbs t0's clock (publish #1)
	c2.Inc(2)
	c0.Join(c2) // t0 absorbs t2 — no local increment
	c1.Join(c0) // publish #2: t1 must now learn t2's component
	if c1.At(2) != 2 {
		t.Fatalf("second publish lost t2's component: %v\n%s", c1, c1.debugTree())
	}
}

// TestAuxiliaryJoin covers the inexact-root path: joining a thread clock
// into an auxiliary clock (AeroDrome's end-event lock/write propagation)
// and consuming the result.
func TestAuxiliaryJoin(t *testing.T) {
	c0, c1 := New(), New()
	c0.InitUnit(0)
	c1.InitUnit(1)
	l := New()
	l.CopyFrom(c0) // rel(ℓ) by t0
	c1.Inc(1)
	l.Join(c1) // end-event propagation into the lock clock
	if l.At(0) != 1 || l.At(1) != 2 {
		t.Fatalf("aux join: %v", l)
	}
	acq := New()
	acq.InitUnit(3)
	acq.Join(l)
	if acq.At(0) != 1 || acq.At(1) != 2 || acq.At(3) != 1 {
		t.Fatalf("join from inexact aux: %v\n%s", acq, acq.debugTree())
	}
}

func TestJoinZeroingInto(t *testing.T) {
	c := New()
	c.InitUnit(2)
	c.Inc(2)
	o := New()
	o.InitUnit(5)
	c.Join(o)
	var dst vc.Sparse
	c.JoinZeroingInto(&dst, 2)
	if dst.At(2) != 0 || dst.At(5) != 1 {
		t.Fatalf("zeroing join: %v", dst.Flat())
	}
}

func TestJoinFlat(t *testing.T) {
	c := New()
	c.InitUnit(1)
	c.Inc(1)
	c.JoinFlat(vc.Clock{3, 1, 0, 4})
	want := vc.Clock{3, 2, 0, 4}
	if !c.Flat().Equal(want) {
		t.Fatalf("JoinFlat: %v want %v\n%s", c.Flat(), want, c.debugTree())
	}
	ver := c.Ver()
	c.JoinFlat(vc.Clock{2, 1, 0, 4}) // dominated: must be a no-op
	if c.Ver() != ver {
		t.Fatalf("dominated JoinFlat mutated the clock")
	}
	// A tree that absorbed flat content must still join correctly into
	// other trees (the ver-0 entries are never skipped).
	d := New()
	d.InitUnit(0)
	d.Join(c)
	if !d.Flat().Equal(vc.Clock{3, 2, 0, 4}) {
		t.Fatalf("join from flat-tainted tree: %v\nsrc:\n%s", d.Flat(), c.debugTree())
	}
}

func TestJoinFlatIntoEmptyAux(t *testing.T) {
	c := New()
	c.JoinFlat(vc.Clock{0, 5, 0, 2})
	if !c.Flat().Equal(vc.Clock{0, 5, 0, 2}) {
		t.Fatalf("JoinFlat into ⊥: %v", c.Flat())
	}
	d := New()
	d.InitUnit(0)
	d.Join(c)
	if !d.Flat().Equal(vc.Clock{1, 5, 0, 2}) {
		t.Fatalf("join from flat-built tree: %v", d.Flat())
	}
}

func TestAbsorbIntoFlat(t *testing.T) {
	c := New()
	c.InitUnit(2)
	c.Inc(2)
	o := New()
	o.InitUnit(4)
	c.Join(o)
	dst := vc.Clock{7, 0, 1}
	dst, grew, changed := c.AbsorbIntoFlat(dst)
	if !changed || grew != 1 {
		t.Fatalf("changed=%v grew=%d", changed, grew)
	}
	if !dst.Equal(vc.Clock{7, 0, 2, 0, 1}) {
		t.Fatalf("AbsorbIntoFlat: %v", dst)
	}
	_, grew, changed = c.AbsorbIntoFlat(dst)
	if changed || grew != 0 {
		t.Fatalf("dominated absorb reported change (%v, %d)", changed, grew)
	}
}

func TestLeqFlat(t *testing.T) {
	c := New()
	c.InitUnit(1)
	c.Inc(1)
	if !c.LeqFlat(vc.Clock{0, 2}) || !c.LeqFlat(vc.Clock{5, 3, 9}) {
		t.Fatalf("LeqFlat false negative")
	}
	if c.LeqFlat(vc.Clock{0, 1}) || c.LeqFlat(nil) {
		t.Fatalf("LeqFlat false positive")
	}
}

// TestRandomizedAgainstFlat drives randomized operation sequences shaped
// exactly like AeroDrome's clock discipline through tree clocks and flat
// clocks in lockstep, checking vector equality after every operation and
// Leq agreement on random pairs.
func TestRandomizedAgainstFlat(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for iter := 0; iter < iters; iter++ {
		seed := int64(1000 + iter)
		r := rand.New(rand.NewSource(seed))
		nThreads := 2 + r.Intn(6)
		nAux := 1 + r.Intn(4)
		steps := 20 + r.Intn(120)

		threads := make([]*pair, nThreads)
		begins := make([]*pair, nThreads) // monotone-copy targets (cb_t)
		aux := make([]*pair, nAux)
		for i := range threads {
			tc := New()
			tc.InitUnit(i)
			threads[i] = &pair{tc: tc, fc: vc.Unit(i)}
			begins[i] = &pair{tc: New(), fc: nil}
		}
		for i := range aux {
			aux[i] = &pair{tc: New(), fc: nil}
		}
		// Flat-only auxiliaries, as the hybrid engine keeps them: fauxs is
		// maintained through the tree interop APIs (AbsorbIntoFlat), frefs
		// through plain flat operations; they must stay equal.
		nFlat := 1 + r.Intn(3)
		fauxs := make([]vc.Clock, nFlat)
		frefs := make([]vc.Clock, nFlat)
		all := func() []*pair {
			out := append([]*pair{}, threads...)
			out = append(out, begins...)
			return append(out, aux...)
		}

		for step := 0; step < steps; step++ {
			ti := r.Intn(nThreads)
			ui := r.Intn(nThreads)
			ai := r.Intn(nAux)
			fi := r.Intn(nFlat)
			ctx := fmt.Sprintf("seed %d step %d", seed, step)
			switch r.Intn(10) {
			case 0: // begin: inc own component, monotone-copy the begin clock
				threads[ti].tc.Inc(ti)
				threads[ti].fc = threads[ti].fc.Inc(ti)
				begins[ti].tc.MonotoneCopyFrom(threads[ti].tc)
				begins[ti].fc = threads[ti].fc.CopyInto(begins[ti].fc)
				begins[ti].check(t, ctx+" begin-copy")
			case 1: // thread ⊔= thread
				threads[ti].tc.Join(threads[ui].tc)
				threads[ti].fc = threads[ti].fc.Join(threads[ui].fc)
			case 2: // aux := thread (release / unary write)
				aux[ai].tc.CopyFrom(threads[ti].tc)
				aux[ai].fc = threads[ti].fc.CopyInto(aux[ai].fc)
			case 3: // aux ⊔= thread (end-event propagation)
				aux[ai].tc.Join(threads[ti].tc)
				aux[ai].fc = aux[ai].fc.Join(threads[ti].fc)
			case 4: // thread ⊔= aux (acquire / read check)
				threads[ti].tc.Join(aux[ai].tc)
				threads[ti].fc = threads[ti].fc.Join(aux[ai].fc)
			case 5: // Leq agreement on random operands
				x, y := all()[r.Intn(2*nThreads+nAux)], all()[r.Intn(2*nThreads+nAux)]
				if got, want := x.tc.Leq(y.tc), x.fc.Leq(y.fc); got != want {
					t.Fatalf("%s: Leq=%v want %v\nx=%v y=%v\nxtree:\n%s ytree:\n%s",
						ctx, got, want, x.fc, y.fc, x.tc.debugTree(), y.tc.debugTree())
				}
			case 6: // zeroing join agreement
				var dt vc.Sparse
				threads[ti].tc.JoinZeroingInto(&dt, ti)
				df := vc.Clock(nil).JoinZeroing(threads[ti].fc, ti)
				if !dt.Flat().Equal(df) {
					t.Fatalf("%s: zeroing %v want %v", ctx, dt.Flat(), df)
				}
			case 7: // thread ⊔= flat aux (hybrid acquire / read check)
				threads[ti].tc.JoinFlat(fauxs[fi])
				threads[ti].fc = threads[ti].fc.Join(frefs[fi])
			case 8: // flat aux ⊔= thread (hybrid end-event propagation)
				fauxs[fi], _, _ = threads[ti].tc.AbsorbIntoFlat(fauxs[fi])
				frefs[fi] = frefs[fi].Join(threads[ti].fc)
				if !fauxs[fi].Equal(frefs[fi]) {
					t.Fatalf("%s: absorb %v want %v", ctx, fauxs[fi], frefs[fi])
				}
			case 9: // tree ⊑ flat agreement (hybrid checkAndGet)
				got := threads[ti].tc.LeqFlat(fauxs[fi])
				want := threads[ti].fc.Leq(frefs[fi])
				if got != want {
					t.Fatalf("%s: LeqFlat=%v want %v\nflat=%v tree:\n%s",
						ctx, got, want, frefs[fi], threads[ti].tc.debugTree())
				}
			}
			threads[ti].check(t, ctx+" thread")
			aux[ai].check(t, ctx+" aux")
		}
	}
}

// TestJoinSkipsDominatedSubtrees is a white-box check that the version
// fast paths actually fire: re-joining an unchanged clock must not grow
// the mutation counter.
func TestJoinSkipsDominatedSubtrees(t *testing.T) {
	a, b := New(), New()
	a.InitUnit(0)
	b.InitUnit(1)
	a.Join(b)
	before := a.Ver()
	a.Join(b) // nothing new: whole-tree fast path
	if a.Ver() != before {
		t.Fatalf("re-join of unchanged clock mutated the target")
	}
}

func BenchmarkTreeJoinWide(b *testing.B) {
	// One hub clock that already knows 256 threads, joined into a fresh
	// thread clock: first join pays for the transfer, the rest hit the
	// whole-tree fast path.
	hub := New()
	hub.InitUnit(0)
	for u := 1; u < 256; u++ {
		c := New()
		c.InitUnit(u)
		hub.Join(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New()
		c.InitUnit(1)
		c.Join(hub)
		c.Join(hub)
	}
}

func BenchmarkTreeJoinFastPath(b *testing.B) {
	hub := New()
	hub.InitUnit(0)
	for u := 1; u < 256; u++ {
		c := New()
		c.InitUnit(u)
		hub.Join(c)
	}
	sink := New()
	sink.InitUnit(1)
	sink.Join(hub)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Join(hub) // dominated: must be O(1)
	}
}

func BenchmarkTreeMonotoneCopy(b *testing.B) {
	src := New()
	src.InitUnit(0)
	for u := 1; u < 256; u++ {
		c := New()
		c.InitUnit(u)
		src.Join(c)
	}
	dst := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Inc(0)
		dst.MonotoneCopyFrom(src) // only the root entry changed
	}
}

func BenchmarkTreeLeqDominated(b *testing.B) {
	src := New()
	src.InitUnit(0)
	for u := 1; u < 256; u++ {
		c := New()
		c.InitUnit(u)
		src.Join(c)
	}
	big := New()
	big.InitUnit(1)
	big.Join(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !src.Leq(big) {
			b.Fatal("src must be ⊑ big")
		}
	}
}
