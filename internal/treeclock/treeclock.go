// Package treeclock implements the tree clock data structure of "A Tree
// Clock Data Structure for Causal Orderings in Concurrent Executions"
// (Mathur, Tunç, Pavlogiannis, Viswanathan; ASPLOS 2022), adapted to the
// clock discipline of the AeroDrome atomicity checker.
//
// A tree clock represents a vector time as a tree of per-thread entries.
// Each node remembers how its subtree's knowledge was acquired (from which
// thread, at which version), which lets Join and Leq skip entire subtrees
// the target already dominates: the cost of an operation is proportional
// to the number of entries that actually change, not to the total thread
// count. Copies between a thread clock and its begin clock additionally
// take the monotone-copy fast path (the destination is known to be ⊑ the
// source, so the copy is a pruned join that adopts the source's version).
//
// # Version streams instead of local clocks
//
// The ASPLOS 2022 construction keys subtree-skipping on the local clock of
// the source's root thread: "if I already have u's component at ≥ C_u(u),
// I have everything C_u knows". That inference is only sound for analyses
// (HB, FastTrack, SHB, …) that increment a thread's local clock at every
// release-style event, so a thread never publishes two different clock
// states under the same local time. AeroDrome increments a thread's local
// component only at transaction begins, while the clock both absorbs and
// publishes knowledge between begins; the local component therefore cannot
// version the clock's content. This implementation decouples the two: each
// thread-owned clock maintains a private version counter, bumped on every
// content mutation, and nodes carry
//
//	clk  — the semantic vector component for the node's thread (what At,
//	       Leq and Join operate on), and
//	ver  — a version claim: the whole tree dominates thread tid's clock
//	       at version ver, and the node's subtree is dominated by it.
//	aclk — the attachment claim: the parent node's thread had absorbed
//	       C_tid@ver by parent-version aclk (Unattributed when the
//	       attachment cannot be attributed, see below).
//
// AeroDrome also joins into auxiliary clocks (a completing transaction
// propagates into lock and write clocks), after which an auxiliary clock's
// content is no longer exactly "some thread's clock at some version". Such
// roots are marked inexact: their subtrees are never skipped wholesale and
// their new children attach Unattributed, but the rest of the tree keeps
// its claims, so pruning degrades locally instead of breaking globally.
//
// # Flat interop (the hybrid representation)
//
// The hybrid engine keeps tree clocks for the per-thread clocks but flat
// vc.Clocks for the auxiliary accumulators, so trees must absorb flat
// content (JoinFlat) and flat clocks must absorb trees (AbsorbIntoFlat,
// LeqFlat). A flat source carries no version stream at all, so every entry
// a flat join raises or creates is unattributable: it gets ver 0 — "no
// claim" — and re-attaches directly under the root, whose refreshed
// whole-tree claim (owned roots) or vacuous one (inexact roots) covers it.
// The collect and Leq walks never skip a ver-0 node through its own claim;
// they may still skip it through a parent's subtree or attachment claim,
// which the re-attach discipline keeps truthful.
//
// All operations preserve the invariant that the represented vector equals
// what the flat vc.Clock operations would compute; the package tests check
// this against internal/vc on randomized operation sequences, and the
// engine-level differential tests check verdict and violation-index
// equality of the flat-clock and tree-clock checkers.
package treeclock

import (
	"fmt"
	"math"
	"strings"

	"aerodrome/internal/vc"
)

// Unattributed is the sentinel attachment version for subtrees that cannot
// be attributed to their parent thread's version stream (attachments made
// while joining into an auxiliary clock). Unattributed children sort first
// and never trigger the early sibling stop.
const Unattributed = vc.Time(math.MaxInt64)

// nilNode is the null node index.
const nilNode = int32(-1)

type node struct {
	tid  int32
	clk  vc.Time // semantic component of thread tid
	ver  vc.Time // version claim (see the package comment)
	aclk vc.Time // attachment claim against the parent's version stream

	parent int32
	head   int32 // first child (most recently attached)
	next   int32 // next younger sibling
	prev   int32 // previous (more recently attached) sibling
}

// Clock is a tree clock. The zero value is not ready for use; create
// clocks with New.
type Clock struct {
	nodes  []node
	tidIdx []int32 // tid → node index, nilNode when absent
	root   int32
	owner  int32   // owning thread for thread clocks, -1 for auxiliary
	vcnt   vc.Time // version stream head (owned clocks)
	exact  bool    // content == C_{root.tid}@root.ver exactly
	shared bool    // arena is aliased (copy-on-write; see alias)
	mut    uint64  // mutation counter (engine epoch fast paths)
	maxTid int32   // highest tid with a node, -1 when empty (flat interop)
	walk   []int32 // scratch for join collection

	// mirror is a flat snapshot of the represented vector, rebuilt lazily
	// at most once per mutation epoch (mirrorVer tracks mut). The bulk
	// flat-interop operations consume it so that flushing one ending
	// transaction's clock into many flat accumulators pays the node walk
	// once and a tight two-slice loop per accumulator. SharedFlatView hands
	// the snapshot out as an immutable alias (mirrorShared); the next
	// rebuild then allocates a fresh backing array instead of overwriting.
	mirror       vc.Clock
	mirrorVer    uint64
	mirrorNz     int
	mirrorShared bool

	// starBuf is the spare node arena joinFlatStar swaps against, so bulk
	// rebuilds recycle storage instead of allocating per join.
	starBuf []node
}

// New returns an empty auxiliary clock (⊥).
func New() *Clock {
	return &Clock{root: nilNode, owner: -1, maxTid: -1, mirrorVer: ^uint64(0)}
}

// flatView returns the flat snapshot of the represented vector, rebuilding
// it only when the clock mutated since the last call. Callers must treat
// the returned slice as read-only and must not retain it across mutations
// (SharedFlatView is the retaining variant).
func (c *Clock) flatView() vc.Clock {
	if c.mirrorVer != c.mut {
		if c.mirrorShared {
			// The previous snapshot is aliased by flat clocks: leave it to
			// them and build the new one in a fresh backing array.
			c.mirror, c.mirrorShared = nil, false
		}
		c.mirror = c.mirror[:0]
		c.mirrorNz = 0
		if c.maxTid >= 0 {
			n := int(c.maxTid) + 1
			if len(c.nodes) == n && n <= cap(c.mirror) {
				// Gap-free tree into recycled storage: every slot is
				// overwritten below, so skip Grow's zero-fill.
				c.mirror = c.mirror[:n]
			} else {
				c.mirror = c.mirror.Grow(n)
			}
			for i := range c.nodes {
				nd := &c.nodes[i]
				c.mirror[nd.tid] = nd.clk
				if nd.clk != 0 {
					c.mirrorNz++
				}
			}
		}
		c.mirrorVer = c.mut
	}
	return c.mirror
}

// SharedFlatView returns the flat snapshot of the represented vector as an
// immutable alias the caller may retain, plus its nonzero-component count:
// the hybrid engine's flat accumulators absorb whole thread clocks by
// holding the snapshot instead of copying it (copy-on-write assignment).
// Thread clocks grow monotonically, so a retained snapshot stays a valid
// lower bound of the source forever; the clock allocates a fresh backing
// array at the next rebuild rather than overwriting a handed-out one.
func (c *Clock) SharedFlatView() (vc.Clock, int) {
	m := c.flatView()
	c.mirrorShared = true
	return m, c.mirrorNz
}

// mirrorPatchable reports whether in-place updates may keep the mirror
// coherent (it is current) instead of invalidating it for a full rebuild.
// Callers that see true write changed components through patchMirror and
// then restamp mirrorVer to the new mutation count.
func (c *Clock) mirrorPatchable() bool {
	return c.mirrorVer == c.mut
}

// patchMirror applies one component update to a patchable mirror, growing
// it on demand and maintaining the nonzero count. A snapshot handed out
// through SharedFlatView is copied first (one memmove — far cheaper than
// the zero-fill-and-scatter rebuild the alternative invalidation would
// cost on the next flat-interop call). clk must be the new (joined, hence
// nondecreasing) value.
func (c *Clock) patchMirror(tid int32, clk vc.Time) {
	if c.mirrorShared {
		c.mirror = append(vc.Clock(nil), c.mirror...)
		c.mirrorShared = false
	}
	if int(tid) >= len(c.mirror) {
		c.mirror = c.mirror.Grow(int(tid) + 1)
	}
	if c.mirror[tid] == 0 && clk != 0 {
		c.mirrorNz++
	}
	c.mirror[tid] = clk
}

// InitUnit resets the clock to ⊥[1/t] and marks it as owned by thread t:
// this clock is C_t and carries t's version stream.
func (c *Clock) InitUnit(t int) {
	c.reset()
	c.owner = int32(t)
	c.vcnt = 1
	c.root = c.newNode(int32(t), 1, 1, Unattributed)
	c.exact = true
	c.mut++
}

func (c *Clock) reset() {
	if c.shared {
		// The arena is aliased by other clocks: abandon it to them.
		c.nodes, c.tidIdx, c.shared = nil, nil, false
	}
	c.nodes = c.nodes[:0]
	for i := range c.tidIdx {
		c.tidIdx[i] = nilNode
	}
	c.root = nilNode
	c.exact = false
	c.maxTid = -1
}

// alias makes c share o's arena without copying: assignments whose result
// is exactly the source (deep copies, dominated joins) are O(1), and the
// arena is copied out lazily by whichever side mutates first
// (materialize). End-event flushes write the same ending clock into many
// accumulators; with aliasing they cost one arena copy per source
// mutation epoch instead of one per accumulator.
func (c *Clock) alias(o *Clock) {
	if c.shared {
		c.nodes, c.tidIdx = nil, nil
	}
	c.nodes = o.nodes
	c.tidIdx = o.tidIdx
	c.root = o.root
	c.maxTid = o.maxTid
	c.shared = true
	o.shared = true
}

// materialize gives c its own copy of an aliased arena. Every mutating
// operation calls it before writing.
func (c *Clock) materialize() {
	if !c.shared {
		return
	}
	nodes, tidIdx := c.nodes, c.tidIdx
	c.nodes = append([]node(nil), nodes...)
	c.tidIdx = append([]int32(nil), tidIdx...)
	c.shared = false
}

func (c *Clock) newNode(tid int32, clk, ver, aclk vc.Time) int32 {
	idx := int32(len(c.nodes))
	c.nodes = append(c.nodes, node{
		tid: tid, clk: clk, ver: ver, aclk: aclk,
		parent: nilNode, head: nilNode, next: nilNode, prev: nilNode,
	})
	for int(tid) >= len(c.tidIdx) {
		c.tidIdx = append(c.tidIdx, nilNode)
	}
	c.tidIdx[tid] = idx
	if tid > c.maxTid {
		c.maxTid = tid
	}
	return idx
}

func (c *Clock) nodeOf(tid int32) int32 {
	if int(tid) >= len(c.tidIdx) {
		return nilNode
	}
	return c.tidIdx[tid]
}

// At returns the semantic component for thread t (0 when absent).
func (c *Clock) At(t int) vc.Time {
	if t < 0 || t >= len(c.tidIdx) {
		return 0
	}
	if n := c.tidIdx[t]; n != nilNode {
		return c.nodes[n].clk
	}
	return 0
}

// verOf returns the version claim this tree holds for thread tid (0 when
// it holds none).
func (c *Clock) verOf(tid int32) vc.Time {
	if n := c.nodeOf(tid); n != nilNode {
		return c.nodes[n].ver
	}
	return 0
}

// Inc increments component t. The clock must be owned by t (thread clocks
// increment only their own component, at transaction begins).
func (c *Clock) Inc(t int) {
	if c.root == nilNode || c.nodes[c.root].tid != int32(t) || c.owner != int32(t) {
		panic("treeclock: Inc on a clock not owned by the thread")
	}
	c.materialize()
	patch := c.mirrorPatchable()
	c.vcnt++
	r := &c.nodes[c.root]
	r.clk++
	r.ver = c.vcnt
	c.mut++
	if patch {
		c.patchMirror(r.tid, r.clk)
		c.mirrorVer = c.mut
	}
}

// Ver returns the mutation counter: it changes whenever the represented
// vector may have changed, so (clock identity, Ver) pairs serve as epochs
// for already-dominated fast paths.
func (c *Clock) Ver() uint64 { return c.mut }

// NumEntries returns the number of explicitly stored (nonzero) components.
func (c *Clock) NumEntries() int { return len(c.nodes) }

// HasEntryOtherThan reports whether some component other than t is
// nonzero.
func (c *Clock) HasEntryOtherThan(t int) bool {
	if len(c.nodes) > 1 {
		return true
	}
	return len(c.nodes) == 1 && c.nodes[c.root].tid != int32(t)
}

// detach unlinks node v from its parent's child list.
func (c *Clock) detach(v int32) {
	n := &c.nodes[v]
	if n.parent == nilNode {
		return
	}
	if n.prev != nilNode {
		c.nodes[n.prev].next = n.next
	} else {
		c.nodes[n.parent].head = n.next
	}
	if n.next != nilNode {
		c.nodes[n.next].prev = n.prev
	}
	n.parent, n.next, n.prev = nilNode, nilNode, nilNode
}

// attach links v under p keeping the child list sorted by aclk descending
// (Unattributed first). Fresh attachments carry the newest claims, so the
// insertion point is almost always the list head.
func (c *Clock) attach(p, v int32, aclk vc.Time) {
	c.nodes[v].aclk = aclk
	c.nodes[v].parent = p
	prev := nilNode
	cur := c.nodes[p].head
	for cur != nilNode && c.nodes[cur].aclk > aclk {
		prev = cur
		cur = c.nodes[cur].next
	}
	n := &c.nodes[v]
	n.prev, n.next = prev, cur
	if prev == nilNode {
		c.nodes[p].head = v
	} else {
		c.nodes[prev].next = v
	}
	if cur != nilNode {
		c.nodes[cur].prev = v
	}
}

// Join sets c to c ⊔ o. Subtrees of o whose version claims the target
// already holds are skipped without being visited.
func (c *Clock) Join(o *Clock) { c.join(o, true) }

func (c *Clock) join(o *Clock, allowCopy bool) {
	if o == c || o.root == nilNode {
		return
	}
	if c.root == nilNode {
		c.alias(o)
		c.exact = o.exact
		c.mut++
		return
	}
	or := &o.nodes[o.root]
	if o.exact && c.verOf(or.tid) >= or.ver {
		return // whole-tree fast path: everything o knows is already here
	}
	// Dominated-target fast path (auxiliary clocks only): when o already
	// holds this clock's root claim, c ⊑ o and the join result is o itself,
	// so the collect/attach walk collapses into a bulk copy. This is the
	// common shape of AeroDrome's end-event flushes — the ending
	// transaction absorbed R_x at its write event, so its final clock
	// dominates the accumulator it flushes into. (Owned clocks must keep
	// their own root and version stream, so they never take this path, and
	// MonotoneCopyFrom opts out: its target trails the source by one
	// mutation, so the incremental walk beats the bulk copy.)
	if allowCopy && c.owner < 0 && c.exact &&
		o.verOf(c.nodes[c.root].tid) >= c.nodes[c.root].ver {
		c.alias(o)
		c.exact = o.exact
		c.mut++
		return
	}

	// Collect the nodes of o that carry anything new (pre-order, so
	// parents precede children). The root is always collected: even when
	// its own entry is stale, an inexact root's children may be new.
	c.walk = c.walk[:0]
	c.collect(o, o.root)
	if len(c.walk) == 1 && c.verOf(or.tid) >= or.ver && c.At(int(or.tid)) >= or.clk {
		return // nothing new anywhere
	}

	// Absorb: update entries and re-attach updated subtrees mirroring the
	// source structure, so the new attachment claims are the source's own.
	c.materialize()
	patch := c.mirrorPatchable()
	aclkRoot := Unattributed
	if c.owner >= 0 {
		aclkRoot = c.vcnt + 1 // the post-join version, set below
	}
	for _, oi := range c.walk {
		on := &o.nodes[oi]
		v := c.nodeOf(on.tid)
		if v == nilNode {
			v = c.newNode(on.tid, on.clk, on.ver, Unattributed)
			if patch {
				c.patchMirror(on.tid, on.clk)
			}
		} else {
			n := &c.nodes[v]
			if on.clk > n.clk {
				n.clk = on.clk
				if patch {
					c.patchMirror(on.tid, on.clk)
				}
				if on.ver == 0 {
					// Unattributable content (a flat join, see JoinFlat)
					// raised this component: the node's old claim no longer
					// dominates its own entry, so drop it.
					n.ver = 0
				}
			}
			// Version claims upgrade monotonically, but never resurrect:
			// a demoted (ver-0) node's subtree may hold children attached
			// past any claim the source can transfer, so it stays
			// unattributable for good (pruning degrades locally; the walks
			// simply always visit it).
			if on.ver > n.ver && n.ver != 0 {
				n.ver = on.ver
			}
		}
		if v == c.root {
			continue // the root never moves
		}
		c.detach(v)
		if oi == o.root {
			c.attach(c.root, v, aclkRoot)
			continue
		}
		// The parent was collected earlier (pre-order), so its counterpart
		// exists and the source's attachment claim can carry over — but
		// only when the merged node's final claim is still covered by the
		// source's (ver ≤ on.ver and nonzero): the source claim
		// C_parent@aclk ⊒ C_tid@on.ver only chains to the target node's
		// subtree through the node's own claim. Unattributed subtrees,
		// ver-0 (unattributable) nodes, nodes whose retained claim exceeds
		// the source's, and children of demoted parents must not sit below
		// an attributed claim chain — the sibling-stop logic would skip
		// them on the strength of claims that do not cover their content —
		// so they re-root under the target root, whose claim covers them
		// (owned targets) or is vacuous (inexact auxiliary targets).
		if on.aclk == Unattributed || c.nodes[v].ver == 0 || c.nodes[v].ver > on.ver {
			c.attach(c.root, v, aclkRoot)
			continue
		}
		p := c.nodeOf(o.nodes[on.parent].tid)
		if p == nilNode || (p != c.root && c.nodes[p].ver == 0) {
			c.attach(c.root, v, aclkRoot)
			continue
		}
		c.attach(p, v, on.aclk)
	}

	if c.owner >= 0 {
		c.vcnt++
		c.nodes[c.root].ver = c.vcnt
		c.exact = true
	} else {
		// Foreign knowledge joined into an auxiliary clock: the content is
		// no longer attributable to the root thread's version stream.
		c.exact = false
	}
	c.mut++
	if patch {
		c.mirrorVer = c.mut
	}
}

// collect appends the source nodes that may carry new knowledge, in
// pre-order. A child whose version claim the target already holds is
// skipped with its whole subtree; once a child's attachment claim is
// covered by the target's claim for the parent thread, all remaining
// (older) siblings are skipped too. Ver-0 children carry no claim of their
// own (unattributable flat content) and are always collected.
func (c *Clock) collect(o *Clock, oi int32) {
	c.walk = append(c.walk, oi)
	on := &o.nodes[oi]
	pver := c.verOf(on.tid)
	for ch := on.head; ch != nilNode; ch = o.nodes[ch].next {
		cn := &o.nodes[ch]
		if cn.ver == 0 || c.verOf(cn.tid) < cn.ver {
			c.collect(o, ch)
			continue
		}
		if cn.aclk != Unattributed && cn.aclk <= pver {
			break // older siblings were attached at even earlier versions
		}
	}
}

// CopyFrom overwrites c with the contents of o (assignment; the paper's
// V := V' for unrelated clocks). The arenas are shared copy-on-write.
func (c *Clock) CopyFrom(o *Clock) {
	if o == c {
		return
	}
	ex := o.exact
	c.alias(o)
	c.exact = ex
	c.mut++
}

// MonotoneCopyFrom sets c to o under the guarantee c ⊑ o (begin clocks
// copy the thread clock they chase). It runs as a pruned join — only the
// entries where c is behind are touched — and, because the result equals o
// exactly, adopts o's root claim so c stays as prunable as o itself.
func (c *Clock) MonotoneCopyFrom(o *Clock) {
	if o == c || o.root == nilNode {
		return
	}
	own := c.owner
	c.owner = -1 // join as auxiliary: do not spend a version on the copy
	c.join(o, false)
	c.owner = own
	// The result equals o exactly, so when the trees share a root thread
	// the copy can carry o's root claim (and exactness) over.
	if c.nodes[c.root].tid == o.nodes[o.root].tid {
		c.exact = o.exact
		if v := o.nodes[o.root].ver; v > c.nodes[c.root].ver {
			c.materialize()
			c.nodes[c.root].ver = v
		}
	}
}

// Leq reports whether c ⊑ o, skipping subtrees whose version claims o
// already holds.
func (c *Clock) Leq(o *Clock) bool {
	if c == o || c.root == nilNode {
		return true
	}
	if c.exact && o.verOf(c.nodes[c.root].tid) >= c.nodes[c.root].ver {
		return true
	}
	return c.leqFrom(o, c.root)
}

func (c *Clock) leqFrom(o *Clock, vi int32) bool {
	n := &c.nodes[vi]
	if n.clk > o.At(int(n.tid)) {
		return false
	}
	over := o.verOf(n.tid)
	for ch := n.head; ch != nilNode; ch = c.nodes[ch].next {
		cn := &c.nodes[ch]
		if cn.ver > 0 && o.verOf(cn.tid) >= cn.ver {
			continue // subtree dominated by o's claim for this thread
		}
		if cn.aclk != Unattributed && cn.aclk <= over {
			break // o's claim for the parent thread covers the rest
		}
		if !c.leqFrom(o, ch) {
			return false
		}
	}
	return true
}

// JoinZeroingInto joins this clock's components into the sparse clock dst,
// ignoring component skip: dst ⊔= c[0/skip]. Used for the ȒR_x
// accumulators, which are sparse in every representation (they are read
// only through single components and updated only through zeroing joins,
// which fall outside the tree clock transfer discipline).
func (c *Clock) JoinZeroingInto(dst *vc.Sparse, skip int) {
	if c.maxTid < 0 {
		return
	}
	if len(c.nodes)*4 < int(c.maxTid)+1 {
		// Sparse tree (thread-sharded shape): touching the stored entries
		// beats scanning a width-proportional flat view.
		for i := range c.nodes {
			n := &c.nodes[i]
			if int(n.tid) != skip && n.clk != 0 {
				dst.JoinComponent(int(n.tid), n.clk)
			}
		}
		return
	}
	dst.JoinZeroing(c.flatView(), skip)
}

// JoinFlat sets c to c ⊔ o for a flat vector o: the hybrid engine's thread
// clocks absorbing flat auxiliary accumulators (lock clocks, W_x, R_x).
// Flat sources carry no version stream, so every entry the join raises or
// creates is unattributable: raised nodes lose their version claim (ver 0)
// and re-attach directly under the root, where the owned root's refreshed
// whole-tree claim covers them in future walks from this tree; see the
// package comment.
//
// The returned flag reports heavy churn — the join raced past most of the
// tree (a bulk star rebuild, or at least half the entries of a small
// tree) — the caller's signal that this clock's workload is defeating the
// tree structure (densely entangled chains) and a flat representation
// would serve it better.
func (c *Clock) JoinFlat(o vc.Clock) bool {
	// The star cutover scales with the tree: a bulk rebuild is O(entries),
	// so it must be amortized by a proportional number of raised entries
	// (absolute floor for small trees).
	threshold := starRebuildThreshold
	if t := len(c.nodes) / 4; t > threshold {
		threshold = t
	}
	changed := 0
	if c.mirrorVer == c.mut {
		m := c.mirror
		for i, v := range o {
			if v != 0 && (i >= len(m) || v > m[i]) {
				if changed++; changed > threshold {
					break
				}
			}
		}
	} else {
		// Stale mirror: probing the tree directly is cheaper than forcing
		// a width-proportional rebuild just to detect a no-op join.
		for i, v := range o {
			if v != 0 && v > c.At(i) {
				if changed++; changed > threshold {
					break
				}
			}
		}
	}
	if changed == 0 {
		return false
	}
	// Churn signal for the caller: either the star cutover fired, or —
	// for trees too small to ever reach the absolute floor — at least half
	// the entries were raised by this single join.
	churned := changed*2 > len(c.nodes) && changed >= 4
	c.materialize()
	if changed > threshold && c.root != nilNode {
		// Past the threshold the incremental detach/re-attach surgery costs
		// more than laying the whole tree out afresh as a star.
		c.joinFlatStar(c.flatView(), o)
		return true
	}
	patch := c.mirrorPatchable()
	if c.root == nilNode {
		// ⊥ target: build an unattributable tree from scratch.
		for i, v := range o {
			if v == 0 {
				continue
			}
			n := c.newNode(int32(i), v, 0, Unattributed)
			if c.root == nilNode {
				c.root = n
			} else {
				c.attach(c.root, n, Unattributed)
			}
		}
		c.exact = false
		c.mut++
		return false
	}
	aclk := Unattributed
	if c.owner >= 0 {
		c.vcnt++
		aclk = c.vcnt
	}
	for i, v := range o {
		if v == 0 {
			continue
		}
		n := c.nodeOf(int32(i))
		if n == nilNode {
			n = c.newNode(int32(i), v, 0, Unattributed)
			c.attach(c.root, n, aclk)
			if patch {
				c.patchMirror(int32(i), v)
			}
			continue
		}
		nd := &c.nodes[n]
		if v <= nd.clk {
			continue
		}
		nd.clk = v
		if patch {
			c.patchMirror(int32(i), v)
		}
		if n == c.root {
			// Owned roots are refreshed below; an auxiliary root whose own
			// entry was raised past its claim loses it.
			if c.owner < 0 {
				nd.ver = 0
			}
			continue
		}
		nd.ver = 0
		c.detach(n)
		c.attach(c.root, n, aclk)
	}
	if c.owner >= 0 {
		c.nodes[c.root].ver = c.vcnt
		c.exact = true
	} else {
		c.exact = false
	}
	c.mut++
	if patch {
		c.mirrorVer = c.mut
	}
	return churned
}

// starRebuildThreshold is the number of raised entries past which JoinFlat
// rebuilds the tree as a star instead of moving nodes one by one.
const starRebuildThreshold = 16

// joinFlatStar rebuilds c as a root-plus-leaves star holding c ⊔ o, for
// joins that raise many entries at once (a chain workload's token absorb
// races past most of the tree every lap). Unchanged entries keep their
// version claims — the tree only grew, so "tree ⊒ C_u@ver" still holds,
// and a leaf's subtree claim covers exactly its own entry — while raised
// entries are unattributable (ver 0) as in the incremental path. All
// children attach directly under the root, whose refreshed whole-tree
// claim (owned) or vacuous one (aux) covers them.
func (c *Clock) joinFlatStar(m, o vc.Clock) {
	width := len(m)
	if len(o) > width {
		width = len(o)
	}
	rootIdx := c.root
	rootTid := int(c.nodes[rootIdx].tid)
	rootVer := c.nodes[rootIdx].ver
	rootClk := m.At(rootTid)
	if v := o.At(rootTid); v > rootClk {
		rootClk = v
		if c.owner < 0 {
			rootVer = 0 // aux root raised past its claim (cf. JoinFlat)
		}
	}
	aclk := Unattributed
	if c.owner >= 0 {
		c.vcnt++
		aclk = c.vcnt
		rootVer = c.vcnt
	}
	for width > len(c.tidIdx) {
		c.tidIdx = append(c.tidIdx, nilNode)
	}
	buf := c.starBuf[:0]
	buf = append(buf, node{
		tid: int32(rootTid), clk: rootClk, ver: rootVer, aclk: Unattributed,
		parent: nilNode, head: nilNode, next: nilNode, prev: nilNode,
	})
	c.maxTid = int32(rootTid)
	prev := nilNode
	for i := 0; i < width; i++ {
		if i == rootTid {
			continue
		}
		v, ver := m.At(i), vc.Time(0)
		if ov := o.At(i); ov > v {
			v = ov // raised by unattributable flat content: ver stays 0
		} else if j := c.tidIdx[i]; j != nilNode {
			ver = c.nodes[j].ver // unchanged: the old claim still holds
		}
		if v == 0 {
			continue
		}
		idx := int32(len(buf))
		buf = append(buf, node{
			tid: int32(i), clk: v, ver: ver, aclk: aclk,
			parent: 0, head: nilNode, next: nilNode, prev: prev,
		})
		if prev == nilNode {
			buf[0].head = idx
		} else {
			buf[prev].next = idx
		}
		prev = idx
		c.tidIdx[i] = idx
		if int32(i) > c.maxTid {
			c.maxTid = int32(i)
		}
	}
	c.tidIdx[rootTid] = 0
	c.starBuf = c.nodes[:0]
	c.nodes = buf
	c.root = 0
	if c.owner >= 0 {
		c.exact = true
	} else {
		c.exact = false
	}
	c.mut++
	// The star pass computed the exact flat result; rebuild the mirror
	// from the tid-ordered node list now instead of re-walking later.
	if c.mirrorShared {
		c.mirror, c.mirrorShared = nil, false
	}
	c.mirror = c.mirror[:0].Grow(int(c.maxTid) + 1)
	c.mirrorNz = 0
	for i := range c.nodes {
		nd := &c.nodes[i]
		c.mirror[nd.tid] = nd.clk
		if nd.clk != 0 {
			c.mirrorNz++
		}
	}
	c.mirrorVer = c.mut
}

// PromoteFromFlat rebuilds c as a thread clock owned by t holding the flat
// vector m (the hybrid representation's hysteresis re-promotion: a thread
// clock that demoted itself to flat during a churn phase converts back once
// its joins quiet down). The result is a root-plus-leaves star: the root
// carries t's entry and a fresh whole-tree claim, every other nonzero entry
// attaches as an unattributable (ver-0) leaf — flat content carries no
// version stream, exactly as in JoinFlat. verFloor seats BOTH counters
// strictly above the flat side's mutation count: the mutation counter, so
// engine epoch slots recorded against the flat representation
// conservatively miss, and the owner's version stream, so claims about
// this thread recorded by peer trees before the demotion stay strictly
// below every post-promotion claim. (Within any one tree's life mut ≥
// vcnt, and the flat side's mut was seated above the abandoned tree's at
// demotion, so verFloor exceeds every version this owner ever published;
// restarting the stream at 1 instead would let a peer's stale high claim
// skip joins of genuinely newer content.)
func (c *Clock) PromoteFromFlat(t int, m vc.Clock, verFloor uint64) {
	c.reset()
	c.owner = int32(t)
	c.vcnt = vc.Time(verFloor)
	if c.vcnt < 1 {
		c.vcnt = 1
	}
	own := m.At(t)
	if own == 0 {
		own = 1 // thread clocks always carry their own component
	}
	c.root = c.newNode(int32(t), own, c.vcnt, Unattributed)
	for i, v := range m {
		if v == 0 || i == t {
			continue
		}
		n := c.newNode(int32(i), v, 0, Unattributed)
		c.attach(c.root, n, c.vcnt)
	}
	c.exact = true
	c.mut = verFloor
	c.mirrorVer = c.mut - 1 // mirror stale: rebuild on first flat-interop use
}

// AbsorbIntoFlat joins c's components into the flat clock dst (dst ⊔= c):
// the hybrid engine's flat auxiliary accumulators absorbing a tree thread
// clock. It returns the possibly grown dst, the number of components that
// went from zero to nonzero (so the caller can maintain a nonzero count
// incrementally), and whether any component changed at all.
func (c *Clock) AbsorbIntoFlat(dst vc.Clock) (vc.Clock, int, bool) {
	if c.maxTid < 0 {
		return dst, 0, false
	}
	grew, changed := 0, false
	if len(c.nodes)*4 < int(c.maxTid)+1 {
		// Sparse tree: scatter the few stored entries instead of scanning
		// a width-proportional flat view.
		dst = dst.Grow(int(c.maxTid) + 1)
		for i := range c.nodes {
			n := &c.nodes[i]
			if n.clk > dst[n.tid] {
				if dst[n.tid] == 0 {
					grew++
				}
				dst[n.tid] = n.clk
				changed = true
			}
		}
		return dst, grew, changed
	}
	m := c.flatView()
	dst = dst.Grow(len(m))
	for i, v := range m {
		if v > dst[i] {
			if dst[i] == 0 {
				grew++
			}
			dst[i] = v
			changed = true
		}
	}
	return dst, grew, changed
}

// LeqFlat reports whether c ⊑ o for a flat vector o. There is nothing to
// prune against a flat target, so the cost is one comparison per stored
// entry of c.
func (c *Clock) LeqFlat(o vc.Clock) bool {
	if len(c.nodes)*4 < int(c.maxTid)+1 {
		for i := range c.nodes {
			n := &c.nodes[i]
			if n.clk > o.At(int(n.tid)) {
				return false
			}
		}
		return true
	}
	return c.flatView().Leq(o)
}

// DominatesFlat reports whether o ⊑ c for a flat vector o (the reverse
// direction of LeqFlat): one tight two-slice comparison over the flat
// view.
func (c *Clock) DominatesFlat(o vc.Clock) bool {
	return o.Leq(c.flatView())
}

// Flat returns the represented vector as a fresh flat clock.
func (c *Clock) Flat() vc.Clock {
	var out vc.Clock
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.clk != 0 {
			out = out.Set(int(n.tid), n.clk)
		}
	}
	return out
}

// String renders the represented vector in the paper's ⟨…⟩ notation.
func (c *Clock) String() string {
	return c.Flat().String()
}

// debugTree renders the tree structure (tests and debugging).
func (c *Clock) debugTree() string {
	var sb strings.Builder
	var rec func(v int32, depth int)
	rec = func(v int32, depth int) {
		n := &c.nodes[v]
		aclk := "∞"
		if n.aclk != Unattributed {
			aclk = fmt.Sprintf("%d", n.aclk)
		}
		fmt.Fprintf(&sb, "%s(t%d clk=%d ver=%d aclk=%s)\n",
			strings.Repeat("  ", depth), n.tid, n.clk, n.ver, aclk)
		for ch := n.head; ch != nilNode; ch = c.nodes[ch].next {
			rec(ch, depth+1)
		}
	}
	if c.root != nilNode {
		rec(c.root, 0)
	}
	return sb.String()
}
