package testutil

import (
	"aerodrome/internal/trace"
)

// This file implements a byte-program trace format for native Go fuzzing:
// TraceFromBytes decodes arbitrary bytes into a well-formed trace by
// interpreting them as a stream of two-byte instructions and repairing
// every structurally invalid operation into a read, and EncodeTrace is the
// inverse for traces that fit the format's limits. Fuzzers mutate the byte
// program freely — every input decodes to a ValidateStrict-clean trace —
// while seed corpora (the paper's ρ traces, tracegen's injected-violation
// workloads) round-trip exactly because well-formed traces never trigger a
// repair.
//
// Instruction encoding, two bytes per event:
//
//	byte 0: op in the high nibble (mod 8), thread id in the low nibble
//	byte 1: target — a variable (full byte), lock (low nibble), or
//	        thread (low nibble), depending on the op
//
// which bounds the format at 16 threads, 16 locks and 256 variables. A
// trailing odd byte is ignored.

// Byte-format limits.
const (
	ByteTraceMaxThreads = 16
	ByteTraceMaxLocks   = 16
	ByteTraceMaxVars    = 256
	// byteTraceMaxEvents caps decoding so adversarial fuzz inputs stay
	// cheap to check (the closing phase can add a few events beyond it).
	byteTraceMaxEvents = 1 << 13
)

// Op nibbles of the byte format, in trace.OpKind order.
const (
	byteOpBegin = iota
	byteOpEnd
	byteOpRead
	byteOpWrite
	byteOpAcquire
	byteOpRelease
	byteOpFork
	byteOpJoin
)

var kindToByteOp = map[trace.OpKind]byte{
	trace.Begin: byteOpBegin, trace.End: byteOpEnd,
	trace.Read: byteOpRead, trace.Write: byteOpWrite,
	trace.Acquire: byteOpAcquire, trace.Release: byteOpRelease,
	trace.Fork: byteOpFork, trace.Join: byteOpJoin,
}

// byteVMThread is the decoder's per-thread repair state.
type byteVMThread struct {
	started bool
	forked  bool
	joined  bool
	depth   int
	locks   []trace.LockID // held, acquisition order
}

// TraceFromBytes decodes data into a well-formed trace. Structurally
// invalid operations (unmatched end, re-entrant or foreign release, fork
// of a started thread, …) are repaired into reads of the target variable,
// events of joined threads are dropped, and a closing phase releases held
// locks and ends open transactions, so the result always passes
// trace.ValidateStrict. All 16 threads are implicitly alive without forks
// (fork/join events are still representable and validated against the
// fork-before-first-event / join-after-last-event rules).
func TraceFromBytes(data []byte) *trace.Trace {
	if len(data) > 2*byteTraceMaxEvents {
		data = data[:2*byteTraceMaxEvents]
	}
	b := trace.NewBuilder()
	threadIDs := make([]trace.ThreadID, ByteTraceMaxThreads)
	for i := range threadIDs {
		threadIDs[i] = b.Thread("t" + suffix(i))
	}
	varIDs := make([]trace.VarID, ByteTraceMaxVars)
	for i := range varIDs {
		varIDs[i] = b.Var("x" + suffix(i))
	}
	lockIDs := make([]trace.LockID, ByteTraceMaxLocks)
	for i := range lockIDs {
		lockIDs[i] = b.Lock("l" + suffix(i))
	}

	var vm [ByteTraceMaxThreads]byteVMThread
	lockOwner := make(map[trace.LockID]int)

	for i := 0; i+1 < len(data); i += 2 {
		op := (data[i] >> 4) & 7
		ti := int(data[i] & 0x0F)
		tgt := data[i+1]
		th := &vm[ti]
		if th.joined {
			continue // joined threads must not produce events
		}
		t := threadIDs[ti]
		read := func() { b.Read(t, varIDs[tgt]) }

		switch op {
		case byteOpBegin:
			b.Begin(t)
			th.depth++
		case byteOpEnd:
			if th.depth > 0 {
				b.End(t)
				th.depth--
			} else {
				read()
			}
		case byteOpRead:
			read()
		case byteOpWrite:
			b.Write(t, varIDs[tgt])
		case byteOpAcquire:
			l := lockIDs[tgt&0x0F]
			if _, held := lockOwner[l]; held {
				read()
			} else {
				b.Acquire(t, l)
				lockOwner[l] = ti
				th.locks = append(th.locks, l)
			}
		case byteOpRelease:
			l := lockIDs[tgt&0x0F]
			if owner, held := lockOwner[l]; held && owner == ti {
				b.Release(t, l)
				delete(lockOwner, l)
				for j, held := range th.locks {
					if held == l {
						th.locks = append(th.locks[:j], th.locks[j+1:]...)
						break
					}
				}
			} else {
				read()
			}
		case byteOpFork:
			ui := int(tgt & 0x0F)
			u := &vm[ui]
			if ui != ti && !u.started && !u.forked && !u.joined {
				b.Fork(t, threadIDs[ui])
				u.forked = true
			} else {
				read()
			}
		case byteOpJoin:
			ui := int(tgt & 0x0F)
			u := &vm[ui]
			if ui != ti && !u.joined && u.depth == 0 && len(u.locks) == 0 {
				b.Join(t, threadIDs[ui])
				u.joined = true
			} else {
				read()
			}
		}
		th.started = true
	}

	// Closing phase: the trace must be strictly well formed.
	for ti := range vm {
		th := &vm[ti]
		for n := len(th.locks); n > 0; n = len(th.locks) {
			l := th.locks[n-1]
			b.Release(threadIDs[ti], l)
			delete(lockOwner, l)
			th.locks = th.locks[:n-1]
		}
		for th.depth > 0 {
			b.End(threadIDs[ti])
			th.depth--
		}
	}

	tr := b.Build()
	if err := trace.ValidateStrict(tr); err != nil {
		panic("testutil: byte VM produced a malformed trace: " + err.Error())
	}
	return tr
}

// EncodeTrace encodes tr into the byte program of TraceFromBytes, or
// returns nil when the trace does not fit the format (too many threads,
// locks or variables, or too long). For a well-formed trace within the
// limits, TraceFromBytes(EncodeTrace(tr)) replays exactly the same event
// sequence — no instruction triggers a repair and the closing phase has
// nothing left to close — which makes real traces usable as fuzz corpus
// seeds.
func EncodeTrace(tr *trace.Trace) []byte {
	if len(tr.Events) > byteTraceMaxEvents {
		return nil
	}
	out := make([]byte, 0, 2*len(tr.Events))
	for _, e := range tr.Events {
		op, ok := kindToByteOp[e.Kind]
		if !ok || int(e.Thread) >= ByteTraceMaxThreads {
			return nil
		}
		var tgt int32
		switch e.Kind {
		case trace.Read, trace.Write:
			if e.Target >= ByteTraceMaxVars {
				return nil
			}
			tgt = e.Target
		case trace.Acquire, trace.Release:
			if e.Target >= ByteTraceMaxLocks {
				return nil
			}
			tgt = e.Target
		case trace.Fork, trace.Join:
			if e.Target >= ByteTraceMaxThreads {
				return nil
			}
			tgt = e.Target
		}
		out = append(out, op<<4|byte(e.Thread), byte(tgt))
	}
	return out
}
