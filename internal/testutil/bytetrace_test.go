package testutil

import (
	"math/rand"
	"testing"

	"aerodrome/internal/trace"
)

func sameEvents(a, b *trace.Trace) bool {
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i, e := range a.Events {
		if b.Events[i] != e {
			return false
		}
	}
	return true
}

// TestByteTraceRoundTrip: encoding a well-formed in-limits trace and
// decoding it back must reproduce the exact event sequence (no repair
// fires), for the paper's traces and for randomized ones including the
// lock-heavy and nested-critical-section shapes.
func TestByteTraceRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"rho1", Rho1()}, {"rho2", Rho2()}, {"rho3", Rho3()}, {"rho4", Rho4()},
	} {
		enc := EncodeTrace(tc.tr)
		if enc == nil {
			t.Fatalf("%s: EncodeTrace returned nil", tc.name)
		}
		if !sameEvents(tc.tr, TraceFromBytes(enc)) {
			t.Fatalf("%s: round trip diverged", tc.name)
		}
	}
	r := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 300; iter++ {
		tr := RandomTrace(r, GenOpts{
			Threads:      1 + r.Intn(8),
			Vars:         1 + r.Intn(12),
			Locks:        1 + r.Intn(4),
			Steps:        10 + r.Intn(200),
			TxnBias:      r.Intn(8),
			LockBias:     r.Intn(8),
			MaxHeldLocks: 1 + r.Intn(3),
			NoFork:       r.Intn(2) == 0,
		})
		enc := EncodeTrace(tr)
		if enc == nil {
			t.Fatalf("iter %d: EncodeTrace returned nil for an in-limits trace", iter)
		}
		if !sameEvents(tr, TraceFromBytes(enc)) {
			t.Fatalf("iter %d: round trip diverged", iter)
		}
	}
}

// TestTraceFromBytesRepairsGarbage: arbitrary bytes must decode to a
// strictly well-formed trace (TraceFromBytes panics otherwise, so driving
// random garbage through it is the assertion).
func TestTraceFromBytesRepairsGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 500; iter++ {
		data := make([]byte, r.Intn(600))
		r.Read(data)
		tr := TraceFromBytes(data)
		if err := trace.ValidateStrict(tr); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

// TestRandomTraceLockShapes: the lock-heavy options must actually produce
// nested critical sections (a thread holding >1 lock at some point).
func TestRandomTraceLockShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := RandomTrace(r, GenOpts{
		Threads: 4, Vars: 4, Locks: 6, Steps: 400,
		LockBias: 12, MaxHeldLocks: 3, NoFork: true,
	})
	held := map[trace.ThreadID]int{}
	nested := false
	locks := 0
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Acquire:
			locks++
			held[e.Thread]++
			if held[e.Thread] > 1 {
				nested = true
			}
		case trace.Release:
			held[e.Thread]--
		}
	}
	if locks == 0 {
		t.Fatalf("lock-heavy shape produced no lock events")
	}
	if !nested {
		t.Fatalf("MaxHeldLocks=3 never produced a nested critical section")
	}
}
