package testutil

// Tests for the deterministic scenario-zoo shape builders: strict
// validity (the builders panic internally otherwise), determinism, byte-
// format round-tripping at fuzz-seed sizes, and the structural property
// each shape exists for.

import (
	"reflect"
	"testing"

	"aerodrome/internal/trace"
)

func shapeBuilders() map[string]func() *trace.Trace {
	return map[string]func() *trace.Trace{
		"producer-consumer": func() *trace.Trace {
			return ProducerConsumerTrace(ProducerConsumerOpts{Producers: 2, Consumers: 2, Rounds: 40, Slots: 4})
		},
		"barrier-phases": func() *trace.Trace {
			return BarrierPhasesTrace(BarrierOpts{Threads: 6, Phases: 8, OpsPerTxn: 2})
		},
		"lock-convoy": func() *trace.Trace {
			return LockConvoyTrace(LockConvoyOpts{Threads: 6, Rounds: 40, Nested: true})
		},
		"quota-thrash": func() *trace.Trace {
			return QuotaThrashTrace(QuotaThrashOpts{Threads: 5, Bursts: 20, TxnsPerBurst: 3})
		},
	}
}

func TestShapeBuildersDeterministicAndEncodable(t *testing.T) {
	for name, build := range shapeBuilders() {
		a, b := build(), build()
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("%s: builder is not deterministic", name)
		}
		// Fuzz-seed sizes must round-trip the byte-program format exactly.
		enc := EncodeTrace(a)
		if enc == nil {
			t.Fatalf("%s: does not fit the byte format at seed size", name)
		}
		dec := TraceFromBytes(enc)
		if len(dec.Events) != len(a.Events) {
			t.Fatalf("%s: byte round trip changed length: %d -> %d",
				name, len(a.Events), len(dec.Events))
		}
		for i := range a.Events {
			if a.Events[i].Kind != dec.Events[i].Kind || a.Events[i].Thread != dec.Events[i].Thread {
				t.Fatalf("%s: byte round trip changed event %d: %v -> %v",
					name, i, a.Events[i], dec.Events[i])
			}
		}
	}
}

func TestShapeBuildersDegenerateOpts(t *testing.T) {
	// Zero-valued opts must still produce small valid traces (the builders
	// clamp internally and panic on invalidity).
	ProducerConsumerTrace(ProducerConsumerOpts{})
	BarrierPhasesTrace(BarrierOpts{})
	LockConvoyTrace(LockConvoyOpts{})
	QuotaThrashTrace(QuotaThrashOpts{})
}

func TestQuotaThrashFreshVars(t *testing.T) {
	tr := QuotaThrashTrace(QuotaThrashOpts{Threads: 4, Bursts: 10, TxnsPerBurst: 3})
	writes := map[int32]int{}
	for _, e := range tr.Events {
		if e.Kind == trace.Write {
			writes[e.Target]++
		}
	}
	if len(writes) != 30 {
		t.Fatalf("expected 30 distinct written vars, got %d", len(writes))
	}
	for v, n := range writes {
		if n != 1 {
			t.Fatalf("var %d written %d times; thrash vars must be fresh", v, n)
		}
	}
}
