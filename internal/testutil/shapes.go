package testutil

// Deterministic builders for the PR 7 scenario-zoo trace shapes:
// producer-consumer, barrier phases, lock convoy, and quota-thrash. They
// mirror the streaming generators in internal/workload but are pure
// builder code with no randomness, so they can serve as fuzz-corpus seeds
// (they fit the byte-program format's 16-thread/16-lock/256-variable
// limits at the default sizes) and as fixtures for differential suites
// that want the shape without the workload package's rng plumbing. All
// four are conflict serializable by construction: transactions are
// emitted whole, one after another, so every conflict edge points forward
// in commit order.

import (
	"aerodrome/internal/trace"
)

// ProducerConsumerOpts controls ProducerConsumerTrace.
type ProducerConsumerOpts struct {
	// Producers and Consumers are the worker counts per role (≥1 each;
	// thread 0 is the forking main thread and takes no body part).
	Producers, Consumers int
	// Rounds is how many producer/consumer transaction pairs run.
	Rounds int
	// Slots is the bounded ring size (default 4). The consumer trails the
	// producer by half the ring.
	Slots int
}

// ProducerConsumerTrace builds the bounded-ring hand-off shape: producers
// write slots in rotation, consumers read them half a ring later. Every
// round's write-read edge crosses the producer/consumer group boundary.
func ProducerConsumerTrace(o ProducerConsumerOpts) *trace.Trace {
	if o.Producers < 1 {
		o.Producers = 1
	}
	if o.Consumers < 1 {
		o.Consumers = 1
	}
	if o.Slots < 2 {
		o.Slots = 4
	}
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	lag := o.Slots / 2
	if lag < 1 {
		lag = 1
	}
	b := trace.NewBuilder()
	main := b.Thread("t0")
	prods := make([]trace.ThreadID, o.Producers)
	for i := range prods {
		prods[i] = b.Thread("p" + suffix(i))
	}
	cons := make([]trace.ThreadID, o.Consumers)
	for i := range cons {
		cons[i] = b.Thread("c" + suffix(i))
	}
	slots := make([]trace.VarID, o.Slots)
	for i := range slots {
		slots[i] = b.Var("slot" + suffix(i))
	}
	acks := make([]trace.VarID, o.Consumers)
	for i := range acks {
		acks[i] = b.Var("ack" + suffix(i))
	}
	for _, t := range prods {
		b.Fork(main, t)
	}
	for _, t := range cons {
		b.Fork(main, t)
	}
	for r := 0; r < o.Rounds; r++ {
		p := prods[r%o.Producers]
		b.Begin(p)
		b.Write(p, slots[r%o.Slots])
		b.End(p)
		if r >= lag {
			c := cons[r%o.Consumers]
			b.Begin(c)
			b.Read(c, slots[(r-lag)%o.Slots])
			b.Write(c, acks[r%o.Consumers])
			b.End(c)
		}
	}
	for _, t := range prods {
		b.Join(main, t)
	}
	for _, t := range cons {
		b.Join(main, t)
	}
	return mustValid(b.Build(), "producer-consumer")
}

// BarrierOpts controls BarrierPhasesTrace.
type BarrierOpts struct {
	// Threads is the total thread count including the coordinating main
	// thread (≥2).
	Threads int
	// Phases is the number of barrier generations.
	Phases int
	// OpsPerTxn is the private work per worker transaction (default 2).
	OpsPerTxn int
}

// BarrierPhasesTrace builds the barrier-phase shape: per phase, every
// worker transaction reads the previous generation, does private work and
// writes its arrival flag; the coordinator reads every flag and writes
// the next generation. The coordinator is the fan-in/fan-out hub of every
// phase's vector-clock joins.
func BarrierPhasesTrace(o BarrierOpts) *trace.Trace {
	if o.Threads < 2 {
		o.Threads = 2
	}
	if o.Phases < 1 {
		o.Phases = 1
	}
	if o.OpsPerTxn < 1 {
		o.OpsPerTxn = 2
	}
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, o.Threads)
	for i := range threads {
		threads[i] = b.Thread("t" + suffix(i))
	}
	gen := b.Var("gen")
	flags := make([]trace.VarID, o.Threads)
	private := make([][]trace.VarID, o.Threads)
	for i := 1; i < o.Threads; i++ {
		flags[i] = b.Var("flag" + suffix(i))
		private[i] = make([]trace.VarID, o.OpsPerTxn)
		for j := range private[i] {
			private[i][j] = b.Var("p" + suffix(i) + "_" + suffix(j))
		}
	}
	for i := 1; i < o.Threads; i++ {
		b.Fork(threads[0], threads[i])
	}
	for phase := 0; phase < o.Phases; phase++ {
		for w := 1; w < o.Threads; w++ {
			b.Begin(threads[w])
			if phase > 0 {
				b.Read(threads[w], gen)
			}
			for j := 0; j < o.OpsPerTxn; j++ {
				if (phase+j)%2 == 0 {
					b.Write(threads[w], private[w][j])
				} else {
					b.Read(threads[w], private[w][j])
				}
			}
			b.Write(threads[w], flags[w])
			b.End(threads[w])
		}
		b.Begin(threads[0])
		for w := 1; w < o.Threads; w++ {
			b.Read(threads[0], flags[w])
		}
		b.Write(threads[0], gen)
		b.End(threads[0])
	}
	for i := 1; i < o.Threads; i++ {
		b.Join(threads[0], threads[i])
	}
	return mustValid(b.Build(), "barrier-phases")
}

// LockConvoyOpts controls LockConvoyTrace.
type LockConvoyOpts struct {
	// Threads is the total thread count including the forking main thread
	// (≥2).
	Threads int
	// Rounds is the number of critical sections funneled through the hot
	// lock.
	Rounds int
	// Nested, when set, nests a second lock inside every fourth critical
	// section.
	Nested bool
}

// LockConvoyTrace builds the convoy shape: every worker transaction takes
// the single hot lock around a read-modify-write of one shared variable,
// then does a private access outside the lock. The release→acquire chain
// through the hot lock entangles every thread clock.
func LockConvoyTrace(o LockConvoyOpts) *trace.Trace {
	if o.Threads < 2 {
		o.Threads = 2
	}
	if o.Rounds < 1 {
		o.Rounds = 1
	}
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, o.Threads)
	for i := range threads {
		threads[i] = b.Thread("t" + suffix(i))
	}
	hot := b.Lock("hot")
	var inner trace.LockID
	if o.Nested {
		inner = b.Lock("inner")
	}
	shared := b.Var("shared")
	private := make([]trace.VarID, o.Threads)
	for i := 1; i < o.Threads; i++ {
		private[i] = b.Var("p" + suffix(i))
	}
	for i := 1; i < o.Threads; i++ {
		b.Fork(threads[0], threads[i])
	}
	for r := 0; r < o.Rounds; r++ {
		w := 1 + r%(o.Threads-1)
		t := threads[w]
		b.Begin(t)
		b.Acquire(t, hot)
		if o.Nested && r%4 == 1 {
			b.Acquire(t, inner)
			b.Read(t, shared)
			b.Release(t, inner)
		} else {
			b.Read(t, shared)
		}
		b.Write(t, shared)
		b.Release(t, hot)
		b.Write(t, private[w])
		b.End(t)
	}
	for i := 1; i < o.Threads; i++ {
		b.Join(threads[0], threads[i])
	}
	return mustValid(b.Build(), "lock-convoy")
}

// QuotaThrashOpts controls QuotaThrashTrace.
type QuotaThrashOpts struct {
	// Threads is the total thread count including the forking main thread
	// (≥2).
	Threads int
	// Bursts is the number of per-thread transaction bursts.
	Bursts int
	// TxnsPerBurst is how many tiny one-write transactions each burst
	// emits (default 3). Every write touches a fresh variable.
	TxnsPerBurst int
}

// QuotaThrashTrace builds the adversarial metadata-churn shape: bursts of
// minimal transactions, each writing a variable never touched again. The
// variable space grows linearly with the trace.
func QuotaThrashTrace(o QuotaThrashOpts) *trace.Trace {
	if o.Threads < 2 {
		o.Threads = 2
	}
	if o.Bursts < 1 {
		o.Bursts = 1
	}
	if o.TxnsPerBurst < 1 {
		o.TxnsPerBurst = 3
	}
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, o.Threads)
	for i := range threads {
		threads[i] = b.Thread("t" + suffix(i))
	}
	for i := 1; i < o.Threads; i++ {
		b.Fork(threads[0], threads[i])
	}
	fresh := 0
	for burst := 0; burst < o.Bursts; burst++ {
		t := threads[1+burst%(o.Threads-1)]
		for i := 0; i < o.TxnsPerBurst; i++ {
			b.Begin(t)
			b.Write(t, b.Var("f"+suffix(fresh)))
			fresh++
			b.End(t)
		}
	}
	for i := 1; i < o.Threads; i++ {
		b.Join(threads[0], threads[i])
	}
	return mustValid(b.Build(), "quota-thrash")
}

func mustValid(tr *trace.Trace, shape string) *trace.Trace {
	if err := trace.ValidateStrict(tr); err != nil {
		panic("testutil: " + shape + " trace malformed: " + err.Error())
	}
	return tr
}
