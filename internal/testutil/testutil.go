// Package testutil provides shared fixtures for the test suites: the
// paper's worked example traces (ρ1–ρ4 of Figures 1–4) and a seeded random
// generator of well-formed traces, including fork/join structure, used for
// differential testing of the checkers.
package testutil

import (
	"math/rand"

	"aerodrome/internal/trace"
)

// Rho1 returns the trace of Figure 1 (ρ1): three transactions with
// T3 ⋖Txn T1 ⋖Txn T2; conflict serializable.
func Rho1() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2, t3 := b.Thread("t1"), b.Thread("t2"), b.Thread("t3")
	x, z := b.Var("x"), b.Var("z")
	b.Begin(t1). // e1
			Write(t1, x). // e2
			Begin(t2).    // e3
			Read(t2, x).  // e4
			End(t2).      // e5
			Begin(t3).    // e6
			Write(t3, z). // e7
			End(t3).      // e8
			Read(t1, z).  // e9
			End(t1)       // e10
	return b.Build()
}

// Rho2 returns the trace of Figure 2 (ρ2): a violation witnessed by a ≤CHB
// path that starts and ends in transaction T1. AeroDrome reports at e6.
func Rho2() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1). // e1
			Begin(t2).    // e2
			Write(t1, x). // e3
			Read(t2, x).  // e4
			Write(t2, y). // e5
			Read(t1, y).  // e6
			End(t1).      // e7
			End(t2)       // e8
	return b.Build()
}

// Rho3 returns the trace of Figure 3 (ρ3): a violation with no ≤CHB path
// that starts and ends in the same transaction. AeroDrome reports at the
// end event e7.
func Rho3() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1). // e1
			Begin(t2).    // e2
			Write(t1, x). // e3
			Write(t2, y). // e4
			Read(t1, y).  // e5
			Read(t2, x).  // e6
			End(t1).      // e7
			End(t2)       // e8
	return b.Build()
}

// Rho4 returns the trace of Figure 4 (ρ4): each transaction is a ⋖Txn
// predecessor of the other, discovered only via the third transaction.
// AeroDrome reports at e11.
func Rho4() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2, t3 := b.Thread("t1"), b.Thread("t2"), b.Thread("t3")
	x, y, z := b.Var("x"), b.Var("y"), b.Var("z")
	b.Begin(t1). // e1
			Write(t1, x). // e2
			Begin(t2).    // e3
			Write(t2, y). // e4
			Read(t2, x).  // e5
			End(t2).      // e6
			Begin(t3).    // e7
			Read(t3, y).  // e8
			Write(t3, z). // e9
			End(t3).      // e10
			Read(t1, z).  // e11
			End(t1)       // e12
	return b.Build()
}

// GenOpts controls RandomTrace.
type GenOpts struct {
	Threads int // number of threads (≥1); thread 0 starts alive, others are forked
	Vars    int
	Locks   int
	Steps   int  // scheduling steps (≈ events, excluding closing events)
	NoFork  bool // disable fork/join structure (all threads start alive)
	// TxnBias, when positive, increases the share of begin events so that
	// most events land inside transactions.
	TxnBias int
	// LockBias, when positive, funnels extra probability into lock
	// acquire/release operations: the lock-heavy shapes whose dense
	// release-acquire entanglement defeats tree-clock pruning.
	LockBias int
	// MaxHeldLocks bounds how many locks a thread holds at once. Values
	// above 1 produce properly nested critical sections (locks release in
	// LIFO order); 0 keeps the historical single-lock discipline.
	MaxHeldLocks int
}

type genThread struct {
	id       trace.ThreadID
	alive    bool
	finished bool
	joined   bool
	depth    int
	locks    []trace.LockID // held locks, acquisition order (released LIFO)
}

// RandomTrace generates a well-formed trace: matched begins/ends, matched
// acquires/releases with mutual exclusion, forks before first child events,
// joins after last child events, all transactions completed. The result is
// strictly validated before being returned.
func RandomTrace(r *rand.Rand, o GenOpts) *trace.Trace {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.Vars < 1 {
		o.Vars = 1
	}
	if o.Locks < 1 {
		o.Locks = 1
	}
	b := trace.NewBuilder()
	threads := make([]*genThread, o.Threads)
	for i := range threads {
		id := b.Thread("t" + string(rune('0'+i%10)) + suffix(i))
		threads[i] = &genThread{id: id}
	}
	vars := make([]trace.VarID, o.Vars)
	for i := range vars {
		vars[i] = b.Var("x" + suffix(i))
	}
	locks := make([]trace.LockID, o.Locks)
	for i := range locks {
		locks[i] = b.Lock("l" + suffix(i))
	}
	lockBusy := make([]bool, o.Locks)
	maxHeld := o.MaxHeldLocks
	if maxHeld < 1 {
		maxHeld = 1
	}

	threads[0].alive = true
	if o.NoFork {
		for _, th := range threads {
			th.alive = true
		}
	}

	aliveThreads := func() []*genThread {
		var out []*genThread
		for _, th := range threads {
			if th.alive && !th.finished {
				out = append(out, th)
			}
		}
		return out
	}

	for step := 0; step < o.Steps; step++ {
		alive := aliveThreads()
		if len(alive) == 0 {
			break
		}
		th := alive[r.Intn(len(alive))]
		t := th.id
		choice := r.Intn(12 + o.TxnBias + 2*o.LockBias)
		switch {
		case choice >= 12+o.TxnBias:
			// LockBias mass alternates between acquire and release.
			if (choice-12-o.TxnBias)%2 == 0 {
				choice = 8
			} else {
				choice = 9
			}
		case choice >= 12:
			choice = 0 // TxnBias funnels extra probability into begin
		}
		switch choice {
		case 0: // begin
			b.Begin(t)
			th.depth++
		case 1: // end
			if th.depth > 0 {
				b.End(t)
				th.depth--
			} else {
				b.Read(t, vars[r.Intn(o.Vars)])
			}
		case 2, 3, 4: // read
			b.Read(t, vars[r.Intn(o.Vars)])
		case 5, 6, 7: // write
			b.Write(t, vars[r.Intn(o.Vars)])
		case 8: // acquire (nested critical sections up to MaxHeldLocks)
			if len(th.locks) < maxHeld {
				li := r.Intn(o.Locks)
				if !lockBusy[li] {
					b.Acquire(t, locks[li])
					th.locks = append(th.locks, locks[li])
					lockBusy[li] = true
				}
			}
		case 9: // release (LIFO: innermost critical section first)
			if n := len(th.locks); n > 0 {
				l := th.locks[n-1]
				b.Release(t, l)
				lockBusy[l] = false
				th.locks = th.locks[:n-1]
			}
		case 10: // fork
			if o.NoFork {
				b.Write(t, vars[r.Intn(o.Vars)])
				break
			}
			for _, cand := range threads {
				if !cand.alive && !cand.finished {
					b.Fork(t, cand.id)
					cand.alive = true
					break
				}
			}
		case 11: // finish another thread's life, or join a finished one
			if o.NoFork {
				b.Read(t, vars[r.Intn(o.Vars)])
				break
			}
			joinedOne := false
			for _, cand := range threads {
				if cand.finished && !cand.joined && cand.id != t {
					b.Join(t, cand.id)
					cand.joined = true
					joinedOne = true
					break
				}
			}
			if !joinedOne && th != threads[0] && r.Intn(2) == 0 {
				// retire this thread: close its state
				closeThread(b, th, lockBusy)
			}
		}
	}
	for _, th := range threads {
		if th.alive && !th.finished {
			closeThread(b, th, lockBusy)
		}
	}
	tr := b.Build()
	if err := trace.ValidateStrict(tr); err != nil {
		panic("testutil: generated malformed trace: " + err.Error())
	}
	return tr
}

// PhaseShiftOpts controls PhaseShiftTrace.
type PhaseShiftOpts struct {
	// Threads is the thread count (≥2; all threads start alive, no
	// fork/join structure).
	Threads int
	// BurstRounds is the number of chain-burst rounds: every thread, in
	// order, runs a transaction that reads the previous thread's token and
	// writes its own — the densely entangled shape whose joins race past
	// most of a tree clock and demote hybrid thread clocks to flat.
	BurstRounds int
	// SteadyRounds is the number of sharded steady-state rounds that
	// follow: every thread runs a transaction over its private variables
	// only — the shape where tree clocks win and demoted clocks should
	// re-promote once their joins quiet down.
	SteadyRounds int
	// OpsPerTxn is the number of private accesses per steady-state
	// transaction (default 4).
	OpsPerTxn int
}

// PhaseShiftTrace builds the deterministic phase-shift shape: a chain
// burst followed by a sharded steady state. The trace is conflict
// serializable (token conflicts point forward only; steady-state accesses
// are thread-private), so it isolates the representation dynamics —
// demotion during the burst, hysteresis re-promotion during the steady
// state — from verdict changes.
func PhaseShiftTrace(o PhaseShiftOpts) *trace.Trace {
	if o.Threads < 2 {
		o.Threads = 2
	}
	if o.OpsPerTxn < 1 {
		o.OpsPerTxn = 4
	}
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, o.Threads)
	for i := range threads {
		threads[i] = b.Thread("t" + suffix(i))
	}
	tokens := make([]trace.VarID, o.Threads)
	for i := range tokens {
		tokens[i] = b.Var("tok" + suffix(i))
	}
	private := make([][]trace.VarID, o.Threads)
	for i := range private {
		private[i] = make([]trace.VarID, o.OpsPerTxn)
		for j := range private[i] {
			private[i][j] = b.Var("p" + suffix(i) + "_" + suffix(j))
		}
	}
	// Fork the workers from thread 0, as the workload generator does: the
	// fork edge seeds every worker clock with a foreign component, so end
	// events take the full-propagation path and the burst actually
	// entangles the clocks (a forkless ring is garbage-collected whole and
	// never exercises the representation dynamics).
	for i := 1; i < o.Threads; i++ {
		b.Fork(threads[0], threads[i])
	}
	for r := 0; r < o.BurstRounds; r++ {
		for w := 0; w < o.Threads; w++ {
			prev := (w + o.Threads - 1) % o.Threads
			b.Begin(threads[w])
			b.Read(threads[w], tokens[prev])
			b.Write(threads[w], tokens[w])
			b.End(threads[w])
		}
	}
	for r := 0; r < o.SteadyRounds; r++ {
		for w := 0; w < o.Threads; w++ {
			b.Begin(threads[w])
			for j := 0; j < o.OpsPerTxn; j++ {
				if (r+j)%2 == 0 {
					b.Write(threads[w], private[w][j])
				} else {
					b.Read(threads[w], private[w][j])
				}
			}
			b.End(threads[w])
		}
	}
	for i := 1; i < o.Threads; i++ {
		b.Join(threads[0], threads[i])
	}
	tr := b.Build()
	if err := trace.ValidateStrict(tr); err != nil {
		panic("testutil: phase-shift trace malformed: " + err.Error())
	}
	return tr
}

func closeThread(b *trace.Builder, th *genThread, lockBusy []bool) {
	for n := len(th.locks); n > 0; n = len(th.locks) {
		l := th.locks[n-1]
		b.Release(th.id, l)
		lockBusy[l] = false
		th.locks = th.locks[:n-1]
	}
	for th.depth > 0 {
		b.End(th.id)
		th.depth--
	}
	th.finished = true
}

func suffix(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return suffix(i/10) + string(rune('0'+i%10))
}
