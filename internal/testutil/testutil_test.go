package testutil

import (
	"math/rand"
	"testing"

	"aerodrome/internal/trace"
)

func TestPaperTracesShape(t *testing.T) {
	cases := []struct {
		name   string
		tr     *trace.Trace
		events int
		txns   int
	}{
		{"rho1", Rho1(), 10, 3},
		{"rho2", Rho2(), 8, 2},
		{"rho3", Rho3(), 8, 2},
		{"rho4", Rho4(), 12, 3},
	}
	for _, c := range cases {
		if c.tr.Len() != c.events {
			t.Errorf("%s: %d events, want %d", c.name, c.tr.Len(), c.events)
		}
		if err := trace.ValidateStrict(c.tr); err != nil {
			t.Errorf("%s: malformed: %v", c.name, err)
		}
		seg := trace.Transactions(c.tr)
		if seg.BlockCount() != c.txns {
			t.Errorf("%s: %d transactions, want %d", c.name, seg.BlockCount(), c.txns)
		}
		for _, txn := range seg.Txns {
			if txn.Unary {
				t.Errorf("%s: paper traces have no unary events", c.name)
			}
		}
	}
}

func TestRandomTraceAlwaysWellFormed(t *testing.T) {
	// RandomTrace panics internally on malformed output; this drives it
	// across the option space to prove the generator's guarantees hold.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		tr := RandomTrace(r, GenOpts{
			Threads: 1 + r.Intn(6),
			Vars:    1 + r.Intn(5),
			Locks:   1 + r.Intn(3),
			Steps:   r.Intn(200),
			TxnBias: r.Intn(10),
			NoFork:  i%3 == 0,
		})
		if err := trace.ValidateStrict(tr); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

func TestRandomTraceZeroOptions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := RandomTrace(r, GenOpts{})
	if err := trace.ValidateStrict(tr); err != nil {
		t.Fatalf("zero options: %v", err)
	}
}

func TestRandomTraceUsesForkJoin(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sawFork, sawJoin := false, false
	for i := 0; i < 50 && !(sawFork && sawJoin); i++ {
		tr := RandomTrace(r, GenOpts{Threads: 5, Vars: 2, Locks: 1, Steps: 150})
		for _, e := range tr.Events {
			switch e.Kind {
			case trace.Fork:
				sawFork = true
			case trace.Join:
				sawJoin = true
			}
		}
	}
	if !sawFork || !sawJoin {
		t.Fatalf("generator never exercised fork/join (fork=%v join=%v)", sawFork, sawJoin)
	}
}

func TestRandomTraceNoForkOption(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		tr := RandomTrace(r, GenOpts{Threads: 4, Vars: 2, Locks: 1, Steps: 100, NoFork: true})
		for _, e := range tr.Events {
			if e.Kind == trace.Fork || e.Kind == trace.Join {
				t.Fatalf("NoFork trace contains %v", e)
			}
		}
	}
}
