// Package parcheck checks one trace on N cores, speculatively.
//
// The AeroDrome algorithm is inherently sequential per trace: every
// engine so far processes events one at a time, so the scaling unit has
// been one core per stream. This package attacks the single-core wall
// by partitioning the trace into shards that provably cannot interact
// and running one full engine per shard in parallel.
//
// # Partitioning
//
// A scan pass builds the interaction graph of the trace: every access
// event r/w(x), acq/rel(ℓ) ties its thread to the variable or lock, and
// every fork/join between two worker threads ties the threads together.
// Union-find over that graph yields connected components; events of
// different components share no variable, lock, or fork/join edge, so
// no vector-clock content can ever flow between them and no check in
// one component can observe the other. Components are packed into S
// shards (greedy, largest first), and each shard's event projection is
// checked by a fresh engine of the selected algorithm.
//
// # Relay threads
//
// Taken literally, the graph above has one giant component in almost
// every real trace: a main thread forks every worker and joins them at
// the end, welding all components together. But such a pure
// coordinator — a thread with no begin and no access events of its own,
// only forks and joins — can never fail a check itself (every check in
// every engine is gated on an open transaction, and a thread with no
// begins never has one) and never increments its own clock. We call
// these threads relays and exclude their fork/join edges from the
// component graph. Instead, the scan tracks per relay a taint set: the
// set of shards whose clock content has flowed into the relay's clock
// (via join(relay, worker) or fork(worker, relay)). A relay's clock may
// be consumed — by fork(relay, worker), which seeds the worker's clock,
// or join(worker, relay), which runs the join check — only in a shard
// that covers its whole taint set; the relay's clock copy held by that
// shard's engine is then exactly the global one. Relay–relay fork/join
// events are replicated into every shard (they can carry no
// non-replicated content until tainted, and can never fire a check).
//
// # Speculation and exactness
//
// If the scan finds a consumption that crosses shards — a relay tainted
// by shard A consumed in shard B — the speculative partition is
// unsound, and the whole trace is replayed through one sequential
// engine of the same algorithm. The scan is a cheap single pass over
// the event slice, so failed speculation costs one scan, not one
// checking pass. There is no narrower replay window: engine states
// cannot be merged mid-stream, so partial replay of "the affected
// window" would need exactly the cross-shard clock content whose
// absence triggered the replay.
//
// On success, verdicts are exact, not approximate: each shard engine
// sees a projection whose events carry their global indices, the first
// violation across shards (by global index) is the same violation the
// sequential engine reports, and clean traces report the same event
// count. The differential suites and FuzzParallelDifferential at the
// repository root hold Check to byte-identical reports against
// aerodrome.CheckSTD.
package parcheck

import (
	"sort"
	"sync"

	"aerodrome/internal/core"
	"aerodrome/internal/trace"
)

// MaxShards bounds the shard count; taint sets are uint64 bitmasks.
const MaxShards = 64

// Stats describes what the partitioner did with a trace, for
// observability in the CLI (-par -v) and the bench rows.
type Stats struct {
	// Shards is the number of engines that actually ran. 1 means the
	// trace was checked sequentially (single component, or conflict).
	Shards int
	// Components is the number of independent components the scan found.
	Components int
	// Relays is the number of relay (pure coordinator) threads.
	Relays int
	// Replicated counts relay–relay events copied into every shard.
	Replicated int64
	// Conflict reports that cross-shard clock flow forced a sequential
	// replay; ConflictIndex is the global index of the offending event
	// (-1 when Conflict is false).
	Conflict      bool
	ConflictIndex int64
	// Replayed reports that the verdict came from a sequential pass
	// (conflict, degenerate partition, or workers <= 1).
	Replayed bool
}

// shardProj is one shard's event projection plus the global index of
// each projected event.
type shardProj struct {
	events []trace.Event
	glob   []int64
}

// Check partitions events and checks the shards in parallel with
// engines of the selected algorithm, falling back to one sequential
// pass whenever the partition cannot be proven sound. The returned
// violation (nil if serializable) and event count are identical to
// running core.Run over a single engine: the violation's Index is the
// global event index, and the count is Index+1 on violation or
// len(events) on a clean trace.
func Check(events []trace.Event, algo core.Algorithm, shards int) (*core.Violation, int64, Stats) {
	stats := Stats{Shards: 1, ConflictIndex: -1}
	if shards > MaxShards {
		shards = MaxShards
	}
	if shards <= 1 || len(events) == 0 {
		stats.Replayed = true
		v, n := runSequential(events, algo)
		return v, n, stats
	}

	p := scan(events)
	stats.Components = len(p.roots)
	stats.Relays = p.relays
	if p.invalid || len(p.roots) < 2 {
		stats.Replayed = true
		v, n := runSequential(events, algo)
		return v, n, stats
	}

	shardOf := p.pack(shards)
	nShards := 0
	for _, s := range shardOf {
		if int(s)+1 > nShards {
			nShards = int(s) + 1
		}
	}
	if nShards < 2 {
		stats.Replayed = true
		v, n := runSequential(events, algo)
		return v, n, stats
	}
	stats.Shards = nShards

	projs, replicated, conflictAt := p.project(events, shardOf, nShards)
	stats.Replicated = replicated
	if conflictAt >= 0 {
		stats.Conflict = true
		stats.ConflictIndex = conflictAt
		stats.Replayed = true
		stats.Shards = 1
		v, n := runSequential(events, algo)
		return v, n, stats
	}

	v := runShards(projs, algo)
	if v != nil {
		return v, v.Index + 1, stats
	}
	return nil, int64(len(events)), stats
}

// runSequential is the exact reference pass: one engine over the whole
// slice.
func runSequential(events []trace.Event, algo core.Algorithm) (*core.Violation, int64) {
	eng := core.New(algo)
	for _, e := range events {
		if v := eng.Process(e); v != nil {
			return v, eng.Processed()
		}
	}
	return eng.Violation(), eng.Processed()
}

// runShards checks every projection with its own engine, concurrently,
// and merges to the violation with the smallest global index (the one
// the sequential engine would have reported first).
func runShards(projs []shardProj, algo core.Algorithm) *core.Violation {
	type verdict struct {
		v    *core.Violation
		glob int64
	}
	verdicts := make([]verdict, len(projs))
	var wg sync.WaitGroup
	for i := range projs {
		if len(projs[i].events) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := core.New(algo)
			p := &projs[i]
			for j, e := range p.events {
				if v := eng.Process(e); v != nil {
					verdicts[i] = verdict{v: v, glob: p.glob[j]}
					return
				}
			}
		}(i)
	}
	wg.Wait()

	var best *core.Violation
	bestGlob := int64(-1)
	for _, vd := range verdicts {
		if vd.v == nil {
			continue
		}
		if bestGlob < 0 || vd.glob < bestGlob {
			bestGlob = vd.glob
			best = vd.v
		}
	}
	if best == nil {
		return nil
	}
	// The engine reported the index local to its projection; rewrite it
	// to the global position so reports match the sequential engine.
	out := *best
	out.Index = bestGlob
	return &out
}

// partition is the result of the scan pass: union-find state over
// worker threads, variables and locks, plus relay classification.
type partition struct {
	parent []int32 // union-find forest over thread/var/lock nodes
	size   []int32
	nT, nV int32 // node-id offsets: vars at nT, locks at nT+nV

	relay   []bool  // per thread: pure coordinator (no begin/end/access)
	count   []int64 // events per root node (worker own-events only)
	roots   []int32 // distinct roots that own at least one thread
	relays  int
	invalid bool // out-of-range IDs: fall back to sequential
}

// scan classifies threads and builds components. Two sub-passes: the
// first finds each thread's highest IDs and whether it is a relay, the
// second unions access and worker fork/join edges.
func scan(events []trace.Event) *partition {
	p := &partition{}
	var maxT, maxV, maxL int32 = -1, -1, -1
	for _, e := range events {
		t := int32(e.Thread)
		if t < 0 {
			p.invalid = true
			return p
		}
		if t > maxT {
			maxT = t
		}
		switch e.Kind {
		case trace.Read, trace.Write:
			if e.Target < 0 {
				p.invalid = true
				return p
			}
			if e.Target > maxV {
				maxV = e.Target
			}
		case trace.Acquire, trace.Release:
			if e.Target < 0 {
				p.invalid = true
				return p
			}
			if e.Target > maxL {
				maxL = e.Target
			}
		case trace.Fork, trace.Join:
			if e.Target < 0 {
				p.invalid = true
				return p
			}
			if e.Target > maxT {
				maxT = e.Target
			}
		}
	}

	p.nT, p.nV = maxT+1, maxV+1
	nL := maxL + 1
	n := p.nT + p.nV + nL
	p.parent = make([]int32, n)
	p.size = make([]int32, n)
	for i := range p.parent {
		p.parent[i] = int32(i)
		p.size[i] = 1
	}

	// Relay = no begin, no end, no access event of its own. End without
	// begin cannot occur in a well-formed trace, but the engines accept
	// such streams, so classification must too.
	p.relay = make([]bool, p.nT)
	for i := range p.relay {
		p.relay[i] = true
	}
	for _, e := range events {
		switch e.Kind {
		case trace.Begin, trace.End, trace.Read, trace.Write, trace.Acquire, trace.Release:
			p.relay[e.Thread] = false
		}
	}
	for t := int32(0); t < p.nT; t++ {
		if p.relay[t] {
			p.relays++
		}
	}

	for _, e := range events {
		t := int32(e.Thread)
		switch e.Kind {
		case trace.Read, trace.Write:
			p.union(t, p.nT+e.Target)
		case trace.Acquire, trace.Release:
			p.union(t, p.nT+p.nV+e.Target)
		case trace.Fork, trace.Join:
			if !p.relay[t] && !p.relay[e.Target] {
				p.union(t, e.Target)
			}
		}
	}

	// Attribute every worker-thread event to its component; relay
	// events are assigned (or replicated) during projection.
	p.count = make([]int64, n)
	for _, e := range events {
		if !p.relay[e.Thread] {
			p.count[p.find(int32(e.Thread))]++
		}
	}
	seen := make(map[int32]bool)
	for t := int32(0); t < p.nT; t++ {
		if p.relay[t] {
			continue
		}
		r := p.find(t)
		if !seen[r] {
			seen[r] = true
			p.roots = append(p.roots, r)
		}
	}
	return p
}

func (p *partition) find(x int32) int32 {
	for p.parent[x] != x {
		p.parent[x] = p.parent[p.parent[x]] // path halving
		x = p.parent[x]
	}
	return x
}

func (p *partition) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	if ra == rb {
		return
	}
	if p.size[ra] < p.size[rb] {
		ra, rb = rb, ra
	}
	p.parent[rb] = ra
	p.size[ra] += p.size[rb]
}

// pack assigns components to at most `shards` bins, largest component
// first into the least-loaded bin. The order is fully deterministic
// (count descending, root ascending; ties to the lowest bin), so two
// runs over the same trace shard identically. Returns shard index per
// union-find root (-1 for nodes owning no component).
func (p *partition) pack(shards int) []int32 {
	if shards > len(p.roots) {
		shards = len(p.roots)
	}
	order := append([]int32(nil), p.roots...)
	sort.Slice(order, func(i, j int) bool {
		ci, cj := p.count[order[i]], p.count[order[j]]
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	load := make([]int64, shards)
	shardOf := make([]int32, len(p.parent))
	for i := range shardOf {
		shardOf[i] = -1
	}
	for _, r := range order {
		best := 0
		for b := 1; b < shards; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		shardOf[r] = int32(best)
		load[best] += p.count[r]
	}
	return shardOf
}

// project builds the per-shard projections and runs the relay-taint
// soundness check. Returns the projections, the count of replicated
// relay–relay events, and the global index of the first cross-shard
// consumption (-1 if the partition is sound).
func (p *partition) project(events []trace.Event, shardOf []int32, nShards int) ([]shardProj, int64, int64) {
	projs := make([]shardProj, nShards)
	caps := make([]int64, nShards)
	for _, r := range p.roots {
		if s := shardOf[r]; s >= 0 {
			caps[s] += p.count[r]
		}
	}
	for s := range projs {
		projs[s].events = make([]trace.Event, 0, caps[s])
		projs[s].glob = make([]int64, 0, caps[s])
	}
	// taint[r] is the bitmask of shards whose content flowed into relay
	// r's clock. Consumption of r's clock in shard s is sound only if
	// taint[r] ⊆ {s}.
	taint := make([]uint64, p.nT)
	var replicated int64

	add := func(s int32, e trace.Event, i int64) {
		projs[s].events = append(projs[s].events, e)
		projs[s].glob = append(projs[s].glob, i)
	}
	replicate := func(e trace.Event, i int64) {
		for s := range projs {
			add(int32(s), e, i)
		}
		replicated++
	}

	for i, e := range events {
		gi := int64(i)
		t := int32(e.Thread)
		if !p.relay[t] {
			s := shardOf[p.find(t)]
			switch e.Kind {
			case trace.Fork, trace.Join:
				u := e.Target
				if !p.relay[u] {
					add(s, e, gi) // same component by construction
					continue
				}
				bit := uint64(1) << uint(s)
				if e.Kind == trace.Join {
					// join(worker, relay) consumes the relay's clock
					// (flow + the join check): every tainting shard
					// must be this one.
					if taint[u]&^bit != 0 {
						return nil, replicated, gi
					}
				} else {
					// fork(worker, relay) flows the worker's clock
					// into the relay: taint it with this shard.
					taint[u] |= bit
				}
				add(s, e, gi)
			default:
				add(s, e, gi)
			}
			continue
		}

		// Relay-thread events: only forks and joins by classification.
		u := e.Target
		if p.relay[u] {
			// Relay–relay flow can never fire a check (no open
			// transactions on either side) and carries only content
			// every shard already has, plus whatever the taints record.
			switch e.Kind {
			case trace.Fork:
				taint[u] |= taint[t]
			case trace.Join:
				taint[t] |= taint[u]
			}
			replicate(e, gi)
			continue
		}
		s := shardOf[p.find(u)]
		bit := uint64(1) << uint(s)
		switch e.Kind {
		case trace.Fork:
			// fork(relay, worker) consumes the relay's clock to seed
			// the worker: sound only if shard s holds all of it.
			if taint[t]&^bit != 0 {
				return nil, replicated, gi
			}
		case trace.Join:
			// join(relay, worker) flows the worker's clock into the
			// relay; no check can fire (the relay has no open
			// transaction), so absorbing foreign content is fine — it
			// taints the relay for later consumption.
			taint[t] |= bit
		}
		add(s, e, gi)
	}
	return projs, replicated, -1
}
