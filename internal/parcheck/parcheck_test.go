package parcheck

import (
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// ev builds one event.
func ev(t trace.ThreadID, k trace.OpKind, target int32) trace.Event {
	return trace.Event{Thread: t, Kind: k, Target: target}
}

// genEvents renders a workload config to a materialized event slice.
func genEvents(t *testing.T, cfg workload.Config) []trace.Event {
	t.Helper()
	return trace.Collect(workload.New(cfg)).Events
}

// requireSameVerdict runs Check against the one-engine reference and
// fails on any observable difference.
func requireSameVerdict(t *testing.T, events []trace.Event, algo core.Algorithm, shards int) Stats {
	t.Helper()
	wantV, wantN := runSequential(events, algo)
	gotV, gotN, stats := Check(events, algo, shards)
	if gotN != wantN {
		t.Fatalf("event count: parallel %d, sequential %d (stats %+v)", gotN, wantN, stats)
	}
	if (gotV == nil) != (wantV == nil) {
		t.Fatalf("verdict: parallel violation=%v, sequential violation=%v (stats %+v)", gotV, wantV, stats)
	}
	if gotV != nil {
		if gotV.Index != wantV.Index || gotV.Check != wantV.Check ||
			gotV.ActiveThread != wantV.ActiveThread || gotV.Event != wantV.Event ||
			gotV.Algorithm != wantV.Algorithm {
			t.Fatalf("violation mismatch:\n  parallel   %+v\n  sequential %+v\n  stats %+v", *gotV, *wantV, stats)
		}
	}
	return stats
}

func patterns() []workload.Pattern {
	return []workload.Pattern{
		workload.PatternHub, workload.PatternChain, workload.PatternSharded,
		workload.PatternPhase, workload.PatternProducerConsumer,
		workload.PatternBarrier, workload.PatternConvoy, workload.PatternThrash,
	}
}

// TestParallelMatchesSequentialShapes holds Check to the sequential
// verdict over every workload shape, clean and injected, across shard
// counts. The root-level differential suite repeats this through the
// public API with every algorithm; here Optimized and Basic keep the
// unit-level loop fast.
func TestParallelMatchesSequentialShapes(t *testing.T) {
	for _, pat := range patterns() {
		for _, inj := range []workload.Violation{workload.ViolationNone, workload.ViolationCross, workload.ViolationLock} {
			cfg := workload.Config{
				Name: "parcheck", Threads: 8, Vars: 256, Locks: 4,
				Events: 4000, OpsPerTxn: 4, TxnFraction: 0.5,
				Pattern: pat, Inject: inj, InjectAt: 0.6, Seed: 7,
			}
			events := genEvents(t, cfg)
			for _, shards := range []int{2, 4, 8} {
				for _, algo := range []core.Algorithm{core.AlgoBasic, core.AlgoOptimized} {
					requireSameVerdict(t, events, algo, shards)
				}
			}
		}
	}
}

// TestParallelShardsShardedPattern pins the whole point of the package:
// the sharded pattern (thread-private variables, relay main thread)
// must actually split into parallel shards, not fall back.
func TestParallelShardsShardedPattern(t *testing.T) {
	events := genEvents(t, workload.Config{
		Name: "parcheck", Threads: 9, Vars: 512, Locks: 1,
		Events: 8000, OpsPerTxn: 4, TxnFraction: 0.5,
		Pattern: workload.PatternSharded, Seed: 11,
	})
	stats := requireSameVerdict(t, events, core.AlgoOptimized, 4)
	if stats.Shards < 2 {
		t.Fatalf("sharded pattern did not parallelize: %+v", stats)
	}
	if stats.Replayed || stats.Conflict {
		t.Fatalf("sharded pattern fell back to sequential: %+v", stats)
	}
	if stats.Relays == 0 {
		t.Fatalf("main thread not classified as relay: %+v", stats)
	}
}

// TestParallelChainFallsBack pins the honest negative: the chain
// pattern welds every worker into one component, so Check must detect
// the degenerate partition and run sequentially rather than pretend.
func TestParallelChainFallsBack(t *testing.T) {
	events := genEvents(t, workload.Config{
		Name: "parcheck", Threads: 8, Vars: 128, Locks: 1,
		Events: 4000, OpsPerTxn: 4, Pattern: workload.PatternChain, Seed: 3,
	})
	stats := requireSameVerdict(t, events, core.AlgoOptimized, 4)
	if stats.Shards != 1 || !stats.Replayed {
		t.Fatalf("chain pattern should run sequentially: %+v", stats)
	}
	if stats.Components > 1 {
		t.Fatalf("chain pattern should be one component, got %d", stats.Components)
	}
}

// TestParallelConflictReplays drives the taint detector: a relay joins
// a worker from one component and then forks a thread of another, so
// its clock crosses shards and the speculative partition must abandon
// itself — with the verdict still exactly sequential.
func TestParallelConflictReplays(t *testing.T) {
	// Threads: 0 relay; 1 owns x0; 2 and 3 share x1 (one component).
	events := []trace.Event{
		ev(0, trace.Fork, 1),
		ev(0, trace.Fork, 2),
		ev(1, trace.Begin, 0), ev(1, trace.Write, 0), ev(1, trace.End, 0),
		ev(2, trace.Begin, 0), ev(2, trace.Write, 1), ev(2, trace.End, 0),
		ev(0, trace.Join, 1), // taints the relay with thread 1's shard
		ev(0, trace.Fork, 3), // consumes the relay's clock in thread 3's shard
		ev(3, trace.Begin, 0), ev(3, trace.Write, 1), ev(3, trace.End, 0),
		ev(0, trace.Join, 2),
		ev(0, trace.Join, 3),
	}
	stats := requireSameVerdict(t, events, core.AlgoOptimized, 2)
	if !stats.Conflict || !stats.Replayed {
		t.Fatalf("cross-shard relay flow not detected: %+v", stats)
	}
	if stats.ConflictIndex != 9 {
		t.Fatalf("conflict index: got %d, want 9 (the fork(0,3)): %+v", stats.ConflictIndex, stats)
	}
}

// TestParallelRelayChainReplicates pins relay–relay handling: a
// coordinator forking a sub-coordinator must replicate those events
// into every shard and still split the workers.
func TestParallelRelayChainReplicates(t *testing.T) {
	// 0 and 1 are relays; 2 and 3 are independent workers.
	events := []trace.Event{
		ev(0, trace.Fork, 1),
		ev(1, trace.Fork, 2),
		ev(1, trace.Fork, 3),
		ev(2, trace.Begin, 0), ev(2, trace.Write, 0), ev(2, trace.End, 0),
		ev(3, trace.Begin, 0), ev(3, trace.Write, 1), ev(3, trace.End, 0),
		ev(1, trace.Join, 2),
		ev(1, trace.Join, 3),
		ev(0, trace.Join, 1),
	}
	stats := requireSameVerdict(t, events, core.AlgoOptimized, 2)
	if stats.Shards != 2 {
		t.Fatalf("independent workers under a relay chain should shard: %+v", stats)
	}
	if stats.Replicated == 0 {
		t.Fatalf("relay–relay events should be replicated: %+v", stats)
	}
	if stats.Relays != 2 {
		t.Fatalf("relay count: got %d, want 2", stats.Relays)
	}
}

// TestParallelInjectedViolationIndex pins global-index mapping: an
// injected violation inside one shard must surface with its global
// EventIndex, not the projection-local one.
func TestParallelInjectedViolationIndex(t *testing.T) {
	events := genEvents(t, workload.Config{
		Name: "parcheck", Threads: 9, Vars: 512, Locks: 1,
		Events: 8000, OpsPerTxn: 4, TxnFraction: 0.5,
		Pattern: workload.PatternSharded,
		Inject:  workload.ViolationCross, InjectAt: 0.7, Seed: 13,
	})
	wantV, _ := runSequential(events, core.AlgoOptimized)
	if wantV == nil {
		t.Fatal("injected workload unexpectedly clean")
	}
	stats := requireSameVerdict(t, events, core.AlgoOptimized, 4)
	// The cross injection welds two workers into one component; the rest
	// must still shard.
	if stats.Shards < 2 {
		t.Fatalf("injected sharded workload should still parallelize: %+v", stats)
	}
}

// TestParallelDegenerateInputs covers the edges: empty trace, single
// thread, shards<=1, and relay-only traces.
func TestParallelDegenerateInputs(t *testing.T) {
	requireSameVerdict(t, nil, core.AlgoOptimized, 4)

	single := []trace.Event{
		ev(0, trace.Begin, 0), ev(0, trace.Write, 0), ev(0, trace.End, 0),
	}
	if stats := requireSameVerdict(t, single, core.AlgoOptimized, 4); stats.Shards != 1 {
		t.Fatalf("single-component trace should not claim shards: %+v", stats)
	}

	relayOnly := []trace.Event{ev(0, trace.Fork, 1), ev(0, trace.Join, 1)}
	requireSameVerdict(t, relayOnly, core.AlgoOptimized, 4)

	sharded := genEvents(t, workload.Config{
		Name: "parcheck", Threads: 5, Vars: 128, Locks: 1,
		Events: 1000, OpsPerTxn: 4, TxnFraction: 0.5,
		Pattern: workload.PatternSharded, Seed: 5,
	})
	if stats := requireSameVerdict(t, sharded, core.AlgoOptimized, 1); !stats.Replayed {
		t.Fatalf("shards=1 should run sequentially: %+v", stats)
	}
	if stats := requireSameVerdict(t, sharded, core.AlgoOptimized, 1<<20); stats.Shards > MaxShards {
		t.Fatalf("shard clamp failed: %+v", stats)
	}
}

// TestParallelDeterministic pins that packing and merge are
// deterministic: two runs over the same slice agree on stats and
// verdict bit for bit.
func TestParallelDeterministic(t *testing.T) {
	events := genEvents(t, workload.Config{
		Name: "parcheck", Threads: 17, Vars: 1024, Locks: 1,
		Events: 10000, OpsPerTxn: 4, TxnFraction: 0.5,
		Pattern: workload.PatternSharded,
		Inject:  workload.ViolationCross, InjectAt: 0.5, Seed: 29,
	})
	v1, n1, s1 := Check(events, core.AlgoOptimized, 4)
	for i := 0; i < 3; i++ {
		v2, n2, s2 := Check(events, core.AlgoOptimized, 4)
		if n1 != n2 || s1 != s2 {
			t.Fatalf("nondeterministic run %d: (%d,%+v) vs (%d,%+v)", i, n1, s1, n2, s2)
		}
		if (v1 == nil) != (v2 == nil) || (v1 != nil && *v1 != *v2) {
			t.Fatalf("nondeterministic verdict run %d: %v vs %v", i, v1, v2)
		}
	}
}

// TestParallelAllAlgorithms runs one sharded + one injected workload
// through every core algorithm at 4 shards.
func TestParallelAllAlgorithms(t *testing.T) {
	algos := []core.Algorithm{
		core.AlgoBasic, core.AlgoReadOpt, core.AlgoOptimized,
		core.AlgoOptimizedTree, core.AlgoOptimizedHybrid, core.AlgoOptimizedAuto,
	}
	for _, inj := range []workload.Violation{workload.ViolationNone, workload.ViolationDelayed} {
		events := genEvents(t, workload.Config{
			Name: "parcheck", Threads: 9, Vars: 512, Locks: 2,
			Events: 4000, OpsPerTxn: 4, TxnFraction: 0.5,
			Pattern: workload.PatternSharded, Inject: inj, InjectAt: 0.6, Seed: 17,
		})
		for _, algo := range algos {
			requireSameVerdict(t, events, algo, 4)
		}
	}
}
