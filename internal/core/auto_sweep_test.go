package core

// Bench-backed sweep of AutoWidthThreshold, the observed-thread-width
// cutover at which the Auto engine's thread clocks switch from flat to
// tree (ROADMAP PR 3 open item: the 16 was inherited from the PR 2
// chain-t8 observation, not swept per pattern). The interesting regimes
// straddle the cutover: a width just above the candidate thresholds (the
// engine spends the trace deciding) and a width well past all of them
// (the cost is the promotion churn of the early flat clocks).
//
// Run the sweep with:
//
//	go test ./internal/core -run '^$' -bench AutoWidthThreshold -benchtime 3x
//
// The winner is pinned in AutoWidthThreshold (see its doc comment and the
// ROADMAP PR 4 notes for the recorded numbers) and guarded by
// TestAutoWidthThresholdPinned; TestAutoWidthThresholdSemanticInvariance
// proves the knob cannot change verdicts, only constants.

import (
	"fmt"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// autoSweepConfigs returns the sweep grid: sharded, chain and phase-shift
// patterns at a straddling width (12: candidate thresholds 8 and 12 push
// it to trees, 16+ keep it flat) and a wide one (48: every candidate
// promotes, earlier or later).
func autoSweepConfigs() []workload.Config {
	var out []workload.Config
	for _, p := range []workload.Pattern{
		workload.PatternSharded, workload.PatternChain, workload.PatternPhase,
	} {
		for _, threads := range []int{12, 48} {
			out = append(out, workload.Config{
				Name: fmt.Sprintf("%s-t%d", p, threads), Threads: threads,
				Vars: 256, Locks: 8, Events: 60_000, OpsPerTxn: 4,
				Pattern: p, Inject: workload.ViolationNone,
				TxnFraction: 0.5, AbsorbEvery: 4, Seed: 20260726,
			})
		}
	}
	return out
}

func BenchmarkAutoWidthThreshold(b *testing.B) {
	for _, cfg := range autoSweepConfigs() {
		tr := trace.Collect(workload.New(cfg))
		for _, threshold := range []int{8, 12, 16, 24, 32} {
			b.Run(fmt.Sprintf("%s/threshold=%d", cfg.Name, threshold), func(b *testing.B) {
				b.ReportMetric(float64(len(tr.Events)), "events")
				for i := 0; i < b.N; i++ {
					eng := newOptimizedAutoWidth(threshold)
					if v, _ := Run(eng, tr.Cursor()); v != nil {
						b.Fatalf("unexpected violation: %v", v)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr.Events)), "ns/event")
			})
		}
	}
}

// TestAutoWidthThresholdSemanticInvariance sweeps the threshold across its
// extremes — 0 (every thread clock starts as a tree) through 2^20 (none
// ever promote by width) — and requires bit-identical outcomes from the
// width-keyed engine on sharded/chain/phase and injected-violation traces:
// the knob may only move constants, never verdicts, indices or event
// counts. Flat Optimized anchors the expected outcome.
func TestAutoWidthThresholdSemanticInvariance(t *testing.T) {
	traces := map[string]*trace.Trace{
		"phase": testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
			Threads: 24, BurstRounds: 4, SteadyRounds: 10,
		}),
	}
	for _, cfg := range autoSweepConfigs() {
		small := cfg
		small.Events = 4000
		traces[small.Name] = trace.Collect(workload.New(small))
	}
	for _, inj := range []workload.Violation{workload.ViolationCross, workload.ViolationDelayed} {
		cfg := workload.Config{
			Name: "sweep-" + string(inj), Threads: 24, Vars: 64, Locks: 4,
			Events: 4000, OpsPerTxn: 3, Pattern: workload.PatternChain,
			Inject: inj, InjectAt: 0.6, TxnFraction: 0.5, Seed: 44,
		}
		traces[cfg.Name] = trace.Collect(workload.New(cfg))
	}

	type outcome struct {
		violated bool
		index    int64
		check    CheckKind
		n        int64
	}
	for name, tr := range traces {
		flat := NewOptimized()
		vRef, nRef := Run(flat, tr.Cursor())
		want := outcome{violated: vRef != nil, n: nRef}
		if vRef != nil {
			want.index, want.check = vRef.Index, vRef.Check
		}
		for _, threshold := range []int{0, 1, 8, 16, 32, 1 << 20} {
			eng := newOptimizedAutoWidth(threshold)
			v, n := Run(eng, tr.Cursor())
			got := outcome{violated: v != nil, n: n}
			if v != nil {
				got.index, got.check = v.Index, v.Check
			}
			if got != want {
				t.Fatalf("%s: threshold %d: outcome %+v, want %+v", name, threshold, got, want)
			}
		}
	}
}

// TestAutoWidthThresholdPinned guards the swept default: changing it
// requires re-running the sweep and updating the doc comment and the
// ROADMAP notes.
func TestAutoWidthThresholdPinned(t *testing.T) {
	if AutoWidthThreshold != 16 {
		t.Fatalf("AutoWidthThreshold = %d; the swept default is 16 — re-run "+
			"BenchmarkAutoWidthThreshold and update its doc before changing it",
			AutoWidthThreshold)
	}
}
