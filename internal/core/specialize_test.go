package core

// The flat-clock and hybrid engines (optimized_flat.go, optimized_hybrid.go)
// are source-level monomorphizations of the generic engine
// (optimized_generic.go): Go's shape-stenciled generics cannot inline
// method calls on a type parameter, and the resulting ~2ns dictionary call
// on every clock operation is measurable on the per-event hot path.
// specializeEngine performs the mechanical substitution;
// TestFlatSpecializationInSync and TestHybridSpecializationInSync fail
// whenever a committed specialization is stale.
//
// Regenerate with:
//
//	go test ./internal/core -run TestFlatSpecializationInSync -update-flat-engine
//	go test ./internal/core -run TestHybridSpecializationInSync -update-hybrid-engine

import (
	"flag"
	"go/format"
	"os"
	"regexp"
	"strings"
	"testing"
)

var updateFlatEngine = flag.Bool("update-flat-engine", false,
	"rewrite optimized_flat.go from optimized_generic.go")

var updateHybridEngine = flag.Bool("update-hybrid-engine", false,
	"rewrite optimized_hybrid.go from optimized_generic.go")

// specSpec names the concrete types one specialization substitutes for the
// generic engine's type parameter and generic structs.
type specSpec struct {
	file      string // generated file name
	updateCmd string // regeneration command (for the generated header)
	clock     string // concrete clock type replacing the type parameter C
	engine    string // concrete engine type replacing OptimizedOn[C]
	slot      string // concrete epochSlot type
	thread    string // concrete optThread type
	lock      string // concrete optLock type
	variable  string // concrete optVar type
}

var flatSpec = specSpec{
	file:      "optimized_flat.go",
	updateCmd: "go test ./internal/core -run TestFlatSpecializationInSync -update-flat-engine",
	clock:     "*flatClock",
	engine:    "Optimized",
	slot:      "flatEpochSlot",
	thread:    "flatEngThread",
	lock:      "flatEngLock",
	variable:  "flatEngVar",
}

var hybridSpec = specSpec{
	file:      "optimized_hybrid.go",
	updateCmd: "go test ./internal/core -run TestHybridSpecializationInSync -update-hybrid-engine",
	clock:     "*hybridClock",
	engine:    "OptimizedHybrid",
	slot:      "hybridEpochSlot",
	thread:    "hybridEngThread",
	lock:      "hybridEngLock",
	variable:  "hybridEngVar",
}

// specializeEngine rewrites the generic engine source into a concrete
// engine per spec.
func specializeEngine(src string, spec specSpec) (string, error) {
	s := src
	// Drop the explanatory header (the generated file gets its own).
	if i := strings.Index(s, "package core"); i >= 0 {
		s = s[i:]
	}
	if i := strings.Index(s, "import ("); i >= 0 {
		head := s[:i]
		if j := strings.Index(head, "\n\n// This file"); j >= 0 {
			if k := strings.Index(head[j+2:], "\n\nimport"); k >= 0 {
				s = head[:j] + "\n" + s[i-1:]
			} else {
				s = head[:j] + "\n" + s[i:]
			}
		}
	}
	for _, r := range [][2]string{
		{"type OptimizedOn[C clockRep[C]] struct", "type " + spec.engine + " struct"},
		{"type epochSlot[C comparable] struct", "type " + spec.slot + " struct"},
		{"type optThread[C comparable] struct", "type " + spec.thread + " struct"},
		{"type optLock[C comparable] struct", "type " + spec.lock + " struct"},
		{"type optVar[C comparable] struct", "type " + spec.variable + " struct"},
		{"OptimizedOn[C]", spec.engine},
		{"epochSlot[C]", spec.slot},
		{"optThread[C]", spec.thread},
		{"optLock[C]", spec.lock},
		{"optVar[C]", spec.variable},
	} {
		s = strings.ReplaceAll(s, r[0], r[1])
	}
	// Remaining standalone uses of the type parameter become the concrete
	// clock pointer. \bC\b cannot match inside identifiers, so CheckKind,
	// CopyFrom, etc. are untouched.
	s = regexp.MustCompile(`\bC\b`).ReplaceAllString(s, spec.clock)
	s = "// Code generated from optimized_generic.go by specialize_test.go; DO NOT EDIT.\n" +
		"// Regenerate: " + spec.updateCmd + "\n\n" + s
	out, err := format.Source([]byte(s))
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func checkSpecialization(t *testing.T, spec specSpec, update bool) {
	t.Helper()
	src, err := os.ReadFile("optimized_generic.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := specializeEngine(string(src), spec)
	if err != nil {
		t.Fatalf("specialization does not produce valid Go: %v", err)
	}
	if update {
		if err := os.WriteFile(spec.file, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s regenerated", spec.file)
		return
	}
	got, err := os.ReadFile(spec.file)
	if err != nil {
		t.Fatalf("%s missing (%v); run: %s", spec.file, err, spec.updateCmd)
	}
	if string(got) != want {
		t.Fatalf("%s is stale with respect to optimized_generic.go;\nrun: %s", spec.file, spec.updateCmd)
	}
}

func TestFlatSpecializationInSync(t *testing.T) {
	checkSpecialization(t, flatSpec, *updateFlatEngine)
}

func TestHybridSpecializationInSync(t *testing.T) {
	checkSpecialization(t, hybridSpec, *updateHybridEngine)
}
