package core

// The flat-clock engine (optimized_flat.go) is a source-level
// monomorphization of the generic engine (optimized_generic.go): Go's
// shape-stenciled generics cannot inline method calls on a type
// parameter, and the resulting ~2ns dictionary call on every clock
// operation is measurable on the per-event hot path. specializeFlat
// performs the mechanical substitution; TestFlatSpecializationInSync
// fails whenever the committed specialization is stale.
//
// Regenerate with:
//
//	go test ./internal/core -run TestFlatSpecializationInSync -update-flat-engine

import (
	"flag"
	"go/format"
	"os"
	"regexp"
	"strings"
	"testing"
)

var updateFlatEngine = flag.Bool("update-flat-engine", false,
	"rewrite optimized_flat.go from optimized_generic.go")

// specializeFlat rewrites the generic engine source into the concrete
// flat-clock engine.
func specializeFlat(src string) (string, error) {
	s := src
	// Drop the explanatory header (the generated file gets its own).
	if i := strings.Index(s, "package core"); i >= 0 {
		s = s[i:]
	}
	if i := strings.Index(s, "import ("); i >= 0 {
		head := s[:i]
		if j := strings.Index(head, "\n\n// This file"); j >= 0 {
			if k := strings.Index(head[j+2:], "\n\nimport"); k >= 0 {
				s = head[:j] + "\n" + s[i-1:]
			} else {
				s = head[:j] + "\n" + s[i:]
			}
		}
	}
	for _, r := range [][2]string{
		{"type OptimizedOn[C clockRep[C]] struct", "type Optimized struct"},
		{"type epochSlot[C comparable] struct", "type flatEpochSlot struct"},
		{"type optThread[C comparable] struct", "type flatEngThread struct"},
		{"type optLock[C comparable] struct", "type flatEngLock struct"},
		{"type optVar[C comparable] struct", "type flatEngVar struct"},
		{"OptimizedOn[C]", "Optimized"},
		{"epochSlot[C]", "flatEpochSlot"},
		{"optThread[C]", "flatEngThread"},
		{"optLock[C]", "flatEngLock"},
		{"optVar[C]", "flatEngVar"},
	} {
		s = strings.ReplaceAll(s, r[0], r[1])
	}
	// Remaining standalone uses of the type parameter become the concrete
	// clock pointer. \bC\b cannot match inside identifiers, so CheckKind,
	// CopyFrom, etc. are untouched.
	s = regexp.MustCompile(`\bC\b`).ReplaceAllString(s, "*flatClock")
	s = "// Code generated from optimized_generic.go by specialize_test.go; DO NOT EDIT.\n" +
		"// Regenerate: go test ./internal/core -run TestFlatSpecializationInSync -update-flat-engine\n\n" + s
	out, err := format.Source([]byte(s))
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func TestFlatSpecializationInSync(t *testing.T) {
	src, err := os.ReadFile("optimized_generic.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := specializeFlat(string(src))
	if err != nil {
		t.Fatalf("specialization does not produce valid Go: %v", err)
	}
	if *updateFlatEngine {
		if err := os.WriteFile("optimized_flat.go", []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("optimized_flat.go regenerated")
		return
	}
	got, err := os.ReadFile("optimized_flat.go")
	if err != nil {
		t.Fatalf("optimized_flat.go missing (%v); run: go test ./internal/core -run TestFlatSpecializationInSync -update-flat-engine", err)
	}
	if string(got) != want {
		t.Fatalf("optimized_flat.go is stale with respect to optimized_generic.go;\nrun: go test ./internal/core -run TestFlatSpecializationInSync -update-flat-engine")
	}
}
