package core

// White-box tests for the adaptive clock-representation levers: the Auto
// engine's width-keyed flat→tree cutover and the hybrid representation's
// hysteresis re-promotion of demoted thread clocks. The semantic
// (verdict/index) side is covered by the differential suites; these tests
// pin the representation dynamics themselves, which no verdict can see.

import (
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

// phaseShift is the shared fixture: a chain burst dense enough to demote
// every hybrid thread clock, then a sharded steady state long enough to
// re-promote them through the quiet-join hysteresis.
func phaseShift() *trace.Trace {
	return testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
		Threads: 8, BurstRounds: 8, SteadyRounds: 40, OpsPerTxn: 4,
	})
}

// hybridTreeStates summarizes the representation state of an engine's
// thread clocks: how many are currently tree-backed, and how many have
// demoted at least once in their history.
func hybridTreeStates(eng *OptimizedHybrid) (trees, everDemoted int) {
	for i := range eng.threads {
		ts := &eng.threads[i]
		if !ts.init {
			continue
		}
		if ts.c.tree != nil {
			trees++
		}
		if ts.c.demotions > 0 {
			everDemoted++
		}
	}
	return trees, everDemoted
}

func TestHybridDemotesDuringChainBurst(t *testing.T) {
	tr := testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
		Threads: 8, BurstRounds: 8, SteadyRounds: 0,
	})
	eng := NewOptimizedHybrid()
	if v, _ := Run(eng, tr.Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	trees, demoted := hybridTreeStates(eng)
	if demoted == 0 {
		t.Fatalf("chain burst demoted no thread clocks (trees=%d)", trees)
	}
	if trees == len(eng.threads) {
		t.Fatalf("all %d thread clocks still tree-backed after the burst", trees)
	}
}

func TestHybridDemotedClocksRepromoteInSteadyState(t *testing.T) {
	eng := NewOptimizedHybrid()
	if v, _ := Run(eng, phaseShift().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	trees, demoted := hybridTreeStates(eng)
	if demoted == 0 {
		t.Fatalf("fixture did not demote any thread clocks; burst too weak")
	}
	if trees == 0 {
		t.Fatalf("no demoted thread clock re-promoted after %d steady rounds (demoted=%d)",
			40, demoted)
	}
}

// TestHybridRepromotionPreservesVerdicts replays the phase-shift shape
// through every representation: demotion and re-promotion must be
// semantically invisible.
func TestHybridRepromotionPreservesVerdicts(t *testing.T) {
	tr := phaseShift()
	assertRepAgreement(t, "phase-shift", func() trace.Source { return tr.Cursor() })
}

func TestRepromoteQuietNeedHysteresis(t *testing.T) {
	cases := []struct {
		demotions uint8
		want      uint16
	}{
		{0, 0}, {1, 16}, {2, 32}, {3, 64}, {7, 1024}, {8, 1024}, {255, 1024},
	}
	for _, c := range cases {
		if got := repromoteQuietNeed(c.demotions); got != c.want {
			t.Fatalf("repromoteQuietNeed(%d) = %d, want %d", c.demotions, got, c.want)
		}
	}
}

// autoRoundTrace runs each of the given threads through one
// private-variable transaction, in thread order, rounds times. Each
// thread's private variable is distinct, so the trace is serializable at
// any width.
func autoRoundTrace(b *trace.Builder, threads []trace.ThreadID, vars []trace.VarID, rounds int) {
	for r := 0; r < rounds; r++ {
		for i, th := range threads {
			b.Begin(th)
			b.Write(th, vars[i])
			b.End(th)
		}
	}
}

func TestAutoStaysFlatBelowWidthThreshold(t *testing.T) {
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, 3)
	vars := make([]trace.VarID, 3)
	for i := range threads {
		threads[i] = b.Thread("t" + string(rune('0'+i)))
		vars[i] = b.Var("x" + string(rune('0'+i)))
	}
	autoRoundTrace(b, threads, vars, 10)
	eng := newOptimizedAutoWidth(4)
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	trees, _ := hybridTreeStates(eng)
	if trees != 0 {
		t.Fatalf("below-threshold Auto promoted %d thread clocks to trees", trees)
	}
}

// TestAutoPromotesWhenWidthCrosses drives an Auto engine past its width
// threshold: clocks constructed after the crossing start as trees, and the
// earlier flat clocks promote themselves at their next transaction begin.
func TestAutoPromotesWhenWidthCrosses(t *testing.T) {
	const n = 8
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, n)
	vars := make([]trace.VarID, n)
	for i := range threads {
		threads[i] = b.Thread("t" + string(rune('0'+i)))
		vars[i] = b.Var("x" + string(rune('0'+i)))
	}
	// First the narrow phase: threads 0–3 only (at the threshold of 4, so
	// still flat), then all eight threads appear and run further rounds.
	autoRoundTrace(b, threads[:4], vars[:4], 2)
	autoRoundTrace(b, threads, vars, 2)
	eng := newOptimizedAutoWidth(4)
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	for i := range threads {
		ts := &eng.threads[i]
		if !ts.init {
			t.Fatalf("thread %d never initialized", i)
		}
		if ts.c.tree == nil {
			t.Fatalf("thread %d clock still flat after width crossed (demotions=%d quiet=%d)",
				i, ts.c.demotions, ts.c.quiet)
		}
	}
}

// TestRepromotionStaleClaimTrace is the engine-level regression for the
// re-promotion version-stream bug: thread 0 records a version claim about
// thread 1 (by reading t1's live tree clock), t1 then demotes during a
// chain burst and re-promotes during a sharded steady state, and finally a
// three-transaction cycle T7→T1→T0→T7 closes THROUGH content t0 can only
// learn from t1's re-promoted clock. If re-promotion restarted t1's
// version stream, t0's stale claim would skip that join, t0 would miss
// t7's begin stamp, and the hybrid engine would diverge from flat on the
// violation. (treeclock.TestPromoteFromFlatVersionStreamContinues pins the
// same invariant at the data-structure level.)
func TestRepromotionStaleClaimTrace(t *testing.T) {
	b := trace.NewBuilder()
	const n = 8
	th := make([]trace.ThreadID, n)
	for i := range th {
		th[i] = b.Thread("t" + string(rune('0'+i)))
	}
	y, v1, w7, q0 := b.Var("y"), b.Var("v1"), b.Var("w7"), b.Var("q0")
	tok := make([]trace.VarID, n)
	priv := make([]trace.VarID, n)
	for i := range tok {
		tok[i] = b.Var("tok" + string(rune('0'+i)))
		priv[i] = b.Var("priv" + string(rune('0'+i)))
	}
	for i := 1; i < n; i++ {
		b.Fork(th[0], th[i])
	}
	// A: pump t1's version stream well past everything t1 will do after
	// re-promoting (a restarted stream could only be caught while the
	// stale claim still exceeds it), then publish a claim into t0's tree
	// by reading t1's live clock mid-transaction.
	for i := 0; i < 120; i++ {
		b.Begin(th[1])
		b.Write(th[1], y)
		b.End(th[1])
	}
	b.Begin(th[1])
	b.Write(th[1], y)
	b.Begin(th[0])
	b.Read(th[0], y) // t0 ⊔= C_t1 (live, tree-tree): claim recorded
	b.End(th[0])
	b.End(th[1])
	// B: chain burst among t1..t6 — demotes their thread clocks.
	for r := 0; r < 8; r++ {
		for w := 1; w <= 6; w++ {
			prev := w - 1
			if prev < 1 {
				prev = 6
			}
			b.Begin(th[w])
			b.Read(th[w], tok[prev])
			b.Write(th[w], tok[w])
			b.End(th[w])
		}
	}
	// C: sharded steady state — t1 re-promotes via the quiet streak.
	for r := 0; r < 30; r++ {
		b.Begin(th[1])
		b.Write(th[1], priv[1])
		b.Read(th[1], priv[1])
		b.Write(th[1], priv[2])
		b.End(th[1])
	}
	// D: the exposing cycle. t7's begin stamp travels t7→t1→t0 only
	// through t1's re-promoted clock.
	b.Begin(th[7])
	b.Write(th[7], w7)
	b.Begin(th[1])
	b.Read(th[1], w7) // t1 ⊔= C_t7 (live)
	b.Write(th[1], v1)
	b.Begin(th[0])
	b.Read(th[0], v1) // t0 ⊔= C_t1 (live): the join a stale claim would skip
	b.Write(th[0], q0)
	b.Read(th[7], q0) // cycle closes: violation in every correct engine
	b.End(th[7])
	b.End(th[1])
	b.End(th[0])
	tr := b.Build()

	// The fixture must actually demote and re-promote t1, or it guards
	// nothing: check the hybrid engine's white-box state right before D.
	probe := NewOptimizedHybrid()
	cur := tr.Cursor()
	for i := 0; i < len(tr.Events)-12; i++ {
		e, _ := cur.Next()
		probe.Process(e)
	}
	if ts := &probe.threads[1]; ts.c.demotions == 0 || ts.c.tree == nil {
		t.Fatalf("fixture rot: t1 demotions=%d tree=%v (want demoted then re-promoted)",
			ts.c.demotions, ts.c.tree != nil)
	}

	assertRepAgreement(t, "repromotion-stale-claim", func() trace.Source { return tr.Cursor() })
	if v, _ := Run(NewOptimized(), tr.Cursor()); v == nil {
		t.Fatal("fixture rot: the exposing cycle no longer violates")
	}
}

// TestAutoMatchesOtherRepsOnPhaseShift pins the Auto engine (default and
// tiny-threshold variants are both in allRepEngines) to the other
// representations on the phase-shift fixture — the workload it was built
// for.
func TestAutoMatchesOtherRepsOnPhaseShift(t *testing.T) {
	for _, threads := range []int{2, 4, 8, 24} {
		tr := testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
			Threads: threads, BurstRounds: 6, SteadyRounds: 30, OpsPerTxn: 3,
		})
		assertRepAgreement(t, "auto-phase", func() trace.Source { return tr.Cursor() })
	}
}
