package core

// Native Go fuzzing of engine agreement: fuzz inputs decode into
// well-formed traces through internal/testutil's byte-program VM, and the
// reference Algorithm 1 engine plus all three clock representations of the
// Algorithm 3 engine must agree. The corpus is seeded with the paper's
// worked traces (ρ1–ρ4) and one injected-violation workload per tracegen
// -inject mode, each encoded losslessly into the byte format.
//
// Run long with:
//
//	go test -fuzz=FuzzDifferentialEngines ./internal/core

import (
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// fuzzSeeds returns the corpus seeds: the paper's ρ traces and one
// injected-violation trace per tracegen -inject mode, in byte-program
// form.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, tr := range []*trace.Trace{
		testutil.Rho1(), testutil.Rho2(), testutil.Rho3(), testutil.Rho4(),
	} {
		enc := testutil.EncodeTrace(tr)
		if enc == nil {
			f.Fatal("paper trace does not fit the byte format")
		}
		seeds = append(seeds, enc)
	}
	for _, inj := range []workload.Violation{
		workload.ViolationCross, workload.ViolationDelayed, workload.ViolationLock,
	} {
		cfg := workload.Config{
			Name: "fuzz-seed-" + string(inj), Threads: 6, Vars: 48, Locks: 8,
			Events: 400, OpsPerTxn: 3, Pattern: workload.PatternChain,
			Inject: inj, InjectAt: 0.7, TxnFraction: 0.5, Seed: 11,
		}
		tr := trace.Collect(workload.New(cfg))
		enc := testutil.EncodeTrace(tr)
		if enc == nil {
			f.Fatalf("injected workload %s does not fit the byte format", inj)
		}
		seeds = append(seeds, enc)
	}
	// The phase-shift shape seeds the corpus with demote-then-repromote
	// dynamics, so mutations explore around the representation-switch
	// boundaries of the hybrid and Auto engines.
	phase := testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
		Threads: 5, BurstRounds: 4, SteadyRounds: 12, OpsPerTxn: 3,
	})
	enc := testutil.EncodeTrace(phase)
	if enc == nil {
		f.Fatal("phase-shift trace does not fit the byte format")
	}
	seeds = append(seeds, enc)
	// The scenario-zoo shapes (PR 7) seed their distinctive structures —
	// cross-group hand-offs, wide barrier joins, hot-lock convoys and
	// fresh-variable churn — so mutations explore around each.
	for _, shape := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"producer-consumer", testutil.ProducerConsumerTrace(testutil.ProducerConsumerOpts{
			Producers: 2, Consumers: 2, Rounds: 40, Slots: 4,
		})},
		{"barrier-phases", testutil.BarrierPhasesTrace(testutil.BarrierOpts{
			Threads: 6, Phases: 8, OpsPerTxn: 2,
		})},
		{"lock-convoy", testutil.LockConvoyTrace(testutil.LockConvoyOpts{
			Threads: 6, Rounds: 40, Nested: true,
		})},
		{"quota-thrash", testutil.QuotaThrashTrace(testutil.QuotaThrashOpts{
			Threads: 5, Bursts: 20, TxnsPerBurst: 3,
		})},
	} {
		enc := testutil.EncodeTrace(shape.tr)
		if enc == nil {
			f.Fatalf("%s trace does not fit the byte format", shape.name)
		}
		seeds = append(seeds, enc)
	}
	return seeds
}

// FuzzDifferentialEngines decodes fuzz bytes into a well-formed trace and
// fails on any divergence between the engines: the Basic reference and the
// optimized engine must agree on the verdict (with the optimized detection
// point earlier or equal — laziness never reports later), and the flat,
// tree and hybrid representations of the optimized engine must agree
// bit-for-bit on verdict, violation index, check kind, events processed,
// and GC decisions.
func FuzzDifferentialEngines(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := testutil.TraceFromBytes(data)

		basic := NewBasic()
		vBasic, _ := Run(basic, tr.Cursor())

		reps := allRepEngines()
		ref := reps[0]
		vRef, nRef := Run(ref.eng, tr.Cursor())
		refFull, refColl := ref.stats()

		// Basic vs optimized: same verdict, detection point ≤ Basic's.
		if (vBasic != nil) != (vRef != nil) {
			t.Fatalf("verdict divergence: basic violation=%v optimized violation=%v\nbasic=%v optimized=%v",
				vBasic != nil, vRef != nil, vBasic, vRef)
		}
		if vBasic != nil && vRef.Index > vBasic.Index {
			t.Fatalf("optimized detected later than basic: %d > %d", vRef.Index, vBasic.Index)
		}

		// Representations: bit-identical observable behavior.
		for _, rep := range reps[1:] {
			v, n := Run(rep.eng, tr.Cursor())
			if (vRef != nil) != (v != nil) {
				t.Fatalf("verdict divergence: %s violation=%v %s violation=%v",
					ref.name, vRef != nil, rep.name, v != nil)
			}
			if vRef != nil && (vRef.Index != v.Index || vRef.Check != v.Check) {
				t.Fatalf("violation divergence: %s (index %d, %v) %s (index %d, %v)",
					ref.name, vRef.Index, vRef.Check, rep.name, v.Index, v.Check)
			}
			if nRef != n {
				t.Fatalf("processed divergence: %s %d %s %d", ref.name, nRef, rep.name, n)
			}
			full, coll := rep.stats()
			if refFull != full || refColl != coll {
				t.Fatalf("GC divergence: %s (%d,%d) %s (%d,%d)",
					ref.name, refFull, refColl, rep.name, full, coll)
			}
		}
	})
}
