package core

import (
	"aerodrome/internal/treeclock"
	"aerodrome/internal/vc"
)

// hybridClock is the third clock representation: tree clocks for the
// per-thread clocks ℂ_t and C⊲_t — where the publish-absorb discipline
// makes subtree-skipping pay — but flat vc.Clocks for the auxiliary
// accumulators (𝕎_x, ℝ_x, lock clocks), whose end-event flushes and
// zeroing-adjacent update patterns fall outside the tree transfer
// discipline and degenerate tree joins to copies on densely entangled
// (chain-shaped) workloads.
//
// Exactly one of tree/flat is non-nil, fixed at construction: the engine's
// newClock makes tree-backed thread clocks and newAux makes flat-backed
// auxiliaries. Same-side operations dispatch to the native implementation;
// the four cross-representation operations the engine actually performs go
// through internal/treeclock's narrow flat-interop API:
//
//	thread ⊔= aux    (checkAndGet, write R_x absorb)   → JoinFlat
//	aux ⊔= thread    (flushes, end-event propagation)  → AbsorbIntoFlat
//	aux := thread    (release, unary write)            → AbsorbIntoFlat
//	begin ⊑ aux      (checkAndGet violation test)      → LeqFlat
//
// The remaining cross combinations (tree ← flat assignment, flat ⊑ tree)
// have no engine call site; Leq handles flat ⊑ tree for completeness and
// CopyFrom panics on tree ← flat rather than silently approximating an
// assignment.
type hybridClock struct {
	tree *treeclock.Clock
	flat flatClock

	// Copy-on-write aliasing for the flat side: when aliasSrc is non-nil,
	// flat.c is an immutable SharedFlatView snapshot of aliasSrc taken at
	// mutation version aliasVer and must not be written until materialized.
	// Because thread clocks grow monotonically, re-absorbing the SAME
	// source is a pure alias refresh (the old snapshot is a lower bound of
	// the new one), so the hot flush patterns — release copying the
	// releasing thread's clock, end events re-joining the ending clock into
	// the accumulators it already dominates — are O(1) instead of O(width).
	aliasSrc *treeclock.Clock
	aliasVer uint64

	// owner is the owning thread for thread clocks, -1 for auxiliary
	// accumulators (only thread clocks take part in demotion/promotion).
	owner int32
	// pol, when non-nil, is the Auto engine's shared width observer: flat
	// thread clocks stay flat while the observed thread width is at or
	// below the policy threshold and promote to trees once it crosses.
	pol *autoPolicy
	// stats, when non-nil, is the owning engine's shared representation-
	// transition accounting (kept separate from pol: plain hybrid thread
	// clocks have no policy but still demote and re-promote).
	stats *repStats
	// quiet counts consecutive flat-side joins that changed nothing; it is
	// the hysteresis signal that a demoted thread clock's churn phase has
	// passed and the tree representation would win again.
	quiet uint16
	// demotions counts how many times this clock demoted tree→flat. Each
	// demotion doubles the quiet streak required before the next
	// re-promotion, so phase-flapping workloads settle on flat instead of
	// thrashing between representations.
	demotions uint8
}

// autoPolicy is the shared observed-thread-width state behind the Auto
// engine: the engine's thread-clock constructor bumps width once per
// thread that actually appears, and every flat thread clock consults it
// at transaction begins to decide whether tree clocks have started to pay.
type autoPolicy struct {
	width     int
	threshold int
}

// demoteToFlat converts the tree side into a private flat clock. The
// abandoned tree is left intact: snapshots of it held by auxiliary aliases
// stay valid (it will never mutate again), and the flat side starts from a
// private copy with the mutation counter strictly above the tree's, so any
// engine epoch slot recorded against the tree conservatively misses.
func (h *hybridClock) demoteToFlat() {
	m, nz := h.tree.SharedFlatView()
	h.flat = flatClock{
		c:   append(vc.Clock(nil), m...),
		nz:  nz,
		mut: h.tree.Ver() + 1,
	}
	h.tree = nil
	h.quiet = 0
	if h.demotions < ^uint8(0) {
		h.demotions++
	}
	if h.stats != nil {
		h.stats.demotions++
	}
}

// promoteToTree converts the flat side back into a tree clock (star
// layout, unattributable leaves; see treeclock.PromoteFromFlat). The new
// tree's mutation counter is seated strictly above the flat side's, so
// epoch slots recorded against the flat representation conservatively
// miss, mirroring demoteToFlat in the opposite direction.
func (h *hybridClock) promoteToTree() {
	tree := treeclock.New()
	tree.PromoteFromFlat(int(h.owner), h.flat.c, h.flat.mut+1)
	h.tree = tree
	h.flat = flatClock{}
	h.aliasSrc = nil
	h.quiet = 0
}

// repromoteQuietNeed is the consecutive-quiet-join streak a demoted thread
// clock must see before re-promoting: 16 after the first demotion, doubling
// with each further demotion (hysteresis against representation thrash).
func repromoteQuietNeed(demotions uint8) uint16 {
	if demotions == 0 {
		return 0
	}
	if demotions > 7 {
		demotions = 7
	}
	return 16 << (demotions - 1)
}

// maybePromote decides, at a transaction begin, whether a flat thread
// clock should (re-)promote to the tree representation:
//
//   - Auto engines keep thread clocks flat while the observed width is at
//     or below the policy threshold (flat wins at small widths);
//   - a clock that started flat under Auto (never demoted) promotes as
//     soon as the width crosses the threshold;
//   - a demoted clock additionally needs its quiet streak (joins that
//     stopped changing anything — the churn phase has passed).
func (h *hybridClock) maybePromote() {
	if h.pol != nil && h.pol.width <= h.pol.threshold {
		return
	}
	if h.demotions == 0 && h.pol == nil {
		return // plain hybrid thread clocks start as trees; nothing to do
	}
	if h.quiet < repromoteQuietNeed(h.demotions) {
		return
	}
	if h.stats != nil {
		if h.demotions == 0 {
			h.stats.widthPromotions++ // Auto width cutover, never demoted
		} else {
			h.stats.repromotions++
		}
	}
	h.promoteToTree()
}

func newHybridThreadClock() *hybridClock { return &hybridClock{tree: treeclock.New(), owner: -1} }
func newHybridAuxClock() *hybridClock    { return &hybridClock{owner: -1} }

// materializeFlat gives the flat side its own private copy of an aliased
// snapshot; every flat-side mutation that is not a whole-clock (re)alias
// calls it first.
func (h *hybridClock) materializeFlat() {
	if h.aliasSrc == nil {
		return
	}
	h.flat.c = append(vc.Clock(nil), h.flat.c...)
	h.aliasSrc = nil
}

// aliasTree points the flat side at src's shared snapshot (assignment
// semantics). The previous content, aliased or owned, is released.
func (h *hybridClock) aliasTree(src *treeclock.Clock) {
	h.flat.c, h.flat.nz = src.SharedFlatView()
	h.aliasSrc = src
	h.aliasVer = src.Ver()
	h.flat.mut++
}

func (h *hybridClock) InitUnit(t int) {
	h.owner = int32(t)
	if h.tree != nil {
		h.tree.InitUnit(t)
		return
	}
	h.flat.c = nil // drop a potential alias; InitUnit reallocates
	h.aliasSrc = nil
	h.flat.InitUnit(t)
}

func (h *hybridClock) At(t int) vc.Time {
	if h.tree != nil {
		return h.tree.At(t)
	}
	return h.flat.At(t)
}

func (h *hybridClock) Inc(t int) {
	if h.tree == nil && h.owner >= 0 {
		// Transaction begins are the representation decision point: cheap,
		// regular, and never on an alias-handout path.
		h.maybePromote()
	}
	if h.tree != nil {
		h.tree.Inc(t)
		return
	}
	h.materializeFlat()
	h.flat.Inc(t)
}

func (h *hybridClock) Leq(o *hybridClock) bool {
	if h.tree != nil {
		if o.tree != nil {
			return h.tree.Leq(o.tree)
		}
		return h.tree.LeqFlat(o.flat.c)
	}
	if o.tree != nil {
		return o.tree.DominatesFlat(h.flat.c)
	}
	return h.flat.Leq(&o.flat)
}

func (h *hybridClock) Join(o *hybridClock) {
	if h.tree == nil && h.owner >= 0 {
		// Flat thread clock: feed the hysteresis signal. A join that leaves
		// the flat side untouched (no mutation-counter movement) extends
		// the quiet streak; any content change resets it.
		before := h.flat.mut
		h.joinFlatTarget(o)
		if h.flat.mut == before {
			if h.quiet < ^uint16(0) {
				h.quiet++
			}
		} else {
			h.quiet = 0
		}
		return
	}
	if h.tree != nil {
		if o.tree != nil {
			h.tree.Join(o.tree)
		} else if o.aliasSrc == h.tree {
			// o is a snapshot of this very clock at an earlier version;
			// monotone growth makes the join a no-op (the R_x-absorb path
			// on thread-private variables).
		} else if h.tree.JoinFlat(o.flat.c) {
			// One heavily churning absorb (the join raced past most of the
			// tree) is the chain-workload signature: the tree structure
			// gains nothing there, so demote to flat. Tree becomes nil and
			// every operation dispatches to the flat side, as for
			// auxiliaries; thread-sharded workloads never churn and keep
			// their trees. Demotion holds until the hysteresis quiet streak
			// says the churn phase has passed (maybePromote).
			h.demoteToFlat()
		}
		return
	}
	h.joinFlatTarget(o)
}

// joinFlatTarget is Join for a flat-side target (auxiliary accumulators
// and demoted or Auto-flat thread clocks).
func (h *hybridClock) joinFlatTarget(o *hybridClock) {
	if o.tree != nil {
		if h.aliasSrc == o.tree {
			// Same monotone source: the join result is the source's current
			// content — refresh the alias (no-op when it didn't mutate).
			if h.aliasVer != o.tree.Ver() {
				h.aliasTree(o.tree)
			}
			return
		}
		if h.flat.nz == 0 {
			// ⊥ target: the join result is exactly the source.
			h.aliasTree(o.tree)
			return
		}
		if o.tree.DominatesFlat(h.flat.c) {
			// Dominated target: the join result is exactly the source, so
			// re-alias instead of materializing and merging. This is the
			// common shape of end-event flushes — the ending transaction
			// absorbed R_x at its write event, so its final clock dominates
			// the accumulator it flushes into.
			h.aliasTree(o.tree)
			return
		}
		h.materializeFlat()
		var grew int
		var changed bool
		h.flat.c, grew, changed = o.tree.AbsorbIntoFlat(h.flat.c)
		h.flat.nz += grew
		if changed {
			h.flat.mut++
		}
		return
	}
	h.materializeFlat()
	h.flat.Join(&o.flat)
}

func (h *hybridClock) JoinZeroingInto(dst *vc.Sparse, skip int) {
	if h.tree != nil {
		h.tree.JoinZeroingInto(dst, skip)
		return
	}
	h.flat.JoinZeroingInto(dst, skip)
}

func (h *hybridClock) CopyFrom(o *hybridClock) {
	if h.tree != nil {
		if o.tree == nil {
			panic("core: hybridClock tree ← flat assignment has no engine call site")
		}
		h.tree.CopyFrom(o.tree)
		return
	}
	if o.tree != nil {
		if h.aliasSrc == o.tree && h.aliasVer == o.tree.Ver() {
			return // already this exact content
		}
		h.aliasTree(o.tree)
		return
	}
	if h.aliasSrc != nil {
		h.flat.c = nil // drop the alias; CopyFrom reuses dst storage
		h.aliasSrc = nil
	}
	h.flat.CopyFrom(&o.flat)
}

func (h *hybridClock) MonotoneCopyFrom(o *hybridClock) {
	if h.tree != nil && o.tree != nil {
		h.tree.MonotoneCopyFrom(o.tree)
		return
	}
	h.CopyFrom(o)
}

func (h *hybridClock) Ver() uint64 {
	if h.tree != nil {
		return h.tree.Ver()
	}
	return h.flat.Ver()
}

func (h *hybridClock) HasEntryOtherThan(t int) bool {
	if h.tree != nil {
		return h.tree.HasEntryOtherThan(t)
	}
	return h.flat.HasEntryOtherThan(t)
}

func (h *hybridClock) Flat() vc.Clock {
	if h.tree != nil {
		return h.tree.Flat()
	}
	return h.flat.Flat()
}
