package core

// Differential coverage for the PR 7 scenario-zoo trace shapes
// (producer-consumer, barrier phases, lock convoy, quota-thrash): every
// clock representation of the Optimized engine must agree bit-for-bit on
// the workload generators' streams — clean and with every injected
// violation — and the Basic reference must agree on the verdict with a
// detection point no earlier than the optimized engines'. The same
// shapes' deterministic testutil builders run through the identical
// comparison, so both the rng-driven and the builder paths are pinned.

import (
	"fmt"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

var shapePatterns = []workload.Pattern{
	workload.PatternProducerConsumer, workload.PatternBarrier,
	workload.PatternConvoy, workload.PatternThrash,
}

// assertBasicAgreement runs the Basic reference against the flat engine:
// same verdict, and laziness never reports later than Basic.
func assertBasicAgreement(t *testing.T, ctx string, src func() trace.Source) {
	t.Helper()
	vBasic, _ := Run(NewBasic(), src())
	vOpt, _ := Run(NewOptimized(), src())
	if (vBasic != nil) != (vOpt != nil) {
		t.Fatalf("%s: verdict divergence: basic violation=%v optimized violation=%v",
			ctx, vBasic != nil, vOpt != nil)
	}
	if vBasic != nil && vOpt.Index > vBasic.Index {
		t.Fatalf("%s: optimized detected later than basic: %d > %d", ctx, vOpt.Index, vBasic.Index)
	}
}

func TestShapePatternAgreementAcrossEngines(t *testing.T) {
	for _, p := range shapePatterns {
		for _, inj := range []workload.Violation{
			workload.ViolationNone, workload.ViolationCross,
			workload.ViolationDelayed, workload.ViolationLock,
		} {
			p, inj := p, inj
			t.Run(fmt.Sprintf("%s/%s", p, inj), func(t *testing.T) {
				cfg := workload.Config{
					Name: fmt.Sprintf("%s-%s", p, inj), Threads: 6, Vars: 64,
					Locks: 4, Events: 1_200, OpsPerTxn: 3, Pattern: p,
					Inject: inj, InjectAt: 0.7, Seed: 20260808,
				}
				tr := trace.Collect(workload.New(cfg))
				src := func() trace.Source { return tr.Cursor() }
				assertRepAgreement(t, cfg.Name, src)
				assertBasicAgreement(t, cfg.Name, src)
			})
		}
	}
}

func TestShapeBuilderAgreementAcrossEngines(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"producer-consumer", testutil.ProducerConsumerTrace(testutil.ProducerConsumerOpts{
			Producers: 3, Consumers: 3, Rounds: 120, Slots: 6,
		})},
		{"barrier-phases", testutil.BarrierPhasesTrace(testutil.BarrierOpts{
			Threads: 7, Phases: 24, OpsPerTxn: 3,
		})},
		{"lock-convoy", testutil.LockConvoyTrace(testutil.LockConvoyOpts{
			Threads: 7, Rounds: 160, Nested: true,
		})},
		{"quota-thrash", testutil.QuotaThrashTrace(testutil.QuotaThrashOpts{
			Threads: 6, Bursts: 60, TxnsPerBurst: 4,
		})},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src := func() trace.Source { return tc.tr.Cursor() }
			assertRepAgreement(t, tc.name, src)
			assertBasicAgreement(t, tc.name, src)
			if v, _ := Run(NewBasic(), tc.tr.Cursor()); v != nil {
				t.Fatalf("builder shape must be serializable, got %v", v)
			}
		})
	}
}
