package core

import (
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

type optThread struct {
	c     vc.Clock
	cb    vc.Clock
	depth int
	init  bool
	ran   bool
	// updR / updW are the paper's UpdateSetʳ_t / UpdateSetʷ_t: the variables
	// whose read/write clocks must be touched when this thread's active
	// transaction ends. Keys are variable IDs.
	updR map[int32]struct{}
	updW map[int32]struct{}
}

type optVar struct {
	w     vc.Clock
	lastW int32
	// staleW is the paper's Staleʷ_x = ⊤: the last write's timestamp has not
	// been written to w because the writing transaction is still running;
	// readers consult the writer's live clock instead.
	staleW bool
	rx     vc.Clock // R_x
	hrx    vc.Clock // ȒR_x
	// staleR is the paper's Staleʳ_x: threads whose reads of x (inside still
	// running transactions) have not been flushed into rx/hrx.
	staleR []int32
}

// Optimized is Algorithm 3 (Appendix C.2): AeroDrome with lazy clock
// updates, per-thread update sets, and garbage collection of transactions
// with no incoming edges. This is the engine the benchmark harness uses; it
// matches the paper's complexity bound of Theorem 4.
//
// Laziness makes detection points earlier-or-equal than Basic's, never
// later: while an accessing transaction is still running, readers and
// writers consult its live clock, which dominates the access event's clock,
// and every component of a live clock still witnesses a real ⋖Txn path, so
// any check that fires corresponds to a genuine cycle (the differential
// tests assert verdict equality with Basic and Index(Optimized) ≤
// Index(Basic)).
//
// Deviations from the printed pseudocode, each justified in the package
// comment and enforced by tests:
//
//   - hasIncomingEdge uses the sticky foreign-component test C_t[0/t] ≠ ⊥
//     (printed: begin-vs-end clock comparison, which misses program-order
//     incoming edges from retained predecessors; TestGCChainCounterexample).
//   - accesses outside any transaction (unary transactions) take the eager
//     Algorithm 2 path: a unary transaction completes immediately, so its
//     thread's live clock must not be consulted later.
//   - update-set membership is also refreshed when rx/W grow at end-event
//     flushes, so end-time conditions match Algorithm 1's, which evaluates
//     them against the current clock values rather than access-time values.
type Optimized struct {
	threads []optThread
	locks   []basicLock
	vars    []optVar
	n       int64
	viol    *Violation
	// endsProcessed / endsCollected count end events that took the full
	// propagation path vs. the garbage-collection fast path (ablation
	// observability).
	endsProcessed int64
	endsCollected int64
}

// NewOptimized returns a fresh Algorithm 3 engine.
func NewOptimized() *Optimized { return &Optimized{} }

// Name implements Engine.
func (b *Optimized) Name() string { return AlgoOptimized.String() }

// Processed implements Engine.
func (b *Optimized) Processed() int64 { return b.n }

// Violation implements Engine.
func (b *Optimized) Violation() *Violation { return b.viol }

// EndStats reports how many outermost end events took the full propagation
// path vs. the GC fast path.
func (b *Optimized) EndStats() (full, collected int64) {
	return b.endsProcessed, b.endsCollected
}

func (b *Optimized) ensureThread(t int) *optThread {
	for len(b.threads) <= t {
		b.threads = append(b.threads, optThread{})
	}
	ts := &b.threads[t]
	if !ts.init {
		ts.c = vc.Unit(t)
		ts.init = true
		ts.updR = map[int32]struct{}{}
		ts.updW = map[int32]struct{}{}
	}
	return ts
}

func (b *Optimized) ensureLock(l int) *basicLock {
	for len(b.locks) <= l {
		b.locks = append(b.locks, basicLock{lastRel: nilThread})
	}
	return &b.locks[l]
}

func (b *Optimized) ensureVar(x int) *optVar {
	for len(b.vars) <= x {
		b.vars = append(b.vars, optVar{lastW: nilThread})
	}
	return &b.vars[x]
}

func (b *Optimized) checkAndGet(clk vc.Clock, t int, e trace.Event, active trace.ThreadID, check CheckKind) bool {
	ts := &b.threads[t]
	if ts.depth > 0 && ts.cb.Leq(clk) {
		b.viol = &Violation{
			Index: b.n, Event: e, ActiveThread: active,
			Check: check, Algorithm: b.Name(),
		}
		return true
	}
	ts.c = ts.c.Join(clk)
	return false
}

// writeClockFor returns the clock readers and writers must consult for the
// last write to v: the writer's live clock while its transaction is still
// running (Staleʷ = ⊤), otherwise the flushed W_x.
func (b *Optimized) writeClockFor(v *optVar) vc.Clock {
	if v.staleW && v.lastW >= 0 {
		return b.threads[v.lastW].c
	}
	return v.w
}

// coverRead records x in the update set of every thread whose active
// transaction's begin is dominated by clk (the paper's UpdateSetʳ loop).
// Under the local-time invariant, C⊲_u ⊑ clk ⟺ C⊲_u(u) ≤ clk(u).
func (b *Optimized) coverRead(x int32, clk vc.Clock) {
	for u := range b.threads {
		us := &b.threads[u]
		if us.depth > 0 && us.cb.At(u) <= clk.At(u) {
			us.updR[x] = struct{}{}
		}
	}
}

// coverWrite is coverRead for UpdateSetʷ.
func (b *Optimized) coverWrite(x int32, clk vc.Clock) {
	for u := range b.threads {
		us := &b.threads[u]
		if us.depth > 0 && us.cb.At(u) <= clk.At(u) {
			us.updW[x] = struct{}{}
		}
	}
}

// Process implements Engine.
func (b *Optimized) Process(e trace.Event) *Violation {
	if b.viol != nil {
		return b.viol
	}
	t := int(e.Thread)
	ts := b.ensureThread(t)

	switch e.Kind {
	case trace.Begin:
		if ts.depth == 0 {
			ts.c = ts.c.Inc(t)
			ts.cb = ts.c.CopyInto(ts.cb)
		}
		ts.depth++

	case trace.End:
		ts.depth--
		if ts.depth == 0 {
			b.handleEnd(t, e)
		}

	case trace.Read:
		x := e.Target
		v := b.ensureVar(int(x))
		if v.lastW != int32(t) {
			if b.checkAndGet(b.writeClockFor(v), t, e, e.Thread, CheckRead) {
				break
			}
		}
		ct := b.threads[t].c
		if ts.depth > 0 {
			v.addStaleReader(int32(t))
		} else {
			// Unary read: flush eagerly; the unary transaction is complete,
			// so the live clock must not be consulted later.
			v.rx = v.rx.Join(ct)
			v.hrx = v.hrx.JoinZeroing(ct, t)
		}
		b.coverRead(x, ct)

	case trace.Write:
		x := e.Target
		v := b.ensureVar(int(x))
		if v.lastW != int32(t) {
			if b.checkAndGet(b.writeClockFor(v), t, e, e.Thread, CheckWriteWrite) {
				break
			}
		}
		// Flush stale readers with their live clocks; record any newly
		// covered begins so end-time flushes stay exact.
		for _, u := range v.staleR {
			uc := b.threads[u].c
			v.rx = v.rx.Join(uc)
			v.hrx = v.hrx.JoinZeroing(uc, int(u))
			b.coverRead(x, uc)
		}
		v.staleR = v.staleR[:0]
		// The ȒR check: ∃u≠t with C⊲_t ⊑ R_{u,x}, via the begin clock's own
		// component (see the package comment).
		if ts.depth > 0 && ts.cb.At(t) <= v.hrx.At(t) {
			b.viol = &Violation{
				Index: b.n, Event: e, ActiveThread: e.Thread,
				Check: CheckWriteRead, Algorithm: b.Name(),
			}
			break
		}
		ts.c = ts.c.Join(v.rx)
		if ts.depth > 0 {
			v.staleW = true // lazy: readers consult C_t while the txn runs
		} else {
			v.w = ts.c.CopyInto(v.w) // unary write: eager
			v.staleW = false
		}
		v.lastW = int32(t)
		b.coverWrite(x, ts.c)

	case trace.Acquire:
		l := b.ensureLock(int(e.Target))
		if l.lastRel != int32(t) {
			if b.checkAndGet(l.l, t, e, e.Thread, CheckAcquire) {
				break
			}
		}

	case trace.Release:
		l := b.ensureLock(int(e.Target))
		l.l = ts.c.CopyInto(l.l)
		l.lastRel = int32(t)

	case trace.Fork:
		us := b.ensureThread(int(e.Target))
		us.c = us.c.Join(b.threads[t].c)

	case trace.Join:
		us := b.ensureThread(int(e.Target))
		// See Basic: never-ran threads contribute no ≤CHB edges.
		if us.ran {
			if b.checkAndGet(us.c, t, e, e.Thread, CheckJoin) {
				break
			}
		}
	}
	// Re-index: the fork/join cases may have grown b.threads, invalidating
	// the ts pointer captured above.
	b.threads[t].ran = true
	b.n++
	if b.viol != nil {
		return b.viol
	}
	return nil
}

// hasIncomingEdge reports whether the completing transaction of t can be
// part of a cycle: true iff C_t carries any foreign component (sticky test;
// see the package comment for why this replaces the printed begin-vs-end
// comparison). Forked threads inherit the parent's components, so the
// printed "parent transaction alive" disjunct is subsumed.
func (b *Optimized) hasIncomingEdge(t int) bool {
	for u, v := range b.threads[t].c {
		if u != t && v != 0 {
			return true
		}
	}
	return false
}

// handleEnd implements Algorithm 3's end(t) with the full-propagation and
// garbage-collection branches.
func (b *Optimized) handleEnd(t int, e trace.Event) {
	ts := &b.threads[t]
	ct, cbt := ts.c, ts.cb

	if b.hasIncomingEdge(t) {
		b.endsProcessed++
		// Thread checks (the component test C⊲_t(t) ≤ C_u(t) is the
		// invariant form of C⊲_t ⊑ C_u).
		own := cbt.At(t)
		for u := range b.threads {
			if u == t || !b.threads[u].init {
				continue
			}
			us := &b.threads[u]
			if us.c.At(t) >= own {
				if us.depth > 0 && us.cb.Leq(ct) {
					b.viol = &Violation{
						Index: b.n, Event: e, ActiveThread: trace.ThreadID(u),
						Check: CheckEnd, Algorithm: b.Name(),
					}
					return
				}
				us.c = us.c.Join(ct)
			}
		}
		for i := range b.locks {
			l := &b.locks[i]
			if l.l.At(t) >= own {
				l.l = l.l.Join(ct)
			}
		}
		for x := range ts.updW {
			v := &b.vars[x]
			if !v.staleW || v.lastW == int32(t) {
				v.w = v.w.Join(ct)
				b.coverWrite(x, ct)
			}
			if v.lastW == int32(t) {
				v.staleW = false
			}
		}
		clear(ts.updW)
		for x := range ts.updR {
			v := &b.vars[x]
			v.rx = v.rx.Join(ct)
			v.hrx = v.hrx.JoinZeroing(ct, t)
			v.removeStaleReader(int32(t))
			b.coverRead(x, ct)
		}
		clear(ts.updR)
		return
	}

	// Garbage collection: the transaction has no incoming edges and can
	// never participate in a cycle; drop its lazy state instead of
	// propagating it (the paper's else-branch).
	b.endsCollected++
	for x := range ts.updR {
		b.vars[x].removeStaleReader(int32(t))
	}
	clear(ts.updR)
	for x := range ts.updW {
		v := &b.vars[x]
		if v.lastW == int32(t) {
			v.staleW = false
			v.lastW = nilThread
		}
	}
	clear(ts.updW)
	for i := range b.locks {
		if b.locks[i].lastRel == int32(t) {
			b.locks[i].lastRel = nilThread
		}
	}
}

func (v *optVar) addStaleReader(t int32) {
	for _, u := range v.staleR {
		if u == t {
			return
		}
	}
	v.staleR = append(v.staleR, t)
}

func (v *optVar) removeStaleReader(t int32) {
	for i, u := range v.staleR {
		if u == t {
			v.staleR[i] = v.staleR[len(v.staleR)-1]
			v.staleR = v.staleR[:len(v.staleR)-1]
			return
		}
	}
}
