package core

import (
	"aerodrome/internal/treeclock"
	"aerodrome/internal/vc"
)

// The Algorithm 3 engine comes in two instantiations over the clock
// representation layer (see clockRep):
//
//   - Optimized — flat vector clocks, monomorphized source (the
//     specialization of OptimizedOn generated into optimized_flat.go);
//     the default engine and the one the paper's Theorem 4 bound is
//     stated for.
//   - OptimizedTree — *treeclock.Clock, the generic instantiation;
//     joins/copies touch only the entries that actually change.
//   - OptimizedHybrid — *hybridClock: tree clocks for the per-thread
//     clocks, flat clocks for the auxiliary accumulators (see hybrid.go).
//
// The differential suites pin all instantiations (and the generic flat
// instantiation used for meta-testing) to identical verdicts, violation
// indices and GC decisions.

// OptimizedTree is the Algorithm 3 engine on tree clocks.
type OptimizedTree = OptimizedOn[*treeclock.Clock]

// NewOptimized returns a fresh Algorithm 3 engine on flat vector clocks.
func NewOptimized() *Optimized {
	return &Optimized{newClock: newFlatClock, name: AlgoOptimized.String()}
}

// NewOptimizedTree returns a fresh Algorithm 3 engine on tree clocks.
func NewOptimizedTree() *OptimizedTree {
	return &OptimizedTree{newClock: treeclock.New, name: AlgoOptimizedTree.String()}
}

// NewOptimizedHybrid returns a fresh Algorithm 3 engine on the hybrid
// representation: tree thread clocks, flat auxiliary clocks. Like the flat
// default it is a source-level specialization of the generic engine
// (optimized_hybrid.go, kept in sync by TestHybridSpecializationInSync).
func NewOptimizedHybrid() *OptimizedHybrid {
	st := &repStats{}
	return &OptimizedHybrid{
		newClock: func() *hybridClock {
			h := newHybridThreadClock()
			h.stats = st
			return h
		},
		newAux:   newHybridAuxClock,
		name:     AlgoOptimizedHybrid.String(),
		repStats: st,
	}
}

// AutoWidthThreshold is the observed-thread-width cutover of the Auto
// engine: thread clocks constructed while at most this many threads have
// appeared start on the flat representation (whose constants win at small
// widths — see the ROADMAP perf trajectory), later ones start as trees,
// and the earlier flat clocks promote themselves once the width crosses
// (hybridClock.maybePromote).
//
// Swept 8–32 over sharded/chain/phase workloads at widths 12 and 48
// (BenchmarkAutoWidthThreshold, ROADMAP PR 4): 8–24 plateau within this
// machine's noise on sharded and chain; 32 loses ~30% on chain-t48 (the
// late promotions churn against already-entangled clocks) and ~40% on
// phase-t12. 16 sits on every plateau and is kept; guarded by
// TestAutoWidthThresholdPinned, semantically invisible by
// TestAutoWidthThresholdSemanticInvariance.
const AutoWidthThreshold = 16

// NewOptimizedAuto returns a fresh Algorithm 3 engine on the
// width-adaptive representation: structurally an OptimizedHybrid whose
// thread clocks pick flat vs tree by the observed thread width, so small
// traces pay flat's constants and wide ones get the hybrid's tree wins.
// The representation choice is semantically invisible (the differential
// suites pin it to the other engines' verdicts and indices).
func NewOptimizedAuto() *OptimizedHybrid {
	return newOptimizedAutoWidth(AutoWidthThreshold)
}

// newOptimizedAutoWidth is NewOptimizedAuto with an explicit width
// threshold (tests exercise the cutover with small widths).
func newOptimizedAutoWidth(threshold int) *OptimizedHybrid {
	pol := &autoPolicy{threshold: threshold}
	st := &repStats{}
	return &OptimizedHybrid{
		newClock: func() *hybridClock {
			pol.width++
			if pol.width > pol.threshold {
				h := newHybridThreadClock()
				h.pol = pol
				h.stats = st
				return h
			}
			return &hybridClock{owner: -1, pol: pol, stats: st}
		},
		newAux:   newHybridAuxClock,
		name:     AlgoOptimizedAuto.String(),
		repStats: st,
	}
}

// newOptimizedGenericHybrid instantiates the generic engine on the hybrid
// representation (specialization meta-tests; cf. newOptimizedGenericFlat).
func newOptimizedGenericHybrid() *OptimizedOn[*hybridClock] {
	return &OptimizedOn[*hybridClock]{
		newClock: newHybridThreadClock,
		newAux:   newHybridAuxClock,
		name:     AlgoOptimizedHybrid.String(),
	}
}

// newOptimizedGenericFlat instantiates the generic engine on flat clocks.
// It exists for the specialization meta-tests: the concrete Optimized and
// this instantiation must be behaviorally identical.
func newOptimizedGenericFlat() *OptimizedOn[*flatClock] {
	return &OptimizedOn[*flatClock]{newClock: newFlatClock, name: AlgoOptimized.String()}
}

// accessSlot is the epoch of a completed read-flush or write by `thread`:
// the O(width) parts of the handler may be skipped while every listed
// version still matches.
type accessSlot struct {
	thread   int32
	wasInTxn bool    // writes only: staleW semantics differ inside a txn
	ctVer    uint64  // the accessing thread's clock version
	rxVer    uint64  // writes only: R_x version
	wVer     uint64  // writes only: W_x version
	cbVer    uint64  // writes only: the begin clock behind the ȒR check
	hrxAtT   vc.Time // writes only: the ȒR component the check reads
}
