package core

import (
	"aerodrome/internal/treeclock"
	"aerodrome/internal/vc"
)

// clockRep is the clock-representation layer behind the Optimized engine:
// the small set of vector-time operations Algorithm 3 needs, implemented
// by the flat vc.Clock adapter (*flatClock), by *treeclock.Clock, and by
// the mixed *hybridClock (tree thread clocks, flat auxiliaries). C is
// always a pointer type, so clock identity is pointer identity — the
// epoch fast paths key on (identity, Ver) pairs.
//
// The ȒR_x accumulators are deliberately NOT behind this interface: they
// are updated only through zeroing joins (outside the tree clock transfer
// discipline) and read only through single components, so every
// representation keeps them in the shared sparse encoding (vc.Sparse,
// thread→time pairs) and exposes JoinZeroingInto to feed them.
type clockRep[C comparable] interface {
	comparable
	// InitUnit resets the clock to ⊥[1/t] and marks thread t as its owner.
	InitUnit(t int)
	// At returns component t (0 when absent).
	At(t int) vc.Time
	// Inc increments component t (own component of a thread clock).
	Inc(t int)
	// Leq reports whether this clock ⊑ o.
	Leq(o C) bool
	// Join sets this clock to its join with o.
	Join(o C)
	// JoinZeroingInto joins this clock's components into the sparse ȒR
	// accumulator dst, ignoring component skip.
	JoinZeroingInto(dst *vc.Sparse, skip int)
	// CopyFrom overwrites this clock with o (deep assignment).
	CopyFrom(o C)
	// MonotoneCopyFrom overwrites this clock with o under the caller's
	// guarantee that this clock ⊑ o (begin clocks chasing thread clocks);
	// representations may use it as a change-only fast path.
	MonotoneCopyFrom(o C)
	// Ver is a mutation counter: it changes whenever the represented
	// vector may have changed, never otherwise-observably. (identity, Ver)
	// pairs are the epochs of the already-dominated fast paths.
	Ver() uint64
	// HasEntryOtherThan reports whether any component other than t is
	// nonzero (the sticky foreign-component test behind transaction GC).
	HasEntryOtherThan(t int) bool
	// Flat snapshots the represented vector (white-box accessors, tests).
	Flat() vc.Clock
}

// flatClock adapts vc.Clock to clockRep. Alongside the raw slice it
// maintains the nonzero-entry count (O(1) HasEntryOtherThan) and the
// mutation counter for the epoch fast paths; the vector operations
// themselves are the flat O(width) loops of internal/vc.
type flatClock struct {
	c   vc.Clock
	nz  int
	mut uint64
}

func newFlatClock() *flatClock { return &flatClock{} }

func (f *flatClock) InitUnit(t int) {
	f.c = vc.Unit(t)
	f.nz = 1
	f.mut++
}

func (f *flatClock) At(t int) vc.Time { return f.c.At(t) }

func (f *flatClock) Inc(t int) {
	f.c = f.c.Inc(t)
	if f.c[t] == 1 {
		f.nz++
	}
	f.mut++
}

func (f *flatClock) Leq(o *flatClock) bool { return f.c.Leq(o.c) }

func (f *flatClock) Join(o *flatClock) {
	if len(o.c) > len(f.c) {
		f.c = f.c.Grow(len(o.c))
	}
	changed := false
	for i, v := range o.c {
		if v > f.c[i] {
			if f.c[i] == 0 {
				f.nz++
			}
			f.c[i] = v
			changed = true
		}
	}
	if changed {
		f.mut++
	}
}

func (f *flatClock) JoinZeroingInto(dst *vc.Sparse, skip int) {
	dst.JoinZeroing(f.c, skip)
}

func (f *flatClock) CopyFrom(o *flatClock) {
	f.c = o.c.CopyInto(f.c)
	f.nz = o.nz
	f.mut++
}

func (f *flatClock) MonotoneCopyFrom(o *flatClock) { f.CopyFrom(o) }

func (f *flatClock) Ver() uint64 { return f.mut }

func (f *flatClock) HasEntryOtherThan(t int) bool {
	return f.nz >= 2 || (f.nz == 1 && f.c.At(t) == 0)
}

func (f *flatClock) Flat() vc.Clock { return f.c.Copy() }

// Interface conformance (treeclock.Clock implements clockRep natively):
// clockRep embeds comparable, so conformance is checked by instantiating a
// generic function instead of a plain interface assertion.
func assertClockRep[C clockRep[C]]() {}

var (
	_ = assertClockRep[*flatClock]
	_ = assertClockRep[*treeclock.Clock]
	_ = assertClockRep[*hybridClock]
)
