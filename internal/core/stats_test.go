package core

// White-box tests for the engine introspection counters (EngineStats):
// the rates must track the representation dynamics the other white-box
// suites pin, and stay coherent (hits+misses cover every guarded check,
// ends split exactly into full/collected).

import (
	"fmt"
	"testing"

	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
	"aerodrome/internal/workload"
)

func TestStatsEpochAndEndCounters(t *testing.T) {
	cfg := workload.Config{
		Name: "stats-sharded", Threads: 8, Vars: 256, Locks: 8,
		Events: 20000, OpsPerTxn: 4, Pattern: workload.PatternSharded,
		TxnFraction: 0.5, Inject: workload.ViolationNone, Seed: 7,
	}
	for _, eng := range []Engine{NewOptimized(), NewOptimizedTree(), NewOptimizedHybrid(), NewOptimizedAuto()} {
		v, n := Run(eng, workload.New(cfg))
		if v != nil {
			t.Fatalf("%s: unexpected violation %v", eng.Name(), v)
		}
		s := eng.(StatsReporter).Stats()
		if s.EpochHits == 0 {
			t.Errorf("%s: no epoch fast-path hits over %d events", eng.Name(), n)
		}
		if s.EpochMisses == 0 {
			t.Errorf("%s: no epoch misses — every first absorb is a miss", eng.Name())
		}
		if rate := s.EpochHitRate(); rate <= 0 || rate >= 1 {
			t.Errorf("%s: hit rate %v outside (0,1)", eng.Name(), rate)
		}
		full, collected := eng.(interface{ EndStats() (int64, int64) }).EndStats()
		if s.EndsFull != full || s.EndsCollected != collected {
			t.Errorf("%s: Stats ends (%d,%d) disagree with EndStats (%d,%d)",
				eng.Name(), s.EndsFull, s.EndsCollected, full, collected)
		}
	}
}

func TestStatsSparsePromotions(t *testing.T) {
	// ȒR_x accumulates the *other-thread* components of each reader's
	// clock (the join zeroes the reader's own), so promotion needs readers
	// with wide clocks, not merely many readers. A lock convoy entangles
	// them: each acquire inherits every previous holder's component, so
	// late readers flush more components than the threshold into ȒR_x.
	readers := vc.PromoteThreshold + 8
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, readers)
	for i := range threads {
		threads[i] = b.Thread(fmt.Sprintf("t%d", i))
	}
	x := b.Var("x")
	l := b.Lock("l")
	for i := 1; i < readers; i++ {
		b.Fork(threads[0], threads[i])
	}
	b.Begin(threads[0])
	b.Write(threads[0], x)
	b.End(threads[0])
	for _, th := range threads {
		b.Acquire(th, l)
		b.Begin(th)
		b.Read(th, x)
		b.End(th)
		b.Release(th, l)
	}
	for i := 1; i < readers; i++ {
		b.Join(threads[0], threads[i])
	}
	eng := NewOptimized()
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if s := eng.Stats(); s.SparsePromotions == 0 {
		t.Fatalf("no sparse promotion counted with %d convoyed readers", readers)
	}
}

func TestStatsRepresentationTransitions(t *testing.T) {
	// The phase-shift fixture demotes hybrid thread clocks in the chain
	// burst and re-promotes them in the sharded steady state.
	eng := NewOptimizedHybrid()
	if v, _ := Run(eng, phaseShift().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	s := eng.Stats()
	if s.TreeDemotions == 0 {
		t.Fatalf("phase shift demoted nothing: %+v", s)
	}
	if s.TreeRepromotions == 0 {
		t.Fatalf("steady state re-promoted nothing: %+v", s)
	}
	if s.WidthPromotions != 0 {
		t.Fatalf("plain hybrid counted Auto width promotions: %+v", s)
	}

	// Auto with a small threshold crosses the width cutover and counts it.
	auto := newOptimizedAutoWidth(4)
	if v, _ := Run(auto, phaseShift().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if s := auto.Stats(); s.WidthPromotions == 0 {
		t.Fatalf("auto(threshold=4) on 8 threads counted no width promotions: %+v", s)
	}

	// Uniform engines report zero representation transitions.
	flat := NewOptimized()
	if v, _ := Run(flat, phaseShift().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if s := flat.Stats(); s.TreeDemotions != 0 || s.TreeRepromotions != 0 || s.WidthPromotions != 0 {
		t.Fatalf("flat engine reports representation transitions: %+v", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := EngineStats{EpochHits: 1, EpochMisses: 2, EndsFull: 3, EndsCollected: 4,
		SparsePromotions: 5, TreeDemotions: 6, TreeRepromotions: 7, WidthPromotions: 8}
	var sum EngineStats
	sum.Add(a)
	sum.Add(a)
	if sum.EpochHits != 2 || sum.EpochMisses != 4 || sum.EndsFull != 6 ||
		sum.EndsCollected != 8 || sum.SparsePromotions != 10 ||
		sum.TreeDemotions != 12 || sum.TreeRepromotions != 14 || sum.WidthPromotions != 16 {
		t.Fatalf("Add drifted: %+v", sum)
	}
}
