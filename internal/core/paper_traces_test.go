package core

import (
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

// stepTo processes events [from, to) of tr on eng, failing the test if a
// violation occurs before `to`.
func stepTo(t *testing.T, eng Engine, tr *trace.Trace, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if v := eng.Process(tr.Events[i]); v != nil {
			t.Fatalf("unexpected violation at event %d (e%d): %v", i, i+1, v)
		}
	}
}

func wantClock(t *testing.T, what string, got, want vc.Clock) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// TestFigure5 replays AeroDrome (Algorithm 1) on trace ρ2 and asserts the
// exact clock values the paper shows in Figure 5, then the violation at e6.
func TestFigure5(t *testing.T) {
	tr := testutil.Rho2()
	b := NewBasic()

	stepTo(t, b, tr, 0, 1) // e1 = ⟨t1,⊲⟩
	wantClock(t, "Ct1 after e1", b.ThreadClock(0), vc.Clock{2, 0})
	stepTo(t, b, tr, 1, 2) // e2 = ⟨t2,⊲⟩
	wantClock(t, "Ct2 after e2", b.ThreadClock(1), vc.Clock{0, 2})
	// C⊲ clocks hold from here to the end of the execution.
	wantClock(t, "C⊲t1", b.BeginClock(0), vc.Clock{2, 0})
	wantClock(t, "C⊲t2", b.BeginClock(1), vc.Clock{0, 2})

	stepTo(t, b, tr, 2, 3) // e3 = ⟨t1,w(x)⟩
	wantClock(t, "Wx after e3", b.WriteClock(0), vc.Clock{2, 0})
	stepTo(t, b, tr, 3, 4) // e4 = ⟨t2,r(x)⟩
	wantClock(t, "Ct2 after e4", b.ThreadClock(1), vc.Clock{2, 2})
	stepTo(t, b, tr, 4, 5) // e5 = ⟨t2,w(y)⟩
	wantClock(t, "Wy after e5", b.WriteClock(1), vc.Clock{2, 2})

	// e6 = ⟨t1,r(y)⟩: conflict serializability violation (C⊲t1 ⊑ Wy).
	v := b.Process(tr.Events[5])
	if v == nil {
		t.Fatalf("expected violation at e6")
	}
	if v.Index != 5 || v.Check != CheckRead || v.ActiveThread != 0 {
		t.Fatalf("violation = %+v, want index 5, read check, thread t1", v)
	}
	// The engine latches.
	if v2 := b.Process(tr.Events[6]); v2 != v {
		t.Fatalf("engine must latch the violation")
	}
	if b.Violation() != v {
		t.Fatalf("Violation() must return the latched violation")
	}
}

// TestFigure6 replays Algorithm 1 on ρ3: no check fires at the reads, and
// the violation is detected while processing the end event e7.
func TestFigure6(t *testing.T) {
	tr := testutil.Rho3()
	b := NewBasic()

	stepTo(t, b, tr, 0, 4) // e1..e4
	wantClock(t, "Ct1 after e4", b.ThreadClock(0), vc.Clock{2, 0})
	wantClock(t, "Ct2 after e4", b.ThreadClock(1), vc.Clock{0, 2})
	wantClock(t, "Wx after e4", b.WriteClock(0), vc.Clock{2, 0})
	wantClock(t, "Wy after e4", b.WriteClock(1), vc.Clock{0, 2})

	stepTo(t, b, tr, 4, 5) // e5 = ⟨t1,r(y)⟩ — no violation (C⊲t1 ⋢ Wy)
	wantClock(t, "Ct1 after e5", b.ThreadClock(0), vc.Clock{2, 2})
	stepTo(t, b, tr, 5, 6) // e6 = ⟨t2,r(x)⟩ — no violation (C⊲t2 ⋢ Wx)
	wantClock(t, "Ct2 after e6", b.ThreadClock(1), vc.Clock{2, 2})

	// e7 = ⟨t1,⊳⟩: C⊲t1 ⊑ Ct2 holds, so the algorithm checks C⊲t2 ⊑ Ct1
	// and declares the violation.
	v := b.Process(tr.Events[6])
	if v == nil {
		t.Fatalf("expected violation at e7")
	}
	if v.Index != 6 || v.Check != CheckEnd {
		t.Fatalf("violation = %+v, want index 6, end check", v)
	}
	if v.ActiveThread != 1 {
		t.Fatalf("the active transaction closing the cycle is t2's, got t%d", v.ActiveThread)
	}
}

// TestFigure7 replays Algorithm 1 on ρ4 and asserts the clock evolution of
// Figure 7, including the Wy update at the end event e6, and the violation
// at e11.
func TestFigure7(t *testing.T) {
	tr := testutil.Rho4()
	b := NewBasic()

	stepTo(t, b, tr, 0, 1) // e1
	wantClock(t, "Ct1 after e1", b.ThreadClock(0), vc.Clock{2, 0, 0})
	stepTo(t, b, tr, 1, 2) // e2 = w(x)
	wantClock(t, "Wx after e2", b.WriteClock(0), vc.Clock{2, 0, 0})
	stepTo(t, b, tr, 2, 3) // e3
	wantClock(t, "Ct2 after e3", b.ThreadClock(1), vc.Clock{0, 2, 0})
	stepTo(t, b, tr, 3, 4) // e4 = w(y)
	wantClock(t, "Wy after e4", b.WriteClock(1), vc.Clock{0, 2, 0})
	stepTo(t, b, tr, 4, 5) // e5 = ⟨t2,r(x)⟩
	wantClock(t, "Ct2 after e5", b.ThreadClock(1), vc.Clock{2, 2, 0})

	// e6 = ⟨t2,⊳⟩: no thread clock updates (neither t1 nor t3 is ordered
	// after C⊲t2), but Wy absorbs Ct2 because C⊲t2 ⊑ Wy.
	stepTo(t, b, tr, 5, 6)
	wantClock(t, "Ct1 after e6", b.ThreadClock(0), vc.Clock{2, 0, 0})
	wantClock(t, "Wy after e6", b.WriteClock(1), vc.Clock{2, 2, 0})
	wantClock(t, "Wx after e6 (unchanged)", b.WriteClock(0), vc.Clock{2, 0, 0})

	stepTo(t, b, tr, 6, 7) // e7
	wantClock(t, "Ct3 after e7", b.ThreadClock(2), vc.Clock{0, 0, 2})
	stepTo(t, b, tr, 7, 8) // e8 = ⟨t3,r(y)⟩
	wantClock(t, "Ct3 after e8", b.ThreadClock(2), vc.Clock{2, 2, 2})
	stepTo(t, b, tr, 8, 9) // e9 = w(z)
	wantClock(t, "Wz after e9", b.WriteClock(2), vc.Clock{2, 2, 2})
	stepTo(t, b, tr, 9, 10) // e10 = ⟨t3,⊳⟩

	// e11 = ⟨t1,r(z)⟩: C⊲t1 ⊑ Wz — violation.
	v := b.Process(tr.Events[10])
	if v == nil {
		t.Fatalf("expected violation at e11")
	}
	if v.Index != 10 || v.Check != CheckRead || v.ActiveThread != 0 {
		t.Fatalf("violation = %+v, want index 10, read check, t1", v)
	}
}

// TestRho1Serializable replays the serializable trace ρ1 end to end on all
// three engines: no violation may be reported.
func TestRho1Serializable(t *testing.T) {
	for _, algo := range []Algorithm{AlgoBasic, AlgoReadOpt, AlgoOptimized} {
		t.Run(algo.String(), func(t *testing.T) {
			eng := New(algo)
			v, n := Run(eng, testutil.Rho1().Cursor())
			if v != nil {
				t.Fatalf("ρ1 is serializable, got %v", v)
			}
			if n != 10 {
				t.Fatalf("processed %d events, want 10", n)
			}
		})
	}
}

// TestPaperVerdictsAllEngines checks the verdicts (and, for Basic, the
// exact violation indices the paper walks through) across engines.
func TestPaperVerdictsAllEngines(t *testing.T) {
	cases := []struct {
		name       string
		tr         *trace.Trace
		violating  bool
		basicIndex int64
	}{
		{"rho1", testutil.Rho1(), false, -1},
		{"rho2", testutil.Rho2(), true, 5},
		{"rho3", testutil.Rho3(), true, 6},
		{"rho4", testutil.Rho4(), true, 10},
	}
	for _, c := range cases {
		for _, algo := range []Algorithm{AlgoBasic, AlgoReadOpt, AlgoOptimized} {
			eng := New(algo)
			v, _ := Run(eng, c.tr.Cursor())
			if (v != nil) != c.violating {
				t.Errorf("%s on %s: violation=%v, want %v", algo, c.name, v != nil, c.violating)
				continue
			}
			if v == nil {
				continue
			}
			if algo != AlgoOptimized && v.Index != c.basicIndex {
				t.Errorf("%s on %s: index %d, want %d", algo, c.name, v.Index, c.basicIndex)
			}
			if algo == AlgoOptimized && v.Index > c.basicIndex {
				t.Errorf("optimized on %s: index %d, must be ≤ %d", c.name, v.Index, c.basicIndex)
			}
		}
	}
}

// TestOptimizedEarlierOnRho3 pins down the documented semantics difference:
// the lazy engine consults the live clock of the writer's running
// transaction and already fires at e6 of ρ3, one event before Algorithm 1.
func TestOptimizedEarlierOnRho3(t *testing.T) {
	eng := NewOptimized()
	v, _ := Run(eng, testutil.Rho3().Cursor())
	if v == nil {
		t.Fatalf("expected violation")
	}
	if v.Index != 5 || v.Check != CheckRead {
		t.Fatalf("optimized should fire at e6 via the read check, got %+v", v)
	}
}

// TestTruncatedRho3NoReport: on the prefix σ6 of ρ3 (both transactions
// still active) AeroDrome reports nothing — Theorem 3 only promises
// detection when all but at most one witness transaction is complete. The
// graph-based oracle does consider this prefix non-serializable; the
// difference is pinned down here and discussed in DESIGN.md.
func TestTruncatedRho3NoReport(t *testing.T) {
	full := testutil.Rho3()
	prefix := &trace.Trace{}
	for _, e := range full.Events[:6] {
		prefix.Append(e)
	}
	for _, algo := range []Algorithm{AlgoBasic, AlgoReadOpt} {
		eng := New(algo)
		if v, _ := Run(eng, prefix.Cursor()); v != nil {
			t.Fatalf("%v must stay silent on σ6 (two active transactions): %v", algo, v)
		}
	}
}
