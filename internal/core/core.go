// Package core implements AeroDrome, the single-pass linear-time vector
// clock algorithm for detecting violations of conflict serializability from
// "Atomicity Checking in Linear Time using Vector Clocks" (ASPLOS 2020).
//
// Three engines are provided, in increasing order of optimization:
//
//   - Basic: Algorithm 1 verbatim — one vector clock C_t and one begin clock
//     C⊲_t per thread, one clock L_ℓ per lock, and per variable a write
//     clock W_x plus one read clock R_{t,x} per thread. O(|Thr|·V) clocks.
//   - ReadOpt: Algorithm 2 (Appendix C.1) — the per-thread read clocks are
//     replaced by two clocks per variable, R_x = ⊔_u R_{u,x} and
//     ȒR_x = ⊔_u R_{u,x}[0/u]. O(V) clocks.
//   - Optimized: Algorithm 3 (Appendix C.2) — lazy write/read clock updates
//     (consulting the accessing thread's live clock while its transaction is
//     still running), per-thread update sets so that end events only touch
//     the variables that need it, and garbage collection of transactions
//     with no incoming edges.
//
// # Deviations from the printed pseudocode (paper errata)
//
// The differential test suite (differential_test.go) holds Basic to the
// reference oracle of internal/serial and the other engines to Basic. Three
// places where the printed pseudocode is followed literally would break
// that agreement; each is documented at the implementation site:
//
//  1. Algorithm 2's read handler prints "R_x := C_t" and "ȒR_x := C_t[0/t]".
//     Overwriting discards concurrent readers (reads do not absorb other
//     reads), losing conflicts that Algorithm 1 tracks; both assignments
//     must be joins, as Algorithm 3's own flush code confirms.
//  2. The checks against ȒR_x compare the begin clock's local component
//     (C⊲_t(t) ≤ ȒR_x(t)), not full vector ⊑. With a single reader u, ȒR_x
//     zeroes u's component, so full ⊑ spuriously fails whenever C⊲_t has a
//     nonzero u component even though C⊲_t ⊑ R_{u,x} holds. The component
//     comparison is exactly the ∃u≠t quantifier of Algorithm 1 under the
//     paper's local-time invariant (Appendix C.1).
//  3. Algorithm 3's hasIncomingEdge compares the begin and end clocks of
//     the ending transaction, which misses incoming program-order edges
//     from an earlier retained transaction of the same thread; a transaction
//     chain can route a cycle through a "clean" middle transaction (see
//     TestGCChainCounterexample). We use the sticky foreign-component test
//     C_t[0/t] ≠ ⊥ instead — the vector-clock analog of Velodrome's
//     cascading in-degree rule.
//
// Engines consume events one at a time (trace.Source-shaped streams) and
// never retain per-event state, so traces far larger than memory can be
// checked online, as in the paper.
package core

import (
	"fmt"

	"aerodrome/internal/trace"
)

// CheckKind identifies which of the algorithm's checks declared a violation.
type CheckKind uint8

const (
	// CheckRead fired at a r(x) event against the write clock W_x.
	CheckRead CheckKind = iota
	// CheckWriteWrite fired at a w(x) event against the write clock W_x.
	CheckWriteWrite
	// CheckWriteRead fired at a w(x) event against a read clock.
	CheckWriteRead
	// CheckAcquire fired at an acq(ℓ) event against the lock clock L_ℓ.
	CheckAcquire
	// CheckJoin fired at a join(u) event against C_u.
	CheckJoin
	// CheckEnd fired while processing an end event ⟨t,⊳⟩: another thread's
	// active transaction both depends on and is depended on by the ending
	// transaction.
	CheckEnd
)

var checkNames = map[CheckKind]string{
	CheckRead:       "read-after-write",
	CheckWriteWrite: "write-after-write",
	CheckWriteRead:  "write-after-read",
	CheckAcquire:    "acquire-after-release",
	CheckJoin:       "join",
	CheckEnd:        "transaction-end",
}

// String names the check for reports.
func (k CheckKind) String() string {
	if s, ok := checkNames[k]; ok {
		return s
	}
	return fmt.Sprintf("check(%d)", uint8(k))
}

// Violation reports a conflict-serializability violation. It implements
// error so engines can be used through error-returning facades.
type Violation struct {
	// Index is the 0-based position of the event at which the violation was
	// declared (the paper's algorithm exits at this event).
	Index int64
	// Event is the event being processed when the violation was declared.
	Event trace.Event
	// ActiveThread is the thread whose active transaction the check fired
	// for: the event's own thread for access checks, or the other thread
	// with an active transaction for CheckEnd.
	ActiveThread trace.ThreadID
	// Check identifies the rule that fired.
	Check CheckKind
	// Algorithm names the engine that found the violation.
	Algorithm string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: conflict serializability violation at event %d (%s): %s check against thread t%d's active transaction",
		v.Algorithm, v.Index, v.Event, v.Check, v.ActiveThread)
}

// Engine is a streaming conflict-serializability checker. Implementations
// are not safe for concurrent use; shard or lock externally.
type Engine interface {
	// Name identifies the engine ("aerodrome-basic", "aerodrome-readopt",
	// "aerodrome-optimized", and — in internal/velodrome — "velodrome").
	Name() string
	// Process consumes the next trace event and reports a violation if the
	// algorithm declares one at this event. After the first violation the
	// engine latches: subsequent calls return the same violation without
	// processing (the paper's algorithm exits at the first violation).
	Process(e trace.Event) *Violation
	// Processed returns the number of events consumed (excluding calls after
	// a latched violation).
	Processed() int64
	// Violation returns the latched violation, if any.
	Violation() *Violation
}

// Run drains src through eng, stopping at the first violation. It returns
// the violation (nil if the trace is accepted) and the number of events
// consumed.
func Run(eng Engine, src trace.Source) (*Violation, int64) {
	for {
		e, ok := src.Next()
		if !ok {
			return eng.Violation(), eng.Processed()
		}
		if v := eng.Process(e); v != nil {
			return v, eng.Processed()
		}
	}
}

// Algorithm selects an AeroDrome engine variant.
type Algorithm int

const (
	// AlgoBasic is Algorithm 1.
	AlgoBasic Algorithm = iota
	// AlgoReadOpt is Algorithm 2 (read-clock reduction).
	AlgoReadOpt
	// AlgoOptimized is Algorithm 3 (lazy updates, update sets, GC) on flat
	// vector clocks.
	AlgoOptimized
	// AlgoOptimizedTree is Algorithm 3 on tree clocks (internal/treeclock):
	// joins and copies touch only the subtrees that actually change.
	AlgoOptimizedTree
	// AlgoOptimizedHybrid is Algorithm 3 on the hybrid representation: tree
	// clocks for the per-thread clocks (where the publish-absorb discipline
	// makes subtree-skipping pay), flat clocks for the auxiliary
	// accumulators (whose flush patterns defeat tree pruning).
	AlgoOptimizedHybrid
	// AlgoOptimizedAuto is Algorithm 3 with the representation picked by
	// observed thread width: thread clocks start flat (flat wins below
	// T≈16) and promote to trees once the width crosses the threshold,
	// re-evaluated as threads appear; demoted clocks re-promote with
	// hysteresis. Auxiliary accumulators are flat, as in the hybrid.
	AlgoOptimizedAuto
)

// String names the variant.
func (a Algorithm) String() string {
	switch a {
	case AlgoBasic:
		return "aerodrome-basic"
	case AlgoReadOpt:
		return "aerodrome-readopt"
	case AlgoOptimized:
		return "aerodrome-optimized"
	case AlgoOptimizedTree:
		return "aerodrome-treeclock"
	case AlgoOptimizedHybrid:
		return "aerodrome-hybrid"
	case AlgoOptimizedAuto:
		return "aerodrome-auto"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// New returns a fresh engine for the selected variant.
func New(a Algorithm) Engine {
	switch a {
	case AlgoBasic:
		return NewBasic()
	case AlgoReadOpt:
		return NewReadOpt()
	case AlgoOptimized:
		return NewOptimized()
	case AlgoOptimizedTree:
		return NewOptimizedTree()
	case AlgoOptimizedHybrid:
		return NewOptimizedHybrid()
	case AlgoOptimizedAuto:
		return NewOptimizedAuto()
	}
	panic("core: unknown algorithm")
}
