package core

import (
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

// nilThread is the NIL value of lastRelThr / lastWThr scalar variables.
const nilThread = int32(-1)

type basicThread struct {
	c     vc.Clock // C_t: timestamp of t's last event
	cb    vc.Clock // C⊲_t: timestamp of t's last (outermost) begin
	depth int      // transaction nesting depth
	init  bool     // thread has been observed (C_t = ⊥[1/t] applied)
	ran   bool     // thread has performed at least one event of its own
}

type basicLock struct {
	l       vc.Clock // L_ℓ: timestamp of the last rel(ℓ)
	lastRel int32    // lastRelThr_ℓ
}

type basicVar struct {
	w     vc.Clock   // W_x: timestamp of the last w(x)
	lastW int32      // lastWThr_x
	r     []vc.Clock // R_{t,x}: timestamp of each thread's last r(x); nil = ⊥
}

// Basic is Algorithm 1 of the paper, implemented verbatim: the unoptimized
// AeroDrome analysis with one read clock per (thread, variable) pair. It is
// the semantic reference for the optimized engines and the engine whose
// clock evolution matches Figures 5–7 exactly.
type Basic struct {
	threads []basicThread
	locks   []basicLock
	vars    []basicVar
	n       int64
	viol    *Violation
}

// NewBasic returns a fresh Algorithm 1 engine.
func NewBasic() *Basic { return &Basic{} }

// Name implements Engine.
func (b *Basic) Name() string { return AlgoBasic.String() }

// Processed implements Engine.
func (b *Basic) Processed() int64 { return b.n }

// Violation implements Engine.
func (b *Basic) Violation() *Violation { return b.viol }

func (b *Basic) ensureThread(t int) *basicThread {
	for len(b.threads) <= t {
		b.threads = append(b.threads, basicThread{})
	}
	ts := &b.threads[t]
	if !ts.init {
		ts.c = vc.Unit(t) // C_t := ⊥[1/t]
		ts.init = true
	}
	return ts
}

func (b *Basic) ensureLock(l int) *basicLock {
	for len(b.locks) <= l {
		b.locks = append(b.locks, basicLock{lastRel: nilThread})
	}
	return &b.locks[l]
}

func (b *Basic) ensureVar(x int) *basicVar {
	for len(b.vars) <= x {
		b.vars = append(b.vars, basicVar{lastW: nilThread})
	}
	return &b.vars[x]
}

// checkAndGet implements the paper's procedure of the same name: declare a
// violation if C⊲_t ⊑ clk and t has an active transaction, else C_t ⊔= clk.
// It returns true when a violation was declared (and latched).
func (b *Basic) checkAndGet(clk vc.Clock, t int, e trace.Event, active trace.ThreadID, check CheckKind) bool {
	ts := &b.threads[t]
	if ts.depth > 0 && ts.cb.Leq(clk) {
		b.viol = &Violation{
			Index:        b.n,
			Event:        e,
			ActiveThread: active,
			Check:        check,
			Algorithm:    b.Name(),
		}
		return true
	}
	ts.c = ts.c.Join(clk)
	return false
}

// Process implements Engine, dispatching to the per-operation handlers of
// Algorithm 1.
func (b *Basic) Process(e trace.Event) *Violation {
	if b.viol != nil {
		return b.viol
	}
	t := int(e.Thread)
	ts := b.ensureThread(t)

	switch e.Kind {
	case trace.Begin:
		// Nested begins fold into the outermost transaction (§4.1.4).
		if ts.depth == 0 {
			ts.c = ts.c.Inc(t)           // C_t(t) := C_t(t) + 1
			ts.cb = ts.c.CopyInto(ts.cb) // C⊲_t := C_t
		}
		ts.depth++

	case trace.End:
		ts.depth--
		if ts.depth == 0 {
			b.handleEnd(t, e)
		}

	case trace.Read:
		v := b.ensureVar(int(e.Target))
		if v.lastW != int32(t) {
			if b.checkAndGet(v.w, t, e, e.Thread, CheckRead) {
				break
			}
		}
		for len(v.r) <= t {
			v.r = append(v.r, nil)
		}
		v.r[t] = b.threads[t].c.CopyInto(v.r[t]) // R_{t,x} := C_t

	case trace.Write:
		v := b.ensureVar(int(e.Target))
		if v.lastW != int32(t) {
			if b.checkAndGet(v.w, t, e, e.Thread, CheckWriteWrite) {
				break
			}
		}
		violated := false
		for u := range v.r {
			if u == t || v.r[u] == nil {
				continue
			}
			if b.checkAndGet(v.r[u], t, e, e.Thread, CheckWriteRead) {
				violated = true
				break
			}
		}
		if violated {
			break
		}
		v.w = b.threads[t].c.CopyInto(v.w) // W_x := C_t
		v.lastW = int32(t)

	case trace.Acquire:
		l := b.ensureLock(int(e.Target))
		if l.lastRel != int32(t) {
			if b.checkAndGet(l.l, t, e, e.Thread, CheckAcquire) {
				break
			}
		}

	case trace.Release:
		l := b.ensureLock(int(e.Target))
		l.l = ts.c.CopyInto(l.l) // L_ℓ := C_t
		l.lastRel = int32(t)

	case trace.Fork:
		u := int(e.Target)
		us := b.ensureThread(u)
		us.c = us.c.Join(b.threads[t].c) // C_u := C_u ⊔ C_t

	case trace.Join:
		u := int(e.Target)
		us := b.ensureThread(u)
		// A joined thread that never performed an event contributes no ≤CHB
		// edges: its clock is only the fork seed, not an event timestamp, so
		// consulting it would false-positive on fork+join of an idle thread
		// inside one transaction (the printed pseudocode implicitly assumes
		// every forked thread runs).
		if us.ran {
			if b.checkAndGet(us.c, t, e, e.Thread, CheckJoin) {
				break
			}
		}
	}
	// Re-index: the fork/join cases may have grown b.threads, invalidating
	// the ts pointer captured above.
	b.threads[t].ran = true
	b.n++
	if b.viol != nil {
		return b.viol
	}
	return nil
}

// handleEnd implements the end(t) procedure: propagate the completing
// transaction's timestamp to every thread, lock and variable clock that is
// ordered after the transaction's begin, checking other threads' active
// transactions on the way (lines 38–46 of Algorithm 1).
func (b *Basic) handleEnd(t int, e trace.Event) {
	ts := &b.threads[t]
	ct, cbt := ts.c, ts.cb

	for u := range b.threads {
		if u == t || !b.threads[u].init {
			continue
		}
		if cbt.Leq(b.threads[u].c) {
			if b.checkAndGet(ct, u, e, trace.ThreadID(u), CheckEnd) {
				return
			}
		}
	}
	for i := range b.locks {
		l := &b.locks[i]
		if cbt.Leq(l.l) {
			l.l = l.l.Join(ct)
		}
	}
	for i := range b.vars {
		v := &b.vars[i]
		if cbt.Leq(v.w) {
			v.w = v.w.Join(ct)
		}
		for u := range v.r {
			if v.r[u] != nil && cbt.Leq(v.r[u]) {
				v.r[u] = v.r[u].Join(ct)
			}
		}
	}
}

// --- white-box accessors (used by golden tests and the figures tool) --------

// ThreadClock returns a copy of C_t.
func (b *Basic) ThreadClock(t trace.ThreadID) vc.Clock {
	if int(t) >= len(b.threads) {
		return nil
	}
	return b.threads[t].c.Copy()
}

// BeginClock returns a copy of C⊲_t.
func (b *Basic) BeginClock(t trace.ThreadID) vc.Clock {
	if int(t) >= len(b.threads) {
		return nil
	}
	return b.threads[t].cb.Copy()
}

// WriteClock returns a copy of W_x.
func (b *Basic) WriteClock(x trace.VarID) vc.Clock {
	if int(x) >= len(b.vars) {
		return nil
	}
	return b.vars[x].w.Copy()
}

// ReadClock returns a copy of R_{t,x}.
func (b *Basic) ReadClock(t trace.ThreadID, x trace.VarID) vc.Clock {
	if int(x) >= len(b.vars) || int(t) >= len(b.vars[x].r) {
		return nil
	}
	return b.vars[x].r[t].Copy()
}

// LockClock returns a copy of L_ℓ.
func (b *Basic) LockClock(l trace.LockID) vc.Clock {
	if int(l) >= len(b.locks) {
		return nil
	}
	return b.locks[l].l.Copy()
}

// ActiveTxn reports whether thread t currently has an active (outermost)
// transaction.
func (b *Basic) ActiveTxn(t trace.ThreadID) bool {
	return int(t) < len(b.threads) && b.threads[t].depth > 0
}
