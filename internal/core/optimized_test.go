package core

import (
	"testing"

	"aerodrome/internal/trace"
)

// gcChainTrace is the counterexample showing why hasIncomingEdge must use
// the sticky foreign-component test rather than the printed begin-vs-end
// clock comparison. The cycle is
//
//	X → T1 (w(a) ≤ r(a)),  T1 → T2 (program order),
//	T2 → U (w(b) ≤ r(b)),  U → X (w(c) ≤ r(c)),
//
// where T2 absorbs nothing new *during* its own execution (its foreign
// knowledge arrived in T1), so the printed test would garbage-collect T2,
// drop the lazy W_b flush, and the checkers downstream would never learn
// that U is ordered after X's begin — missing the violation that Basic
// (and the oracle) report at X's r(c).
func gcChainTrace() *trace.Trace {
	b := trace.NewBuilder()
	x, t1, u := b.Thread("X"), b.Thread("t"), b.Thread("u")
	a, bb, c := b.Var("a"), b.Var("b"), b.Var("c")
	b.Begin(x).Write(x, a). // X's transaction stays open
				Begin(t1).Read(t1, a).End(t1).   // T1: absorbs X's begin
				Begin(t1).Write(t1, bb).End(t1). // T2: "clean" under the printed test
				Begin(u).Read(u, bb).Write(u, c).End(u).
				Read(x, c). // closes the cycle: must fire here
				End(x)
	return b.Build()
}

func TestGCChainCounterexample(t *testing.T) {
	tr := gcChainTrace()
	for _, algo := range []Algorithm{AlgoBasic, AlgoReadOpt, AlgoOptimized} {
		eng := New(algo)
		v, _ := Run(eng, tr.Cursor())
		if v == nil {
			t.Fatalf("%v: must report the chained-program-order cycle", algo)
		}
		// All engines detect at X's r(c) (event index 12).
		if v.Index != 12 || v.Check != CheckRead {
			t.Fatalf("%v: violation = %+v, want read check at index 12", algo, v)
		}
	}
}

func TestGCStatsPureChain(t *testing.T) {
	// Transactions that never absorb foreign components take the GC fast
	// path: thread-local work only.
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	for i := 0; i < 50; i++ {
		b.Begin(t1).Write(t1, x).Read(t1, x).End(t1)
	}
	eng := NewOptimized()
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	full, collected := eng.EndStats()
	if full != 0 || collected != 50 {
		t.Fatalf("EndStats = (%d,%d), want all 50 collected", full, collected)
	}
}

func TestGCStatsTaintedChain(t *testing.T) {
	// Cross-thread variable sharing taints the clocks: every later end runs
	// the full propagation path.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	for i := 0; i < 20; i++ {
		b.Begin(t1).Write(t1, x).End(t1)
		b.Begin(t2).Read(t2, x).Write(t2, x).End(t2)
	}
	eng := NewOptimized()
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	full, collected := eng.EndStats()
	// t1's first transaction is clean (nothing read); t2's transactions and
	// t1's later ones (which absorb t2's writes via W_x) are all tainted.
	if full < 35 {
		t.Fatalf("EndStats = (%d,%d): expected mostly full-path ends", full, collected)
	}
}

func TestLazyWriteConsultsLiveClock(t *testing.T) {
	// While the writer's transaction is running, a reader must order after
	// the writer's *current* knowledge (lazy W). Construct a case where the
	// lazy consult makes the ordering visible one event earlier than the
	// flushed write clock would: the trace is a genuine violation either
	// way, but the optimized engine fires at the read (e6), while Basic
	// needs the end event (e7). (This is ρ3; kept here as the white-box
	// companion of TestOptimizedEarlierOnRho3 with stats.)
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Begin(t2).
		Write(t1, x).Write(t2, y).
		Read(t1, y).Read(t2, x).
		End(t1).End(t2)
	eng := NewOptimized()
	v, _ := Run(eng, b.Build().Cursor())
	if v == nil || v.Index != 5 {
		t.Fatalf("lazy consult should fire at the read, got %+v", v)
	}
}

func TestUnaryWriteIsEager(t *testing.T) {
	// A unary write must flush eagerly: the unary transaction completes at
	// once, so a later read must consult the *write event's* clock, not the
	// writer thread's live clock (which may grow unrelatedly). If the
	// implementation incorrectly marked the write stale, the read at the
	// end would absorb k's component and the subsequent write by t1 would
	// spuriously fire.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y, k := b.Var("x"), b.Var("y"), b.Var("k")
	b.Begin(t1).Write(t1, x).End(t1). // history so clocks are nontrivial
						Write(t2, y).                   // unary write by t2
						Begin(t1).Write(t1, k).End(t1). // t1's k-transaction
						Read(t2, k).                    // t2 (outside txn) absorbs t1's k-cone
						Begin(t1).Read(t1, y).Write(t1, y).End(t1)
	runAllEngines(t, b.Build(), false, "unary eager write")
}

func runAllEngines(t *testing.T, tr *trace.Trace, want bool, ctx string) {
	t.Helper()
	for _, algo := range []Algorithm{AlgoBasic, AlgoReadOpt, AlgoOptimized} {
		eng := New(algo)
		v, _ := Run(eng, tr.Cursor())
		if (v != nil) != want {
			t.Errorf("%s: %v violation=%v want %v (%v)", ctx, algo, v != nil, want, v)
		}
	}
}

func TestChildlessForkJoinSerializable(t *testing.T) {
	// fork+join of a thread that never runs, inside one transaction: no
	// ≤CHB edges exist through the child, so this is serializable. The
	// printed join handler would false-positive here (see the `ran` guard).
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).Fork(t1, t2).Join(t1, t2).End(t1)
	runAllEngines(t, b.Build(), false, "childless fork-join")
}

func TestForkJoinWithChildEventViolates(t *testing.T) {
	// One child event is enough to close T → U (fork ≤ e) and U → T
	// (e ≤ join): fork+join of a *running* thread inside one transaction is
	// a genuine violation.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Write(t1, x).Fork(t1, t2).
		Read(t2, y). // the child's only event
		Join(t1, t2).End(t1)
	runAllEngines(t, b.Build(), true, "fork-join with child event")
}

func TestOptimizedStaleReaderSetDedup(t *testing.T) {
	// Repeated reads by the same thread must keep one stale entry, and the
	// eventual write must flush it exactly once (the lazy-read fast path the
	// paper motivates: long read runs cost no vector operations).
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Begin(t1)
	for i := 0; i < 100; i++ {
		b.Read(t1, x)
	}
	b.End(t1)
	b.Begin(t2).Write(t2, x).End(t2)
	eng := NewOptimized()
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestOptimizedLockEndPropagation(t *testing.T) {
	// A completing transaction must propagate into lock clocks it is
	// ordered before (end's lock loop): t2 acquires ℓ after t1's
	// transaction released it; t3's acquire after t1's end must then be
	// ordered after all of t1's transaction.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	l := b.Lock("l")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).Acquire(t1, l).Release(t1, l).End(t1).
		Acquire(t2, l).Release(t2, l).
		Begin(t2).Read(t2, x).Write(t2, x).End(t2)
	runAllEngines(t, b.Build(), false, "lock end propagation")
}
