package core

import (
	"strings"
	"testing"

	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

func TestCheckKindString(t *testing.T) {
	for k, want := range map[CheckKind]string{
		CheckRead:       "read-after-write",
		CheckWriteWrite: "write-after-write",
		CheckWriteRead:  "write-after-read",
		CheckAcquire:    "acquire-after-release",
		CheckJoin:       "join",
		CheckEnd:        "transaction-end",
	} {
		if k.String() != want {
			t.Errorf("CheckKind %d = %q, want %q", k, k, want)
		}
	}
	if !strings.Contains(CheckKind(99).String(), "99") {
		t.Errorf("unknown check kind should carry its number")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgoBasic.String() != "aerodrome-basic" ||
		AlgoReadOpt.String() != "aerodrome-readopt" ||
		AlgoOptimized.String() != "aerodrome-optimized" {
		t.Fatalf("algorithm names changed")
	}
	if !strings.Contains(Algorithm(9).String(), "9") {
		t.Fatalf("unknown algorithm name")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("New of unknown algorithm must panic")
		}
	}()
	New(Algorithm(9))
}

func TestViolationError(t *testing.T) {
	v := &Violation{
		Index: 7, Event: trace.Event{Thread: 2, Kind: trace.Read, Target: 3},
		ActiveThread: 2, Check: CheckRead, Algorithm: "aerodrome-basic",
	}
	msg := v.Error()
	for _, want := range []string{"event 7", "t2|r(x3)", "read-after-write", "aerodrome-basic"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func engines() []Engine {
	return []Engine{NewBasic(), NewReadOpt(), NewOptimized()}
}

func runAll(t *testing.T, tr *trace.Trace, wantViolation bool, context string) {
	t.Helper()
	for _, eng := range engines() {
		v, _ := Run(eng, tr.Cursor())
		if (v != nil) != wantViolation {
			t.Errorf("%s: %s: violation=%v, want %v (%v)", context, eng.Name(), v != nil, wantViolation, v)
		}
	}
}

func TestLockCycleViolation(t *testing.T) {
	// rel/acq ping-pong between two open transactions: T1→T2→T1.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	l := b.Lock("l")
	b.Begin(t1).Begin(t2).
		Acquire(t1, l).Release(t1, l).
		Acquire(t2, l).Release(t2, l).
		Acquire(t1, l).Release(t1, l).
		End(t1).End(t2)
	runAll(t, b.Build(), true, "lock cycle")
}

func TestLockReacquireSameThreadNoViolation(t *testing.T) {
	// A thread re-acquiring a lock it released itself must not self-trip
	// (the lastRelThr guard).
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	l := b.Lock("l")
	b.Begin(t1).
		Acquire(t1, l).Release(t1, l).
		Acquire(t1, l).Release(t1, l).
		End(t1)
	runAll(t, b.Build(), false, "same-thread reacquire")
}

func TestJoinViolation(t *testing.T) {
	// t1's transaction writes x, forks t2 which reads x, then joins t2
	// inside the same transaction: T_child → T1 (join) and T1 → T_child
	// (w(x) ≤ r(x)) — cycle, detected at the join event.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).Fork(t1, t2).
		Begin(t2).Read(t2, x).End(t2).
		Join(t1, t2).End(t1)
	tr := b.Build()
	runAll(t, tr, true, "join cycle")

	basic := NewBasic()
	v, _ := Run(basic, tr.Cursor())
	if v.Check != CheckJoin {
		t.Fatalf("expected join check, got %v", v.Check)
	}
}

func TestForkJoinPipelineSerializable(t *testing.T) {
	// Fork and join in separate transactions: a clean parent/child pipeline.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Write(t1, x).Fork(t1, t2).End(t1).
		Begin(t2).Read(t2, x).Write(t2, y).End(t2).
		Begin(t1).Join(t1, t2).Read(t1, y).End(t1)
	runAll(t, b.Build(), false, "fork-join pipeline")
}

func TestNestedTransactionsFold(t *testing.T) {
	// ρ2 with extra nested begin/end pairs: the verdict and the clocks must
	// be as if only the outermost blocks existed.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Begin(t1). // nested begin must not tick the clock again
				Begin(t2).
				Write(t1, x).
				End(t1). // inner end: transaction still active
				Read(t2, x).
				Write(t2, y).
				Read(t1, y). // violation here
				End(t1).End(t2)
	tr := b.Build()
	basic := NewBasic()
	v, _ := Run(basic, tr.Cursor())
	if v == nil {
		t.Fatalf("nested rho2 must still violate")
	}
	if v.Check != CheckRead {
		t.Fatalf("check = %v", v.Check)
	}
	// The begin clock must reflect a single tick.
	if got := basic.BeginClock(0); !got.Equal(vc.Clock{2, 0}) {
		t.Fatalf("C⊲t1 = %v, want ⟨2,0⟩ (nested begin must not tick)", got)
	}
	runAll(t, tr, true, "nested rho2")
}

func TestUnaryTransactionsNeverReport(t *testing.T) {
	// The ρ2 access pattern with no transactions at all: every event is a
	// unary transaction; pairwise conflicts order them without a cycle of
	// ≥2 transactions that AeroDrome should report.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Write(t1, x).Read(t2, x).Write(t2, y).Read(t1, y)
	runAll(t, b.Build(), false, "all unary")
}

func TestUnaryEventsInsideOthersCycle(t *testing.T) {
	// t1 has a transaction; t2 contributes two unary events whose
	// program-order chain closes the cycle T1 → U1 → U2 → T1.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Write(t1, x).Read(t2, x).Write(t2, y).Read(t1, y).End(t1)
	runAll(t, b.Build(), true, "unary chain cycle")
}

func TestWriteWriteConflictCycle(t *testing.T) {
	// Violation via w-w conflicts only.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Begin(t2).
		Write(t1, x).Write(t2, x). // T1 → T2
		Write(t2, y).Write(t1, y). // T2 → T1
		End(t1).End(t2)
	tr := b.Build()
	runAll(t, tr, true, "w-w cycle")
	basic := NewBasic()
	v, _ := Run(basic, tr.Cursor())
	if v.Check != CheckWriteWrite {
		t.Fatalf("check = %v, want write-after-write", v.Check)
	}
}

func TestWriteAfterReadCheck(t *testing.T) {
	// Violation where the closing check is the write-against-read-clocks
	// loop: t1's read of x absorbs t2's begin (via y), so t2's later write
	// of x closes the cycle T2 → T1 → T2 and trips C⊲t2 ⊑ R_{t1,x}.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Begin(t1).Begin(t2).
		Write(t2, y).Read(t1, y). // T2 → T1
		Read(t1, x).              // R_{t1,x} now carries C⊲t2
		Write(t2, x).             // T1 → T2 via r-w: cycle, violation
		End(t1).End(t2)
	tr := b.Build()
	basic := NewBasic()
	v, _ := Run(basic, tr.Cursor())
	if v == nil || v.Check != CheckWriteRead {
		t.Fatalf("expected write-after-read violation, got %+v", v)
	}
	runAll(t, tr, true, "r-w cycle")
}

func TestSameThreadWriteSkipsCheck(t *testing.T) {
	// lastWThr = t: consecutive accesses by the same thread never trip.
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).Read(t1, x).Write(t1, x).End(t1).
		Begin(t1).Write(t1, x).End(t1)
	runAll(t, b.Build(), false, "same-thread accesses")
}

func TestSerializablePipelineManyThreads(t *testing.T) {
	// 4-stage pipeline over items: stage i reads stage i-1's output.
	b := trace.NewBuilder()
	threads := []trace.ThreadID{b.Thread("s0"), b.Thread("s1"), b.Thread("s2"), b.Thread("s3")}
	const items = 5
	vars := make([][]trace.VarID, 4)
	for s := range vars {
		vars[s] = make([]trace.VarID, items)
		for i := range vars[s] {
			vars[s][i] = b.Var(trace.Event{}.String() + string(rune('a'+s)) + string(rune('0'+i)))
		}
	}
	for i := 0; i < items; i++ {
		for s := 0; s < 4; s++ {
			th := threads[s]
			b.Begin(th)
			if s > 0 {
				b.Read(th, vars[s-1][i])
			}
			b.Write(th, vars[s][i])
			b.End(th)
		}
	}
	runAll(t, b.Build(), false, "pipeline")
}

func TestRunCountsEvents(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).End(t1)
	eng := NewBasic()
	v, n := Run(eng, b.Build().Cursor())
	if v != nil || n != 3 || eng.Processed() != 3 {
		t.Fatalf("Run = (%v, %d)", v, n)
	}
}

func TestBasicAccessorsOutOfRange(t *testing.T) {
	b := NewBasic()
	if b.ThreadClock(5) != nil || b.BeginClock(5) != nil ||
		b.WriteClock(5) != nil || b.ReadClock(1, 5) != nil || b.LockClock(5) != nil {
		t.Fatalf("out-of-range accessors must return nil")
	}
	if b.ActiveTxn(3) {
		t.Fatalf("unknown thread cannot have an active transaction")
	}
}

func TestReadOptClockAccessors(t *testing.T) {
	tr := func() *trace.Trace {
		b := trace.NewBuilder()
		t1, t2 := b.Thread("t1"), b.Thread("t2")
		x := b.Var("x")
		b.Write(t1, x).Read(t1, x).Read(t2, x)
		return b.Build()
	}()
	eng := NewReadOpt()
	if v, _ := Run(eng, tr.Cursor()); v != nil {
		t.Fatalf("no violation expected: %v", v)
	}
	// R_x = join of both readers' clocks; ȒR_x zeroes each reader's own
	// component: t1 contributes ⟨0,0⟩ (its whole clock zeroed at 0 is ⟨0,0⟩
	// since it never saw t2), t2 contributes ⟨1,0⟩ (it joined W_x).
	rx := eng.ReadJoinClock(0)
	if !rx.Equal(vc.Clock{1, 1}) {
		t.Fatalf("R_x = %v, want ⟨1,1⟩", rx)
	}
	hrx := eng.CheckReadClock(0)
	if !hrx.Equal(vc.Clock{1, 0}) {
		t.Fatalf("ȒR_x = %v, want ⟨1,0⟩", hrx)
	}
	if eng.ReadJoinClock(9) != nil || eng.CheckReadClock(9) != nil {
		t.Fatalf("out-of-range accessors must return nil")
	}
}
