package core

// Engine introspection: counters for the internal rates the engines'
// optimizations stand on — epoch fast-path hits, sparse-accumulator
// promotions, hybrid representation transitions, GC'd transaction ends.
// The tuning work in ROADMAP items 1 and 5 needs these rates observable
// in production (/metrics), in the CLI (-stats) and on bench rows, not
// just derivable in a debugger.

// EngineStats is a snapshot of one engine's introspection counters.
// Engines are single-goroutine; snapshots are taken between events.
type EngineStats struct {
	// EpochHits / EpochMisses count checkAndGet invocations resolved by
	// the FastTrack-style epoch fast path vs. falling through to the full
	// O(width) Leq+Join.
	EpochHits   int64
	EpochMisses int64
	// EndsFull / EndsCollected count outermost end events that took the
	// full propagation path vs. the garbage-collection fast path.
	EndsFull      int64
	EndsCollected int64
	// SparsePromotions counts ȒR_x accumulators (vc.Sparse) that
	// outgrew the association list and promoted to dense clocks.
	SparsePromotions int64
	// TreeDemotions / TreeRepromotions count hybrid thread clocks
	// demoting tree→flat under join churn and re-promoting after the
	// hysteresis quiet streak; WidthPromotions counts Auto thread clocks
	// promoting flat→tree when the observed width crossed the threshold.
	// All three are zero for the uniform flat/tree engines.
	TreeDemotions    int64
	TreeRepromotions int64
	WidthPromotions  int64
}

// EpochHitRate returns EpochHits/(EpochHits+EpochMisses), or 0 with no
// guarded checks.
func (s EngineStats) EpochHitRate() float64 {
	total := s.EpochHits + s.EpochMisses
	if total == 0 {
		return 0
	}
	return float64(s.EpochHits) / float64(total)
}

// Add accumulates o into s (aggregation across engines or sessions).
func (s *EngineStats) Add(o EngineStats) {
	s.EpochHits += o.EpochHits
	s.EpochMisses += o.EpochMisses
	s.EndsFull += o.EndsFull
	s.EndsCollected += o.EndsCollected
	s.SparsePromotions += o.SparsePromotions
	s.TreeDemotions += o.TreeDemotions
	s.TreeRepromotions += o.TreeRepromotions
	s.WidthPromotions += o.WidthPromotions
}

// StatsReporter is implemented by engines that expose introspection
// counters (the Algorithm 3 family). Callers type-assert: Basic and
// ReadOpt have no fast paths to count.
type StatsReporter interface {
	Stats() EngineStats
}

// repStats is the hybrid-representation transition accounting, shared
// between an engine and every thread clock its constructor hands out
// (thread clocks outlive any single call site, so the counters cannot
// live on the engine struct alone).
type repStats struct {
	demotions       int64
	repromotions    int64
	widthPromotions int64
}
