package core

// Bench-backed sweep of vc.PromoteThreshold, the entry count past which
// the sparse ȒR_x accumulators promote themselves to dense clocks. The
// interesting regime is read-heavy traces whose variables are read by
// more threads than the threshold (ROADMAP PR 2 open item: 13–64 readers
// per variable pay dense promotion early at the old threshold of 12).
//
// Run the sweep with:
//
//	go test ./internal/core -run '^$' -bench SparsePromoteThreshold -benchtime 3x
//
// The winner is pinned in vc.PromoteThreshold (see its doc comment for
// the recorded numbers) and guarded by TestSparsePromoteThresholdPinned;
// TestSparsePromoteThresholdSemanticInvariance proves the knob cannot
// change verdicts, only constants.

import (
	"fmt"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
	"aerodrome/internal/workload"
)

// readHeavyTrace builds the sweep workload: `readers` threads all read a
// pool of shared variables inside transactions (every shared variable
// accumulates `readers` distinct ȒR entries), interleaved with private
// writes so the update sets stay busy.
func readHeavyTrace(readers, sharedVars, rounds int) *trace.Trace {
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, readers)
	for i := range threads {
		threads[i] = b.Thread(fmt.Sprintf("t%d", i))
	}
	shared := make([]trace.VarID, sharedVars)
	for i := range shared {
		shared[i] = b.Var(fmt.Sprintf("s%d", i))
	}
	priv := make([]trace.VarID, readers)
	for i := range priv {
		priv[i] = b.Var(fmt.Sprintf("p%d", i))
	}
	for i := 1; i < readers; i++ {
		b.Fork(threads[0], threads[i])
	}
	// Seed every shared variable with one write so reads conflict.
	b.Begin(threads[0])
	for _, x := range shared {
		b.Write(threads[0], x)
	}
	b.End(threads[0])
	for r := 0; r < rounds; r++ {
		for w := 0; w < readers; w++ {
			b.Begin(threads[w])
			b.Read(threads[w], shared[(r+w)%sharedVars])
			b.Read(threads[w], shared[(r+w+1)%sharedVars])
			b.Write(threads[w], priv[w])
			b.End(threads[w])
		}
	}
	for i := 1; i < readers; i++ {
		b.Join(threads[0], threads[i])
	}
	return b.Build()
}

func BenchmarkSparsePromoteThreshold(b *testing.B) {
	defer func(old int) { vc.PromoteThreshold = old }(vc.PromoteThreshold)
	for _, readers := range []int{8, 16, 48} {
		tr := readHeavyTrace(readers, 64, 4000/readers)
		for _, threshold := range []int{4, 8, 12, 16, 24, 32} {
			b.Run(fmt.Sprintf("readers=%d/threshold=%d", readers, threshold), func(b *testing.B) {
				vc.PromoteThreshold = threshold
				b.ReportMetric(float64(len(tr.Events)), "events")
				for i := 0; i < b.N; i++ {
					eng := NewOptimized()
					if v, _ := Run(eng, tr.Cursor()); v != nil {
						b.Fatalf("unexpected violation: %v", v)
					}
				}
			})
		}
	}
}

// TestSparsePromoteThresholdSemanticInvariance sweeps the threshold across
// its extremes and requires bit-identical outcomes from every engine on
// read-heavy, phase-shift and injected-violation traces: the knob may only
// move constants, never verdicts, indices or GC decisions.
func TestSparsePromoteThresholdSemanticInvariance(t *testing.T) {
	defer func(old int) { vc.PromoteThreshold = old }(vc.PromoteThreshold)
	traces := map[string]*trace.Trace{
		"read-heavy": readHeavyTrace(24, 32, 40),
		"phase": testutil.PhaseShiftTrace(testutil.PhaseShiftOpts{
			Threads: 8, BurstRounds: 4, SteadyRounds: 10,
		}),
	}
	for _, inj := range []workload.Violation{workload.ViolationCross, workload.ViolationDelayed} {
		cfg := workload.Config{
			Name: "sweep-" + string(inj), Threads: 16, Vars: 64, Locks: 4,
			Events: 4000, OpsPerTxn: 3, Pattern: workload.PatternChain,
			Inject: inj, InjectAt: 0.6, TxnFraction: 0.5, Seed: 33,
		}
		traces[cfg.Name] = trace.Collect(workload.New(cfg))
	}

	type outcome struct {
		violated bool
		index    int64
		check    CheckKind
		n        int64
	}
	for name, tr := range traces {
		var want outcome
		for i, threshold := range []int{1, 4, 12, 16, 32, 1 << 20} {
			vc.PromoteThreshold = threshold
			for _, rep := range allRepEngines() {
				v, n := Run(rep.eng, tr.Cursor())
				got := outcome{violated: v != nil, n: n}
				if v != nil {
					got.index, got.check = v.Index, v.Check
				}
				if i == 0 && rep.name == "flat" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: threshold %d engine %s: outcome %+v, want %+v",
						name, threshold, rep.name, got, want)
				}
			}
		}
	}
}

// TestSparsePromoteThresholdPinned guards the swept default: changing it
// requires re-running the sweep and updating vc.PromoteThreshold's doc.
func TestSparsePromoteThresholdPinned(t *testing.T) {
	if vc.PromoteThreshold != 16 {
		t.Fatalf("vc.PromoteThreshold = %d; the swept default is 16 — re-run "+
			"BenchmarkSparsePromoteThreshold and update the doc before changing it",
			vc.PromoteThreshold)
	}
}
