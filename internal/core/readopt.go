package core

import (
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

type roVar struct {
	w     vc.Clock  // W_x
	lastW int32     // lastWThr_x
	rx    vc.Clock  // R_x  = ⊔_u R_{u,x}
	hrx   vc.Sparse // ȒR_x = ⊔_u R_{u,x}[0/u] (sparse; see vc.Sparse)
}

// ReadOpt is Algorithm 2 (Appendix C.1): AeroDrome with the read-clock
// reduction. Instead of one read clock per (thread, variable) pair it keeps
// two clocks per variable:
//
//	R_x  = ⊔_u R_{u,x}        — used to update C_t at writes
//	ȒR_x = ⊔_u R_{u,x}[0/u]   — used to check for violations at writes
//
// Erratum note (see the package comment): the printed pseudocode assigns
// "R_x := C_t" at reads, but reads do not absorb concurrent reads, so the
// assignment must be a join ("R_x := R_x ⊔ C_t") to preserve Algorithm 1's
// semantics; similarly for ȒR_x. The check against ȒR_x compares the begin
// clock's own component, which under the paper's local-time invariant is
// exactly Algorithm 1's ∃u≠t. C⊲_t ⊑ R_{u,x} (full vector ⊑ against ȒR_x
// would spuriously fail when the sole qualifying reader's component was
// zeroed out). Both corrections are enforced by the differential tests,
// which require ReadOpt to agree with Basic on the verdict and the exact
// violation event for every generated trace.
type ReadOpt struct {
	threads []basicThread
	locks   []basicLock
	vars    []roVar
	n       int64
	viol    *Violation
}

// NewReadOpt returns a fresh Algorithm 2 engine.
func NewReadOpt() *ReadOpt { return &ReadOpt{} }

// Name implements Engine.
func (b *ReadOpt) Name() string { return AlgoReadOpt.String() }

// Processed implements Engine.
func (b *ReadOpt) Processed() int64 { return b.n }

// Violation implements Engine.
func (b *ReadOpt) Violation() *Violation { return b.viol }

func (b *ReadOpt) ensureThread(t int) *basicThread {
	for len(b.threads) <= t {
		b.threads = append(b.threads, basicThread{})
	}
	ts := &b.threads[t]
	if !ts.init {
		ts.c = vc.Unit(t)
		ts.init = true
	}
	return ts
}

func (b *ReadOpt) ensureLock(l int) *basicLock {
	for len(b.locks) <= l {
		b.locks = append(b.locks, basicLock{lastRel: nilThread})
	}
	return &b.locks[l]
}

func (b *ReadOpt) ensureVar(x int) *roVar {
	for len(b.vars) <= x {
		b.vars = append(b.vars, roVar{lastW: nilThread})
	}
	return &b.vars[x]
}

// checkAndGet checks C⊲_t ⊑ clk1 (violation if t has an active transaction)
// and otherwise joins C_t ⊔= clk2, following Algorithm 2's two-clock form.
func (b *ReadOpt) checkAndGet(clk1, clk2 vc.Clock, t int, e trace.Event, check CheckKind) bool {
	ts := &b.threads[t]
	if ts.depth > 0 && ts.cb.Leq(clk1) {
		b.viol = &Violation{
			Index: b.n, Event: e, ActiveThread: e.Thread,
			Check: check, Algorithm: b.Name(),
		}
		return true
	}
	ts.c = ts.c.Join(clk2)
	return false
}

// Process implements Engine.
func (b *ReadOpt) Process(e trace.Event) *Violation {
	if b.viol != nil {
		return b.viol
	}
	t := int(e.Thread)
	ts := b.ensureThread(t)

	switch e.Kind {
	case trace.Begin:
		if ts.depth == 0 {
			ts.c = ts.c.Inc(t)
			ts.cb = ts.c.CopyInto(ts.cb)
		}
		ts.depth++

	case trace.End:
		ts.depth--
		if ts.depth == 0 {
			b.handleEnd(t, e)
		}

	case trace.Read:
		v := b.ensureVar(int(e.Target))
		if v.lastW != int32(t) {
			if b.checkAndGet(v.w, v.w, t, e, CheckRead) {
				break
			}
		}
		ct := b.threads[t].c
		v.rx = v.rx.Join(ct)     // R_x ⊔= C_t (erratum: join, not assign)
		v.hrx.JoinZeroing(ct, t) // ȒR_x ⊔= C_t[0/t]

	case trace.Write:
		v := b.ensureVar(int(e.Target))
		if v.lastW != int32(t) {
			if b.checkAndGet(v.w, v.w, t, e, CheckWriteWrite) {
				break
			}
		}
		// Check against ȒR_x via the begin clock's own component (erratum
		// note above), then absorb R_x.
		if ts.depth > 0 && ts.cb.At(t) <= v.hrx.At(t) && !ts.cb.IsZero() {
			b.viol = &Violation{
				Index: b.n, Event: e, ActiveThread: e.Thread,
				Check: CheckWriteRead, Algorithm: b.Name(),
			}
			break
		}
		ts.c = ts.c.Join(v.rx)
		v.w = ts.c.CopyInto(v.w)
		v.lastW = int32(t)

	case trace.Acquire:
		l := b.ensureLock(int(e.Target))
		if l.lastRel != int32(t) {
			if b.checkAndGet(l.l, l.l, t, e, CheckAcquire) {
				break
			}
		}

	case trace.Release:
		l := b.ensureLock(int(e.Target))
		l.l = ts.c.CopyInto(l.l)
		l.lastRel = int32(t)

	case trace.Fork:
		us := b.ensureThread(int(e.Target))
		us.c = us.c.Join(b.threads[t].c)

	case trace.Join:
		us := b.ensureThread(int(e.Target))
		// See Basic: never-ran threads contribute no ≤CHB edges.
		if us.ran {
			if b.checkAndGet(us.c, us.c, t, e, CheckJoin) {
				break
			}
		}
	}
	// Re-index: the fork/join cases may have grown b.threads, invalidating
	// the ts pointer captured above.
	b.threads[t].ran = true
	b.n++
	if b.viol != nil {
		return b.viol
	}
	return nil
}

// handleEnd implements Algorithm 2's end(t): thread checks, then the
// conditional joins of the lock, write and (reduced) read clocks.
func (b *ReadOpt) handleEnd(t int, e trace.Event) {
	ts := &b.threads[t]
	ct, cbt := ts.c, ts.cb

	for u := range b.threads {
		if u == t || !b.threads[u].init {
			continue
		}
		if cbt.Leq(b.threads[u].c) {
			us := &b.threads[u]
			if us.depth > 0 && us.cb.Leq(ct) {
				b.viol = &Violation{
					Index: b.n, Event: e, ActiveThread: trace.ThreadID(u),
					Check: CheckEnd, Algorithm: b.Name(),
				}
				return
			}
			us.c = us.c.Join(ct)
		}
	}
	for i := range b.locks {
		l := &b.locks[i]
		if cbt.Leq(l.l) {
			l.l = l.l.Join(ct)
		}
	}
	for i := range b.vars {
		v := &b.vars[i]
		if cbt.Leq(v.w) {
			v.w = v.w.Join(ct)
		}
		if cbt.Leq(v.rx) {
			v.rx = v.rx.Join(ct)
			v.hrx.JoinZeroing(ct, t)
		}
	}
}

// ReadJoinClock returns a copy of R_x (white-box accessor for tests).
func (b *ReadOpt) ReadJoinClock(x trace.VarID) vc.Clock {
	if int(x) >= len(b.vars) {
		return nil
	}
	return b.vars[x].rx.Copy()
}

// CheckReadClock returns a copy of ȒR_x (white-box accessor for tests).
func (b *ReadOpt) CheckReadClock(x trace.VarID) vc.Clock {
	if int(x) >= len(b.vars) {
		return nil
	}
	return b.vars[x].hrx.Flat()
}
