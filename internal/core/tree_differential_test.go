package core

// Differential tests between the flat-clock, tree-clock and hybrid
// instantiations of the Optimized engine: the clock representation is
// required to be semantically invisible — identical verdicts, identical
// violation indices, identical check kinds, and identical GC-path
// decisions — on the paper's worked traces, on randomized well-formed
// traces (including the lock-heavy and nested-critical-section shapes
// that defeat tree-clock pruning), and on the benchmark workload
// generator's patterns.

import (
	"fmt"
	"math/rand"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// repEngine is one representation under differential test: a constructor
// paired with an EndStats accessor (the concrete types differ per clock
// representation, so the stats come through a closure).
type repEngine struct {
	name  string
	eng   Engine
	stats func() (int64, int64)
}

func allRepEngines() []repEngine {
	flat := NewOptimized()
	tree := NewOptimizedTree()
	hyb := NewOptimizedHybrid()
	auto := NewOptimizedAuto()
	// A tiny-threshold Auto exercises the flat→tree cutover (and the
	// promoted clocks' subsequent demote/re-promote cycles) on every trace
	// wide enough to have a few threads, where the default threshold would
	// keep everything flat.
	autoNarrow := newOptimizedAutoWidth(2)
	return []repEngine{
		{"flat", flat, flat.EndStats},
		{"tree", tree, tree.EndStats},
		{"hybrid", hyb, hyb.EndStats},
		{"auto", auto, auto.EndStats},
		{"auto-w2", autoNarrow, autoNarrow.EndStats},
	}
}

// assertRepAgreement runs every clock representation over src-producing
// functions and requires identical observable behavior, with the flat
// engine as the reference.
func assertRepAgreement(t *testing.T, ctx string, src func() trace.Source) {
	t.Helper()
	reps := allRepEngines()
	ref := reps[0]
	vRef, nRef := Run(ref.eng, src())
	refFull, refColl := ref.stats()
	for _, rep := range reps[1:] {
		v, n := Run(rep.eng, src())
		if (vRef != nil) != (v != nil) {
			t.Fatalf("%s: verdict mismatch: %s violation=%v %s violation=%v",
				ctx, ref.name, vRef != nil, rep.name, v != nil)
		}
		if vRef != nil {
			if vRef.Index != v.Index || vRef.Check != v.Check {
				t.Fatalf("%s: violation mismatch: %s (index %d, %v) %s (index %d, %v)",
					ctx, ref.name, vRef.Index, vRef.Check, rep.name, v.Index, v.Check)
			}
		}
		if nRef != n {
			t.Fatalf("%s: processed %d (%s) vs %d (%s)", ctx, nRef, ref.name, n, rep.name)
		}
		full, coll := rep.stats()
		if refFull != full || refColl != coll {
			t.Fatalf("%s: GC decisions diverged: %s (%d,%d) %s (%d,%d)",
				ctx, ref.name, refFull, refColl, rep.name, full, coll)
		}
	}
}

func TestTreeClockAgreementOnPaperTraces(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"rho1", testutil.Rho1()},
		{"rho2", testutil.Rho2()},
		{"rho3", testutil.Rho3()},
		{"rho4", testutil.Rho4()},
	} {
		tr := tc.tr
		assertRepAgreement(t, tc.name, func() trace.Source { return tr.Cursor() })
	}
}

func TestTreeClockAgreementOnRandomTraces(t *testing.T) {
	iters := 1500
	if testing.Short() {
		iters = 200
	}
	r := rand.New(rand.NewSource(4242))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(6),
			Vars:    1 + r.Intn(4),
			Locks:   1 + r.Intn(3),
			Steps:   10 + r.Intn(150),
			TxnBias: r.Intn(10),
			NoFork:  r.Intn(3) == 0,
		})
		assertRepAgreement(t, fmt.Sprintf("iter %d", iter), func() trace.Source { return tr.Cursor() })
	}
}

// TestTreeClockAgreementOnLockHeavyTraces drives the densely entangled
// shapes that defeat tree-clock pruning — lock-heavy schedules and nested
// critical sections — through the three-representation differential
// check: these are the traces that exercise the hybrid engine's bulk
// star-rebuild and flat-demotion paths.
func TestTreeClockAgreementOnLockHeavyTraces(t *testing.T) {
	iters := 600
	if testing.Short() {
		iters = 100
	}
	r := rand.New(rand.NewSource(171717))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads:      2 + r.Intn(8),
			Vars:         1 + r.Intn(5),
			Locks:        2 + r.Intn(5),
			Steps:        40 + r.Intn(250),
			TxnBias:      r.Intn(8),
			LockBias:     4 + r.Intn(10),
			MaxHeldLocks: 1 + r.Intn(3),
			NoFork:       r.Intn(2) == 0,
		})
		assertRepAgreement(t, fmt.Sprintf("lock-heavy iter %d", iter), func() trace.Source { return tr.Cursor() })
	}
}

func TestTreeClockAgreementOnWorkloads(t *testing.T) {
	patterns := []workload.Pattern{
		workload.PatternHub, workload.PatternChain, workload.PatternSharded,
		workload.PatternPhase,
	}
	injects := []workload.Violation{
		workload.ViolationNone, workload.ViolationCross,
		workload.ViolationDelayed, workload.ViolationLock,
	}
	for _, p := range patterns {
		for _, inj := range injects {
			for _, threads := range []int{2, 5, 9} {
				cfg := workload.Config{
					Name: string(p) + "-" + string(inj), Threads: threads,
					Vars: 64, Locks: 4, Events: 4000, OpsPerTxn: 3,
					Pattern: p, Inject: inj, InjectAt: 0.7,
					TxnFraction: 0.5, AbsorbEvery: 4, Seed: int64(threads),
				}
				assertRepAgreement(t, cfg.Name, func() trace.Source { return workload.New(cfg) })
			}
		}
	}
}

// TestEpochFastPathStats is a white-box check that the epoch fast path is
// not only sound but actually taken: repeated reads of the same variable
// under an unchanged write clock must not touch the reader's clock.
func TestEpochFastPathStats(t *testing.T) {
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Write(t1, x) // unary write: flushes W_x
	b.Begin(t2)
	for i := 0; i < 50; i++ {
		b.Read(t2, x)
	}
	b.End(t2)
	eng := NewOptimized()
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	// After the first read absorbed W_x, every further read must hit the
	// epoch slot: same source clock, same version, same begin clock.
	v := &eng.vars[x]
	if v.slot.thread != int32(t2) || v.slot.src != eng.vars[x].w {
		t.Fatalf("epoch slot not recorded: %+v", v.slot)
	}
	if got := eng.vars[x].w.Ver(); v.slot.srcVer != got {
		t.Fatalf("epoch slot version stale: slot %d clock %d", v.slot.srcVer, got)
	}
}

// TestConcreteMatchesGeneric pins the monomorphized flat and hybrid
// engines to the generic engine instantiated on the same representation:
// the source-level specializations must be behaviorally invisible.
func TestConcreteMatchesGeneric(t *testing.T) {
	type concGen struct {
		name string
		conc func() (Engine, func() (int64, int64))
		gen  func() (Engine, func() (int64, int64))
	}
	for _, pair := range []concGen{
		{"flat",
			func() (Engine, func() (int64, int64)) { e := NewOptimized(); return e, e.EndStats },
			func() (Engine, func() (int64, int64)) { e := newOptimizedGenericFlat(); return e, e.EndStats }},
		{"hybrid",
			func() (Engine, func() (int64, int64)) { e := NewOptimizedHybrid(); return e, e.EndStats },
			func() (Engine, func() (int64, int64)) { e := newOptimizedGenericHybrid(); return e, e.EndStats }},
	} {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(777177))
			for iter := 0; iter < 400; iter++ {
				tr := testutil.RandomTrace(r, testutil.GenOpts{
					Threads: 1 + r.Intn(5),
					Vars:    1 + r.Intn(4),
					Locks:   1 + r.Intn(2),
					Steps:   10 + r.Intn(120),
					TxnBias: r.Intn(10),
				})
				conc, concStats := pair.conc()
				gen, genStats := pair.gen()
				vc_, _ := Run(conc, tr.Cursor())
				vg, _ := Run(gen, tr.Cursor())
				if (vc_ != nil) != (vg != nil) {
					t.Fatalf("iter %d: concrete violation=%v generic=%v", iter, vc_ != nil, vg != nil)
				}
				if vc_ != nil && (vc_.Index != vg.Index || vc_.Check != vg.Check) {
					t.Fatalf("iter %d: concrete (%d,%v) generic (%d,%v)",
						iter, vc_.Index, vc_.Check, vg.Index, vg.Check)
				}
				cf, cc := concStats()
				gf, gc := genStats()
				if cf != gf || cc != gc {
					t.Fatalf("iter %d: EndStats concrete (%d,%d) generic (%d,%d)", iter, cf, cc, gf, gc)
				}
			}
		})
	}
}
