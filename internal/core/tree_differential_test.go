package core

// Differential tests between the flat-clock and tree-clock instantiations
// of the Optimized engine: the clock representation is required to be
// semantically invisible — identical verdicts, identical violation
// indices, identical check kinds, and identical GC-path decisions — on
// the paper's worked traces, on randomized well-formed traces, and on the
// benchmark workload generator's patterns.

import (
	"fmt"
	"math/rand"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// assertRepAgreement runs both representations over src-producing
// functions and requires identical observable behavior.
func assertRepAgreement(t *testing.T, ctx string, src func() trace.Source) {
	t.Helper()
	flat := NewOptimized()
	tree := NewOptimizedTree()
	vFlat, nFlat := Run(flat, src())
	vTree, nTree := Run(tree, src())

	if (vFlat != nil) != (vTree != nil) {
		t.Fatalf("%s: verdict mismatch: flat violation=%v tree violation=%v",
			ctx, vFlat != nil, vTree != nil)
	}
	if vFlat != nil {
		if vFlat.Index != vTree.Index || vFlat.Check != vTree.Check {
			t.Fatalf("%s: violation mismatch: flat (index %d, %v) tree (index %d, %v)",
				ctx, vFlat.Index, vFlat.Check, vTree.Index, vTree.Check)
		}
	}
	if nFlat != nTree {
		t.Fatalf("%s: processed %d (flat) vs %d (tree)", ctx, nFlat, nTree)
	}
	fFull, fColl := flat.EndStats()
	tFull, tColl := tree.EndStats()
	if fFull != tFull || fColl != tColl {
		t.Fatalf("%s: GC decisions diverged: flat (%d,%d) tree (%d,%d)",
			ctx, fFull, fColl, tFull, tColl)
	}
}

func TestTreeClockAgreementOnPaperTraces(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"rho1", testutil.Rho1()},
		{"rho2", testutil.Rho2()},
		{"rho3", testutil.Rho3()},
		{"rho4", testutil.Rho4()},
	} {
		tr := tc.tr
		assertRepAgreement(t, tc.name, func() trace.Source { return tr.Cursor() })
	}
}

func TestTreeClockAgreementOnRandomTraces(t *testing.T) {
	iters := 1500
	if testing.Short() {
		iters = 200
	}
	r := rand.New(rand.NewSource(4242))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(6),
			Vars:    1 + r.Intn(4),
			Locks:   1 + r.Intn(3),
			Steps:   10 + r.Intn(150),
			TxnBias: r.Intn(10),
			NoFork:  r.Intn(3) == 0,
		})
		assertRepAgreement(t, fmt.Sprintf("iter %d", iter), func() trace.Source { return tr.Cursor() })
	}
}

func TestTreeClockAgreementOnWorkloads(t *testing.T) {
	patterns := []workload.Pattern{
		workload.PatternHub, workload.PatternChain, workload.PatternSharded,
	}
	injects := []workload.Violation{
		workload.ViolationNone, workload.ViolationCross,
		workload.ViolationDelayed, workload.ViolationLock,
	}
	for _, p := range patterns {
		for _, inj := range injects {
			for _, threads := range []int{2, 5, 9} {
				cfg := workload.Config{
					Name: string(p) + "-" + string(inj), Threads: threads,
					Vars: 64, Locks: 4, Events: 4000, OpsPerTxn: 3,
					Pattern: p, Inject: inj, InjectAt: 0.7,
					TxnFraction: 0.5, AbsorbEvery: 4, Seed: int64(threads),
				}
				assertRepAgreement(t, cfg.Name, func() trace.Source { return workload.New(cfg) })
			}
		}
	}
}

// TestEpochFastPathStats is a white-box check that the epoch fast path is
// not only sound but actually taken: repeated reads of the same variable
// under an unchanged write clock must not touch the reader's clock.
func TestEpochFastPathStats(t *testing.T) {
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Write(t1, x) // unary write: flushes W_x
	b.Begin(t2)
	for i := 0; i < 50; i++ {
		b.Read(t2, x)
	}
	b.End(t2)
	eng := NewOptimized()
	if v, _ := Run(eng, b.Build().Cursor()); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	// After the first read absorbed W_x, every further read must hit the
	// epoch slot: same source clock, same version, same begin clock.
	v := &eng.vars[x]
	if v.slot.thread != int32(t2) || v.slot.src != eng.vars[x].w {
		t.Fatalf("epoch slot not recorded: %+v", v.slot)
	}
	if got := eng.vars[x].w.Ver(); v.slot.srcVer != got {
		t.Fatalf("epoch slot version stale: slot %d clock %d", v.slot.srcVer, got)
	}
}

// TestConcreteMatchesGenericFlat pins the monomorphized flat engine to
// the generic engine instantiated on the same representation: the
// source-level specialization must be behaviorally invisible.
func TestConcreteMatchesGenericFlat(t *testing.T) {
	r := rand.New(rand.NewSource(777177))
	for iter := 0; iter < 400; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(5),
			Vars:    1 + r.Intn(4),
			Locks:   1 + r.Intn(2),
			Steps:   10 + r.Intn(120),
			TxnBias: r.Intn(10),
		})
		conc := NewOptimized()
		gen := newOptimizedGenericFlat()
		vc_, _ := Run(conc, tr.Cursor())
		vg, _ := Run(gen, tr.Cursor())
		if (vc_ != nil) != (vg != nil) {
			t.Fatalf("iter %d: concrete violation=%v generic=%v", iter, vc_ != nil, vg != nil)
		}
		if vc_ != nil && (vc_.Index != vg.Index || vc_.Check != vg.Check) {
			t.Fatalf("iter %d: concrete (%d,%v) generic (%d,%v)",
				iter, vc_.Index, vc_.Check, vg.Index, vg.Check)
		}
		cf, cc := conc.EndStats()
		gf, gc := gen.EndStats()
		if cf != gf || cc != gc {
			t.Fatalf("iter %d: EndStats concrete (%d,%d) generic (%d,%d)", iter, cf, cc, gf, gc)
		}
	}
}
