package core

// This file is the single source of truth for the Algorithm 3 engine; it
// is written against the clockRep type parameter. The flat-clock default
// engine (optimized_flat.go) is a mechanical specialization of this file
// kept in sync by TestFlatSpecializationInSync: Go's shape-stenciled
// generics route every method call on a type parameter through a runtime
// dictionary, which blocks inlining and costs ~2ns per call — measurable
// on the per-event hot path — so the default engine is monomorphized at
// the source level instead.

import (
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

// epochSlot caches one successful checkAndGet: thread `thread` absorbed
// clock `src` at version srcVer while its begin clock was at cbVer, and no
// violation fired. While all three still match, re-running the check is
// provably a no-op (the begin clock is unchanged, so the violation
// predicate evaluates identically, and the thread clock only grows, so
// the join is absorbed already) — the whole O(width) Leq+Join is skipped.
type epochSlot[C comparable] struct {
	thread int32
	src    C
	srcVer uint64
	cbVer  uint64
}

type optThread[C comparable] struct {
	c     C
	cb    C
	depth int
	init  bool
	ran   bool
	// foreign is the sticky foreign-component test C_t[0/t] ≠ ⊥ that
	// drives transaction garbage collection, maintained incrementally at
	// every join instead of rescanning the clock at each end event.
	foreign bool
	// activeIdx is this thread's position in the engine's active list
	// (-1 while no outermost transaction is open).
	activeIdx int32
	// updR / updW are the paper's UpdateSetʳ_t / UpdateSetʷ_t, as slices
	// of variable IDs deduplicated through the variables' markR/markW
	// stamps (one entry per variable per transaction).
	updR, updW []int32
	// relLocks lists the locks whose lastRel is this thread, so the GC
	// path resets them without sweeping the lock table.
	relLocks []int32
	// dirtyLocks lists the locks whose clock may carry this thread's
	// current begin stamp, so the full propagation path visits only
	// locks that can satisfy L_ℓ(t) ≥ C⊲_t(t).
	dirtyLocks []int32
	// dirtyThreads is the same for thread clocks: the threads whose clock
	// may carry this thread's current begin stamp. The full propagation
	// path's thread checks visit only these instead of sweeping b.threads.
	dirtyThreads []int32
	// markedT.At(u) is the begin stamp of the transaction that last put
	// thread u on dirtyThreads (cf. optLock.marked).
	markedT vc.Clock
	// joinSlot is the epoch for join(u) checks against this thread.
	joinSlot epochSlot[C]
}

type optLock[C comparable] struct {
	l       C
	lastRel int32
	// relIdx is this lock's position in the lastRel thread's relLocks.
	relIdx int32
	// marked.At(u) is the begin stamp of the transaction that last put
	// this lock on u's dirtyLocks (stamps strictly increase, so equality
	// means "already listed this transaction").
	marked vc.Clock
	slot   epochSlot[C]
}

type optVar[C comparable] struct {
	w     C
	lastW int32
	// staleW is the paper's Staleʷ_x = ⊤: the last write's timestamp has not
	// been written to w because the writing transaction is still running;
	// readers consult the writer's live clock instead.
	staleW bool
	rx     C         // R_x
	hrx    vc.Sparse // ȒR_x (sparse in every representation; see clockRep)
	// staleR is the paper's Staleʳ_x: threads whose reads of x (inside still
	// running transactions) have not been flushed into rx/hrx.
	staleR []int32
	// markR/markW deduplicate update-set membership (see optThread.updR).
	markR, markW vc.Clock
	slot         epochSlot[C]
	// readSlot skips the unary-read flush (the O(width) rx/ȒR joins) when
	// the same thread re-reads x with an unchanged clock: both joins are
	// then no-ops. (coverRead still runs; it is O(active transactions).)
	readSlot accessSlot
	// writeSlot is the same for repeat writes: with no stale readers and
	// unchanged clocks, the write handler's flush, check and updates are
	// all idempotent (coverWrite still runs).
	writeSlot accessSlot
}

// OptimizedOn is Algorithm 3 (Appendix C.2) — AeroDrome with lazy clock
// updates, per-thread update sets, and garbage collection of transactions
// with no incoming edges — parameterized over the clock representation C
// (flat vector clocks or tree clocks; see clockRep). On top of the paper's
// algorithm it keeps the per-event cost sublinear in thread count:
//
//   - an active-transaction registry replaces the all-threads scans of the
//     UpdateSet loops (coverRead/coverWrite touch only open transactions);
//   - per-thread released-lock and dirty-lock lists replace the end-event
//     sweeps over the whole lock table;
//   - the foreign-component test behind transaction GC is maintained
//     incrementally (O(1) per end event);
//   - epoch fast paths skip the Leq+Join of checkAndGet entirely when the
//     same (source clock, version) was already absorbed under the current
//     begin clock — the FastTrack-style same-epoch case.
//
// Laziness makes detection points earlier-or-equal than Basic's, never
// later: while an accessing transaction is still running, readers and
// writers consult its live clock, which dominates the access event's clock,
// and every component of a live clock still witnesses a real ⋖Txn path, so
// any check that fires corresponds to a genuine cycle (the differential
// tests assert verdict equality with Basic and Index(Optimized) ≤
// Index(Basic)).
//
// Deviations from the printed pseudocode, each justified in the package
// comment and enforced by tests:
//
//   - hasIncomingEdge uses the sticky foreign-component test C_t[0/t] ≠ ⊥
//     (printed: begin-vs-end clock comparison, which misses program-order
//     incoming edges from retained predecessors; TestGCChainCounterexample).
//   - accesses outside any transaction (unary transactions) take the eager
//     Algorithm 2 path: a unary transaction completes immediately, so its
//     thread's live clock must not be consulted later.
//   - update-set membership is also refreshed when rx/W grow at end-event
//     flushes, so end-time conditions match Algorithm 1's, which evaluates
//     them against the current clock values rather than access-time values.
type OptimizedOn[C clockRep[C]] struct {
	newClock func() C
	// newAux, when non-nil, constructs the auxiliary-accumulator clocks
	// (lock clocks, W_x, R_x) instead of newClock: the hybrid engine keeps
	// those flat while the thread clocks are trees. The uniform engines
	// leave it nil and use one constructor for both.
	newAux  func() C
	name    string
	threads []optThread[C]
	locks   []optLock[C]
	vars    []optVar[C]
	// active lists the threads with an open outermost transaction, in no
	// particular order (swap-removed at end events).
	active []int32
	n      int64
	viol   *Violation
	// endsProcessed / endsCollected count end events that took the full
	// propagation path vs. the garbage-collection fast path (ablation
	// observability).
	endsProcessed int64
	endsCollected int64
	// epochHits / epochMisses count checkAndGet calls resolved by the
	// epoch fast path vs. falling through to the full Leq+Join.
	epochHits   int64
	epochMisses int64
	// sparsePromotions counts ȒR_x accumulators promoting to dense; every
	// hrx allocated by ensureVar points its counter here.
	sparsePromotions int64
	// repStats, set by the hybrid/auto constructors, shares the
	// representation-transition counters with the thread clocks.
	repStats *repStats
}

// Name implements Engine.
func (b *OptimizedOn[C]) Name() string { return b.name }

// Processed implements Engine.
func (b *OptimizedOn[C]) Processed() int64 { return b.n }

// Violation implements Engine.
func (b *OptimizedOn[C]) Violation() *Violation { return b.viol }

// EndStats reports how many outermost end events took the full propagation
// path vs. the GC fast path.
func (b *OptimizedOn[C]) EndStats() (full, collected int64) {
	return b.endsProcessed, b.endsCollected
}

// Stats implements StatsReporter.
func (b *OptimizedOn[C]) Stats() EngineStats {
	s := EngineStats{
		EpochHits:        b.epochHits,
		EpochMisses:      b.epochMisses,
		EndsFull:         b.endsProcessed,
		EndsCollected:    b.endsCollected,
		SparsePromotions: b.sparsePromotions,
	}
	if b.repStats != nil {
		s.TreeDemotions = b.repStats.demotions
		s.TreeRepromotions = b.repStats.repromotions
		s.WidthPromotions = b.repStats.widthPromotions
	}
	return s
}

func (b *OptimizedOn[C]) ensureThread(t int) *optThread[C] {
	for len(b.threads) <= t {
		b.threads = append(b.threads, optThread[C]{activeIdx: -1})
	}
	ts := &b.threads[t]
	if !ts.init {
		ts.c = b.newClock()
		ts.c.InitUnit(t)
		// The begin clock is a read-only snapshot of the thread clock, so
		// it takes the auxiliary representation: the hybrid engine keeps it
		// flat and the monotone copy at every begin degenerates to an O(1)
		// copy-on-write alias of the thread clock's flat view.
		ts.cb = b.newAuxClock()
		ts.init = true
	}
	return ts
}

// newAuxClock constructs an auxiliary-accumulator clock (see newAux).
func (b *OptimizedOn[C]) newAuxClock() C {
	if b.newAux != nil {
		return b.newAux()
	}
	return b.newClock()
}

func (b *OptimizedOn[C]) ensureLock(l int) *optLock[C] {
	for len(b.locks) <= l {
		b.locks = append(b.locks, optLock[C]{lastRel: nilThread, relIdx: -1})
	}
	lk := &b.locks[l]
	var zero C
	if lk.l == zero {
		// Lazy clock allocation: only locks that are actually used pay for
		// their clock (the pool can be much larger than the touched set).
		lk.l = b.newAuxClock()
	}
	return lk
}

func (b *OptimizedOn[C]) ensureVar(x int) *optVar[C] {
	for len(b.vars) <= x {
		b.vars = append(b.vars, optVar[C]{lastW: nilThread})
	}
	v := &b.vars[x]
	var zero C
	if v.w == zero {
		// Lazy clock allocation, as in ensureLock.
		v.w = b.newAuxClock()
		v.rx = b.newAuxClock()
		v.hrx.CountPromotionsInto(&b.sparsePromotions)
	}
	return v
}

// checkAndGet implements the paper's procedure of the same name: declare a
// violation if C⊲_t ⊑ clk and t has an active transaction, else C_t ⊔= clk.
// slot, when non-nil, is the epoch cache for this (source, thread) pair.
func (b *OptimizedOn[C]) checkAndGet(clk C, t int, e trace.Event, active trace.ThreadID, check CheckKind, slot *epochSlot[C]) bool {
	ts := &b.threads[t]
	srcVer := clk.Ver()
	cbVer := ts.cb.Ver()
	if slot != nil && slot.thread == int32(t) && slot.src == clk &&
		slot.srcVer == srcVer && slot.cbVer == cbVer {
		b.epochHits++
		return false // epoch fast path: already checked and absorbed
	}
	b.epochMisses++
	if ts.depth > 0 && ts.cb.Leq(clk) {
		b.viol = &Violation{
			Index: b.n, Event: e, ActiveThread: active,
			Check: check, Algorithm: b.Name(),
		}
		return true
	}
	ts.c.Join(clk)
	if clk.HasEntryOtherThan(t) {
		ts.foreign = true
	}
	b.markThreadDirty(t, clk)
	if slot != nil {
		slot.thread = int32(t)
		slot.src = clk
		slot.srcVer = srcVer
		slot.cbVer = cbVer
	}
	return false
}

// writeClockFor returns the clock readers and writers must consult for the
// last write to v: the writer's live clock while its transaction is still
// running (Staleʷ = ⊤), otherwise the flushed W_x.
func (b *OptimizedOn[C]) writeClockFor(v *optVar[C]) C {
	if v.staleW && v.lastW >= 0 {
		return b.threads[v.lastW].c
	}
	return v.w
}

// coverRead records x in the update set of every thread whose active
// transaction's begin is dominated by clk (the paper's UpdateSetʳ loop).
// Under the local-time invariant, C⊲_u ⊑ clk ⟺ C⊲_u(u) ≤ clk(u), and only
// threads on the active list can qualify.
func (b *OptimizedOn[C]) coverRead(x int32, clk C) {
	for _, u := range b.active {
		us := &b.threads[u]
		own := us.cb.At(int(u))
		if own <= clk.At(int(u)) {
			v := &b.vars[x]
			if v.markR.At(int(u)) != own {
				v.markR = v.markR.Set(int(u), own)
				us.updR = append(us.updR, x)
			}
		}
	}
}

// coverWrite is coverRead for UpdateSetʷ.
func (b *OptimizedOn[C]) coverWrite(x int32, clk C) {
	for _, u := range b.active {
		us := &b.threads[u]
		own := us.cb.At(int(u))
		if own <= clk.At(int(u)) {
			v := &b.vars[x]
			if v.markW.At(int(u)) != own {
				v.markW = v.markW.Set(int(u), own)
				us.updW = append(us.updW, x)
			}
		}
	}
}

// markThreadDirty lists thread u on the dirty-thread list of every active
// transaction whose begin stamp appears in clk, which was just joined
// into u's clock. Thread clocks change only at the join sites that call
// this (checkAndGet, the write-event R_x absorb, fork, and end-event
// propagation), so at any thread's end event every thread with
// C_u(t) ≥ C⊲_t(t) is on t's list (stale entries are re-checked there).
func (b *OptimizedOn[C]) markThreadDirty(u int, clk C) {
	for _, t2 := range b.active {
		if int(t2) == u {
			continue
		}
		ts2 := &b.threads[t2]
		own := ts2.cb.At(int(t2))
		if clk.At(int(t2)) >= own && ts2.markedT.At(u) != own {
			ts2.markedT = ts2.markedT.Set(u, own)
			ts2.dirtyThreads = append(ts2.dirtyThreads, int32(u))
		}
	}
}

// markLockDirty lists ℓ on the dirty-lock list of every active transaction
// whose begin stamp appears in clk (the clock just stored into L_ℓ). Lock
// clocks change only at releases and end-event propagations, and both call
// this, so at any thread's end event every lock with L_ℓ(t) ≥ C⊲_t(t) is
// on that thread's list (stale entries are re-checked there).
func (b *OptimizedOn[C]) markLockDirty(li int32, clk C) {
	for _, u := range b.active {
		us := &b.threads[u]
		own := us.cb.At(int(u))
		if clk.At(int(u)) >= own {
			l := &b.locks[li]
			if l.marked.At(int(u)) != own {
				l.marked = l.marked.Set(int(u), own)
				us.dirtyLocks = append(us.dirtyLocks, li)
			}
		}
	}
}

// dropRelLock removes lock li from its current lastRel owner's relLocks.
func (b *OptimizedOn[C]) dropRelLock(owner int32, idx int32) {
	os := &b.threads[owner]
	last := len(os.relLocks) - 1
	moved := os.relLocks[last]
	os.relLocks[idx] = moved
	os.relLocks = os.relLocks[:last]
	if int(idx) <= last-1 {
		b.locks[moved].relIdx = idx
	}
}

// removeActive swap-removes t from the active-transaction registry.
func (b *OptimizedOn[C]) removeActive(t int) {
	ts := &b.threads[t]
	last := len(b.active) - 1
	moved := b.active[last]
	b.active[ts.activeIdx] = moved
	b.active = b.active[:last]
	b.threads[moved].activeIdx = ts.activeIdx
	ts.activeIdx = -1
}

// Process implements Engine.
func (b *OptimizedOn[C]) Process(e trace.Event) *Violation {
	if b.viol != nil {
		return b.viol
	}
	t := int(e.Thread)
	ts := b.ensureThread(t)

	switch e.Kind {
	case trace.Begin:
		if ts.depth == 0 {
			ts.c.Inc(t)
			ts.cb.MonotoneCopyFrom(ts.c)
			ts.activeIdx = int32(len(b.active))
			b.active = append(b.active, int32(t))
		}
		ts.depth++

	case trace.End:
		ts.depth--
		if ts.depth == 0 {
			b.removeActive(t)
			b.handleEnd(t, e)
		}

	case trace.Read:
		x := e.Target
		v := b.ensureVar(int(x))
		if v.lastW != int32(t) {
			if b.checkAndGet(b.writeClockFor(v), t, e, e.Thread, CheckRead, &v.slot) {
				break
			}
		}
		ct := b.threads[t].c
		if ts.depth > 0 {
			v.addStaleReader(int32(t))
		} else {
			// Unary read: flush eagerly; the unary transaction is complete,
			// so the live clock must not be consulted later. A repeat flush
			// by the same thread under an unchanged clock is a no-op.
			if !(v.readSlot.thread == int32(t) && v.readSlot.ctVer == ct.Ver()) {
				v.rx.Join(ct)
				ct.JoinZeroingInto(&v.hrx, t)
				v.readSlot = accessSlot{thread: int32(t), ctVer: ct.Ver()}
			}
		}
		b.coverRead(x, ct)

	case trace.Write:
		x := e.Target
		v := b.ensureVar(int(x))
		if v.lastW != int32(t) {
			if b.checkAndGet(b.writeClockFor(v), t, e, e.Thread, CheckWriteWrite, &v.slot) {
				break
			}
		}
		// Repeat-write fast path: the same thread rewriting x under the
		// same begin clock with its clock, R_x, W_x and ȒR_x(t) unchanged
		// re-runs a handler whose O(width) steps are all no-ops; only the
		// O(active) coverWrite below still has observable work to do.
		if v.lastW == int32(t) && len(v.staleR) == 0 &&
			v.writeSlot.thread == int32(t) && v.writeSlot.ctVer == ts.c.Ver() &&
			v.writeSlot.rxVer == v.rx.Ver() && v.writeSlot.wVer == v.w.Ver() &&
			v.writeSlot.cbVer == ts.cb.Ver() &&
			v.writeSlot.wasInTxn == (ts.depth > 0) &&
			v.writeSlot.hrxAtT == v.hrx.At(t) {
			b.coverWrite(x, ts.c)
			break
		}
		// Flush stale readers with their live clocks; record any newly
		// covered begins so end-time flushes stay exact.
		for _, u := range v.staleR {
			uc := b.threads[u].c
			v.rx.Join(uc)
			uc.JoinZeroingInto(&v.hrx, int(u))
			b.coverRead(x, uc)
		}
		v.staleR = v.staleR[:0]
		// The ȒR check: ∃u≠t with C⊲_t ⊑ R_{u,x}, via the begin clock's own
		// component (see the package comment).
		if ts.depth > 0 && ts.cb.At(t) <= v.hrx.At(t) {
			b.viol = &Violation{
				Index: b.n, Event: e, ActiveThread: e.Thread,
				Check: CheckWriteRead, Algorithm: b.Name(),
			}
			break
		}
		ts.c.Join(v.rx)
		if v.rx.HasEntryOtherThan(t) {
			ts.foreign = true
		}
		b.markThreadDirty(t, v.rx)
		if ts.depth > 0 {
			v.staleW = true // lazy: readers consult C_t while the txn runs
		} else {
			v.w.CopyFrom(ts.c) // unary write: eager
			v.staleW = false
		}
		v.lastW = int32(t)
		b.coverWrite(x, ts.c)
		v.writeSlot = accessSlot{
			thread: int32(t), wasInTxn: ts.depth > 0,
			ctVer: ts.c.Ver(), rxVer: v.rx.Ver(), wVer: v.w.Ver(),
			cbVer: ts.cb.Ver(), hrxAtT: v.hrx.At(t),
		}

	case trace.Acquire:
		l := b.ensureLock(int(e.Target))
		if l.lastRel != int32(t) {
			if b.checkAndGet(l.l, t, e, e.Thread, CheckAcquire, &l.slot) {
				break
			}
		}

	case trace.Release:
		li := e.Target
		l := b.ensureLock(int(li))
		l.l.CopyFrom(ts.c)
		if l.lastRel != int32(t) {
			if l.lastRel != nilThread {
				b.dropRelLock(l.lastRel, l.relIdx)
			}
			l.lastRel = int32(t)
			l.relIdx = int32(len(ts.relLocks))
			ts.relLocks = append(ts.relLocks, li)
		}
		b.markLockDirty(li, ts.c)

	case trace.Fork:
		u := int(e.Target)
		us := b.ensureThread(u)
		us.c.Join(b.threads[t].c)
		if u != t {
			us.foreign = true // the parent clock carries t's component
		}
		b.markThreadDirty(u, b.threads[t].c)

	case trace.Join:
		us := b.ensureThread(int(e.Target))
		// See Basic: never-ran threads contribute no ≤CHB edges.
		if us.ran {
			if b.checkAndGet(us.c, t, e, e.Thread, CheckJoin, &us.joinSlot) {
				break
			}
		}
	}
	// Re-index: the fork/join cases may have grown b.threads, invalidating
	// the ts pointer captured above.
	b.threads[t].ran = true
	b.n++
	if b.viol != nil {
		return b.viol
	}
	return nil
}

// handleEnd implements Algorithm 3's end(t) with the full-propagation and
// garbage-collection branches. The foreign flag is the sticky incoming-edge
// test: C_t carries a foreign component (forked threads inherit the
// parent's components, so the printed "parent transaction alive" disjunct
// is subsumed).
func (b *OptimizedOn[C]) handleEnd(t int, e trace.Event) {
	ts := &b.threads[t]
	ct, cbt := ts.c, ts.cb

	if ts.foreign {
		b.endsProcessed++
		// Thread checks (the component test C⊲_t(t) ≤ C_u(t) is the
		// invariant form of C⊲_t ⊑ C_u), over the dirty-thread list: only
		// threads whose clock absorbed this transaction's begin stamp can
		// pass the gate. The violation pass runs first and reports the
		// lowest qualifying thread — the order the index sweep it replaces
		// would discover (the checks and joins are independent across
		// threads, so the split does not change any outcome).
		own := cbt.At(t)
		violAt := -1
		for _, ui := range ts.dirtyThreads {
			us := &b.threads[ui]
			if us.c.At(t) >= own && us.depth > 0 && us.cb.Leq(ct) &&
				(violAt < 0 || int(ui) < violAt) {
				violAt = int(ui)
			}
		}
		if violAt >= 0 {
			b.viol = &Violation{
				Index: b.n, Event: e, ActiveThread: trace.ThreadID(violAt),
				Check: CheckEnd, Algorithm: b.Name(),
			}
			return
		}
		for _, ui := range ts.dirtyThreads {
			us := &b.threads[ui]
			if us.c.At(t) >= own {
				us.c.Join(ct)
				us.foreign = true // ct carries t's begin stamp
				b.markThreadDirty(int(ui), ct)
			}
		}
		ts.dirtyThreads = ts.dirtyThreads[:0]
		for _, li := range ts.dirtyLocks {
			l := &b.locks[li]
			if l.l.At(t) >= own {
				l.l.Join(ct)
				b.markLockDirty(li, ct)
			}
		}
		ts.dirtyLocks = ts.dirtyLocks[:0]
		for _, x := range ts.updW {
			v := &b.vars[x]
			if !v.staleW || v.lastW == int32(t) {
				v.w.Join(ct)
				b.coverWrite(x, ct)
			}
			if v.lastW == int32(t) {
				v.staleW = false
			}
		}
		ts.updW = ts.updW[:0]
		for _, x := range ts.updR {
			v := &b.vars[x]
			v.rx.Join(ct)
			ct.JoinZeroingInto(&v.hrx, t)
			v.removeStaleReader(int32(t))
			b.coverRead(x, ct)
		}
		ts.updR = ts.updR[:0]
		return
	}

	// Garbage collection: the transaction has no incoming edges and can
	// never participate in a cycle; drop its lazy state instead of
	// propagating it (the paper's else-branch). The released-lock list
	// stands in for the lock-table sweep of the printed pseudocode.
	b.endsCollected++
	for _, x := range ts.updR {
		b.vars[x].removeStaleReader(int32(t))
	}
	ts.updR = ts.updR[:0]
	for _, x := range ts.updW {
		v := &b.vars[x]
		if v.lastW == int32(t) {
			v.staleW = false
			v.lastW = nilThread
		}
	}
	ts.updW = ts.updW[:0]
	for _, li := range ts.relLocks {
		b.locks[li].lastRel = nilThread
	}
	ts.relLocks = ts.relLocks[:0]
	ts.dirtyLocks = ts.dirtyLocks[:0]
	ts.dirtyThreads = ts.dirtyThreads[:0]
}

func (v *optVar[C]) addStaleReader(t int32) {
	for _, u := range v.staleR {
		if u == t {
			return
		}
	}
	v.staleR = append(v.staleR, t)
}

func (v *optVar[C]) removeStaleReader(t int32) {
	for i, u := range v.staleR {
		if u == t {
			v.staleR[i] = v.staleR[len(v.staleR)-1]
			v.staleR = v.staleR[:len(v.staleR)-1]
			return
		}
	}
}
