// Package chb computes the conflict-happens-before relation ≤CHB of a trace
// (Section 2 of the paper): the smallest reflexive, transitive relation that
// orders every pair of conflicting events consistently with the trace order.
//
// Two events e, e′ with e before e′ in the trace conflict iff
//
//	(i)   thr(e) = thr(e′), or
//	(ii)  e = ⟨t, fork(u)⟩ and thr(e′) = u, or
//	(iii) thr(e) = u and e′ = ⟨t, join(u)⟩, or
//	(iv)  both access a common variable x and at least one writes x, or
//	(v)   op(e) = rel(ℓ) and op(e′) = acq(ℓ).
//
// The Index assigns every event a vector timestamp in which each event ticks
// its own thread's component, so that for events i before j in the trace,
// i ≤CHB j iff C(i)(thr(i)) ≤ C(j)(thr(i)). The index materializes one clock
// per event and is intended as a test oracle substrate, not as a streaming
// analysis (AeroDrome in internal/core is the streaming analysis).
package chb

import (
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

// Index holds per-event ≤CHB vector timestamps for a trace.
type Index struct {
	tr     *trace.Trace
	clocks []vc.Clock
}

// BuildIndex scans the trace once and timestamps every event.
func BuildIndex(tr *trace.Trace) *Index {
	n := len(tr.Events)
	idx := &Index{tr: tr, clocks: make([]vc.Clock, n)}

	threadClock := map[trace.ThreadID]vc.Clock{}  // clock of t's last event
	lastWrite := map[trace.VarID]vc.Clock{}       // clock of last w(x)
	readsSinceWrite := map[trace.VarID]vc.Clock{} // join of r(x) clocks since last w(x)
	lastRelease := map[trace.LockID]vc.Clock{}    // clock of last rel(ℓ)
	pendingFork := map[trace.ThreadID]vc.Clock{}  // clock of fork(u), consumed at u's first event

	for i, e := range tr.Events {
		t := e.Thread
		c, started := threadClock[t]
		if !started {
			c = vc.New(0)
			if f, ok := pendingFork[t]; ok {
				c = c.Join(f)
				delete(pendingFork, t)
			}
		}
		switch e.Kind {
		case trace.Read:
			if w, ok := lastWrite[e.Var()]; ok {
				c = c.Join(w)
			}
		case trace.Write:
			if w, ok := lastWrite[e.Var()]; ok {
				c = c.Join(w)
			}
			if r, ok := readsSinceWrite[e.Var()]; ok {
				c = c.Join(r)
			}
		case trace.Acquire:
			if l, ok := lastRelease[e.Lock()]; ok {
				c = c.Join(l)
			}
		case trace.Join:
			if u, ok := threadClock[e.Other()]; ok {
				c = c.Join(u)
			}
		}
		c = c.Inc(int(t))
		idx.clocks[i] = c.Copy()
		threadClock[t] = c

		switch e.Kind {
		case trace.Write:
			lastWrite[e.Var()] = idx.clocks[i]
			delete(readsSinceWrite, e.Var())
		case trace.Read:
			r := readsSinceWrite[e.Var()]
			readsSinceWrite[e.Var()] = r.Copy().Join(idx.clocks[i])
		case trace.Release:
			lastRelease[e.Lock()] = idx.clocks[i]
		case trace.Fork:
			pendingFork[e.Other()] = idx.clocks[i]
		}
	}
	return idx
}

// Clock returns the timestamp of event i.
func (x *Index) Clock(i int) vc.Clock { return x.clocks[i] }

// Ordered reports whether event i ≤CHB event j. It requires i and j to be
// valid event indices; ≤CHB is reflexive.
func (x *Index) Ordered(i, j int) bool {
	if i == j {
		return true
	}
	if i > j {
		return false // ≤CHB is consistent with trace order
	}
	t := int(x.tr.Events[i].Thread)
	return x.clocks[i].At(t) <= x.clocks[j].At(t)
}

// Conflicting reports whether events i < j conflict directly (conditions
// (i)–(v) above). It is the generator relation of ≤CHB and is used by the
// exhaustive oracle in internal/serial.
func Conflicting(a, b trace.Event) bool {
	if a.Thread == b.Thread {
		return true
	}
	if a.Kind == trace.Fork && a.Other() == b.Thread {
		return true
	}
	if b.Kind == trace.Join && b.Other() == a.Thread {
		return true
	}
	if (a.Kind == trace.Read || a.Kind == trace.Write) &&
		(b.Kind == trace.Read || b.Kind == trace.Write) &&
		a.Target == b.Target &&
		!(a.Kind == trace.Read && b.Kind == trace.Read) {
		return true
	}
	if a.Kind == trace.Release && b.Kind == trace.Acquire && a.Target == b.Target {
		return true
	}
	return false
}

// Closure computes the full n×n reachability matrix of ≤CHB by transitive
// closure over the conflicting-pair generator. It is O(n³) and exists only
// as an independent cross-check of Index in tests.
func Closure(tr *trace.Trace) [][]bool {
	n := len(tr.Events)
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		m[i][i] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Conflicting(tr.Events[i], tr.Events[j]) {
				m[i][j] = true
			}
		}
	}
	// Since the generator respects trace order, a forward dynamic-programming
	// pass closes the relation: i ≤ k ≤ j with m[i][k] && m[k][j] ⇒ m[i][j].
	for k := 0; k < n; k++ {
		for i := 0; i < k; i++ {
			if !m[i][k] {
				continue
			}
			row, krow := m[i], m[k]
			for j := k + 1; j < n; j++ {
				if krow[j] {
					row[j] = true
				}
			}
		}
	}
	return m
}
