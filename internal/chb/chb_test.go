package chb

import (
	"math/rand"
	"testing"

	"aerodrome/internal/trace"
)

// rho1 builds the paper's Figure 1 trace ρ1.
func rho1() *trace.Trace {
	b := trace.NewBuilder()
	t1, t2, t3 := b.Thread("t1"), b.Thread("t2"), b.Thread("t3")
	x, z := b.Var("x"), b.Var("z")
	b.Begin(t1). // e1
			Write(t1, x). // e2
			Begin(t2).    // e3
			Read(t2, x).  // e4
			End(t2).      // e5
			Begin(t3).    // e6
			Write(t3, z). // e7
			End(t3).      // e8
			Read(t1, z).  // e9
			End(t1)       // e10
	return b.Build()
}

func TestIndexRho1(t *testing.T) {
	tr := rho1()
	idx := BuildIndex(tr)

	// Paper, Example 1: (e2,e4) and (e7,e9) are inter-thread conflicting
	// pairs; e1 ≤CHB e5 by transitivity. Events here are 0-based.
	mustOrder := [][2]int{
		{1, 3}, // e2 ≤ e4 (w(x), r(x))
		{6, 8}, // e7 ≤ e9 (w(z), r(z))
		{0, 4}, // e1 ≤ e5 transitively
		{0, 1}, // program order
		{2, 4},
	}
	for _, p := range mustOrder {
		if !idx.Ordered(p[0], p[1]) {
			t.Errorf("expected e%d ≤CHB e%d", p[0]+1, p[1]+1)
		}
	}
	mustNotOrder := [][2]int{
		{2, 5}, // e3 (begin t2) vs e6 (begin t3): unrelated
		{3, 6}, // e4 r(x) vs e7 w(z): unrelated
		{5, 8}, // e6 begin t3 ≤ e9? e7≤e9 but e6 is same txn... e6 ≤ e7 ≤ e9 actually holds!
	}
	_ = mustNotOrder
	// Correction: e6 ≤CHB e7 (same thread) and e7 ≤CHB e9, so e6 ≤CHB e9.
	if !idx.Ordered(5, 8) {
		t.Errorf("e6 ≤CHB e9 should hold via program order + w(z)/r(z)")
	}
	for _, p := range [][2]int{{2, 5}, {3, 6}} {
		if idx.Ordered(p[0], p[1]) {
			t.Errorf("did not expect e%d ≤CHB e%d", p[0]+1, p[1]+1)
		}
	}
	// ≤CHB is consistent with trace order: never backwards.
	for i := 0; i < tr.Len(); i++ {
		for j := 0; j < i; j++ {
			if idx.Ordered(i, j) {
				t.Errorf("backwards order e%d ≤ e%d", i+1, j+1)
			}
		}
	}
}

func TestConflictingPairs(t *testing.T) {
	w := func(th trace.ThreadID, x int32) trace.Event {
		return trace.Event{Thread: th, Kind: trace.Write, Target: x}
	}
	r := func(th trace.ThreadID, x int32) trace.Event {
		return trace.Event{Thread: th, Kind: trace.Read, Target: x}
	}
	cases := []struct {
		name string
		a, b trace.Event
		want bool
	}{
		{"same thread", w(1, 0), r(1, 5), true},
		{"ww same var", w(1, 3), w(2, 3), true},
		{"wr same var", w(1, 3), r(2, 3), true},
		{"rw same var", r(1, 3), w(2, 3), true},
		{"rr same var", r(1, 3), r(2, 3), false},
		{"ww diff var", w(1, 3), w(2, 4), false},
		{"fork child", trace.Event{Thread: 0, Kind: trace.Fork, Target: 2}, w(2, 0), true},
		{"fork other", trace.Event{Thread: 0, Kind: trace.Fork, Target: 2}, w(3, 0), false},
		{"join child", w(2, 0), trace.Event{Thread: 0, Kind: trace.Join, Target: 2}, true},
		{"join other", w(3, 9), trace.Event{Thread: 0, Kind: trace.Join, Target: 2}, false},
		{"rel acq", trace.Event{Thread: 1, Kind: trace.Release, Target: 7},
			trace.Event{Thread: 2, Kind: trace.Acquire, Target: 7}, true},
		{"acq rel", trace.Event{Thread: 1, Kind: trace.Acquire, Target: 7},
			trace.Event{Thread: 2, Kind: trace.Release, Target: 7}, false},
		{"acq acq", trace.Event{Thread: 1, Kind: trace.Acquire, Target: 7},
			trace.Event{Thread: 2, Kind: trace.Acquire, Target: 7}, false},
		{"rel acq diff lock", trace.Event{Thread: 1, Kind: trace.Release, Target: 7},
			trace.Event{Thread: 2, Kind: trace.Acquire, Target: 8}, false},
		{"var 3 vs lock 3", w(1, 3), trace.Event{Thread: 2, Kind: trace.Acquire, Target: 3}, false},
	}
	for _, c := range cases {
		if got := Conflicting(c.a, c.b); got != c.want {
			t.Errorf("%s: Conflicting = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLockOrdering(t *testing.T) {
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	l := b.Lock("l")
	x := b.Var("x")
	b.Acquire(t1, l). // 0
				Write(t1, x).   // 1
				Release(t1, l). // 2
				Acquire(t2, l). // 3
				Read(t2, x).    // 4
				Release(t2, l)  // 5
	idx := BuildIndex(b.Build())
	if !idx.Ordered(2, 3) {
		t.Errorf("rel(l) ≤CHB acq(l) must hold")
	}
	if !idx.Ordered(0, 5) {
		t.Errorf("transitive ordering through the lock must hold")
	}
	// The two acquires are ordered only via the release in between.
	if !idx.Ordered(0, 3) {
		t.Errorf("acq1 ≤CHB acq2 should hold transitively (acq1 ≤ rel1 ≤ acq2)")
	}
}

func TestForkJoinOrdering(t *testing.T) {
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Write(t1, x). // 0
			Fork(t1, t2). // 1
			Write(t2, y). // 2
			Join(t1, t2). // 3
			Read(t1, y)   // 4
	idx := BuildIndex(b.Build())
	if !idx.Ordered(0, 2) {
		t.Errorf("pre-fork events must order before child events")
	}
	if !idx.Ordered(2, 3) {
		t.Errorf("child events must order before join")
	}
	if !idx.Ordered(2, 4) {
		t.Errorf("transitive order through join must hold")
	}
}

func TestWriteAfterReads(t *testing.T) {
	// w2 must be ordered after both prior reads even though reads don't
	// conflict with each other.
	b := trace.NewBuilder()
	t1, t2, t3 := b.Thread("t1"), b.Thread("t2"), b.Thread("t3")
	x := b.Var("x")
	b.Write(t1, x). // 0
			Read(t2, x). // 1
			Read(t3, x). // 2
			Write(t1, x) // 3
	idx := BuildIndex(b.Build())
	if !idx.Ordered(1, 3) || !idx.Ordered(2, 3) {
		t.Errorf("write must be CHB-after all prior reads")
	}
	if idx.Ordered(1, 2) {
		t.Errorf("two reads must not be ordered")
	}
}

func TestReadNotAfterOldReads(t *testing.T) {
	// Reads before the last write are absorbed transitively; a read is
	// CHB-after old reads only through the intervening write.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x, y := b.Var("x"), b.Var("y")
	b.Read(t1, x). // 0
			Read(t2, y). // 1 (unrelated)
			Read(t2, x)  // 2
	idx := BuildIndex(b.Build())
	if idx.Ordered(0, 2) {
		t.Errorf("r(x);r(x) with no write in between must not be ordered")
	}
	if idx.Ordered(1, 2) == false {
		// same thread
		t.Errorf("program order must hold")
	}
}

// randomTrace builds a small random well-formed trace (no forks/joins to
// keep generation trivial; lock discipline respected).
func randomTrace(r *rand.Rand, nThreads, nVars, nLocks, nEvents int) *trace.Trace {
	b := trace.NewBuilder()
	threads := make([]trace.ThreadID, nThreads)
	for i := range threads {
		threads[i] = b.Thread(string(rune('A' + i)))
	}
	vars := make([]trace.VarID, nVars)
	for i := range vars {
		vars[i] = b.Var(string(rune('x' + i)))
	}
	locks := make([]trace.LockID, nLocks)
	for i := range locks {
		locks[i] = b.Lock(string(rune('k' + i)))
	}
	held := map[trace.ThreadID]trace.LockID{}
	hasLock := map[trace.ThreadID]bool{}
	lockBusy := map[trace.LockID]bool{}
	depth := map[trace.ThreadID]int{}

	for i := 0; i < nEvents; i++ {
		t := threads[r.Intn(nThreads)]
		switch r.Intn(8) {
		case 0:
			b.Begin(t)
			depth[t]++
		case 1:
			if depth[t] > 0 {
				b.End(t)
				depth[t]--
			} else {
				b.Read(t, vars[r.Intn(nVars)])
			}
		case 2, 3:
			b.Read(t, vars[r.Intn(nVars)])
		case 4, 5:
			b.Write(t, vars[r.Intn(nVars)])
		case 6:
			if !hasLock[t] {
				l := locks[r.Intn(nLocks)]
				if !lockBusy[l] {
					b.Acquire(t, l)
					held[t] = l
					hasLock[t] = true
					lockBusy[l] = true
				}
			}
		case 7:
			if hasLock[t] {
				b.Release(t, held[t])
				lockBusy[held[t]] = false
				hasLock[t] = false
			}
		}
	}
	// close everything
	for _, t := range threads {
		if hasLock[t] {
			b.Release(t, held[t])
		}
		for depth[t] > 0 {
			b.End(t)
			depth[t]--
		}
	}
	tr := b.Build()
	return tr
}

func TestIndexMatchesClosure(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		tr := randomTrace(r, 1+r.Intn(4), 1+r.Intn(3), 1+r.Intn(2), 5+r.Intn(40))
		if err := trace.ValidateStrict(tr); err != nil {
			t.Fatalf("generator produced malformed trace: %v", err)
		}
		idx := BuildIndex(tr)
		m := Closure(tr)
		n := tr.Len()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := idx.Ordered(i, j), m[i][j]; got != want {
					t.Fatalf("iter %d: Ordered(%d,%d)=%v, closure says %v\ntrace:\n%v",
						iter, i, j, got, want, tr.Events)
				}
			}
		}
	}
}

func TestOrderedReflexive(t *testing.T) {
	tr := rho1()
	idx := BuildIndex(tr)
	for i := 0; i < tr.Len(); i++ {
		if !idx.Ordered(i, i) {
			t.Errorf("≤CHB must be reflexive at %d", i)
		}
	}
}

func TestClockAccessor(t *testing.T) {
	tr := rho1()
	idx := BuildIndex(tr)
	if idx.Clock(0).IsZero() {
		t.Errorf("first event's clock must tick its own component")
	}
	if idx.Clock(0).At(0) != 1 {
		t.Errorf("first t1 event should have t1-component 1, got %v", idx.Clock(0))
	}
	if idx.Clock(1).At(0) != 2 {
		t.Errorf("second t1 event should have t1-component 2, got %v", idx.Clock(1))
	}
}
