package race

import (
	"math/rand"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

// run drives a fresh detector over a trace, returning its violation.
func run(t *testing.T, events []trace.Event) (*Detector, *Violation) {
	t.Helper()
	d := New()
	for _, e := range events {
		d.Process(e)
	}
	return d, d.Violation()
}

func ev(t trace.ThreadID, k trace.OpKind, target int32) trace.Event {
	return trace.Event{Thread: t, Kind: k, Target: target}
}

func TestWriteWriteRace(t *testing.T) {
	_, v := run(t, []trace.Event{
		ev(0, trace.Write, 7),
		ev(1, trace.Write, 7),
	})
	if v == nil {
		t.Fatal("expected a race")
	}
	if v.Index != 1 || v.Check != KindWriteWrite || v.Var != 7 || v.Thread != 1 || v.Other != 0 {
		t.Fatalf("unexpected violation: %+v", v)
	}
}

func TestWriteReadRace(t *testing.T) {
	_, v := run(t, []trace.Event{
		ev(0, trace.Write, 3),
		ev(1, trace.Read, 3),
	})
	if v == nil || v.Check != KindWriteRead || v.Index != 1 || v.Other != 0 {
		t.Fatalf("expected write-read race at index 1, got %+v", v)
	}
}

func TestReadWriteRace(t *testing.T) {
	_, v := run(t, []trace.Event{
		ev(0, trace.Read, 3),
		ev(1, trace.Write, 3),
	})
	if v == nil || v.Check != KindReadWrite || v.Index != 1 || v.Other != 0 {
		t.Fatalf("expected read-write race at index 1, got %+v", v)
	}
}

func TestLockOrderingSuppressesRace(t *testing.T) {
	_, v := run(t, []trace.Event{
		ev(0, trace.Acquire, 0),
		ev(0, trace.Write, 1),
		ev(0, trace.Release, 0),
		ev(1, trace.Acquire, 0),
		ev(1, trace.Write, 1),
		ev(1, trace.Read, 1),
		ev(1, trace.Release, 0),
	})
	if v != nil {
		t.Fatalf("lock-ordered accesses must not race: %v", v)
	}
}

func TestForkJoinOrdering(t *testing.T) {
	_, v := run(t, []trace.Event{
		ev(0, trace.Write, 0),
		ev(0, trace.Fork, 1),
		ev(1, trace.Write, 0), // ordered after t0's write via fork
		ev(0, trace.Join, 1),
		ev(0, trace.Write, 0), // ordered after t1's write via join
	})
	if v != nil {
		t.Fatalf("fork/join-ordered writes must not race: %v", v)
	}
}

func TestBeginEndCarryNoEdges(t *testing.T) {
	// Transactions are atomicity structure, not synchronization: wrapping
	// racing accesses in begin/end must not hide the race, and the index
	// accounts for the boundary events.
	_, v := run(t, []trace.Event{
		ev(0, trace.Begin, 0),
		ev(0, trace.Write, 5),
		ev(0, trace.End, 0),
		ev(1, trace.Begin, 0),
		ev(1, trace.Write, 5),
	})
	if v == nil || v.Index != 4 || v.Check != KindWriteWrite {
		t.Fatalf("expected write-write race at index 4, got %+v", v)
	}
}

func TestConcurrentReadersPromoteThenRace(t *testing.T) {
	// Two unordered reads force the read state into shared (vector) mode;
	// a write ordered after neither must still be caught.
	d, v := run(t, []trace.Event{
		ev(0, trace.Read, 2),
		ev(1, trace.Read, 2),
		ev(1, trace.Write, 2),
	})
	if v == nil || v.Check != KindReadWrite || v.Index != 2 || v.Other != 0 {
		t.Fatalf("expected read-write race against t0 at index 2, got %+v", v)
	}
	if d.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", d.Processed())
	}
}

func TestSharedReadersCollapseAfterOrderedWrite(t *testing.T) {
	// Concurrent readers, then a writer ordered after both via two locks:
	// clean; then an unordered writer races the first write.
	_, v := run(t, []trace.Event{
		ev(0, trace.Acquire, 0),
		ev(0, trace.Read, 2),
		ev(0, trace.Release, 0),
		ev(1, trace.Acquire, 1),
		ev(1, trace.Read, 2),
		ev(1, trace.Release, 1),
		ev(2, trace.Acquire, 0),
		ev(2, trace.Acquire, 1),
		ev(2, trace.Write, 2),
	})
	if v != nil {
		t.Fatalf("writer ordered after both readers must not race: %v", v)
	}
	_, v = run(t, []trace.Event{
		ev(0, trace.Acquire, 0),
		ev(0, trace.Read, 2),
		ev(0, trace.Release, 0),
		ev(1, trace.Acquire, 1),
		ev(1, trace.Read, 2),
		ev(1, trace.Release, 1),
		ev(2, trace.Acquire, 0),
		ev(2, trace.Acquire, 1),
		ev(2, trace.Write, 2),
		ev(2, trace.Release, 1),
		ev(2, trace.Release, 0),
		ev(3, trace.Write, 2),
	})
	if v == nil || v.Check != KindWriteWrite || v.Index != 11 || v.Other != 2 {
		t.Fatalf("expected write-write race against t2 at index 11, got %+v", v)
	}
}

func TestSameEpochFastPaths(t *testing.T) {
	d, v := run(t, []trace.Event{
		ev(0, trace.Read, 1),
		ev(0, trace.Read, 1),
		ev(0, trace.Write, 1),
		ev(0, trace.Write, 1),
	})
	if v != nil {
		t.Fatalf("same-thread re-accesses must not race: %v", v)
	}
	if d.Processed() != 4 {
		t.Fatalf("Processed = %d, want 4", d.Processed())
	}
}

func TestLatch(t *testing.T) {
	d := New()
	d.Process(ev(0, trace.Write, 0))
	v1 := d.Process(ev(1, trace.Write, 0))
	if v1 == nil {
		t.Fatal("expected a race")
	}
	n := d.Processed()
	v2 := d.Process(ev(2, trace.Write, 0))
	if v2 != v1 {
		t.Fatalf("latched violation changed: %v -> %v", v1, v2)
	}
	if d.Processed() != n {
		t.Fatalf("Processed advanced after latch: %d -> %d", n, d.Processed())
	}
}

func TestReleaseAcquireOnlyOrdersThatLock(t *testing.T) {
	// t1 acquires a different lock than t0 released: no edge, race.
	_, v := run(t, []trace.Event{
		ev(0, trace.Acquire, 0),
		ev(0, trace.Write, 1),
		ev(0, trace.Release, 0),
		ev(1, trace.Acquire, 1),
		ev(1, trace.Write, 1),
	})
	if v == nil || v.Check != KindWriteWrite || v.Index != 4 {
		t.Fatalf("expected write-write race at index 4, got %+v", v)
	}
}

// assertAgree runs Detector and Naive over the same events and requires
// identical verdicts: same race-or-not, and on a race the same index,
// kind and variable. (The reported Other thread may legitimately differ
// when several prior accesses race the same event.)
func assertAgree(t *testing.T, events []trace.Event, label string) {
	t.Helper()
	d := New()
	n := NewNaive()
	for _, e := range events {
		d.Process(e)
		n.Process(e)
	}
	dv, nv := d.Violation(), n.Violation()
	switch {
	case (dv == nil) != (nv == nil):
		t.Fatalf("%s: detector=%v oracle=%v", label, dv, nv)
	case dv != nil:
		if dv.Index != nv.Index || dv.Check != nv.Check || dv.Var != nv.Var {
			t.Fatalf("%s: detector (idx %d, %s, x%d) != oracle (idx %d, %s, x%d)",
				label, dv.Index, dv.Check, dv.Var, nv.Index, nv.Check, nv.Var)
		}
		if d.Processed() != n.Processed() {
			t.Fatalf("%s: processed %d != %d", label, d.Processed(), n.Processed())
		}
	}
}

func TestDetectorMatchesNaiveOnPaperTraces(t *testing.T) {
	for label, tr := range map[string]*trace.Trace{
		"rho1": testutil.Rho1(), "rho2": testutil.Rho2(),
		"rho3": testutil.Rho3(), "rho4": testutil.Rho4(),
	} {
		assertAgree(t, tr.Events, label)
	}
}

func TestDetectorMatchesNaiveOnRandomTraces(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	for i := 0; i < 300; i++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads:      2 + r.Intn(7),
			Vars:         1 + r.Intn(6),
			Locks:        1 + r.Intn(3),
			Steps:        40 + r.Intn(400),
			TxnBias:      r.Intn(3),
			LockBias:     r.Intn(3),
			MaxHeldLocks: 1 + r.Intn(2),
		})
		assertAgree(t, tr.Events, "random")
	}
}

func TestDetectorMatchesNaiveOnByteTraces(t *testing.T) {
	r := rand.New(rand.NewSource(20260809))
	buf := make([]byte, 512)
	for i := 0; i < 300; i++ {
		r.Read(buf[:16+r.Intn(len(buf)-16)])
		tr := testutil.TraceFromBytes(buf)
		assertAgree(t, tr.Events, "bytetrace")
	}
}
