package race

import (
	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

// NaiveName is the algorithm name the Naive oracle reports.
const NaiveName = "hbrace-naive"

// access is one recorded read or write: the accessing thread, its local
// time at the access, and the access kind. Thread u's access at local time
// c happens-before a later event by thread t iff c ≤ C_t(u) — the epoch
// test, exact because a thread's component only enters other clocks
// through its own release/fork edges.
type access struct {
	t     trace.ThreadID
	c     vc.Time
	write bool
}

// Naive is the exhaustive happens-before oracle: it keeps every access to
// every variable and, at each new access, tests it against every prior
// conflicting access. O(accesses) memory and O(accesses²) time per
// variable — a specification, not an implementation. The differential
// suites hold Detector to this oracle across the golden corpus, the paper
// traces, the scenario shapes and the fuzz seeds.
//
// Check ordering mirrors Detector so that the declared race kind matches:
// a write tests prior writes before prior reads.
type Naive struct {
	threads []vc.Clock
	locks   []vc.Clock
	vars    [][]access
	n       int64
	viol    *Violation
}

// NewNaive returns a fresh oracle.
func NewNaive() *Naive { return &Naive{} }

// Name identifies the oracle.
func (d *Naive) Name() string { return NaiveName }

// Processed returns the number of events consumed (excluding calls after a
// latched violation).
func (d *Naive) Processed() int64 { return d.n }

// Violation returns the latched race, if any.
func (d *Naive) Violation() *Violation { return d.viol }

func (d *Naive) clockOf(t trace.ThreadID) vc.Clock {
	i := int(t)
	for i >= len(d.threads) {
		d.threads = append(d.threads, nil)
	}
	if d.threads[i] == nil {
		d.threads[i] = vc.Unit(i)
	}
	return d.threads[i]
}

// Process consumes the next trace event, latching at the first race.
func (d *Naive) Process(e trace.Event) *Violation {
	if d.viol != nil {
		return d.viol
	}
	d.n++
	switch e.Kind {
	case trace.Read, trace.Write:
		d.access(e)
	case trace.Acquire:
		ct := d.clockOf(e.Thread)
		l := int(e.Target)
		for l >= len(d.locks) {
			d.locks = append(d.locks, nil)
		}
		d.threads[e.Thread] = ct.Join(d.locks[l])
	case trace.Release:
		ct := d.clockOf(e.Thread)
		l := int(e.Target)
		for l >= len(d.locks) {
			d.locks = append(d.locks, nil)
		}
		d.locks[l] = ct.CopyInto(d.locks[l])
		d.threads[e.Thread] = ct.Inc(int(e.Thread))
	case trace.Fork:
		ct := d.clockOf(e.Thread)
		cu := d.clockOf(trace.ThreadID(e.Target))
		d.threads[e.Target] = cu.Join(ct)
		d.threads[e.Thread] = ct.Inc(int(e.Thread))
	case trace.Join:
		cu := d.clockOf(trace.ThreadID(e.Target))
		ct := d.clockOf(e.Thread)
		d.threads[e.Thread] = ct.Join(cu)
		d.threads[e.Target] = cu.Inc(int(e.Target))
	case trace.Begin, trace.End:
	}
	return d.viol
}

// access handles r(x)/w(x): test against every prior conflicting access,
// writes first for write events, then record this access.
func (d *Naive) access(e trace.Event) {
	x := int(e.Target)
	for x >= len(d.vars) {
		d.vars = append(d.vars, nil)
	}
	t := e.Thread
	ct := d.clockOf(t)
	isWrite := e.Kind == trace.Write
	if isWrite {
		for _, a := range d.vars[x] {
			if a.write && a.c > ct.At(int(a.t)) {
				d.latch(e, trace.VarID(e.Target), a.t, KindWriteWrite)
				return
			}
		}
		for _, a := range d.vars[x] {
			if !a.write && a.c > ct.At(int(a.t)) {
				d.latch(e, trace.VarID(e.Target), a.t, KindReadWrite)
				return
			}
		}
	} else {
		for _, a := range d.vars[x] {
			if a.write && a.c > ct.At(int(a.t)) {
				d.latch(e, trace.VarID(e.Target), a.t, KindWriteRead)
				return
			}
		}
	}
	d.vars[x] = append(d.vars[x], access{t: t, c: ct.At(int(t)), write: isWrite})
}

func (d *Naive) latch(e trace.Event, x trace.VarID, other trace.ThreadID, k Kind) {
	d.viol = &Violation{
		Index:     d.n - 1,
		Event:     e,
		Var:       x,
		Thread:    e.Thread,
		Other:     other,
		Check:     k,
		Algorithm: NaiveName,
	}
}
