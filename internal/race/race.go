// Package race implements a FastTrack-style happens-before data-race
// detector over the same trace alphabet and vector-clock substrate as the
// AeroDrome atomicity checker (internal/vc), so one ingested event stream
// can drive both analyses on one clock computation.
//
// The happens-before model is the standard one:
//
//   - program order within a thread,
//   - rel(ℓ) → acq(ℓ) on the same lock,
//   - fork(u) → first event of u, last event of u → join(u).
//
// Begin/end events (the atomicity checker's transaction boundaries ⊲/⊳)
// carry no happens-before edges and are no-ops here.
//
// State follows FastTrack (Flanagan & Freund, PLDI 2009): per-thread
// clocks C_t and per-lock clocks L_ℓ as full vector clocks, but
// per-variable last-access state as adaptive epochs — a single (thread,
// time) pair for the last write W_x and for the last read R_x while reads
// are totally ordered, falling back to a full read vector clock only while
// concurrent readers exist and collapsing back to an epoch at the next
// non-racing write. The same-epoch and epoch-⊑-clock fast paths resolve
// the overwhelmingly common cases in O(1), mirroring the epoch fast paths
// the optimized atomicity engines use for their conflict checks.
//
// Like the atomicity engines, a Detector latches at the first race: the
// analysis answers "is this trace race-free, and if not, where does the
// first race occur", exactly parallel to the atomicity engines'
// first-violation semantics. Precision for the first race is FastTrack's
// theorem; internal to this repository it is enforced differentially
// against the exhaustive Naive oracle (naive.go) across the golden corpus,
// the paper traces, the scenario shapes and the fuzz seeds.
package race

import (
	"fmt"

	"aerodrome/internal/trace"
	"aerodrome/internal/vc"
)

// Kind identifies which pair of conflicting accesses raced.
type Kind uint8

const (
	// KindWriteWrite: the current write races a previous write.
	KindWriteWrite Kind = iota
	// KindWriteRead: the current read races a previous write.
	KindWriteRead
	// KindReadWrite: the current write races a previous read.
	KindReadWrite
)

var kindNames = map[Kind]string{
	KindWriteWrite: "write-write",
	KindWriteRead:  "write-read",
	KindReadWrite:  "read-write",
}

// String names the race kind for reports.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("race(%d)", uint8(k))
}

// Violation reports a data race: two conflicting accesses to Var, neither
// ordered before the other by happens-before. It implements error.
type Violation struct {
	// Index is the 0-based position of the event at which the race was
	// declared (the second access of the racing pair).
	Index int64
	// Event is the access being processed when the race was declared.
	Event trace.Event
	// Var is the variable both accesses touch.
	Var trace.VarID
	// Thread is the thread of the current (second) access.
	Thread trace.ThreadID
	// Other is the thread of the previous conflicting access.
	Other trace.ThreadID
	// Check identifies the racing access pair (previous-current order).
	Check Kind
	// Algorithm names the detector that reported.
	Algorithm string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: data race at event %d (%s): %s on x%d races thread t%d",
		v.Algorithm, v.Index, v.Event, v.Check, v.Var, v.Other)
}

// epoch is FastTrack's scalar clock c@t: thread t's local time at its last
// access. The zero value (c == 0) means "no access yet" — valid local
// times start at 1 (vc.Unit).
type epoch struct {
	t trace.ThreadID
	c vc.Time
}

// varState is the per-variable last-access summary: a write epoch, and a
// read epoch that escalates to a full read clock (rvc non-nil) while
// concurrent readers exist.
type varState struct {
	w   epoch
	r   epoch
	rvc vc.Clock
}

// Detector is a streaming happens-before race detector. Like core.Engine
// implementations it is not safe for concurrent use and latches at the
// first violation.
type Detector struct {
	threads []vc.Clock
	locks   []vc.Clock
	vars    []varState
	n       int64
	viol    *Violation
}

// DetectorName is the algorithm name Detector reports in violations and
// analysis reports.
const DetectorName = "hbrace-fasttrack"

// New returns a fresh detector.
func New() *Detector { return &Detector{} }

// Name identifies the detector, parallel to core.Engine.Name.
func (d *Detector) Name() string { return DetectorName }

// Processed returns the number of events consumed (excluding calls after a
// latched violation).
func (d *Detector) Processed() int64 { return d.n }

// Violation returns the latched race, if any.
func (d *Detector) Violation() *Violation { return d.viol }

// clockOf returns thread t's clock, initializing it to ⊥[1/t] on first
// sight (the FastTrack initial state).
func (d *Detector) clockOf(t trace.ThreadID) vc.Clock {
	i := int(t)
	for i >= len(d.threads) {
		d.threads = append(d.threads, nil)
	}
	if d.threads[i] == nil {
		d.threads[i] = vc.Unit(i)
	}
	return d.threads[i]
}

func (d *Detector) varOf(x int32) *varState {
	for int(x) >= len(d.vars) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

// Process consumes the next trace event and reports a race if one is
// declared at this event. After the first race the detector latches:
// subsequent calls return the same violation without processing.
func (d *Detector) Process(e trace.Event) *Violation {
	if d.viol != nil {
		return d.viol
	}
	d.n++
	switch e.Kind {
	case trace.Read:
		d.read(e)
	case trace.Write:
		d.write(e)
	case trace.Acquire:
		ct := d.clockOf(e.Thread)
		l := int(e.Target)
		for l >= len(d.locks) {
			d.locks = append(d.locks, nil)
		}
		d.threads[e.Thread] = ct.Join(d.locks[l])
	case trace.Release:
		ct := d.clockOf(e.Thread)
		l := int(e.Target)
		for l >= len(d.locks) {
			d.locks = append(d.locks, nil)
		}
		d.locks[l] = ct.CopyInto(d.locks[l])
		d.threads[e.Thread] = ct.Inc(int(e.Thread))
	case trace.Fork:
		ct := d.clockOf(e.Thread)
		cu := d.clockOf(trace.ThreadID(e.Target))
		d.threads[e.Target] = cu.Join(ct)
		d.threads[e.Thread] = ct.Inc(int(e.Thread))
	case trace.Join:
		cu := d.clockOf(trace.ThreadID(e.Target))
		ct := d.clockOf(e.Thread)
		d.threads[e.Thread] = ct.Join(cu)
		d.threads[e.Target] = cu.Inc(int(e.Target))
	case trace.Begin, trace.End:
		// Transaction boundaries carry no happens-before edges.
	}
	return d.viol
}

// read handles r(x) by thread t: check against the last write, then fold
// the read into the adaptive read state.
func (d *Detector) read(e trace.Event) {
	t := e.Thread
	ct := d.clockOf(t)
	vs := d.varOf(e.Target)
	my := ct.At(int(t))
	// Same-epoch fast path: this thread already read x at this exact
	// local time; the earlier identical read performed the write check.
	if vs.rvc == nil && vs.r.c != 0 && vs.r.t == t && vs.r.c == my {
		return
	}
	// Write-read check: the last write must happen-before this read.
	if vs.w.c != 0 && vs.w.c > ct.At(int(vs.w.t)) {
		d.latch(e, trace.VarID(e.Target), vs.w.t, KindWriteRead)
		return
	}
	switch {
	case vs.rvc != nil:
		// Shared reads: record this reader's component.
		vs.rvc = vs.rvc.Set(int(t), my)
	case vs.r.c == 0 || vs.r.c <= ct.At(int(vs.r.t)):
		// Exclusive: the previous read happens-before this one, so a
		// single epoch still summarizes all reads.
		vs.r = epoch{t: t, c: my}
	default:
		// Concurrent readers: escalate to a full read clock holding both.
		rvc := vc.New(0).Set(int(vs.r.t), vs.r.c)
		vs.rvc = rvc.Set(int(t), my)
		vs.r = epoch{}
	}
}

// write handles w(x) by thread t: check against the last write and all
// reads since it, then take over both epochs.
func (d *Detector) write(e trace.Event) {
	t := e.Thread
	ct := d.clockOf(t)
	vs := d.varOf(e.Target)
	my := ct.At(int(t))
	// Same-epoch fast path: this thread already wrote x at this local time.
	if vs.w.c != 0 && vs.w.t == t && vs.w.c == my {
		return
	}
	// Write-write check: the last write must happen-before this one.
	if vs.w.c != 0 && vs.w.c > ct.At(int(vs.w.t)) {
		d.latch(e, trace.VarID(e.Target), vs.w.t, KindWriteWrite)
		return
	}
	// Read-write check: every read since the last write must happen-before.
	if vs.rvc != nil {
		if other, ok := concurrentReader(vs.rvc, ct); ok {
			d.latch(e, trace.VarID(e.Target), other, KindReadWrite)
			return
		}
		// All readers ordered before this write: collapse back to epochs.
		vs.rvc = nil
		vs.r = epoch{}
	} else if vs.r.c != 0 && vs.r.c > ct.At(int(vs.r.t)) {
		d.latch(e, trace.VarID(e.Target), vs.r.t, KindReadWrite)
		return
	}
	vs.w = epoch{t: t, c: my}
}

// concurrentReader returns a thread whose recorded read is not ordered
// before ct, if any.
func concurrentReader(rvc vc.Clock, ct vc.Clock) (trace.ThreadID, bool) {
	for i, v := range rvc {
		if v != 0 && v > ct.At(i) {
			return trace.ThreadID(i), true
		}
	}
	return 0, false
}

func (d *Detector) latch(e trace.Event, x trace.VarID, other trace.ThreadID, k Kind) {
	d.viol = &Violation{
		Index:     d.n - 1,
		Event:     e,
		Var:       x,
		Thread:    e.Thread,
		Other:     other,
		Check:     k,
		Algorithm: DetectorName,
	}
}
