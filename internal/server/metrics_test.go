package server

// The observability surface: the /metrics JSON schema (typed snapshot,
// stable alphabetical key order, stage quantiles and engine counters
// populated by real traffic), the Prometheus exposition cross-checked
// against the JSON it mirrors, and the request-ID contract (echo,
// edge generation, propagation through the router, access-log lines).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// driveTraffic exercises every backend stage: one whole-trace check
// (parse + check) and one incremental session (feed + finalize).
func driveTraffic(t *testing.T, ts *httptest.Server) {
	t.Helper()
	std := []byte("t1|begin|0\nt1|w(x)|1\nt1|end|0\n")
	resp, err := http.Post(ts.URL+"/v1/check", "application/octet-stream", bytes.NewReader(std))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/sessions/"+created.ID+"/events",
		"application/octet-stream", bytes.NewReader(std))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func getBody(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, resp
}

func TestMetricsJSONSchema(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	driveTraffic(t, ts)

	body, _ := getBody(t, ts.URL+"/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON does not decode into MetricsSnapshot: %v", err)
	}
	if snap.EventsTotal < 6 {
		t.Fatalf("events_total = %d, want >= 6", snap.EventsTotal)
	}
	for _, stage := range []string{"parse", "check", "feed", "finalize"} {
		sm, ok := snap.Stages[stage]
		if !ok {
			t.Fatalf("stages[%q] missing", stage)
		}
		if sm.Count < 1 {
			t.Errorf("stages[%q].count = %d, want >= 1", stage, sm.Count)
		}
		if sm.P99Ms < sm.P50Ms {
			t.Errorf("stages[%q]: p99 %.3f < p50 %.3f", stage, sm.P99Ms, sm.P50Ms)
		}
	}
	if got := snap.Engine.EpochHits + snap.Engine.EpochMisses; got < 1 {
		t.Errorf("engine counters never accumulated: hits+misses = %d", got)
	}
	if snap.Engine.EpochHitRate < 0 || snap.Engine.EpochHitRate > 1 {
		t.Errorf("epoch_hit_rate = %v out of [0,1]", snap.Engine.EpochHitRate)
	}
	if snap.Sessions.Opened < 1 || snap.Sessions.Closed < 1 {
		t.Errorf("sessions = %+v, want opened and closed >= 1", snap.Sessions)
	}
	if snap.Checks.Total < 1 {
		t.Errorf("checks.total = %d, want >= 1", snap.Checks.Total)
	}
	// driveTraffic ran one default-set check and one default-set session:
	// both land on the atomicity analysis row; the hbrace row exists at
	// zero (rows are pre-created so dashboards see every analysis).
	if am := snap.Analyses["atomicity"]; am.Checks < 1 || am.Sessions < 1 {
		t.Errorf("analyses[atomicity] = %+v, want checks and sessions >= 1", am)
	}
	if _, ok := snap.Analyses["hbrace"]; !ok {
		t.Error("analyses[hbrace] row missing from snapshot")
	}

	// The schema promise: top-level keys stay in sorted order, exactly as
	// the pre-typed map-based encoder emitted them — consumers diffing
	// scrapes byte-wise must not see keys reshuffle. With the two-space
	// indent, top-level keys are the ones at indent depth one.
	var prev string
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, `  "`) || strings.HasPrefix(line, `   `) {
			continue
		}
		key := line[3 : strings.Index(line[3:], `"`)+3]
		if prev != "" && key < prev {
			t.Errorf("top-level keys out of order: %q after %q", key, prev)
		}
		prev = key
	}
}

// promValues parses Prometheus text exposition into series → value,
// keeping the full name{labels} as the key.
func promValues(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable prom line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable prom value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestMetricsPromMatchesJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	driveTraffic(t, ts)

	// One request, both formats: counters only ever grow, so scraping
	// prom first and JSON second could legitimately disagree — compare
	// prom against a JSON snapshot taken before any further traffic, and
	// only on counters this test's own requests do not bump (the /metrics
	// GETs themselves stay off the stage histograms).
	jsonBody, _ := getBody(t, ts.URL+"/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		t.Fatal(err)
	}
	promBody, resp := getBody(t, ts.URL+"/metrics?format=prom")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom Content-Type = %q, want text/plain exposition", ct)
	}
	vals := promValues(t, string(promBody))

	for series, want := range map[string]float64{
		"aerodromed_events_total":                                   float64(snap.EventsTotal),
		"aerodromed_sessions_opened_total":                          float64(snap.Sessions.Opened),
		"aerodromed_checks_total":                                   float64(snap.Checks.Total),
		"aerodromed_engine_epoch_hits_total":                        float64(snap.Engine.EpochHits),
		"aerodromed_engine_epoch_misses_total":                      float64(snap.Engine.EpochMisses),
		`aerodromed_stage_duration_seconds_count{stage="check"}`:    float64(snap.Stages["check"].Count),
		`aerodromed_stage_duration_seconds_count{stage="finalize"}`: float64(snap.Stages["finalize"].Count),
	} {
		got, ok := vals[series]
		if !ok {
			t.Errorf("prom series %s missing", series)
			continue
		}
		if got != want {
			t.Errorf("%s = %v in prom, %v in JSON", series, got, want)
		}
	}
	// Histogram buckets must be cumulative and end at the count.
	var lastBucket float64 = -1
	for _, line := range strings.Split(string(promBody), "\n") {
		if !strings.HasPrefix(line, `aerodromed_stage_duration_seconds_bucket{stage="check"`) {
			continue
		}
		v := vals[line[:strings.LastIndexByte(line, ' ')]]
		if v < lastBucket {
			t.Fatalf("non-cumulative bucket in %q", line)
		}
		lastBucket = v
	}
	if want := float64(snap.Stages["check"].Count); lastBucket != want {
		t.Errorf("last check bucket = %v, want count %v", lastBucket, want)
	}
}

func TestRequestIDEchoAndGeneration(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{Logger: newLogger(&logBuf, slog.LevelDebug)})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "fixed-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "fixed-id-42" {
		t.Fatalf("supplied request ID not echoed: got %q", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	generated := resp.Header.Get(RequestIDHeader)
	if generated == "" {
		t.Fatal("no request ID generated at the edge")
	}
	if generated == "fixed-id-42" {
		t.Fatal("generated ID collided with the supplied one")
	}

	// Both requests left access-log lines carrying their IDs.
	logs := logBuf.String()
	for _, id := range []string{"fixed-id-42", generated} {
		if !strings.Contains(logs, "id="+id) {
			t.Errorf("access log missing id=%s:\n%s", id, logs)
		}
	}
}

// TestRouterRequestIDPropagation pins the routed hop: an ID supplied at
// the router edge reaches the backend's handler in the proxied request
// headers, for both the reverse-proxied check path and the
// router-managed session path.
func TestRouterRequestIDPropagation(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seen []string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			seen = append(seen, r.Header.Get(RequestIDHeader))
		}
		s.ServeHTTP(w, r)
	}))
	defer backend.Close()

	rt, err := NewRouter(RouterConfig{Backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rts := httptest.NewServer(rt)
	defer rts.Close()

	std := []byte("t1|begin|0\nt1|w(x)|1\nt1|end|0\n")
	req, _ := http.NewRequest(http.MethodPost, rts.URL+"/v1/check", bytes.NewReader(std))
	req.Header.Set(RequestIDHeader, "edge-id-check")
	req.Header.Set(RouterTraceHeader, "k1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed check: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "edge-id-check" {
		t.Fatalf("routed response echoes %q, want edge-id-check", got)
	}

	req, _ = http.NewRequest(http.MethodPost, rts.URL+"/v1/sessions?trace=k2", nil)
	req.Header.Set(RequestIDHeader, "edge-id-session")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed create: HTTP %d", resp.StatusCode)
	}

	for _, want := range []string{"edge-id-check", "edge-id-session"} {
		found := false
		for _, id := range seen {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("backend never saw request ID %q (saw %v)", want, seen)
		}
	}
}

// TestRouterMetricsTyped pins the router's JSON schema to the exported
// snapshot struct and its prom exposition to the same numbers.
func TestRouterMetricsTyped(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	std := []byte("t1|begin|0\nt1|w(x)|1\nt1|end|0\n")
	for i := 0; i < 4; i++ {
		postCheckKeyed(t, c.routerTS, std, fmt.Sprintf("key-%d", i))
	}

	body, _ := getBody(t, c.routerTS.URL+"/metrics")
	var snap RouterMetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("router metrics do not decode into RouterMetricsSnapshot: %v", err)
	}
	if snap.ChecksRouted != 4 {
		t.Errorf("checks_routed = %d, want 4", snap.ChecksRouted)
	}
	if len(snap.Backends) != 2 {
		t.Fatalf("backends = %v, want 2 entries", snap.Backends)
	}
	var routed int64
	for _, b := range snap.Backends {
		routed += b.RoutedTotal
	}
	if routed != 4 {
		t.Errorf("sum of backend routed_total = %d, want 4", routed)
	}
	if proxy, ok := snap.Stages["proxy"]; !ok || proxy.Count < 4 {
		t.Errorf("stages[proxy] = %+v, want count >= 4", snap.Stages["proxy"])
	}

	promBody, _ := getBody(t, c.routerTS.URL+"/metrics?format=prom")
	vals := promValues(t, string(promBody))
	if got := vals["aerodromed_router_checks_routed_total"]; got != float64(snap.ChecksRouted) {
		t.Errorf("prom checks_routed = %v, JSON %v", got, snap.ChecksRouted)
	}
	if got := vals[`aerodromed_router_stage_duration_seconds_count{stage="proxy"}`]; got < 4 {
		t.Errorf(`prom proxy stage count = %v, want >= 4`, got)
	}
}
