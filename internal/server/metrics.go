package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aerodrome"
	"aerodrome/internal/obs"
)

// metrics is the server's instrument set, served two ways from
// GET /metrics: the legacy expvar-style JSON document (the default, see
// MetricsSnapshot for the schema) and Prometheus text exposition with
// `?format=prom`. Everything is monotonic except the two active gauges;
// all updates are atomic so handlers never contend on a metrics lock.
// The Prometheus view is read-through over the same atomics (see
// internal/obs), so the two expositions can never disagree.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	sessionsActive   atomic.Int64
	sessionsOpened   atomic.Int64
	sessionsClosed   atomic.Int64
	sessionsEvicted  atomic.Int64
	sessionsRejected atomic.Int64

	checksActive   atomic.Int64
	checksTotal    atomic.Int64
	checksRejected atomic.Int64

	eventsTotal     atomic.Int64
	violationsTotal atomic.Int64

	// analyses counts per-analysis activity: how many checks and sessions
	// requested each analysis, and how many violations each reported. The
	// map is built once in newMetrics (one entry per supported analysis) and
	// never mutated afterwards, so reads need no lock.
	analyses map[string]*analysisCounters

	// engineMu guards insertion into engines; the counters themselves are
	// atomic. Keyed by engine name, counting how often each engine was
	// selected (one per /v1/check and one per session) — the observability
	// for the `auto` default.
	engineMu sync.Mutex
	engines  map[string]*atomic.Int64

	// statsMu guards engineStats: introspection counters settled out of
	// finished one-shot checks and out of sessions at every feed and
	// finalize boundary, aggregated across every engine this server ran.
	statsMu     sync.Mutex
	engineStats aerodrome.EngineStats

	// Per-stage latency histograms for the request path.
	stageParse    *obs.Histogram
	stageCheck    *obs.Histogram
	stageFeed     *obs.Histogram
	stageFinalize *obs.Histogram
}

// analysisCounters is one analysis' counter row: requested-by counts and
// violations reported. All atomic; see metrics.analyses.
type analysisCounters struct {
	checks     atomic.Int64
	sessions   atomic.Int64
	violations atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{
		start:    time.Now(),
		reg:      obs.NewRegistry(),
		engines:  map[string]*atomic.Int64{},
		analyses: map[string]*analysisCounters{},
	}
	for _, k := range aerodrome.AnalysisKinds() {
		ac := &analysisCounters{}
		m.analyses[string(k)] = ac
		labels := obs.Labels(map[string]string{"analysis": string(k)})
		m.reg.CounterFunc("aerodromed_analysis_checks_total", labels,
			"One-shot checks that ran this analysis.", ac.checks.Load)
		m.reg.CounterFunc("aerodromed_analysis_sessions_total", labels,
			"Sessions opened with this analysis.", ac.sessions.Load)
		m.reg.CounterFunc("aerodromed_analysis_violations_total", labels,
			"Violations reported by this analysis.", ac.violations.Load)
	}
	gauge := func(name, help string, v *atomic.Int64) {
		m.reg.GaugeFunc(name, "", help, func() float64 { return float64(v.Load()) })
	}
	counter := func(name, help string, v *atomic.Int64) {
		m.reg.CounterFunc(name, "", help, v.Load)
	}
	m.reg.GaugeFunc("aerodromed_uptime_seconds", "", "Seconds since process start.",
		func() float64 { return time.Since(m.start).Seconds() })
	gauge("aerodromed_sessions_active", "Incremental sessions currently open.", &m.sessionsActive)
	counter("aerodromed_sessions_opened_total", "Sessions opened.", &m.sessionsOpened)
	counter("aerodromed_sessions_closed_total", "Sessions finalized by clients.", &m.sessionsClosed)
	counter("aerodromed_sessions_evicted_total", "Idle sessions evicted by the janitor.", &m.sessionsEvicted)
	counter("aerodromed_sessions_rejected_total", "Session opens rejected by admission control.", &m.sessionsRejected)
	gauge("aerodromed_checks_active", "One-shot checks currently running.", &m.checksActive)
	counter("aerodromed_checks_total", "One-shot checks admitted.", &m.checksTotal)
	counter("aerodromed_checks_rejected_total", "One-shot checks rejected by admission control.", &m.checksRejected)
	counter("aerodromed_events_total", "Trace events processed.", &m.eventsTotal)
	counter("aerodromed_violations_total", "Atomicity violations reported.", &m.violationsTotal)

	engineCounter := func(name, help string, sel func(aerodrome.EngineStats) int64) {
		m.reg.CounterFunc(name, "", help, func() int64 {
			m.statsMu.Lock()
			defer m.statsMu.Unlock()
			return sel(m.engineStats)
		})
	}
	engineCounter("aerodromed_engine_epoch_hits_total",
		"Conflict checks resolved by the epoch fast path.",
		func(s aerodrome.EngineStats) int64 { return s.EpochHits })
	engineCounter("aerodromed_engine_epoch_misses_total",
		"Conflict checks that fell through to a full clock comparison.",
		func(s aerodrome.EngineStats) int64 { return s.EpochMisses })
	engineCounter("aerodromed_engine_ends_full_total",
		"Transaction ends taking the full propagation path.",
		func(s aerodrome.EngineStats) int64 { return s.EndsFull })
	engineCounter("aerodromed_engine_ends_collected_total",
		"Transaction ends taking the garbage-collection fast path.",
		func(s aerodrome.EngineStats) int64 { return s.EndsCollected })
	engineCounter("aerodromed_engine_sparse_promotions_total",
		"Sparse read accumulators promoted to dense clocks.",
		func(s aerodrome.EngineStats) int64 { return s.SparsePromotions })
	engineCounter("aerodromed_engine_tree_demotions_total",
		"Hybrid thread clocks demoted tree-to-flat under join churn.",
		func(s aerodrome.EngineStats) int64 { return s.TreeDemotions })
	engineCounter("aerodromed_engine_tree_repromotions_total",
		"Hybrid thread clocks re-promoted after the hysteresis quiet streak.",
		func(s aerodrome.EngineStats) int64 { return s.TreeRepromotions })
	engineCounter("aerodromed_engine_width_promotions_total",
		"Auto thread clocks promoted flat-to-tree on observed width.",
		func(s aerodrome.EngineStats) int64 { return s.WidthPromotions })

	stage := func(name string) *obs.Histogram {
		h := &obs.Histogram{}
		m.reg.RegisterHistogram("aerodromed_stage_duration_seconds",
			obs.Labels(map[string]string{"stage": name}),
			"Request-path stage latency by stage name.", h)
		return h
	}
	m.stageParse = stage("parse")
	m.stageCheck = stage("check")
	m.stageFeed = stage("feed")
	m.stageFinalize = stage("finalize")
	return m
}

func (m *metrics) selectEngine(name string) {
	m.engineMu.Lock()
	c, ok := m.engines[name]
	if !ok {
		c = &atomic.Int64{}
		m.engines[name] = c
		// First sighting of an engine name lazily registers its labeled
		// Prometheus series, read through the same atomic.
		m.reg.CounterFunc("aerodromed_engine_selections_total",
			obs.Labels(map[string]string{"engine": name}),
			"Engine selections by engine name.", c.Load)
	}
	m.engineMu.Unlock()
	c.Add(1)
}

// countCheck settles one finished /v1/check report into the per-analysis
// counters: every analysis the check ran gets a check tick, and each
// non-clean verdict a violation tick. A report without an Analyses section
// ran the default set (atomicity alone), whose verdict is the legacy
// top-level fields.
func (m *metrics) countCheck(rep *aerodrome.Report) {
	if len(rep.Analyses) == 0 {
		if ac := m.analyses[string(aerodrome.AnalysisAtomicity)]; ac != nil {
			ac.checks.Add(1)
			if !rep.Serializable {
				ac.violations.Add(1)
			}
		}
		return
	}
	for _, ar := range rep.Analyses {
		ac := m.analyses[ar.Analysis]
		if ac == nil {
			continue
		}
		ac.checks.Add(1)
		if !ar.Clean {
			ac.violations.Add(1)
		}
	}
}

// addEngineStats folds one settled batch of engine introspection deltas
// into the server-wide aggregate.
func (m *metrics) addEngineStats(s aerodrome.EngineStats) {
	m.statsMu.Lock()
	m.engineStats.Add(s)
	m.statsMu.Unlock()
}

func (m *metrics) engineSnapshot() EngineMetrics {
	m.statsMu.Lock()
	s := m.engineStats
	m.statsMu.Unlock()
	return EngineMetrics{EngineStats: s, EpochHitRate: s.EpochHitRate()}
}

// snapshot renders the counters. The JSON shape is part of the service
// interface (the bench harness, the client library and the e2e script
// read it) — see MetricsSnapshot.
func (m *metrics) snapshot() MetricsSnapshot {
	uptime := time.Since(m.start).Seconds()
	events := m.eventsTotal.Load()
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(events) / uptime
	}
	m.engineMu.Lock()
	engines := make(map[string]int64, len(m.engines))
	for name, c := range m.engines {
		engines[name] = c.Load()
	}
	m.engineMu.Unlock()
	analyses := make(map[string]AnalysisMetrics, len(m.analyses))
	for name, ac := range m.analyses {
		analyses[name] = AnalysisMetrics{
			Checks:     ac.checks.Load(),
			Sessions:   ac.sessions.Load(),
			Violations: ac.violations.Load(),
		}
	}
	return MetricsSnapshot{
		Analyses: analyses,
		Checks: CheckMetrics{
			Active:   m.checksActive.Load(),
			Rejected: m.checksRejected.Load(),
			Total:    m.checksTotal.Load(),
		},
		Engine:           m.engineSnapshot(),
		EngineSelections: engines,
		EventsPerSecond:  perSec,
		EventsTotal:      events,
		Sessions: SessionMetrics{
			Active:   m.sessionsActive.Load(),
			Closed:   m.sessionsClosed.Load(),
			Evicted:  m.sessionsEvicted.Load(),
			Opened:   m.sessionsOpened.Load(),
			Rejected: m.sessionsRejected.Load(),
		},
		Stages: map[string]StageMetrics{
			"parse":    stageSnapshot(m.stageParse),
			"check":    stageSnapshot(m.stageCheck),
			"feed":     stageSnapshot(m.stageFeed),
			"finalize": stageSnapshot(m.stageFinalize),
		},
		UptimeSeconds:   uptime,
		ViolationsTotal: m.violationsTotal.Load(),
	}
}

// promContentType is the Prometheus text exposition format content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics is GET /metrics: the typed JSON snapshot plus the
// per-tenant section by default, Prometheus text with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", promContentType)
		s.metrics.reg.WritePrometheus(w)
		return
	}
	snap := s.metrics.snapshot()
	snap.Tenants = s.snapshotTenants()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
