package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the server's counter set, served as expvar-style JSON from
// GET /metrics. Everything is monotonic except the two active gauges; all
// updates are atomic so handlers never contend on a metrics lock.
type metrics struct {
	start time.Time

	sessionsActive   atomic.Int64
	sessionsOpened   atomic.Int64
	sessionsClosed   atomic.Int64
	sessionsEvicted  atomic.Int64
	sessionsRejected atomic.Int64

	checksActive   atomic.Int64
	checksTotal    atomic.Int64
	checksRejected atomic.Int64

	eventsTotal     atomic.Int64
	violationsTotal atomic.Int64

	// engineMu guards insertion into engines; the counters themselves are
	// atomic. Keyed by engine name, counting how often each engine was
	// selected (one per /v1/check and one per session) — the observability
	// for the `auto` default.
	engineMu sync.Mutex
	engines  map[string]*atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), engines: map[string]*atomic.Int64{}}
}

func (m *metrics) selectEngine(name string) {
	m.engineMu.Lock()
	c, ok := m.engines[name]
	if !ok {
		c = &atomic.Int64{}
		m.engines[name] = c
	}
	m.engineMu.Unlock()
	c.Add(1)
}

// snapshot renders the counters. The JSON shape is part of the service
// interface (the bench harness and the e2e script read it).
func (m *metrics) snapshot() map[string]any {
	uptime := time.Since(m.start).Seconds()
	events := m.eventsTotal.Load()
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(events) / uptime
	}
	// encoding/json emits map keys sorted, so a plain copy suffices.
	m.engineMu.Lock()
	engines := make(map[string]int64, len(m.engines))
	for name, c := range m.engines {
		engines[name] = c.Load()
	}
	m.engineMu.Unlock()
	return map[string]any{
		"uptime_seconds": uptime,
		"sessions": map[string]int64{
			"active":   m.sessionsActive.Load(),
			"opened":   m.sessionsOpened.Load(),
			"closed":   m.sessionsClosed.Load(),
			"evicted":  m.sessionsEvicted.Load(),
			"rejected": m.sessionsRejected.Load(),
		},
		"checks": map[string]int64{
			"active":   m.checksActive.Load(),
			"total":    m.checksTotal.Load(),
			"rejected": m.checksRejected.Load(),
		},
		"events_total":      events,
		"events_per_second": perSec,
		"violations_total":  m.violationsTotal.Load(),
		"engine_selections": engines,
	}
}

// handleMetrics is GET /metrics: the global counter snapshot plus the
// per-tenant section.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap["tenants"] = s.snapshotTenants()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
