package server

// Fault-tolerance tests: the journal's bounds, the backend's chunk-seq
// idempotency cache, the router's replay-horizon 409, and the retrying
// client. The failover happy path (backend dies mid-session, verdict
// byte-identical after replay) is pinned in TestRouterBackendDiesMidSession.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aerodrome"
)

func TestJournalBounds(t *testing.T) {
	chunk := bytes.Repeat([]byte("x"), 60)

	t.Run("memory overflow without spill truncates", func(t *testing.T) {
		j := newJournal(100, 1000, "", nil)
		j.append(chunk)
		if j.isTruncated() || j.size() != 60 {
			t.Fatalf("after first append: truncated=%v size=%d", j.isTruncated(), j.size())
		}
		j.append(chunk) // 120 > memLimit 100, no spill dir
		if !j.isTruncated() {
			t.Fatal("second append should have truncated (no spill dir)")
		}
		if j.size() != 0 || j.capLeft() != 0 {
			t.Fatalf("truncated journal: size=%d capLeft=%d, want 0/0", j.size(), j.capLeft())
		}
	})

	t.Run("spill keeps replay intact", func(t *testing.T) {
		j := newJournal(100, 1000, t.TempDir(), nil)
		j.append(chunk)
		j.append(chunk) // spills
		j.append(chunk) // spills
		if j.isTruncated() {
			t.Fatal("spill-backed journal truncated")
		}
		if j.size() != 180 {
			t.Fatalf("size = %d, want 180", j.size())
		}
		r, n := j.replayReader()
		if n != 180 {
			t.Fatalf("replay length = %d, want 180", n)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, bytes.Repeat([]byte("x"), 180)) {
			t.Fatalf("replay bytes differ: %d bytes", len(data))
		}
		j.free()
	})

	t.Run("spill preserves feed order for varying chunks", func(t *testing.T) {
		// Distinct, varying-size chunks across the spill crossover: once a
		// chunk has spilled, a later smaller chunk must not slip back into
		// the in-memory list — replay emits memory before spill, so it
		// would reorder the replayed stream and silently change verdicts.
		j := newJournal(100, 10000, t.TempDir(), nil)
		chunks := [][]byte{
			bytes.Repeat([]byte("a"), 90), // fits memory
			bytes.Repeat([]byte("b"), 70), // over memLimit → starts the spill
			[]byte("cc"),                  // would fit memory; must spill anyway
			bytes.Repeat([]byte("d"), 30),
		}
		var want []byte
		for _, ch := range chunks {
			j.append(ch)
			want = append(want, ch...)
		}
		if j.isTruncated() {
			t.Fatal("spill-backed journal truncated")
		}
		r, n := j.replayReader()
		if n != int64(len(want)) {
			t.Fatalf("replay length = %d, want %d", n, len(want))
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("replay bytes diverge from feed order:\n  got:  %q\n  want: %q", data, want)
		}
		j.free()
	})

	t.Run("total cap truncates even with spill", func(t *testing.T) {
		j := newJournal(100, 150, t.TempDir(), nil)
		j.append(chunk)
		j.append(chunk)
		j.append(chunk) // 180 > maxBytes 150
		if !j.isTruncated() {
			t.Fatal("journal over the total cap should truncate")
		}
	})

	t.Run("shared budget forces truncation and is released", func(t *testing.T) {
		budget := &journalBudget{max: 50}
		j := newJournal(100, 1000, "", budget)
		j.append(chunk) // 60 > budget 50, no spill
		if !j.isTruncated() {
			t.Fatal("budget-exhausted journal should truncate")
		}
		if got := budget.used.Load(); got != 0 {
			t.Fatalf("budget used = %d after truncation, want 0", got)
		}
		j2 := newJournal(100, 1000, "", budget)
		j2.append(chunk[:40])
		if got := budget.used.Load(); got != 40 {
			t.Fatalf("budget used = %d, want 40", got)
		}
		j2.free()
		if got := budget.used.Load(); got != 0 {
			t.Fatalf("budget used = %d after free, want 0", got)
		}
	})

	t.Run("freeze drops later appends but keeps the prefix", func(t *testing.T) {
		j := newJournal(1000, 1000, "", nil)
		j.append(chunk)
		j.freeze()
		j.append(chunk)
		if j.size() != 60 {
			t.Fatalf("frozen journal size = %d, want 60", j.size())
		}
		if j.isTruncated() {
			t.Fatal("freeze must not truncate: the prefix still replays")
		}
		if j.capLeft() != 0 {
			t.Fatalf("frozen capLeft = %d, want 0", j.capLeft())
		}
	})
}

// TestChunkSeqIdempotentFeed pins the backend half of the retry contract:
// re-POSTing the last sequence number replays the cached response bytes
// exactly and does not feed the chunk twice.
func TestChunkSeqIdempotentFeed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sid := createSession(t, ts)

	feed := func(seq, body string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+sid+"/events",
			strings.NewReader(body))
		if seq != "" {
			req.Header.Set(ChunkSeqHeader, seq)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	status, first := feed("0", "t1|begin|0\n")
	if status != http.StatusOK {
		t.Fatalf("feed seq 0: HTTP %d", status)
	}
	status, replay := feed("0", "t1|begin|0\n")
	if status != http.StatusOK {
		t.Fatalf("retried feed seq 0: HTTP %d", status)
	}
	if replay != first {
		t.Fatalf("retried response differs:\n  first:  %s\n  replay: %s", first, replay)
	}
	var v SessionView
	if err := json.Unmarshal([]byte(replay), &v); err != nil {
		t.Fatal(err)
	}
	if v.Events != 1 {
		t.Fatalf("events = %d after retry, want 1 (chunk must not re-apply)", v.Events)
	}

	if status, _ := feed("1", "t1|end|0\n"); status != http.StatusOK {
		t.Fatalf("feed seq 1: HTTP %d", status)
	}
	status, body := feed("1", "t1|end|0\n")
	if status != http.StatusOK {
		t.Fatalf("retried feed seq 1: HTTP %d", status)
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Events != 2 {
		t.Fatalf("events = %d, want 2", v.Events)
	}

	if status, _ := feed("bogus", ""); status != http.StatusBadRequest {
		t.Fatalf("bogus seq header: HTTP %d, want 400", status)
	}

	// A sequence gap means chunks were applied somewhere this engine never
	// saw them (failover drift): feeding past the hole must be refused so
	// the client replays from scratch instead of silently diverging.
	status, _ = feed("5", "t2|begin|0\n")
	if status != http.StatusConflict {
		t.Fatalf("gapped seq 5 after seq 1: HTTP %d, want 409", status)
	}

	// The gap rejection did not disturb the accepted prefix: seq 2 (the
	// true successor) still applies.
	if status, _ := feed("2", "t2|begin|0\n"); status != http.StatusOK {
		t.Fatalf("feed seq 2 after rejected gap: HTTP %d", status)
	}
}

// createSession opens a session against a raw test server and returns
// its id.
func createSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d", resp.StatusCode)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// TestRouterJournalHorizon pins the one remaining terminal loss: a chunk
// larger than the journal cap streams through (the feed itself succeeds)
// but costs the session its replay horizon, so backend death afterwards
// is a Retry-After-guarded 409, not a silent wrong answer.
func TestRouterJournalHorizon(t *testing.T) {
	c := newTestClusterTuned(t, 2, Config{}, func(rc *RouterConfig) {
		rc.JournalMemBytes = 16
		rc.JournalMaxBytes = 16 // any real chunk overflows
	})

	// Place a keyed session and find its backend.
	var sid, key, backendURL string
	for i := 0; i < 64 && sid == ""; i++ {
		k := fmt.Sprintf("horizon-%d", i)
		req, _ := http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/sessions", nil)
		req.Header.Set(RouterTraceHeader, k)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var v SessionView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		sid, key, backendURL = v.ID, k, resp.Header.Get(RouterBackendHeader)
	}

	// Over-cap chunk: applied fine, journal truncated.
	req, _ := http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/sessions/"+sid+"/events",
		strings.NewReader("t1|begin|0\nt1|w(x)|1\nt1|end|0\n"))
	req.Header.Set(RouterTraceHeader, key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("over-cap feed: HTTP %d, want 200 (streams through)", resp.StatusCode)
	}

	// Kill the session's backend, wait for the prober.
	for i, ts := range c.backTS {
		if ts.URL == backendURL {
			ts.Close()
			_ = i
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(c.routerTS.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Healthy int `json:"backends_healthy"`
		}
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h.Healthy == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the dead backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	req, _ = http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/sessions/"+sid+"/events",
		strings.NewReader("t2|begin|0\n"))
	req.Header.Set(RouterTraceHeader, key)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ra := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-crash feed past horizon: HTTP %d, want 409", resp.StatusCode)
	}
	if ra == "" {
		t.Fatal("horizon 409 without Retry-After")
	}
}

// TestRouterGapRejectionNotJournaled pins the journaling discipline for
// refused chunks: a backend 409 for a chunk-sequence gap left the session
// untouched, so the router must not record the rejected chunk (a later
// failover replay would otherwise reproduce state containing it) nor
// freeze the journal.
func TestRouterGapRejectionNotJournaled(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	key := "gap-journal-key"
	req, _ := http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/sessions", nil)
	req.Header.Set(RouterTraceHeader, key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v SessionView
	json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	sid := v.ID

	feed := func(seq, body string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/sessions/"+sid+"/events",
			strings.NewReader(body))
		req.Header.Set(RouterTraceHeader, key)
		req.Header.Set(ChunkSeqHeader, seq)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	first := "t1|begin|0\n"
	if status := feed("0", first); status != http.StatusOK {
		t.Fatalf("feed seq 0: HTTP %d", status)
	}
	if status := feed("5", "t1|end|0\n"); status != http.StatusConflict {
		t.Fatalf("gapped seq 5: HTTP %d, want 409", status)
	}

	c.router.mu.Lock()
	route := c.router.routes[sid]
	c.router.mu.Unlock()
	if route == nil {
		t.Fatal("no route for routed session")
	}
	if got := route.journal.size(); got != int64(len(first)) {
		t.Fatalf("journal size = %d after gap rejection, want %d (rejected chunk must not be recorded)",
			got, len(first))
	}
	if route.journal.isFrozen() {
		t.Fatal("gap rejection froze the journal: later applied chunks would be lost to replay")
	}

	// The true successor still applies and is journaled.
	second := "t1|end|0\n"
	if status := feed("1", second); status != http.StatusOK {
		t.Fatalf("feed seq 1 after rejected gap: HTTP %d", status)
	}
	if got := route.journal.size(); got != int64(len(first)+len(second)) {
		t.Fatalf("journal size = %d after seq 1, want %d", got, len(first)+len(second))
	}
}

// TestFinalizeIdempotentDelete pins the backend's finalize cache: a
// re-sent DELETE within the cache window replays the first response
// byte-identically instead of answering 404 — the lost-response retry a
// client or router issues must not surface a successful finalize as a
// hard failure.
func TestFinalizeIdempotentDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sid := createSession(t, ts)

	resp, err := http.Post(ts.URL+"/v1/sessions/"+sid+"/events", "text/plain",
		strings.NewReader("t1|begin|0\nt1|w(x)|1\nt1|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	del := func(id string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	status, first := del(sid)
	if status != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", status)
	}
	status, replay := del(sid)
	if status != http.StatusOK {
		t.Fatalf("retried DELETE: HTTP %d, want 200 (cached finalize replay)", status)
	}
	if replay != first {
		t.Fatalf("retried DELETE response differs:\n  first:  %s\n  replay: %s", first, replay)
	}
	if status, _ := del("00000000000000000000000000000000"); status != http.StatusNotFound {
		t.Fatalf("DELETE of never-existed session: HTTP %d, want 404", status)
	}
}

// TestClientBackoffClamp pins the overflow guard: attempts far past the
// shift width must neither panic nor exceed RetryMax.
func TestClientBackoffClamp(t *testing.T) {
	c := &Client{RetryBase: time.Second, RetryMax: 2 * time.Second}
	for _, attempt := range []int{0, 1, 34, 63, 500} {
		d := c.backoff(attempt, nil)
		if d <= 0 || d > 2*time.Second {
			t.Fatalf("backoff(attempt=%d) = %v, want in (0, 2s]", attempt, d)
		}
	}
}

// TestClientRetries pins the client half of the contract: transport-level
// and 503 failures are retried with the body rewound, Retry-After is
// honored, and MaxRetries < 0 disables retries.
func TestClientRetries(t *testing.T) {
	std := []byte("t1|begin|0\nt1|w(x)|1\nt1|end|0\n")
	want := wantReport(t, std, aerodrome.Optimized)

	var calls atomic.Int64
	var lastBody atomic.Value
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		body, _ := io.ReadAll(r.Body)
		lastBody.Store(string(body))
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		rep := wantReport(t, body, aerodrome.Optimized)
		json.NewEncoder(w).Encode(rep)
	}))
	defer backend.Close()

	client := &Client{BaseURL: backend.URL, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}
	rep, err := client.Check(bytes.NewReader(std), "optimized")
	if err != nil {
		t.Fatalf("Check with two 503s: %v", err)
	}
	sameReport(t, "retried-check", rep, want)
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s + success)", got)
	}
	if got := lastBody.Load().(string); got != string(std) {
		t.Fatalf("retried body was not rewound: %q", got)
	}

	calls.Store(0)
	noRetry := &Client{BaseURL: backend.URL, MaxRetries: -1}
	if _, err := noRetry.Check(bytes.NewReader(std), "optimized"); err == nil {
		t.Fatal("MaxRetries<0 should surface the first 503")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("no-retry client made %d calls, want 1", got)
	}
}

// TestClientTimeout pins the per-attempt deadline: a hung server costs
// Timeout per attempt instead of wedging forever.
func TestClientTimeout(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer hung.Close()
	defer close(release)

	client := &Client{BaseURL: hung.URL, Timeout: 50 * time.Millisecond, MaxRetries: -1}
	start := time.Now()
	_, err := client.Check(bytes.NewReader([]byte("t1|begin|0\n")), "")
	if err == nil {
		t.Fatal("Check against a hung server should time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

// TestClientRingFallback pins the ring awareness: when the router stops
// answering, the client re-resolves via the last-seen /metrics ring and
// sends the one-shot check directly to a healthy backend.
func TestClientRingFallback(t *testing.T) {
	_, backendTS := newTestServer(t, Config{})
	std := []byte("t1|begin|0\nt1|w(x)|1\nt1|end|0\n")
	want := wantReport(t, std, aerodrome.Auto)

	// A "router" that publishes the ring but fails every check.
	router := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			json.NewEncoder(w).Encode(map[string]any{
				"ring_epoch": 7,
				"backends": map[string]any{
					backendTS.URL: map[string]any{"healthy": true},
				},
			})
			return
		}
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer router.Close()

	client := &Client{BaseURL: router.URL, MaxRetries: 1,
		RetryBase: time.Millisecond, RetryMax: time.Millisecond}
	rep, err := client.Check(bytes.NewReader(std), "")
	if err != nil {
		t.Fatalf("Check with dead router and healthy ring backend: %v", err)
	}
	sameReport(t, "ring-fallback", rep, want)
	if got := client.RingEpoch(); got != 7 {
		t.Fatalf("RingEpoch = %d, want 7", got)
	}
}
