package server

// Client is the thin HTTP client behind `aerodrome -remote`: it speaks
// the /v1 wire format and maps service errors back to Go errors, so the
// CLI front end renders remote verdicts exactly like local ones.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strings"

	"aerodrome"
)

// Client calls an aerodromed instance — or a shard router, which speaks
// the same wire format plus two routing headers.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8421".
	BaseURL string
	// Tenant, when set, is sent as the tenant header: the server's quota
	// and metrics bucket, and the router's routing-key fallback.
	Tenant string
	// TraceKey, when set, is sent as the trace routing key, pinning this
	// client's requests to one consistent-hash backend behind a router.
	TraceKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// do sends a request with the client's routing headers applied.
func (c *Client) do(method, url, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.Tenant != "" {
		req.Header.Set(DefaultTenantHeader, c.Tenant)
	}
	if c.TraceKey != "" {
		req.Header.Set(RouterTraceHeader, c.TraceKey)
	}
	return c.httpClient().Do(req)
}

// remoteError decodes the service's {"error": ...} body into an error.
func remoteError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("remote: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("remote: HTTP %d", resp.StatusCode)
}

// Check streams one whole trace (STD or binary; the server sniffs) to
// POST /v1/check with the given algorithm ("" for the server default) and
// returns the Report.
func (c *Client) Check(r io.Reader, algo string) (*aerodrome.Report, error) {
	url := c.url("/v1/check")
	if algo != "" {
		url += "?" + neturl.Values{"algo": {algo}}.Encode()
	}
	resp, err := c.do(http.MethodPost, url, "application/octet-stream", r)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("remote: decoding report: %w", err)
	}
	return &rep, nil
}

// Session is a remote incremental session.
type Session struct {
	c  *Client
	ID string
}

// NewSession opens an incremental session ("" selects the server's
// default algorithm).
func (c *Client) NewSession(algo string) (*Session, error) {
	url := c.url("/v1/sessions")
	if algo != "" {
		url += "?" + neturl.Values{"algo": {algo}}.Encode()
	}
	resp, err := c.do(http.MethodPost, url, "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, remoteError(resp)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("remote: decoding session: %w", err)
	}
	return &Session{c: c, ID: v.ID}, nil
}

// Feed posts one STD chunk and returns the post-chunk snapshot.
func (s *Session) Feed(chunk []byte) (*SessionView, error) {
	resp, err := s.c.do(http.MethodPost,
		s.c.url("/v1/sessions/"+s.ID+"/events"), "text/plain", bytes.NewReader(chunk))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusBadRequest, http.StatusConflict:
		// All three carry a SessionView body: 400 = this chunk failed the
		// session, 409 = the session had already failed.
	default:
		return nil, remoteError(resp)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("remote: decoding snapshot: %w", err)
	}
	if v.State == stateFailed {
		return &v, fmt.Errorf("remote: session failed: %s", v.Error)
	}
	return &v, nil
}

// Close finalizes the session and returns the final Report.
func (s *Session) Close() (*aerodrome.Report, error) {
	resp, err := s.c.do(http.MethodDelete, s.c.url("/v1/sessions/"+s.ID), "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("remote: decoding report: %w", err)
	}
	return &rep, nil
}
