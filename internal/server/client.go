package server

// Client is the HTTP client behind `aerodrome -remote`: it speaks the
// /v1 wire format and maps service errors back to Go errors, so the CLI
// front end renders remote verdicts exactly like local ones.
//
// It is also the reference implementation of the retry contract the
// fault-tolerant session plane asks of clients (documented in
// examples/server/README.md): every request runs under a per-attempt
// timeout; transport errors and retryable statuses (429, 502, 503) are
// retried with capped exponential backoff plus jitter, honoring
// Retry-After when the server sent one; /v1/check bodies are re-POSTed by
// rewinding an io.ReadSeeker; session chunks carry strictly increasing
// sequence numbers so a retried feed is answered from the server's
// idempotency cache instead of being applied twice; and the router's
// ring-epoch metric is consulted on repeated failure, so a client stuck
// on a dead router can re-resolve to a surviving backend instead of
// hammering the corpse.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aerodrome"
)

// Client calls an aerodromed instance — or a shard router, which speaks
// the same wire format plus two routing headers.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8421".
	BaseURL string
	// Tenant, when set, is sent as the tenant header: the server's quota
	// and metrics bucket, and the router's routing-key fallback.
	Tenant string
	// TraceKey, when set, is sent as the trace routing key, pinning this
	// client's requests to one consistent-hash backend behind a router.
	TraceKey string
	// HTTPClient defaults to http.DefaultClient. Per-request deadlines
	// come from Timeout, so the client's own Timeout field can stay zero.
	HTTPClient *http.Client
	// Timeout bounds each attempt (default 30s; negative disables). A
	// hung backend then costs one attempt, not a wedged CLI.
	Timeout time.Duration
	// MaxRetries is how many times a failed request is retried (default
	// 4; negative disables retries). Only rewindable requests retry.
	MaxRetries int
	// RetryBase is the first backoff step (default 100ms); RetryMax caps
	// the exponential growth (default 2s). Retry-After from the server
	// overrides a shorter backoff, never a longer one.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Ring cache: the last-seen router topology, refreshed from /metrics
	// when requests fail. A changed ring_epoch means backends came or
	// went; the healthy list is the direct-fallback pool for one-shot
	// checks when the router itself is unreachable.
	ringMu       sync.Mutex
	ringEpoch    uint64
	ringBackends []string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout < 0 {
		return 0
	}
	if c.Timeout == 0 {
		return 30 * time.Second
	}
	return c.Timeout
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.RetryBase
}

func (c *Client) retryMax() time.Duration {
	if c.RetryMax <= 0 {
		return 2 * time.Second
	}
	return c.RetryMax
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// retryableStatus reports whether a response status is worth retrying:
// explicit back-off signals (429, 503) and the gateway-lost-the-backend
// 502 a pre-failover router could still emit.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusBadGateway
}

// retryAfter extracts a Retry-After delay in seconds, or 0.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
	if err != nil || secs < 0 || secs > 300 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff computes the jittered, capped exponential delay before retry
// attempt (0-based), floored by the server's Retry-After when present.
func (c *Client) backoff(attempt int, resp *http.Response) time.Duration {
	max := c.retryMax()
	d := c.retryBase()
	// Double step by step, stopping at the cap: a single shift by attempt
	// would overflow for large MaxRetries and feed rand.Int63n a negative.
	for i := 0; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d <= 0 || d > max {
		d = max
	}
	// Full jitter in [d/2, d): desynchronizes a fleet of retrying clients
	// without starving any of them.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if ra := retryAfter(resp); ra > d {
		d = ra
	}
	return d
}

// attempt is one request attempt under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, url, contentType string, body io.Reader, seq int64) (*http.Response, context.CancelFunc, error) {
	cancel := context.CancelFunc(func() {})
	if t := c.timeout(); t > 0 {
		ctx, cancel = context.WithTimeout(ctx, t)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.Tenant != "" {
		req.Header.Set(DefaultTenantHeader, c.Tenant)
	}
	if c.TraceKey != "" {
		req.Header.Set(RouterTraceHeader, c.TraceKey)
	}
	if seq >= 0 {
		req.Header.Set(ChunkSeqHeader, strconv.FormatInt(seq, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// do sends a request with retries. body may be nil or an io.ReadSeeker
// (rewound before each retry); any other reader disables retries after
// the first byte is gone. The returned response's Body must be closed by
// the caller; closing it releases the attempt's timeout.
func (c *Client) do(ctx context.Context, method, url, contentType string, body io.Reader, seq int64) (*http.Response, error) {
	seeker, rewindable := body.(io.ReadSeeker)
	if body == nil {
		rewindable = true
	}
	retries := c.maxRetries()
	if !rewindable {
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 && seeker != nil {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return nil, fmt.Errorf("remote: rewinding request body for retry: %w", err)
			}
		}
		resp, cancel, err := c.attempt(ctx, method, url, contentType, body, seq)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return closeCancelBody{resp: resp, cancel: cancel}.wrap(), nil
		}
		var wait time.Duration
		if err != nil {
			lastErr = err
		} else {
			lastErr = remoteError(resp)
			wait = retryAfter(resp)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			cancel()
		}
		if attempt >= retries || ctx.Err() != nil {
			return nil, lastErr
		}
		// Peek at the router's ring epoch between attempts: a bumped epoch
		// means the topology changed under us and the next attempt already
		// routes around the failure, so the wait stays short.
		c.refreshRing(ctx)
		if b := c.backoff(attempt, nil); b > wait {
			wait = b
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, lastErr
		}
	}
}

// closeCancelBody ties an attempt's timeout cancel to the response body:
// the deadline must outlive c.do (the caller still reads the body) and
// must be released when the caller is done.
type closeCancelBody struct {
	resp   *http.Response
	cancel context.CancelFunc
}

func (b closeCancelBody) wrap() *http.Response {
	b.resp.Body = &cancelOnClose{ReadCloser: b.resp.Body, cancel: b.cancel}
	return b.resp
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// RingEpoch reports the router's last-seen ring epoch (0 before any
// refresh). The epoch bumps on every backend health transition, so a
// changed value between calls means the topology moved.
func (c *Client) RingEpoch() uint64 {
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	return c.ringEpoch
}

// refreshRing polls BaseURL's /metrics for the ring epoch and healthy
// backend set. Errors are swallowed: the ring cache is an optimization
// (plain backends have no ring and that is fine).
func (c *Client) refreshRing(ctx context.Context) {
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m struct {
		RouterMetricsSnapshot
		// RingEpoch shadows the embedded field with a pointer for
		// presence detection: a plain backend's /metrics has no
		// ring_epoch key, and its document must not clobber the cache.
		RingEpoch *uint64 `json:"ring_epoch"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m) != nil || m.RingEpoch == nil {
		return
	}
	var healthy []string
	for name, b := range m.Backends {
		if b.Healthy {
			healthy = append(healthy, name)
		}
	}
	sort.Strings(healthy)
	c.ringMu.Lock()
	c.ringEpoch, c.ringBackends = *m.RingEpoch, healthy
	c.ringMu.Unlock()
}

// fallbackBackends returns the cached healthy backends — the direct
// targets of last resort when the router stops answering.
func (c *Client) fallbackBackends() []string {
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	return append([]string(nil), c.ringBackends...)
}

// remoteError decodes the service's {"error": ...} body into an error.
func remoteError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	// Reading consumed the body; callers that retry re-read via rewind.
	resp.Body = io.NopCloser(bytes.NewReader(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("remote: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("remote: HTTP %d", resp.StatusCode)
}

// Check streams one whole trace (STD or binary; the server sniffs) to
// POST /v1/check with the given algorithm ("" for the server default) and
// returns the Report. Pass an io.ReadSeeker (a *os.File or *bytes.Reader)
// to make the request retryable.
func (c *Client) Check(r io.Reader, algo string) (*aerodrome.Report, error) {
	return c.CheckContext(context.Background(), r, algo)
}

// CheckContext is Check under a caller-supplied context.
func (c *Client) CheckContext(ctx context.Context, r io.Reader, algo string) (*aerodrome.Report, error) {
	return c.CheckAnalysesContext(ctx, r, algo, "")
}

// CheckAnalyses is Check with an analysis set ("atomicity,hbrace"; "" for
// the server default). The report's top-level fields carry the atomicity
// verdict; per-analysis verdicts land in Report.Analyses.
func (c *Client) CheckAnalyses(r io.Reader, algo, analyses string) (*aerodrome.Report, error) {
	return c.CheckAnalysesContext(context.Background(), r, algo, analyses)
}

// CheckAnalysesContext is CheckAnalyses under a caller-supplied context.
func (c *Client) CheckAnalysesContext(ctx context.Context, r io.Reader, algo, analyses string) (*aerodrome.Report, error) {
	path := "/v1/check"
	q := neturl.Values{}
	if algo != "" {
		q.Set("algo", algo)
	}
	if analyses != "" {
		q.Set("analyses", analyses)
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.do(ctx, http.MethodPost, c.url(path), "application/octet-stream", r, -1)
	if err != nil {
		// Router gone? A one-shot check is stateless, so any healthy
		// backend from the last-seen ring can serve it directly.
		seeker, ok := r.(io.ReadSeeker)
		if !ok || ctx.Err() != nil {
			return nil, err
		}
		for _, backend := range c.fallbackBackends() {
			if _, serr := seeker.Seek(0, io.SeekStart); serr != nil {
				return nil, err
			}
			direct := &Client{BaseURL: backend, Tenant: c.Tenant, TraceKey: c.TraceKey,
				HTTPClient: c.HTTPClient, Timeout: c.Timeout, MaxRetries: -1}
			if rep, derr := direct.CheckAnalysesContext(ctx, seeker, algo, analyses); derr == nil {
				return rep, nil
			}
		}
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("remote: decoding report: %w", err)
	}
	return &rep, nil
}

// Session is a remote incremental session. Feed chunks are numbered with
// strictly increasing sequence numbers, so retried feeds are answered
// from the server's idempotency cache instead of being applied twice.
type Session struct {
	c   *Client
	ID  string
	seq atomic.Int64
}

// NewSession opens an incremental session ("" selects the server's
// default algorithm).
func (c *Client) NewSession(algo string) (*Session, error) {
	return c.NewSessionContext(context.Background(), algo)
}

// NewSessionContext is NewSession under a caller-supplied context.
func (c *Client) NewSessionContext(ctx context.Context, algo string) (*Session, error) {
	return c.NewSessionAnalysesContext(ctx, algo, "")
}

// NewSessionAnalyses opens an incremental session running an analysis set
// ("atomicity,hbrace"; "" for the server default, atomicity alone).
func (c *Client) NewSessionAnalyses(algo, analyses string) (*Session, error) {
	return c.NewSessionAnalysesContext(context.Background(), algo, analyses)
}

// NewSessionAnalysesContext is NewSessionAnalyses under a caller-supplied
// context.
func (c *Client) NewSessionAnalysesContext(ctx context.Context, algo, analyses string) (*Session, error) {
	path := "/v1/sessions"
	q := neturl.Values{}
	if algo != "" {
		q.Set("algo", algo)
	}
	if analyses != "" {
		q.Set("analyses", analyses)
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.do(ctx, http.MethodPost, c.url(path), "application/json", nil, -1)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, remoteError(resp)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("remote: decoding session: %w", err)
	}
	s := &Session{c: c, ID: v.ID}
	s.seq.Store(-1)
	return s, nil
}

// Feed posts one STD chunk and returns the post-chunk snapshot.
func (s *Session) Feed(chunk []byte) (*SessionView, error) {
	return s.FeedContext(context.Background(), chunk)
}

// FeedContext is Feed under a caller-supplied context.
func (s *Session) FeedContext(ctx context.Context, chunk []byte) (*SessionView, error) {
	seq := s.seq.Add(1)
	resp, err := s.c.do(ctx, http.MethodPost,
		s.c.url("/v1/sessions/"+s.ID+"/events"), "text/plain", bytes.NewReader(chunk), seq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusBadRequest, http.StatusConflict:
		// All three carry a SessionView body: 400 = this chunk failed the
		// session, 409 = the session had already failed (or, behind a
		// router, is unrecoverable — that one has no view and decodes to
		// an error below).
	default:
		return nil, remoteError(resp)
	}
	var v SessionView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("remote: decoding snapshot: %w", err)
	}
	if v.ID == "" && resp.StatusCode == http.StatusConflict {
		return nil, fmt.Errorf("remote: session lost (HTTP 409)")
	}
	if v.State == stateFailed {
		return &v, fmt.Errorf("remote: session failed: %s", v.Error)
	}
	return &v, nil
}

// Close finalizes the session and returns the final Report.
func (s *Session) Close() (*aerodrome.Report, error) {
	return s.CloseContext(context.Background())
}

// CloseContext is Close under a caller-supplied context.
func (s *Session) CloseContext(ctx context.Context) (*aerodrome.Report, error) {
	resp, err := s.c.do(ctx, http.MethodDelete, s.c.url("/v1/sessions/"+s.ID), "", nil, -1)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("remote: decoding report: %w", err)
	}
	return &rep, nil
}
