package server

// Concurrency and resource management: the acceptance bar is ≥64
// concurrent streaming sessions with verdicts byte-identical to
// sequential CheckSTD, over-admission rejected with 429/503 instead of
// queued, and a graceful drain that finishes in-flight checks. Run under
// -race in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"aerodrome"
)

// TestConcurrentSessionStress runs 96 streaming sessions at once (each
// its own engine), interleaved with one-shot checks, and requires every
// verdict to be byte-identical to the sequential checker.
func TestConcurrentSessionStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Raise both admission caps well past the worker count: this test
	// measures correctness under concurrency, not rejection (that is
	// TestSessionAdmissionControl / TestCheckAdmissionControl).
	_, ts := newTestServer(t, Config{MaxSessions: 256, MaxConcurrentChecks: 128})

	type tc struct {
		name string
		std  []byte
		want *aerodrome.Report
	}
	var cases []tc
	for name, std := range goldenSTD(t) {
		cases = append(cases, tc{name, std, wantReport(t, std, aerodrome.Auto)})
	}
	for name, std := range paperSTD(t) {
		cases = append(cases, tc{name, std, wantReport(t, std, aerodrome.Auto)})
	}

	const workers = 96
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		c := cases[w%len(cases)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Vary chunk sizes per worker so line splits differ.
			chunk := 64 + 97*(w%13)
			client := &Client{BaseURL: ts.URL}
			sess, err := client.NewSession("")
			if err != nil {
				errs <- fmt.Errorf("worker %d: %v", w, err)
				return
			}
			for i := 0; i < len(c.std); i += chunk {
				end := i + chunk
				if end > len(c.std) {
					end = len(c.std)
				}
				if _, err := sess.Feed(c.std[i:end]); err != nil {
					errs <- fmt.Errorf("worker %d feed: %v", w, err)
					return
				}
			}
			rep, err := sess.Close()
			if err != nil {
				errs <- fmt.Errorf("worker %d close: %v", w, err)
				return
			}
			if rep.Serializable != c.want.Serializable || rep.Events != c.want.Events {
				errs <- fmt.Errorf("worker %d (%s): report %+v, want %+v", w, c.name, rep, c.want)
				return
			}
			if !rep.Serializable && rep.Violation.EventIndex != c.want.Violation.EventIndex {
				errs <- fmt.Errorf("worker %d (%s): violation at %d, want %d",
					w, c.name, rep.Violation.EventIndex, c.want.Violation.EventIndex)
				return
			}
			// One-shot checks ride along on every fourth worker (no
			// postCheck here: t.Fatal must not run off the test goroutine).
			if w%4 == 0 {
				resp, err := http.Post(ts.URL+"/v1/check", "application/octet-stream", bytes.NewReader(c.std))
				if err != nil {
					errs <- fmt.Errorf("worker %d check: %v", w, err)
					return
				}
				var got aerodrome.Report
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("worker %d check decode: %v", w, err)
					return
				}
				if resp.StatusCode != http.StatusOK || got.Serializable != c.want.Serializable {
					errs <- fmt.Errorf("worker %d (%s): check HTTP %d verdict %v, want %v",
						w, c.name, resp.StatusCode, got.Serializable, c.want.Serializable)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionAdmissionControl pins the 429 on over-admission and that
// closing a session frees its slot.
func TestSessionAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})
	client := &Client{BaseURL: ts.URL}
	s1, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSession(""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-admission: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if _, err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.NewSession(""); err != nil {
		t.Fatalf("slot not freed after close: %v", err)
	}
}

// TestCheckAdmissionControl pins the 503 when MaxConcurrentChecks is
// saturated: one check is held in flight by a body that never finishes
// until we let it.
func TestCheckAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrentChecks: 1})

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/check", "text/plain", pr)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Hold the slot: write a first line, keep the body open.
	if _, err := pw.Write([]byte("t0|begin|0\n")); err != nil {
		t.Fatal(err)
	}

	// The slot is taken; a second check must be rejected 503 (poll briefly:
	// the first request races to the handler).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/check", "text/plain", strings.NewReader("t0|begin|0\nt0|end|0\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturated check never rejected: last HTTP %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the in-flight check; the slot frees and checks succeed again.
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/check", "text/plain", strings.NewReader("t0|begin|0\nt0|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestSessionBusyRejected pins the per-session no-queueing rule: while a
// feed is in flight, a concurrent feed answers 429 instead of piling up.
func TestSessionBusyRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	// White box: hold the stream lock as an in-flight feed would. The
	// snapshot lock stays free, so GET must still answer immediately.
	s.mu.Lock()
	inner := s.sessions[sess.ID]
	s.mu.Unlock()
	inner.feedMu.Lock()
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + sess.ID)
	if err != nil {
		inner.feedMu.Unlock()
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		inner.feedMu.Unlock()
		t.Fatalf("GET during in-flight feed: HTTP %d, want 200", gresp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/events", "text/plain",
		strings.NewReader("t0|begin|0\n"))
	inner.feedMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy session: HTTP %d, want 429", resp.StatusCode)
	}
}

// TestSessionRemovalRaces pins the lookup/removal races: a feed that
// lost the race with DELETE answers 404 instead of silently dropping the
// chunk, and of two sequential DELETEs exactly one finalizes — the
// second replays the cached report (finalize is idempotent) and the
// closed counter moves once.
func TestSessionRemovalRaces(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Second DELETE: the session is gone, but the finalize cache replays
	// the report instead of 404ing (a retried Close must not surface a
	// successful finalize as a lost session).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sess.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second DELETE: HTTP %d, want 200 (cached finalize replay)", resp.StatusCode)
	}
	if got := s.metrics.sessionsClosed.Load(); got != 1 {
		t.Fatalf("sessions_closed = %d, want 1 (replay must not re-finalize)", got)
	}

	// Feed racing a removal: the handler's window is lookup-succeeded but
	// removal-finished-first. Reproduce that state exactly — session still
	// reachable for lookup, removed flag already set — and require the
	// feed to see it rather than dropping the chunk into the finalized
	// checker.
	sess2, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	inner := s.sessions[sess2.ID]
	s.mu.Unlock()
	inner.mu.Lock()
	inner.removed = true
	inner.mu.Unlock()
	resp, err = http.Post(ts.URL+"/v1/sessions/"+sess2.ID+"/events", "text/plain",
		strings.NewReader("t0|begin|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("feed after removal: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestStalledUploadTimesOut pins the availability property behind the
// per-read body deadline: a client that stops sending mid-chunk gets 408
// within BodyReadTimeout, the session lock is released (snapshots answer
// again), and the session remains usable.
func TestStalledUploadTimesOut(t *testing.T) {
	_, ts := newTestServer(t, Config{BodyReadTimeout: 150 * time.Millisecond})
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/events", "text/plain", pr)
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	if _, err := pw.Write([]byte("t0|begin|0\nt0|w(")); err != nil {
		t.Fatal(err)
	}
	// ...and stall. The handler must give up on its own.
	select {
	case code := <-done:
		if code != http.StatusRequestTimeout {
			t.Fatalf("stalled upload: HTTP %d, want 408", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled upload never timed out")
	}
	pw.Close()

	// The session survived, kept the complete-line events, and accepts
	// the rest of the stream (the stalled partial line was buffered, and
	// stream semantics let the client resume mid-line).
	view, err := sess.Feed([]byte("x)|1\nt0|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if view.State != stateActive || view.Events != 3 {
		t.Fatalf("post-stall view %+v, want active with 3 events", view)
	}
	rep, err := sess.Close()
	if err != nil || !rep.Serializable || rep.Events != 3 {
		t.Fatalf("post-stall close: %+v, %v", rep, err)
	}
}

// TestDaemonGracefulDrain boots the real daemon loop, holds a check in
// flight, cancels the daemon context (the SIGTERM path), and requires (a)
// new work to be rejected while draining, (b) the in-flight check to
// finish with a correct verdict, and (c) RunDaemon to return nil within
// the deadline.
func TestDaemonGracefulDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	daemonErr := make(chan error, 1)
	go func() {
		daemonErr <- RunDaemon(ctx, DaemonConfig{
			Addr:            "127.0.0.1:0",
			ShutdownTimeout: 5 * time.Second,
			Ready:           ready,
		})
	}()
	addr := <-ready
	base := "http://" + addr

	// Hold one check in flight with a half-written body.
	pr, pw := io.Pipe()
	type result struct {
		rep *aerodrome.Report
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/check", "text/plain", pr)
		if err != nil {
			inflight <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		var rep aerodrome.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			inflight <- result{nil, err}
			return
		}
		inflight <- result{&rep, nil}
	}()
	if _, err := pw.Write([]byte("t0|begin|0\nt0|w(x)|1\n")); err != nil {
		t.Fatal(err)
	}

	// Wait until the check is actually admitted — cancelling before the
	// handler passes the draining gate would get it rejected instead of
	// drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m struct {
			Checks struct{ Active int64 } `json:"checks"`
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.Checks.Active == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight check never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Begin the drain.
	cancel()

	// New work is rejected while draining (the listener may also already
	// be closed — both count as "not admitted").
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/check", "text/plain", strings.NewReader("t0|begin|0\n"))
		if err != nil {
			break // listener closed
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never started: last HTTP %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Finish the in-flight body: the drain must wait for it.
	if _, err := pw.Write([]byte("t0|end|0\n")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight check failed during drain: %v", res.err)
	}
	if !res.rep.Serializable || res.rep.Events != 3 {
		t.Fatalf("in-flight report %+v, want serializable with 3 events", res.rep)
	}

	select {
	case err := <-daemonErr:
		if err != nil {
			t.Fatalf("RunDaemon: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after drain")
	}
}
