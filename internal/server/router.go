package server

// The shard router: aerodromed's scale-out front end. One engine per
// stream is the service's unit of work, so horizontal scaling is routing —
// spread sessions and one-shot checks across N backend aerodromed
// instances and keep every stream pinned to one backend (the checker is
// stateful per trace). Routing is a consistent hash over a client-supplied
// trace key (or the tenant, or round-robin for keyless one-shots): the
// ring is built deterministically from the backend URLs alone, so a
// restarted router reroutes every key identically, and a lost backend
// moves exactly the keys it owned to the next backend on the ring — back
// again when it recovers.
//
// Sessions are backend-affine but no longer die with their backend: the
// router journals every chunk a backend acknowledged (see journal.go),
// and when the backend is lost it recreates the session on the next ring
// point, replays the journal through the backend's chunk-agnostic Feeder
// — the checker is a deterministic single pass, so the replayed engine is
// byte-identical to the lost one — and re-sends the in-flight request.
// Only a session whose journal was truncated past the replay horizon
// (over-budget, or created before a router restart) still answers 409,
// now Retry-After-guarded so well-behaved clients back off before
// replaying from scratch.
//
// The router is stdlib-only like the rest of the service: per-backend
// net/http/httputil reverse proxies for one-shot checks, direct forwarding
// for session traffic, a background /healthz prober, and a router-level
// /metrics that publishes a ring epoch — bumped on every health
// transition — so ring-aware clients can detect topology change instead
// of hammering a dead backend.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aerodrome/internal/obs"
)

// RouterTraceHeader carries the routing key of a request; the "trace"
// query parameter is the curl-friendly equivalent.
const RouterTraceHeader = "X-Aerodrome-Trace"

// RouterBackendHeader names the backend that served a routed response —
// the observability hook the e2e harness and operators use to see ring
// placement without guessing.
const RouterBackendHeader = "X-Aerodrome-Backend"

// RouterConfig tunes the shard router. Zero values select the defaults.
type RouterConfig struct {
	// Backends are the base URLs of the aerodromed instances to route
	// across (e.g. "http://10.0.0.1:8421"). At least one is required.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the hash ring
	// (default 64): enough to keep the key split near-uniform with few
	// backends while keeping ring walks trivial.
	Replicas int
	// ProbeInterval is the /healthz probe cadence (default 500ms).
	ProbeInterval time.Duration
	// FailAfter is the number of consecutive probe failures that mark a
	// backend down (default 2). Proxy-level connection failures mark it
	// down immediately — the prober brings it back.
	FailAfter int
	// ProbeOnStart runs one synchronous probe round before the router
	// serves, so a backend that is already dead at boot is never picked.
	// A restarted router would otherwise route the first requests to
	// backends it has not probed yet — exactly the window in which a
	// re-attached session would be misdirected at a corpse and lost.
	ProbeOnStart bool
	// TenantHeader is the tenant header consulted as the routing-key
	// fallback (default "X-Aerodrome-Tenant"), so a tenant without
	// per-trace keys still gets a stable backend.
	TenantHeader string
	// AffinityTTL prunes session routes not used for this long (default
	// 15m): sessions that end by backend TTL eviction or client
	// abandonment never see a DELETE through the router, and their
	// entries (and journals) must not accumulate forever. Set it
	// comfortably above the backends' SessionTTL — a pruned-but-live
	// session is still reachable with its trace key.
	AffinityTTL time.Duration
	// JournalMemBytes caps one session's in-memory journal (default
	// 256 KiB); chunks beyond it spill to JournalSpillDir, or truncate the
	// journal when spill is disabled.
	JournalMemBytes int64
	// JournalMaxBytes caps one session's total journal, memory plus spill
	// (default 4 MiB). A session past it loses its replay horizon:
	// backend death becomes a terminal 409 again.
	JournalMaxBytes int64
	// JournalTotalBytes caps in-memory journal bytes across all sessions
	// (default 64 MiB); sessions over the shared budget spill or truncate.
	JournalTotalBytes int64
	// JournalSpillDir, when set, lets journals overflow to unlinked temp
	// files there instead of truncating at the memory caps.
	JournalSpillDir string
	// Transport is the round tripper used for all backend traffic except
	// health probes (default http.DefaultTransport). The chaos harness
	// wraps it to inject proxy-path faults.
	Transport http.RoundTripper
	// Log receives structured router log lines (default: discarded).
	Log io.Writer
	// LogLevel is the minimum level written to Log (default Info).
	LogLevel slog.Level
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.TenantHeader == "" {
		c.TenantHeader = DefaultTenantHeader
	}
	if c.AffinityTTL <= 0 {
		c.AffinityTTL = 15 * time.Minute
	}
	if c.JournalMemBytes <= 0 {
		c.JournalMemBytes = 256 << 10
	}
	if c.JournalMaxBytes <= 0 {
		c.JournalMaxBytes = 4 << 20
	}
	if c.JournalTotalBytes <= 0 {
		c.JournalTotalBytes = 64 << 20
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	return c
}

// backend is one aerodromed instance behind the router.
type backend struct {
	name    string // the configured base URL, verbatim — the ring seed
	url     *url.URL
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
	fails   int // consecutive probe failures; prober goroutine only

	routed      atomic.Int64
	proxyErrors atomic.Int64
}

// ringPoint is one virtual node: a backend at a position on the hash ring.
type ringPoint struct {
	h uint64
	b *backend
}

// sessionRoute is the router's state for one client-visible session: its
// affine backend, the backend-local id (which diverges from the client id
// after a failover), the recreation parameters, and the replay journal.
// route.mu serializes forwards and failover per session; b is atomic so
// the metrics scan can read it without route.mu (a feed may hold that
// lock for a whole chunk upload); last is guarded by Router.mu (the prune
// scan).
type sessionRoute struct {
	mu        sync.Mutex
	b         atomic.Pointer[backend] // current affine backend; nil until first resolve
	backendID string                  // session id on b
	key       string                  // consistent-hash routing key ("" = placed round-robin)
	algo      string                  // requested algorithm, replayed on recreation
	analyses  string                  // requested analysis set, replayed on recreation
	tenant    string                  // tenant header value, replayed on recreation
	journal   *journal
	lastSeq   int64 // last journaled chunk sequence (-1 = none)

	last time.Time // guarded by Router.mu
}

// Router is the shard-routing http.Handler. Create with NewRouter, serve
// with any http.Server, stop with Close.
type Router struct {
	cfg      RouterConfig
	mux      *http.ServeMux
	backends []*backend
	ring     []ringPoint  // sorted by h; fixed for the router's lifetime
	client   *http.Client // buffered session creates (small bodies, bounded)
	forward  *http.Client // session forwards and journal replay (streaming)
	logger   *slog.Logger
	draining atomic.Bool
	rr       atomic.Uint64 // round-robin cursor for keyless one-shots
	epoch    atomic.Uint64 // bumped on every backend health transition

	budget *journalBudget

	mu     sync.Mutex
	routes map[string]*sessionRoute // client session id → route

	start            time.Time
	checksRouted     atomic.Int64
	sessRouted       atomic.Int64
	affinityLost     atomic.Int64
	unroutable       atomic.Int64
	failovers        atomic.Int64
	failoverFailures atomic.Int64
	replayedBytes    atomic.Int64
	journalTruncated atomic.Int64
	reattached       atomic.Int64

	// reg backs GET /metrics?format=prom; the stage histograms time the
	// router's request-path phases (see RouterMetricsSnapshot.Stages).
	reg           *obs.Registry
	stageProxy    *obs.Histogram
	stageReplay   *obs.Histogram
	stageFailover *obs.Histogram

	stop     chan struct{}
	stopOnce sync.Once
}

// ringHash is FNV-1a with a murmur3-style 64-bit finalizer, inlined so
// ring placement is a pure function of the configured backend URLs and the
// key bytes — the determinism the restart and rehash tests pin. The
// finalizer matters: raw FNV of strings differing only in a trailing
// counter ("url#0", "url#1", …) lands one prime apart, clustering all of a
// backend's virtual nodes into one arc and starving the others.
func ringHash(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRouter validates cfg and returns a ready-to-serve Router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("server: router needs at least one backend")
	}
	rt := &Router{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		client:  &http.Client{Timeout: 10 * time.Second, Transport: cfg.Transport},
		forward: &http.Client{Transport: cfg.Transport},
		logger:  newLogger(cfg.Log, cfg.LogLevel).With("component", "router"),
		budget:  &journalBudget{max: cfg.JournalTotalBytes},
		routes:  map[string]*sessionRoute{},
		start:   time.Now(),
		stop:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		raw = strings.TrimRight(raw, "/")
		if seen[raw] {
			return nil, fmt.Errorf("server: duplicate backend %q", raw)
		}
		seen[raw] = true
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: bad backend URL %q", raw)
		}
		b := &backend{name: raw, url: u}
		b.healthy.Store(true) // optimistic: the prober and proxy errors correct
		b.proxy = rt.newProxy(b)
		rt.backends = append(rt.backends, b)
		for i := 0; i < cfg.Replicas; i++ {
			rt.ring = append(rt.ring, ringPoint{h: ringHash(fmt.Sprintf("%s#%d", raw, i)), b: b})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].h < rt.ring[j].h })
	rt.initMetrics()

	if cfg.ProbeOnStart {
		rt.probeOnce()
	}

	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("POST /v1/check", rt.handleCheck)
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleSessionCreate)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSessionSub)
	rt.mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.handleSessionSub)
	go rt.prober()
	return rt, nil
}

// newProxy builds the reverse proxy for one backend's one-shot checks:
// responses are tagged with the backend name, and connection-level
// failures mark the backend down in the same pass they are answered —
// with 503 + Retry-After, not a bare 502, so a well-behaved client backs
// off and retries into the rerouted ring instead of the dead point. (The
// failed request itself cannot be transparently retried: its body may be
// half-streamed.)
func (rt *Router) newProxy(b *backend) *httputil.ReverseProxy {
	p := httputil.NewSingleHostReverseProxy(b.url)
	p.Transport = rt.cfg.Transport
	p.ModifyResponse = func(resp *http.Response) error {
		resp.Header.Set(RouterBackendHeader, b.name)
		return nil
	}
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		b.proxyErrors.Add(1)
		rt.markDown(b, err)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "backend unavailable: "+err.Error())
	}
	return p
}

// markDown flips a backend unhealthy (idempotently) and bumps the ring
// epoch; the prober flips it back once /healthz answers again.
func (rt *Router) markDown(b *backend, err error) {
	if b.healthy.CompareAndSwap(true, false) {
		rt.epoch.Add(1)
		rt.logger.Warn("backend down", "backend", b.name, "err", err)
	}
}

// initMetrics builds the router's Prometheus registry: read-through
// series over the existing atomic counters (global, per-backend
// labeled, and the journal budget) plus the stage histograms. Called
// once from NewRouter after the backend list is fixed.
func (rt *Router) initMetrics() {
	rt.reg = obs.NewRegistry()
	counter := func(name, help string, v *atomic.Int64) {
		rt.reg.CounterFunc(name, "", help, v.Load)
	}
	rt.reg.GaugeFunc("aerodromed_router_uptime_seconds", "", "Seconds since router start.",
		func() float64 { return time.Since(rt.start).Seconds() })
	rt.reg.GaugeFunc("aerodromed_router_ring_epoch", "", "Ring epoch, bumped on every backend health transition.",
		func() float64 { return float64(rt.epoch.Load()) })
	counter("aerodromed_router_checks_routed_total", "One-shot checks routed.", &rt.checksRouted)
	counter("aerodromed_router_sessions_routed_total", "Sessions placed on backends.", &rt.sessRouted)
	counter("aerodromed_router_affinity_lost_total", "Session requests whose affinity could not be derived or replayed.", &rt.affinityLost)
	counter("aerodromed_router_unroutable_total", "Requests with no healthy backend.", &rt.unroutable)
	counter("aerodromed_router_failovers_total", "Sessions failed over to another backend.", &rt.failovers)
	counter("aerodromed_router_failover_failures_total", "Failover attempts that failed.", &rt.failoverFailures)
	counter("aerodromed_router_replayed_bytes_total", "Journal bytes replayed into recreated sessions.", &rt.replayedBytes)
	counter("aerodromed_router_journal_truncated_total", "Session journals truncated past the replay horizon.", &rt.journalTruncated)
	counter("aerodromed_router_sessions_reattached_total", "Sessions re-attached by routing key after a router restart.", &rt.reattached)
	rt.reg.GaugeFunc("aerodromed_router_journal_mem_bytes", "", "In-memory journal bytes across all sessions.",
		func() float64 { return float64(rt.budget.used.Load()) })
	for _, b := range rt.backends {
		labels := obs.Labels(map[string]string{"backend": b.name})
		rt.reg.GaugeFunc("aerodromed_router_backend_healthy", labels,
			"Backend health (1 healthy, 0 down).",
			func() float64 {
				if b.healthy.Load() {
					return 1
				}
				return 0
			})
		rt.reg.CounterFunc("aerodromed_router_backend_routed_total", labels,
			"Requests routed to the backend.", b.routed.Load)
		rt.reg.CounterFunc("aerodromed_router_backend_proxy_errors_total", labels,
			"Transport-level failures talking to the backend.", b.proxyErrors.Load)
	}
	stage := func(name string) *obs.Histogram {
		h := &obs.Histogram{}
		rt.reg.RegisterHistogram("aerodromed_router_stage_duration_seconds",
			obs.Labels(map[string]string{"stage": name}),
			"Router request-path stage latency by stage name.", h)
		return h
	}
	rt.stageProxy = stage("proxy")
	rt.stageReplay = stage("replay")
	rt.stageFailover = stage("failover")
}

// probeOnce is the synchronous bootstrap probe round: every backend gets
// one short-deadline /healthz before the router serves.
func (rt *Router) probeOnce() {
	timeout := rt.cfg.ProbeInterval
	if timeout > 500*time.Millisecond {
		timeout = 500 * time.Millisecond
	}
	client := &http.Client{Timeout: timeout}
	for _, b := range rt.backends {
		resp, err := client.Get(b.name + "/healthz")
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if !ok {
			if err == nil {
				err = fmt.Errorf("healthz HTTP %d", resp.StatusCode)
			}
			rt.markDown(b, fmt.Errorf("startup probe: %w", err))
		}
	}
}

// prober polls every backend's /healthz. A backend is marked down after
// FailAfter consecutive failures (a draining backend answers 503 and is
// routed around before it disappears) and back up on the first success.
func (rt *Router) prober() {
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	client := &http.Client{Timeout: rt.cfg.ProbeInterval}
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.pruneRoutes()
			for _, b := range rt.backends {
				resp, err := client.Get(b.name + "/healthz")
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if ok {
					b.fails = 0
					if b.healthy.CompareAndSwap(false, true) {
						rt.epoch.Add(1)
						rt.logger.Info("backend healthy", "backend", b.name)
					}
					continue
				}
				b.fails++
				if b.fails >= rt.cfg.FailAfter {
					if err == nil {
						err = fmt.Errorf("healthz HTTP %d", resp.StatusCode)
					}
					rt.markDown(b, err)
				}
			}
		}
	}
}

// ServeHTTP implements http.Handler. The router is the edge of a
// sharded topology: every request gets a correlation ID here
// (RequestIDHeader, kept when the client supplied one), echoed in the
// response, logged on the access line, and propagated verbatim on every
// backend hop — the forwarding paths clone the request headers, so the
// same ID shows up in the backends' access logs.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	serveLogged(rt.logger, rt.mux, w, r)
}

// SetDraining flips drain mode: healthz answers 503 and new checks and
// sessions are rejected, while feeds and deletes to existing sessions keep
// flowing (their backends drain independently).
func (rt *Router) SetDraining(v bool) {
	rt.draining.Store(v)
}

// Close stops the health prober and frees the session journals. In-flight
// proxied requests are the http.Server's to drain.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.mu.Lock()
	routes := rt.routes
	rt.routes = map[string]*sessionRoute{}
	rt.mu.Unlock()
	for _, route := range routes {
		route.journal.free()
	}
}

// routingKey extracts the consistent-hash key of a request: the trace
// header, the trace query parameter, then the tenant header. Empty means
// "any backend" (round-robin) for one-shots.
func (rt *Router) routingKey(r *http.Request) string {
	if k := r.Header.Get(RouterTraceHeader); k != "" {
		return k
	}
	if k := r.URL.Query().Get("trace"); k != "" {
		return k
	}
	return r.Header.Get(rt.cfg.TenantHeader)
}

// pick walks the ring from key's position and returns the first healthy
// backend not vetoed by skip (nil skip allows all). Keys owned by a down
// backend land deterministically on the next distinct backend along the
// ring, and return home when it recovers.
func (rt *Router) pick(key string, skip map[*backend]bool) *backend {
	h := ringHash(key)
	idx := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].h >= h })
	for i := 0; i < len(rt.ring); i++ {
		p := rt.ring[(idx+i)%len(rt.ring)]
		if p.b.healthy.Load() && !skip[p.b] {
			return p.b
		}
	}
	return nil
}

// pickAny round-robins over healthy backends, for keyless one-shots where
// affinity buys nothing and spreading load does.
func (rt *Router) pickAny(skip map[*backend]bool) *backend {
	n := len(rt.backends)
	start := int(rt.rr.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		b := rt.backends[(start+i)%n]
		if b.healthy.Load() && !skip[b] {
			return b
		}
	}
	return nil
}

// route resolves a request to a backend by key (or round-robin).
func (rt *Router) route(r *http.Request) *backend {
	if key := rt.routingKey(r); key != "" {
		return rt.pick(key, nil)
	}
	return rt.pickAny(nil)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	healthy := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			healthy++
		}
	}
	if healthy == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no healthy backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "backends_healthy": healthy, "backends_total": len(rt.backends),
	})
}

// handleMetrics is the router's GET /metrics: the typed JSON snapshot
// (RouterMetricsSnapshot) by default, Prometheus text with ?format=prom.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", promContentType)
		rt.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, rt.snapshot())
}

// snapshot renders the router's typed /metrics document.
func (rt *Router) snapshot() RouterMetricsSnapshot {
	rt.mu.Lock()
	affine := make(map[string]int64, len(rt.backends))
	var journaled int64
	for _, route := range rt.routes {
		if b := route.b.Load(); b != nil {
			affine[b.name]++
		}
		journaled += route.journal.size()
	}
	rt.mu.Unlock()
	backends := make(map[string]RouterBackendMetrics, len(rt.backends))
	for _, b := range rt.backends {
		backends[b.name] = RouterBackendMetrics{
			Healthy:        b.healthy.Load(),
			ProxyErrors:    b.proxyErrors.Load(),
			RoutedTotal:    b.routed.Load(),
			SessionsAffine: affine[b.name],
		}
	}
	return RouterMetricsSnapshot{
		AffinityLostTotal:     rt.affinityLost.Load(),
		Backends:              backends,
		ChecksRouted:          rt.checksRouted.Load(),
		FailoverFailuresTotal: rt.failoverFailures.Load(),
		FailoversTotal:        rt.failovers.Load(),
		Journal: RouterJournalMetrics{
			Bytes:          journaled,
			MemBytes:       rt.budget.used.Load(),
			TruncatedTotal: rt.journalTruncated.Load(),
		},
		ReplayedBytesTotal:      rt.replayedBytes.Load(),
		RingEpoch:               rt.epoch.Load(),
		SessionsReattachedTotal: rt.reattached.Load(),
		SessionsRouted:          rt.sessRouted.Load(),
		Stages: map[string]StageMetrics{
			"proxy":    stageSnapshot(rt.stageProxy),
			"replay":   stageSnapshot(rt.stageReplay),
			"failover": stageSnapshot(rt.stageFailover),
		},
		UnroutableTotal: rt.unroutable.Load(),
		UptimeSeconds:   time.Since(rt.start).Seconds(),
	}
}

// handleCheck proxies POST /v1/check to the key's backend. The body
// streams through, so a mid-flight backend failure is a 503 + Retry-After
// to retry — only session traffic, whose chunks are journaled, fails over
// transparently.
func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	b := rt.route(r)
	if b == nil {
		rt.unroutable.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no healthy backend")
		return
	}
	rt.checksRouted.Add(1)
	b.routed.Add(1)
	start := time.Now()
	b.proxy.ServeHTTP(w, r)
	rt.stageProxy.Record(time.Since(start))
}

// createAlgo extracts the requested algorithm from a session-create
// request (query, then the buffered JSON body) — stored verbatim so a
// failover recreates the session with exactly what the client asked for.
func createAlgo(r *http.Request, body []byte) string {
	if q := r.URL.Query().Get("algo"); q != "" {
		return q
	}
	var req struct {
		Algo string `json:"algo"`
	}
	if len(body) > 0 && json.Unmarshal(body, &req) == nil {
		return req.Algo
	}
	return ""
}

// createAnalyses extracts the requested analysis set from a session-create
// request (query, then the buffered JSON body), rendered as the
// comma-separated query form — stored verbatim so a failover recreates the
// session with exactly what the client asked for.
func createAnalyses(r *http.Request, body []byte) string {
	if q := r.URL.Query().Get("analyses"); q != "" {
		return q
	}
	var req struct {
		Analyses []string `json:"analyses"`
	}
	if len(body) > 0 && json.Unmarshal(body, &req) == nil {
		return strings.Join(req.Analyses, ",")
	}
	return ""
}

// handleSessionCreate places a new session on the key's backend. The tiny
// JSON body is buffered, so creation retries across the ring when the
// first choice turns out to be down — admission-time backend loss is
// invisible to the client.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	key := rt.routingKey(r)
	tried := map[*backend]bool{}
	for {
		var b *backend
		if key != "" {
			b = rt.pick(key, tried)
		} else {
			b = rt.pickAny(tried)
		}
		if b == nil {
			rt.unroutable.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "no healthy backend")
			return
		}
		req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost,
			b.name+r.URL.RequestURI(), strings.NewReader(string(body)))
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, rerr.Error())
			return
		}
		req.Header = r.Header.Clone()
		resp, derr := rt.client.Do(req)
		if derr != nil {
			// Nothing streamed to the client yet: mark the backend down and
			// try the next one on the ring.
			b.proxyErrors.Add(1)
			rt.markDown(b, derr)
			tried[b] = true
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			writeError(w, http.StatusBadGateway, "backend response: "+rerr.Error())
			return
		}
		if resp.StatusCode == http.StatusCreated {
			var v SessionView
			if json.Unmarshal(data, &v) == nil && v.ID != "" {
				route := &sessionRoute{
					backendID: v.ID,
					key:       key,
					algo:      createAlgo(r, body),
					analyses:  createAnalyses(r, body),
					tenant:    r.Header.Get(rt.cfg.TenantHeader),
					journal: newJournal(rt.cfg.JournalMemBytes, rt.cfg.JournalMaxBytes,
						rt.cfg.JournalSpillDir, rt.budget),
					lastSeq: -1,
					last:    time.Now(),
				}
				route.b.Store(b)
				rt.mu.Lock()
				rt.routes[v.ID] = route
				rt.mu.Unlock()
			}
			rt.sessRouted.Add(1)
			b.routed.Add(1)
		}
		for k, vals := range resp.Header {
			w.Header()[k] = vals
		}
		w.Header().Set(RouterBackendHeader, b.name)
		w.WriteHeader(resp.StatusCode)
		w.Write(data)
		return
	}
}

// lookupRoute resolves a session id to its route, re-attaching by routing
// key when the id is unknown (a restarted router): the ring finds the
// same backend the key hashed to at creation, but the replay horizon is
// lost — this router never saw the earlier chunks — so the re-attached
// journal starts truncated. Returns nil when there is no route and no key
// to derive one from.
func (rt *Router) lookupRoute(id string, r *http.Request) *sessionRoute {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if route := rt.routes[id]; route != nil {
		route.last = time.Now()
		return route
	}
	key := rt.routingKey(r)
	if key == "" {
		return nil
	}
	route := &sessionRoute{
		backendID: id,
		key:       key,
		tenant:    r.Header.Get(rt.cfg.TenantHeader),
		journal:   newTruncatedJournal(),
		lastSeq:   -1,
		last:      time.Now(),
	}
	route.b.Store(rt.pick(key, nil)) // nil when every backend is down
	rt.routes[id] = route
	rt.reattached.Add(1)
	return route
}

// Failover outcomes surfaced to clients.
var (
	// errReplayHorizon: the journal was truncated, replay is impossible.
	errReplayHorizon = errors.New("session unrecoverable: journal truncated past replay horizon; open a new session and replay the trace")
	// errNoBackend: nothing healthy to fail over to.
	errNoBackend = errors.New("no healthy backend")
)

// errBackendDeclined: the failover target answered but refused the
// recreate (admission limits); retryable.
type errBackendDeclined struct {
	status     int
	retryAfter string
}

func (e *errBackendDeclined) Error() string {
	return fmt.Sprintf("failover target declined recreate: HTTP %d", e.status)
}

// respondFailoverError maps a failover failure to the wire: the truncated
// journal is the one terminal case (409, Retry-After-guarded so obedient
// clients pause before replaying from scratch); everything else is a
// retryable 503.
func (rt *Router) respondFailoverError(w http.ResponseWriter, err error) {
	var declined *errBackendDeclined
	switch {
	case errors.Is(err, errReplayHorizon):
		rt.affinityLost.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, err.Error())
	case errors.As(err, &declined):
		retry := declined.retryAfter
		if retry == "" {
			retry = "1"
		}
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	}
}

// failoverLocked moves route to the next healthy ring point: recreate the
// session there (same algorithm, same tenant) and replay the journal
// through the backend's chunk-agnostic feeder. The caller holds route.mu.
func (rt *Router) failoverLocked(route *sessionRoute) error {
	start := time.Now()
	defer func() { rt.stageFailover.Record(time.Since(start)) }()
	skip := map[*backend]bool{}
	if b := route.b.Load(); b != nil {
		skip[b] = true
	}
	for {
		var nb *backend
		if route.key != "" {
			nb = rt.pick(route.key, skip)
		} else {
			nb = rt.pickAny(skip)
		}
		if nb == nil {
			rt.failoverFailures.Add(1)
			return errNoBackend
		}
		if route.journal.isTruncated() {
			// There is somewhere to go but nothing to replay: the session
			// state is unreproducible and the loss is terminal.
			rt.failoverFailures.Add(1)
			return errReplayHorizon
		}
		newID, replayed, err := rt.recreateOn(nb, route)
		if err != nil {
			var declined *errBackendDeclined
			if errors.As(err, &declined) {
				rt.failoverFailures.Add(1)
				return err
			}
			nb.proxyErrors.Add(1)
			rt.markDown(nb, err)
			skip[nb] = true
			continue
		}
		rt.logger.Info("session failed over",
			"session", route.backendID, "backend", nb.name, "replayed_bytes", replayed)
		route.b.Store(nb)
		route.backendID = newID
		rt.failovers.Add(1)
		nb.routed.Add(1)
		return nil
	}
}

// recreateOn creates a fresh session on nb with route's parameters and
// replays the journal into it. Returns the new backend-local session id.
// A transport-level error means nb is unreachable (the caller marks it
// down and moves on); an HTTP-level refusal is *errBackendDeclined.
func (rt *Router) recreateOn(nb *backend, route *sessionRoute) (string, int64, error) {
	u := nb.name + "/v1/sessions"
	q := url.Values{}
	if route.algo != "" {
		q.Set("algo", route.algo)
	}
	if route.analyses != "" {
		q.Set("analyses", route.analyses)
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodPost, u, nil)
	if err != nil {
		return "", 0, err
	}
	rt.sessionHeaders(req, route)
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return "", 0, rerr
	}
	if resp.StatusCode != http.StatusCreated {
		return "", 0, &errBackendDeclined{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	}
	var v SessionView
	if err := json.Unmarshal(data, &v); err != nil || v.ID == "" {
		return "", 0, fmt.Errorf("recreate: bad session body: %v", err)
	}

	rr, n := route.journal.replayReader()
	if n == 0 {
		return v.ID, 0, nil
	}
	req, err = http.NewRequest(http.MethodPost, nb.name+"/v1/sessions/"+v.ID+"/events", rr)
	if err != nil {
		return "", 0, err
	}
	req.ContentLength = n
	rt.sessionHeaders(req, route)
	replayStart := time.Now()
	if route.lastSeq >= 0 {
		// Prime the backend's idempotency cache with the pre-failover
		// sequence number: a client retry of the last acknowledged chunk is
		// then answered from the replayed state instead of being applied a
		// second time.
		req.Header.Set(ChunkSeqHeader, fmt.Sprint(route.lastSeq))
	}
	resp, err = rt.forward.Do(req)
	if err != nil {
		return "", 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.stageReplay.Record(time.Since(replayStart))
	switch resp.StatusCode {
	case http.StatusOK, http.StatusBadRequest, http.StatusConflict:
		// 200 is the live replay; 400/409 reproduce a terminal session,
		// which is equally exact.
	default:
		return "", 0, &errBackendDeclined{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	}
	rt.replayedBytes.Add(n)
	return v.ID, n, nil
}

// sessionHeaders applies route's recreation headers to a backend request.
func (rt *Router) sessionHeaders(req *http.Request, route *sessionRoute) {
	if route.tenant != "" {
		req.Header.Set(rt.cfg.TenantHeader, route.tenant)
	}
	if route.key != "" {
		req.Header.Set(RouterTraceHeader, route.key)
	}
}

// handleSessionSub routes feeds, snapshots and deletes to the session's
// affine backend, failing over — recreate plus journal replay — when that
// backend is lost. Only a session whose journal was truncated answers the
// terminal 409.
func (rt *Router) handleSessionSub(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route := rt.lookupRoute(id, r)
	if route == nil {
		rt.affinityLost.Add(1)
		writeError(w, http.StatusConflict,
			"session affinity unknown: pass the trace routing key ("+RouterTraceHeader+" or ?trace=)")
		return
	}
	route.mu.Lock()
	defer route.mu.Unlock()
	if r.Method == http.MethodPost && r.PathValue("rest") == "events" {
		rt.forwardFeed(w, r, id, route)
		return
	}
	rt.forwardOther(w, r, id, route)
}

// feedApplied reports whether a feed response status can mean the backend
// consumed the chunk (and the journal must record it). 429/503 rejections
// leave the session untouched; 200 is a live or discarded-terminal feed;
// 400/409 latch or report a terminal state the chunk is part of. A
// consuming status is necessary but not sufficient: 400/409 are also the
// backend's refusal statuses (bad seq header, chunk sequence gap), whose
// bodies are plain errors — the journaling path additionally requires the
// body to decode to a session view before recording the chunk.
func feedApplied(status int) bool {
	return status == http.StatusOK || status == http.StatusBadRequest || status == http.StatusConflict
}

// parseFeedView decodes the session-view fields of a feed response the
// journaling decisions need. ok is false when the body is not a session
// view (the {"error": ...} shape of a gap or bad-header rejection) — the
// backend did not consume that chunk.
func parseFeedView(data []byte) (view struct{ ID, State string }, ok bool) {
	var v struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if json.Unmarshal(data, &v) != nil || v.ID == "" {
		return view, false
	}
	view.ID, view.State = v.ID, v.State
	return view, true
}

// viewTerminal reports whether a feed-view state is terminal — the
// journal freezes there: the recorded prefix reproduces the verdict and
// later discarded chunks must not grow it.
func viewTerminal(state string) bool {
	return state == string(stateViolated) || state == string(stateFailed)
}

// forwardFeed is the journaled feed path: buffer the chunk (bounded by
// the journal's remaining capacity), forward it, journal it once the
// backend acknowledged it, and fail over with a full replay when the
// backend is unreachable. Chunks past the journal bound stream through
// unbuffered and cost the session its replay horizon.
func (rt *Router) forwardFeed(w http.ResponseWriter, r *http.Request, clientID string, route *sessionRoute) {
	seq, ok := parseChunkSeq(r.Header)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad "+ChunkSeqHeader+" header")
		return
	}
	frozen := route.journal.isFrozen()
	var buffered []byte
	var stream io.Reader
	if frozen {
		// The session is terminal: the backend discards chunk bytes anyway,
		// so drain them here and forward an empty feed — it still refreshes
		// the backend's idle timer and returns the authoritative snapshot.
		io.Copy(io.Discard, r.Body)
	} else {
		capLeft := route.journal.capLeft()
		var err error
		buffered, err = io.ReadAll(io.LimitReader(r.Body, capLeft+1))
		if err != nil {
			writeBodyError(w, err)
			return
		}
		if int64(len(buffered)) > capLeft {
			route.journal.truncate()
			rt.journalTruncated.Add(1)
			stream = r.Body
		}
	}

	attempts := 0
	retriedSame := false
	for {
		b := route.b.Load()
		if b == nil || !b.healthy.Load() {
			if ferr := rt.failoverLocked(route); ferr != nil {
				rt.respondFailoverError(w, ferr)
				return
			}
			b = route.b.Load()
		}
		var body io.Reader = bytes.NewReader(buffered)
		n := int64(len(buffered))
		if stream != nil {
			body = io.MultiReader(bytes.NewReader(buffered), stream)
			n = r.ContentLength // may be -1 (chunked): preserved downstream
		}
		resp, err := rt.backendDo(r, b, http.MethodPost,
			"/v1/sessions/"+route.backendID+"/events", body, n)
		var data []byte
		if err == nil {
			data, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				err = fmt.Errorf("backend response: %w", err)
			}
		}
		if err != nil {
			b.proxyErrors.Add(1)
			if !retriedSame && stream == nil && seq >= 0 {
				// One transient fault (a doomed connection, an injected
				// error) should cost a retry, not a failover — and for a
				// session whose journal is already truncated, a failover
				// would cost the session itself. The chunk carries a
				// sequence number, so even an applied-but-unacknowledged
				// re-POST dedups at the backend.
				retriedSame = true
				continue
			}
			rt.markDown(b, err)
			if stream != nil {
				// Part of the chunk went down with the connection and was
				// never journaled; the stream cannot be reproduced.
				rt.failoverFailures.Add(1)
				rt.respondFailoverError(w, errReplayHorizon)
				return
			}
			attempts++
			if attempts > len(rt.backends) {
				rt.respondFailoverError(w, errNoBackend)
				return
			}
			if ferr := rt.failoverLocked(route); ferr != nil {
				rt.respondFailoverError(w, ferr)
				return
			}
			continue
		}
		if stream == nil && !frozen && feedApplied(resp.StatusCode) {
			// Journal exactly the chunks the backend consumed, once. The
			// body must be a session view: a 400/409 with an error body is
			// a refusal (chunk sequence gap, bad header) that left the
			// session untouched, so recording it would make a later replay
			// reproduce state containing a rejected chunk. Re-sent or stale
			// sequence numbers (seq <= lastSeq) were already recorded — the
			// backend answered those from its idempotency cache.
			if fv, isView := parseFeedView(data); isView {
				if seq < 0 || seq > route.lastSeq {
					route.journal.append(buffered)
					if seq >= 0 {
						route.lastSeq = seq
					}
				}
				if resp.StatusCode != http.StatusOK || viewTerminal(fv.State) {
					route.journal.freeze()
				}
			}
		}
		b.routed.Add(1)
		rt.relaySessionResponse(w, resp, data, route, clientID, b)
		return
	}
}

// forwardOther handles GET (snapshot) and DELETE (finalize) for a routed
// session, with the same failover discipline as feeds. A finished DELETE
// — or a backend 404, the session is gone — drops the route and frees its
// journal.
func (rt *Router) forwardOther(w http.ResponseWriter, r *http.Request, clientID string, route *sessionRoute) {
	path := "/v1/sessions/" + route.backendID
	if rest := r.PathValue("rest"); rest != "" {
		path += "/" + rest
	}
	attempts := 0
	retriedSame := false
	for {
		b := route.b.Load()
		if b == nil || !b.healthy.Load() {
			if ferr := rt.failoverLocked(route); ferr != nil {
				rt.respondFailoverError(w, ferr)
				return
			}
			b = route.b.Load()
		}
		resp, err := rt.backendDo(r, b, r.Method, path, nil, 0)
		var data []byte
		if err == nil {
			data, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				err = fmt.Errorf("backend response: %w", err)
			}
		}
		if err != nil {
			b.proxyErrors.Add(1)
			if !retriedSame {
				// Bodyless requests are safe to re-send to the same backend
				// — GET is naturally idempotent, and a DELETE the backend
				// applied before the connection died replays from its
				// finalize cache instead of 404ing — so one transient fault
				// costs a retry, not a failover, which a truncated journal
				// would turn into a lost session.
				retriedSame = true
				continue
			}
			rt.markDown(b, err)
			attempts++
			if attempts > len(rt.backends) {
				rt.respondFailoverError(w, errNoBackend)
				return
			}
			if ferr := rt.failoverLocked(route); ferr != nil {
				rt.respondFailoverError(w, ferr)
				return
			}
			// The path tracks the possibly-new backend id after failover.
			path = "/v1/sessions/" + route.backendID
			if rest := r.PathValue("rest"); rest != "" {
				path += "/" + rest
			}
			continue
		}
		if r.Method == http.MethodDelete && resp.StatusCode == http.StatusOK ||
			resp.StatusCode == http.StatusNotFound {
			rt.forgetRoute(clientID)
		}
		b.routed.Add(1)
		rt.relaySessionResponse(w, resp, data, route, clientID, b)
		return
	}
}

// backendDo sends one forwarded request to b, preserving the original
// headers and context.
func (rt *Router) backendDo(orig *http.Request, b *backend, method, path string, body io.Reader, n int64) (*http.Response, error) {
	var u strings.Builder
	u.WriteString(b.name)
	u.WriteString(path)
	if q := orig.URL.RawQuery; q != "" {
		u.WriteString("?")
		u.WriteString(q)
	}
	req, err := http.NewRequestWithContext(orig.Context(), method, u.String(), body)
	if err != nil {
		return nil, err
	}
	req.Header = orig.Header.Clone()
	req.ContentLength = n
	start := time.Now()
	resp, err := rt.forward.Do(req)
	rt.stageProxy.Record(time.Since(start))
	return resp, err
}

// relaySessionResponse writes a forwarded response back to the client,
// rewriting the backend-local session id to the client-visible one (they
// diverge after a failover; both are 32-hex, so the rewrite is
// length-preserving) and tagging the serving backend.
func (rt *Router) relaySessionResponse(w http.ResponseWriter, resp *http.Response, data []byte, route *sessionRoute, clientID string, b *backend) {
	if route.backendID != clientID {
		data = bytes.ReplaceAll(data, []byte(route.backendID), []byte(clientID))
	}
	for k, vals := range resp.Header {
		w.Header()[k] = vals
	}
	w.Header().Del("Content-Length")
	w.Header().Set(RouterBackendHeader, b.name)
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
}

// forgetRoute drops a session route and frees its journal.
func (rt *Router) forgetRoute(id string) {
	rt.mu.Lock()
	route := rt.routes[id]
	delete(rt.routes, id)
	rt.mu.Unlock()
	if route != nil {
		route.journal.free()
	}
}

// pruneRoutes drops session routes idle past AffinityTTL. Sessions that
// ended without a DELETE through the router (backend TTL eviction,
// abandoned clients) would otherwise leak an entry — and a journal —
// each.
func (rt *Router) pruneRoutes() {
	cutoff := time.Now().Add(-rt.cfg.AffinityTTL)
	var stale []*sessionRoute
	rt.mu.Lock()
	for id, route := range rt.routes {
		if route.last.Before(cutoff) {
			stale = append(stale, route)
			delete(rt.routes, id)
		}
	}
	rt.mu.Unlock()
	for _, route := range stale {
		route.journal.free()
	}
}
