package server

// The shard router: aerodromed's scale-out front end. One engine per
// stream is the service's unit of work, so horizontal scaling is routing —
// spread sessions and one-shot checks across N backend aerodromed
// instances and keep every stream pinned to one backend (the checker is
// stateful per trace). Routing is a consistent hash over a client-supplied
// trace key (or the tenant, or round-robin for keyless one-shots): the
// ring is built deterministically from the backend URLs alone, so a
// restarted router reroutes every key identically, and a lost backend
// moves exactly the keys it owned to the next backend on the ring — back
// again when it recovers.
//
// Sessions are strictly backend-affine: the router learns id→backend at
// creation and proxies every subresource request to that backend. When the
// backend dies the session's state died with it, so the router answers 409
// (affinity lost) rather than silently rehashing a half-checked stream
// onto a backend that has never seen it. One-shot checks carry their whole
// trace and are safely rehashed.
//
// The router is stdlib-only like the rest of the service: per-backend
// net/http/httputil reverse proxies, a background /healthz prober, and a
// router-level /metrics.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterTraceHeader carries the routing key of a request; the "trace"
// query parameter is the curl-friendly equivalent.
const RouterTraceHeader = "X-Aerodrome-Trace"

// RouterBackendHeader names the backend that served a routed response —
// the observability hook the e2e harness and operators use to see ring
// placement without guessing.
const RouterBackendHeader = "X-Aerodrome-Backend"

// RouterConfig tunes the shard router. Zero values select the defaults.
type RouterConfig struct {
	// Backends are the base URLs of the aerodromed instances to route
	// across (e.g. "http://10.0.0.1:8421"). At least one is required.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the hash ring
	// (default 64): enough to keep the key split near-uniform with few
	// backends while keeping ring walks trivial.
	Replicas int
	// ProbeInterval is the /healthz probe cadence (default 500ms).
	ProbeInterval time.Duration
	// FailAfter is the number of consecutive probe failures that mark a
	// backend down (default 2). Proxy-level connection failures mark it
	// down immediately — the prober brings it back.
	FailAfter int
	// TenantHeader is the tenant header consulted as the routing-key
	// fallback (default "X-Aerodrome-Tenant"), so a tenant without
	// per-trace keys still gets a stable backend.
	TenantHeader string
	// AffinityTTL prunes session-affinity entries not used for this long
	// (default 15m): sessions that end by backend TTL eviction or client
	// abandonment never see a DELETE through the router, and their
	// entries must not accumulate forever. Set it comfortably above the
	// backends' SessionTTL — a pruned-but-live session is still reachable
	// with its trace key.
	AffinityTTL time.Duration
	// Log receives router log lines (default: discarded).
	Log io.Writer
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.TenantHeader == "" {
		c.TenantHeader = DefaultTenantHeader
	}
	if c.AffinityTTL <= 0 {
		c.AffinityTTL = 15 * time.Minute
	}
	return c
}

// backend is one aerodromed instance behind the router.
type backend struct {
	name    string // the configured base URL, verbatim — the ring seed
	url     *url.URL
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
	fails   int // consecutive probe failures; prober goroutine only

	routed      atomic.Int64
	proxyErrors atomic.Int64
}

// ringPoint is one virtual node: a backend at a position on the hash ring.
type ringPoint struct {
	h uint64
	b *backend
}

// affinity pins one session to its backend; last drives TTL pruning.
type affinity struct {
	b    *backend
	last time.Time
}

// Router is the shard-routing http.Handler. Create with NewRouter, serve
// with any http.Server, stop with Close.
type Router struct {
	cfg      RouterConfig
	mux      *http.ServeMux
	backends []*backend
	ring     []ringPoint // sorted by h; fixed for the router's lifetime
	client   *http.Client
	logger   *log.Logger
	draining atomic.Bool
	rr       atomic.Uint64 // round-robin cursor for keyless one-shots

	mu       sync.Mutex
	sessions map[string]*affinity // id → affine backend + last use

	start        time.Time
	checksRouted atomic.Int64
	sessRouted   atomic.Int64
	affinityLost atomic.Int64
	unroutable   atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
}

// ringHash is FNV-1a with a murmur3-style 64-bit finalizer, inlined so
// ring placement is a pure function of the configured backend URLs and the
// key bytes — the determinism the restart and rehash tests pin. The
// finalizer matters: raw FNV of strings differing only in a trailing
// counter ("url#0", "url#1", …) lands one prime apart, clustering all of a
// backend's virtual nodes into one arc and starving the others.
func ringHash(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRouter validates cfg and returns a ready-to-serve Router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("server: router needs at least one backend")
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	rt := &Router{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		client:   &http.Client{Timeout: 10 * time.Second},
		logger:   log.New(logw, "aerodromed-router: ", log.LstdFlags),
		sessions: map[string]*affinity{},
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		raw = strings.TrimRight(raw, "/")
		if seen[raw] {
			return nil, fmt.Errorf("server: duplicate backend %q", raw)
		}
		seen[raw] = true
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: bad backend URL %q", raw)
		}
		b := &backend{name: raw, url: u}
		b.healthy.Store(true) // optimistic: the prober and proxy errors correct
		b.proxy = rt.newProxy(b)
		rt.backends = append(rt.backends, b)
		for i := 0; i < cfg.Replicas; i++ {
			rt.ring = append(rt.ring, ringPoint{h: ringHash(fmt.Sprintf("%s#%d", raw, i)), b: b})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].h < rt.ring[j].h })

	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("POST /v1/check", rt.handleCheck)
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleSessionCreate)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSessionSub)
	rt.mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.handleSessionSub)
	go rt.prober()
	return rt, nil
}

// newProxy builds the reverse proxy for one backend: responses are tagged
// with the backend name, connection-level failures mark the backend down
// immediately (the request itself cannot be retried — its body may be
// half-streamed), and a finished DELETE drops the affinity entry.
func (rt *Router) newProxy(b *backend) *httputil.ReverseProxy {
	p := httputil.NewSingleHostReverseProxy(b.url)
	p.ModifyResponse = func(resp *http.Response) error {
		resp.Header.Set(RouterBackendHeader, b.name)
		if req := resp.Request; req != nil && req.Method == http.MethodDelete {
			if id := req.PathValue("id"); id != "" {
				rt.forgetSession(id)
			}
		}
		return nil
	}
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		b.proxyErrors.Add(1)
		rt.markDown(b, err)
		writeError(w, http.StatusBadGateway, "backend unavailable: "+err.Error())
	}
	return p
}

// markDown flips a backend unhealthy (idempotently); the prober flips it
// back once /healthz answers again.
func (rt *Router) markDown(b *backend, err error) {
	if b.healthy.CompareAndSwap(true, false) {
		rt.logger.Printf("backend %s down: %v", b.name, err)
	}
}

// prober polls every backend's /healthz. A backend is marked down after
// FailAfter consecutive failures (a draining backend answers 503 and is
// routed around before it disappears) and back up on the first success.
func (rt *Router) prober() {
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	client := &http.Client{Timeout: rt.cfg.ProbeInterval}
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.pruneAffinity()
			for _, b := range rt.backends {
				resp, err := client.Get(b.name + "/healthz")
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if ok {
					b.fails = 0
					if b.healthy.CompareAndSwap(false, true) {
						rt.logger.Printf("backend %s healthy", b.name)
					}
					continue
				}
				b.fails++
				if b.fails >= rt.cfg.FailAfter {
					if err == nil {
						err = fmt.Errorf("healthz HTTP %d", resp.StatusCode)
					}
					rt.markDown(b, err)
				}
			}
		}
	}
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// SetDraining flips drain mode: healthz answers 503 and new checks and
// sessions are rejected, while feeds and deletes to existing sessions keep
// flowing (their backends drain independently).
func (rt *Router) SetDraining(v bool) {
	rt.draining.Store(v)
}

// Close stops the health prober. In-flight proxied requests are the
// http.Server's to drain.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
}

// routingKey extracts the consistent-hash key of a request: the trace
// header, the trace query parameter, then the tenant header. Empty means
// "any backend" (round-robin) for one-shots.
func (rt *Router) routingKey(r *http.Request) string {
	if k := r.Header.Get(RouterTraceHeader); k != "" {
		return k
	}
	if k := r.URL.Query().Get("trace"); k != "" {
		return k
	}
	return r.Header.Get(rt.cfg.TenantHeader)
}

// pick walks the ring from key's position and returns the first healthy
// backend not vetoed by skip (nil skip allows all). Keys owned by a down
// backend land deterministically on the next distinct backend along the
// ring, and return home when it recovers.
func (rt *Router) pick(key string, skip map[*backend]bool) *backend {
	h := ringHash(key)
	idx := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].h >= h })
	for i := 0; i < len(rt.ring); i++ {
		p := rt.ring[(idx+i)%len(rt.ring)]
		if p.b.healthy.Load() && !skip[p.b] {
			return p.b
		}
	}
	return nil
}

// pickAny round-robins over healthy backends, for keyless one-shots where
// affinity buys nothing and spreading load does.
func (rt *Router) pickAny(skip map[*backend]bool) *backend {
	n := len(rt.backends)
	start := int(rt.rr.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		b := rt.backends[(start+i)%n]
		if b.healthy.Load() && !skip[b] {
			return b
		}
	}
	return nil
}

// route resolves a request to a backend by key (or round-robin).
func (rt *Router) route(r *http.Request) *backend {
	if key := rt.routingKey(r); key != "" {
		return rt.pick(key, nil)
	}
	return rt.pickAny(nil)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	healthy := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			healthy++
		}
	}
	if healthy == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no healthy backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "backends_healthy": healthy, "backends_total": len(rt.backends),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	affine := make(map[string]int, len(rt.backends))
	for _, a := range rt.sessions {
		affine[a.b.name]++
	}
	rt.mu.Unlock()
	backends := map[string]any{}
	for _, b := range rt.backends {
		backends[b.name] = map[string]any{
			"healthy":         b.healthy.Load(),
			"routed_total":    b.routed.Load(),
			"proxy_errors":    b.proxyErrors.Load(),
			"sessions_affine": affine[b.name],
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":      time.Since(rt.start).Seconds(),
		"backends":            backends,
		"checks_routed":       rt.checksRouted.Load(),
		"sessions_routed":     rt.sessRouted.Load(),
		"affinity_lost_total": rt.affinityLost.Load(),
		"unroutable_total":    rt.unroutable.Load(),
	})
}

// handleCheck proxies POST /v1/check to the key's backend. The body
// streams through, so a mid-flight backend failure is a 502 to retry —
// only session creation, whose body is buffered, fails over transparently.
func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	b := rt.route(r)
	if b == nil {
		rt.unroutable.Add(1)
		writeError(w, http.StatusBadGateway, "no healthy backend")
		return
	}
	rt.checksRouted.Add(1)
	b.routed.Add(1)
	b.proxy.ServeHTTP(w, r)
}

// handleSessionCreate places a new session on the key's backend. The tiny
// JSON body is buffered, so creation retries across the ring when the
// first choice turns out to be down — the one place admission-time backend
// loss is invisible to the client.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	key := rt.routingKey(r)
	tried := map[*backend]bool{}
	for {
		var b *backend
		if key != "" {
			b = rt.pick(key, tried)
		} else {
			b = rt.pickAny(tried)
		}
		if b == nil {
			rt.unroutable.Add(1)
			writeError(w, http.StatusBadGateway, "no healthy backend")
			return
		}
		req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost,
			b.name+r.URL.RequestURI(), strings.NewReader(string(body)))
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, rerr.Error())
			return
		}
		req.Header = r.Header.Clone()
		resp, derr := rt.client.Do(req)
		if derr != nil {
			// Nothing streamed to the client yet: mark the backend down and
			// try the next one on the ring.
			b.proxyErrors.Add(1)
			rt.markDown(b, derr)
			tried[b] = true
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			writeError(w, http.StatusBadGateway, "backend response: "+rerr.Error())
			return
		}
		if resp.StatusCode == http.StatusCreated {
			var v SessionView
			if json.Unmarshal(data, &v) == nil && v.ID != "" {
				rt.rememberSession(v.ID, b)
			}
			rt.sessRouted.Add(1)
			b.routed.Add(1)
		}
		for k, vals := range resp.Header {
			w.Header()[k] = vals
		}
		w.Header().Set(RouterBackendHeader, b.name)
		w.WriteHeader(resp.StatusCode)
		w.Write(data)
		return
	}
}

// handleSessionSub proxies feeds, snapshots and deletes to the session's
// affine backend. A session whose backend died answers 409: its checker
// state died with the backend, and rehashing the remaining chunks onto a
// fresh engine would silently produce a verdict for a trace nobody sent.
func (rt *Router) handleSessionSub(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	var b *backend
	if a := rt.sessions[id]; a != nil {
		a.last = time.Now()
		b = a.b
	}
	rt.mu.Unlock()
	if b != nil && !b.healthy.Load() {
		rt.forgetSession(id)
		rt.affinityLost.Add(1)
		writeError(w, http.StatusConflict,
			"session affinity lost: backend "+b.name+" is down; open a new session and replay the trace")
		return
	}
	if b == nil {
		// Not in the affinity table (router restarted, or the id never
		// existed). With a routing key the lookup is deterministic — the
		// ring finds the same backend the key hashed to at creation; the
		// backend 404s if the session is truly gone. Without a key there is
		// nothing to hash, which is itself an affinity failure: the session
		// may well be alive on some backend this router no longer knows.
		if key := rt.routingKey(r); key != "" {
			b = rt.pick(key, nil)
		}
		if b == nil {
			rt.affinityLost.Add(1)
			writeError(w, http.StatusConflict,
				"session affinity unknown: pass the trace routing key ("+RouterTraceHeader+" or ?trace=)")
			return
		}
	}
	b.routed.Add(1)
	b.proxy.ServeHTTP(w, r)
}

func (rt *Router) rememberSession(id string, b *backend) {
	rt.mu.Lock()
	rt.sessions[id] = &affinity{b: b, last: time.Now()}
	rt.mu.Unlock()
}

// pruneAffinity drops affinity entries idle past AffinityTTL. Sessions
// that ended without a DELETE through the router (backend TTL eviction,
// abandoned clients) would otherwise leak an entry each.
func (rt *Router) pruneAffinity() {
	cutoff := time.Now().Add(-rt.cfg.AffinityTTL)
	rt.mu.Lock()
	for id, a := range rt.sessions {
		if a.last.Before(cutoff) {
			delete(rt.sessions, id)
		}
	}
	rt.mu.Unlock()
}

func (rt *Router) forgetSession(id string) {
	rt.mu.Lock()
	delete(rt.sessions, id)
	rt.mu.Unlock()
}
