package server

// Shard-router tests. Correctness: the golden corpus and the paper's
// ρ1–ρ4, replayed through the router's /v1/check and session API against
// two live backends, must stay byte-identical to sequential CheckSTD —
// routing is an ingestion topology, not a semantic variant. Failure modes:
// backend down at admission (creates fail over, checks reroute after
// mark-down), backend death mid-session (journaled failover onto the
// survivor, verdict unchanged; 409 only past the replay horizon),
// hash-ring determinism across router restarts, and drain behavior.

import (
	"aerodrome"

	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// cluster is a router fronting n in-process backends.
type cluster struct {
	router   *Router
	routerTS *httptest.Server
	backends []*Server
	backTS   []*httptest.Server
}

// newTestCluster boots n backends and a router over them. Probing is fast
// and a single failure marks a backend down, so failure tests don't wait.
func newTestCluster(t *testing.T, n int, cfg Config) *cluster {
	return newTestClusterTuned(t, n, cfg, nil)
}

// newTestClusterTuned is newTestCluster with a hook to adjust the router
// config (journal bounds, transports) before boot.
func newTestClusterTuned(t *testing.T, n int, cfg Config, tune func(*RouterConfig)) *cluster {
	t.Helper()
	c := &cluster{}
	var urls []string
	for i := 0; i < n; i++ {
		s, ts := newTestServer(t, cfg)
		c.backends = append(c.backends, s)
		c.backTS = append(c.backTS, ts)
		urls = append(urls, ts.URL)
	}
	rcfg := RouterConfig{
		Backends:      urls,
		ProbeInterval: 25 * time.Millisecond,
		FailAfter:     1,
	}
	if tune != nil {
		tune(&rcfg)
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	c.router = rt
	c.routerTS = httptest.NewServer(rt)
	t.Cleanup(func() {
		c.routerTS.Close()
		rt.Close()
	})
	return c
}

// postCheckKeyed streams body to the router's /v1/check under a routing
// key and returns the report plus the backend that served it.
func postCheckKeyed(t *testing.T, ts *httptest.Server, body []byte, key string) (*aerodrome.Report, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/check", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(RouterTraceHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed POST /v1/check: HTTP %d", resp.StatusCode)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep, resp.Header.Get(RouterBackendHeader)
}

// TestRouterCheckGoldenAndPaperTraces is the routed half of the e2e
// correctness pin: every golden and paper trace through the router (STD
// and binary one-shots, plus a chunked session replay) matches sequential
// CheckSTD on verdict, violation index and event count, and the traffic
// actually spreads across both backends.
func TestRouterCheckGoldenAndPaperTraces(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	traces := goldenSTD(t)
	for name, data := range paperSTD(t) {
		traces[name] = data
	}
	served := map[string]bool{}
	for name, std := range traces {
		want := wantReport(t, std, aerodrome.Auto) // backend default algo is auto
		rep, backend := postCheckKeyed(t, c.routerTS, std, name)
		served[backend] = true
		sameReport(t, name+"/std", rep, want)
		brep, _ := postCheckKeyed(t, c.routerTS, toBinary(t, std), name)
		sameReport(t, name+"/bin", brep, want)

		// Session replay through the router, chunked mid-line, keyed by
		// trace name so every chunk lands on the same backend.
		client := &Client{BaseURL: c.routerTS.URL, TraceKey: name}
		sess, err := client.NewSession("")
		if err != nil {
			t.Fatalf("%s: NewSession: %v", name, err)
		}
		chunk := 997
		if len(std) < 256 {
			chunk = 3
		}
		for i := 0; i < len(std); i += chunk {
			end := min(i+chunk, len(std))
			if _, err := sess.Feed(std[i:end]); err != nil {
				t.Fatalf("%s: feed: %v", name, err)
			}
		}
		srep, err := sess.Close()
		if err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		sameReport(t, name+"/routed-session", srep, want)
	}
	if len(served) != 2 {
		t.Fatalf("one-shot checks used backends %v, want both", served)
	}
}

// TestRouterRingDeterminism pins the consistent-hash contract: a router
// restarted over the same backend list assigns every key identically;
// marking one backend down moves exactly its keys (deterministically, to
// the next point on the ring) and leaves every other key in place; and
// recovery restores the original assignment.
func TestRouterRingDeterminism(t *testing.T) {
	urls := []string{"http://backend-a:8421", "http://backend-b:8421", "http://backend-c:8421"}
	newRing := func() *Router {
		rt, err := NewRouter(RouterConfig{Backends: urls, ProbeInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}
	rt1, rt2 := newRing(), newRing()

	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("trace-%d", i)
	}
	before := map[string]string{}
	perBackend := map[string]int{}
	for _, k := range keys {
		b1, b2 := rt1.pick(k, nil), rt2.pick(k, nil)
		if b1.name != b2.name {
			t.Fatalf("key %q: %s on router 1, %s on router 2", k, b1.name, b2.name)
		}
		before[k] = b1.name
		perBackend[b1.name]++
	}
	// The split must be usable, not perfect: no backend starves.
	for _, u := range urls {
		if perBackend[u] < len(keys)/10 {
			t.Fatalf("lopsided ring: %v", perBackend)
		}
	}

	// Deterministic rehash on loss: down a backend, only its keys move.
	var down *backend
	for _, b := range rt1.backends {
		if b.name == urls[1] {
			down = b
		}
	}
	down.healthy.Store(false)
	for _, k := range keys {
		after := rt1.pick(k, nil).name
		if before[k] != urls[1] && after != before[k] {
			t.Fatalf("key %q moved from surviving backend %s to %s", k, before[k], after)
		}
		if before[k] == urls[1] && after == urls[1] {
			t.Fatalf("key %q still on downed backend", k)
		}
		if rt2.pickDowned(k, urls[1]) != after {
			t.Fatalf("key %q: rehash differs across routers", k)
		}
	}
	// Recovery restores the original assignment exactly.
	down.healthy.Store(true)
	for _, k := range keys {
		if got := rt1.pick(k, nil).name; got != before[k] {
			t.Fatalf("key %q: %s after recovery, want %s", k, got, before[k])
		}
	}
}

// pickDowned is a test helper: pick with the named backend treated as
// down, leaving the router's real health state alone.
func (rt *Router) pickDowned(key, downed string) string {
	for _, b := range rt.backends {
		if b.name == downed {
			b.healthy.Store(false)
			defer b.healthy.Store(true)
		}
	}
	return rt.pick(key, nil).name
}

// TestRouterBackendDownAtAdmission pins the create-time failover: with a
// backend hard-down (connection refused), session creation still answers
// 201 on the first try — the buffered create retries across the ring —
// and one-shot checks converge to the survivor after the mark-down.
func TestRouterBackendDownAtAdmission(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	c.backTS[1].Close() // hard down: connection refused, prober not yet aware

	for i := 0; i < 16; i++ {
		resp := tenantPost(t, c.routerTS, "/v1/sessions?trace=key-"+fmt.Sprint(i), "", "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d with backend down: HTTP %d, want 201 (failover)", i, resp.StatusCode)
		}
	}

	// One-shot checks stream and cannot transparently retry: at most one
	// 503 (Retry-After set) marks the backend down, after which every key
	// routes to the survivor.
	unavailable := 0
	for i := 0; i < 16; i++ {
		resp := tenantPost(t, c.routerTS, "/v1/check?trace=key-"+fmt.Sprint(i), "", "t0|begin|0\nt0|end|0\n")
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("check %d: 503 without Retry-After", i)
			}
			unavailable++
		default:
			t.Fatalf("check %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if unavailable > 1 {
		t.Fatalf("%d checks hit 503, want ≤1 (first failure marks the backend down)", unavailable)
	}
}

// TestRouterBackendDiesMidSession pins the failover contract: a session
// whose backend dies mid-stream resumes transparently — the router
// recreates it on the survivor, replays the journaled prefix, and the
// final verdict is byte-identical to sequential CheckSTD over the whole
// trace. The survivor's own session is untouched, and the failover is
// visible in the router metrics.
func TestRouterBackendDiesMidSession(t *testing.T) {
	c := newTestCluster(t, 2, Config{})

	// Open sessions under distinct keys until both backends hold at least
	// one (the ring splits 500 keys; a handful suffices in practice).
	type routedSession struct{ id, backend, key string }
	var sessions []routedSession
	byBackend := map[string]routedSession{}
	for i := 0; len(byBackend) < 2 && i < 64; i++ {
		key := fmt.Sprintf("trace-%d", i)
		req, _ := http.NewRequest(http.MethodPost, c.routerTS.URL+"/v1/sessions", nil)
		req.Header.Set(RouterTraceHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var v SessionView
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: HTTP %d", resp.StatusCode)
		}
		rs := routedSession{id: v.ID, backend: resp.Header.Get(RouterBackendHeader), key: key}
		sessions = append(sessions, rs)
		byBackend[rs.backend] = rs
	}
	if len(byBackend) < 2 {
		t.Fatalf("could not place sessions on both backends: %v", byBackend)
	}

	// Feed the victim session the first half of a golden trace before the
	// crash: the journaled prefix is what failover must replay.
	victim := byBackend[c.backTS[0].URL]
	std := goldenSTD(t)["sharded-cross"]
	if len(std) == 0 {
		t.Fatal("golden trace sharded-cross missing")
	}
	want := wantReport(t, std, aerodrome.Auto)
	half := len(std) / 2
	feedChunk := func(rs routedSession, chunk []byte) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost,
			c.routerTS.URL+"/v1/sessions/"+rs.id+"/events", strings.NewReader(string(chunk)))
		req.Header.Set(RouterTraceHeader, rs.key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := feedChunk(victim, std[:half])
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash feed: HTTP %d", resp.StatusCode)
	}

	// Kill the victim's backend hard.
	c.backTS[0].Close()

	// Wait until the prober notices (FailAfter=1, 25ms interval).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(c.routerTS.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Healthy int `json:"backends_healthy"`
		}
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h.Healthy == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the dead backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Feeding the orphaned session now fails over: the router recreates it
	// on the survivor, replays the journaled prefix, and applies the rest.
	resp = feedChunk(victim, std[half:])
	servedBy := resp.Header.Get(RouterBackendHeader)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash feed: HTTP %d, want 200 (failover)", resp.StatusCode)
	}
	if servedBy != c.backTS[1].URL {
		t.Fatalf("post-crash feed served by %q, want survivor %q", servedBy, c.backTS[1].URL)
	}

	// Finalize through the router: the report must match sequential
	// CheckSTD over the whole trace — failover is semantically invisible.
	req, _ := http.NewRequest(http.MethodDelete, c.routerTS.URL+"/v1/sessions/"+victim.id, nil)
	req.Header.Set(RouterTraceHeader, victim.key)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover DELETE: HTTP %d", dresp.StatusCode)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(dresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	sameReport(t, "failover-session", &rep, want)

	// The survivor's own session is untouched.
	survivor := byBackend[c.backTS[1].URL]
	resp = feedChunk(survivor, []byte("t0|begin|0\n"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surviving session feed: HTTP %d, want 200", resp.StatusCode)
	}

	mresp, err := http.Get(c.routerTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Failovers     int64 `json:"failovers_total"`
		ReplayedBytes int64 `json:"replayed_bytes_total"`
		RingEpoch     int64 `json:"ring_epoch"`
	}
	json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if m.Failovers < 1 {
		t.Fatalf("failovers_total = %d, want ≥1", m.Failovers)
	}
	if m.ReplayedBytes < int64(half) {
		t.Fatalf("replayed_bytes_total = %d, want ≥%d", m.ReplayedBytes, half)
	}
	if m.RingEpoch < 1 {
		t.Fatalf("ring_epoch = %d, want ≥1 after a backend loss", m.RingEpoch)
	}
}

// TestRouterUnknownSession pins the affinity-miss paths: an id the router
// has never seen is 409 without a routing key (the session may be alive on
// a backend this router no longer knows) and a clean backend 404 with one.
func TestRouterUnknownSession(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	resp, err := http.Get(c.routerTS.URL + "/v1/sessions/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("keyless unknown session: HTTP %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(c.routerTS.URL + "/v1/sessions/deadbeef?trace=k")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("keyed unknown session: HTTP %d, want backend 404", resp.StatusCode)
	}
}

// TestRouterDrainAndNoBackends pins the operational edges: draining
// rejects new work but keeps existing-session traffic flowing, and a
// router with every backend down is 503 + Retry-After everywhere.
func TestRouterDrainAndNoBackends(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	client := &Client{BaseURL: c.routerTS.URL, TraceKey: "drain-key"}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}

	c.router.SetDraining(true)
	resp, err := http.Get(c.routerTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: HTTP %d, want 503", resp.StatusCode)
	}
	resp = tenantPost(t, c.routerTS, "/v1/check", "", "t0|begin|0\nt0|end|0\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining check: HTTP %d, want 503", resp.StatusCode)
	}
	if _, err := sess.Feed([]byte("t0|begin|0\nt0|end|0\n")); err != nil {
		t.Fatalf("draining feed to existing session: %v, want success", err)
	}
	c.router.SetDraining(false)

	for _, b := range c.router.backends {
		b.healthy.Store(false)
	}
	resp, err = http.Get(c.routerTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-backend healthz: HTTP %d, want 503", resp.StatusCode)
	}
	resp = tenantPost(t, c.routerTS, "/v1/check", "", "t0|begin|0\nt0|end|0\n")
	ra := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-backend check: HTTP %d, want 503", resp.StatusCode)
	}
	if ra == "" {
		t.Fatal("no-backend check: 503 without Retry-After")
	}
}
