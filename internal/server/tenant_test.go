package server

// Multi-tenant quota tests: per-tenant session, concurrent-check and byte
// budgets must reject the over-quota tenant (429 + Retry-After) without
// touching its neighbors, release slots on finalization, and hold exact
// under admission races — the quota layer is the isolation boundary the
// shard router multiplies across backends.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tenantPost posts body to path with the given tenant header.
func tenantPost(t *testing.T, ts *httptest.Server, path, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(DefaultTenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTenantSessionQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantQuota: TenantQuota{MaxSessions: 2}})

	var ids []string
	openSession := func(tenant string) (*http.Response, string) {
		resp := tenantPost(t, ts, "/v1/sessions", tenant, "")
		defer resp.Body.Close()
		var v SessionView
		json.NewDecoder(resp.Body).Decode(&v)
		return resp, v.ID
	}

	for i := 0; i < 2; i++ {
		resp, id := openSession("acme")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("session %d: HTTP %d, want 201", i, resp.StatusCode)
		}
		ids = append(ids, id)
	}
	resp, _ := openSession("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota session: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant 429 without Retry-After")
	}
	// A different tenant has its own budget.
	if resp, _ := openSession("other"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("neighbor tenant: HTTP %d, want 201", resp.StatusCode)
	}
	// Finalizing frees the slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+ids[0], nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if resp, _ := openSession("acme"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("slot not freed after DELETE: HTTP %d", resp.StatusCode)
	}
}

func TestTenantCheckQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantQuota: TenantQuota{MaxConcurrentChecks: 1}})

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/check", pr)
		req.Header.Set(DefaultTenantHeader, "acme")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	if _, err := pw.Write([]byte("t0|begin|0\n")); err != nil {
		t.Fatal(err)
	}

	// acme's one slot is held; its next check must answer 429 (poll: the
	// held request races to the handler), while another tenant sails
	// through the whole time.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := tenantPost(t, ts, "/v1/check", "acme", "t0|begin|0\nt0|end|0\n")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturated tenant never rejected: last HTTP %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp := tenantPost(t, ts, "/v1/check", "other", "t0|begin|0\nt0|end|0\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("neighbor tenant during saturation: HTTP %d, want 200", resp.StatusCode)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	resp = tenantPost(t, ts, "/v1/check", "acme", "t0|begin|0\nt0|end|0\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: HTTP %d, want 200", resp.StatusCode)
	}
}

func TestTenantByteBudget(t *testing.T) {
	// 256 B/s: the first small body fits the (one-second) bucket, the
	// second is rejected with a Retry-After, and an untagged request is
	// untouched (it belongs to the separately budgeted "default" tenant).
	_, ts := newTestServer(t, Config{
		TenantQuotas: map[string]TenantQuota{"acme": {BytesPerSec: 256}},
	})
	body := strings.Repeat("t0|begin|0\nt0|end|0\n", 10) // 200 bytes

	resp := tenantPost(t, ts, "/v1/check", "acme", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first check: HTTP %d, want 200", resp.StatusCode)
	}
	resp = tenantPost(t, ts, "/v1/check", "acme", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget check: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("byte-budget 429 without Retry-After")
	}
	resp = tenantPost(t, ts, "/v1/check", "", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untagged check during acme exhaustion: HTTP %d, want 200", resp.StatusCode)
	}

	// Chunked transfer (no declared length): the budget trips mid-stream
	// and still surfaces as 429.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/check",
		struct{ io.Reader }{strings.NewReader(body)})
	req.Header.Set(DefaultTenantHeader, "acme")
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("chunked over-budget check: HTTP %d, want 429", cresp.StatusCode)
	}
}

// TestTenantByteBudgetNeverAdmissible pins the 413-vs-429 distinction: a
// declared body larger than the bucket capacity (one second of budget)
// can never be admitted, so it must get a terminal 413 instead of a 429
// whose Retry-After would loop an obedient client forever.
func TestTenantByteBudgetNeverAdmissible(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantQuota: TenantQuota{BytesPerSec: 64}})
	body := strings.Repeat("t0|begin|0\nt0|end|0\n", 10) // 200 bytes > 64-byte bucket
	resp := tenantPost(t, ts, "/v1/check", "acme", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("never-admissible check: HTTP %d, want 413", resp.StatusCode)
	}
}

// TestTenantTableBounded pins the overflow cap: the tenant header is
// client-supplied, so inventing fresh names must not grow the table (or
// mint fresh budgets) without bound — past MaxTenants every new name
// shares one overflow bucket, which the quota still throttles.
func TestTenantTableBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxTenants:  4,
		TenantQuota: TenantQuota{MaxSessions: 1},
	})
	for i := 0; i < 16; i++ {
		resp := tenantPost(t, ts, "/v1/sessions", fmt.Sprintf("rotating-%d", i), "")
		resp.Body.Close()
	}
	s.tenantMu.Lock()
	n := len(s.tenants)
	overflow := s.tenants[overflowTenant]
	s.tenantMu.Unlock()
	if n > 5 { // MaxTenants distinct names + the shared overflow bucket
		t.Fatalf("tenant table grew to %d entries, want ≤ 5", n)
	}
	if overflow == nil {
		t.Fatal("overflow tenant never materialized")
	}
	// The shared overflow budget throttles rotated names: of the 13
	// creations that landed on it, only MaxSessions=1 was admitted.
	if got := overflow.sessions.Load(); got != 1 {
		t.Fatalf("overflow sessions = %d, want 1", got)
	}
	if overflow.sessionsRejected.Load() == 0 {
		t.Fatal("overflow rejections = 0, want > 0")
	}
}

// TestTenantQuotaRacesSessionCreation pins quota exactness under the race
// the admission path actually runs: many concurrent creations against a
// small per-tenant budget admit exactly the budget, no more, no matter how
// the goroutines interleave.
func TestTenantQuotaRacesSessionCreation(t *testing.T) {
	const quota, attempts = 8, 64
	_, ts := newTestServer(t, Config{TenantQuota: TenantQuota{MaxSessions: quota}})

	var created, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := tenantPost(t, ts, "/v1/sessions", "acme", "")
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusCreated:
				created.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				t.Errorf("unexpected HTTP %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if created.Load() != quota || rejected.Load() != attempts-quota {
		t.Fatalf("created %d / rejected %d, want %d / %d",
			created.Load(), rejected.Load(), quota, attempts-quota)
	}
}

// TestTenantMetrics pins the per-tenant /metrics section: the counters the
// saturation bench and operators read.
func TestTenantMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{TenantQuota: TenantQuota{MaxSessions: 1}})

	resp := tenantPost(t, ts, "/v1/check", "acme", "t0|begin|0\nt0|w(x)|1\nt0|end|0\n")
	resp.Body.Close()
	for i := 0; i < 2; i++ { // second create is over quota
		resp := tenantPost(t, ts, "/v1/sessions", "acme", "")
		resp.Body.Close()
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m struct {
		Tenants map[string]struct {
			SessionsActive   int64 `json:"sessions_active"`
			SessionsRejected int64 `json:"sessions_rejected"`
			ChecksTotal      int64 `json:"checks_total"`
			EventsTotal      int64 `json:"events_total"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	acme, ok := m.Tenants["acme"]
	if !ok {
		t.Fatalf("tenant section missing acme: %+v", m.Tenants)
	}
	if acme.ChecksTotal != 1 || acme.EventsTotal != 3 {
		t.Fatalf("acme checks/events = %d/%d, want 1/3", acme.ChecksTotal, acme.EventsTotal)
	}
	if acme.SessionsActive != 1 || acme.SessionsRejected != 1 {
		t.Fatalf("acme sessions active/rejected = %d/%d, want 1/1",
			acme.SessionsActive, acme.SessionsRejected)
	}
}
