package server

// End-to-end correctness: every trace in the golden corpus and the
// paper's ρ1–ρ4, replayed through POST /v1/check (STD and binary bodies)
// and through the incremental session API, must produce byte-identical
// verdict, violation index and event count to sequential CheckSTD on the
// same bytes. The server is an ingestion front end, not a semantic
// variant.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aerodrome"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

const goldenDir = "../../testdata/golden"

// goldenSTD returns name → STD bytes for the whole checked-in corpus.
func goldenSTD(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(goldenDir, "*.std"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("golden corpus missing under %s (%v)", goldenDir, err)
	}
	out := map[string][]byte{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(filepath.Base(p), ".std")] = data
	}
	return out
}

// paperSTD returns the paper's worked traces as STD bytes.
func paperSTD(t *testing.T) map[string][]byte {
	t.Helper()
	render := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := rapidio.WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	return map[string][]byte{
		"rho1": render(testutil.Rho1()),
		"rho2": render(testutil.Rho2()),
		"rho3": render(testutil.Rho3()),
		"rho4": render(testutil.Rho4()),
	}
}

// toBinary re-encodes an STD log in the compact binary format.
func toBinary(t *testing.T, std []byte) []byte {
	t.Helper()
	rd := rapidio.NewReader(bytes.NewReader(std))
	var buf bytes.Buffer
	bw := rapidio.NewBinaryWriter(&buf)
	for {
		ev, ok := rd.Next()
		if !ok {
			break
		}
		if err := bw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rd.Err(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func wantReport(t *testing.T, std []byte, algo aerodrome.Algorithm) *aerodrome.Report {
	t.Helper()
	rep, err := aerodrome.CheckSTD(bytes.NewReader(std), algo)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func sameReport(t *testing.T, label string, got, want *aerodrome.Report) {
	t.Helper()
	if got.Serializable != want.Serializable || got.Events != want.Events || got.Algorithm != want.Algorithm {
		t.Fatalf("%s: report %+v, want %+v", label, got, want)
	}
	if !want.Serializable {
		g, w := got.Violation, want.Violation
		if g == nil || g.EventIndex != w.EventIndex || g.Check != w.Check || g.Thread != w.Thread {
			t.Fatalf("%s: violation %+v, want %+v", label, g, w)
		}
	}
}

// postCheck streams body to /v1/check and decodes the report.
func postCheck(t *testing.T, ts *httptest.Server, body []byte, algo string) *aerodrome.Report {
	t.Helper()
	url := ts.URL + "/v1/check"
	if algo != "" {
		url += "?algo=" + algo
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/check: HTTP %d", resp.StatusCode)
	}
	var rep aerodrome.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

func TestServeCheckGoldenAndPaperTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	traces := goldenSTD(t)
	for name, data := range paperSTD(t) {
		traces[name] = data
	}
	for name, std := range traces {
		want := wantReport(t, std, aerodrome.Auto) // server default is auto
		sameReport(t, name+"/std", postCheck(t, ts, std, ""), want)
		sameReport(t, name+"/bin", postCheck(t, ts, toBinary(t, std), ""), want)
		for _, algo := range []aerodrome.Algorithm{aerodrome.Basic, aerodrome.Optimized, aerodrome.OptimizedHybrid} {
			w := wantReport(t, std, algo)
			sameReport(t, name+"/"+string(algo), postCheck(t, ts, std, string(algo)), w)
		}
	}
}

// feedSession drives one incremental session over std in fixed-size
// chunks (splitting lines arbitrarily) and returns the final report from
// DELETE.
func feedSession(t *testing.T, ts *httptest.Server, std []byte, algo string, chunk int) *aerodrome.Report {
	t.Helper()
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession(algo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(std); i += chunk {
		end := i + chunk
		if end > len(std) {
			end = len(std)
		}
		if _, err := sess.Feed(std[i:end]); err != nil {
			t.Fatalf("feed: %v", err)
		}
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	return rep
}

func TestSessionIncrementalGoldenAndPaperTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	traces := goldenSTD(t)
	for name, data := range paperSTD(t) {
		traces[name] = data
	}
	for name, std := range traces {
		want := wantReport(t, std, aerodrome.Auto)
		// 997 splits lines mid-token; the tiny chunk hits every boundary
		// on the small paper traces.
		chunk := 997
		if len(std) < 256 {
			chunk = 3
		}
		sameReport(t, name+"/session", feedSession(t, ts, std, "", chunk), want)
	}
}

// TestSessionLifecycle walks one session through the whole protocol:
// create, feed, snapshot, violation latch, post-violation discard,
// delete.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	std := paperSTD(t)["rho2"]
	want := wantReport(t, std, aerodrome.Optimized)

	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("optimized")
	if err != nil {
		t.Fatal(err)
	}

	// Feed everything up to (not including) the violating event's line.
	lines := bytes.SplitAfter(std, []byte("\n"))
	head := bytes.Join(lines[:int(want.Violation.EventIndex)], nil)
	view, err := sess.Feed(head)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != stateActive || view.Violation != nil {
		t.Fatalf("pre-violation view: %+v", view)
	}
	if view.Events != want.Violation.EventIndex {
		t.Fatalf("events = %d, want %d", view.Events, want.Violation.EventIndex)
	}

	// GET agrees with the feed response.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got SessionView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != stateActive || got.Events != view.Events {
		t.Fatalf("GET view %+v, want %+v", got, view)
	}

	// The rest of the trace latches the violation; later feeds are
	// accepted and discarded.
	view, err = sess.Feed(bytes.Join(lines[int(want.Violation.EventIndex):], nil))
	if err != nil {
		t.Fatal(err)
	}
	if view.State != stateViolated || view.Violation == nil ||
		view.Violation.EventIndex != want.Violation.EventIndex {
		t.Fatalf("post-violation view: %+v", view)
	}
	view, err = sess.Feed([]byte("not|even|an|std|line\n"))
	if err != nil || view.State != stateViolated {
		t.Fatalf("discarded feed: %+v, %v", view, err)
	}

	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "lifecycle", rep, want)

	// The session is gone.
	resp, err = http.Get(ts.URL + "/v1/sessions/" + sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after close: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestSessionTrailingLineFlush pins DELETE's flush of a final line with no
// trailing newline.
func TestSessionTrailingLineFlush(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feed([]byte("t0|begin|0\nt0|w(x)|1\nt0|end|0")); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Serializable || rep.Events != 3 {
		t.Fatalf("report %+v, want serializable with 3 events", rep)
	}
}

func TestSessionParseErrorFailsSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	view, err := sess.Feed([]byte("t0|begin|0\nt0|zap|0\n"))
	if err == nil || view == nil || view.State != stateFailed {
		t.Fatalf("malformed feed: view %+v, err %v; want failed state", view, err)
	}
	// Subsequent feeds answer 409.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/events", "text/plain",
		strings.NewReader("t0|end|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("feed after failure: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestCheckRejectsUnknownAlgoAndBadBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/check?algo=quantum", "text/plain", strings.NewReader("t0|begin|0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algo: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/check", "text/plain", strings.NewReader("what even is this"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed trace: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestBodyTooLargeIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := strings.Repeat("t0|begin|0\nt0|end|0\n", 64)
	resp, err := http.Post(ts.URL+"/v1/check", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized check: HTTP %d, want 413", resp.StatusCode)
	}
	// Chunked transfer (no declared length): the limit trips mid-stream
	// and must still surface as 413, not as a parse error on the
	// truncated tail.
	resp, err = http.Post(ts.URL+"/v1/check", "text/plain", struct{ io.Reader }{strings.NewReader(big)})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chunked check: HTTP %d, want 413", resp.StatusCode)
	}
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/events", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized chunk: HTTP %d, want 413", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	std := paperSTD(t)["rho2"]
	postCheck(t, ts, std, "")
	feedSession(t, ts, std, "", 16)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Sessions struct {
			Active, Opened, Closed int64
		} `json:"sessions"`
		Checks struct {
			Total int64
		} `json:"checks"`
		EventsTotal      int64            `json:"events_total"`
		ViolationsTotal  int64            `json:"violations_total"`
		EngineSelections map[string]int64 `json:"engine_selections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Checks.Total != 1 || m.Sessions.Opened != 1 || m.Sessions.Closed != 1 || m.Sessions.Active != 0 {
		t.Fatalf("metrics counters off: %+v", m)
	}
	if m.ViolationsTotal != 2 { // one violating check + one violating session
		t.Fatalf("violations_total = %d, want 2", m.ViolationsTotal)
	}
	if m.EventsTotal == 0 || len(m.EngineSelections) == 0 {
		t.Fatalf("metrics missing events/engines: %+v", m)
	}

	// Draining flips healthz to 503.
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: 40 * time.Millisecond})
	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSession("")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sessions/" + sess.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted within 5s of a 40ms TTL")
		}
		// Note: the GET above does not refresh lastActive (only feeds do),
		// so the janitor will get there.
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.metrics.sessionsEvicted.Load(); got != 1 {
		t.Fatalf("sessions_evicted = %d, want 1", got)
	}
}
