// Package server implements aerodromed, the multi-session streaming
// atomicity-checking service: a stdlib-only HTTP front end over the
// repository's checking layers. The paper's algorithm is a single-pass,
// bounded-memory sweep, so a server can multiplex many concurrent trace
// streams — each request (or session) is one independent engine driven by
// the ingestion pipeline.
//
// Endpoints:
//
//	POST /v1/check                 whole trace in (STD or binary, sniffed),
//	                               JSON Report out; parsing is pipelined
//	                               against checking per request
//	POST /v1/sessions              open an incremental session
//	POST /v1/sessions/{id}/events  feed one STD chunk, snapshot out
//	GET  /v1/sessions/{id}         session snapshot
//	DELETE /v1/sessions/{id}       finalize, final Report out
//	GET  /healthz                  liveness (503 while draining)
//	GET  /metrics                  expvar-style JSON counters
//
// Resource management: at most MaxSessions concurrent sessions and
// MaxConcurrentChecks concurrent one-shot checks — over-admission is
// rejected (429/503, Retry-After) rather than queued; request bodies are
// bounded by MaxBodyBytes; idle sessions are evicted after SessionTTL;
// SetDraining flips healthz and new admissions for a graceful drain, while
// in-flight work completes under http.Server.Shutdown.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aerodrome"
	"aerodrome/internal/rapidio"
)

// Config tunes the server. The zero value selects the defaults.
type Config struct {
	// Algorithm is the default checking algorithm for requests that do not
	// name one. Defaults to aerodrome.Auto: the server cannot know the
	// thread width of the next trace, which is exactly the case the
	// width-adaptive representation exists for.
	Algorithm aerodrome.Algorithm
	// MaxSessions caps concurrent incremental sessions (default 1024);
	// session creation beyond it is answered 429.
	MaxSessions int
	// MaxConcurrentChecks caps concurrent /v1/check requests (default
	// 2×GOMAXPROCS); checks beyond it are answered 503. Each check runs a
	// two-goroutine pipeline, so the default keeps the box saturated
	// without queueing unboundedly behind the scheduler.
	MaxConcurrentChecks int
	// MaxBodyBytes bounds one request body — a whole trace for /v1/check,
	// one chunk for session feeds (default 64 MiB).
	MaxBodyBytes int64
	// SessionTTL evicts sessions idle longer than this (default 5m).
	SessionTTL time.Duration
	// BodyReadTimeout bounds each read of a request body (default 30s).
	// A whole-request timeout would kill legitimate slow trace streams;
	// a per-read deadline only requires the client to keep making
	// progress, so a stalled upload cannot pin a session lock or an
	// admission slot indefinitely.
	BodyReadTimeout time.Duration
	// TenantHeader names the request header that identifies the tenant
	// (default "X-Aerodrome-Tenant"); requests without it share the
	// "default" tenant.
	TenantHeader string
	// TenantQuota is the admission budget applied to every tenant (the
	// zero value disables per-tenant admission; the global caps above
	// always apply).
	TenantQuota TenantQuota
	// TenantQuotas overrides TenantQuota for specific tenant names.
	TenantQuotas map[string]TenantQuota
	// MaxTenants bounds the tenant table (default 4096): the tenant header
	// is client-supplied, so names beyond the cap share one overflow
	// budget instead of growing state without bound.
	MaxTenants int
	// Logger receives structured access and lifecycle logs. Nil (the
	// default for embedders and tests) discards them; the daemon wires
	// its -log-level flag here.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = aerodrome.Auto
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxConcurrentChecks <= 0 {
		c.MaxConcurrentChecks = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.BodyReadTimeout <= 0 {
		c.BodyReadTimeout = 30 * time.Second
	}
	if c.TenantHeader == "" {
		c.TenantHeader = DefaultTenantHeader
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	return c
}

// Server is the aerodromed HTTP handler plus its session table, admission
// semaphore and metrics. Create with New, serve with any http.Server, stop
// with Close.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	checkSem chan struct{}
	metrics  *metrics
	logger   *slog.Logger
	draining atomic.Bool

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	// finalized caches each DELETE's exact response bytes for a short
	// window (see finalizedTTL in session.go), making finalize idempotent:
	// a retried DELETE — a client that lost the response, or a router
	// re-sending after a connection fault — replays the report instead of
	// getting a 404 that reads as a lost session.
	finalMu   sync.Mutex
	finalized map[string]finalizedReport

	tenantMu sync.Mutex
	tenants  map[string]*tenant

	stop     chan struct{}
	stopOnce sync.Once
}

// New validates cfg and returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	// Fail fast on an unknown default algorithm rather than per request.
	if _, err := aerodrome.NewCheckerErr(cfg.Algorithm); err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = newLogger(nil, 0)
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		checkSem:  make(chan struct{}, cfg.MaxConcurrentChecks),
		metrics:   newMetrics(),
		logger:    logger,
		sessions:  map[string]*session{},
		finalized: map[string]finalizedReport{},
		tenants:   map[string]*tenant{},
		stop:      make(chan struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/check", s.handleCheck)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	go s.janitor(cfg.SessionTTL)
	return s, nil
}

// ServeHTTP implements http.Handler. Every request gets a correlation
// ID (RequestIDHeader, generated here when the client — or an upstream
// router — did not supply one), echoed in the response and carried on
// the structured access log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	serveLogged(s.logger, s.mux, w, r)
}

// SetDraining flips drain mode: healthz answers 503 (so load balancers
// stop routing here) and new sessions and checks are rejected, while
// requests already admitted run to completion. The daemon calls this on
// SIGTERM before http.Server.Shutdown.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
}

// Close stops the janitor and finalizes every remaining session. It does
// not interrupt in-flight handlers — drain those first via
// http.Server.Shutdown.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	s.closed = true
	remaining := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		remaining = append(remaining, sess)
	}
	s.sessions = map[string]*session{}
	s.mu.Unlock()
	for _, sess := range remaining {
		s.finalizeSession(sess, &s.metrics.sessionsClosed)
		s.metrics.sessionsActive.Add(-1)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleCheck is POST /v1/check: one whole trace in, one Report out. The
// body format is sniffed from the first bytes exactly like
// CheckFilesParallel, and parsing overlaps checking through the ingestion
// pipeline.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// Tenant admission precedes the global semaphore so one over-quota
	// tenant cannot burn global slots on requests that were never going to
	// run.
	ten := s.tenant(r)
	release, ok := ten.admitCheck()
	if !ok {
		writeQuotaRejection(w, 0, "tenant check concurrency limit reached")
		return
	}
	defer release()
	select {
	case s.checkSem <- struct{}{}:
		defer func() { <-s.checkSem }()
	default:
		s.metrics.checksRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "check concurrency limit reached")
		return
	}
	s.metrics.checksActive.Add(1)
	defer s.metrics.checksActive.Add(-1)

	algo := s.cfg.Algorithm
	if q := r.URL.Query().Get("algo"); q != "" {
		algo = aerodrome.Algorithm(q)
	}
	// `?analyses=` selects the analysis set ("atomicity,hbrace"); absent or
	// empty means the default set, whose report stays byte-identical to the
	// single-analysis service.
	analyses, err := aerodrome.ParseAnalyses(r.URL.Query().Get("analyses"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.ContentLength > s.cfg.MaxBodyBytes {
		// Reject declared-oversized bodies before parsing: once the
		// MaxBytesReader truncates mid-line, the parser reports the
		// truncated fragment and would mask the real cause.
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	// Declared body cost is debited from the tenant's byte budget before
	// any parsing; chunked bodies (unknown length) are debited as they
	// stream instead. A body larger than the bucket itself can never be
	// admitted, so it gets a terminal 413 rather than a 429 that would
	// send an obedient client into a retry loop.
	if ok, retry, never := ten.admitBytes(r.ContentLength); !ok {
		if never {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds tenant byte budget capacity")
			return
		}
		writeQuotaRejection(w, retry, "tenant byte budget exhausted")
		return
	}
	s.metrics.checksTotal.Add(1)
	ten.checksTotal.Add(1)
	// For chunked bodies the limit can only trip mid-stream; track it so
	// the resulting truncated-line parse error still maps to 413.
	limited := &limitTrackReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	var raw io.Reader = limited
	if r.ContentLength < 0 {
		raw = &tenantBytesReader{r: limited, t: ten}
	}
	body := bufio.NewReaderSize(s.bodyReader(w, raw), 1<<16)
	head, _ := body.Peek(4)
	var rep *aerodrome.Report
	var cs aerodrome.CheckStats
	if rapidio.IsBinary(head) {
		rep, cs, err = aerodrome.CheckBinaryReaderPipelinedStatsAnalyses(body, algo, analyses)
	} else {
		rep, cs, err = aerodrome.CheckReaderPipelinedStatsAnalyses(body, algo, analyses)
	}
	if err != nil {
		var budget *errTenantBudget
		switch {
		case limited.tripped:
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		case errors.As(err, &budget):
			writeQuotaRejection(w, budget.retryAfter, "tenant byte budget exhausted")
		case errors.Is(err, os.ErrDeadlineExceeded):
			writeError(w, http.StatusRequestTimeout, "request body stalled")
		default:
			writeBodyError(w, err)
		}
		return
	}
	s.metrics.eventsTotal.Add(rep.Events)
	ten.eventsTotal.Add(rep.Events)
	if !rep.Serializable {
		s.metrics.violationsTotal.Add(1)
		ten.violationsTotal.Add(1)
	}
	s.metrics.countCheck(rep)
	s.metrics.selectEngine(rep.Algorithm)
	s.metrics.stageParse.Record(cs.ParseTime)
	s.metrics.stageCheck.Record(cs.CheckTime)
	if cs.HasEngineStats {
		s.metrics.addEngineStats(cs.Engine)
	}
	writeJSON(w, http.StatusOK, rep)
}

// bodyReader wraps a request body so every read must progress within
// BodyReadTimeout (see deadlineReader).
func (s *Server) bodyReader(w http.ResponseWriter, r io.Reader) io.Reader {
	return &deadlineReader{rc: http.NewResponseController(w), r: r, d: s.cfg.BodyReadTimeout}
}

// deadlineReader arms a fresh read deadline before every Read: a client
// that keeps sending is never cut off, a stalled one fails with
// os.ErrDeadlineExceeded instead of pinning its handler (and whatever
// lock or admission slot that handler holds) forever.
type deadlineReader struct {
	rc *http.ResponseController
	r  io.Reader
	d  time.Duration
}

func (dr *deadlineReader) Read(p []byte) (int, error) {
	// SetReadDeadline errors (unsupported by the underlying conn, as in
	// some test harnesses) degrade to the old unbounded behavior.
	dr.rc.SetReadDeadline(time.Now().Add(dr.d))
	return dr.r.Read(p)
}

// limitTrackReader remembers whether the wrapped MaxBytesReader tripped,
// so a downstream parse error on the truncated tail can be reported as
// the size-limit condition it really is.
type limitTrackReader struct {
	r       io.Reader
	tripped bool
}

func (l *limitTrackReader) Read(p []byte) (int, error) {
	n, err := l.r.Read(p)
	if err != nil && isBodyTooLarge(err) {
		l.tripped = true
	}
	return n, err
}

func writeBodyError(w http.ResponseWriter, err error) {
	if isBodyTooLarge(err) {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
