package server

// Typed /metrics snapshots. These structs ARE the JSON wire schema of
// GET /metrics on both daemon modes: what the backend and router encode
// is what Client.refreshRing, the load harness's failover scrape and
// the e2e assertions decode. Field declaration order is the encoding
// order, and the legacy schema was produced from Go maps (which
// encoding/json emits with sorted keys) — so fields here MUST stay in
// alphabetical JSON-key order to keep the emitted document
// byte-compatible with pre-typed releases.

import (
	"aerodrome"
	"aerodrome/internal/obs"
)

// StageMetrics summarizes one stage latency histogram for the JSON
// view: observation count and two tail quantiles in milliseconds. The
// full bucket detail is available from the Prometheus exposition
// (GET /metrics?format=prom).
type StageMetrics struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// EngineMetrics is the aggregated engine-introspection section of the
// backend snapshot: the counters of every stats-reporting engine the
// server has run (one-shot checks and sessions alike), plus the derived
// epoch fast-path hit rate.
type EngineMetrics struct {
	aerodrome.EngineStats
	EpochHitRate float64 `json:"epoch_hit_rate"`
}

// CheckMetrics is the one-shot /v1/check counter section.
type CheckMetrics struct {
	Active   int64 `json:"active"`
	Rejected int64 `json:"rejected"`
	Total    int64 `json:"total"`
}

// SessionMetrics is the incremental-session counter section.
type SessionMetrics struct {
	Active   int64 `json:"active"`
	Closed   int64 `json:"closed"`
	Evicted  int64 `json:"evicted"`
	Opened   int64 `json:"opened"`
	Rejected int64 `json:"rejected"`
}

// AnalysisMetrics is one analysis' counter row in the backend snapshot:
// how many one-shot checks and sessions ran it, and how many violations
// it reported.
type AnalysisMetrics struct {
	Checks     int64 `json:"checks"`
	Sessions   int64 `json:"sessions"`
	Violations int64 `json:"violations"`
}

// MetricsSnapshot is the backend (single-node aerodromed) /metrics
// document.
type MetricsSnapshot struct {
	// Analyses is the per-analysis counter table keyed by analysis name
	// ("atomicity", "hbrace").
	Analyses map[string]AnalysisMetrics `json:"analyses"`
	Checks   CheckMetrics               `json:"checks"`
	// Engine aggregates introspection counters settled from finished
	// checks and from sessions at feed/finalize boundaries.
	Engine EngineMetrics `json:"engine"`
	// EngineSelections counts checks and sessions per engine name — the
	// observability for the `auto` default.
	EngineSelections map[string]int64 `json:"engine_selections"`
	EventsPerSecond  float64          `json:"events_per_second"`
	EventsTotal      int64            `json:"events_total"`
	Sessions         SessionMetrics   `json:"sessions"`
	// Stages holds per-stage latency summaries keyed by stage name
	// (parse, check, feed, finalize).
	Stages map[string]StageMetrics `json:"stages"`
	// Tenants is the per-tenant counter table keyed by tenant name.
	Tenants         map[string]map[string]int64 `json:"tenants"`
	UptimeSeconds   float64                     `json:"uptime_seconds"`
	ViolationsTotal int64                       `json:"violations_total"`
}

// RouterBackendMetrics is one backend's row in the router snapshot.
type RouterBackendMetrics struct {
	Healthy        bool  `json:"healthy"`
	ProxyErrors    int64 `json:"proxy_errors"`
	RoutedTotal    int64 `json:"routed_total"`
	SessionsAffine int64 `json:"sessions_affine"`
}

// RouterJournalMetrics is the session-journal section of the router
// snapshot.
type RouterJournalMetrics struct {
	Bytes          int64 `json:"bytes"`
	MemBytes       int64 `json:"mem_bytes"`
	TruncatedTotal int64 `json:"truncated_total"`
}

// RouterMetricsSnapshot is the shard-router /metrics document.
type RouterMetricsSnapshot struct {
	AffinityLostTotal       int64                           `json:"affinity_lost_total"`
	Backends                map[string]RouterBackendMetrics `json:"backends"`
	ChecksRouted            int64                           `json:"checks_routed"`
	FailoverFailuresTotal   int64                           `json:"failover_failures_total"`
	FailoversTotal          int64                           `json:"failovers_total"`
	Journal                 RouterJournalMetrics            `json:"journal"`
	ReplayedBytesTotal      int64                           `json:"replayed_bytes_total"`
	RingEpoch               uint64                          `json:"ring_epoch"`
	SessionsReattachedTotal int64                           `json:"sessions_reattached_total"`
	SessionsRouted          int64                           `json:"sessions_routed"`
	// Stages holds per-stage latency summaries keyed by stage name
	// (proxy, replay, failover).
	Stages          map[string]StageMetrics `json:"stages"`
	UnroutableTotal int64                   `json:"unroutable_total"`
	UptimeSeconds   float64                 `json:"uptime_seconds"`
}

// stageSnapshot renders one histogram into its JSON summary.
func stageSnapshot(h *obs.Histogram) StageMetrics {
	return StageMetrics{Count: h.Count(), P50Ms: h.Quantile(0.5), P99Ms: h.Quantile(0.99)}
}
