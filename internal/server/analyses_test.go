package server

// The multi-analysis service surface: /v1/check and sessions declaring an
// analysis set, per-analysis verdicts on the wire, rejection of unknown
// names, default-set byte-compatibility, and the per-analysis metrics
// rows.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aerodrome"
)

// dualSTD has an atomicity violation with no data race on x (every x
// access is lock-protected; t2's write splits t1's transaction) followed
// by a write-write race on z at index 12 — so the two analyses latch at
// different points and the stream must keep flowing between them.
var dualSTD = []byte(`t1|begin|0
t1|acq(l)|0
t1|r(x)|0
t1|rel(l)|0
t2|acq(l)|0
t2|w(x)|0
t2|rel(l)|0
t1|acq(l)|0
t1|w(x)|0
t1|rel(l)|0
t1|end|0
t2|w(z)|0
t3|w(z)|0
`)

// sameAnalyses requires got and want to agree entry-by-entry on analysis
// name, verdict, violation index/kind, event count and algorithm.
func sameAnalyses(t *testing.T, label string, got, want []aerodrome.AnalysisReport) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d analysis entries, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Analysis != w.Analysis || g.Clean != w.Clean || g.Events != w.Events || g.Algorithm != w.Algorithm {
			t.Fatalf("%s[%d]: %+v, want %+v", label, i, g, w)
		}
		if !w.Clean {
			if g.Violation == nil || g.Violation.EventIndex != w.Violation.EventIndex ||
				g.Violation.Check != w.Violation.Check {
				t.Fatalf("%s[%d]: violation %+v, want %+v", label, i, g.Violation, w.Violation)
			}
		}
	}
}

// postCheckAnalyses posts body to /v1/check?analyses=... and decodes the
// report.
func postCheckAnalyses(t *testing.T, ts *httptest.Server, body []byte, analyses string) *aerodrome.Report {
	t.Helper()
	rep, err := (&Client{BaseURL: ts.URL}).CheckAnalyses(bytes.NewReader(body), "", analyses)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCheckAnalysesDualVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want, err := aerodrome.CheckSTDAnalyses(bytes.NewReader(dualSTD), aerodrome.Auto,
		[]aerodrome.AnalysisKind{aerodrome.AnalysisAtomicity, aerodrome.AnalysisHBRace})
	if err != nil {
		t.Fatal(err)
	}
	if want.Serializable {
		t.Fatal("dualSTD must violate atomicity")
	}
	hb := want.Analyses[1]
	if hb.Clean || hb.Violation.EventIndex != 12 || hb.Violation.Check != "write-write" {
		t.Fatalf("dualSTD hbrace verdict = %+v, want write-write race at 12", hb.Violation)
	}

	for _, body := range [][]byte{dualSTD, toBinary(t, dualSTD)} {
		got := postCheckAnalyses(t, ts, body, "atomicity,hbrace")
		sameReport(t, "dual", got, want)
		sameAnalyses(t, "dual", got.Analyses, want.Analyses)
	}

	// The single-analysis report's top-level fields match the dual one's —
	// the second analysis costs nothing semantically — and its JSON carries
	// no analyses key at all (legacy wire format).
	single := postCheck(t, ts, dualSTD, "")
	sameReport(t, "single-vs-dual", single, want)
	resp, err := http.Post(ts.URL+"/v1/check", "application/octet-stream", bytes.NewReader(dualSTD))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(raw), `"analyses"`) {
		t.Fatalf("default-set check response leaks analyses key: %s", raw)
	}
}

func TestCheckUnknownAnalysisRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/check?analyses=bogus", "application/octet-stream",
		bytes.NewReader(dualSTD))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "bogus") || !strings.Contains(string(body), "atomicity, hbrace") {
		t.Fatalf("rejection must name the bad analysis and the valid set: %s", body)
	}
}

func TestSessionCreateUnknownAnalysisRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Query form and body form must both reject with the valid set listed.
	for label, do := range map[string]func() (*http.Response, error){
		"query": func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sessions?analyses=nope", "application/json", nil)
		},
		"body": func() (*http.Response, error) {
			return http.Post(ts.URL+"/v1/sessions", "application/json",
				strings.NewReader(`{"analyses":["nope"]}`))
		},
	} {
		resp, err := do()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", label, resp.StatusCode)
		}
		if !strings.Contains(string(body), "nope") || !strings.Contains(string(body), "atomicity, hbrace") {
			t.Fatalf("%s: rejection must name the bad analysis and the valid set: %s", label, body)
		}
	}
}

func TestSessionDualAnalysis(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want, err := aerodrome.CheckSTDAnalyses(bytes.NewReader(dualSTD), aerodrome.Auto,
		[]aerodrome.AnalysisKind{aerodrome.AnalysisAtomicity, aerodrome.AnalysisHBRace})
	if err != nil {
		t.Fatal(err)
	}

	client := &Client{BaseURL: ts.URL}
	sess, err := client.NewSessionAnalyses("", "atomicity,hbrace")
	if err != nil {
		t.Fatal(err)
	}
	// Tiny chunks split lines mid-token and guarantee several feeds land
	// after the atomicity latch but before the race latch — the session
	// must keep consuming them.
	var view *SessionView
	for i := 0; i < len(dualSTD); i += 7 {
		end := i + 7
		if end > len(dualSTD) {
			end = len(dualSTD)
		}
		if view, err = sess.Feed(dualSTD[i:end]); err != nil {
			t.Fatalf("feed at %d: %v", i, err)
		}
	}
	if view.State != stateViolated {
		t.Fatalf("state = %s, want violated", view.State)
	}
	sameAnalyses(t, "final-view", view.Analyses, want.Analyses)

	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "session-dual", rep, want)
	sameAnalyses(t, "session-dual", rep.Analyses, want.Analyses)

	// The per-analysis metrics rows saw this session and both violations.
	body, _ := getBody(t, ts.URL+"/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"atomicity", "hbrace"} {
		am := snap.Analyses[name]
		if am.Sessions < 1 || am.Violations < 1 {
			t.Errorf("analyses[%s] = %+v, want sessions and violations >= 1", name, am)
		}
	}
}

// TestSessionDefaultSetWireUnchanged pins the legacy wire format: a
// default-set session's feed response and view carry no analyses key.
func TestSessionDefaultSetWireUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var created SessionView
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/sessions/"+created.ID+"/events",
		"application/octet-stream", bytes.NewReader(dualSTD))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(raw), `"analyses"`) {
		t.Fatalf("default-set feed response leaks analyses key: %s", raw)
	}
}

// TestRouterSessionAnalysesPassthrough drives a dual-analysis session
// through the shard router: the analysis set must reach the backend and
// the per-analysis verdicts must flow back.
func TestRouterSessionAnalysesPassthrough(t *testing.T) {
	c := newTestCluster(t, 2, Config{})
	want, err := aerodrome.CheckSTDAnalyses(bytes.NewReader(dualSTD), aerodrome.Auto,
		[]aerodrome.AnalysisKind{aerodrome.AnalysisAtomicity, aerodrome.AnalysisHBRace})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{BaseURL: c.routerTS.URL, TraceKey: "dual-k1"}
	sess, err := client.NewSessionAnalyses("", "atomicity,hbrace")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feed(dualSTD); err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "routed-dual", rep, want)
	sameAnalyses(t, "routed-dual", rep.Analyses, want.Analyses)

	// One-shot checks route through untouched as well.
	got, err := client.CheckAnalyses(bytes.NewReader(dualSTD), "", "atomicity,hbrace")
	if err != nil {
		t.Fatal(err)
	}
	sameAnalyses(t, "routed-check", got.Analyses, want.Analyses)
}
