package server

// Multi-tenant quotas: per-tenant session, concurrent-check and ingest-byte
// budgets layered on the global admission caps. The tenant is named by a
// request header (Config.TenantHeader, default "X-Aerodrome-Tenant");
// requests without the header share the "default" tenant. Like the global
// caps, over-budget admission is rejected (429 + Retry-After), never
// queued, and every tenant gets its own /metrics counters so a noisy
// neighbor is visible, not just throttled.

import (
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenantHeader names the tenant of a request when Config does not
// override it.
const DefaultTenantHeader = "X-Aerodrome-Tenant"

// anonymousTenant is the bucket for requests that carry no tenant header.
const anonymousTenant = "default"

// TenantQuota is the admission budget of one tenant. Zero fields are
// unlimited; the zero value disables per-tenant admission entirely (the
// global caps still apply).
type TenantQuota struct {
	// MaxSessions caps the tenant's concurrent incremental sessions.
	MaxSessions int
	// MaxConcurrentChecks caps the tenant's concurrent /v1/check requests.
	MaxConcurrentChecks int
	// BytesPerSec caps the tenant's sustained ingest rate across checks and
	// session feeds, enforced by a token bucket holding one second of
	// budget: a request (or chunk) with a declared Content-Length is
	// admitted only when the bucket covers it — so a single body larger
	// than one second's budget is never admitted — and chunked bodies are
	// debited as they stream.
	BytesPerSec int64
}

// limited reports whether any budget is set.
func (q TenantQuota) limited() bool {
	return q.MaxSessions > 0 || q.MaxConcurrentChecks > 0 || q.BytesPerSec > 0
}

// tenant is the runtime state of one tenant: live gauges admission checks
// race on, the byte bucket, and the monotonic counters /metrics serves.
type tenant struct {
	name  string
	quota TenantQuota

	sessions atomic.Int64 // live sessions gauge
	checks   atomic.Int64 // live checks gauge
	bucket   byteBucket

	sessionsOpened   atomic.Int64
	sessionsRejected atomic.Int64
	checksTotal      atomic.Int64
	checksRejected   atomic.Int64
	bytesRejected    atomic.Int64 // requests rejected on the byte budget
	bytesTotal       atomic.Int64
	eventsTotal      atomic.Int64
	violationsTotal  atomic.Int64
}

// byteBucket is a token bucket over ingest bytes. rate 0 disables it. The
// capacity is one second of budget, full at start.
type byteBucket struct {
	mu     sync.Mutex
	rate   int64 // bytes per second; 0 = unlimited
	tokens float64
	last   time.Time
}

// take debits n bytes if the budget covers them, or reports how long the
// caller should wait before retrying. n may be 0 (always admitted).
// never means n exceeds the bucket's capacity outright: no amount of
// waiting would admit it, and the caller should answer 413, not 429.
func (b *byteBucket) take(n int64) (ok bool, retryAfter time.Duration, never bool) {
	if b.rate <= 0 {
		return true, 0, false
	}
	if n > b.rate {
		return false, 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * float64(b.rate)
	}
	b.last = now
	if limit := float64(b.rate); b.tokens > limit {
		b.tokens = limit
	}
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return true, 0, false
	}
	deficit := float64(n) - b.tokens
	return false, time.Duration(deficit / float64(b.rate) * float64(time.Second)), false
}

// tenantName resolves the tenant of a request.
func (s *Server) tenantName(r *http.Request) string {
	if name := r.Header.Get(s.cfg.TenantHeader); name != "" {
		return name
	}
	return anonymousTenant
}

// overflowTenant is the shared bucket for tenant names seen after the
// MaxTenants cap. The header is client-supplied and unauthenticated, so a
// client inventing a fresh name per request must not be able to grow the
// tenant table (and the /metrics body) without bound — nor mint itself a
// fresh quota each time: past the cap, every new name shares this one
// budget.
const overflowTenant = "overflow"

// tenant returns (lazily creating) the state for a request's tenant.
func (s *Server) tenant(r *http.Request) *tenant {
	name := s.tenantName(r)
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		if len(s.tenants) >= s.cfg.MaxTenants {
			name = overflowTenant
			if t, ok = s.tenants[name]; ok {
				return t
			}
		}
		q := s.cfg.TenantQuota
		if override, ok := s.cfg.TenantQuotas[name]; ok {
			q = override
		}
		t = &tenant{name: name, quota: q}
		t.bucket.rate = q.BytesPerSec
		if q.BytesPerSec > 0 {
			t.bucket.tokens = float64(q.BytesPerSec)
		}
		s.tenants[name] = t
	}
	return t
}

// admitCheck takes one concurrent-check slot, or answers why not. The
// returned release must be called exactly once when admission succeeded.
func (t *tenant) admitCheck() (release func(), ok bool) {
	if t.quota.MaxConcurrentChecks > 0 {
		if t.checks.Add(1) > int64(t.quota.MaxConcurrentChecks) {
			t.checks.Add(-1)
			t.checksRejected.Add(1)
			return nil, false
		}
	} else {
		t.checks.Add(1)
	}
	return func() { t.checks.Add(-1) }, true
}

// admitSession takes one session slot. The slot is released by
// releaseSession when the session is finalized (closed or evicted).
func (t *tenant) admitSession() bool {
	if t.quota.MaxSessions > 0 {
		if t.sessions.Add(1) > int64(t.quota.MaxSessions) {
			t.sessions.Add(-1)
			t.sessionsRejected.Add(1)
			return false
		}
	} else {
		t.sessions.Add(1)
	}
	return true
}

func (t *tenant) releaseSession() { t.sessions.Add(-1) }

// admitBytes debits a declared body length from the byte budget. Bodies
// with unknown length (chunked transfer) pass here and are debited as they
// stream (see tenantBytesReader). never means the body exceeds the bucket
// capacity (one second of budget) and no retry will ever admit it.
func (t *tenant) admitBytes(contentLength int64) (ok bool, retryAfter time.Duration, never bool) {
	if contentLength <= 0 {
		return true, 0, false
	}
	ok, retry, never := t.bucket.take(contentLength)
	if !ok {
		t.bytesRejected.Add(1)
		return false, retry, never
	}
	t.bytesTotal.Add(contentLength)
	return true, 0, false
}

// writeQuotaRejection answers a per-tenant 429 with a Retry-After derived
// from the bucket deficit (minimum 1s, the same floor the global caps use).
func writeQuotaRejection(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int64(retryAfter/time.Second) + 1
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, http.StatusTooManyRequests, msg)
}

// errTenantBudget is the sentinel a tenantBytesReader returns when a
// chunked body outruns the tenant's byte budget mid-stream.
type errTenantBudget struct{ retryAfter time.Duration }

func (e *errTenantBudget) Error() string { return "tenant byte budget exhausted" }

// tenantBytesReader debits a tenant's byte budget as an unbounded-length
// body streams, failing the read once the budget is gone — the only
// admission point for chunked bodies, whose cost is unknown upfront. The
// budget error is latched: the format sniffer's Peek may consume (and
// clear) a bufio fill error, and re-reading must not turn an over-budget
// stream into a clean empty one.
type tenantBytesReader struct {
	r   io.Reader
	t   *tenant
	err error
}

func (tr *tenantBytesReader) Read(p []byte) (int, error) {
	if tr.err != nil {
		return 0, tr.err
	}
	n, err := tr.r.Read(p)
	if n > 0 {
		// Reads are at most one fill buffer, far under any sane bucket
		// capacity, so the never case cannot fire here.
		if ok, retry, _ := tr.t.bucket.take(int64(n)); !ok {
			tr.t.bytesRejected.Add(1)
			tr.err = &errTenantBudget{retryAfter: retry}
			return 0, tr.err
		}
		tr.t.bytesTotal.Add(int64(n))
	}
	return n, err
}

// snapshotTenants renders the per-tenant metrics section.
func (s *Server) snapshotTenants() map[string]map[string]int64 {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	out := make(map[string]map[string]int64, len(s.tenants))
	for name, t := range s.tenants {
		out[name] = map[string]int64{
			"sessions_active":   t.sessions.Load(),
			"sessions_opened":   t.sessionsOpened.Load(),
			"sessions_rejected": t.sessionsRejected.Load(),
			"checks_active":     t.checks.Load(),
			"checks_total":      t.checksTotal.Load(),
			"checks_rejected":   t.checksRejected.Load(),
			"bytes_rejected":    t.bytesRejected.Load(),
			"bytes_total":       t.bytesTotal.Load(),
			"events_total":      t.eventsTotal.Load(),
			"violations_total":  t.violationsTotal.Load(),
		}
	}
	return out
}
