package server

// Daemon glue shared by cmd/aerodromed and `aerodrome -serve`: listen,
// serve, and on context cancellation drain gracefully — flip healthz to
// draining, stop admitting new work, let in-flight requests finish under
// the shutdown deadline, then finalize remaining sessions.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"aerodrome/internal/faultinject"
)

// DaemonConfig configures RunDaemon.
type DaemonConfig struct {
	// Addr is the listen address (default ":8421").
	Addr string
	// Server is the service configuration.
	Server Config
	// ShutdownTimeout bounds the graceful drain after cancellation
	// (default 10s); when exceeded, remaining connections are closed hard
	// and RunDaemon returns an error.
	ShutdownTimeout time.Duration
	// Log receives the daemon's log lines (default: discarded).
	Log io.Writer
	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (the tests and -addr :0 users read the actual
	// port from it).
	Ready chan<- string
	// Chaos, when non-nil, wraps the listener with fault injection — the
	// chaos harness's way of making this instance unreliable on purpose.
	Chaos *faultinject.Injector
}

// RunDaemon serves an aerodromed instance until ctx is cancelled, then
// drains. It returns nil after a clean drain, or the error that stopped
// the server.
func RunDaemon(ctx context.Context, cfg DaemonConfig) error {
	s, err := New(cfg.Server)
	if err != nil {
		return err
	}
	defer s.Close()
	banner := fmt.Sprintf("(default algo %s)", s.cfg.Algorithm)
	if cfg.Chaos.Enabled() {
		banner += " [chaos " + cfg.Chaos.String() + "]"
	}
	return serveDrainable(ctx, cfg.Addr, s, cfg.ShutdownTimeout, cfg.Log, cfg.Ready, "aerodromed: ", banner, cfg.Chaos)
}

// RouterDaemonConfig configures RunRouterDaemon.
type RouterDaemonConfig struct {
	// Addr is the listen address (default ":8421").
	Addr string
	// Router is the shard-router configuration.
	Router RouterConfig
	// ShutdownTimeout bounds the graceful drain after cancellation
	// (default 10s).
	ShutdownTimeout time.Duration
	// Log receives the daemon's log lines (default: discarded).
	Log io.Writer
	// Ready, when non-nil, receives the bound listen address once the
	// router is accepting.
	Ready chan<- string
	// Chaos, when non-nil, wraps both the router's listener and its
	// backend transport with fault injection.
	Chaos *faultinject.Injector
}

// RunRouterDaemon serves a shard router until ctx is cancelled, then
// drains: new checks and sessions are rejected, proxied requests already
// in flight finish under the shutdown deadline, and the backends — which
// drain on their own SIGTERM — keep the session state.
func RunRouterDaemon(ctx context.Context, cfg RouterDaemonConfig) error {
	rcfg := cfg.Router
	if rcfg.Log == nil {
		rcfg.Log = cfg.Log
	}
	if cfg.Chaos.Enabled() {
		rcfg.Transport = cfg.Chaos.WrapTransport(rcfg.Transport)
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	banner := fmt.Sprintf("(routing %d backends)", len(rt.backends))
	if cfg.Chaos.Enabled() {
		banner += " [chaos " + cfg.Chaos.String() + "]"
	}
	return serveDrainable(ctx, cfg.Addr, rt, cfg.ShutdownTimeout, cfg.Log, cfg.Ready, "aerodromed-router: ", banner, cfg.Chaos)
}

// drainable is what the daemon loop needs from a service: serve requests
// and flip into drain mode while http.Server.Shutdown runs them out.
type drainable interface {
	http.Handler
	SetDraining(bool)
}

// serveDrainable is the listen/serve/drain loop shared by the backend and
// router daemons.
func serveDrainable(ctx context.Context, addr string, h drainable, shutdownTimeout time.Duration,
	logw io.Writer, ready chan<- string, prefix, banner string, chaos *faultinject.Injector) error {
	if addr == "" {
		addr = ":8421"
	}
	if shutdownTimeout <= 0 {
		shutdownTimeout = 10 * time.Second
	}
	if logw == nil {
		logw = io.Discard
	}
	logger := log.New(logw, prefix, log.LstdFlags)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The chaos listener sits in front of the real one, so every accepted
	// connection — including health probes — can carry injected faults.
	wrapped := net.Listener(ln)
	if chaos.Enabled() {
		wrapped = chaos.WrapListener(ln)
	}
	// ReadHeaderTimeout/IdleTimeout reap slow-loris and abandoned keepalive
	// connections before they pin admission slots. There is deliberately no
	// whole-request ReadTimeout: a trace body streaming at producer speed
	// is the service's core use case and is bounded by MaxBodyBytes and
	// admission control instead.
	httpSrv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Printf("listening on %s %s", ln.Addr(), banner)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(wrapped) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Printf("draining (deadline %s)", shutdownTimeout)
	h.SetDraining(true)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
