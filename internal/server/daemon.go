package server

// Daemon glue shared by cmd/aerodromed and `aerodrome -serve`: listen,
// serve, and on context cancellation drain gracefully — flip healthz to
// draining, stop admitting new work, let in-flight requests finish under
// the shutdown deadline, then finalize remaining sessions.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"aerodrome/internal/faultinject"
)

// DaemonConfig configures RunDaemon.
type DaemonConfig struct {
	// Addr is the listen address (default ":8421").
	Addr string
	// Server is the service configuration.
	Server Config
	// ShutdownTimeout bounds the graceful drain after cancellation
	// (default 10s); when exceeded, remaining connections are closed hard
	// and RunDaemon returns an error.
	ShutdownTimeout time.Duration
	// Log receives the daemon's structured log lines (default: discarded).
	Log io.Writer
	// LogLevel is the minimum level written to Log (default Info).
	LogLevel slog.Level
	// DebugAddr, when set, serves net/http/pprof on its own listener
	// (e.g. "127.0.0.1:6060") — deliberately never on the service
	// address, so profiling endpoints are reachable only where the
	// operator pointed them.
	DebugAddr string
	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (the tests and -addr :0 users read the actual
	// port from it).
	Ready chan<- string
	// Chaos, when non-nil, wraps the listener with fault injection — the
	// chaos harness's way of making this instance unreliable on purpose.
	Chaos *faultinject.Injector
}

// RunDaemon serves an aerodromed instance until ctx is cancelled, then
// drains. It returns nil after a clean drain, or the error that stopped
// the server.
func RunDaemon(ctx context.Context, cfg DaemonConfig) error {
	logger := newLogger(cfg.Log, cfg.LogLevel).With("component", "aerodromed")
	if cfg.Server.Logger == nil {
		cfg.Server.Logger = logger
	}
	s, err := New(cfg.Server)
	if err != nil {
		return err
	}
	defer s.Close()
	banner := fmt.Sprintf("(default algo %s)", s.cfg.Algorithm)
	if cfg.Chaos.Enabled() {
		banner += " [chaos " + cfg.Chaos.String() + "]"
	}
	return serveDrainable(ctx, s, serveOpts{
		addr:            cfg.Addr,
		shutdownTimeout: cfg.ShutdownTimeout,
		logger:          logger,
		debugAddr:       cfg.DebugAddr,
		ready:           cfg.Ready,
		banner:          banner,
		chaos:           cfg.Chaos,
	})
}

// RouterDaemonConfig configures RunRouterDaemon.
type RouterDaemonConfig struct {
	// Addr is the listen address (default ":8421").
	Addr string
	// Router is the shard-router configuration.
	Router RouterConfig
	// ShutdownTimeout bounds the graceful drain after cancellation
	// (default 10s).
	ShutdownTimeout time.Duration
	// Log receives the daemon's structured log lines (default: discarded).
	Log io.Writer
	// LogLevel is the minimum level written to Log (default Info).
	LogLevel slog.Level
	// DebugAddr, when set, serves net/http/pprof on its own listener.
	DebugAddr string
	// Ready, when non-nil, receives the bound listen address once the
	// router is accepting.
	Ready chan<- string
	// Chaos, when non-nil, wraps both the router's listener and its
	// backend transport with fault injection.
	Chaos *faultinject.Injector
}

// RunRouterDaemon serves a shard router until ctx is cancelled, then
// drains: new checks and sessions are rejected, proxied requests already
// in flight finish under the shutdown deadline, and the backends — which
// drain on their own SIGTERM — keep the session state.
func RunRouterDaemon(ctx context.Context, cfg RouterDaemonConfig) error {
	rcfg := cfg.Router
	if rcfg.Log == nil {
		rcfg.Log = cfg.Log
		rcfg.LogLevel = cfg.LogLevel
	}
	if cfg.Chaos.Enabled() {
		rcfg.Transport = cfg.Chaos.WrapTransport(rcfg.Transport)
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	banner := fmt.Sprintf("(routing %d backends)", len(rt.backends))
	if cfg.Chaos.Enabled() {
		banner += " [chaos " + cfg.Chaos.String() + "]"
	}
	return serveDrainable(ctx, rt, serveOpts{
		addr:            cfg.Addr,
		shutdownTimeout: cfg.ShutdownTimeout,
		logger:          newLogger(cfg.Log, cfg.LogLevel).With("component", "aerodromed-router"),
		debugAddr:       cfg.DebugAddr,
		ready:           cfg.Ready,
		banner:          banner,
		chaos:           cfg.Chaos,
	})
}

// drainable is what the daemon loop needs from a service: serve requests
// and flip into drain mode while http.Server.Shutdown runs them out.
type drainable interface {
	http.Handler
	SetDraining(bool)
}

// serveOpts parameterizes serveDrainable.
type serveOpts struct {
	addr            string
	shutdownTimeout time.Duration
	logger          *slog.Logger
	debugAddr       string
	ready           chan<- string
	banner          string
	chaos           *faultinject.Injector
}

// serveDebug binds the pprof listener and serves it until the returned
// stop func runs. The profiling mux is separate from the service mux on
// purpose: /debug/pprof on the public address would hand any client CPU
// profiles and heap dumps.
func serveDebug(addr string, logger *slog.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	// Worded "debug endpoint", not "listening on": scripts find the
	// service address by grepping the latter.
	logger.Info("debug endpoint on " + ln.Addr().String())
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}

// serveDrainable is the listen/serve/drain loop shared by the backend and
// router daemons.
func serveDrainable(ctx context.Context, h drainable, opts serveOpts) error {
	addr := opts.addr
	if addr == "" {
		addr = ":8421"
	}
	shutdownTimeout := opts.shutdownTimeout
	if shutdownTimeout <= 0 {
		shutdownTimeout = 10 * time.Second
	}
	logger := opts.logger
	if logger == nil {
		logger = newLogger(nil, 0)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if opts.debugAddr != "" {
		stop, derr := serveDebug(opts.debugAddr, logger)
		if derr != nil {
			ln.Close()
			return derr
		}
		defer stop()
	}
	// The chaos listener sits in front of the real one, so every accepted
	// connection — including health probes — can carry injected faults.
	wrapped := net.Listener(ln)
	if opts.chaos.Enabled() {
		wrapped = opts.chaos.WrapListener(ln)
	}
	// ReadHeaderTimeout/IdleTimeout reap slow-loris and abandoned keepalive
	// connections before they pin admission slots. There is deliberately no
	// whole-request ReadTimeout: a trace body streaming at producer speed
	// is the service's core use case and is bounded by MaxBodyBytes and
	// admission control instead.
	httpSrv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Info(fmt.Sprintf("listening on %s %s", ln.Addr(), opts.banner))
	if opts.ready != nil {
		opts.ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(wrapped) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "deadline", shutdownTimeout)
	h.SetDraining(true)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained cleanly")
	return nil
}
