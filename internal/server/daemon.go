package server

// Daemon glue shared by cmd/aerodromed and `aerodrome -serve`: listen,
// serve, and on context cancellation drain gracefully — flip healthz to
// draining, stop admitting new work, let in-flight requests finish under
// the shutdown deadline, then finalize remaining sessions.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"
)

// DaemonConfig configures RunDaemon.
type DaemonConfig struct {
	// Addr is the listen address (default ":8421").
	Addr string
	// Server is the service configuration.
	Server Config
	// ShutdownTimeout bounds the graceful drain after cancellation
	// (default 10s); when exceeded, remaining connections are closed hard
	// and RunDaemon returns an error.
	ShutdownTimeout time.Duration
	// Log receives the daemon's log lines (default: discarded).
	Log io.Writer
	// Ready, when non-nil, receives the bound listen address once the
	// server is accepting (the tests and -addr :0 users read the actual
	// port from it).
	Ready chan<- string
}

// RunDaemon serves an aerodromed instance until ctx is cancelled, then
// drains. It returns nil after a clean drain, or the error that stopped
// the server.
func RunDaemon(ctx context.Context, cfg DaemonConfig) error {
	if cfg.Addr == "" {
		cfg.Addr = ":8421"
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 10 * time.Second
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	logger := log.New(logw, "aerodromed: ", log.LstdFlags)

	s, err := New(cfg.Server)
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	// ReadHeaderTimeout/IdleTimeout reap slow-loris and abandoned keepalive
	// connections before they pin admission slots. There is deliberately no
	// whole-request ReadTimeout: a trace body streaming at producer speed
	// is the service's core use case and is bounded by MaxBodyBytes and
	// admission control instead.
	httpSrv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Printf("listening on %s (default algo %s)", ln.Addr(), s.cfg.Algorithm)
	if cfg.Ready != nil {
		cfg.Ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Printf("draining (deadline %s)", cfg.ShutdownTimeout)
	s.SetDraining(true)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
