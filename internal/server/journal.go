package server

// Session journals: the durable-replay half of the fault-tolerant session
// plane. The paper's checker is a deterministic single pass, so a
// session's entire state is reproducible from its raw fed bytes — the
// router journals every chunk a backend acknowledged, and when that
// backend dies the journal replays into a fresh engine on the next ring
// point, byte for byte, through the same chunk-agnostic Feeder the live
// path uses. Fault tolerance reduces to bounded buffering plus the
// replay-equivalence the differential harness already pins.
//
// Journals are bounded three ways: a per-session in-memory cap, an
// optional per-session spill file (chunks beyond the memory cap go to
// disk when a spill directory is configured), and a router-wide memory
// budget shared by all journals. A session that outgrows its bounds has
// its journal truncated — replay is no longer possible and backend loss
// becomes the terminal 409 it always was — and the truncation is counted,
// so operators see exactly how much fault-tolerance coverage the budget
// is buying.

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// journalBudget is the router-wide cap on in-memory journal bytes.
type journalBudget struct {
	max  int64
	used atomic.Int64
}

// reserve claims n bytes of the budget, or reports that the budget is
// exhausted (the caller truncates or spills).
func (b *journalBudget) reserve(n int64) bool {
	for {
		cur := b.used.Load()
		if cur+n > b.max {
			return false
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

func (b *journalBudget) release(n int64) { b.used.Add(-n) }

// journal is the replay log of one routed session. All methods are safe
// for concurrent use; replayReader must not race appends, which the
// router guarantees by holding the session route lock across failover.
type journal struct {
	mu         sync.Mutex
	chunks     [][]byte
	memBytes   int64
	spill      *os.File
	spillBytes int64

	memLimit int64  // per-session in-memory cap
	maxBytes int64  // per-session total cap (memory + spill)
	spillDir string // "" disables spill
	budget   *journalBudget

	truncated bool
	frozen    bool
}

// newJournal returns an empty journal under the given bounds.
func newJournal(memLimit, maxBytes int64, spillDir string, budget *journalBudget) *journal {
	return &journal{memLimit: memLimit, maxBytes: maxBytes, spillDir: spillDir, budget: budget}
}

// newTruncatedJournal returns a journal whose replay horizon is already
// lost — the provisional state of a session re-attached by routing key
// after a router restart, whose earlier chunks this router never saw.
func newTruncatedJournal() *journal {
	return &journal{truncated: true}
}

// append records one acknowledged chunk (copying it). Appends to a
// truncated journal are no-ops (the horizon is already lost), and appends
// to a frozen journal are dropped deliberately: the session reached a
// terminal state, so the recorded prefix already reproduces the verdict
// and later discarded chunks must not grow the journal. If the chunk does
// not fit the bounds, the journal truncates itself.
func (j *journal) append(chunk []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.truncated || j.frozen {
		return
	}
	n := int64(len(chunk))
	if j.memBytes+j.spillBytes+n > j.maxBytes {
		j.truncateLocked()
		return
	}
	// Once spill has started, every later chunk spills too — even one that
	// would fit memory: replayReader emits the memory list before the spill
	// section, so mixing after the crossover would reorder the replay.
	if j.spill == nil && j.memBytes+n <= j.memLimit && (j.budget == nil || j.budget.reserve(n)) {
		j.chunks = append(j.chunks, append([]byte(nil), chunk...))
		j.memBytes += n
		return
	}
	// Memory is full (session cap or router budget): spill if configured.
	if j.spillDir == "" {
		j.truncateLocked()
		return
	}
	if j.spill == nil {
		f, err := os.CreateTemp(j.spillDir, "aerodrome-journal-*.spill")
		if err != nil {
			j.truncateLocked()
			return
		}
		// Unlink immediately: the fd keeps the data alive, and a crashed
		// router leaks no files.
		os.Remove(f.Name())
		j.spill = f
	}
	if _, err := j.spill.Write(chunk); err != nil {
		j.truncateLocked()
		return
	}
	j.spillBytes += n
}

// freeze marks the session terminal: the recorded prefix reproduces the
// verdict, further appends are dropped.
func (j *journal) freeze() {
	j.mu.Lock()
	j.frozen = true
	j.mu.Unlock()
}

// truncate drops the journal and marks the replay horizon lost.
func (j *journal) truncate() {
	j.mu.Lock()
	j.truncateLocked()
	j.mu.Unlock()
}

func (j *journal) truncateLocked() {
	if j.truncated {
		return
	}
	j.truncated = true
	j.releaseLocked()
}

// isFrozen reports whether the session reached a terminal state and the
// journal stopped recording.
func (j *journal) isFrozen() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.frozen
}

// isTruncated reports whether the replay horizon has been lost.
func (j *journal) isTruncated() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.truncated
}

// size returns the journaled byte count (memory + spill).
func (j *journal) size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.memBytes + j.spillBytes
}

// capLeft returns how many more bytes the journal can hold before
// truncation (0 for truncated or frozen journals — nothing more will be
// recorded either way).
func (j *journal) capLeft() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.truncated || j.frozen {
		return 0
	}
	return j.maxBytes - j.memBytes - j.spillBytes
}

// replayReader returns a reader over the journaled bytes and their total
// length. The caller must prevent concurrent appends (the router holds
// the route lock across failover) and must not retain the reader past
// free.
func (j *journal) replayReader() (io.Reader, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	readers := make([]io.Reader, 0, len(j.chunks)+1)
	for _, c := range j.chunks {
		readers = append(readers, &sliceReader{b: c})
	}
	if j.spill != nil && j.spillBytes > 0 {
		readers = append(readers, io.NewSectionReader(j.spill, 0, j.spillBytes))
	}
	return io.MultiReader(readers...), j.memBytes + j.spillBytes
}

// free releases the journal's memory (back to the router budget) and its
// spill file. The journal stays usable as an empty truncated journal.
func (j *journal) free() {
	j.mu.Lock()
	j.truncated = true
	j.releaseLocked()
	j.mu.Unlock()
}

func (j *journal) releaseLocked() {
	if j.budget != nil && j.memBytes > 0 {
		j.budget.release(j.memBytes)
	}
	j.chunks, j.memBytes = nil, 0
	if j.spill != nil {
		j.spill.Close()
		j.spill = nil
	}
	j.spillBytes = 0
}

// sliceReader is bytes.NewReader without the extra methods — MultiReader
// then cannot flatten it into odd fast paths, and the journal controls
// exactly what the replay body exposes.
type sliceReader struct {
	b []byte
	i int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
