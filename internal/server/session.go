package server

// The incremental session layer: one session is one network-attached
// IncrementalChecker — created by POST /v1/sessions, fed STD chunks by
// POST /v1/sessions/{id}/events, inspected by GET, finalized by DELETE,
// and evicted by the janitor when idle past the TTL. The session manager
// is the admission-control point: at most MaxSessions live at once
// (over-admission is rejected with 429, never queued), each chunk body is
// bounded, and concurrent feeds to one session are rejected busy rather
// than queued, because chunk order defines the trace.

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aerodrome"
)

// ChunkSeqHeader optionally numbers a feed chunk. When present, the
// session remembers the last sequence number it applied and the response
// it sent: re-POSTing the same sequence replays the cached response
// instead of feeding the chunk twice. This is what makes feed retries —
// a client that lost the response mid-read, or a router re-sending after
// failover — idempotent, which the fault-tolerant session plane depends
// on. Sequence numbers must be non-negative and strictly increasing per
// session; unnumbered chunks keep the old at-most-once semantics.
const ChunkSeqHeader = "X-Aerodrome-Chunk-Seq"

// parseChunkSeq extracts the chunk sequence number: (-1, true) when the
// header is absent, (seq, true) for a valid non-negative integer, and
// (0, false) for garbage.
func parseChunkSeq(h http.Header) (int64, bool) {
	v := h.Get(ChunkSeqHeader)
	if v == "" {
		return -1, true
	}
	seq, err := strconv.ParseInt(v, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// sessionState is the lifecycle of one session.
type sessionState string

const (
	// stateActive: accepting events, no violation yet.
	stateActive sessionState = "active"
	// stateViolated: a violation latched; further chunks are accepted and
	// discarded (the sequential checker would have stopped reading).
	stateViolated sessionState = "violated"
	// stateFailed: a chunk was malformed; the session is terminal.
	stateFailed sessionState = "failed"
)

type session struct {
	id      string
	algo    string
	created time.Time
	// analyses is the session's effective analysis set; multi is true when
	// it is anything other than the default ["atomicity"], switching the
	// wire format to include per-analysis verdicts and the feed loop to
	// stream until every analysis has latched.
	analyses []aerodrome.AnalysisKind
	multi    bool
	// tenant owns this session's quota slot, released on finalization.
	tenant *tenant

	// feedMu serializes the event stream: at most one feed — or the
	// finalizing Close — drives the checker at a time. Feed handlers use
	// TryLock: a concurrent chunk to the same session is a client
	// protocol error (chunk order defines the trace), answered 429
	// rather than queued.
	feedMu  sync.Mutex
	checker *aerodrome.IncrementalChecker // guarded by feedMu
	// engineSettled is the portion of the checker's engine introspection
	// counters already folded into the server aggregate; the delta since
	// it is settled at every feed and finalize boundary. Guarded by
	// feedMu (reading the counters touches the engine).
	engineSettled aerodrome.EngineStats

	// mu guards only the snapshot fields below, which the feed loop
	// refreshes per block — so GET, the janitor scan and metrics never
	// wait behind a slow upload holding feedMu. Lock order: feedMu may
	// be held while taking mu, never the reverse.
	mu         sync.Mutex
	lastActive time.Time
	state      sessionState
	parseErr   error
	events     int64
	viol       *aerodrome.Violation
	// analysesSnap is the latest per-analysis snapshot (multi sessions
	// only), refreshed per feed block so GET never waits behind feedMu.
	analysesSnap []aerodrome.AnalysisReport
	// violCounted marks analyses whose first violation was already settled
	// into the per-analysis metrics, so block-by-block snapshot refreshes
	// count each at most once.
	violCounted map[string]bool
	// removed is set (under mu) when the session leaves the table — by
	// DELETE, eviction or server close. A feed that raced the removal
	// must see it and stop rather than stream into a finalized checker.
	removed bool

	// Feed idempotency cache (under mu): the last applied chunk sequence
	// number and the exact response bytes it was answered with. One entry
	// suffices — retries target the most recent chunk, and sequence
	// numbers are strictly increasing.
	lastSeq       int64
	lastSeqStatus int
	lastSeqResp   []byte
}

// SessionView is the JSON shape of GET /v1/sessions/{id} and the feed
// response.
type SessionView struct {
	ID        string               `json:"id"`
	Algorithm string               `json:"algorithm"`
	State     sessionState         `json:"state"`
	Events    int64                `json:"events"`
	Violation *aerodrome.Violation `json:"violation,omitempty"`
	// Analyses carries the per-analysis verdicts of a multi-analysis
	// session; omitted for the default atomicity-only set, whose view
	// stays byte-identical to the single-analysis service.
	Analyses   []aerodrome.AnalysisReport `json:"analyses,omitempty"`
	Error      string                     `json:"error,omitempty"`
	Created    time.Time                  `json:"created"`
	LastActive time.Time                  `json:"last_active"`
}

// view snapshots the session from the cached fields only — no checker
// access, so it is safe (and fast) while a feed is in flight. Callers
// hold s.mu.
func (s *session) view() SessionView {
	v := SessionView{
		ID:         s.id,
		Algorithm:  s.algo,
		State:      s.state,
		Events:     s.events,
		Violation:  s.viol,
		Created:    s.created,
		LastActive: s.lastActive,
	}
	if s.multi {
		v.Analyses = s.analysesSnap
	}
	if s.parseErr != nil {
		v.Error = s.parseErr.Error()
	}
	return v
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// handleSessionCreate is POST /v1/sessions.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req struct {
		Algo     string   `json:"algo"`
		Analyses []string `json:"analyses"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	if q := r.URL.Query().Get("algo"); q != "" {
		req.Algo = q
	}
	algo := aerodrome.Algorithm(req.Algo)
	if req.Algo == "" {
		algo = s.cfg.Algorithm
	}
	var set []aerodrome.AnalysisKind
	for _, name := range req.Analyses {
		if n := strings.TrimSpace(name); n != "" {
			set = append(set, aerodrome.AnalysisKind(n))
		}
	}
	analyses, err := aerodrome.NormalizeAnalyses(set)
	if err == nil {
		// `?analyses=` (comma-separated) overrides the body list, mirroring
		// the algo query override.
		if q := r.URL.Query().Get("analyses"); q != "" {
			analyses, err = aerodrome.ParseAnalyses(q)
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	checker, err := aerodrome.NewIncrementalCheckerAnalyses(algo, analyses)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// The tenant slot is taken before the global table insert and released
	// on any rejection path below; once the session is registered, the
	// slot is owned by finalizeSession.
	ten := s.tenant(r)
	if !ten.admitSession() {
		writeQuotaRejection(w, 0, "tenant session limit reached")
		return
	}

	analyses = checker.AnalysisSet()
	multi := !(len(analyses) == 1 && analyses[0] == aerodrome.AnalysisAtomicity)
	sess := &session{
		id:       newSessionID(),
		algo:     checker.Algorithm(),
		created:  time.Now(),
		analyses: analyses,
		multi:    multi,
		tenant:   ten,
		checker:  checker,
		state:    stateActive,
	}
	sess.lastActive = sess.created
	if multi {
		sess.analysesSnap = checker.Analyses()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ten.releaseSession()
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		ten.releaseSession()
		s.metrics.sessionsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "session limit reached")
		return
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	s.metrics.sessionsOpened.Add(1)
	ten.sessionsOpened.Add(1)
	s.metrics.sessionsActive.Add(1)
	s.metrics.selectEngine(sess.algo)
	for _, k := range sess.analyses {
		if ac := s.metrics.analyses[string(k)]; ac != nil {
			ac.sessions.Add(1)
		}
	}

	sess.mu.Lock()
	view := sess.view()
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, view)
}

// lookupSession resolves {id} or answers 404.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no such session")
	}
	return sess
}

// handleSessionEvents is POST /v1/sessions/{id}/events: one STD chunk in,
// the post-chunk snapshot out. The body is bounded by MaxBodyBytes; chunk
// boundaries need not align with line boundaries.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	seq, seqOK := parseChunkSeq(r.Header)
	if !seqOK {
		writeError(w, http.StatusBadRequest, "bad "+ChunkSeqHeader+" header: want a non-negative integer")
		return
	}
	if !sess.feedMu.TryLock() {
		// A feed is already in flight: reject before buffering anything —
		// chunks must be ordered, so queueing a concurrent one (or its
		// body bytes) would only hide a client protocol error.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "session busy: serialize event chunks")
		return
	}
	defer sess.feedMu.Unlock()

	// Retry of the last applied chunk: replay the cached response without
	// feeding (or billing) the body again. The check runs before byte
	// admission — a retried chunk was already debited when it was applied.
	if seq >= 0 {
		sess.mu.Lock()
		dup := sess.lastSeqResp != nil && seq == sess.lastSeq
		gap := sess.lastSeqResp != nil && !dup && seq != sess.lastSeq+1
		status, cached := sess.lastSeqStatus, sess.lastSeqResp
		if dup {
			sess.lastActive = time.Now()
		}
		sess.mu.Unlock()
		if dup {
			io.Copy(io.Discard, s.bodyReader(w, http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(cached)
			return
		}
		if gap {
			// A sequence jump means chunks between lastSeq and seq were
			// applied somewhere this engine never saw them — e.g. a router
			// failed the session over elsewhere, then a restarted router
			// re-derived the original placement. Feeding past the hole
			// would silently produce a wrong verdict; refuse so the client
			// replays the trace from the start.
			io.Copy(io.Discard, s.bodyReader(w, http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)))
			writeError(w, http.StatusConflict, "chunk sequence gap: session state diverged, replay from the start")
			return
		}
	}

	// One chunk is one admission unit of the tenant's byte budget:
	// declared lengths are debited upfront, chunked bodies as they stream.
	// A chunk larger than the bucket capacity can never be admitted → 413.
	if ok, retry, never := sess.tenant.admitBytes(r.ContentLength); !ok {
		if never {
			writeError(w, http.StatusRequestEntityTooLarge, "chunk exceeds tenant byte budget capacity")
			return
		}
		writeQuotaRejection(w, retry, "tenant byte budget exhausted")
		return
	}
	var raw io.Reader = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if r.ContentLength < 0 {
		raw = &tenantBytesReader{r: raw, t: sess.tenant}
	}
	body := s.bodyReader(w, raw)
	sess.mu.Lock()
	if sess.removed {
		sess.mu.Unlock()
		// Lost a race with DELETE / eviction between lookup and lock.
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.lastActive = time.Now()
	state, view := sess.state, sess.view()
	sess.mu.Unlock()
	// A failed session is terminal outright; a violated one is terminal
	// only once every requested analysis has latched — a multi-analysis
	// session whose race analysis is still live keeps consuming chunks
	// after the atomicity violation. (Reading checker.Done here is safe:
	// we hold feedMu.)
	if state == stateFailed || (state != stateActive && sess.checker.Done()) {
		// Terminal states accept and discard the chunk; drain it so the
		// client receives the snapshot instead of a connection reset
		// mid-upload (the per-read deadline still bounds a stalled drain).
		io.Copy(io.Discard, body)
		if state == stateFailed {
			s.writeFeedResult(w, sess, seq, http.StatusConflict, view)
			return
		}
		s.writeFeedResult(w, sess, seq, http.StatusOK, view)
		return
	}

	// Stream the body into the checker in fixed-size blocks: O(block)
	// extra memory per feed instead of a whole buffered chunk; the
	// snapshot fields refresh per block so GET and the janitor see live
	// state without waiting on feedMu; and every block read carries a
	// fresh deadline, so a stalled upload fails within BodyReadTimeout.
	// Chunks are stream fragments, not transactions: events already fed
	// when an upload dies stay fed.
	before := sess.checker.Processed()
	feedStart := time.Now()
	block := make([]byte, 64*1024)
	var v *aerodrome.Violation
	var ferr error
	removedMidFeed := false
	for {
		n, rerr := body.Read(block)
		if n > 0 {
			v, ferr = sess.checker.Feed(block[:n])
			var snap []aerodrome.AnalysisReport
			if sess.multi {
				// Snapshot per-analysis state while holding feedMu (it reads
				// the checker), then publish it under mu like the other
				// cached fields.
				snap = sess.checker.Analyses()
			}
			sess.mu.Lock()
			sess.lastActive = time.Now()
			sess.events = sess.checker.Processed()
			if sess.multi {
				sess.analysesSnap = snap
				s.countAnalysisViolationsLocked(sess, snap)
			}
			removedMidFeed = sess.removed
			sess.mu.Unlock()
			if ferr != nil || removedMidFeed || sess.checker.Done() {
				break
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			s.settleFeed(sess, before, feedStart)
			var budget *errTenantBudget
			if errors.As(rerr, &budget) {
				// Mid-stream exhaustion of a chunked feed: a prefix of the
				// chunk is already applied (chunks are stream fragments, not
				// transactions), so answer with the snapshot — its event
				// count tells the client exactly where to resume instead of
				// blindly retrying the whole chunk.
				secs := int64(budget.retryAfter/time.Second) + 1
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				sess.mu.Lock()
				view := sess.view()
				sess.mu.Unlock()
				writeJSON(w, http.StatusTooManyRequests, view)
				return
			}
			if errors.Is(rerr, os.ErrDeadlineExceeded) {
				writeError(w, http.StatusRequestTimeout, "chunk upload stalled")
				return
			}
			writeBodyError(w, rerr)
			return
		}
	}
	s.settleFeed(sess, before, feedStart)
	if removedMidFeed {
		// DELETE or eviction signalled mid-stream; stop so the remover's
		// pending feedMu acquisition (and finalization) can proceed.
		writeError(w, http.StatusNotFound, "session closed during feed")
		return
	}
	if ferr != nil || v != nil {
		// Terminal mid-body: discard the tail for connection hygiene.
		io.Copy(io.Discard, body)
	}
	sess.mu.Lock()
	status := http.StatusOK
	switch {
	case ferr != nil:
		sess.state = stateFailed
		sess.parseErr = ferr
		status = http.StatusBadRequest
	case v != nil && sess.viol == nil:
		// Guarded on first sighting: a multi-analysis session keeps feeding
		// after the atomicity latch, and every later Feed returns the same
		// latched violation.
		sess.state = stateViolated
		sess.viol = v
		s.metrics.violationsTotal.Add(1)
		sess.tenant.violationsTotal.Add(1)
		s.countAnalysisViolationLocked(sess, string(aerodrome.AnalysisAtomicity))
	}
	view = sess.view()
	sess.mu.Unlock()
	s.writeFeedResult(w, sess, seq, status, view)
}

// countAnalysisViolationLocked settles one analysis' first violation into
// the per-analysis metrics, at most once per session. Callers hold sess.mu.
func (s *Server) countAnalysisViolationLocked(sess *session, name string) {
	if sess.violCounted == nil {
		sess.violCounted = map[string]bool{}
	}
	if sess.violCounted[name] {
		return
	}
	sess.violCounted[name] = true
	if ac := s.metrics.analyses[name]; ac != nil {
		ac.violations.Add(1)
	}
}

// countAnalysisViolationsLocked settles every non-clean entry of a
// per-analysis snapshot. Callers hold sess.mu.
func (s *Server) countAnalysisViolationsLocked(sess *session, snap []aerodrome.AnalysisReport) {
	for _, ar := range snap {
		if !ar.Clean {
			s.countAnalysisViolationLocked(sess, ar.Analysis)
		}
	}
}

// writeFeedResult writes one feed response and, when the chunk carried a
// sequence number, caches the exact response bytes under it for
// idempotent retries. Callers only reach here with statuses that mean
// the chunk was consumed (200 applied or discarded-terminal, 400/409
// terminal); rejections (429/503/408/413) bypass this path — the chunk
// was not applied, so its retry must run for real.
func (s *Server) writeFeedResult(w http.ResponseWriter, sess *session, seq int64, status int, view SessionView) {
	data, err := json.Marshal(view)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Trailing newline matches writeJSON's json.Encoder framing, so cached
	// replays are byte-identical to first-time responses.
	data = append(data, '\n')
	if seq >= 0 {
		sess.mu.Lock()
		sess.lastSeq, sess.lastSeqStatus, sess.lastSeqResp = seq, status, data
		sess.mu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// countFeedEvents settles the events consumed by one feed into the global
// and per-tenant counters.
func (s *Server) countFeedEvents(sess *session, before int64) {
	delta := sess.checker.Processed() - before
	s.metrics.eventsTotal.Add(delta)
	sess.tenant.eventsTotal.Add(delta)
}

// settleFeed settles the outcome of one feed: events consumed,
// feed-stage latency, and the engine introspection delta since the last
// settlement. Callers hold sess.feedMu.
func (s *Server) settleFeed(sess *session, before int64, start time.Time) {
	s.countFeedEvents(sess, before)
	s.metrics.stageFeed.Record(time.Since(start))
	s.settleEngineStats(sess)
}

// settleEngineStats folds the checker's engine introspection activity
// since the previous settlement into the server-wide aggregate, so
// /metrics reflects long-running sessions while they stream rather than
// only after they finalize. Callers hold sess.feedMu.
func (s *Server) settleEngineStats(sess *session) {
	cur, ok := sess.checker.Stats()
	if !ok {
		return
	}
	s.metrics.addEngineStats(cur.Sub(sess.engineSettled))
	sess.engineSettled = cur
}

// handleSessionGet is GET /v1/sessions/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	view := sess.view()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// finalizedTTL bounds the DELETE idempotency cache: a finalize response
// stays replayable this long after it was first sent. Comfortably longer
// than any client or router retry window, short enough that the cache
// stays a footnote next to live sessions.
const finalizedTTL = time.Minute

// finalizedReport is one cached DELETE response: the exact status and
// body bytes, replayed verbatim for retries of the same finalize.
type finalizedReport struct {
	status int
	body   []byte
	at     time.Time
}

// handleSessionDelete is DELETE /v1/sessions/{id}: finalize the stream (a
// trailing line without a newline is parsed) and return the final Report.
// Finalize is idempotent within finalizedTTL: DELETE is the one request
// whose lost response is unrecoverable any other way (the session is gone
// after the first application), so a re-sent DELETE replays the cached
// report instead of answering 404 as if the session never existed.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		s.replayFinalized(w, id)
		return
	}
	if !s.removeSession(sess.id) {
		// A concurrent DELETE or eviction got there first; exactly one
		// caller finalizes (and counts) the session.
		s.replayFinalized(w, id)
		return
	}
	rep, err := s.finalizeSession(sess, &s.metrics.sessionsClosed)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err != nil {
		sess.state = stateFailed
		sess.parseErr = err
		s.writeDeleteResult(w, id, http.StatusBadRequest, sess.view())
		return
	}
	if !rep.Serializable && sess.state == stateActive {
		// The trailing flushed line completed a violation.
		sess.state = stateViolated
		sess.viol = rep.Violation
		s.metrics.violationsTotal.Add(1)
		sess.tenant.violationsTotal.Add(1)
		s.countAnalysisViolationLocked(sess, string(aerodrome.AnalysisAtomicity))
	}
	if len(rep.Analyses) > 0 {
		// The final flushed line may have latched a non-atomicity analysis;
		// refresh the cached snapshot and settle any last violations.
		sess.analysesSnap = rep.Analyses
		s.countAnalysisViolationsLocked(sess, rep.Analyses)
	}
	s.writeDeleteResult(w, id, http.StatusOK, rep)
}

// replayFinalized answers a DELETE for an id not in the session table:
// the cached finalize response when one exists (an idempotent retry),
// 404 otherwise.
func (s *Server) replayFinalized(w http.ResponseWriter, id string) {
	s.finalMu.Lock()
	fr, ok := s.finalized[id]
	s.finalMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(fr.status)
	w.Write(fr.body)
}

// writeDeleteResult writes one finalize response and caches the exact
// bytes under the session id, so a retried DELETE replays byte-identical
// to the first.
func (s *Server) writeDeleteResult(w http.ResponseWriter, id string, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Trailing newline matches writeJSON's json.Encoder framing, so cached
	// replays are byte-identical to first-time responses.
	data = append(data, '\n')
	s.finalMu.Lock()
	s.finalized[id] = finalizedReport{status: status, body: data, at: time.Now()}
	s.finalMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// finalizeSession closes a session's checker after it has been removed
// from the table, settling the shared counters; counter is the terminal
// metric this path owns (closed vs evicted). The caller must have won
// removeSession. Sequence: signal any in-flight feed via the removed flag
// (it aborts at its next block), then take the stream lock — never while
// holding sess.mu, the feed loop acquires them in the opposite order.
func (s *Server) finalizeSession(sess *session, counter *atomic.Int64) (*aerodrome.Report, error) {
	sess.mu.Lock()
	sess.removed = true
	sess.mu.Unlock()
	sess.feedMu.Lock()
	defer sess.feedMu.Unlock()
	before := sess.checker.Processed()
	start := time.Now()
	rep, err := sess.checker.Close()
	s.metrics.stageFinalize.Record(time.Since(start))
	// Close may parse a final unterminated line; count those events too,
	// and settle the engine's remaining introspection delta.
	s.countFeedEvents(sess, before)
	s.settleEngineStats(sess)
	counter.Add(1)
	sess.tenant.releaseSession()
	sess.mu.Lock()
	sess.events = sess.checker.Processed()
	sess.mu.Unlock()
	return rep, err
}

// removeSession unregisters id and reports whether this call was the one
// that removed it — exactly one racing remover wins and owns finalizing
// the session (and its closed/evicted counter). The caller settles
// metrics besides the active gauge.
func (s *Server) removeSession(id string) bool {
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		s.metrics.sessionsActive.Add(-1)
	}
	return ok
}

// janitor evicts sessions idle past the TTL. It runs every ttl/4 (clamped
// to [10ms, 30s]) until the server closes.
func (s *Server) janitor(ttl time.Duration) {
	interval := ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.pruneFinalized()
			cutoff := time.Now().Add(-ttl)
			s.mu.Lock()
			var idle []*session
			for _, sess := range s.sessions {
				if sess.mu.TryLock() {
					if sess.lastActive.Before(cutoff) {
						idle = append(idle, sess)
					}
					sess.mu.Unlock()
				}
			}
			s.mu.Unlock()
			for _, sess := range idle {
				// Re-check under the session lock: a feed acknowledged
				// between the scan and this point refreshed lastActive,
				// and evicting it anyway would lose an active session.
				// (Holding sess.mu while removeSession takes s.mu cannot
				// deadlock against the scan above: the scan only TryLocks.)
				sess.mu.Lock()
				if sess.removed || !sess.lastActive.Before(cutoff) {
					sess.mu.Unlock()
					continue
				}
				if !s.removeSession(sess.id) {
					sess.mu.Unlock()
					continue // a DELETE won the race and owns finalization
				}
				sess.mu.Unlock()
				s.finalizeSession(sess, &s.metrics.sessionsEvicted)
			}
		}
	}
}

// pruneFinalized drops finalize-cache entries past finalizedTTL; the
// janitor calls it each sweep so the cache tracks recent churn only.
func (s *Server) pruneFinalized() {
	cutoff := time.Now().Add(-finalizedTTL)
	s.finalMu.Lock()
	for id, fr := range s.finalized {
		if fr.at.Before(cutoff) {
			delete(s.finalized, id)
		}
	}
	s.finalMu.Unlock()
}

// isBodyTooLarge reports whether err is the MaxBytesReader limit.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
