package server

// Structured logging and request correlation for both daemon modes.
//
// Every request carries an ID in RequestIDHeader: generated at the edge
// (the first aerodromed process the request hits — normally the shard
// router) when the client did not supply one, echoed back in the
// response, and propagated verbatim on every hop the router makes on
// the request's behalf (proxied checks, session forwards). One grep for
// the ID across the router's and backends' logs reconstructs a
// request's whole path through a sharded topology.
//
// Log lines are log/slog text records. The level is configurable per
// daemon (-log-level); tests and embedders that pass no log writer get
// a discard logger, so the suites stay quiet by default.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// RequestIDHeader carries the request correlation ID. The router (or a
// single backend, when it is the edge) generates one per request when
// the client did not send one; the same value is echoed in the response
// and forwarded on every backend hop.
const RequestIDHeader = "X-Aerodrome-Request-Id"

// newRequestID returns a fresh 16-hex-digit request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: request id entropy: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ensureRequestID returns the request's correlation ID, generating one
// and installing it on the request headers when absent — so downstream
// forwards (which clone the headers) propagate it automatically.
func ensureRequestID(r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" {
		id = newRequestID()
		r.Header.Set(RequestIDHeader, id)
	}
	return id
}

// ParseLogLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive, empty = info) to its slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// newLogger builds the shared structured logger: slog text records to w
// at the given level, or a discard logger when w is nil — the quiet
// default every test and library embedder gets.
func newLogger(w io.Writer, level slog.Level) *slog.Logger {
	if w == nil {
		w = io.Discard
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// statusRecorder captures the response status for the access log. It
// implements Unwrap so http.NewResponseController still reaches the
// underlying connection's deadline controls through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// Unwrap exposes the underlying ResponseWriter to http.ResponseController.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// accessLevel picks the log level for one access line: operational
// endpoints that probers and scrapers hit on a cadence log at debug so
// an Info-level daemon log stays readable.
func accessLevel(path string) slog.Level {
	if path == "/healthz" || path == "/metrics" {
		return slog.LevelDebug
	}
	return slog.LevelInfo
}

// serveLogged runs one request through next with request-ID correlation
// and one access-log line: the ID is ensured on the request (so
// forwards propagate it), echoed in the response header, and logged
// with method, path, status and duration.
func serveLogged(logger *slog.Logger, next http.Handler, w http.ResponseWriter, r *http.Request) {
	id := ensureRequestID(r)
	w.Header().Set(RequestIDHeader, id)
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	next.ServeHTTP(rec, r)
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	logger.Log(r.Context(), accessLevel(r.URL.Path), "request",
		"id", id, "method", r.Method, "path", r.URL.Path,
		"status", status, "dur", time.Since(start))
}
