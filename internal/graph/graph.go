// Package graph provides an incremental directed graph with online cycle
// detection, the substrate for the Velodrome baseline (substituting for the
// JGraphT library the paper's implementation used).
//
// Two pluggable detection strategies are provided:
//
//   - DFS: a depth-first reachability probe per inserted edge, matching the
//     paper's description of Velodrome ("they check for cycles each time a
//     new edge is added"); worst-case O(V+E) per insertion.
//   - Pearce–Kelly: a dynamic topological order (Pearce & Kelly, 2006) that
//     only does work when an insertion violates the current order; much
//     cheaper on mostly-ordered insertion sequences. Included as an
//     ablation: even with a smarter detector, the transaction graph itself
//     grows with the trace, unlike AeroDrome's constant-size clock state.
//
// Both support node deletion (needed by Velodrome's garbage collection of
// transactions with no incoming edges) and in-degree queries.
package graph

import "sort"

// NodeID identifies a graph node. Velodrome uses transaction IDs.
type NodeID int32

// Cycle is a witness cycle: c[0] → c[1] → … → c[len-1] → c[0]. All edges
// except the final closing one exist in the graph; the closing edge is the
// insertion that was rejected.
type Cycle []NodeID

// Detector is an incremental directed graph with online cycle detection.
// AddEdge(u, v) inserts u→v unless doing so would close a cycle, in which
// case the edge is not inserted and a witness is returned. Graphs managed
// by a Detector therefore remain acyclic at all times.
type Detector interface {
	// Name identifies the strategy ("dfs" or "pearce-kelly").
	Name() string
	// AddNode ensures the node exists.
	AddNode(id NodeID)
	// HasNode reports whether the node exists (i.e. was added and not removed).
	HasNode(id NodeID) bool
	// AddEdge inserts u→v (both nodes are created as needed) and returns a
	// witness if the insertion would close a cycle. Self-edges are reported
	// as a length-1 cycle. Duplicate edges are ignored.
	AddEdge(u, v NodeID) Cycle
	// RemoveNode deletes the node and all incident edges.
	RemoveNode(id NodeID)
	// InDegree returns the number of distinct predecessors of id.
	InDegree(id NodeID) int
	// OutNeighbors returns a snapshot of id's successors.
	OutNeighbors(id NodeID) []NodeID
	// NodeCount and EdgeCount report current sizes.
	NodeCount() int
	EdgeCount() int
	// MaxNodeCount reports the high-water mark of NodeCount over the
	// detector's lifetime (the paper reports Velodrome graph sizes).
	MaxNodeCount() int
}

// New returns a Detector for the named strategy ("dfs" or "pearce-kelly").
// It panics on an unknown name; callers validate user input first.
func New(strategy string) Detector {
	switch strategy {
	case "dfs", "":
		return NewDFS()
	case "pearce-kelly", "pk":
		return NewPearceKelly()
	}
	panic("graph: unknown strategy " + strategy)
}

// --- shared core -------------------------------------------------------------

type dnode struct {
	out map[NodeID]struct{}
	in  map[NodeID]struct{}
	ord int // topological index (Pearce–Kelly only)
}

type digraph struct {
	nodes    map[NodeID]*dnode
	edges    int
	nextOrd  int
	maxNodes int
}

func newDigraph() digraph {
	return digraph{nodes: map[NodeID]*dnode{}}
}

func (g *digraph) addNode(id NodeID) *dnode {
	if n, ok := g.nodes[id]; ok {
		return n
	}
	n := &dnode{
		out: map[NodeID]struct{}{},
		in:  map[NodeID]struct{}{},
		ord: g.nextOrd,
	}
	g.nextOrd++
	g.nodes[id] = n
	if len(g.nodes) > g.maxNodes {
		g.maxNodes = len(g.nodes)
	}
	return n
}

func (g *digraph) hasEdge(u, v NodeID) bool {
	n, ok := g.nodes[u]
	if !ok {
		return false
	}
	_, ok = n.out[v]
	return ok
}

func (g *digraph) insertEdge(u, v NodeID) {
	g.nodes[u].out[v] = struct{}{}
	g.nodes[v].in[u] = struct{}{}
	g.edges++
}

func (g *digraph) removeNode(id NodeID) {
	n, ok := g.nodes[id]
	if !ok {
		return
	}
	for s := range n.out {
		delete(g.nodes[s].in, id)
		g.edges--
	}
	for p := range n.in {
		delete(g.nodes[p].out, id)
		g.edges--
	}
	delete(g.nodes, id)
}

func (g *digraph) hasNode(id NodeID) bool { _, ok := g.nodes[id]; return ok }

func (g *digraph) inDegree(id NodeID) int {
	if n, ok := g.nodes[id]; ok {
		return len(n.in)
	}
	return 0
}

func (g *digraph) outNeighbors(id NodeID) []NodeID {
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(n.out))
	for s := range n.out {
		out = append(out, s)
	}
	return out
}

// --- DFS strategy ------------------------------------------------------------

// DFSDetector checks each insertion with a forward depth-first search,
// exactly the per-edge cycle check the paper attributes to Velodrome.
//
// The search scratch state is generation-stamped dense arrays rather than a
// map: clearing a Go map costs time proportional to its historical
// capacity, which would make every tiny search after one large search pay
// for the graph's high-water mark.
type DFSDetector struct {
	g digraph
	// scratch state reused across searches, indexed by NodeID; an entry is
	// valid only when its stamp equals gen.
	visGen    []uint32
	visParent []NodeID
	gen       uint32
	stack     []NodeID
}

// NewDFS returns an empty DFS-strategy detector.
func NewDFS() *DFSDetector {
	return &DFSDetector{g: newDigraph()}
}

func (d *DFSDetector) visit(n, parent NodeID) {
	for int(n) >= len(d.visGen) {
		d.visGen = append(d.visGen, 0)
		d.visParent = append(d.visParent, 0)
	}
	d.visGen[n] = d.gen
	d.visParent[n] = parent
}

func (d *DFSDetector) seen(n NodeID) bool {
	return int(n) < len(d.visGen) && d.visGen[n] == d.gen
}

// Name implements Detector.
func (d *DFSDetector) Name() string { return "dfs" }

// AddNode implements Detector.
func (d *DFSDetector) AddNode(id NodeID) { d.g.addNode(id) }

// HasNode implements Detector.
func (d *DFSDetector) HasNode(id NodeID) bool { return d.g.hasNode(id) }

// AddEdge implements Detector.
func (d *DFSDetector) AddEdge(u, v NodeID) Cycle {
	if u == v {
		d.g.addNode(u)
		return Cycle{u}
	}
	d.g.addNode(u)
	d.g.addNode(v)
	if d.g.hasEdge(u, v) {
		return nil
	}
	// A cycle appears iff u is already reachable from v.
	if path := d.path(v, u); path != nil {
		return Cycle(path)
	}
	d.g.insertEdge(u, v)
	return nil
}

// path returns the node sequence from → … → to if to is reachable from
// from, else nil.
func (d *DFSDetector) path(from, to NodeID) []NodeID {
	d.gen++
	if d.gen == 0 { // generation counter wrapped: invalidate all stamps
		for i := range d.visGen {
			d.visGen[i] = 0
		}
		d.gen = 1
	}
	d.visit(from, from)
	stack := d.stack[:0]
	stack = append(stack, from)
	found := false
	for len(stack) > 0 && !found {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range d.g.nodes[n].out {
			if d.seen(s) {
				continue
			}
			d.visit(s, n)
			if s == to {
				found = true
				break
			}
			stack = append(stack, s)
		}
	}
	d.stack = stack[:0]
	if !found {
		return nil
	}
	var rev []NodeID
	for n := to; ; n = d.visParent[n] {
		rev = append(rev, n)
		if n == from {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path
}

// RemoveNode implements Detector.
func (d *DFSDetector) RemoveNode(id NodeID) { d.g.removeNode(id) }

// InDegree implements Detector.
func (d *DFSDetector) InDegree(id NodeID) int { return d.g.inDegree(id) }

// OutNeighbors implements Detector.
func (d *DFSDetector) OutNeighbors(id NodeID) []NodeID { return d.g.outNeighbors(id) }

// NodeCount implements Detector.
func (d *DFSDetector) NodeCount() int { return len(d.g.nodes) }

// EdgeCount implements Detector.
func (d *DFSDetector) EdgeCount() int { return d.g.edges }

// MaxNodeCount implements Detector.
func (d *DFSDetector) MaxNodeCount() int { return d.g.maxNodes }

// --- Pearce–Kelly strategy ---------------------------------------------------

// PKDetector maintains a dynamic topological order (Pearce & Kelly 2006,
// "A Dynamic Topological Sort Algorithm for Directed Acyclic Graphs").
// An insertion u→v with ord(u) < ord(v) costs O(1); otherwise only the
// affected region between ord(v) and ord(u) is searched and reordered.
type PKDetector struct {
	g digraph
	// scratch: generation-stamped dense visit arrays (see DFSDetector).
	fGen    []uint32
	fParent []NodeID
	bGen    []uint32
	gen     uint32
	deltaF  []NodeID
	deltaB  []NodeID
}

// NewPearceKelly returns an empty Pearce–Kelly detector.
func NewPearceKelly() *PKDetector {
	return &PKDetector{g: newDigraph()}
}

func (d *PKDetector) nextGen() {
	d.gen++
	if d.gen == 0 {
		for i := range d.fGen {
			d.fGen[i] = 0
		}
		for i := range d.bGen {
			d.bGen[i] = 0
		}
		d.gen = 1
	}
}

func (d *PKDetector) visitF(n, parent NodeID) {
	for int(n) >= len(d.fGen) {
		d.fGen = append(d.fGen, 0)
		d.fParent = append(d.fParent, 0)
	}
	d.fGen[n] = d.gen
	d.fParent[n] = parent
}

func (d *PKDetector) seenF(n NodeID) bool {
	return int(n) < len(d.fGen) && d.fGen[n] == d.gen
}

func (d *PKDetector) visitB(n NodeID) {
	for int(n) >= len(d.bGen) {
		d.bGen = append(d.bGen, 0)
	}
	d.bGen[n] = d.gen
}

func (d *PKDetector) seenB(n NodeID) bool {
	return int(n) < len(d.bGen) && d.bGen[n] == d.gen
}

// Name implements Detector.
func (d *PKDetector) Name() string { return "pearce-kelly" }

// AddNode implements Detector.
func (d *PKDetector) AddNode(id NodeID) { d.g.addNode(id) }

// HasNode implements Detector.
func (d *PKDetector) HasNode(id NodeID) bool { return d.g.hasNode(id) }

// AddEdge implements Detector.
func (d *PKDetector) AddEdge(u, v NodeID) Cycle {
	if u == v {
		d.g.addNode(u)
		return Cycle{u}
	}
	un := d.g.addNode(u)
	vn := d.g.addNode(v)
	if d.g.hasEdge(u, v) {
		return nil
	}
	lb, ub := vn.ord, un.ord
	if lb < ub {
		// The insertion violates the current order: discover the affected
		// region. Forward from v bounded by ub; reaching u is a cycle.
		d.nextGen()
		d.deltaF = d.deltaF[:0]
		if cyc := d.dfsF(v, u, ub); cyc != nil {
			return cyc
		}
		d.deltaB = d.deltaB[:0]
		d.dfsB(u, lb)
		d.reorder()
	}
	d.g.insertEdge(u, v)
	return nil
}

// dfsF explores forward from n over nodes with ord ≤ ub, recording visits;
// if target is reached it reconstructs the v→…→u path as a cycle witness.
func (d *PKDetector) dfsF(start, target NodeID, ub int) Cycle {
	d.visitF(start, start)
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d.deltaF = append(d.deltaF, n)
		for s := range d.g.nodes[n].out {
			if d.seenF(s) {
				continue
			}
			so := d.g.nodes[s].ord
			if so > ub {
				continue
			}
			d.visitF(s, n)
			if s == target {
				var rev []NodeID
				for x := target; ; x = d.fParent[x] {
					rev = append(rev, x)
					if x == start {
						break
					}
				}
				cyc := make(Cycle, len(rev))
				for i, x := range rev {
					cyc[len(rev)-1-i] = x
				}
				return cyc
			}
			stack = append(stack, s)
		}
	}
	return nil
}

// dfsB explores backward from n over nodes with ord ≥ lb.
func (d *PKDetector) dfsB(start NodeID, lb int) {
	d.visitB(start)
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d.deltaB = append(d.deltaB, n)
		for p := range d.g.nodes[n].in {
			if d.seenB(p) {
				continue
			}
			if d.g.nodes[p].ord < lb {
				continue
			}
			d.visitB(p)
			stack = append(stack, p)
		}
	}
}

// reorder reassigns the topological indices of the affected region so that
// every node discovered backward from u precedes every node discovered
// forward from v.
func (d *PKDetector) reorder() {
	byOrd := func(s []NodeID) {
		sort.Slice(s, func(i, j int) bool {
			return d.g.nodes[s[i]].ord < d.g.nodes[s[j]].ord
		})
	}
	byOrd(d.deltaB)
	byOrd(d.deltaF)

	merged := make([]NodeID, 0, len(d.deltaB)+len(d.deltaF))
	merged = append(merged, d.deltaB...)
	merged = append(merged, d.deltaF...)

	ords := make([]int, 0, len(merged))
	for _, n := range merged {
		ords = append(ords, d.g.nodes[n].ord)
	}
	sort.Ints(ords)
	for i, n := range merged {
		d.g.nodes[n].ord = ords[i]
	}
}

// RemoveNode implements Detector. Deletions never violate a topological
// order, so no reordering is needed.
func (d *PKDetector) RemoveNode(id NodeID) { d.g.removeNode(id) }

// InDegree implements Detector.
func (d *PKDetector) InDegree(id NodeID) int { return d.g.inDegree(id) }

// OutNeighbors implements Detector.
func (d *PKDetector) OutNeighbors(id NodeID) []NodeID { return d.g.outNeighbors(id) }

// NodeCount implements Detector.
func (d *PKDetector) NodeCount() int { return len(d.g.nodes) }

// EdgeCount implements Detector.
func (d *PKDetector) EdgeCount() int { return d.g.edges }

// MaxNodeCount implements Detector.
func (d *PKDetector) MaxNodeCount() int { return d.g.maxNodes }
