package graph

import (
	"math/rand"
	"testing"
)

func detectors() []Detector {
	return []Detector{NewDFS(), NewPearceKelly()}
}

func TestNewByName(t *testing.T) {
	if New("dfs").Name() != "dfs" {
		t.Fatal("dfs")
	}
	if New("").Name() != "dfs" {
		t.Fatal("default")
	}
	if New("pearce-kelly").Name() != "pearce-kelly" {
		t.Fatal("pk")
	}
	if New("pk").Name() != "pearce-kelly" {
		t.Fatal("pk alias")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy must panic")
		}
	}()
	New("bogus")
}

func TestSimpleCycle(t *testing.T) {
	for _, d := range detectors() {
		t.Run(d.Name(), func(t *testing.T) {
			if c := d.AddEdge(1, 2); c != nil {
				t.Fatalf("1→2 should not cycle: %v", c)
			}
			if c := d.AddEdge(2, 3); c != nil {
				t.Fatalf("2→3 should not cycle: %v", c)
			}
			c := d.AddEdge(3, 1)
			if c == nil {
				t.Fatalf("3→1 must close a cycle")
			}
			// Witness starts at the head of the rejected edge and ends at its
			// tail: 1 → 2 → 3 (closing edge 3→1 implied).
			if len(c) != 3 || c[0] != 1 || c[len(c)-1] != 3 {
				t.Fatalf("witness = %v", c)
			}
			// The rejected edge must not have been inserted.
			if d.EdgeCount() != 2 {
				t.Fatalf("EdgeCount = %d after rejected insertion", d.EdgeCount())
			}
		})
	}
}

func TestSelfEdge(t *testing.T) {
	for _, d := range detectors() {
		if c := d.AddEdge(5, 5); len(c) != 1 || c[0] != 5 {
			t.Fatalf("%s: self edge witness = %v", d.Name(), c)
		}
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	for _, d := range detectors() {
		d.AddEdge(1, 2)
		d.AddEdge(1, 2)
		if d.EdgeCount() != 1 {
			t.Fatalf("%s: duplicate edge counted", d.Name())
		}
		if d.InDegree(2) != 1 {
			t.Fatalf("%s: InDegree = %d", d.Name(), d.InDegree(2))
		}
	}
}

func TestInDegreeAndNeighbors(t *testing.T) {
	for _, d := range detectors() {
		d.AddEdge(1, 3)
		d.AddEdge(2, 3)
		d.AddEdge(3, 4)
		if d.InDegree(3) != 2 || d.InDegree(1) != 0 || d.InDegree(4) != 1 {
			t.Fatalf("%s: in-degrees wrong", d.Name())
		}
		out := d.OutNeighbors(3)
		if len(out) != 1 || out[0] != 4 {
			t.Fatalf("%s: OutNeighbors(3) = %v", d.Name(), out)
		}
		if d.OutNeighbors(99) != nil {
			t.Fatalf("%s: neighbors of missing node", d.Name())
		}
		if d.InDegree(99) != 0 {
			t.Fatalf("%s: in-degree of missing node", d.Name())
		}
	}
}

func TestRemoveNode(t *testing.T) {
	for _, d := range detectors() {
		d.AddEdge(1, 2)
		d.AddEdge(2, 3)
		d.RemoveNode(2)
		if d.HasNode(2) {
			t.Fatalf("%s: node 2 still present", d.Name())
		}
		if d.NodeCount() != 2 || d.EdgeCount() != 0 {
			t.Fatalf("%s: counts after removal: %d nodes %d edges",
				d.Name(), d.NodeCount(), d.EdgeCount())
		}
		if d.InDegree(3) != 0 {
			t.Fatalf("%s: InDegree(3) = %d after removal", d.Name(), d.InDegree(3))
		}
		// After removing 2, 3→1 no longer closes a cycle (1→2→3 is gone).
		if c := d.AddEdge(3, 1); c != nil {
			t.Fatalf("%s: 3→1 should be fine after removal, got %v", d.Name(), c)
		}
		// Removing a missing node is a no-op.
		d.RemoveNode(42)
	}
}

func TestMaxNodeCount(t *testing.T) {
	for _, d := range detectors() {
		d.AddEdge(1, 2)
		d.AddEdge(2, 3)
		d.RemoveNode(1)
		d.RemoveNode(2)
		d.RemoveNode(3)
		if d.MaxNodeCount() != 3 {
			t.Fatalf("%s: MaxNodeCount = %d, want 3", d.Name(), d.MaxNodeCount())
		}
		if d.NodeCount() != 0 {
			t.Fatalf("%s: NodeCount = %d, want 0", d.Name(), d.NodeCount())
		}
	}
}

func TestLongChainThenClose(t *testing.T) {
	const n = 500
	for _, d := range detectors() {
		for i := 0; i < n; i++ {
			if c := d.AddEdge(NodeID(i), NodeID(i+1)); c != nil {
				t.Fatalf("%s: chain edge cycled", d.Name())
			}
		}
		c := d.AddEdge(NodeID(n), 0)
		if c == nil {
			t.Fatalf("%s: closing the chain must cycle", d.Name())
		}
		if len(c) != n+1 {
			t.Fatalf("%s: witness length = %d, want %d", d.Name(), len(c), n+1)
		}
	}
}

func TestPKOutOfOrderInsertions(t *testing.T) {
	// Insert edges that repeatedly violate the current topological order to
	// exercise the discovery/reorder path.
	d := NewPearceKelly()
	// Create nodes 0..9 in order, then add edges backwards in ID space.
	for i := 0; i < 10; i++ {
		d.AddNode(NodeID(i))
	}
	edges := [][2]NodeID{{9, 8}, {8, 7}, {7, 6}, {6, 5}, {5, 0}, {3, 2}, {2, 1}, {0, 3}}
	for _, e := range edges {
		if c := d.AddEdge(e[0], e[1]); c != nil {
			t.Fatalf("unexpected cycle at %v: %v", e, c)
		}
	}
	// 1 → 9 closes 9→…→0→3→2→1.
	if c := d.AddEdge(1, 9); c == nil {
		t.Fatalf("expected cycle")
	}
}

// oracle: recompute acyclicity from scratch with a DFS over an adjacency map.
type oracleGraph struct {
	out map[NodeID]map[NodeID]bool
}

func newOracle() *oracleGraph { return &oracleGraph{out: map[NodeID]map[NodeID]bool{}} }

func (o *oracleGraph) addEdge(u, v NodeID) {
	if o.out[u] == nil {
		o.out[u] = map[NodeID]bool{}
	}
	o.out[u][v] = true
}

func (o *oracleGraph) removeNode(id NodeID) {
	delete(o.out, id)
	for _, m := range o.out {
		delete(m, id)
	}
}

// wouldCycle reports whether adding u→v creates a cycle (path v→…→u).
func (o *oracleGraph) wouldCycle(u, v NodeID) bool {
	if u == v {
		return true
	}
	seen := map[NodeID]bool{v: true}
	stack := []NodeID{v}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == u {
			return true
		}
		for s := range o.out[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func TestRandomizedAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		dets := detectors()
		oracle := newOracle()
		nodes := 2 + r.Intn(12)
		for step := 0; step < 150; step++ {
			if r.Intn(10) == 0 {
				// Occasionally delete a random node.
				id := NodeID(r.Intn(nodes))
				oracle.removeNode(id)
				for _, d := range dets {
					d.RemoveNode(id)
				}
				continue
			}
			u := NodeID(r.Intn(nodes))
			v := NodeID(r.Intn(nodes))
			want := oracle.wouldCycle(u, v)
			for _, d := range dets {
				got := d.AddEdge(u, v) != nil
				if got != want {
					t.Fatalf("iter %d step %d: %s AddEdge(%d,%d) cycle=%v oracle=%v",
						iter, step, d.Name(), u, v, got, want)
				}
			}
			if !want {
				oracle.addEdge(u, v)
			}
		}
		// Detectors must agree with each other on final shape.
		if dets[0].EdgeCount() != dets[1].EdgeCount() ||
			dets[0].NodeCount() != dets[1].NodeCount() {
			t.Fatalf("iter %d: detectors disagree on counts", iter)
		}
	}
}

func TestWitnessEdgesExist(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for _, mk := range []func() Detector{func() Detector { return NewDFS() },
		func() Detector { return NewPearceKelly() }} {
		d := mk()
		oracle := newOracle()
		for step := 0; step < 400; step++ {
			u := NodeID(r.Intn(15))
			v := NodeID(r.Intn(15))
			if u == v {
				continue
			}
			c := d.AddEdge(u, v)
			if c == nil {
				oracle.addEdge(u, v)
				continue
			}
			// Witness must start at v, end at u, and every consecutive edge
			// must exist in the (pre-insertion) graph.
			if c[0] != v || c[len(c)-1] != u {
				t.Fatalf("%s: witness endpoints %v for edge (%d,%d)", d.Name(), c, u, v)
			}
			for i := 0; i+1 < len(c); i++ {
				if !oracle.out[c[i]][c[i+1]] {
					t.Fatalf("%s: witness edge %d→%d not in graph", d.Name(), c[i], c[i+1])
				}
			}
		}
	}
}
