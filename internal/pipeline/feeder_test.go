package pipeline

// Feeder differential tests: feeding an STD log in chunks of any size must
// produce the same verdict, violation index and event count as running the
// same engine over the whole log sequentially.

import (
	"bytes"
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

func renderSTD(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rapidio.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func feederTraces(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{
		"rho1": renderSTD(t, testutil.Rho1()),
		"rho2": renderSTD(t, testutil.Rho2()),
		"rho3": renderSTD(t, testutil.Rho3()),
		"rho4": renderSTD(t, testutil.Rho4()),
	}
	for _, inj := range []workload.Violation{workload.ViolationNone, workload.ViolationCross} {
		cfg := workload.Config{
			Name: "feeder-" + string(inj), Threads: 8, Vars: 32, Locks: 4,
			Events: 2000, OpsPerTxn: 3, Pattern: workload.PatternSharded,
			Inject: inj, InjectAt: 0.6, TxnFraction: 0.5, Seed: 99,
		}
		out[cfg.Name] = renderSTD(t, trace.Collect(workload.New(cfg)))
	}
	return out
}

func TestFeederMatchesSequential(t *testing.T) {
	for name, data := range feederTraces(t) {
		seqEng := core.NewOptimized()
		rd := rapidio.NewReader(bytes.NewReader(data))
		wantV, wantN := core.Run(seqEng, rd)
		if err := rd.Err(); err != nil {
			t.Fatalf("%s: sequential parse: %v", name, err)
		}
		for _, chunk := range []int{1, 3, 17, 256, 1 << 20} {
			f := NewFeeder(core.NewOptimized(), Config{BatchSize: 32})
			for i := 0; i < len(data); i += chunk {
				end := i + chunk
				if end > len(data) {
					end = len(data)
				}
				if _, err := f.Feed(data[i:end]); err != nil {
					t.Fatalf("%s chunk %d: feed: %v", name, chunk, err)
				}
			}
			v, n, err := f.Close()
			if err != nil {
				t.Fatalf("%s chunk %d: close: %v", name, chunk, err)
			}
			if (v != nil) != (wantV != nil) {
				t.Fatalf("%s chunk %d: violation %v, want %v", name, chunk, v, wantV)
			}
			if v != nil && (v.Index != wantV.Index || v.Check != wantV.Check) {
				t.Fatalf("%s chunk %d: violation (%d, %s), want (%d, %s)",
					name, chunk, v.Index, v.Check, wantV.Index, wantV.Check)
			}
			if n != wantN {
				t.Fatalf("%s chunk %d: %d events, want %d", name, chunk, n, wantN)
			}
		}
	}
}

// TestFeederDiscardsAfterViolation pins the observational-equivalence
// corner: a parse error positioned after the first violation is never
// reported, because the sequential checker would have stopped reading.
func TestFeederDiscardsAfterViolation(t *testing.T) {
	data := renderSTD(t, testutil.Rho2()) // violating trace
	f := NewFeeder(core.NewOptimized(), Config{})
	v, err := f.Feed(data)
	if err != nil || v == nil {
		t.Fatalf("Feed = (%v, %v), want latched violation", v, err)
	}
	if v2, err := f.Feed([]byte("this|is|not|an|std|line\n")); err != nil || v2 != v {
		t.Fatalf("post-violation Feed = (%v, %v), want (%v, nil)", v2, err, v)
	}
	vc, n, err := f.Close()
	if err != nil || vc != v {
		t.Fatalf("Close = (%v, %d, %v), want the latched violation and nil error", vc, n, err)
	}
	if n != f.Processed() || f.Violation() != v {
		t.Fatal("snapshot accessors disagree with Close")
	}
}

// TestFeederReleasesTailOnViolation pins the memory bound: when a
// violation latches mid-chunk, the unconsumed tail of the chunk is freed
// rather than pinned for the session's remaining lifetime.
func TestFeederReleasesTailOnViolation(t *testing.T) {
	head := renderSTD(t, testutil.Rho2())
	tail := bytes.Repeat([]byte("t0|r(x)|1\n"), 100_000)
	f := NewFeeder(core.NewOptimized(), Config{})
	v, err := f.Feed(append(append([]byte{}, head...), tail...))
	if err != nil || v == nil {
		t.Fatalf("Feed = (%v, %v), want latched violation", v, err)
	}
	if got := f.src.Buffered(); got != 0 {
		t.Fatalf("source buffers %d bytes after the violation, want 0", got)
	}
}

func TestFeederParseErrorLatches(t *testing.T) {
	f := NewFeeder(core.NewOptimized(), Config{})
	if _, err := f.Feed([]byte("t0|begin|0\nt0|nope|0\n")); err == nil {
		t.Fatal("want parse error")
	}
	if f.Err() == nil {
		t.Fatal("Err: want latched parse error")
	}
	if _, n, err := f.Close(); err == nil || n != 1 {
		t.Fatalf("Close = (%d, %v), want 1 event and the latched error", n, err)
	}
}

// TestFeederTrailingLine pins Close's flush of a final unterminated line.
func TestFeederTrailingLine(t *testing.T) {
	f := NewFeeder(core.NewOptimized(), Config{})
	if _, err := f.Feed([]byte("t0|begin|0\nt0|w(x)|1\nt0|end|0")); err != nil {
		t.Fatal(err)
	}
	if f.Processed() != 2 {
		t.Fatalf("Processed before Close = %d, want 2 (trailing line incomplete)", f.Processed())
	}
	v, n, err := f.Close()
	if v != nil || n != 3 || err != nil {
		t.Fatalf("Close = (%v, %d, %v), want (nil, 3, nil)", v, n, err)
	}
}
