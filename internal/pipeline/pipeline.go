// Package pipeline decouples trace parsing from checking: a producer
// goroutine fills pooled event batches from a BatchSource (the rapidio
// readers) and hands them through a bounded channel to the checker, which
// runs on the caller's goroutine. The paper's algorithm is single-pass
// with constant per-event state, so the only coupling between the two
// stages is the event stream itself — exactly the shape that pipelines.
//
// Design points:
//
//   - Bounded depth: the channel holds at most Depth batches, so a fast
//     parser cannot run away from a slow checker (backpressure) and memory
//     stays O(Depth·BatchSize) regardless of trace size.
//   - Zero steady-state allocations: all Depth batch buffers are allocated
//     up front and recycled through a free list; after warm-up the
//     pipeline itself allocates nothing per event.
//   - Early exit: the checker latches at the first violation, signals the
//     producer via the stop channel, and drains; the producer never blocks
//     forever on a full channel.
//   - Observational equivalence: verdict, violation index and event count
//     are identical to running the same engine over the same stream
//     sequentially. In particular a parse error positioned after the first
//     violation is not reported — the sequential checker would have
//     stopped reading before reaching it. The differential suite at the
//     repository root enforces this against the golden corpus and the
//     fuzz seeds.
package pipeline

import (
	"io"
	"sync/atomic"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/trace"
)

// BatchSource produces events in bulk: ReadBatch fills dst with up to
// len(dst) events, returning how many were filled and the terminal error
// if the stream ended inside this batch (io.EOF for a clean end). Both
// rapidio readers implement it.
type BatchSource interface {
	ReadBatch(dst []trace.Event) (int, error)
}

// StageStats accumulates where a pipelined check spends its wall time,
// split by stage: ParseNanos is time inside the source's ReadBatch
// (tokenization), CheckNanos is time inside the engine's Process loop
// (vector-clock work). The two stages run on different goroutines in Run,
// so the counters are atomic and their sum can exceed the elapsed wall
// time — they answer "which stage is the bottleneck", not "how long did
// the call take".
type StageStats struct {
	ParseNanos atomic.Int64
	CheckNanos atomic.Int64
}

// ParseTime returns the accumulated parse-stage time.
func (s *StageStats) ParseTime() time.Duration { return time.Duration(s.ParseNanos.Load()) }

// CheckTime returns the accumulated check-stage time.
func (s *StageStats) CheckTime() time.Duration { return time.Duration(s.CheckNanos.Load()) }

// Config tunes the pipeline. The zero value selects the defaults.
type Config struct {
	// BatchSize is the number of events per batch (default 4096): large
	// enough to amortize the channel handoff to well under a nanosecond
	// per event, small enough to keep the violation-latch latency low.
	BatchSize int
	// Depth is the number of in-flight batches (default 4): the producer
	// parses at most Depth·BatchSize events ahead of the checker.
	Depth int
	// Stats, when non-nil, accumulates per-stage timings. The pointer may
	// be shared across runs (a server aggregating over requests).
	Stats *StageStats
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	return c
}

// Run drives eng over src with parsing pipelined on a separate goroutine.
// It returns the violation (nil if the trace is accepted), the number of
// events consumed, and the parse error that ended the stream, if any.
// When a violation is found, any later parse error is discarded: the
// sequential checker stops reading at the violation, and Run is defined
// to be observationally identical to it.
func Run(eng core.Engine, src BatchSource, cfg Config) (*core.Violation, int64, error) {
	cfg = cfg.withDefaults()

	full := make(chan []trace.Event, cfg.Depth)
	free := make(chan []trace.Event, cfg.Depth)
	stop := make(chan struct{})
	for i := 0; i < cfg.Depth; i++ {
		free <- make([]trace.Event, cfg.BatchSize)
	}

	// The producer writes srcErr before closing full; the close ordering
	// makes the write visible to the consumer without further locking.
	var srcErr error
	go func() {
		defer close(full)
		for {
			var buf []trace.Event
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			var parseStart time.Time
			if cfg.Stats != nil {
				parseStart = time.Now()
			}
			n, err := src.ReadBatch(buf[:cap(buf)])
			if cfg.Stats != nil {
				cfg.Stats.ParseNanos.Add(int64(time.Since(parseStart)))
			}
			if n > 0 {
				select {
				case full <- buf[:n]:
				case <-stop:
					return
				}
			}
			if err != nil {
				if err != io.EOF {
					srcErr = err
				}
				return
			}
		}
	}()

	var viol *core.Violation
	stopped := false
	for evs := range full {
		if viol == nil {
			var checkStart time.Time
			if cfg.Stats != nil {
				checkStart = time.Now()
			}
			for _, e := range evs {
				if v := eng.Process(e); v != nil {
					viol = v
					break
				}
			}
			if cfg.Stats != nil {
				cfg.Stats.CheckNanos.Add(int64(time.Since(checkStart)))
			}
			if viol != nil && !stopped {
				stopped = true
				close(stop) // unblock the producer; keep draining full
			}
		}
		free <- evs[:cap(evs)]
	}
	if viol != nil {
		return viol, eng.Processed(), nil
	}
	return eng.Violation(), eng.Processed(), srcErr
}
