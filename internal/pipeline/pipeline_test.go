package pipeline

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// sliceSource serves a fixed event slice batch by batch, recording every
// distinct destination buffer it is handed (batch-recycling check) and
// optionally ending with an injected error.
type sliceSource struct {
	evs     []trace.Event
	pos     int
	err     error // returned after the events run out (io.EOF when nil)
	buffers map[*trace.Event]bool
	maxReq  int
}

func (s *sliceSource) ReadBatch(dst []trace.Event) (int, error) {
	if s.buffers == nil {
		s.buffers = map[*trace.Event]bool{}
	}
	if cap(dst) > 0 {
		s.buffers[&dst[:1][0]] = true
	}
	if len(dst) > s.maxReq {
		s.maxReq = len(dst)
	}
	n := copy(dst, s.evs[s.pos:])
	s.pos += n
	if s.pos == len(s.evs) {
		if s.err != nil {
			return n, s.err
		}
		return n, io.EOF
	}
	return n, nil
}

func genEvents(t *testing.T, cfg workload.Config) []trace.Event {
	t.Helper()
	return trace.Collect(workload.New(cfg)).Events
}

func seqOutcome(evs []trace.Event, algo core.Algorithm) (*core.Violation, int64) {
	eng := core.New(algo)
	tr := &trace.Trace{Events: evs}
	return core.Run(eng, tr.Cursor())
}

// TestRunMatchesSequential pins the pipelined outcome (verdict, violation
// index, check kind, events processed) to core.Run on the same stream,
// across workload patterns, injected violations and batch sizes that do
// and do not divide the trace length.
func TestRunMatchesSequential(t *testing.T) {
	for _, inj := range []workload.Violation{
		workload.ViolationNone, workload.ViolationCross,
		workload.ViolationDelayed, workload.ViolationLock,
	} {
		for _, pattern := range []workload.Pattern{
			workload.PatternChain, workload.PatternSharded, workload.PatternPhase,
		} {
			cfg := workload.Config{
				Name: string(pattern) + "-" + string(inj), Threads: 6, Vars: 128,
				Locks: 4, Events: 5000, OpsPerTxn: 3, Pattern: pattern,
				Inject: inj, InjectAt: 0.6, TxnFraction: 0.5, Seed: 7,
			}
			evs := genEvents(t, cfg)
			wantV, wantN := seqOutcome(evs, core.AlgoOptimized)
			for _, c := range []Config{{}, {BatchSize: 1}, {BatchSize: 7, Depth: 2}, {BatchSize: 4096, Depth: 1}} {
				eng := core.NewOptimized()
				v, n, err := Run(eng, &sliceSource{evs: evs}, c)
				if err != nil {
					t.Fatalf("%s %+v: error %v", cfg.Name, c, err)
				}
				if (wantV != nil) != (v != nil) {
					t.Fatalf("%s %+v: verdict violation=%v, want %v", cfg.Name, c, v != nil, wantV != nil)
				}
				if wantV != nil && (v.Index != wantV.Index || v.Check != wantV.Check) {
					t.Fatalf("%s %+v: violation (index %d, %v), want (index %d, %v)",
						cfg.Name, c, v.Index, v.Check, wantV.Index, wantV.Check)
				}
				if n != wantN {
					t.Fatalf("%s %+v: processed %d, want %d", cfg.Name, c, n, wantN)
				}
			}
		}
	}
}

// TestRunRecyclesBatches asserts the zero-steady-state-allocation design:
// over an arbitrarily long stream, the producer only ever sees the Depth
// preallocated buffers.
func TestRunRecyclesBatches(t *testing.T) {
	cfg := workload.Config{
		Name: "recycle", Threads: 4, Vars: 64, Locks: 2, Events: 60000,
		OpsPerTxn: 4, Pattern: workload.PatternSharded, TxnFraction: 0.5, Seed: 3,
	}
	src := &sliceSource{evs: genEvents(t, cfg)}
	c := Config{BatchSize: 256, Depth: 3}
	if _, _, err := Run(core.NewOptimized(), src, c); err != nil {
		t.Fatal(err)
	}
	if len(src.buffers) > c.Depth {
		t.Fatalf("pipeline used %d distinct buffers, want ≤ %d", len(src.buffers), c.Depth)
	}
	if src.maxReq != c.BatchSize {
		t.Fatalf("batch capacity %d, want %d", src.maxReq, c.BatchSize)
	}
}

// TestRunStopsProducerAfterViolation: once the checker latches, the
// producer must be released promptly instead of parsing the rest of a
// large trace into a wall of backpressure.
func TestRunStopsProducerAfterViolation(t *testing.T) {
	cfg := workload.Config{
		Name: "early", Threads: 6, Vars: 64, Locks: 2, Events: 200000,
		OpsPerTxn: 3, Pattern: workload.PatternChain,
		Inject: workload.ViolationCross, InjectAt: 0.01, Seed: 5,
	}
	src := &sliceSource{evs: genEvents(t, cfg)}
	c := Config{BatchSize: 64, Depth: 2}
	v, _, err := Run(core.NewOptimized(), src, c)
	if err != nil || v == nil {
		t.Fatalf("want violation, got v=%v err=%v", v, err)
	}
	// The producer may overrun by the in-flight window, not by the trace.
	overrun := src.pos - int(v.Index)
	if max := (c.Depth + 2) * c.BatchSize; overrun > max {
		t.Fatalf("producer parsed %d events past the violation, want ≤ %d", overrun, max)
	}
}

func TestRunPropagatesSourceError(t *testing.T) {
	cfg := workload.Config{
		Name: "err", Threads: 4, Vars: 32, Locks: 2, Events: 2000,
		OpsPerTxn: 3, Pattern: workload.PatternSharded, TxnFraction: 0.5, Seed: 9,
	}
	evs := genEvents(t, cfg)
	wantErr := errors.New("boom")
	v, n, err := Run(core.NewOptimized(), &sliceSource{evs: evs, err: wantErr}, Config{BatchSize: 128})
	if v != nil {
		t.Fatalf("unexpected violation %v", v)
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if n != int64(len(evs)) {
		t.Fatalf("events before the error must still be processed: %d of %d", n, len(evs))
	}
}

// TestRunSuppressesErrorAfterViolation: a parse error positioned after the
// first violation must not surface — the sequential checker would have
// stopped reading before reaching it.
func TestRunSuppressesErrorAfterViolation(t *testing.T) {
	cfg := workload.Config{
		Name: "err-after", Threads: 6, Vars: 64, Locks: 2, Events: 4000,
		OpsPerTxn: 3, Pattern: workload.PatternChain,
		Inject: workload.ViolationCross, InjectAt: 0.2, Seed: 5,
	}
	evs := genEvents(t, cfg)
	v, _, err := Run(core.NewOptimized(), &sliceSource{evs: evs, err: errors.New("late parse error")}, Config{BatchSize: 32})
	if v == nil {
		t.Fatal("want violation")
	}
	if err != nil {
		t.Fatalf("late source error must be suppressed after a violation, got %v", err)
	}
}

// TestRunOverRapidioReaders drives the real producers end to end: STD text
// and binary logs through their respective batch readers.
func TestRunOverRapidioReaders(t *testing.T) {
	cfg := workload.Config{
		Name: "io", Threads: 5, Vars: 64, Locks: 3, Events: 3000,
		OpsPerTxn: 3, Pattern: workload.PatternChain,
		Inject: workload.ViolationDelayed, InjectAt: 0.8, Seed: 13,
	}
	tr := trace.Collect(workload.New(cfg))
	wantV, wantN := seqOutcome(tr.Events, core.AlgoOptimized)

	var std bytes.Buffer
	if err := rapidio.WriteTrace(&std, tr); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw := rapidio.NewBinaryWriter(&bin)
	for _, e := range tr.Events {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		src  BatchSource
	}{
		{"std", rapidio.NewReader(bytes.NewReader(std.Bytes()))},
		{"bin", rapidio.NewBinaryReader(bytes.NewReader(bin.Bytes()))},
	} {
		v, n, err := Run(core.NewOptimized(), tc.src, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if (wantV != nil) != (v != nil) || (wantV != nil && v.Index != wantV.Index) {
			t.Fatalf("%s: violation %v, want %v", tc.name, v, wantV)
		}
		if n != wantN {
			t.Fatalf("%s: processed %d, want %d", tc.name, n, wantN)
		}
	}
}
