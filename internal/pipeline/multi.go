package pipeline

// Multi-analysis dispatch: one parsed event stream fanned out to N
// analyses. The primary atomicity engine keeps its exact single-analysis
// semantics (latch at first violation, stop counting), while additional
// sinks — the happens-before race detector, and eventually other analyses
// riding the same clock substrate — keep consuming until each latches on
// its own. The stream stops as soon as every analysis is done, so the
// single-analysis case (no extra sinks) behaves exactly like before: the
// differential suites at the repository root pin the atomicity verdict of
// a multi-analysis run byte-identical to a single-analysis run.

import (
	"io"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/trace"
)

// Sink is one analysis consuming the shared event stream. Process feeds
// the next event; Done reports that the analysis has latched a verdict and
// no longer needs events. Implementations must tolerate Process calls
// after Done (the batch granularity of the pipeline can overshoot by a few
// events) by ignoring them, exactly like a latched core.Engine.
type Sink interface {
	Process(e trace.Event)
	Done() bool
}

// allDone reports whether every extra sink has latched.
func allDone(sinks []Sink) bool {
	for _, s := range sinks {
		if !s.Done() {
			return false
		}
	}
	return true
}

// RunMulti is Run with additional analysis sinks sharing the parsed
// stream. The primary engine's verdict, violation index and event count
// are identical to Run (and therefore to the sequential checker) on the
// same input; extra sinks see every event from the start of the stream up
// to their own latch point, so their violation indices are global trace
// indices. Parsing stops early only when the engine has latched AND every
// extra sink is done. A parse error is reported only if some analysis was
// still live when it was reached — once all have latched, the rest of the
// stream is discarded unread, mirroring Run's discard-after-violation
// rule.
func RunMulti(eng core.Engine, extra []Sink, src BatchSource, cfg Config) (*core.Violation, int64, error) {
	if len(extra) == 0 {
		return Run(eng, src, cfg)
	}
	cfg = cfg.withDefaults()

	full := make(chan []trace.Event, cfg.Depth)
	free := make(chan []trace.Event, cfg.Depth)
	stop := make(chan struct{})
	for i := 0; i < cfg.Depth; i++ {
		free <- make([]trace.Event, cfg.BatchSize)
	}

	var srcErr error
	go func() {
		defer close(full)
		for {
			var buf []trace.Event
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			var parseStart time.Time
			if cfg.Stats != nil {
				parseStart = time.Now()
			}
			n, err := src.ReadBatch(buf[:cap(buf)])
			if cfg.Stats != nil {
				cfg.Stats.ParseNanos.Add(int64(time.Since(parseStart)))
			}
			if n > 0 {
				select {
				case full <- buf[:n]:
				case <-stop:
					return
				}
			}
			if err != nil {
				if err != io.EOF {
					srcErr = err
				}
				return
			}
		}
	}()

	var viol *core.Violation
	stopped := false
	extrasDone := false
	for evs := range full {
		if viol == nil || !extrasDone {
			var checkStart time.Time
			if cfg.Stats != nil {
				checkStart = time.Now()
			}
			for _, e := range evs {
				if viol == nil {
					viol = eng.Process(e)
				}
				for _, s := range extra {
					if !s.Done() {
						s.Process(e)
					}
				}
				if viol != nil && allDone(extra) {
					break
				}
			}
			if cfg.Stats != nil {
				cfg.Stats.CheckNanos.Add(int64(time.Since(checkStart)))
			}
			extrasDone = allDone(extra)
			if viol != nil && extrasDone && !stopped {
				stopped = true
				close(stop) // unblock the producer; keep draining full
			}
		}
		free <- evs[:cap(evs)]
	}
	if viol != nil && extrasDone {
		// Every analysis latched before the stream ended: any later parse
		// error sits in the discarded tail.
		return viol, eng.Processed(), nil
	}
	if viol == nil {
		viol = eng.Violation()
	}
	return viol, eng.Processed(), srcErr
}
