package pipeline

// Feeder is the resumable counterpart of Run, for STD streams that arrive
// in pieces rather than behind an io.Reader: the aerodromed session API
// feeds each request body as one chunk and reads the verdict back between
// chunks. Parsing reuses the pull pipeline's batching discipline (one
// pooled batch, refilled by whole-buffer sweeps in rapidio) but runs on
// the caller's goroutine — an incremental session is latency-bound, not
// throughput-bound, and a synchronous Feed means the response to a chunk
// already reflects every event in it.

import (
	"io"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
)

// Feeder drives an engine incrementally from byte chunks of a trace log —
// STD text or the compact ADB1 binary format, sniffed from the first bytes
// exactly like the one-shot endpoints. It is observationally identical to
// running the engine over the concatenated chunks with the sequential
// checker: same verdict, same violation index, same event count. In particular, once a violation is
// latched, later chunks are accepted and discarded without parsing — the
// sequential checker would have stopped reading — so a parse error
// positioned after the violation is never reported.
type Feeder struct {
	eng   core.Engine
	extra []Sink // additional analyses sharing the parsed stream
	src   *rapidio.Feeder
	batch []trace.Event
	stats *StageStats
	viol  *core.Violation
	err   error // terminal parse error (never io.EOF)
}

// NewFeeder returns a Feeder over eng. cfg follows the Run defaults;
// only BatchSize and Stats apply (there is no producer goroutine to
// bound).
func NewFeeder(eng core.Engine, cfg Config) *Feeder {
	return NewFeederSinks(eng, nil, cfg)
}

// NewFeederSinks is NewFeeder with additional analysis sinks sharing the
// parsed stream, following the RunMulti contract: the engine's verdict,
// violation index and event count are unaffected by the extra sinks, each
// sink sees every event up to its own latch, and the stream keeps flowing
// (and parse errors keep being reported) until every analysis is done.
func NewFeederSinks(eng core.Engine, extra []Sink, cfg Config) *Feeder {
	cfg = cfg.withDefaults()
	return &Feeder{
		eng:   eng,
		extra: extra,
		src:   rapidio.NewFeeder(),
		batch: make([]trace.Event, cfg.BatchSize),
		stats: cfg.Stats,
	}
}

// done reports that every analysis — the engine and all extra sinks — has
// latched, so the rest of the stream is discardable.
func (f *Feeder) done() bool { return f.viol != nil && allDone(f.extra) }

// Done reports that every analysis has latched: the engine found its
// violation and every extra sink is done, so further chunks are discarded
// without parsing. A serving front end uses this (not Violation alone) to
// decide when a multi-analysis stream has nothing left to learn.
func (f *Feeder) Done() bool { return f.done() }

// Feed appends one chunk of the stream (chunk boundaries need not align
// with line or record boundaries) and processes every event whose line or
// record is now complete. It returns the latched violation, if any, and the terminal
// parse error, if the stream just turned out to be malformed. Feeding
// after either is terminal is a no-op returning the same outcome.
func (f *Feeder) Feed(chunk []byte) (*core.Violation, error) {
	if f.done() || f.err != nil {
		return f.viol, f.err
	}
	f.src.Feed(chunk)
	return f.drain()
}

// drain processes every completed event buffered in the parser, stopping
// at a violation or terminal parse error.
func (f *Feeder) drain() (*core.Violation, error) {
	for {
		var parseStart time.Time
		if f.stats != nil {
			parseStart = time.Now()
		}
		n, err := f.src.ReadBatch(f.batch)
		var checkStart time.Time
		if f.stats != nil {
			checkStart = time.Now()
			f.stats.ParseNanos.Add(int64(checkStart.Sub(parseStart)))
		}
		for _, e := range f.batch[:n] {
			if f.viol == nil {
				f.viol = f.eng.Process(e)
			}
			for _, s := range f.extra {
				if !s.Done() {
					s.Process(e)
				}
			}
			if f.done() {
				if f.stats != nil {
					f.stats.CheckNanos.Add(int64(time.Since(checkStart)))
				}
				// The rest of the stream is discarded by definition; free
				// the unconsumed tail rather than pinning it for the
				// session's remaining lifetime.
				f.src.Discard()
				return f.viol, nil
			}
		}
		if f.stats != nil {
			f.stats.CheckNanos.Add(int64(time.Since(checkStart)))
		}
		if err == io.EOF || (err == nil && n < len(f.batch)) {
			return f.viol, nil
		}
		if err != nil {
			f.err = err
			return f.viol, err
		}
	}
}

// Close marks the end of the stream (a final unterminated line is parsed)
// and returns the verdict: the violation (nil if the stream is accepted),
// the number of events consumed, and the terminal parse error, if any.
// Close is idempotent.
func (f *Feeder) Close() (*core.Violation, int64, error) {
	if !f.done() && f.err == nil {
		f.src.Close()
		f.drain()
	}
	return f.viol, f.eng.Processed(), f.err
}

// Violation returns the latched violation, if any.
func (f *Feeder) Violation() *core.Violation { return f.viol }

// Processed returns the number of events consumed so far.
func (f *Feeder) Processed() int64 { return f.eng.Processed() }

// Err returns the latched terminal parse error, if any.
func (f *Feeder) Err() error { return f.err }

// EngineStats returns the backing engine's introspection counters, when
// the engine reports them (the Algorithm 3 family; ok is false otherwise).
func (f *Feeder) EngineStats() (core.EngineStats, bool) {
	if r, ok := f.eng.(core.StatsReporter); ok {
		return r.Stats(), true
	}
	return core.EngineStats{}, false
}
