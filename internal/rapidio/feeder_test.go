package rapidio

// Feeder tests: the push-mode parser must be chunking-invariant — any way
// of slicing an STD log into Feed calls yields exactly the event sequence
// the pull Reader produces on the same bytes, including the error.

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"aerodrome/internal/trace"
)

// drainFeeder pushes data into f in the given chunk sizes (cycling) and
// collects everything ReadBatch yields, closing at the end.
func drainFeeder(t *testing.T, data []byte, chunkSizes []int) ([]trace.Event, error) {
	t.Helper()
	f := NewFeeder()
	var got []trace.Event
	batch := make([]trace.Event, 7) // deliberately small and odd
	drain := func() error {
		for {
			n, err := f.ReadBatch(batch)
			got = append(got, batch[:n]...)
			if err != nil {
				return err
			}
			if n < len(batch) {
				return nil
			}
		}
	}
	for i, ci := 0, 0; i < len(data); ci++ {
		sz := chunkSizes[ci%len(chunkSizes)]
		if sz > len(data)-i {
			sz = len(data) - i
		}
		f.Feed(data[i : i+sz])
		i += sz
		if err := drain(); err != nil {
			return got, err
		}
	}
	f.Close()
	return got, drain()
}

func readAll(t *testing.T, data []byte) ([]trace.Event, error) {
	t.Helper()
	rd := NewReader(bytes.NewReader(data))
	var got []trace.Event
	for {
		ev, err := rd.Read()
		if err != nil {
			return got, err
		}
		got = append(got, ev)
	}
}

func sameEvents(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFeederMatchesReaderAllChunkings(t *testing.T) {
	logs := map[string]string{
		"clean": "t0|begin|1\nt0|w(x)|2\nt1|r(x)|3\nt0|end|4\n",
		"messy": "# header\n\n t0 | begin | 1 \nt0|fork(t1)|0\nt1|acq(l0)|9\nt1|rel(l0)|9\nt0|join(t1)|0",
		"error": "t0|begin|1\nt0|oops|2\nt0|end|3\n",
	}
	chunkings := [][]int{{1}, {2}, {3}, {5}, {1, 7, 2}, {1 << 10}}
	for name, log := range logs {
		data := []byte(log)
		want, wantErr := readAll(t, data)
		for _, sizes := range chunkings {
			got, gotErr := drainFeeder(t, data, sizes)
			if !sameEvents(got, want) {
				t.Fatalf("%s chunks %v: events %v, want %v", name, sizes, got, want)
			}
			if (wantErr == io.EOF) != (gotErr == io.EOF) {
				t.Fatalf("%s chunks %v: terminal %v, want %v", name, sizes, gotErr, wantErr)
			}
			if pe, ok := wantErr.(*ParseError); ok {
				ge, ok := gotErr.(*ParseError)
				if !ok || ge.Line != pe.Line || ge.Reason != pe.Reason {
					t.Fatalf("%s chunks %v: error %v, want %v", name, sizes, gotErr, wantErr)
				}
			}
		}
	}
}

func TestFeederMatchesReaderRandomChunking(t *testing.T) {
	var sb strings.Builder
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		switch rng.Intn(5) {
		case 0:
			sb.WriteString("t0|begin|0\n")
		case 1:
			sb.WriteString("t0|end|0\n")
		case 2:
			sb.WriteString("t1|w(x12)|44\n")
		case 3:
			sb.WriteString("t2|r(x12)|44\n")
		case 4:
			sb.WriteString("t0|acq(lk)|1\nt0|rel(lk)|1\n")
		}
	}
	data := []byte(sb.String())
	want, _ := readAll(t, data)
	for trial := 0; trial < 20; trial++ {
		sizes := make([]int, 1+rng.Intn(6))
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(97)
		}
		got, err := drainFeeder(t, data, sizes)
		if err != io.EOF {
			t.Fatalf("chunks %v: terminal %v, want io.EOF", sizes, err)
		}
		if !sameEvents(got, want) {
			t.Fatalf("chunks %v: %d events, want %d", sizes, len(got), len(want))
		}
	}
}

func TestFeederLatchesAndBounds(t *testing.T) {
	f := NewFeeder()
	f.Feed([]byte("t0|bogus|\n"))
	batch := make([]trace.Event, 4)
	if _, err := f.ReadBatch(batch); err == nil {
		t.Fatal("want parse error")
	}
	if f.Err() == nil {
		t.Fatal("Err: want latched parse error")
	}
	// Terminal feeder discards further input rather than buffering it.
	f.Feed([]byte("t0|begin|0\n"))
	if f.Buffered() != 0 {
		t.Fatalf("Buffered = %d after terminal feed, want 0", f.Buffered())
	}
	if n, err := f.ReadBatch(batch); n != 0 || err == nil {
		t.Fatalf("ReadBatch after latch = (%d, %v), want (0, latched error)", n, err)
	}

	// A drained healthy feeder retains only the partial line.
	f2 := NewFeeder()
	f2.Feed([]byte("t0|begin|0\nt0|w(x"))
	if n, err := f2.ReadBatch(batch); n != 1 || err != nil {
		t.Fatalf("ReadBatch = (%d, %v), want (1, nil)", n, err)
	}
	f2.Feed([]byte(")|5\n"))
	if got := f2.Buffered(); got != len("t0|w(x)|5\n") {
		t.Fatalf("Buffered = %d, want %d", got, len("t0|w(x)|5\n"))
	}
	if n, err := f2.ReadBatch(batch); n != 1 || err != nil {
		t.Fatalf("ReadBatch = (%d, %v), want (1, nil)", n, err)
	}
	f2.Close()
	if n, err := f2.ReadBatch(batch); n != 0 || err != io.EOF {
		t.Fatalf("ReadBatch after Close = (%d, %v), want (0, io.EOF)", n, err)
	}
	if f2.Err() != nil {
		t.Fatalf("Err after clean EOF = %v, want nil", f2.Err())
	}
}

// TestFeederLineTooLongMatchesReader pins the shared 1 MiB line bound: a
// newline-free stream must latch bufio.ErrTooLong on both the push and
// pull paths (so a server session cannot buffer unboundedly, and the two
// paths stay chunking-equivalent even on pathological input).
func TestFeederLineTooLongMatchesReader(t *testing.T) {
	half := bytes.Repeat([]byte{'x'}, 1<<19)
	batch := make([]trace.Event, 4)

	f := NewFeeder()
	f.Feed(half)
	if n, err := f.ReadBatch(batch); n != 0 || err != nil {
		t.Fatalf("half-line ReadBatch = (%d, %v), want (0, nil)", n, err)
	}
	f.Feed(half)
	if _, err := f.ReadBatch(batch); err != bufio.ErrTooLong {
		t.Fatalf("1 MiB partial line: err %v, want bufio.ErrTooLong", err)
	}
	// The latch is terminal and further feeds are discarded.
	f.Feed([]byte("t0|begin|0\n"))
	if f.Buffered() != 0 {
		t.Fatalf("Buffered = %d after terminal feed, want 0", f.Buffered())
	}

	rd := NewReader(io.MultiReader(bytes.NewReader(half), bytes.NewReader(half)))
	if _, err := rd.Read(); err != bufio.ErrTooLong {
		t.Fatalf("Reader on the same bytes: err %v, want bufio.ErrTooLong", err)
	}

	// The bound applies even when the terminating newline is already
	// buffered: the Reader can never see such a line complete, so the
	// Feeder must reject it too or the verdict would depend on chunking.
	line := append(append([]byte("t0|w("), bytes.Repeat([]byte{'a'}, 1<<20)...), []byte(")|1\n")...)
	f2 := NewFeeder()
	f2.Feed(append([]byte("t0|begin|0\n"), line...))
	if n, err := f2.ReadBatch(batch); n != 1 || err != bufio.ErrTooLong {
		t.Fatalf("huge complete line: (%d, %v), want (1, bufio.ErrTooLong)", n, err)
	}
	rd2 := NewReader(bytes.NewReader(append([]byte("t0|begin|0\n"), line...)))
	if _, err := rd2.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd2.Read(); err != bufio.ErrTooLong {
		t.Fatalf("Reader on huge complete line: err %v, want bufio.ErrTooLong", err)
	}
}

// TestFeederShrinksAfterDrain pins the capacity bound: a drained feeder
// must not keep the backing array of its largest chunk alive for the
// session's remaining lifetime.
func TestFeederShrinksAfterDrain(t *testing.T) {
	f := NewFeeder()
	f.Feed(bytes.Repeat([]byte("t0|begin|0\nt0|end|0\n"), 100_000)) // ~2 MB
	batch := make([]trace.Event, 1024)
	for {
		n, err := f.ReadBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n < len(batch) {
			break
		}
	}
	if f.Buffered() != 0 {
		t.Fatalf("Buffered = %d after drain, want 0", f.Buffered())
	}
	if cap(f.buf) > feederKeepBuf {
		t.Fatalf("backing array still %d bytes after drain, want ≤ %d", cap(f.buf), feederKeepBuf)
	}
}

// noProgressReader returns (0, nil) forever — legal under io.Reader.
type noProgressReader struct{}

func (noProgressReader) Read(p []byte) (int, error) { return 0, nil }

// TestReaderNoProgress pins the bufio-style guard: a source that never
// makes progress errors out instead of spinning the goroutine (on the
// server this would pin a check slot forever and stall the drain).
func TestReaderNoProgress(t *testing.T) {
	rd := NewReader(noProgressReader{})
	if _, err := rd.Read(); err != io.ErrNoProgress {
		t.Fatalf("err %v, want io.ErrNoProgress", err)
	}
}

// dataThenErrReader delivers all its data and a non-EOF error in the same
// Read call — legal under io.Reader, and what a broken network body does.
type dataThenErrReader struct {
	data []byte
	done bool
}

func (r *dataThenErrReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, io.ErrUnexpectedEOF
	}
	r.done = true
	return copy(p, r.data), io.ErrUnexpectedEOF
}

// TestReaderDataWithError pins scanner parity on sources that return data
// and error together: every buffered line (including a final partial one)
// is tokenized before the error surfaces.
func TestReaderDataWithError(t *testing.T) {
	rd := NewReader(&dataThenErrReader{data: []byte("t0|begin|0\nt0|w(x)|1\nt0|end")})
	var events int
	for {
		_, err := rd.Read()
		if err != nil {
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("terminal err %v, want io.ErrUnexpectedEOF", err)
			}
			break
		}
		events++
	}
	if events != 3 {
		t.Fatalf("parsed %d events before the error, want 3 (incl. the partial final line)", events)
	}
	if rd.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("Err() = %v, want io.ErrUnexpectedEOF", rd.Err())
	}
}

// binaryLog renders n pseudo-random events (plus begin/end framing) in the
// compact binary format and returns both encodings, so the push path can be
// pinned against the pull path on identical event sequences.
func binaryLog(t *testing.T, n int, seed int64) (bin []byte, events []trace.Event) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		th := trace.ThreadID(rng.Intn(4))
		switch rng.Intn(4) {
		case 0:
			events = append(events,
				trace.Event{Thread: th, Kind: trace.Begin},
				trace.Event{Thread: th, Kind: trace.Write, Target: int32(rng.Intn(8))},
				trace.Event{Thread: th, Kind: trace.End})
		case 1:
			events = append(events, trace.Event{Thread: th, Kind: trace.Read, Target: int32(rng.Intn(8))})
		case 2:
			events = append(events,
				trace.Event{Thread: th, Kind: trace.Acquire, Target: int32(rng.Intn(2))},
				trace.Event{Thread: th, Kind: trace.Release, Target: int32(rng.Intn(2))})
		case 3:
			events = append(events, trace.Event{Thread: th, Kind: trace.Write, Target: int32(rng.Intn(8))})
		}
	}
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range events {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), events
}

// readAllBinary drains a pull-mode BinaryReader.
func readAllBinary(t *testing.T, data []byte) ([]trace.Event, error) {
	t.Helper()
	br := NewBinaryReader(bytes.NewReader(data))
	var got []trace.Event
	for {
		ev, err := br.Read()
		if err != nil {
			return got, err
		}
		got = append(got, ev)
	}
}

// TestFeederBinaryMatchesBinaryReaderAllChunkings pins the push-mode
// binary splitter to the pull-mode BinaryReader: any chunking of an ADB1
// stream — including splits inside the magic, the header and individual
// records — yields the identical event sequence and terminal error.
func TestFeederBinaryMatchesBinaryReaderAllChunkings(t *testing.T) {
	bin, _ := binaryLog(t, 40, 11)
	// Malformed variants: a bad op kind mid-stream, a truncated record, a
	// truncated header.
	badKind := append([]byte(nil), bin...)
	badKind[16+8*5+2] = 0xEE
	truncRecord := bin[:len(bin)-3]
	truncHeader := bin[:9]
	inputs := map[string][]byte{
		"clean":        bin,
		"bad-kind":     badKind,
		"trunc-record": truncRecord,
		"trunc-header": truncHeader,
		"header-only":  bin[:16],
	}
	chunkings := [][]int{{1}, {2}, {3}, {5}, {7}, {8}, {16}, {1, 7, 2}, {1 << 10}}
	for name, data := range inputs {
		want, wantErr := readAllBinary(t, data)
		for _, sizes := range chunkings {
			got, gotErr := drainFeeder(t, data, sizes)
			if !sameEvents(got, want) {
				t.Fatalf("%s chunks %v: %d events, want %d", name, sizes, len(got), len(want))
			}
			if (wantErr == io.EOF) != (gotErr == io.EOF) {
				t.Fatalf("%s chunks %v: terminal %v, want %v", name, sizes, gotErr, wantErr)
			}
			if wantErr != io.EOF {
				if gotErr == nil || gotErr.Error() != wantErr.Error() {
					t.Fatalf("%s chunks %v: error %q, want %q", name, sizes, gotErr, wantErr)
				}
			}
		}
	}
}

// TestFeederBinaryTruncationEveryBoundary sweeps every possible
// truncation point of an ADB1 stream — mid-header, mid-record, between
// records — and requires the push-mode Feeder (under several chunkings of
// the truncated bytes, including byte-at-a-time) to reproduce the
// pull-mode BinaryReader exactly: same event prefix, same terminal error.
// The older tests only pinned a handful of truncation points; a feed
// arriving over a faulty network can end anywhere.
func TestFeederBinaryTruncationEveryBoundary(t *testing.T) {
	bin, _ := binaryLog(t, 12, 7)
	chunkings := [][]int{{1}, {3}, {8}, {1 << 10}}
	// Cuts shorter than the 4-byte magic are excluded by design: the
	// sniffer cannot yet classify the stream, so the Feeder falls back to
	// STD text (pinned by TestFeederSniffEdgeCases) while a direct
	// BinaryReader assumes binary.
	for cut := 4; cut <= len(bin); cut++ {
		data := bin[:cut]
		want, wantErr := readAllBinary(t, data)
		for _, sizes := range chunkings {
			got, gotErr := drainFeeder(t, data, sizes)
			if !sameEvents(got, want) {
				t.Fatalf("cut %d chunks %v: %d events, want %d", cut, sizes, len(got), len(want))
			}
			if (wantErr == io.EOF) != (gotErr == io.EOF) {
				t.Fatalf("cut %d chunks %v: terminal %v, want %v", cut, sizes, gotErr, wantErr)
			}
			if wantErr != io.EOF {
				if gotErr == nil || gotErr.Error() != wantErr.Error() {
					t.Fatalf("cut %d chunks %v: error %q, want %q", cut, sizes, gotErr, wantErr)
				}
			}
		}
	}
}

func TestFeederBinaryRandomChunking(t *testing.T) {
	bin, want := binaryLog(t, 500, 23)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		sizes := make([]int, 1+rng.Intn(6))
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(97)
		}
		got, err := drainFeeder(t, bin, sizes)
		if err != io.EOF {
			t.Fatalf("chunks %v: terminal %v, want io.EOF", sizes, err)
		}
		if !sameEvents(got, want) {
			t.Fatalf("chunks %v: %d events, want %d", sizes, len(got), len(want))
		}
	}
}

// TestFeederSniffEdgeCases pins the sniffing contract to the pull side's
// 4-byte Peek: an inconclusive head (shorter than the magic) is STD text,
// and the decision never depends on how the first bytes were chunked.
func TestFeederSniffEdgeCases(t *testing.T) {
	batch := make([]trace.Event, 4)

	// A 3-byte stream that is a strict prefix of the magic: the pull
	// sniffers would select the STD parser, which fails on the line "ADB".
	f := NewFeeder()
	f.Feed([]byte("ADB"))
	if n, err := f.ReadBatch(batch); n != 0 || err != nil {
		t.Fatalf("pre-sniff ReadBatch = (%d, %v), want (0, nil)", n, err)
	}
	f.Close()
	if _, err := f.ReadBatch(batch); err == nil || err == io.EOF {
		t.Fatalf("magic-prefix stream: err %v, want STD parse error", err)
	} else if _, ok := err.(*ParseError); !ok {
		t.Fatalf("magic-prefix stream: err %T (%v), want *ParseError", err, err)
	}

	// The magic split 1+3 across feeds still selects binary.
	bin, want := binaryLog(t, 3, 5)
	f2 := NewFeeder()
	f2.Feed(bin[:1])
	if n, err := f2.ReadBatch(batch); n != 0 || err != nil {
		t.Fatalf("split-magic ReadBatch = (%d, %v), want (0, nil)", n, err)
	}
	f2.Feed(bin[1:])
	f2.Close()
	var got []trace.Event
	for {
		n, err := f2.ReadBatch(batch)
		got = append(got, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sameEvents(got, want) {
		t.Fatalf("split-magic: %d events, want %d", len(got), len(want))
	}

	// An empty stream is STD (clean EOF), matching the sniffed pull path.
	f3 := NewFeeder()
	f3.Close()
	if n, err := f3.ReadBatch(batch); n != 0 || err != io.EOF {
		t.Fatalf("empty stream: (%d, %v), want (0, io.EOF)", n, err)
	}
	if f3.Err() != nil {
		t.Fatalf("empty stream Err = %v, want nil", f3.Err())
	}
}

func TestIsBinary(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !IsBinary(buf.Bytes()) {
		t.Fatal("IsBinary(binary header) = false")
	}
	for _, head := range [][]byte{nil, []byte("ADB"), []byte("t0|begin|0\n")} {
		if IsBinary(head) {
			t.Fatalf("IsBinary(%q) = true", head)
		}
	}
}
