package rapidio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// TestReadBatchMatchesRead: batched reading must yield the identical event
// sequence as event-at-a-time reading, across batch sizes that do and do
// not divide the trace, for both formats.
func TestReadBatchMatchesRead(t *testing.T) {
	cfg := workload.Config{
		Name: "batch", Threads: 5, Vars: 64, Locks: 3, Events: 1000,
		OpsPerTxn: 3, Pattern: workload.PatternChain, TxnFraction: 0.5, Seed: 21,
	}
	tr := trace.Collect(workload.New(cfg))
	var std bytes.Buffer
	if err := WriteTrace(&std, tr); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw := NewBinaryWriter(&bin)
	for _, e := range tr.Events {
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	type batcher interface {
		ReadBatch([]trace.Event) (int, error)
		Next() (trace.Event, bool)
		Err() error
	}
	sources := func() map[string][2]batcher {
		return map[string][2]batcher{
			"std": {NewReader(bytes.NewReader(std.Bytes())), NewReader(bytes.NewReader(std.Bytes()))},
			"bin": {NewBinaryReader(bytes.NewReader(bin.Bytes())), NewBinaryReader(bytes.NewReader(bin.Bytes()))},
		}
	}
	for _, size := range []int{1, 7, 256, 5000} {
		for name, pair := range sources() {
			// Reference: the same bytes read event at a time (interning is
			// first-appearance-ordered, so IDs only compare within one
			// reading of one byte stream).
			var want []trace.Event
			for {
				e, ok := pair[1].Next()
				if !ok {
					break
				}
				want = append(want, e)
			}
			if err := pair[1].Err(); err != nil {
				t.Fatal(err)
			}
			var got []trace.Event
			buf := make([]trace.Event, size)
			for {
				n, err := pair[0].ReadBatch(buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%s size %d: %v", name, size, err)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s size %d: %d events, want %d", name, size, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s size %d: event %d = %v, want %v", name, size, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReadBatchPartialThenError: a parse error mid-batch must return the
// events before it alongside the error, and stay sticky afterwards.
func TestReadBatchPartialThenError(t *testing.T) {
	input := "t0|begin|0\nt0|w(x)|0\nGARBAGE\nt0|end|0\n"
	r := NewReader(strings.NewReader(input))
	buf := make([]trace.Event, 16)
	n, err := r.ReadBatch(buf)
	if n != 2 {
		t.Fatalf("n = %d, want 2 events before the bad line", n)
	}
	var perr *ParseError
	if !errors.As(err, &perr) || !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if n2, err2 := r.ReadBatch(buf); n2 != 0 || err2 == nil {
		t.Fatalf("error must be sticky: n=%d err=%v", n2, err2)
	}
}

func TestReadBatchEmptyInput(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	n, err := r.ReadBatch(make([]trace.Event, 8))
	if n != 0 || err != io.EOF {
		t.Fatalf("n=%d err=%v, want 0, io.EOF", n, err)
	}
}
