package rapidio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

func TestParseBasicLog(t *testing.T) {
	log := `
# a comment and a blank line above
t0|fork(t1)|0
t0|begin|12
t0|w(x)|12
t1|acq(L)|7
t1|r(x)|8
t1|rel(L)|9
t0|end|13
t0|join(t1)|14
`
	tr, err := ReadTrace(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	want := []trace.OpKind{trace.Fork, trace.Begin, trace.Write, trace.Acquire,
		trace.Read, trace.Release, trace.End, trace.Join}
	for i, k := range want {
		if tr.Events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, tr.Events[i].Kind, k)
		}
	}
	if tr.ThreadName(0) != "t0" || tr.ThreadName(1) != "t1" {
		t.Fatalf("thread names: %v", tr.ThreadNames)
	}
	if tr.VarName(0) != "x" || tr.LockName(0) != "L" {
		t.Fatalf("symbol names: %v %v", tr.VarNames, tr.LockNames)
	}
	if err := trace.ValidateStrict(tr); err != nil {
		t.Fatalf("parsed trace malformed: %v", err)
	}
}

func TestTwoFieldLines(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("a|begin\na|w(v)\na|end\n"))
	if err != nil || tr.Len() != 3 {
		t.Fatalf("two-field lines: %v, %d", err, tr.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		line string
		want string
	}{
		{"t0", "want thread|op"},
		{"t0|begin|1|2", "want thread|op"},
		{"|begin|0", "empty thread"},
		{"t0|frob(x)|0", "unknown operation"},
		{"t0|w(x|0", "unknown operation"},
		{"t0|w()|0", "empty operand"},
		{"t0|w(x)|abc", "non-numeric location"},
		{"t0|(x)|0", "unknown operation"},
	}
	for _, c := range cases {
		_, err := ReadTrace(strings.NewReader(c.line + "\n"))
		if err == nil {
			t.Errorf("%q: expected error", c.line)
			continue
		}
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%q: error does not wrap ErrFormat: %v", c.line, err)
		}
		var pe *ParseError
		if !errors.As(err, &pe) || pe.Line != 1 {
			t.Errorf("%q: bad ParseError: %v", c.line, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q missing %q", c.line, err, c.want)
		}
	}
}

func TestReaderLatchesError(t *testing.T) {
	r := NewReader(strings.NewReader("bogus\nt0|begin|0\n"))
	_, err1 := r.Read()
	_, err2 := r.Read()
	if err1 == nil || err1 != err2 {
		t.Fatalf("reader must latch: %v vs %v", err1, err2)
	}
	if r.Err() == nil {
		t.Fatalf("Err must expose the latched error")
	}
}

func TestReaderErrNilAfterEOF(t *testing.T) {
	r := NewReader(strings.NewReader("t0|begin|0\nt0|end|0\n"))
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF must give nil Err, got %v", r.Err())
	}
}

func TestRoundTripSTD(t *testing.T) {
	for _, tr := range []*trace.Trace{
		testutil.Rho1(), testutil.Rho2(), testutil.Rho3(), testutil.Rho4(),
	} {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("ReadTrace: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip length %d != %d", back.Len(), tr.Len())
		}
		for i := range tr.Events {
			if tr.Events[i] != back.Events[i] {
				t.Fatalf("event %d: %v != %v", i, tr.Events[i], back.Events[i])
			}
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(5), Vars: 1 + r.Intn(4), Locks: 1 + r.Intn(3),
			Steps: 10 + r.Intn(100), TxnBias: 3,
		})
		// Reading interns IDs in first-appearance order, which may renumber
		// them relative to the builder; the round-trip invariant is that the
		// canonical serialization is a fixed point.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadTrace: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("length mismatch")
		}
		var buf2 bytes.Buffer
		if err := WriteTrace(&buf2, back); err != nil {
			t.Fatalf("WriteTrace(back): %v", err)
		}
		back2, err := ReadTrace(bytes.NewReader(buf2.Bytes()))
		if err != nil {
			t.Fatalf("ReadTrace(back2): %v", err)
		}
		for j := range back.Events {
			if back.Events[j] != back2.Events[j] {
				t.Fatalf("event %d not a fixed point: %v vs %v", j, back.Events[j], back2.Events[j])
			}
		}
		// Renumbering must preserve well-formedness and the event kinds.
		if err := trace.ValidateStrict(back); err != nil {
			t.Fatalf("round-tripped trace malformed: %v", err)
		}
		for j := range tr.Events {
			if tr.Events[j].Kind != back.Events[j].Kind {
				t.Fatalf("event %d kind changed", j)
			}
		}
	}
}

func TestWriteSource(t *testing.T) {
	tr := testutil.Rho1()
	var buf bytes.Buffer
	n, err := WriteSource(&buf, tr.Cursor())
	if err != nil || n != int64(tr.Len()) {
		t.Fatalf("WriteSource = (%d, %v)", n, err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || back.Len() != tr.Len() {
		t.Fatalf("round trip via source failed: %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := testutil.Rho4()
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for _, e := range tr.Events {
		if err := bw.Write(e); err != nil {
			t.Fatalf("binary write: %v", err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if buf.Len() != 16+8*tr.Len() {
		t.Fatalf("binary size = %d, want %d", buf.Len(), 16+8*tr.Len())
	}
	br := NewBinaryReader(&buf)
	for i := range tr.Events {
		e, err := br.Read()
		if err != nil {
			t.Fatalf("binary read %d: %v", i, err)
		}
		if e != tr.Events[i] {
			t.Fatalf("event %d: %v != %v", i, e, tr.Events[i])
		}
	}
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if br.Err() != nil {
		t.Fatalf("clean EOF must give nil Err")
	}
}

func TestBinaryEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if buf.Len() != 16 {
		t.Fatalf("empty log should still carry the header")
	}
	br := NewBinaryReader(&buf)
	if _, err := br.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryErrors(t *testing.T) {
	// Bad magic.
	br := NewBinaryReader(strings.NewReader("XXXXYYYYZZZZWWWW"))
	if _, err := br.Read(); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	// Short header.
	br = NewBinaryReader(strings.NewReader("ADB1"))
	if _, err := br.Read(); !errors.Is(err, ErrFormat) {
		t.Fatalf("short header: %v", err)
	}
	// Truncated record.
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	bw.Write(trace.Event{Thread: 0, Kind: trace.Begin})
	bw.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	br = NewBinaryReader(bytes.NewReader(trunc))
	if _, err := br.Read(); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated record: %v", err)
	}
	// Bad op kind.
	buf.Reset()
	bw = NewBinaryWriter(&buf)
	bw.Write(trace.Event{Thread: 0, Kind: trace.Begin})
	bw.Flush()
	raw := buf.Bytes()
	raw[16+2] = 99
	br = NewBinaryReader(bytes.NewReader(raw))
	if _, err := br.Read(); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad kind: %v", err)
	}
	// Next() returns false on errors.
	br = NewBinaryReader(strings.NewReader("XXXX"))
	if _, ok := br.Next(); ok {
		t.Fatalf("Next on bad stream must fail")
	}
}
