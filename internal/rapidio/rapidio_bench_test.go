package rapidio

// Parser benchmarks: trace ingest speed is tracked alongside engine speed
// (a checker that outruns its parser is bounded by the parser). The STD
// benchmark exercises the in-place tokenizer; with all names interned
// after the first pass over the stream, steady-state parsing performs no
// per-line allocations.

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// benchSTD renders a representative workload trace once, as STD text.
func benchSTD(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	src := workload.New(workload.Config{
		Name: "parse-bench", Threads: 8, Vars: 512, Locks: 8,
		Events: 50_000, OpsPerTxn: 4, Pattern: workload.PatternChain,
		Inject: workload.ViolationNone, Seed: 42,
	})
	if _, err := WriteSource(&buf, src); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkParseSTD(b *testing.B) {
	data := benchSTD(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		rd := NewReader(bytes.NewReader(data))
		for {
			_, err := rd.Read()
			if err != nil {
				break
			}
			events++
		}
		if err := rd.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

// BenchmarkParseSTDBatch is the batch-path twin of BenchmarkParseSTD: the
// producer side of the pipelined checker and the server's /v1/check path
// pull events through ReadBatch, so this row gates the whole-buffer
// tokenization fast path (scan the fill buffer with bytes.IndexByte
// instead of a scanner round trip per line).
func BenchmarkParseSTDBatch(b *testing.B) {
	data := benchSTD(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	batch := make([]trace.Event, 4096)
	for i := 0; i < b.N; i++ {
		rd := NewReader(bytes.NewReader(data))
		for {
			n, err := rd.ReadBatch(batch)
			events += int64(n)
			if err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

func BenchmarkParseBinary(b *testing.B) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	src := workload.New(workload.Config{
		Name: "parse-bench", Threads: 8, Vars: 512, Locks: 8,
		Events: 50_000, OpsPerTxn: 4, Pattern: workload.PatternChain,
		Inject: workload.ViolationNone, Seed: 42,
	})
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if err := bw.Write(ev); err != nil {
			b.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := NewBinaryReader(bytes.NewReader(data))
		for {
			if _, err := br.Read(); err != nil {
				break
			}
		}
		if err := br.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParseSteadyStateAllocs pins the zero-allocation property of the
// tokenizer: once every name has been interned, re-reading the same
// stream must not allocate per line.
func TestParseSteadyStateAllocs(t *testing.T) {
	data := strings.Repeat("t0|begin|0\nt0|w(x1)|3\nt0|r(x1)|4\nt0|end|0\n", 500)
	allocs := testing.AllocsPerRun(10, func() {
		rd := NewReader(strings.NewReader(data))
		for {
			if _, err := rd.Read(); err != nil {
				break
			}
		}
	})
	// Budget: the reader itself, its maps, the scanner buffer and the
	// first interning of each name — but nothing proportional to the
	// 2000 lines.
	if allocs > 40 {
		t.Fatalf("parsing allocated %v times for a 2000-line stream; want O(1)", allocs)
	}
}
