// Package rapidio reads and writes trace logs in the STD text format used
// by the RAPID tool (the paper's implementation vehicle), plus a compact
// binary format for large logs.
//
// The STD format is one event per line:
//
//	<thread>|<op>|<location>
//
// where <thread> is a thread name (conventionally t0, t1, …), <op> is one
// of r(x), w(x), acq(ℓ), rel(ℓ), fork(t), join(t), begin, end, and
// <location> is an optional integer source-location tag, ignored by the
// checkers but preserved on round trips. Example:
//
//	t0|fork(t1)|0
//	t0|begin|12
//	t0|w(x3)|12
//	t1|acq(l0)|7
//
// Thread, variable and lock names are interned in first-appearance order,
// matching the dense IDs the checkers use.
//
// The binary format ("ADB1") is a 16-byte header followed by fixed 8-byte
// little-endian records (thread uint16, kind uint8, pad uint8, target
// int32), suitable for multi-gigabyte logs.
package rapidio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"aerodrome/internal/trace"
)

// ErrFormat wraps all parse errors.
var ErrFormat = errors.New("rapidio: bad trace format")

// ParseError reports a malformed input line.
type ParseError struct {
	Line   int
	Text   string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rapidio: line %d %q: %s", e.Line, e.Text, e.Reason)
}

// Unwrap lets errors.Is(err, ErrFormat) succeed.
func (e *ParseError) Unwrap() error { return ErrFormat }

// parser holds the line-level STD tokenizer state shared by the pull-mode
// Reader and the push-mode Feeder: the intern tables and the running line
// number for error reporting.
type parser struct {
	line    int
	threads map[string]trace.ThreadID
	vars    map[string]trace.VarID
	locks   map[string]trace.LockID

	threadNames []string
	varNames    []string
	lockNames   []string
}

func newParser() parser {
	return parser{
		threads: map[string]trace.ThreadID{},
		vars:    map[string]trace.VarID{},
		locks:   map[string]trace.LockID{},
	}
}

// Names returns the interned symbol tables accumulated so far.
func (p *parser) Names() (threads, vars, locks []string) {
	return p.threadNames, p.varNames, p.lockNames
}

const (
	// readerBufSize is the initial fill-buffer size (matches the old
	// bufio.Scanner configuration).
	readerBufSize = 64 * 1024
	// maxLineSize bounds a single line; longer lines fail with
	// bufio.ErrTooLong, as the scanner-based reader did. The push-mode
	// Feeder enforces the same bound, so a newline-free stream cannot
	// buffer unboundedly in a server session.
	maxLineSize = 1 << 20
	// maxConsecutiveEmptyReads mirrors bufio's tolerance for sources
	// that return (0, nil) before failing with io.ErrNoProgress.
	maxConsecutiveEmptyReads = 100
)

// Reader streams events from an STD-format log. It implements trace.Source
// by stopping the stream at the first error (recorded for Err); use Read
// for error-returning iteration. Lines may be up to 1 MiB.
//
// The reader manages its own fill buffer rather than delegating to
// bufio.Scanner: ReadBatch tokenizes every complete line already buffered
// with a bytes.IndexByte sweep over the whole window — the hot path of the
// pipelined checker and the aerodromed /v1/check endpoint — instead of a
// scanner round trip per line.
type Reader struct {
	parser
	src io.Reader
	buf []byte
	pos int // buf[pos:end] is the unconsumed window
	end int
	// finalErr is the error that ended the source (io.EOF or a read
	// error). Like bufio.Scanner, everything buffered before it —
	// including a final line without a newline — is still tokenized
	// before the error surfaces.
	finalErr   error
	emptyReads int
	err        error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		parser: newParser(),
		src:    r,
		buf:    make([]byte, readerBufSize),
	}
}

// nextLine returns the next raw line (newline stripped) from the fill
// buffer, touching the underlying reader only when the buffered window
// holds no complete line. The returned slice aliases the buffer and is
// valid until the next call.
func (r *Reader) nextLine() ([]byte, error) {
	for {
		if i := bytes.IndexByte(r.buf[r.pos:r.end], '\n'); i >= 0 {
			line := r.buf[r.pos : r.pos+i]
			r.pos += i + 1
			return line, nil
		}
		if r.finalErr != nil {
			if r.pos == r.end {
				return nil, r.finalErr
			}
			line := r.buf[r.pos:r.end] // final line without trailing newline
			r.pos = r.end
			return line, nil
		}
		// No newline buffered: slide the partial line to the front, grow if
		// it fills the buffer, and refill.
		if r.pos > 0 {
			r.end = copy(r.buf, r.buf[r.pos:r.end])
			r.pos = 0
		}
		if r.end == len(r.buf) {
			if len(r.buf) >= maxLineSize {
				return nil, bufio.ErrTooLong
			}
			next := 2 * len(r.buf)
			if next > maxLineSize {
				next = maxLineSize
			}
			grown := make([]byte, next)
			r.end = copy(grown, r.buf[:r.end])
			r.buf = grown
		}
		n, err := r.src.Read(r.buf[r.end:])
		r.end += n
		if err != nil {
			// Don't return yet: a source may deliver data and its error in
			// one call, and the buffered lines must be tokenized first.
			r.finalErr = err
			r.emptyReads = 0
		} else if n == 0 {
			// Mirror bufio.Scanner's guard: a source that keeps returning
			// (0, nil) — legal under io.Reader — must error, not spin.
			r.emptyReads++
			if r.emptyReads >= maxConsecutiveEmptyReads {
				r.finalErr = io.ErrNoProgress
			}
		} else {
			r.emptyReads = 0
		}
	}
}

// Read returns the next event, io.EOF at the end of input, or a
// *ParseError for malformed lines. Parsing tokenizes in place over the
// fill buffer: the only per-line allocations are the first interning of
// each thread/variable/lock name (and error paths).
func (r *Reader) Read() (trace.Event, error) {
	if r.err != nil {
		return trace.Event{}, r.err
	}
	for {
		raw, err := r.nextLine()
		if err != nil {
			r.err = err
			return trace.Event{}, err
		}
		r.line++
		line := bytes.TrimSpace(raw)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ev, perr := r.parseLine(line)
		if perr != nil {
			r.err = perr
			return trace.Event{}, perr
		}
		return ev, nil
	}
}

// Next implements trace.Source: it stops the stream at the first error and
// records it for Err.
func (r *Reader) Next() (trace.Event, bool) {
	ev, err := r.Read()
	if err != nil {
		return trace.Event{}, false
	}
	return ev, true
}

// ReadBatch fills dst with up to len(dst) events and returns how many were
// filled plus the terminal error, if the stream ended inside this batch
// (io.EOF for a clean end, a *ParseError or scanner error otherwise). A
// non-nil error means no further events will ever come; n may still be
// positive alongside it. This is the producer side of the pipelined
// checker: one call tokenizes every complete line already in the fill
// buffer in a single sweep, refilling through the general path only when
// the window runs dry.
func (r *Reader) ReadBatch(dst []trace.Event) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := 0
	for n < len(dst) {
		// Whole-buffer fast path: consume complete lines straight out of
		// the window, deferring all buffer management to the slow path.
		win := r.buf[r.pos:r.end]
		base := 0
		for n < len(dst) {
			i := bytes.IndexByte(win[base:], '\n')
			if i < 0 {
				break
			}
			raw := win[base : base+i]
			base += i + 1
			r.line++
			line := bytes.TrimSpace(raw)
			if len(line) == 0 || line[0] == '#' {
				continue
			}
			ev, perr := r.parseLine(line)
			if perr != nil {
				r.pos += base
				r.err = perr
				return n, perr
			}
			dst[n] = ev
			n++
		}
		r.pos += base
		if n == len(dst) {
			break
		}
		// Window dry: one event through the refilling path, then resume
		// the buffer sweep.
		ev, err := r.Read()
		if err != nil {
			return n, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// readBatch is the shared fill-until-error loop behind the binary reader's
// ReadBatch (the STD Reader overrides it with the buffer-sweep fast path).
func readBatch(read func() (trace.Event, error), dst []trace.Event) (int, error) {
	n := 0
	for n < len(dst) {
		ev, err := read()
		if err != nil {
			return n, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// Err returns the terminal error of the stream, if any (nil after a clean
// EOF).
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

// parseLine parses one trimmed, non-empty line. The []byte slices index
// into the caller's fill buffer and must not be retained; the intern
// tables copy names only on first sight (map lookups with string(bytes)
// keys do not allocate).
func (r *parser) parseLine(line []byte) (trace.Event, error) {
	fail := func(reason string) (trace.Event, error) {
		return trace.Event{}, &ParseError{Line: r.line, Text: string(line), Reason: reason}
	}
	sep1 := bytes.IndexByte(line, '|')
	if sep1 < 0 {
		return fail("want thread|op or thread|op|loc")
	}
	rest := line[sep1+1:]
	op := rest
	if sep2 := bytes.IndexByte(rest, '|'); sep2 >= 0 {
		op = bytes.TrimSpace(rest[:sep2])
		loc := bytes.TrimSpace(rest[sep2+1:])
		if bytes.IndexByte(loc, '|') >= 0 {
			return fail("want thread|op or thread|op|loc")
		}
		// The location is validated but otherwise ignored.
		for _, c := range loc {
			if c < '0' || c > '9' {
				return fail("non-numeric location")
			}
		}
	} else {
		op = bytes.TrimSpace(op)
	}
	tname := bytes.TrimSpace(line[:sep1])
	if len(tname) == 0 {
		return fail("empty thread name")
	}
	t := r.internThread(tname)

	if string(op) == "begin" {
		return trace.Event{Thread: t, Kind: trace.Begin}, nil
	}
	if string(op) == "end" {
		return trace.Event{Thread: t, Kind: trace.End}, nil
	}
	open := bytes.IndexByte(op, '(')
	if open < 1 || op[len(op)-1] != ')' {
		return fail("unknown operation " + string(op))
	}
	name := op[:open]
	arg := op[open+1 : len(op)-1]
	if len(arg) == 0 {
		return fail("empty operand")
	}
	switch string(name) {
	case "r":
		return trace.Event{Thread: t, Kind: trace.Read, Target: int32(r.internVar(arg))}, nil
	case "w":
		return trace.Event{Thread: t, Kind: trace.Write, Target: int32(r.internVar(arg))}, nil
	case "acq":
		return trace.Event{Thread: t, Kind: trace.Acquire, Target: int32(r.internLock(arg))}, nil
	case "rel":
		return trace.Event{Thread: t, Kind: trace.Release, Target: int32(r.internLock(arg))}, nil
	case "fork":
		return trace.Event{Thread: t, Kind: trace.Fork, Target: int32(r.internThread(arg))}, nil
	case "join":
		return trace.Event{Thread: t, Kind: trace.Join, Target: int32(r.internThread(arg))}, nil
	}
	return fail("unknown operation " + string(name))
}

func (r *parser) internThread(name []byte) trace.ThreadID {
	if id, ok := r.threads[string(name)]; ok {
		return id
	}
	id := trace.ThreadID(len(r.threads))
	s := string(name)
	r.threads[s] = id
	r.threadNames = append(r.threadNames, s)
	return id
}

func (r *parser) internVar(name []byte) trace.VarID {
	if id, ok := r.vars[string(name)]; ok {
		return id
	}
	id := trace.VarID(len(r.vars))
	s := string(name)
	r.vars[s] = id
	r.varNames = append(r.varNames, s)
	return id
}

func (r *parser) internLock(name []byte) trace.LockID {
	if id, ok := r.locks[string(name)]; ok {
		return id
	}
	id := trace.LockID(len(r.locks))
	s := string(name)
	r.locks[s] = id
	r.lockNames = append(r.lockNames, s)
	return id
}

// feedMode is the wire format a Feeder has sniffed from its first bytes.
type feedMode uint8

const (
	// feedSniff: not enough bytes fed yet to decide the format.
	feedSniff feedMode = iota
	// feedSTD: RAPID STD text, one event per line.
	feedSTD
	// feedBinary: the compact ADB1 format, fixed 8-byte records.
	feedBinary
)

// Feeder is the push-mode twin of Reader and BinaryReader, for event
// streams that arrive in pieces (the aerodromed incremental session API):
// the caller Feeds raw byte chunks as they come off the wire — chunk
// boundaries need not align with line or record boundaries — and drains
// the events completed so far with ReadBatch. The format is sniffed from
// the first four bytes exactly like the /v1/check endpoint (the ADB1
// magic selects the binary record splitter, anything else the STD
// tokenizer), so the verdict never depends on how the stream was chunked.
// Close marks the end of the stream, making a final unterminated STD line
// parseable.
type Feeder struct {
	parser
	buf    []byte
	pos    int // buf[pos:] is unconsumed
	closed bool
	err    error
	mode   feedMode
	// binHeader records that the 16-byte binary header has been consumed.
	binHeader bool
}

// NewFeeder returns an empty Feeder.
func NewFeeder() *Feeder {
	return &Feeder{parser: newParser()}
}

// Feed appends chunk to the parse buffer (copying it; the caller may reuse
// chunk). Events become available to ReadBatch once their terminating
// newline has been fed. Feeding after Close or after a parse error is a
// no-op: the stream is already terminal.
func (f *Feeder) Feed(chunk []byte) {
	if f.closed || f.err != nil {
		return
	}
	if f.pos > 0 {
		// Compact the consumed prefix before appending; after a drain the
		// pending tail is at most one partial line.
		f.buf = append(f.buf[:0], f.buf[f.pos:]...)
		f.pos = 0
	}
	f.buf = append(f.buf, chunk...)
}

// Close marks the end of the stream: a trailing line without a newline
// becomes available to ReadBatch, after which ReadBatch returns io.EOF.
func (f *Feeder) Close() {
	f.closed = true
}

// Discard drops any buffered input and stops accepting more: the caller
// has decided the rest of the stream is irrelevant (a violation latched
// mid-chunk) and the tail must not stay pinned in memory.
func (f *Feeder) Discard() {
	f.closed = true
	f.buf, f.pos = nil, 0
}

// Buffered returns the number of fed bytes not yet consumed by ReadBatch
// (at most one partial line once the feeder has been drained; zero once
// the stream is terminal).
func (f *Feeder) Buffered() int { return len(f.buf) - f.pos }

// latch records the terminal error and releases the parse buffer — a
// terminal feeder (a failed or finished server session) must not pin its
// last chunk in memory.
func (f *Feeder) latch(err error) error {
	f.err = err
	f.buf, f.pos = nil, 0
	return err
}

// feederKeepBuf is the backing-array size a drained Feeder may keep.
const feederKeepBuf = 64 * 1024

// shrink releases an oversized backing array once the pending tail is
// small again: an idle session that once fed a huge chunk must not pin
// that chunk's capacity until eviction.
func (f *Feeder) shrink() {
	if cap(f.buf) > feederKeepBuf && len(f.buf)-f.pos <= feederKeepBuf/4 {
		f.buf = append(make([]byte, 0, feederKeepBuf), f.buf[f.pos:]...)
		f.pos = 0
	}
}

// ReadBatch fills dst with events whose lines (or binary records) are
// complete and returns how many were filled. Unlike Reader.ReadBatch,
// n < len(dst) with a nil error does not end the stream — it means every
// complete buffered unit has been consumed and the caller should Feed more
// bytes. The terminal errors are io.EOF (after Close, once the buffer is
// drained), *ParseError, and the BinaryReader format errors, all latched.
func (f *Feeder) ReadBatch(dst []trace.Event) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	if f.mode == feedSniff {
		if len(f.buf)-f.pos >= len(binMagic) {
			if IsBinary(f.buf[f.pos:]) {
				f.mode = feedBinary
			} else {
				f.mode = feedSTD
			}
		} else if f.closed {
			// Fewer than four bytes will ever arrive. The pull-side sniffers
			// Peek(4) and get an inconclusive head, which IsBinary rejects,
			// so the stream is treated as STD text; match them.
			f.mode = feedSTD
		} else {
			return 0, nil // need more input to sniff
		}
	}
	if f.mode == feedBinary {
		return f.readBatchBinary(dst)
	}
	n := 0
	for n < len(dst) {
		win := f.buf[f.pos:]
		var raw []byte
		if i := bytes.IndexByte(win, '\n'); i >= 0 {
			raw = win[:i]
			f.pos += i + 1
		} else if !f.closed {
			if len(win) >= maxLineSize {
				// Same bound (and error) as Reader: a line this long can
				// never complete, and an unbounded partial line would let
				// one newline-free session buffer without limit.
				return n, f.latch(bufio.ErrTooLong)
			}
			f.shrink()
			return n, nil // need more input
		} else if len(win) > 0 {
			raw = win // final line without trailing newline
			f.pos = len(f.buf)
		} else {
			return n, f.latch(io.EOF)
		}
		if len(raw) >= maxLineSize {
			// Reader errors on any line this long (its fill buffer caps at
			// maxLineSize before the newline could arrive); the push path
			// must agree even when the newline is already buffered, or the
			// verdict would depend on chunk boundaries.
			return n, f.latch(bufio.ErrTooLong)
		}
		f.line++
		line := bytes.TrimSpace(raw)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ev, perr := f.parseLine(line)
		if perr != nil {
			return n, f.latch(perr)
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// readBatchBinary is ReadBatch for a stream sniffed as the ADB1 binary
// format: consume the 16-byte header once, then fixed 8-byte records. The
// decode and every error (short header, bad op kind, truncated record) are
// BinaryReader's, so a binary session is byte-identical to CheckBinaryReader
// over the concatenated chunks regardless of chunk boundaries.
func (f *Feeder) readBatchBinary(dst []trace.Event) (int, error) {
	if !f.binHeader {
		if len(f.buf)-f.pos < 16 {
			if f.closed {
				return 0, f.latch(fmt.Errorf("rapidio: short binary header: %w", ErrFormat))
			}
			f.shrink()
			return 0, nil // need more input
		}
		// The magic was verified by the sniff; the other 12 header bytes are
		// reserved and skipped, as in BinaryReader.
		f.pos += 16
		f.binHeader = true
	}
	n := 0
	for n < len(dst) {
		win := f.buf[f.pos:]
		if len(win) < 8 {
			if !f.closed {
				f.shrink()
				return n, nil // need more input
			}
			if len(win) == 0 {
				return n, f.latch(io.EOF)
			}
			return n, f.latch(fmt.Errorf("rapidio: truncated record: %w", ErrFormat))
		}
		kind := trace.OpKind(win[2])
		if kind > trace.Join {
			return n, f.latch(fmt.Errorf("rapidio: bad op kind %d: %w", win[2], ErrFormat))
		}
		dst[n] = trace.Event{
			Thread: trace.ThreadID(binary.LittleEndian.Uint16(win[0:2])),
			Kind:   kind,
			Target: int32(binary.LittleEndian.Uint32(win[4:8])),
		}
		f.pos += 8
		n++
	}
	return n, nil
}

// Err returns the terminal error of the stream, if any (nil after a clean
// EOF).
func (f *Feeder) Err() error {
	if f.err == io.EOF {
		return nil
	}
	return f.err
}

// ReadTrace materializes a whole STD log.
func ReadTrace(r io.Reader) (*trace.Trace, error) {
	rd := NewReader(r)
	tr := &trace.Trace{}
	for {
		ev, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Append(ev)
	}
	tr.ThreadNames, tr.VarNames, tr.LockNames = rd.Names()
	return tr, nil
}

// Writer emits events in the STD format.
type Writer struct {
	w  *bufio.Writer
	tr *trace.Trace // optional name source
}

// NewWriter returns a Writer. When names is non-nil its symbol tables are
// used for display names; otherwise names are synthesized (t0, x1, l2).
func NewWriter(w io.Writer, names *trace.Trace) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), tr: names}
}

// Write emits one event.
func (wr *Writer) Write(e trace.Event) error {
	var err error
	tn := wr.threadName(e.Thread)
	switch e.Kind {
	case trace.Begin:
		_, err = fmt.Fprintf(wr.w, "%s|begin|0\n", tn)
	case trace.End:
		_, err = fmt.Fprintf(wr.w, "%s|end|0\n", tn)
	case trace.Read:
		_, err = fmt.Fprintf(wr.w, "%s|r(%s)|0\n", tn, wr.varName(e.Var()))
	case trace.Write:
		_, err = fmt.Fprintf(wr.w, "%s|w(%s)|0\n", tn, wr.varName(e.Var()))
	case trace.Acquire:
		_, err = fmt.Fprintf(wr.w, "%s|acq(%s)|0\n", tn, wr.lockName(e.Lock()))
	case trace.Release:
		_, err = fmt.Fprintf(wr.w, "%s|rel(%s)|0\n", tn, wr.lockName(e.Lock()))
	case trace.Fork:
		_, err = fmt.Fprintf(wr.w, "%s|fork(%s)|0\n", tn, wr.threadName(e.Other()))
	case trace.Join:
		_, err = fmt.Fprintf(wr.w, "%s|join(%s)|0\n", tn, wr.threadName(e.Other()))
	default:
		err = fmt.Errorf("rapidio: unknown event kind %d", e.Kind)
	}
	return err
}

// Flush flushes buffered output.
func (wr *Writer) Flush() error { return wr.w.Flush() }

func (wr *Writer) threadName(t trace.ThreadID) string {
	if wr.tr != nil {
		return wr.tr.ThreadName(t)
	}
	return fmt.Sprintf("t%d", t)
}

func (wr *Writer) varName(x trace.VarID) string {
	if wr.tr != nil {
		return wr.tr.VarName(x)
	}
	return fmt.Sprintf("x%d", x)
}

func (wr *Writer) lockName(l trace.LockID) string {
	if wr.tr != nil {
		return wr.tr.LockName(l)
	}
	return fmt.Sprintf("l%d", l)
}

// WriteTrace writes tr as an STD log.
func WriteTrace(w io.Writer, tr *trace.Trace) error {
	wr := NewWriter(w, tr)
	for _, e := range tr.Events {
		if err := wr.Write(e); err != nil {
			return err
		}
	}
	return wr.Flush()
}

// WriteSource drains a Source into an STD log.
func WriteSource(w io.Writer, src trace.Source) (int64, error) {
	wr := NewWriter(w, nil)
	var n int64
	for {
		e, ok := src.Next()
		if !ok {
			return n, wr.Flush()
		}
		if err := wr.Write(e); err != nil {
			return n, err
		}
		n++
	}
}

// --- binary format -----------------------------------------------------------

var binMagic = [4]byte{'A', 'D', 'B', '1'}

// IsBinary reports whether head (the first bytes of a trace stream, at
// least 4 to be conclusive) carries the binary-format magic. Format
// sniffers — CheckFilesParallel, the aerodromed /v1/check endpoint — share
// this so the magic lives in one place.
func IsBinary(head []byte) bool {
	return len(head) >= len(binMagic) && [4]byte(head[:4]) == binMagic
}

// BinaryWriter emits the compact binary format.
type BinaryWriter struct {
	w      *bufio.Writer
	wrote  bool
	record [8]byte
}

// NewBinaryWriter returns a BinaryWriter over w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one event record, writing the header first if needed.
func (bw *BinaryWriter) Write(e trace.Event) error {
	if !bw.wrote {
		bw.wrote = true
		var hdr [16]byte
		copy(hdr[:4], binMagic[:])
		if _, err := bw.w.Write(hdr[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint16(bw.record[0:2], uint16(e.Thread))
	bw.record[2] = byte(e.Kind)
	bw.record[3] = 0
	binary.LittleEndian.PutUint32(bw.record[4:8], uint32(e.Target))
	_, err := bw.w.Write(bw.record[:])
	return err
}

// Flush flushes buffered output (writing the header even for empty logs).
func (bw *BinaryWriter) Flush() error {
	if !bw.wrote {
		bw.wrote = true
		var hdr [16]byte
		copy(hdr[:4], binMagic[:])
		if _, err := bw.w.Write(hdr[:]); err != nil {
			return err
		}
	}
	return bw.w.Flush()
}

// BinaryReader streams the compact binary format.
type BinaryReader struct {
	r      *bufio.Reader
	header bool
	err    error
	record [8]byte // scratch: io.ReadFull would heap-allocate a local
}

// NewBinaryReader returns a BinaryReader over r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next event or io.EOF.
func (br *BinaryReader) Read() (trace.Event, error) {
	if br.err != nil {
		return trace.Event{}, br.err
	}
	if !br.header {
		var hdr [16]byte
		if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
			br.err = fmt.Errorf("rapidio: short binary header: %w", ErrFormat)
			return trace.Event{}, br.err
		}
		if [4]byte(hdr[:4]) != binMagic {
			br.err = fmt.Errorf("rapidio: bad magic %q: %w", hdr[:4], ErrFormat)
			return trace.Event{}, br.err
		}
		br.header = true
	}
	rec := &br.record
	if _, err := io.ReadFull(br.r, rec[:]); err != nil {
		if err == io.EOF {
			br.err = io.EOF
			return trace.Event{}, io.EOF
		}
		br.err = fmt.Errorf("rapidio: truncated record: %w", ErrFormat)
		return trace.Event{}, br.err
	}
	kind := trace.OpKind(rec[2])
	if kind > trace.Join {
		br.err = fmt.Errorf("rapidio: bad op kind %d: %w", rec[2], ErrFormat)
		return trace.Event{}, br.err
	}
	return trace.Event{
		Thread: trace.ThreadID(binary.LittleEndian.Uint16(rec[0:2])),
		Kind:   kind,
		Target: int32(binary.LittleEndian.Uint32(rec[4:8])),
	}, nil
}

// Next implements trace.Source.
func (br *BinaryReader) Next() (trace.Event, bool) {
	ev, err := br.Read()
	if err != nil {
		return trace.Event{}, false
	}
	return ev, true
}

// ReadBatch fills dst with up to len(dst) events; see Reader.ReadBatch for
// the contract.
func (br *BinaryReader) ReadBatch(dst []trace.Event) (int, error) {
	return readBatch(br.Read, dst)
}

// Err returns the terminal error of the stream (nil after clean EOF).
func (br *BinaryReader) Err() error {
	if br.err == io.EOF {
		return nil
	}
	return br.err
}
