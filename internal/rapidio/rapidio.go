// Package rapidio reads and writes trace logs in the STD text format used
// by the RAPID tool (the paper's implementation vehicle), plus a compact
// binary format for large logs.
//
// The STD format is one event per line:
//
//	<thread>|<op>|<location>
//
// where <thread> is a thread name (conventionally t0, t1, …), <op> is one
// of r(x), w(x), acq(ℓ), rel(ℓ), fork(t), join(t), begin, end, and
// <location> is an optional integer source-location tag, ignored by the
// checkers but preserved on round trips. Example:
//
//	t0|fork(t1)|0
//	t0|begin|12
//	t0|w(x3)|12
//	t1|acq(l0)|7
//
// Thread, variable and lock names are interned in first-appearance order,
// matching the dense IDs the checkers use.
//
// The binary format ("ADB1") is a 16-byte header followed by fixed 8-byte
// little-endian records (thread uint16, kind uint8, pad uint8, target
// int32), suitable for multi-gigabyte logs.
package rapidio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"aerodrome/internal/trace"
)

// ErrFormat wraps all parse errors.
var ErrFormat = errors.New("rapidio: bad trace format")

// ParseError reports a malformed input line.
type ParseError struct {
	Line   int
	Text   string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rapidio: line %d %q: %s", e.Line, e.Text, e.Reason)
}

// Unwrap lets errors.Is(err, ErrFormat) succeed.
func (e *ParseError) Unwrap() error { return ErrFormat }

// Reader streams events from an STD-format log. It implements trace.Source
// by panicking on malformed input; use Read for error-returning iteration.
type Reader struct {
	sc      *bufio.Scanner
	line    int
	threads map[string]trace.ThreadID
	vars    map[string]trace.VarID
	locks   map[string]trace.LockID

	threadNames []string
	varNames    []string
	lockNames   []string

	err  error
	done bool
}

// NewReader returns a Reader over r. Lines may be up to 1 MiB.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{
		sc:      sc,
		threads: map[string]trace.ThreadID{},
		vars:    map[string]trace.VarID{},
		locks:   map[string]trace.LockID{},
	}
}

// Read returns the next event, io.EOF at the end of input, or a
// *ParseError for malformed lines. Parsing tokenizes in place over the
// scanner's byte buffer: the only per-line allocations are the first
// interning of each thread/variable/lock name (and error paths).
func (r *Reader) Read() (trace.Event, error) {
	if r.err != nil {
		return trace.Event{}, r.err
	}
	for r.sc.Scan() {
		r.line++
		line := bytes.TrimSpace(r.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		ev, err := r.parseLine(line)
		if err != nil {
			r.err = err
			return trace.Event{}, err
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = err
		return trace.Event{}, err
	}
	r.err = io.EOF
	return trace.Event{}, io.EOF
}

// Next implements trace.Source: it stops the stream at the first error and
// records it for Err.
func (r *Reader) Next() (trace.Event, bool) {
	ev, err := r.Read()
	if err != nil {
		return trace.Event{}, false
	}
	return ev, true
}

// ReadBatch fills dst with up to len(dst) events and returns how many were
// filled plus the terminal error, if the stream ended inside this batch
// (io.EOF for a clean end, a *ParseError or scanner error otherwise). A
// non-nil error means no further events will ever come; n may still be
// positive alongside it. This is the producer side of the pipelined
// checker: one call amortizes the scanner loop over a whole batch.
func (r *Reader) ReadBatch(dst []trace.Event) (int, error) {
	return readBatch(r.Read, dst)
}

// readBatch is the shared fill-until-error loop behind both readers'
// ReadBatch (one place to change the batch contract).
func readBatch(read func() (trace.Event, error), dst []trace.Event) (int, error) {
	n := 0
	for n < len(dst) {
		ev, err := read()
		if err != nil {
			return n, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// Err returns the terminal error of the stream, if any (nil after a clean
// EOF).
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	return r.err
}

// Names returns the interned symbol tables accumulated so far.
func (r *Reader) Names() (threads, vars, locks []string) {
	return r.threadNames, r.varNames, r.lockNames
}

// parseLine parses one trimmed, non-empty line. The []byte slices index
// into the scanner's buffer and must not be retained; the intern tables
// copy names only on first sight (map lookups with string(bytes) keys do
// not allocate).
func (r *Reader) parseLine(line []byte) (trace.Event, error) {
	fail := func(reason string) (trace.Event, error) {
		return trace.Event{}, &ParseError{Line: r.line, Text: string(line), Reason: reason}
	}
	sep1 := bytes.IndexByte(line, '|')
	if sep1 < 0 {
		return fail("want thread|op or thread|op|loc")
	}
	rest := line[sep1+1:]
	op := rest
	if sep2 := bytes.IndexByte(rest, '|'); sep2 >= 0 {
		op = bytes.TrimSpace(rest[:sep2])
		loc := bytes.TrimSpace(rest[sep2+1:])
		if bytes.IndexByte(loc, '|') >= 0 {
			return fail("want thread|op or thread|op|loc")
		}
		// The location is validated but otherwise ignored.
		for _, c := range loc {
			if c < '0' || c > '9' {
				return fail("non-numeric location")
			}
		}
	} else {
		op = bytes.TrimSpace(op)
	}
	tname := bytes.TrimSpace(line[:sep1])
	if len(tname) == 0 {
		return fail("empty thread name")
	}
	t := r.internThread(tname)

	if string(op) == "begin" {
		return trace.Event{Thread: t, Kind: trace.Begin}, nil
	}
	if string(op) == "end" {
		return trace.Event{Thread: t, Kind: trace.End}, nil
	}
	open := bytes.IndexByte(op, '(')
	if open < 1 || op[len(op)-1] != ')' {
		return fail("unknown operation " + string(op))
	}
	name := op[:open]
	arg := op[open+1 : len(op)-1]
	if len(arg) == 0 {
		return fail("empty operand")
	}
	switch string(name) {
	case "r":
		return trace.Event{Thread: t, Kind: trace.Read, Target: int32(r.internVar(arg))}, nil
	case "w":
		return trace.Event{Thread: t, Kind: trace.Write, Target: int32(r.internVar(arg))}, nil
	case "acq":
		return trace.Event{Thread: t, Kind: trace.Acquire, Target: int32(r.internLock(arg))}, nil
	case "rel":
		return trace.Event{Thread: t, Kind: trace.Release, Target: int32(r.internLock(arg))}, nil
	case "fork":
		return trace.Event{Thread: t, Kind: trace.Fork, Target: int32(r.internThread(arg))}, nil
	case "join":
		return trace.Event{Thread: t, Kind: trace.Join, Target: int32(r.internThread(arg))}, nil
	}
	return fail("unknown operation " + string(name))
}

func (r *Reader) internThread(name []byte) trace.ThreadID {
	if id, ok := r.threads[string(name)]; ok {
		return id
	}
	id := trace.ThreadID(len(r.threads))
	s := string(name)
	r.threads[s] = id
	r.threadNames = append(r.threadNames, s)
	return id
}

func (r *Reader) internVar(name []byte) trace.VarID {
	if id, ok := r.vars[string(name)]; ok {
		return id
	}
	id := trace.VarID(len(r.vars))
	s := string(name)
	r.vars[s] = id
	r.varNames = append(r.varNames, s)
	return id
}

func (r *Reader) internLock(name []byte) trace.LockID {
	if id, ok := r.locks[string(name)]; ok {
		return id
	}
	id := trace.LockID(len(r.locks))
	s := string(name)
	r.locks[s] = id
	r.lockNames = append(r.lockNames, s)
	return id
}

// ReadTrace materializes a whole STD log.
func ReadTrace(r io.Reader) (*trace.Trace, error) {
	rd := NewReader(r)
	tr := &trace.Trace{}
	for {
		ev, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Append(ev)
	}
	tr.ThreadNames, tr.VarNames, tr.LockNames = rd.Names()
	return tr, nil
}

// Writer emits events in the STD format.
type Writer struct {
	w  *bufio.Writer
	tr *trace.Trace // optional name source
}

// NewWriter returns a Writer. When names is non-nil its symbol tables are
// used for display names; otherwise names are synthesized (t0, x1, l2).
func NewWriter(w io.Writer, names *trace.Trace) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), tr: names}
}

// Write emits one event.
func (wr *Writer) Write(e trace.Event) error {
	var err error
	tn := wr.threadName(e.Thread)
	switch e.Kind {
	case trace.Begin:
		_, err = fmt.Fprintf(wr.w, "%s|begin|0\n", tn)
	case trace.End:
		_, err = fmt.Fprintf(wr.w, "%s|end|0\n", tn)
	case trace.Read:
		_, err = fmt.Fprintf(wr.w, "%s|r(%s)|0\n", tn, wr.varName(e.Var()))
	case trace.Write:
		_, err = fmt.Fprintf(wr.w, "%s|w(%s)|0\n", tn, wr.varName(e.Var()))
	case trace.Acquire:
		_, err = fmt.Fprintf(wr.w, "%s|acq(%s)|0\n", tn, wr.lockName(e.Lock()))
	case trace.Release:
		_, err = fmt.Fprintf(wr.w, "%s|rel(%s)|0\n", tn, wr.lockName(e.Lock()))
	case trace.Fork:
		_, err = fmt.Fprintf(wr.w, "%s|fork(%s)|0\n", tn, wr.threadName(e.Other()))
	case trace.Join:
		_, err = fmt.Fprintf(wr.w, "%s|join(%s)|0\n", tn, wr.threadName(e.Other()))
	default:
		err = fmt.Errorf("rapidio: unknown event kind %d", e.Kind)
	}
	return err
}

// Flush flushes buffered output.
func (wr *Writer) Flush() error { return wr.w.Flush() }

func (wr *Writer) threadName(t trace.ThreadID) string {
	if wr.tr != nil {
		return wr.tr.ThreadName(t)
	}
	return fmt.Sprintf("t%d", t)
}

func (wr *Writer) varName(x trace.VarID) string {
	if wr.tr != nil {
		return wr.tr.VarName(x)
	}
	return fmt.Sprintf("x%d", x)
}

func (wr *Writer) lockName(l trace.LockID) string {
	if wr.tr != nil {
		return wr.tr.LockName(l)
	}
	return fmt.Sprintf("l%d", l)
}

// WriteTrace writes tr as an STD log.
func WriteTrace(w io.Writer, tr *trace.Trace) error {
	wr := NewWriter(w, tr)
	for _, e := range tr.Events {
		if err := wr.Write(e); err != nil {
			return err
		}
	}
	return wr.Flush()
}

// WriteSource drains a Source into an STD log.
func WriteSource(w io.Writer, src trace.Source) (int64, error) {
	wr := NewWriter(w, nil)
	var n int64
	for {
		e, ok := src.Next()
		if !ok {
			return n, wr.Flush()
		}
		if err := wr.Write(e); err != nil {
			return n, err
		}
		n++
	}
}

// --- binary format -----------------------------------------------------------

var binMagic = [4]byte{'A', 'D', 'B', '1'}

// BinaryWriter emits the compact binary format.
type BinaryWriter struct {
	w      *bufio.Writer
	wrote  bool
	record [8]byte
}

// NewBinaryWriter returns a BinaryWriter over w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one event record, writing the header first if needed.
func (bw *BinaryWriter) Write(e trace.Event) error {
	if !bw.wrote {
		bw.wrote = true
		var hdr [16]byte
		copy(hdr[:4], binMagic[:])
		if _, err := bw.w.Write(hdr[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint16(bw.record[0:2], uint16(e.Thread))
	bw.record[2] = byte(e.Kind)
	bw.record[3] = 0
	binary.LittleEndian.PutUint32(bw.record[4:8], uint32(e.Target))
	_, err := bw.w.Write(bw.record[:])
	return err
}

// Flush flushes buffered output (writing the header even for empty logs).
func (bw *BinaryWriter) Flush() error {
	if !bw.wrote {
		bw.wrote = true
		var hdr [16]byte
		copy(hdr[:4], binMagic[:])
		if _, err := bw.w.Write(hdr[:]); err != nil {
			return err
		}
	}
	return bw.w.Flush()
}

// BinaryReader streams the compact binary format.
type BinaryReader struct {
	r      *bufio.Reader
	header bool
	err    error
	record [8]byte // scratch: io.ReadFull would heap-allocate a local
}

// NewBinaryReader returns a BinaryReader over r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next event or io.EOF.
func (br *BinaryReader) Read() (trace.Event, error) {
	if br.err != nil {
		return trace.Event{}, br.err
	}
	if !br.header {
		var hdr [16]byte
		if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
			br.err = fmt.Errorf("rapidio: short binary header: %w", ErrFormat)
			return trace.Event{}, br.err
		}
		if [4]byte(hdr[:4]) != binMagic {
			br.err = fmt.Errorf("rapidio: bad magic %q: %w", hdr[:4], ErrFormat)
			return trace.Event{}, br.err
		}
		br.header = true
	}
	rec := &br.record
	if _, err := io.ReadFull(br.r, rec[:]); err != nil {
		if err == io.EOF {
			br.err = io.EOF
			return trace.Event{}, io.EOF
		}
		br.err = fmt.Errorf("rapidio: truncated record: %w", ErrFormat)
		return trace.Event{}, br.err
	}
	kind := trace.OpKind(rec[2])
	if kind > trace.Join {
		br.err = fmt.Errorf("rapidio: bad op kind %d: %w", rec[2], ErrFormat)
		return trace.Event{}, br.err
	}
	return trace.Event{
		Thread: trace.ThreadID(binary.LittleEndian.Uint16(rec[0:2])),
		Kind:   kind,
		Target: int32(binary.LittleEndian.Uint32(rec[4:8])),
	}, nil
}

// Next implements trace.Source.
func (br *BinaryReader) Next() (trace.Event, bool) {
	ev, err := br.Read()
	if err != nil {
		return trace.Event{}, false
	}
	return ev, true
}

// ReadBatch fills dst with up to len(dst) events; see Reader.ReadBatch for
// the contract.
func (br *BinaryReader) ReadBatch(dst []trace.Event) (int, error) {
	return readBatch(br.Read, dst)
}

// Err returns the terminal error of the stream (nil after clean EOF).
func (br *BinaryReader) Err() error {
	if br.err == io.EOF {
		return nil
	}
	return br.err
}
