// Package trace defines the event and trace model for dynamic
// conflict-serializability analysis, following the preliminaries of
// "Atomicity Checking in Linear Time using Vector Clocks" (ASPLOS 2020).
//
// A trace is a sequence of events ⟨thread, op⟩ where op is one of
// r(x), w(x), acq(ℓ), rel(ℓ), fork(u), join(u), ⊲ (begin) and ⊳ (end).
// Threads, variables and locks are identified by dense integer IDs,
// optionally interned from string names via a Builder or SymbolTable.
//
// The package also provides:
//
//   - Source: a pull-based event stream, so that checkers can analyze
//     traces far larger than memory (generators implement Source too).
//   - Validate: the well-formedness rules of the paper (matched lock
//     acquire/release, matched begin/end, mutual exclusion of locks,
//     fork-before-first-event, join-after-last-event).
//   - Transactions: segmentation of a trace into transactions, including
//     unary transactions for events outside any ⊲…⊳ block.
package trace

import (
	"fmt"
)

// ThreadID identifies a thread. IDs are dense, starting at 0.
type ThreadID int32

// VarID identifies a memory location. IDs are dense, starting at 0.
type VarID int32

// LockID identifies a lock object. IDs are dense, starting at 0.
type LockID int32

// OpKind enumerates the event operations of the paper.
type OpKind uint8

const (
	// Begin is ⊲, the start of an atomic block.
	Begin OpKind = iota
	// End is ⊳, the end of an atomic block.
	End
	// Read is r(x).
	Read
	// Write is w(x).
	Write
	// Acquire is acq(ℓ).
	Acquire
	// Release is rel(ℓ).
	Release
	// Fork is fork(u): creation of thread u.
	Fork
	// Join is join(u): waiting for thread u to finish.
	Join

	numOpKinds
)

var opNames = [numOpKinds]string{
	Begin:   "begin",
	End:     "end",
	Read:    "r",
	Write:   "w",
	Acquire: "acq",
	Release: "rel",
	Fork:    "fork",
	Join:    "join",
}

// String returns the operation mnemonic used in the STD trace format.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// HasTarget reports whether events of this kind carry a target operand
// (a variable, a lock, or another thread).
func (k OpKind) HasTarget() bool {
	switch k {
	case Read, Write, Acquire, Release, Fork, Join:
		return true
	}
	return false
}

// Event is a single trace event. Target is interpreted according to Kind:
// a VarID for Read/Write, a LockID for Acquire/Release, a ThreadID for
// Fork/Join, and unused (zero) for Begin/End.
type Event struct {
	Thread ThreadID
	Kind   OpKind
	Target int32
}

// Var returns the variable accessed by a Read or Write event.
func (e Event) Var() VarID { return VarID(e.Target) }

// Lock returns the lock of an Acquire or Release event.
func (e Event) Lock() LockID { return LockID(e.Target) }

// Other returns the thread operand of a Fork or Join event.
func (e Event) Other() ThreadID { return ThreadID(e.Target) }

// String renders the event as "t3|w(x7)"-style STD notation.
func (e Event) String() string {
	switch e.Kind {
	case Read, Write:
		return fmt.Sprintf("t%d|%s(x%d)", e.Thread, e.Kind, e.Target)
	case Acquire, Release:
		return fmt.Sprintf("t%d|%s(l%d)", e.Thread, e.Kind, e.Target)
	case Fork, Join:
		return fmt.Sprintf("t%d|%s(t%d)", e.Thread, e.Kind, e.Target)
	default:
		return fmt.Sprintf("t%d|%s", e.Thread, e.Kind)
	}
}

// Source is a pull-based event stream. Next returns the next event and true,
// or a zero Event and false when the stream is exhausted. Implementations
// are single-use; callers that need to replay a stream construct a new one.
type Source interface {
	Next() (Event, bool)
}

// Trace is a fully materialized event sequence together with the sizes of
// its identifier spaces. Name tables are optional; when absent, tools print
// synthesized names (t0, x1, l2).
type Trace struct {
	Events []Event

	// NThreads, NVars and NLocks are upper bounds on the dense ID spaces
	// (maximum ID + 1). Maintained by Append.
	NThreads int
	NVars    int
	NLocks   int

	// Optional symbol names, indexed by ID.
	ThreadNames []string
	VarNames    []string
	LockNames   []string
}

// Append adds an event and maintains the ID-space bounds.
func (tr *Trace) Append(e Event) {
	tr.Events = append(tr.Events, e)
	tr.note(e)
}

func (tr *Trace) note(e Event) {
	if n := int(e.Thread) + 1; n > tr.NThreads {
		tr.NThreads = n
	}
	switch e.Kind {
	case Read, Write:
		if n := int(e.Target) + 1; n > tr.NVars {
			tr.NVars = n
		}
	case Acquire, Release:
		if n := int(e.Target) + 1; n > tr.NLocks {
			tr.NLocks = n
		}
	case Fork, Join:
		if n := int(e.Target) + 1; n > tr.NThreads {
			tr.NThreads = n
		}
	}
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.Events) }

// ThreadName returns the display name of thread t.
func (tr *Trace) ThreadName(t ThreadID) string {
	if int(t) < len(tr.ThreadNames) && tr.ThreadNames[t] != "" {
		return tr.ThreadNames[t]
	}
	return fmt.Sprintf("t%d", t)
}

// VarName returns the display name of variable x.
func (tr *Trace) VarName(x VarID) string {
	if int(x) < len(tr.VarNames) && tr.VarNames[x] != "" {
		return tr.VarNames[x]
	}
	return fmt.Sprintf("x%d", x)
}

// LockName returns the display name of lock l.
func (tr *Trace) LockName(l LockID) string {
	if int(l) < len(tr.LockNames) && tr.LockNames[l] != "" {
		return tr.LockNames[l]
	}
	return fmt.Sprintf("l%d", l)
}

// Cursor returns a Source that yields the trace's events in order.
func (tr *Trace) Cursor() *Cursor { return &Cursor{tr: tr} }

// Cursor is a Source over a materialized Trace.
type Cursor struct {
	tr  *Trace
	pos int
}

// Next implements Source.
func (c *Cursor) Next() (Event, bool) {
	if c.pos >= len(c.tr.Events) {
		return Event{}, false
	}
	e := c.tr.Events[c.pos]
	c.pos++
	return e, true
}

// Pos returns the index of the next event to be returned.
func (c *Cursor) Pos() int { return c.pos }

// Collect drains a Source into a materialized Trace. Intended for tests and
// tools; production checkers consume Sources directly.
func Collect(src Source) *Trace {
	tr := &Trace{}
	for {
		e, ok := src.Next()
		if !ok {
			return tr
		}
		tr.Append(e)
	}
}

// Stats summarizes a trace the way the paper's tables do: event count,
// threads, locks, variables and transaction count (outermost blocks only;
// unary transactions are not counted, matching the paper's "Transactions"
// column which counts ⊲…⊳ blocks).
type Stats struct {
	Events       int64
	Threads      int
	Locks        int
	Vars         int
	Transactions int64
	Reads        int64
	Writes       int64
	Acquires     int64
	Releases     int64
	Forks        int64
	Joins        int64
	Begins       int64
	Ends         int64
}

// ComputeStats consumes a Source and tallies Stats. Nested begins are
// counted as events but only outermost blocks count as transactions.
func ComputeStats(src Source) Stats {
	var s Stats
	depth := map[ThreadID]int{}
	maxThread, maxVar, maxLock := -1, -1, -1
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		s.Events++
		if int(e.Thread) > maxThread {
			maxThread = int(e.Thread)
		}
		switch e.Kind {
		case Read:
			s.Reads++
			if int(e.Target) > maxVar {
				maxVar = int(e.Target)
			}
		case Write:
			s.Writes++
			if int(e.Target) > maxVar {
				maxVar = int(e.Target)
			}
		case Acquire:
			s.Acquires++
			if int(e.Target) > maxLock {
				maxLock = int(e.Target)
			}
		case Release:
			s.Releases++
			if int(e.Target) > maxLock {
				maxLock = int(e.Target)
			}
		case Fork:
			s.Forks++
			if int(e.Target) > maxThread {
				maxThread = int(e.Target)
			}
		case Join:
			s.Joins++
			if int(e.Target) > maxThread {
				maxThread = int(e.Target)
			}
		case Begin:
			s.Begins++
			if depth[e.Thread] == 0 {
				s.Transactions++
			}
			depth[e.Thread]++
		case End:
			s.Ends++
			depth[e.Thread]--
		}
	}
	s.Threads = maxThread + 1
	s.Vars = maxVar + 1
	s.Locks = maxLock + 1
	return s
}
