package trace

// Builder constructs traces fluently, interning thread, variable and lock
// names to dense IDs. It is the primary way tests and examples express the
// paper's example traces:
//
//	b := trace.NewBuilder()
//	t1, t2 := b.Thread("t1"), b.Thread("t2")
//	x := b.Var("x")
//	b.Begin(t1).Begin(t2).Write(t1, x).Read(t2, x).End(t2).End(t1)
//	tr := b.Build()
type Builder struct {
	tr      Trace
	threads map[string]ThreadID
	vars    map[string]VarID
	locks   map[string]LockID
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		threads: map[string]ThreadID{},
		vars:    map[string]VarID{},
		locks:   map[string]LockID{},
	}
}

// Thread interns a thread name and returns its ID.
func (b *Builder) Thread(name string) ThreadID {
	if id, ok := b.threads[name]; ok {
		return id
	}
	id := ThreadID(len(b.threads))
	b.threads[name] = id
	b.tr.ThreadNames = append(b.tr.ThreadNames, name)
	if int(id)+1 > b.tr.NThreads {
		b.tr.NThreads = int(id) + 1
	}
	return id
}

// Var interns a variable name and returns its ID.
func (b *Builder) Var(name string) VarID {
	if id, ok := b.vars[name]; ok {
		return id
	}
	id := VarID(len(b.vars))
	b.vars[name] = id
	b.tr.VarNames = append(b.tr.VarNames, name)
	if int(id)+1 > b.tr.NVars {
		b.tr.NVars = int(id) + 1
	}
	return id
}

// Lock interns a lock name and returns its ID.
func (b *Builder) Lock(name string) LockID {
	if id, ok := b.locks[name]; ok {
		return id
	}
	id := LockID(len(b.locks))
	b.locks[name] = id
	b.tr.LockNames = append(b.tr.LockNames, name)
	if int(id)+1 > b.tr.NLocks {
		b.tr.NLocks = int(id) + 1
	}
	return id
}

// Begin appends ⟨t, ⊲⟩.
func (b *Builder) Begin(t ThreadID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Begin})
	return b
}

// End appends ⟨t, ⊳⟩.
func (b *Builder) End(t ThreadID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: End})
	return b
}

// Read appends ⟨t, r(x)⟩.
func (b *Builder) Read(t ThreadID, x VarID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Read, Target: int32(x)})
	return b
}

// Write appends ⟨t, w(x)⟩.
func (b *Builder) Write(t ThreadID, x VarID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Write, Target: int32(x)})
	return b
}

// Acquire appends ⟨t, acq(l)⟩.
func (b *Builder) Acquire(t ThreadID, l LockID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Acquire, Target: int32(l)})
	return b
}

// Release appends ⟨t, rel(l)⟩.
func (b *Builder) Release(t ThreadID, l LockID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Release, Target: int32(l)})
	return b
}

// Fork appends ⟨t, fork(u)⟩.
func (b *Builder) Fork(t, u ThreadID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Fork, Target: int32(u)})
	return b
}

// Join appends ⟨t, join(u)⟩.
func (b *Builder) Join(t, u ThreadID) *Builder {
	b.tr.Append(Event{Thread: t, Kind: Join, Target: int32(u)})
	return b
}

// Append adds a raw event.
func (b *Builder) Append(e Event) *Builder {
	b.tr.Append(e)
	return b
}

// Build returns the constructed trace. The Builder must not be reused.
func (b *Builder) Build() *Trace {
	return &b.tr
}
