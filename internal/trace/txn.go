package trace

// TxnID identifies a transaction within a segmented trace. IDs are dense in
// order of transaction start.
type TxnID int32

// NoTxn marks events that belong to no transaction segment (never produced
// by Transactions, which wraps such events in unary transactions; used as a
// sentinel by callers).
const NoTxn TxnID = -1

// Txn is one transaction of a segmented trace: either an outermost ⊲…⊳
// block or a unary transaction wrapping a single non-block event.
type Txn struct {
	ID     TxnID
	Thread ThreadID
	// First and Last are event indices (inclusive) of the transaction's
	// extent in the trace. For an active (never-ended) transaction, Last is
	// the index of the thread's last event.
	First int
	Last  int
	// Unary marks single-event transactions for events outside any block.
	Unary bool
	// Completed reports whether the block's matching ⊳ appears in the
	// trace. Unary transactions are always completed.
	Completed bool
}

// Segmentation maps every event of a trace to its transaction, following
// the paper: only outermost begin/end pairs delimit transactions, nested
// blocks fold into the outermost, and every event outside a block is a
// unary transaction by itself. Begin and end events belong to their block.
type Segmentation struct {
	Txns []Txn
	// ByEvent[i] is the TxnID of event i.
	ByEvent []TxnID
}

// Transactions segments a trace.
func Transactions(tr *Trace) *Segmentation {
	seg := &Segmentation{ByEvent: make([]TxnID, len(tr.Events))}
	depth := map[ThreadID]int{}
	open := map[ThreadID]TxnID{} // active outermost transaction per thread

	for i, e := range tr.Events {
		t := e.Thread
		switch e.Kind {
		case Begin:
			if depth[t] == 0 {
				id := TxnID(len(seg.Txns))
				seg.Txns = append(seg.Txns, Txn{ID: id, Thread: t, First: i, Last: i})
				open[t] = id
			}
			depth[t]++
			seg.ByEvent[i] = open[t]
			seg.Txns[open[t]].Last = i
		case End:
			depth[t]--
			id := open[t]
			seg.ByEvent[i] = id
			seg.Txns[id].Last = i
			if depth[t] == 0 {
				seg.Txns[id].Completed = true
				delete(open, t)
			}
		default:
			if id, ok := open[t]; ok {
				seg.ByEvent[i] = id
				seg.Txns[id].Last = i
			} else {
				id := TxnID(len(seg.Txns))
				seg.Txns = append(seg.Txns, Txn{
					ID: id, Thread: t, First: i, Last: i,
					Unary: true, Completed: true,
				})
				seg.ByEvent[i] = id
			}
		}
	}
	return seg
}

// TxnOf returns the transaction of event index i.
func (s *Segmentation) TxnOf(i int) *Txn { return &s.Txns[s.ByEvent[i]] }

// Count returns the number of transactions (including unary ones).
func (s *Segmentation) Count() int { return len(s.Txns) }

// BlockCount returns the number of non-unary transactions, matching the
// "Transactions" column of the paper's tables.
func (s *Segmentation) BlockCount() int {
	n := 0
	for _, t := range s.Txns {
		if !t.Unary {
			n++
		}
	}
	return n
}
