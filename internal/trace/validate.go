package trace

import (
	"errors"
	"fmt"
)

// ErrMalformed is wrapped by every validation error so callers can test for
// the class with errors.Is.
var ErrMalformed = errors.New("malformed trace")

// ValidationError describes the first well-formedness violation found in a
// trace, with the offending event index.
type ValidationError struct {
	Index  int    // index of the offending event, or -1 for end-of-trace problems
	Event  Event  // offending event (zero for end-of-trace problems)
	Reason string // human-readable rule that was broken
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("malformed trace: %s", e.Reason)
	}
	return fmt.Sprintf("malformed trace: event %d (%s): %s", e.Index, e.Event, e.Reason)
}

// Unwrap lets errors.Is(err, ErrMalformed) succeed.
func (e *ValidationError) Unwrap() error { return ErrMalformed }

// Validator checks the paper's well-formedness rules incrementally:
//
//  1. lock acquires and releases are well matched and a lock is held by at
//     most one thread at a time (re-entrant acquisition is not modeled);
//  2. begin and end events are well matched per thread (nesting allowed);
//  3. a fork(u) occurs before the first event of u, and u is forked at most
//     once, and does not fork itself;
//  4. a join(u) occurs after the last event of u — checked at Finish time
//     (a joined thread must produce no further events) and a thread does
//     not join itself.
//
// Strict mode additionally requires every begun block to be ended and every
// acquired lock to be released by the end of the trace.
type Validator struct {
	lockOwner map[LockID]ThreadID
	depth     map[ThreadID]int
	started   map[ThreadID]bool
	forked    map[ThreadID]bool
	joined    map[ThreadID]bool
	idx       int
	failed    error
}

// NewValidator returns a Validator ready to consume events.
func NewValidator() *Validator {
	return &Validator{
		lockOwner: map[LockID]ThreadID{},
		depth:     map[ThreadID]int{},
		started:   map[ThreadID]bool{},
		forked:    map[ThreadID]bool{},
		joined:    map[ThreadID]bool{},
	}
}

func (v *Validator) fail(e Event, reason string) error {
	v.failed = &ValidationError{Index: v.idx, Event: e, Reason: reason}
	return v.failed
}

// Observe checks one event; it returns the first error encountered and keeps
// returning it afterwards.
func (v *Validator) Observe(e Event) error {
	if v.failed != nil {
		return v.failed
	}
	defer func() { v.idx++ }()

	t := e.Thread
	if v.joined[t] {
		return v.fail(e, "thread performs an event after being joined")
	}
	if e.Kind != Fork || e.Other() != t { // self-fork reported below
		v.started[t] = true
	}

	switch e.Kind {
	case Acquire:
		if owner, held := v.lockOwner[e.Lock()]; held {
			if owner == t {
				return v.fail(e, "re-entrant lock acquisition")
			}
			return v.fail(e, fmt.Sprintf("lock already held by t%d", owner))
		}
		v.lockOwner[e.Lock()] = t
	case Release:
		owner, held := v.lockOwner[e.Lock()]
		if !held {
			return v.fail(e, "release of a lock that is not held")
		}
		if owner != t {
			return v.fail(e, fmt.Sprintf("release of a lock held by t%d", owner))
		}
		delete(v.lockOwner, e.Lock())
	case Begin:
		v.depth[t]++
	case End:
		if v.depth[t] == 0 {
			return v.fail(e, "end without matching begin")
		}
		v.depth[t]--
	case Fork:
		u := e.Other()
		if u == t {
			return v.fail(e, "thread forks itself")
		}
		if v.forked[u] {
			return v.fail(e, "thread forked twice")
		}
		if v.started[u] {
			return v.fail(e, "fork after the child's first event")
		}
		v.forked[u] = true
	case Join:
		u := e.Other()
		if u == t {
			return v.fail(e, "thread joins itself")
		}
		if v.joined[u] {
			return v.fail(e, "thread joined twice")
		}
		v.joined[u] = true
	case Read, Write:
		// no structural constraints
	default:
		return v.fail(e, "unknown operation")
	}
	return nil
}

// Finish applies end-of-trace rules. When strict is true, open transactions
// and held locks are errors; joined-thread and fork rules are always final
// by construction of Observe.
func (v *Validator) Finish(strict bool) error {
	if v.failed != nil {
		return v.failed
	}
	if !strict {
		return nil
	}
	for t, d := range v.depth {
		if d != 0 {
			v.failed = &ValidationError{Index: -1, Reason: fmt.Sprintf("t%d has %d unmatched begin(s) at end of trace", t, d)}
			return v.failed
		}
	}
	for l, t := range v.lockOwner {
		v.failed = &ValidationError{Index: -1, Reason: fmt.Sprintf("lock l%d still held by t%d at end of trace", l, t)}
		return v.failed
	}
	return nil
}

// Validate checks a whole trace with non-strict end-of-trace rules
// (truncated traces with active transactions are legal inputs for online
// checkers).
func Validate(tr *Trace) error {
	return validate(tr, false)
}

// ValidateStrict checks a whole trace and additionally requires all
// transactions to be completed and all locks released.
func ValidateStrict(tr *Trace) error {
	return validate(tr, true)
}

func validate(tr *Trace, strict bool) error {
	v := NewValidator()
	for _, e := range tr.Events {
		if err := v.Observe(e); err != nil {
			return err
		}
	}
	return v.Finish(strict)
}
