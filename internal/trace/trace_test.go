package trace

import (
	"errors"
	"strings"
	"testing"
)

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		Begin: "begin", End: "end", Read: "r", Write: "w",
		Acquire: "acq", Release: "rel", Fork: "fork", Join: "join",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := OpKind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op kind = %q", got)
	}
}

func TestOpKindHasTarget(t *testing.T) {
	for _, k := range []OpKind{Read, Write, Acquire, Release, Fork, Join} {
		if !k.HasTarget() {
			t.Errorf("%v should have a target", k)
		}
	}
	for _, k := range []OpKind{Begin, End} {
		if k.HasTarget() {
			t.Errorf("%v should not have a target", k)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Thread: 1, Kind: Write, Target: 3}, "t1|w(x3)"},
		{Event{Thread: 0, Kind: Read, Target: 0}, "t0|r(x0)"},
		{Event{Thread: 2, Kind: Acquire, Target: 5}, "t2|acq(l5)"},
		{Event{Thread: 2, Kind: Release, Target: 5}, "t2|rel(l5)"},
		{Event{Thread: 0, Kind: Fork, Target: 1}, "t0|fork(t1)"},
		{Event{Thread: 0, Kind: Join, Target: 1}, "t0|join(t1)"},
		{Event{Thread: 4, Kind: Begin}, "t4|begin"},
		{Event{Thread: 4, Kind: End}, "t4|end"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Event.String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderInterning(t *testing.T) {
	b := NewBuilder()
	t1 := b.Thread("main")
	t1again := b.Thread("main")
	t2 := b.Thread("worker")
	if t1 != t1again {
		t.Fatalf("interning must return the same ID")
	}
	if t1 == t2 {
		t.Fatalf("different names must get different IDs")
	}
	x := b.Var("x")
	y := b.Var("y")
	l := b.Lock("m")
	b.Begin(t1).Write(t1, x).Read(t1, y).Acquire(t1, l).Release(t1, l).End(t1)
	b.Fork(t1, t2).Begin(t2).End(t2).Join(t1, t2)
	tr := b.Build()

	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	if tr.NThreads != 2 || tr.NVars != 2 || tr.NLocks != 1 {
		t.Fatalf("bounds = (%d,%d,%d)", tr.NThreads, tr.NVars, tr.NLocks)
	}
	if tr.ThreadName(t1) != "main" || tr.VarName(y) != "y" || tr.LockName(l) != "m" {
		t.Fatalf("names not preserved")
	}
	// Unnamed IDs synthesize names.
	if got := tr.ThreadName(9); got != "t9" {
		t.Fatalf("synthesized thread name = %q", got)
	}
	if got := tr.VarName(9); got != "x9" {
		t.Fatalf("synthesized var name = %q", got)
	}
	if got := tr.LockName(9); got != "l9" {
		t.Fatalf("synthesized lock name = %q", got)
	}
}

func TestCursorAndCollect(t *testing.T) {
	b := NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).End(t1)
	tr := b.Build()

	cur := tr.Cursor()
	var n int
	for {
		_, ok := cur.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 || cur.Pos() != 3 {
		t.Fatalf("cursor drained %d events, pos %d", n, cur.Pos())
	}
	// A drained cursor stays drained.
	if _, ok := cur.Next(); ok {
		t.Fatalf("drained cursor returned an event")
	}

	got := Collect(tr.Cursor())
	if got.Len() != tr.Len() || got.NThreads != tr.NThreads {
		t.Fatalf("Collect mismatch: %d events", got.Len())
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	l := b.Lock("l")
	b.Begin(t1).
		Begin(t1). // nested: not a new transaction
		Write(t1, x).
		End(t1).
		Fork(t1, t2).
		End(t1).
		Begin(t2).Acquire(t2, l).Read(t2, x).Release(t2, l).End(t2).
		Join(t1, t2)
	tr := b.Build()

	s := ComputeStats(tr.Cursor())
	if s.Events != int64(tr.Len()) {
		t.Fatalf("Events = %d", s.Events)
	}
	if s.Transactions != 2 {
		t.Fatalf("Transactions = %d, want 2 (nested folds)", s.Transactions)
	}
	if s.Threads != 2 || s.Vars != 1 || s.Locks != 1 {
		t.Fatalf("spaces = (%d,%d,%d)", s.Threads, s.Vars, s.Locks)
	}
	if s.Reads != 1 || s.Writes != 1 || s.Acquires != 1 || s.Releases != 1 ||
		s.Forks != 1 || s.Joins != 1 || s.Begins != 3 || s.Ends != 3 {
		t.Fatalf("op counts wrong: %+v", s)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	b := NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	l := b.Lock("l")
	b.Fork(t1, t2).
		Begin(t1).Acquire(t1, l).Write(t1, x).Release(t1, l).End(t1).
		Begin(t2).Acquire(t2, l).Read(t2, x).Release(t2, l).End(t2).
		Join(t1, t2)
	tr := b.Build()
	if err := ValidateStrict(tr); err != nil {
		t.Fatalf("ValidateStrict: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	type tc struct {
		name  string
		build func(b *Builder)
		want  string
	}
	cases := []tc{
		{"double acquire other thread", func(b *Builder) {
			t1, t2 := b.Thread("t1"), b.Thread("t2")
			l := b.Lock("l")
			b.Acquire(t1, l).Acquire(t2, l)
		}, "already held"},
		{"re-entrant acquire", func(b *Builder) {
			t1 := b.Thread("t1")
			l := b.Lock("l")
			b.Acquire(t1, l).Acquire(t1, l)
		}, "re-entrant"},
		{"release unheld", func(b *Builder) {
			t1 := b.Thread("t1")
			l := b.Lock("l")
			b.Release(t1, l)
		}, "not held"},
		{"release other's lock", func(b *Builder) {
			t1, t2 := b.Thread("t1"), b.Thread("t2")
			l := b.Lock("l")
			b.Acquire(t1, l).Release(t2, l)
		}, "held by t0"},
		{"end without begin", func(b *Builder) {
			t1 := b.Thread("t1")
			b.End(t1)
		}, "without matching begin"},
		{"fork after child started", func(b *Builder) {
			t1, t2 := b.Thread("t1"), b.Thread("t2")
			x := b.Var("x")
			b.Write(t2, x).Fork(t1, t2)
		}, "after the child's first event"},
		{"double fork", func(b *Builder) {
			t1, t2, t3 := b.Thread("t1"), b.Thread("t2"), b.Thread("t3")
			b.Fork(t1, t3).Fork(t2, t3)
		}, "forked twice"},
		{"self fork", func(b *Builder) {
			t1 := b.Thread("t1")
			b.Fork(t1, t1)
		}, "forks itself"},
		{"self join", func(b *Builder) {
			t1 := b.Thread("t1")
			b.Join(t1, t1)
		}, "joins itself"},
		{"double join", func(b *Builder) {
			t1, t2, t3 := b.Thread("t1"), b.Thread("t2"), b.Thread("t3")
			x := b.Var("x")
			b.Write(t3, x).Join(t1, t3).Join(t2, t3)
		}, "joined twice"},
		{"event after join", func(b *Builder) {
			t1, t2 := b.Thread("t1"), b.Thread("t2")
			x := b.Var("x")
			b.Write(t2, x).Join(t1, t2).Write(t2, x)
		}, "after being joined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder()
			c.build(b)
			err := Validate(b.Build())
			if err == nil {
				t.Fatalf("expected error")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("error does not wrap ErrMalformed: %v", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestValidateStrictEndOfTrace(t *testing.T) {
	b := NewBuilder()
	t1 := b.Thread("t1")
	b.Begin(t1)
	tr := b.Build()
	if err := Validate(tr); err != nil {
		t.Fatalf("non-strict should accept open transaction: %v", err)
	}
	err := ValidateStrict(tr)
	if err == nil || !strings.Contains(err.Error(), "unmatched begin") {
		t.Fatalf("strict should reject open transaction, got %v", err)
	}

	b2 := NewBuilder()
	t2 := b2.Thread("t1")
	l := b2.Lock("l")
	b2.Acquire(t2, l)
	err = ValidateStrict(b2.Build())
	if err == nil || !strings.Contains(err.Error(), "still held") {
		t.Fatalf("strict should reject held lock, got %v", err)
	}
}

func TestValidatorStopsAtFirstError(t *testing.T) {
	v := NewValidator()
	e := Event{Thread: 0, Kind: End}
	err1 := v.Observe(e)
	err2 := v.Observe(Event{Thread: 0, Kind: Begin})
	if err1 == nil || err2 == nil || err1 != err2 {
		t.Fatalf("validator must latch its first error: %v vs %v", err1, err2)
	}
	if err := v.Finish(true); err != err1 {
		t.Fatalf("Finish must return the latched error")
	}
	var ve *ValidationError
	if !errors.As(err1, &ve) || ve.Index != 0 {
		t.Fatalf("offending index = %+v", ve)
	}
}

func TestTransactionsSegmentation(t *testing.T) {
	b := NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	// t1: unary write, then a block with a nested block, then unary read.
	// t2: an active (never ended) block.
	b.Write(t1, x). // 0: unary
			Begin(t1).    // 1: T1
			Begin(t1).    // 2: nested, still T1
			Write(t1, x). // 3: T1
			End(t1).      // 4: nested end, still T1
			Begin(t2).    // 5: T2 (active)
			Read(t2, x).  // 6: T2
			End(t1).      // 7: T1 completes
			Read(t1, x)   // 8: unary
	tr := b.Build()

	seg := Transactions(tr)
	if seg.Count() != 4 {
		t.Fatalf("Count = %d, want 4", seg.Count())
	}
	if seg.BlockCount() != 2 {
		t.Fatalf("BlockCount = %d, want 2", seg.BlockCount())
	}

	u0 := seg.TxnOf(0)
	if !u0.Unary || !u0.Completed || u0.First != 0 || u0.Last != 0 {
		t.Fatalf("unary txn 0 = %+v", u0)
	}
	blk := seg.TxnOf(1)
	for _, i := range []int{1, 2, 3, 4, 7} {
		if seg.ByEvent[i] != blk.ID {
			t.Fatalf("event %d not in t1's block (got %d)", i, seg.ByEvent[i])
		}
	}
	if blk.Unary || !blk.Completed || blk.First != 1 || blk.Last != 7 {
		t.Fatalf("t1 block = %+v", blk)
	}
	t2blk := seg.TxnOf(5)
	if t2blk.Completed {
		t.Fatalf("t2's block should be active")
	}
	if seg.ByEvent[6] != t2blk.ID {
		t.Fatalf("event 6 should be in t2's block")
	}
	u8 := seg.TxnOf(8)
	if !u8.Unary || u8.Thread != t1 {
		t.Fatalf("trailing unary = %+v", u8)
	}
}

func TestAppendMaintainsBounds(t *testing.T) {
	var tr Trace
	tr.Append(Event{Thread: 3, Kind: Fork, Target: 7})
	if tr.NThreads != 8 {
		t.Fatalf("fork target must extend NThreads: %d", tr.NThreads)
	}
	tr.Append(Event{Thread: 0, Kind: Write, Target: 4})
	tr.Append(Event{Thread: 0, Kind: Acquire, Target: 2})
	if tr.NVars != 5 || tr.NLocks != 3 {
		t.Fatalf("bounds = vars %d locks %d", tr.NVars, tr.NLocks)
	}
}
