package vc

// Sparse is a sparse vector time: an unsorted association list of
// (thread, time) pairs that promotes itself to a dense Clock once it holds
// more than PromoteThreshold entries. It is the representation of the ȒR_x
// accumulators across every engine: ȒR_x is read only through single
// components and written only through zeroing joins, and on real workloads
// a given variable is read by very few distinct threads, so the common case
// is a two- or three-entry list instead of an O(|Thr|) vector. Adversarial
// traces that touch a variable from many threads pay one promotion and then
// dense-clock costs, never worse than the flat representation they replace.
//
// The zero value is ⊥ and ready for use. Sparse values are mutated through
// pointer methods and must not be copied after first use.
type Sparse struct {
	tids  []int32
	times []Time
	dense Clock // non-nil once promoted; tids/times are nil from then on
	// promCount, when non-nil, is incremented once per promotion. Engines
	// point every ȒR_x accumulator they allocate at one per-engine counter
	// (CountPromotionsInto), so promotion rates are attributable per
	// engine instead of vanishing into a process-global.
	promCount *int64
}

// PromoteThreshold is the entry count beyond which Sparse switches to a
// dense Clock: past this size the linear scans of the association list
// stop beating the dense representation's O(1) indexing.
//
// The value is pinned by the bench-backed sweep in
// internal/core/sparse_sweep_test.go (read-heavy traces with 8–48 distinct
// readers per variable, thresholds 4–32). Measured shape: thresholds 4–8
// lose 15–25% at 8 readers (they promote variables that would have stayed
// sparse), 12–24 sit on a plateau at every width, and the curve is flat
// within noise at 16–48 readers. 16 is the plateau point that also keeps
// the 13–16-reader band sparse — the band the previous default of 12
// promoted early (ROADMAP PR 2 open item). Mutable only so the sweep can
// exercise alternatives; production code must treat it as a constant.
var PromoteThreshold = 16

// At returns component t (0 when absent).
func (s *Sparse) At(t int) Time {
	if s.dense != nil {
		return s.dense.At(t)
	}
	for i, id := range s.tids {
		if int(id) == t {
			return s.times[i]
		}
	}
	return 0
}

// JoinComponent sets component t to max(current, v): the single-component
// form of a join.
func (s *Sparse) JoinComponent(t int, v Time) {
	if v == 0 {
		return
	}
	if s.dense != nil {
		if v > s.dense.At(t) {
			s.dense = s.dense.Set(t, v)
		}
		return
	}
	for i, id := range s.tids {
		if int(id) == t {
			if v > s.times[i] {
				s.times[i] = v
			}
			return
		}
	}
	if len(s.tids) >= PromoteThreshold {
		s.promote()
		s.dense = s.dense.Set(t, v)
		return
	}
	s.tids = append(s.tids, int32(t))
	s.times = append(s.times, v)
}

// CountPromotionsInto points s's promotion counter at c (nil detaches).
// The counter is bumped without synchronization; callers own the
// engine-per-goroutine discipline.
func (s *Sparse) CountPromotionsInto(c *int64) { s.promCount = c }

// promote converts the association list into a dense Clock.
func (s *Sparse) promote() {
	var d Clock
	for i, id := range s.tids {
		d = d.Set(int(id), s.times[i])
	}
	s.dense = d
	s.tids, s.times = nil, nil
	if s.promCount != nil {
		*s.promCount++
	}
}

// JoinZeroing joins d[0/skip] into s: the ȒR_x ⊔= C_t[0/t] update for flat
// clock sources.
func (s *Sparse) JoinZeroing(d Clock, skip int) {
	if s.dense != nil {
		s.dense = s.dense.JoinZeroing(d, skip)
		return
	}
	// A source carrying more nonzero components than the promotion
	// threshold forces a promotion anyway; doing it up front replaces an
	// association-list scan per component with one bulk dense join.
	nz := 0
	for _, v := range d {
		if v != 0 {
			nz++
		}
	}
	if nz > PromoteThreshold {
		s.promote()
		s.dense = s.dense.JoinZeroing(d, skip)
		return
	}
	for i, v := range d {
		if i == skip || v == 0 {
			continue
		}
		s.JoinComponent(i, v) // may promote mid-loop; JoinComponent handles it
	}
}

// Len returns the number of explicitly stored entries (white-box: tests and
// promotion diagnostics). Dense entries count nonzero components only.
func (s *Sparse) Len() int {
	if s.dense != nil {
		n := 0
		for _, v := range s.dense {
			if v != 0 {
				n++
			}
		}
		return n
	}
	return len(s.tids)
}

// IsDense reports whether the sparse encoding has promoted itself to a
// dense clock (white-box accessor for tests).
func (s *Sparse) IsDense() bool { return s.dense != nil }

// Flat snapshots the represented vector as a fresh dense Clock.
func (s *Sparse) Flat() Clock {
	if s.dense != nil {
		return s.dense.Copy()
	}
	var out Clock
	for i, id := range s.tids {
		if s.times[i] != 0 {
			out = out.Set(int(id), s.times[i])
		}
	}
	return out
}

// String renders the represented vector in the paper's ⟨…⟩ notation.
func (s *Sparse) String() string { return s.Flat().String() }
