package vc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genClock is the generator quick uses for Clock values: short vectors with
// small non-negative entries, occasionally with trailing zeros so that the
// implicit-zero semantics get exercised.
func genClock(r *rand.Rand) Clock {
	n := r.Intn(6)
	c := make(Clock, n)
	for i := range c {
		c[i] = Time(r.Intn(5))
	}
	return c
}

func (Clock) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genClock(r))
}

func qc(t *testing.T, name string, f interface{}) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("property %s failed: %v", name, err)
	}
}

func TestUnit(t *testing.T) {
	c := Unit(3)
	if got := c.At(3); got != 1 {
		t.Fatalf("Unit(3).At(3) = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if c.At(i) != 0 {
			t.Fatalf("Unit(3).At(%d) = %d, want 0", i, c.At(i))
		}
	}
	if c.At(99) != 0 {
		t.Fatalf("out-of-range component should be 0")
	}
}

func TestZeroValueIsBottom(t *testing.T) {
	var bot Clock
	if !bot.IsZero() {
		t.Fatalf("nil clock should be ⊥")
	}
	c := Clock{1, 2, 3}
	if !bot.Leq(c) {
		t.Fatalf("⊥ ⊑ c must hold")
	}
	if c.Leq(bot) {
		t.Fatalf("c ⊑ ⊥ must not hold for nonzero c")
	}
	if !bot.Leq(bot) {
		t.Fatalf("⊥ ⊑ ⊥ must hold")
	}
}

func TestLeqImplicitZeros(t *testing.T) {
	a := Clock{1, 0, 0}
	b := Clock{1}
	if !a.Leq(b) || !b.Leq(a) {
		t.Fatalf("trailing zeros must not affect ⊑: %v vs %v", a, b)
	}
	if !a.Equal(b) {
		t.Fatalf("trailing zeros must not affect Equal")
	}
	c := Clock{1, 0, 2}
	if c.Leq(b) {
		t.Fatalf("⟨1,0,2⟩ ⊑ ⟨1⟩ must not hold")
	}
	if !b.Leq(c) {
		t.Fatalf("⟨1⟩ ⊑ ⟨1,0,2⟩ must hold")
	}
}

func TestJoinBasics(t *testing.T) {
	a := Clock{2, 0, 1}
	b := Clock{1, 3}
	j := a.Copy().Join(b)
	want := Clock{2, 3, 1}
	if !j.Equal(want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
	// Join must grow the receiver when the argument is longer.
	short := Clock{1}
	long := Clock{0, 0, 0, 7}
	j2 := short.Copy().Join(long)
	if j2.At(3) != 7 || j2.At(0) != 1 {
		t.Fatalf("grown join = %v", j2)
	}
}

func TestJoinZeroing(t *testing.T) {
	a := Clock{1, 1, 1}
	b := Clock{5, 6, 7}
	j := a.Copy().JoinZeroing(b, 1)
	want := Clock{5, 1, 7}
	if !j.Equal(want) {
		t.Fatalf("JoinZeroing = %v, want %v", j, want)
	}
	// Skipping an index beyond b's length is a plain join.
	j2 := a.Copy().JoinZeroing(b, 17)
	if !j2.Equal(a.Copy().Join(b)) {
		t.Fatalf("JoinZeroing with out-of-range skip should equal Join")
	}
}

func TestLeqZeroing(t *testing.T) {
	a := Clock{9, 1}
	b := Clock{0, 2}
	if a.Leq(b) {
		t.Fatalf("⟨9,1⟩ ⊑ ⟨0,2⟩ must not hold")
	}
	if !a.LeqZeroing(b, 0) {
		t.Fatalf("⟨9,1⟩[0/0] ⊑ ⟨0,2⟩ must hold")
	}
	if a.LeqZeroing(b, 1) {
		t.Fatalf("⟨9,1⟩[0/1] ⊑ ⟨0,2⟩ must not hold")
	}
}

func TestEqualZeroing(t *testing.T) {
	a := Clock{3, 5, 1}
	b := Clock{3, 9, 1}
	if a.EqualZeroing(b, 0) {
		t.Fatalf("zeroing 0 should not make them equal")
	}
	if !a.EqualZeroing(b, 1) {
		t.Fatalf("zeroing 1 should make them equal")
	}
}

func TestWithEntryAndWithZero(t *testing.T) {
	a := Clock{1, 2}
	b := a.WithEntry(3, 9)
	if b.At(3) != 9 || b.At(0) != 1 || b.At(1) != 2 {
		t.Fatalf("WithEntry = %v", b)
	}
	if a.At(3) != 0 {
		t.Fatalf("WithEntry must not mutate the receiver")
	}
	z := b.WithZero(0)
	if z.At(0) != 0 || z.At(3) != 9 {
		t.Fatalf("WithZero = %v", z)
	}
	if b.At(0) != 1 {
		t.Fatalf("WithZero must not mutate the receiver")
	}
}

func TestIncAndSet(t *testing.T) {
	var c Clock
	c = c.Inc(2)
	c = c.Inc(2)
	c = c.Set(0, 5)
	if c.At(2) != 2 || c.At(0) != 5 {
		t.Fatalf("after Inc/Set: %v", c)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := Clock{1, 2, 3}
	b := a.Copy()
	b[0] = 99
	if a[0] != 1 {
		t.Fatalf("Copy must be independent")
	}
	var n Clock
	if n.Copy() != nil {
		t.Fatalf("Copy of nil should stay nil")
	}
}

func TestCopyInto(t *testing.T) {
	a := Clock{4, 5}
	dst := make(Clock, 0, 8)
	dst = a.CopyInto(dst)
	if !dst.Equal(a) {
		t.Fatalf("CopyInto = %v", dst)
	}
	dst = Clock{9, 9, 9, 9}.CopyInto(dst)
	if !dst.Equal(Clock{9, 9, 9, 9}) {
		t.Fatalf("CopyInto reuse = %v", dst)
	}
}

func TestString(t *testing.T) {
	c := Clock{2, 0, 1}
	if got := c.String(); got != "⟨2,0,1⟩" {
		t.Fatalf("String = %q", got)
	}
	if got := (Clock{2}).Truncated(3); got != "⟨2,0,0⟩" {
		t.Fatalf("Truncated = %q", got)
	}
	if got := (Clock)(nil).String(); got != "⟨⟩" {
		t.Fatalf("nil String = %q", got)
	}
}

// --- lattice laws via testing/quick -----------------------------------------

func TestPropLeqReflexive(t *testing.T) {
	qc(t, "⊑ reflexive", func(a Clock) bool { return a.Leq(a) })
}

func TestPropLeqAntisymmetric(t *testing.T) {
	qc(t, "⊑ antisymmetric", func(a, b Clock) bool {
		if a.Leq(b) && b.Leq(a) {
			return a.Equal(b)
		}
		return true
	})
}

func TestPropLeqTransitive(t *testing.T) {
	qc(t, "⊑ transitive", func(a, b, c Clock) bool {
		// Build a chain deliberately so the premise is often true.
		ab := a.Copy().Join(b)
		abc := ab.Copy().Join(c)
		return a.Leq(ab) && ab.Leq(abc) && a.Leq(abc)
	})
}

func TestPropJoinUpperBound(t *testing.T) {
	qc(t, "⊔ upper bound", func(a, b Clock) bool {
		j := a.Copy().Join(b)
		return a.Leq(j) && b.Leq(j)
	})
}

func TestPropJoinLeast(t *testing.T) {
	qc(t, "⊔ least upper bound", func(a, b, u Clock) bool {
		// Any u above both a and b must be above the join.
		up := u.Copy().Join(a).Join(b)
		j := a.Copy().Join(b)
		return j.Leq(up)
	})
}

func TestPropJoinCommutativeAssociativeIdempotent(t *testing.T) {
	qc(t, "⊔ laws", func(a, b, c Clock) bool {
		ab := a.Copy().Join(b)
		ba := b.Copy().Join(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := a.Copy().Join(b).Join(c)
		abc2 := a.Copy().Join(b.Copy().Join(c))
		if !abc1.Equal(abc2) {
			return false
		}
		return a.Copy().Join(a).Equal(a)
	})
}

func TestPropJoinDoesNotMutateArgument(t *testing.T) {
	qc(t, "⊔ argument untouched", func(a, b Clock) bool {
		b0 := b.Copy()
		_ = a.Copy().Join(b)
		return b.Equal(b0)
	})
}

func TestPropBottomIsIdentity(t *testing.T) {
	qc(t, "⊥ identity", func(a Clock) bool {
		var bot Clock
		return a.Copy().Join(bot).Equal(a) && bot.Leq(a)
	})
}

func TestPropLeqZeroingMatchesWithZero(t *testing.T) {
	qc(t, "LeqZeroing ≡ WithZero+Leq", func(a, b Clock) bool {
		for skip := 0; skip < 4; skip++ {
			if a.LeqZeroing(b, skip) != a.WithZero(skip).Leq(b) {
				return false
			}
		}
		return true
	})
}

func TestPropJoinZeroingMatchesWithZero(t *testing.T) {
	qc(t, "JoinZeroing ≡ Join(WithZero)", func(a, b Clock) bool {
		for skip := 0; skip < 4; skip++ {
			x := a.Copy().JoinZeroing(b, skip)
			y := a.Copy().Join(b.WithZero(skip))
			if !x.Equal(y) {
				return false
			}
		}
		return true
	})
}

func TestPropConcurrentSymmetric(t *testing.T) {
	qc(t, "Concurrent symmetric", func(a, b Clock) bool {
		return a.Concurrent(b) == b.Concurrent(a)
	})
}

func TestPropLtStrict(t *testing.T) {
	qc(t, "Lt strict", func(a, b Clock) bool {
		j := a.Copy().Join(b).Inc(0)
		return a.Lt(j) && !j.Lt(a) && !a.Lt(a)
	})
}
