// Package vc implements vector clocks (vector times) as used by the
// AeroDrome conflict-serializability checker.
//
// A vector time is a map from thread indices to non-negative integer local
// times, represented densely as a slice. Clocks grow on demand: indices
// beyond the current length are implicitly zero, which lets checkers handle
// dynamic thread creation without knowing the final thread count up front.
//
// The operations mirror the paper's notation:
//
//	V1 ⊑ V2   → V1.Leq(V2)
//	V1 ⊔ V2   → V1.Join(V2)        (in place on the receiver)
//	V[c/t]    → V.WithEntry(t, c)  (copying) or V.Set(t, c) (mutating)
//	⊥         → New(0) or the zero value Clock(nil)
//	⊥[1/t]    → Unit(t)
package vc

import (
	"fmt"
	"strings"
)

// Time is the integer local-time component of a vector clock. Events in a
// trace increment per-thread components only at transaction-begin events, so
// even multi-billion event traces fit comfortably in 64 bits (the paper's
// "single word" assumption).
type Time = int64

// Clock is a vector time. The zero value (nil) is ⊥, the minimum vector
// time. Index i holds the local time of thread i; indices beyond len are
// implicitly zero.
type Clock []Time

// New returns a fresh all-zero clock with capacity for n threads.
func New(n int) Clock {
	if n <= 0 {
		return nil
	}
	return make(Clock, n)
}

// Unit returns ⊥[1/t]: the clock that is zero everywhere except component t,
// which is 1. This is the initial clock of thread t in AeroDrome. The
// backing array is pre-sized: thread clocks immediately absorb other
// threads' components, so allocating room for them up front avoids the
// grow-reallocate churn of long traces.
func Unit(t int) Clock {
	c := make(Clock, t+1, sizeCap(t+1))
	c[t] = 1
	return c
}

// sizeCap rounds a requested length up to a reallocation-friendly
// capacity: at least minCap, then the next power of two.
func sizeCap(n int) int {
	c := minCap
	for c < n {
		c <<= 1
	}
	return c
}

// minCap is the smallest backing-array capacity Grow and Unit allocate.
const minCap = 8

// At returns component t, treating missing components as zero.
func (c Clock) At(t int) Time {
	if t < 0 || t >= len(c) {
		return 0
	}
	return c[t]
}

// Set assigns component t, growing the clock as needed, and returns the
// possibly reallocated clock (append semantics, like the built-in append).
func (c Clock) Set(t int, v Time) Clock {
	c = c.Grow(t + 1)
	c[t] = v
	return c
}

// WithEntry returns a copy of c with component t replaced by v. This is the
// paper's V[v/t] operation.
func (c Clock) WithEntry(t int, v Time) Clock {
	n := len(c)
	if t+1 > n {
		n = t + 1
	}
	out := make(Clock, n)
	copy(out, c)
	out[t] = v
	return out
}

// WithZero returns a copy of c with component t zeroed: V[0/t].
func (c Clock) WithZero(t int) Clock {
	out := make(Clock, len(c))
	copy(out, c)
	if t >= 0 && t < len(out) {
		out[t] = 0
	}
	return out
}

// Copy returns an independent copy of c.
func (c Clock) Copy() Clock {
	if c == nil {
		return nil
	}
	out := make(Clock, len(c))
	copy(out, c)
	return out
}

// CopyInto overwrites dst with the contents of c, reusing dst's storage when
// possible, and returns the resulting clock.
func (c Clock) CopyInto(dst Clock) Clock {
	dst = dst[:0]
	return append(dst, c...)
}

// Leq reports whether c ⊑ d, i.e. every component of c is ≤ the matching
// component of d (missing components are zero).
func (c Clock) Leq(d Clock) bool {
	for i, v := range c {
		if v == 0 {
			continue
		}
		if i >= len(d) || v > d[i] {
			return false
		}
	}
	return true
}

// LeqZeroing reports whether c[0/skip] ⊑ d, i.e. Leq ignoring component
// skip of c. Used by the optimized engine's ȒR check and the incoming-edge
// test without materializing a zeroed copy.
func (c Clock) LeqZeroing(d Clock, skip int) bool {
	for i, v := range c {
		if v == 0 || i == skip {
			continue
		}
		if i >= len(d) || v > d[i] {
			return false
		}
	}
	return true
}

// Join sets c to c ⊔ d component-wise and returns the possibly reallocated
// clock. d is not modified.
func (c Clock) Join(d Clock) Clock {
	if len(d) > len(c) {
		c = c.Grow(len(d))
	}
	for i, v := range d {
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

// JoinZeroing sets c to c ⊔ d[0/skip] and returns the possibly reallocated
// clock: a join that ignores component skip of d. This implements the
// ȒRx := ȒRx ⊔ C_t[0/t] updates of Algorithms 2 and 3 without allocating.
func (c Clock) JoinZeroing(d Clock, skip int) Clock {
	if len(d) > len(c) {
		c = c.Grow(len(d))
	}
	for i, v := range d {
		if i == skip {
			continue
		}
		if v > c[i] {
			c[i] = v
		}
	}
	return c
}

// Equal reports whether c and d denote the same vector time (missing
// components are zero).
func (c Clock) Equal(d Clock) bool {
	return c.Leq(d) && d.Leq(c)
}

// EqualZeroing reports whether c[0/skip] and d[0/skip] denote the same
// vector time. Used by the optimized engine's hasIncomingEdge test
// (C⊲_t[0/t] ≠ C_t[0/t]).
func (c Clock) EqualZeroing(d Clock, skip int) bool {
	return c.LeqZeroing(d, skip) && d.LeqZeroing(c, skip)
}

// Lt reports whether c ⊑ d and c ≠ d (strictly before).
func (c Clock) Lt(d Clock) bool {
	return c.Leq(d) && !d.Leq(c)
}

// Concurrent reports whether neither c ⊑ d nor d ⊑ c.
func (c Clock) Concurrent(d Clock) bool {
	return !c.Leq(d) && !d.Leq(c)
}

// Inc increments component t by one, growing the clock as needed, and
// returns the possibly reallocated clock.
func (c Clock) Inc(t int) Clock {
	c = c.Grow(t + 1)
	c[t]++
	return c
}

// IsZero reports whether c is ⊥ (all components zero).
func (c Clock) IsZero() bool {
	for _, v := range c {
		if v != 0 {
			return false
		}
	}
	return true
}

// Dim returns the number of explicitly stored components.
func (c Clock) Dim() int { return len(c) }

// Grow extends c with zeros so that len(c) ≥ n, reallocating at most once
// (and to a power-of-two capacity, so repeated one-component growth does
// not reallocate per call). Slices resliced within capacity are explicitly
// zeroed: CopyInto shrinks via c[:0], which can leave stale values in the
// backing array.
func (c Clock) Grow(n int) Clock {
	if n <= len(c) {
		return c
	}
	if n <= cap(c) {
		d := c[:n]
		for i := len(c); i < n; i++ {
			d[i] = 0
		}
		return d
	}
	d := make(Clock, n, sizeCap(n))
	copy(d, c)
	return d
}

// String renders the clock in the paper's ⟨a,b,c⟩ notation. Trailing zero
// components are preserved so the dimension is visible.
func (c Clock) String() string {
	var sb strings.Builder
	sb.WriteString("⟨")
	for i, v := range c {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("⟩")
	return sb.String()
}

// Truncated renders the clock padded or truncated to exactly dim components,
// matching the fixed-width presentation of the paper's figures.
func (c Clock) Truncated(dim int) string {
	var sb strings.Builder
	sb.WriteString("⟨")
	for i := 0; i < dim; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "%d", c.At(i))
	}
	sb.WriteString("⟩")
	return sb.String()
}
