package vc

import (
	"fmt"
	"testing"
)

func benchClocks(dim int) (Clock, Clock) {
	a, b := New(dim), New(dim)
	for i := 0; i < dim; i++ {
		a[i] = Time(i * 3 % 17)
		b[i] = Time(i * 5 % 13)
	}
	return a, b
}

func BenchmarkLeq(b *testing.B) {
	for _, dim := range []int{4, 16, 64} {
		x, y := benchClocks(dim)
		y = y.Join(x) // make the comparison succeed (worst case scans all)
		b.Run(sizeName(dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !x.Leq(y) {
					b.Fatal("unexpected")
				}
			}
		})
	}
}

func BenchmarkJoin(b *testing.B) {
	for _, dim := range []int{4, 16, 64} {
		x, y := benchClocks(dim)
		b.Run(sizeName(dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x = x.Join(y)
			}
		})
	}
}

func BenchmarkJoinZeroing(b *testing.B) {
	for _, dim := range []int{4, 16, 64} {
		x, y := benchClocks(dim)
		b.Run(sizeName(dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x = x.JoinZeroing(y, 2)
			}
		})
	}
}

func BenchmarkCopyInto(b *testing.B) {
	for _, dim := range []int{4, 16, 64} {
		x, _ := benchClocks(dim)
		dst := New(dim)
		b.Run(sizeName(dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = x.CopyInto(dst)
			}
		})
	}
}

func sizeName(dim int) string {
	return fmt.Sprintf("dim%d", dim)
}

func BenchmarkLeqZeroing(b *testing.B) {
	for _, dim := range []int{4, 16, 64, 256} {
		x, y := benchClocks(dim)
		y = y.Join(x) // worst case: the zeroing comparison scans everything
		b.Run(sizeName(dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !x.LeqZeroing(y, 2) {
					b.Fatal("unexpected")
				}
			}
		})
	}
}

func BenchmarkGrow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var c Clock
		for n := 1; n <= 256; n <<= 1 {
			c = c.Grow(n)
		}
	}
}
