package vc

import (
	"math/rand"
	"testing"
)

func TestSparseBasics(t *testing.T) {
	var s Sparse
	if s.At(3) != 0 || s.Len() != 0 || s.IsDense() {
		t.Fatalf("zero value not ⊥: %v", &s)
	}
	s.JoinComponent(3, 7)
	s.JoinComponent(3, 5) // lower: no-op
	s.JoinComponent(0, 1)
	s.JoinComponent(5, 0) // zero: no-op
	if s.At(3) != 7 || s.At(0) != 1 || s.At(5) != 0 {
		t.Fatalf("components: %v", &s)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Flat().Equal(Clock{1, 0, 0, 7}) {
		t.Fatalf("Flat = %v", s.Flat())
	}
}

func TestSparseJoinZeroing(t *testing.T) {
	var s Sparse
	s.JoinZeroing(Clock{4, 0, 2, 9}, 2)
	if s.At(0) != 4 || s.At(2) != 0 || s.At(3) != 9 {
		t.Fatalf("zeroing join: %v", &s)
	}
	s.JoinZeroing(Clock{1, 6, 5}, -1)
	if s.At(0) != 4 || s.At(1) != 6 || s.At(2) != 5 {
		t.Fatalf("second join: %v", &s)
	}
}

func TestSparsePromotion(t *testing.T) {
	var s Sparse
	for i := 0; i < PromoteThreshold; i++ {
		s.JoinComponent(i*3, Time(i+1))
	}
	if s.IsDense() {
		t.Fatalf("promoted too early at %d entries", s.Len())
	}
	s.JoinComponent(100, 42)
	if !s.IsDense() {
		t.Fatalf("not promoted past %d entries", PromoteThreshold)
	}
	for i := 0; i < PromoteThreshold; i++ {
		if s.At(i*3) != Time(i+1) {
			t.Fatalf("entry %d lost in promotion: %v", i*3, &s)
		}
	}
	if s.At(100) != 42 {
		t.Fatalf("post-promotion entry: %v", &s)
	}
}

// TestSparseAgainstDense drives random single-component and zeroing joins
// through Sparse and a dense Clock in lockstep.
func TestSparseAgainstDense(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		r := rand.New(rand.NewSource(int64(9000 + iter)))
		var s Sparse
		var d Clock
		for step := 0; step < 120; step++ {
			switch r.Intn(3) {
			case 0:
				tid, v := r.Intn(40), Time(r.Intn(50))
				s.JoinComponent(tid, v)
				if v > d.At(tid) {
					d = d.Set(tid, v)
				}
			case 1:
				src := make(Clock, r.Intn(20))
				for i := range src {
					src[i] = Time(r.Intn(30))
				}
				skip := r.Intn(len(src)+1) - 1
				s.JoinZeroing(src, skip)
				d = d.JoinZeroing(src, skip)
			case 2:
				tid := r.Intn(45)
				if s.At(tid) != d.At(tid) {
					t.Fatalf("iter %d step %d: At(%d) = %d, dense %d", iter, step, tid, s.At(tid), d.At(tid))
				}
			}
		}
		if !s.Flat().Equal(d) {
			t.Fatalf("iter %d: sparse %v dense %v", iter, s.Flat(), d)
		}
	}
}
