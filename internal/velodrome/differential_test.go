package velodrome_test

// The cross-checker differential suite: for thousands of seeded random
// well-formed traces, every checker in the repository must agree on the
// verdict, and the documented detection-point orderings must hold:
//
//	index(velodrome-dfs) == index(velodrome-pk)       (same edge insertion)
//	index(basic)        == index(readopt)             (exact equivalence)
//	index(optimized)    == index(treeclock)           (representation-invariant)
//	index(velodrome)    ≤ index(optimized) ≤ index(basic)
//
// Velodrome detects at cycle formation (the earliest sound point);
// Optimized's lazy live-clock consults can fire before Basic but never
// before the cycle exists. On small traces the verdict is additionally
// pinned to the reference oracle (internal/serial), which is itself
// cross-validated against exhaustive permutation search.

import (
	"fmt"
	"math/rand"
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/serial"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
)

type result struct {
	name  string
	viol  bool
	index int64
}

func runAllCheckers(tr *trace.Trace) []result {
	engines := []core.Engine{
		core.NewBasic(),
		core.NewReadOpt(),
		core.NewOptimized(),
		velodrome.New(),
		velodrome.New(velodrome.WithStrategy("pearce-kelly")),
		core.NewOptimizedTree(),
	}
	out := make([]result, len(engines))
	for i, eng := range engines {
		v, _ := core.Run(eng, tr.Cursor())
		out[i] = result{name: eng.Name(), viol: v != nil, index: -1}
		if v != nil {
			out[i].index = v.Index
		}
	}
	return out
}

func describe(tr *trace.Trace) string {
	s := ""
	for i, e := range tr.Events {
		s += fmt.Sprintf("%3d %s\n", i, e)
	}
	return s
}

func checkAgreement(t *testing.T, tr *trace.Trace, iter int, withOracle bool) {
	t.Helper()
	rs := runAllCheckers(tr)
	basic, readopt, opt, vdfs, vpk, optTree := rs[0], rs[1], rs[2], rs[3], rs[4], rs[5]

	for _, r := range rs[1:] {
		if r.viol != basic.viol {
			t.Fatalf("iter %d: verdict mismatch: %s=%v %s=%v\n%s",
				iter, basic.name, basic.viol, r.name, r.viol, describe(tr))
		}
	}
	if withOracle {
		rep := serial.Check(tr)
		if rep.Serializable == basic.viol {
			t.Fatalf("iter %d: oracle says serializable=%v but %s violation=%v\n%s",
				iter, rep.Serializable, basic.name, basic.viol, describe(tr))
		}
	}
	if !basic.viol {
		return
	}
	if basic.index != readopt.index {
		t.Fatalf("iter %d: basic index %d != readopt index %d\n%s",
			iter, basic.index, readopt.index, describe(tr))
	}
	if opt.index != optTree.index {
		t.Fatalf("iter %d: optimized index %d != treeclock index %d\n%s",
			iter, opt.index, optTree.index, describe(tr))
	}
	if vdfs.index != vpk.index {
		t.Fatalf("iter %d: velodrome dfs %d != pk %d\n%s",
			iter, vdfs.index, vpk.index, describe(tr))
	}
	if opt.index > basic.index {
		t.Fatalf("iter %d: optimized index %d later than basic %d\n%s",
			iter, opt.index, basic.index, describe(tr))
	}
	if vdfs.index > opt.index {
		t.Fatalf("iter %d: velodrome index %d later than optimized %d\n%s",
			iter, vdfs.index, opt.index, describe(tr))
	}
}

func TestDifferentialSmallTracesWithOracle(t *testing.T) {
	iters := 2500
	if testing.Short() {
		iters = 400
	}
	r := rand.New(rand.NewSource(2020))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 1 + r.Intn(4),
			Vars:    1 + r.Intn(3),
			Locks:   1 + r.Intn(2),
			Steps:   4 + r.Intn(40),
			TxnBias: r.Intn(8),
			NoFork:  r.Intn(3) == 0,
		})
		checkAgreement(t, tr, iter, true)
	}
}

func TestDifferentialMediumTraces(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	r := rand.New(rand.NewSource(777))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 2 + r.Intn(6),
			Vars:    1 + r.Intn(6),
			Locks:   1 + r.Intn(3),
			Steps:   100 + r.Intn(400),
			TxnBias: r.Intn(10),
		})
		// The O(n²) oracle is still fine at this size.
		checkAgreement(t, tr, iter, tr.Len() <= 300)
	}
}

func TestDifferentialContendedTraces(t *testing.T) {
	// Few variables and high transaction bias: nearly every access
	// conflicts, so violations form quickly and exercise the detection
	// paths rather than the accept paths.
	iters := 800
	if testing.Short() {
		iters = 100
	}
	r := rand.New(rand.NewSource(31337))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 2 + r.Intn(3),
			Vars:    1,
			Locks:   1,
			Steps:   6 + r.Intn(60),
			TxnBias: 6,
		})
		checkAgreement(t, tr, iter, tr.Len() <= 200)
	}
}

func TestDifferentialForkJoinHeavy(t *testing.T) {
	iters := 600
	if testing.Short() {
		iters = 80
	}
	r := rand.New(rand.NewSource(909))
	for iter := 0; iter < iters; iter++ {
		tr := testutil.RandomTrace(r, testutil.GenOpts{
			Threads: 3 + r.Intn(5),
			Vars:    1 + r.Intn(2),
			Locks:   1,
			Steps:   30 + r.Intn(100),
			TxnBias: 4,
		})
		checkAgreement(t, tr, iter, tr.Len() <= 250)
	}
}
