// Package velodrome implements the Velodrome algorithm (Flanagan, Freund,
// Yi — PLDI 2008) for dynamically checking conflict serializability, as the
// baseline the paper evaluates AeroDrome against.
//
// Velodrome maintains a directed graph whose nodes are the transactions
// observed so far (including unary transactions for events outside atomic
// blocks) and whose edges are the ⋖Txn orderings discovered as events are
// processed: program order between transactions of the same thread,
// write→read / access→write conflicts on shared variables, release→acquire
// on locks, and fork/join edges. A violation is declared as soon as adding
// an edge closes a cycle; the cycle check runs per inserted edge, which is
// what makes the algorithm worst-case cubic in the trace length.
//
// The garbage-collection optimization of the original paper is implemented:
// a completed transaction with no incoming edges can never participate in a
// cycle and is deleted; deletion cascades, and later edges whose source was
// deleted are skipped (they cannot close a cycle either).
//
// The cycle-detection strategy is pluggable (internal/graph): per-edge DFS,
// matching the paper's description, or a Pearce–Kelly dynamic topological
// order as an ablation.
package velodrome

import (
	"aerodrome/internal/core"
	"aerodrome/internal/graph"
	"aerodrome/internal/trace"
)

const noNode = graph.NodeID(-1)

type veloThread struct {
	depth   int
	cur     graph.NodeID // active outermost transaction, or noNode
	last    graph.NodeID // most recent transaction (for program order), or noNode
	pending graph.NodeID // transaction that forked this thread, or noNode
	init    bool
}

type veloVar struct {
	lastWrite graph.NodeID
	lastReads []graph.NodeID // per thread; noNode when absent
}

type veloLock struct {
	lastRel graph.NodeID
}

// Checker is a streaming Velodrome analysis. It implements core.Engine so
// that the differential tests and the benchmark harness can drive all
// checkers uniformly.
type Checker struct {
	det       graph.Detector
	threads   []veloThread
	vars      []veloVar
	locks     []veloLock
	completed map[graph.NodeID]bool
	nextNode  graph.NodeID
	txns      int64
	n         int64
	viol      *core.Violation
	witness   graph.Cycle
}

// Option configures a Checker.
type Option func(*Checker)

// WithStrategy selects the cycle-detection strategy: "dfs" (default, as in
// the paper) or "pearce-kelly".
func WithStrategy(name string) Option {
	return func(c *Checker) { c.det = graph.New(name) }
}

// New returns a fresh Velodrome checker.
func New(opts ...Option) *Checker {
	c := &Checker{
		det:       graph.NewDFS(),
		completed: map[graph.NodeID]bool{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name implements core.Engine.
func (c *Checker) Name() string { return "velodrome-" + c.det.Name() }

// Processed implements core.Engine.
func (c *Checker) Processed() int64 { return c.n }

// Violation implements core.Engine.
func (c *Checker) Violation() *core.Violation { return c.viol }

// Witness returns the transaction cycle that triggered the violation, if
// any (node IDs are transaction creation indices).
func (c *Checker) Witness() graph.Cycle { return c.witness }

// Transactions returns the number of transaction nodes ever created
// (blocks and unary transactions).
func (c *Checker) Transactions() int64 { return c.txns }

// GraphSize returns the current and maximum number of live transaction
// nodes, the paper's measure of why Velodrome's per-edge cycle checks
// degrade on long traces.
func (c *Checker) GraphSize() (live, max int) {
	return c.det.NodeCount(), c.det.MaxNodeCount()
}

func (c *Checker) ensureThread(t int) *veloThread {
	for len(c.threads) <= t {
		c.threads = append(c.threads, veloThread{cur: noNode, last: noNode, pending: noNode})
	}
	ts := &c.threads[t]
	ts.init = true
	return ts
}

func (c *Checker) ensureVar(x int) *veloVar {
	for len(c.vars) <= x {
		c.vars = append(c.vars, veloVar{lastWrite: noNode})
	}
	return &c.vars[x]
}

func (c *Checker) ensureLock(l int) *veloLock {
	for len(c.locks) <= l {
		c.locks = append(c.locks, veloLock{lastRel: noNode})
	}
	return &c.locks[l]
}

// newTxn creates a transaction node for thread t, wiring the program-order
// edge from the thread's previous transaction and a pending fork edge.
func (c *Checker) newTxn(t int, e trace.Event) graph.NodeID {
	id := c.nextNode
	c.nextNode++
	c.txns++
	c.det.AddNode(id)
	ts := &c.threads[t]
	if ts.last != noNode {
		c.addEdge(ts.last, id, e, trace.ThreadID(t), core.CheckEnd)
	}
	if ts.pending != noNode {
		c.addEdge(ts.pending, id, e, trace.ThreadID(t), core.CheckEnd)
		ts.pending = noNode
	}
	ts.last = id
	return id
}

// addEdge inserts src→dst unless src is gone (deleted by GC — such edges
// cannot close a cycle) or src == dst. A returned cycle latches a
// violation.
func (c *Checker) addEdge(src, dst graph.NodeID, e trace.Event, at trace.ThreadID, check core.CheckKind) bool {
	if c.viol != nil {
		return true
	}
	if src == dst || src == noNode || !c.det.HasNode(src) {
		return false
	}
	if cyc := c.det.AddEdge(src, dst); cyc != nil {
		c.witness = cyc
		c.viol = &core.Violation{
			Index: c.n, Event: e, ActiveThread: at,
			Check: check, Algorithm: c.Name(),
		}
		return true
	}
	return false
}

// nodeFor returns the transaction node the event belongs to, creating a
// unary transaction when the thread has no active block. The second result
// reports whether the node is a unary transaction (completes immediately).
func (c *Checker) nodeFor(t int, e trace.Event) (graph.NodeID, bool) {
	ts := &c.threads[t]
	if ts.depth > 0 {
		return ts.cur, false
	}
	return c.newTxn(t, e), true
}

// complete marks a transaction finished and garbage-collects it (and,
// transitively, its successors) if it has no incoming edges.
func (c *Checker) complete(id graph.NodeID) {
	c.completed[id] = true
	c.collect(id)
}

func (c *Checker) collect(id graph.NodeID) {
	queue := []graph.NodeID{id}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !c.det.HasNode(n) || !c.completed[n] || c.det.InDegree(n) != 0 {
			continue
		}
		succs := c.det.OutNeighbors(n)
		c.det.RemoveNode(n)
		delete(c.completed, n)
		queue = append(queue, succs...)
	}
}

// Process implements core.Engine.
func (c *Checker) Process(e trace.Event) *core.Violation {
	if c.viol != nil {
		return c.viol
	}
	t := int(e.Thread)
	ts := c.ensureThread(t)

	switch e.Kind {
	case trace.Begin:
		if ts.depth == 0 {
			ts.cur = c.newTxn(t, e)
		}
		ts.depth++

	case trace.End:
		ts.depth--
		if ts.depth == 0 {
			id := ts.cur
			ts.cur = noNode
			c.complete(id)
		}

	case trace.Read:
		v := c.ensureVar(int(e.Target))
		node, unary := c.nodeFor(t, e)
		c.addEdge(v.lastWrite, node, e, e.Thread, core.CheckRead)
		for len(v.lastReads) <= t {
			v.lastReads = append(v.lastReads, noNode)
		}
		v.lastReads[t] = node
		if unary && c.viol == nil {
			c.complete(node)
		}

	case trace.Write:
		v := c.ensureVar(int(e.Target))
		node, unary := c.nodeFor(t, e)
		c.addEdge(v.lastWrite, node, e, e.Thread, core.CheckWriteWrite)
		for _, r := range v.lastReads {
			if c.addEdge(r, node, e, e.Thread, core.CheckWriteRead) {
				break
			}
		}
		v.lastWrite = node
		if unary && c.viol == nil {
			c.complete(node)
		}

	case trace.Acquire:
		l := c.ensureLock(int(e.Target))
		node, unary := c.nodeFor(t, e)
		c.addEdge(l.lastRel, node, e, e.Thread, core.CheckAcquire)
		if unary && c.viol == nil {
			c.complete(node)
		}

	case trace.Release:
		l := c.ensureLock(int(e.Target))
		node, unary := c.nodeFor(t, e)
		l.lastRel = node
		if unary {
			c.complete(node)
		}

	case trace.Fork:
		node, unary := c.nodeFor(t, e)
		u := c.ensureThread(int(e.Target))
		u.pending = node
		if unary {
			// The fork transaction must stay alive until the child's first
			// transaction consumes the pending edge; completing it is still
			// safe because GC only deletes nodes with no incoming edges and
			// pending-edge sources are checked for liveness at wiring time.
			c.complete(node)
		}

	case trace.Join:
		node, unary := c.nodeFor(t, e)
		u := c.ensureThread(int(e.Target))
		c.addEdge(u.last, node, e, e.Thread, core.CheckJoin)
		if unary && c.viol == nil {
			c.complete(node)
		}
	}
	c.n++
	if c.viol != nil {
		return c.viol
	}
	return nil
}

var _ core.Engine = (*Checker)(nil)
