package velodrome

import (
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

func TestPaperTraces(t *testing.T) {
	cases := []struct {
		name  string
		tr    *trace.Trace
		viol  bool
		index int64 // expected detection index (cycle formation), -1 if none
	}{
		{"rho1", testutil.Rho1(), false, -1},
		{"rho2", testutil.Rho2(), true, 5},
		{"rho3", testutil.Rho3(), true, 5}, // detected at e6, before AeroDrome's e7
		{"rho4", testutil.Rho4(), true, 10},
	}
	for _, c := range cases {
		for _, strategy := range []string{"dfs", "pearce-kelly"} {
			v := New(WithStrategy(strategy))
			viol, _ := core.Run(v, c.tr.Cursor())
			if (viol != nil) != c.viol {
				t.Errorf("%s/%s: violation=%v want %v", c.name, strategy, viol != nil, c.viol)
				continue
			}
			if viol != nil && viol.Index != c.index {
				t.Errorf("%s/%s: index=%d want %d", c.name, strategy, viol.Index, c.index)
			}
			if viol != nil {
				w := New(WithStrategy(strategy))
				core.Run(w, c.tr.Cursor())
				if len(w.Witness()) < 2 {
					t.Errorf("%s/%s: witness too short: %v", c.name, strategy, w.Witness())
				}
			}
		}
	}
}

func TestTruncatedRho3Detected(t *testing.T) {
	// Velodrome detects the ρ3 cycle at e6 even when both transactions are
	// still active — the semantic difference with AeroDrome's Theorem 3
	// (see core.TestTruncatedRho3NoReport).
	full := testutil.Rho3()
	prefix := &trace.Trace{}
	for _, e := range full.Events[:6] {
		prefix.Append(e)
	}
	v := New()
	viol, _ := core.Run(v, prefix.Cursor())
	if viol == nil {
		t.Fatalf("Velodrome must detect the cycle among two active transactions")
	}
}

func TestGarbageCollectionChain(t *testing.T) {
	// A long serial chain of transactions, each conflicting only with its
	// predecessor: GC must keep the graph at O(1) size (nodes without
	// incoming edges are deleted once completed, cascading down the chain).
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	threads := []trace.ThreadID{t1, t2}
	for i := 0; i < 200; i++ {
		th := threads[i%2]
		b.Begin(th).Read(th, x).Write(th, x).End(th)
	}
	v := New()
	viol, _ := core.Run(v, b.Build().Cursor())
	if viol != nil {
		t.Fatalf("serial chain is serializable: %v", viol)
	}
	live, max := v.GraphSize()
	if live > 4 {
		t.Fatalf("GC failed: %d live nodes at end of chain", live)
	}
	if max > 8 {
		t.Fatalf("GC failed: graph high-water mark %d on a chain", max)
	}
	if v.Transactions() != 200 {
		t.Fatalf("Transactions = %d, want 200", v.Transactions())
	}
}

func TestHubRetainsGraph(t *testing.T) {
	// A long-lived active transaction writes a hub variable; every worker
	// transaction reads it, acquiring an incoming edge from the still-active
	// hub — nothing can be collected and the graph grows linearly. This is
	// the dynamics behind the paper's Table 1 rows where Velodrome times
	// out (avrora, sunflow, ...).
	b := trace.NewBuilder()
	hub, w1, w2 := b.Thread("hub"), b.Thread("w1"), b.Thread("w2")
	h := b.Var("h")
	b.Begin(hub).Write(hub, h)
	workers := []trace.ThreadID{w1, w2}
	const n = 100
	for i := 0; i < n; i++ {
		th := workers[i%2]
		y := b.Var("y" + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26)))
		b.Begin(th).Read(th, h).Write(th, y).End(th)
	}
	b.End(hub)
	v := New()
	viol, _ := core.Run(v, b.Build().Cursor())
	if viol != nil {
		t.Fatalf("hub workload is serializable: %v", viol)
	}
	_, max := v.GraphSize()
	if max < n {
		t.Fatalf("hub graph should retain ≥%d nodes, high-water was %d", n, max)
	}
}

func TestUnaryTransactionChurnCollected(t *testing.T) {
	// Unary events complete immediately; with no incoming edges they are
	// collected on the spot and the graph stays tiny.
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	for i := 0; i < 500; i++ {
		b.Write(t1, x)
	}
	v := New()
	if viol, _ := core.Run(v, b.Build().Cursor()); viol != nil {
		t.Fatalf("unexpected violation: %v", viol)
	}
	if _, max := v.GraphSize(); max > 4 {
		t.Fatalf("unary churn not collected: high-water %d", max)
	}
}

func TestForkJoinEdges(t *testing.T) {
	// Join inside the forking transaction closes a cycle through the child.
	b := trace.NewBuilder()
	t1, t2 := b.Thread("t1"), b.Thread("t2")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).Fork(t1, t2).
		Begin(t2).Read(t2, x).End(t2).
		Join(t1, t2).End(t1)
	v := New()
	viol, _ := core.Run(v, b.Build().Cursor())
	if viol == nil {
		t.Fatalf("fork/join cycle must be detected")
	}
	if viol.Check != core.CheckJoin {
		t.Fatalf("check = %v, want join", viol.Check)
	}
}

func TestNameAndStats(t *testing.T) {
	v := New()
	if v.Name() != "velodrome-dfs" {
		t.Fatalf("Name = %q", v.Name())
	}
	pk := New(WithStrategy("pk"))
	if pk.Name() != "velodrome-pearce-kelly" {
		t.Fatalf("Name = %q", pk.Name())
	}
	b := trace.NewBuilder()
	t1 := b.Thread("t1")
	x := b.Var("x")
	b.Begin(t1).Write(t1, x).End(t1)
	tr := b.Build()
	core.Run(v, tr.Cursor())
	if v.Processed() != 3 {
		t.Fatalf("Processed = %d", v.Processed())
	}
	if v.Violation() != nil || v.Witness() != nil {
		t.Fatalf("no violation expected")
	}
}

func TestLatching(t *testing.T) {
	v := New()
	tr := testutil.Rho2()
	viol, _ := core.Run(v, tr.Cursor())
	if viol == nil {
		t.Fatalf("expected violation")
	}
	again := v.Process(trace.Event{Thread: 0, Kind: trace.Read, Target: 0})
	if again != viol {
		t.Fatalf("checker must latch its violation")
	}
	if v.Processed() != viol.Index+1 {
		t.Fatalf("Processed should stop at the violation: %d", v.Processed())
	}
}
