package workload

// This file encodes the paper's evaluation rows (Tables 1 and 2) as
// workload configurations. Per-row thread counts and (where feasible) lock
// counts match the paper's columns; event and variable counts are scaled
// down by the harness cap, because the originals (up to 2.8B events / 181M
// variables) come from hours-long RoadRunner logs. The *dynamics* of each
// row — transaction retention in Velodrome's graph, absorption frequency,
// violation position, verdict — are what the configurations preserve; see
// DESIGN.md §5 for the substitution rationale.

// PaperRow pairs a workload configuration with the paper's reported
// numbers, so the harness can print paper-vs-measured tables.
type PaperRow struct {
	Config Config
	// Paper columns (Table 1/2 of the paper).
	PaperEvents  string
	PaperTxns    string
	PaperAtomic  bool // true = ✓ (no violation)
	PaperVelo    string
	PaperAero    string
	PaperSpeedup string
	// Table is 1 or 2.
	Table int
}

// cap limits v to the harness event budget while keeping small traces at
// their natural size.
func capEvents(v, budget int64) int64 {
	if v < budget {
		return v
	}
	return budget
}

func capInt(v, hi int) int {
	if v < hi {
		return v
	}
	return hi
}

// Table1 returns the 14 rows of the paper's Table 1 (atomicity
// specifications from DoubleChecker), scaled to at most maxEvents events
// and maxVars variables per row.
func Table1(maxEvents int64, maxVars int) []PaperRow {
	if maxEvents <= 0 {
		maxEvents = 2_000_000
	}
	if maxVars <= 0 {
		maxVars = 20_000
	}
	rows := []PaperRow{
		{
			Config: Config{
				Name: "avrora", Threads: 7, Locks: 7,
				Vars: maxVars, Events: capEvents(2_400_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternHub, Inject: ViolationCross,
				InjectAt: 0.55, AbsorbEvery: 4, Seed: 101,
			},
			PaperEvents: "2.4B", PaperTxns: "498M", PaperAtomic: false,
			PaperVelo: "TO", PaperAero: "1.5", PaperSpeedup: ">24000", Table: 1,
		},
		{
			Config: Config{
				Name: "elevator", Threads: 5, Locks: 50,
				Vars: 725, Events: capEvents(280_000, maxEvents),
				OpsPerTxn: 6, Pattern: PatternHub, Inject: ViolationNone,
				AbsorbEvery: 24, Seed: 102,
			},
			PaperEvents: "280K", PaperTxns: "22.6K", PaperAtomic: true,
			PaperVelo: "162", PaperAero: "1.7", PaperSpeedup: "97", Table: 1,
		},
		{
			Config: Config{
				Name: "hedc", Threads: 7, Locks: 13,
				Vars: 1694, Events: capEvents(9_800, maxEvents),
				OpsPerTxn: 5, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.85, Seed: 103,
			},
			PaperEvents: "9.8K", PaperTxns: "84", PaperAtomic: false,
			PaperVelo: "0.07", PaperAero: "0.06", PaperSpeedup: "1.16", Table: 1,
		},
		{
			Config: Config{
				Name: "luindex", Threads: 3, Locks: 65,
				Vars: maxVars, Events: capEvents(570_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.9, Seed: 104,
			},
			PaperEvents: "570M", PaperTxns: "86M", PaperAtomic: false,
			PaperVelo: "581", PaperAero: "674", PaperSpeedup: "0.86", Table: 1,
		},
		{
			Config: Config{
				Name: "lusearch", Threads: 14, Locks: 772,
				Vars: maxVars, Events: capEvents(2_000_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternHub, Inject: ViolationCross,
				InjectAt: 0.55, AbsorbEvery: 4, Seed: 105,
			},
			PaperEvents: "2.0B", PaperTxns: "306M", PaperAtomic: false,
			PaperVelo: "TO", PaperAero: "5.5", PaperSpeedup: ">6545", Table: 1,
		},
		{
			Config: Config{
				Name: "moldyn", Threads: 4, Locks: 1,
				Vars: maxVars, Events: capEvents(1_700_000_000, maxEvents),
				OpsPerTxn: 48, Pattern: PatternHub, Inject: ViolationDelayed,
				InjectAt: 0.7, AbsorbEvery: 4, Seed: 106,
			},
			PaperEvents: "1.7B", PaperTxns: "1.4M", PaperAtomic: false,
			PaperVelo: "TO", PaperAero: "54.9", PaperSpeedup: ">650", Table: 1,
		},
		{
			Config: Config{
				Name: "montecarlo", Threads: 4, Locks: 1,
				Vars: maxVars, Events: capEvents(494_000_000, maxEvents),
				OpsPerTxn: 16, Pattern: PatternHub, Inject: ViolationDelayed,
				InjectAt: 0.4, AbsorbEvery: 4, Seed: 107,
			},
			PaperEvents: "494M", PaperTxns: "812K", PaperAtomic: false,
			PaperVelo: "TO", PaperAero: "0.75", PaperSpeedup: ">48000", Table: 1,
		},
		{
			Config: Config{
				Name: "philo", Threads: 6, Locks: 1,
				Vars: 24, Events: capEvents(613, maxEvents),
				OpsPerTxn: 3, Pattern: PatternSharded, TxnFraction: 0,
				Inject: ViolationNone, Seed: 108,
			},
			PaperEvents: "613", PaperTxns: "0", PaperAtomic: true,
			PaperVelo: "0.02", PaperAero: "0.02", PaperSpeedup: "1", Table: 1,
		},
		{
			Config: Config{
				Name: "pmd", Threads: 13, Locks: 223,
				Vars: maxVars, Events: capEvents(367_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.6, Seed: 109,
			},
			PaperEvents: "367M", PaperTxns: "81M", PaperAtomic: false,
			PaperVelo: "3.1", PaperAero: "3.8", PaperSpeedup: "0.82", Table: 1,
		},
		{
			Config: Config{
				Name: "raytracer", Threads: 4, Locks: 1,
				Vars: maxVars, Events: capEvents(2_800_000_000, maxEvents),
				OpsPerTxn: 8, Pattern: PatternHub, Inject: ViolationNone,
				AbsorbEvery: 8, Seed: 110,
			},
			PaperEvents: "2.8B", PaperTxns: "277M", PaperAtomic: true,
			PaperVelo: "TO", PaperAero: "55m40s", PaperSpeedup: ">10.7", Table: 1,
		},
		{
			Config: Config{
				Name: "sor", Threads: 4, Locks: 2,
				Vars: capInt(10_000, maxVars), Events: capEvents(608_000_000, maxEvents),
				OpsPerTxn: 64, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.9, Seed: 111,
			},
			PaperEvents: "608M", PaperTxns: "637K", PaperAtomic: false,
			PaperVelo: "6.9", PaperAero: "9.6", PaperSpeedup: "0.72", Table: 1,
		},
		{
			Config: Config{
				Name: "sunflow", Threads: 16, Locks: 9,
				Vars: maxVars, Events: capEvents(16_800_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternHub, Inject: ViolationCross,
				InjectAt: 0.35, AbsorbEvery: 16, Seed: 112,
			},
			PaperEvents: "16.8M", PaperTxns: "2.5M", PaperAtomic: false,
			PaperVelo: "67.9", PaperAero: "0.65", PaperSpeedup: "104.5", Table: 1,
		},
		{
			Config: Config{
				Name: "tsp", Threads: 9, Locks: 2,
				Vars: maxVars, Events: capEvents(312_000_000, maxEvents),
				OpsPerTxn: 6, Pattern: PatternSharded, TxnFraction: 0.00002,
				Inject: ViolationCross, InjectAt: 0.85, Seed: 113,
			},
			PaperEvents: "312M", PaperTxns: "9", PaperAtomic: false,
			PaperVelo: "4.2", PaperAero: "5.7", PaperSpeedup: "0.73", Table: 1,
		},
		{
			Config: Config{
				Name: "xalan", Threads: 13, Locks: 1000,
				Vars: maxVars, Events: capEvents(1_000_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.6, Seed: 114,
			},
			PaperEvents: "1.0B", PaperTxns: "214M", PaperAtomic: false,
			PaperVelo: "1.6", PaperAero: "2.0", PaperSpeedup: "0.8", Table: 1,
		},
	}
	return rows
}

// Table2 returns the 7 rows of the paper's Table 2 (naïve all-methods
// atomicity specifications: violations close early, Velodrome's graph stays
// tiny, and the vector-clock overhead is visible).
func Table2(maxEvents int64, maxVars int) []PaperRow {
	if maxEvents <= 0 {
		maxEvents = 2_000_000
	}
	if maxVars <= 0 {
		maxVars = 20_000
	}
	rows := []PaperRow{
		{
			Config: Config{
				Name: "batik", Threads: 7, Locks: 1000,
				Vars: maxVars, Events: capEvents(186_000_000, maxEvents),
				OpsPerTxn: 5, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.75, Seed: 201,
			},
			PaperEvents: "186M", PaperTxns: "15M", PaperAtomic: false,
			PaperVelo: "52.7", PaperAero: "65.5", PaperSpeedup: "0.81", Table: 2,
		},
		{
			Config: Config{
				Name: "crypt", Threads: 7, Locks: 1,
				Vars: maxVars, Events: capEvents(126_000_000, maxEvents),
				OpsPerTxn: 8, Pattern: PatternSharded, TxnFraction: 0.0002,
				Inject: ViolationCross, InjectAt: 0.8, Seed: 202,
			},
			PaperEvents: "126M", PaperTxns: "50", PaperAtomic: false,
			PaperVelo: "92.1", PaperAero: "104", PaperSpeedup: "0.88", Table: 2,
		},
		{
			Config: Config{
				Name: "fop", Threads: 1, Locks: 115,
				Vars: maxVars, Events: capEvents(96_000_000, maxEvents),
				OpsPerTxn: 3, Pattern: PatternChain, Inject: ViolationNone,
				Seed: 203,
			},
			PaperEvents: "96M", PaperTxns: "25M", PaperAtomic: true,
			PaperVelo: "88.3", PaperAero: "92.5", PaperSpeedup: "0.95", Table: 2,
		},
		{
			Config: Config{
				Name: "lufact", Threads: 4, Locks: 1,
				Vars: capInt(10_000, maxVars), Events: capEvents(135_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternChain, Inject: ViolationCross,
				InjectAt: 0.2, Seed: 204,
			},
			PaperEvents: "135M", PaperTxns: "642M", PaperAtomic: false,
			PaperVelo: "2.4", PaperAero: "2.9", PaperSpeedup: "0.82", Table: 2,
		},
		{
			Config: Config{
				Name: "series", Threads: 4, Locks: 1,
				Vars: capInt(20_000, maxVars), Events: capEvents(40_000_000, maxEvents),
				OpsPerTxn: 4, Pattern: PatternHub, Inject: ViolationCross,
				InjectAt: 0.9, AbsorbEvery: 4096, Seed: 205,
			},
			PaperEvents: "40M", PaperTxns: "20M", PaperAtomic: false,
			PaperVelo: "61.0", PaperAero: "15.3", PaperSpeedup: "3.98", Table: 2,
		},
		{
			Config: Config{
				Name: "sparsematmult", Threads: 4, Locks: 1,
				Vars: maxVars, Events: capEvents(726_000_000, maxEvents),
				OpsPerTxn: 10, Pattern: PatternSharded, TxnFraction: 0.0001,
				Inject: ViolationCross, InjectAt: 0.95, Seed: 206,
			},
			PaperEvents: "726M", PaperTxns: "25", PaperAtomic: false,
			PaperVelo: "1210", PaperAero: "1197", PaperSpeedup: "1.01", Table: 2,
		},
		{
			Config: Config{
				Name: "tomcat", Threads: 4, Locks: 1,
				Vars: maxVars, Events: capEvents(726_000_000, maxEvents),
				OpsPerTxn: 10, Pattern: PatternSharded, TxnFraction: 0.0001,
				Inject: ViolationCross, InjectAt: 0.1, Seed: 207,
			},
			PaperEvents: "726M", PaperTxns: "25", PaperAtomic: false,
			PaperVelo: "3.4", PaperAero: "4.5", PaperSpeedup: "0.75", Table: 2,
		},
	}
	return rows
}

// FindRow returns the named row from either table (scaled), or false.
func FindRow(name string, maxEvents int64, maxVars int) (PaperRow, bool) {
	for _, r := range Table1(maxEvents, maxVars) {
		if r.Config.Name == name {
			return r, true
		}
	}
	for _, r := range Table2(maxEvents, maxVars) {
		if r.Config.Name == name {
			return r, true
		}
	}
	return PaperRow{}, false
}
