package workload_test

// Tests for the PR 7 scenario-zoo patterns: producer-consumer, barrier
// phases, lock convoy and quota-thrash. Each shape must generate
// well-formed, conflict-serializable bodies (checked against the O(n²)
// oracle and the Basic engine), stay deterministic per seed, and carry
// every injected-violation mode exactly like the original patterns.

import (
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/serial"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

var shapePatterns = []workload.Pattern{
	workload.PatternProducerConsumer, workload.PatternBarrier,
	workload.PatternConvoy, workload.PatternThrash,
}

func shapeConfig(p workload.Pattern, inj workload.Violation, events int64) workload.Config {
	return workload.Config{
		Name: string(p) + "-" + string(inj), Threads: 6, Vars: 64, Locks: 4,
		Events: events, OpsPerTxn: 3, Pattern: p, Inject: inj,
		InjectAt: 0.7, Seed: 20260808,
	}
}

func TestShapePatternsWellFormedAndSerializable(t *testing.T) {
	for _, p := range shapePatterns {
		p := p
		t.Run(string(p), func(t *testing.T) {
			tr := workload.Generate(shapeConfig(p, workload.ViolationNone, 3_000))
			if err := trace.ValidateStrict(tr); err != nil {
				t.Fatalf("malformed trace: %v", err)
			}
			if rep := serial.Check(tr); !rep.Serializable {
				t.Fatalf("body is not serializable (witness %v)", rep.Witness)
			}
			if v, _ := core.Run(core.NewBasic(), tr.Cursor()); v != nil {
				t.Fatalf("Basic found a violation in a clean body: %v", v)
			}
		})
	}
}

func TestShapePatternsCarryInjections(t *testing.T) {
	for _, p := range shapePatterns {
		for _, inj := range []workload.Violation{
			workload.ViolationCross, workload.ViolationDelayed, workload.ViolationLock,
		} {
			p, inj := p, inj
			t.Run(string(p)+"/"+string(inj), func(t *testing.T) {
				cfg := shapeConfig(p, inj, 2_000)
				tr := workload.Generate(cfg)
				if err := trace.ValidateStrict(tr); err != nil {
					t.Fatalf("malformed: %v", err)
				}
				v, _ := core.Run(core.NewBasic(), tr.Cursor())
				if v == nil {
					t.Fatalf("injected violation not detected")
				}
				if min := int64(float64(cfg.Events) * cfg.InjectAt); v.Index < min {
					t.Fatalf("violation at %d, before injection point %d", v.Index, min)
				}
			})
		}
	}
}

func TestShapePatternsDeterministic(t *testing.T) {
	for _, p := range shapePatterns {
		cfg := shapeConfig(p, workload.ViolationCross, 2_000)
		a, b := workload.Generate(cfg), workload.Generate(cfg)
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ: %d vs %d", p, a.Len(), b.Len())
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("%s: event %d differs: %v vs %v", p, i, a.Events[i], b.Events[i])
			}
		}
	}
}

// TestThrashGrowsVariableSpace pins the adversarial property: the thrash
// pattern's variable footprint grows with the trace instead of being
// bounded by the configured pool.
func TestThrashGrowsVariableSpace(t *testing.T) {
	cfg := shapeConfig(workload.PatternThrash, workload.ViolationNone, 6_000)
	s := trace.ComputeStats(workload.Generate(cfg).Cursor())
	if s.Vars < 10*cfg.Vars {
		t.Fatalf("thrash touched only %d vars for a %d-var pool over %d events",
			s.Vars, cfg.Vars, cfg.Events)
	}
}

// TestConvoyFunnelsThroughHotLock pins the convoy property: (almost)
// every transaction passes through lock 0.
func TestConvoyFunnelsThroughHotLock(t *testing.T) {
	cfg := shapeConfig(workload.PatternConvoy, workload.ViolationNone, 3_000)
	tr := workload.Generate(cfg)
	var acquires, txns int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Acquire:
			if e.Target == 0 {
				acquires++
			}
		case trace.Begin:
			txns++
		}
	}
	if acquires < txns*9/10 {
		t.Fatalf("only %d hot-lock acquires for %d transactions", acquires, txns)
	}
}

// TestShapeDegenerateThreadCountsFallBack mirrors the hub fallback: too
// few threads for the role split degrade to the chain pattern instead of
// generating a broken shape.
func TestShapeDegenerateThreadCountsFallBack(t *testing.T) {
	for _, tc := range []struct {
		p       workload.Pattern
		threads int
	}{
		{workload.PatternProducerConsumer, 2},
		{workload.PatternBarrier, 1},
	} {
		cfg := shapeConfig(tc.p, workload.ViolationNone, 500)
		cfg.Threads = tc.threads
		g := workload.New(cfg)
		if g.Config().Pattern != workload.PatternChain {
			t.Fatalf("%s with %d threads: pattern %q, want chain fallback",
				tc.p, tc.threads, g.Config().Pattern)
		}
		tr := trace.Collect(g)
		if err := trace.ValidateStrict(tr); err != nil {
			t.Fatalf("fallback trace malformed: %v", err)
		}
	}
}
