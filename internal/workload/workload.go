// Package workload generates deterministic, well-formed synthetic traces
// that reproduce the dynamics of the paper's benchmark programs (Tables 1
// and 2). It substitutes for the RoadRunner-instrumented Java benchmarks
// (DaCapo, Java Grande, microbenchmarks) whose logged traces the paper
// analyzes: both checkers consume the same generated stream (same seed ⇒
// identical trace), mirroring the paper's same-logged-trace methodology.
//
// The performance phenomenon under study is controlled by three knobs that
// the patterns expose:
//
//   - retention: how many transactions stay live in Velodrome's graph
//     (long-lived "hub" transactions pin their successors, defeating GC);
//   - absorption: how often a long-lived transaction acquires an incoming
//     edge, which forces cycle checks over the whole retained graph;
//   - violation position: where (if at all) the first real cycle closes.
//
// Generators are streaming (trace.Source): traces far larger than memory
// can be produced and checked online without materialization.
package workload

import (
	"fmt"
	"math/rand"

	"aerodrome/internal/trace"
)

// Pattern selects the sharing structure of the generated trace body.
type Pattern string

const (
	// PatternHub keeps two long-lived transactions open (threads 0 and 1);
	// every worker transaction reads a hub variable and is therefore pinned
	// in Velodrome's graph, which grows linearly, and retained workers
	// periodically hand a fresh variable to the second hub, giving it
	// incoming edges whose cycle checks traverse the whole retained cone
	// (see hubRound). Reproduces the Table 1 rows where Velodrome times out
	// (avrora, lusearch, moldyn, montecarlo, raytracer) or lags by orders
	// of magnitude (elevator, sunflow).
	PatternHub Pattern = "hub"
	// PatternChain passes a token between worker transactions: conflicts
	// always point forward, the graph garbage-collects down to O(threads)
	// nodes and Velodrome stays fast. Reproduces rows with speedup ≈ 1
	// (hedc, luindex, pmd, sor, xalan, and Table 2).
	PatternChain Pattern = "chain"
	// PatternSharded keeps accesses thread-private with all events outside
	// transactions except a configurable fraction. Reproduces philo (no
	// transactions at all) and tsp (312M events, 9 transactions).
	PatternSharded Pattern = "sharded"
	// PatternPhase is a phase-changing workload: a chain burst (densely
	// entangled token passing, the shape that demotes hybrid tree clocks
	// to flat) for the first PhaseSplit of the body, then a sharded steady
	// state (thread-private accesses, where tree clocks win and demoted
	// clocks should re-promote). Exercises the hysteresis levers of the
	// adaptive clock representations.
	PatternPhase Pattern = "phase"
	// PatternProducerConsumer splits the workers into producers and
	// consumers over a bounded ring of slot variables: each round one
	// producer transaction writes the next slot and one consumer
	// transaction reads the slot written half a ring earlier. Conflict
	// edges flow producer → consumer (write-read on the slot) and
	// consumer → later producer (the anti-dependency when the slot is
	// overwritten), always forward in commit order, so the body stays
	// conflict serializable while every clock join crosses the
	// producer/consumer group boundary.
	PatternProducerConsumer Pattern = "prodcons"
	// PatternBarrier runs the body in barrier-synchronized phases: every
	// worker transaction does private work and writes its arrival flag,
	// then a coordinator transaction on the main thread reads all flags
	// and publishes a new generation variable that the next phase's
	// workers read first. The coordinator is a fan-in/fan-out hub for
	// vector-clock joins — the widest join shape the generator produces.
	PatternBarrier Pattern = "barrier"
	// PatternConvoy funnels every worker through one hot lock each round:
	// a short critical section over a single shared variable, then private
	// work outside the lock. The dense release→acquire chain entangles all
	// thread clocks through a single lock clock — the convoy shape that
	// defeats tree-clock pruning and keeps the lock's clock permanently
	// hot.
	PatternConvoy Pattern = "convoy"
	// PatternThrash is the adversarial admission shape: bursts of tiny
	// one-write transactions, each touching a fresh, never-reused
	// variable. The variable space (and with it the server's interning
	// tables and per-variable auxiliary clocks) grows linearly with the
	// trace while per-transaction work stays minimal — maximum metadata
	// churn per byte of useful checking work, the trace-shape analogue of
	// a tenant thrashing its byte quota.
	PatternThrash Pattern = "thrash"
)

// Violation selects the kind of conflict-serializability violation to
// inject, if any.
type Violation string

const (
	// ViolationNone generates a conflict-serializable trace.
	ViolationNone Violation = "none"
	// ViolationCross injects the ρ2 pattern: two interleaved transactions
	// with crossing write/read pairs on two fresh variables.
	ViolationCross Violation = "cross"
	// ViolationDelayed injects the ρ4 pattern: a cycle that is completed
	// only by a third transaction after the first two have finished.
	ViolationDelayed Violation = "delayed"
	// ViolationLock injects a release/acquire ping-pong between two open
	// transactions on a fresh lock.
	ViolationLock Violation = "lock"
)

// Config parameterizes a generated workload.
type Config struct {
	// Name labels the workload (benchmark row name in the harness).
	Name string
	// Threads is the total thread count including the main thread (≥1).
	Threads int
	// Vars is the size of the body variable pool (injected violations use
	// fresh variables beyond this pool).
	Vars int
	// Locks is the size of the body lock pool.
	Locks int
	// Events is the approximate total trace length (the generator rounds to
	// whole transactions).
	Events int64
	// OpsPerTxn is the number of variable accesses inside each body
	// transaction.
	OpsPerTxn int
	// ReadFrac is the fraction of private accesses that are reads.
	ReadFrac float64
	// Pattern selects the sharing structure.
	Pattern Pattern
	// Inject selects the violation kind.
	Inject Violation
	// InjectAt positions the violation as a fraction of Events (0,1].
	InjectAt float64
	// AbsorbEvery makes a retained worker transaction hand a fresh variable
	// to the second hub every n rounds (hub pattern only; 0 disables),
	// giving the hub an incoming edge. Smaller values grow Velodrome's
	// per-event cycle-check cost faster.
	AbsorbEvery int
	// TxnFraction is the fraction of body rounds that run inside a
	// transaction (sharded and phase patterns; 0 = all unary, as in philo).
	TxnFraction float64
	// PhaseSplit is the fraction of Events spent in the chain burst before
	// the phase pattern switches to the sharded steady state (phase
	// pattern only; defaults to 0.3).
	PhaseSplit float64
	// Seed makes the stream deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.Vars < 1 {
		c.Vars = 1
	}
	if c.Locks < 1 {
		c.Locks = 1
	}
	if c.OpsPerTxn < 1 {
		c.OpsPerTxn = 4
	}
	// The zero value means "default"; generators wanting all-writes can set
	// any negative fraction.
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.6
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		c.ReadFrac = 0
	}
	if c.Pattern == "" {
		c.Pattern = PatternChain
	}
	// The hub pattern needs two hub threads plus at least one worker per
	// group; degenerate thread counts fall back to the chain pattern.
	if c.Pattern == PatternHub && c.Threads < 4 {
		c.Pattern = PatternChain
	}
	// Producer/consumer needs one worker per role; the barrier needs a
	// coordinator plus at least one worker. Degenerate counts fall back to
	// the chain pattern, like the hub.
	if (c.Pattern == PatternProducerConsumer && c.Threads < 3) ||
		(c.Pattern == PatternBarrier && c.Threads < 2) {
		c.Pattern = PatternChain
	}
	if c.Inject == "" {
		c.Inject = ViolationNone
	}
	if c.PhaseSplit <= 0 || c.PhaseSplit >= 1 {
		c.PhaseSplit = 0.3
	}
	if c.InjectAt <= 0 || c.InjectAt > 1 {
		c.InjectAt = 0.9
	}
	if c.Events < 16 {
		c.Events = 16
	}
	return c
}

// Generator streams the events of a workload. It implements trace.Source.
type Generator struct {
	cfg Config
	rng *rand.Rand

	buf []trace.Event
	pos int

	emitted    int64
	injectAt   int64
	injected   bool
	done       bool
	openTxn    []bool // worker body transactions are batch-local, but the hub's is long-lived
	hubOpen    bool
	round      int
	worker     int   // round-robin body worker
	injectVars int32 // next fresh variable id for injections
	injectLock int32
}

// New returns a streaming generator for the workload.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		injectAt:   int64(float64(cfg.Events) * cfg.InjectAt),
		openTxn:    make([]bool, cfg.Threads),
		injectVars: int32(cfg.Vars),
		injectLock: int32(cfg.Locks),
	}
	if cfg.Inject == ViolationNone {
		g.injected = true
		g.injectAt = cfg.Events + 1
	}
	g.prologue()
	return g
}

// Generate materializes the whole workload into a Trace (tests and small
// tools; the harness streams instead).
func Generate(cfg Config) *trace.Trace {
	return trace.Collect(New(cfg))
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Event, bool) {
	for g.pos >= len(g.buf) {
		if g.done {
			return trace.Event{}, false
		}
		g.refill()
	}
	e := g.buf[g.pos]
	g.pos++
	g.emitted++
	return e, true
}

func (g *Generator) emit(e trace.Event) { g.buf = append(g.buf, e) }

func (g *Generator) begin(t int) { g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Begin}) }
func (g *Generator) end(t int)   { g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.End}) }
func (g *Generator) read(t int, x int32) {
	g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Read, Target: x})
}
func (g *Generator) write(t int, x int32) {
	g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Write, Target: x})
}
func (g *Generator) acquire(t int, l int32) {
	g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Acquire, Target: l})
}
func (g *Generator) release(t int, l int32) {
	g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Release, Target: l})
}
func (g *Generator) fork(t, u int) {
	g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Fork, Target: int32(u)})
}
func (g *Generator) joinThread(t, u int) {
	g.emit(trace.Event{Thread: trace.ThreadID(t), Kind: trace.Join, Target: int32(u)})
}

// --- layout helpers ----------------------------------------------------------

// hubVarCount is how many variables the two hub transactions seed (split
// in halves between them).
func (g *Generator) hubVarCount() int {
	n := g.cfg.Vars / 8
	if n < 2 {
		n = 2
	}
	if n > 64 {
		n = 64
	}
	return n
}

// privateVar returns a variable from worker w's private shard.
func (g *Generator) privateVar(w int) int32 {
	lo := g.hubVarCount() + g.cfg.Threads // after hub vars and token vars
	span := g.cfg.Vars - lo
	if span <= g.cfg.Threads {
		// Tiny pools: fall back to a per-thread slot within the whole pool.
		return int32((lo + w) % g.cfg.Vars)
	}
	per := span / g.cfg.Threads
	if per < 1 {
		per = 1
	}
	off := g.rng.Intn(per)
	v := lo + (w%g.cfg.Threads)*per + off
	if v >= g.cfg.Vars {
		v = g.cfg.Vars - 1
	}
	return int32(v)
}

// tokenVar is the chain hand-off variable owned by worker w.
func (g *Generator) tokenVar(w int) int32 {
	return int32(g.hubVarCount() + (w % g.cfg.Threads))
}

// --- phases -------------------------------------------------------------------

// prologue forks all worker threads from the main thread and, for the hub
// pattern, opens the hub transaction and seeds the hub variables.
func (g *Generator) prologue() {
	for u := 1; u < g.cfg.Threads; u++ {
		g.fork(0, u)
	}
	if g.cfg.Pattern == PatternHub {
		h := g.hubVarCount()
		half := h / 2
		if half < 1 {
			half = 1
		}
		g.begin(0)
		g.openTxn[0] = true
		for i := 0; i < half; i++ {
			g.write(0, int32(i))
		}
		g.begin(1)
		g.openTxn[1] = true
		for i := half; i < h; i++ {
			g.write(1, int32(i))
		}
		g.hubOpen = true
	}
}

// epilogue closes open transactions and joins the workers.
func (g *Generator) epilogue() {
	if g.hubOpen {
		g.end(0)
		g.end(1)
		g.openTxn[0] = false
		g.openTxn[1] = false
		g.hubOpen = false
	}
	for u := 1; u < g.cfg.Threads; u++ {
		g.joinThread(0, u)
	}
	g.done = true
}

// refill produces the next batch of events into the buffer.
func (g *Generator) refill() {
	g.buf = g.buf[:0]
	g.pos = 0

	if !g.injected && g.emitted >= g.injectAt {
		g.injected = true
		g.inject()
		return
	}
	if g.emitted >= g.cfg.Events {
		g.epilogue()
		return
	}

	switch g.cfg.Pattern {
	case PatternHub:
		g.hubRound()
	case PatternChain:
		g.chainRound()
	case PatternSharded:
		g.shardedRound()
	case PatternPhase:
		if g.emitted < int64(float64(g.cfg.Events)*g.cfg.PhaseSplit) {
			g.chainRound()
		} else {
			g.shardedRound()
		}
	case PatternProducerConsumer:
		g.prodConsRound()
	case PatternBarrier:
		g.barrierRound()
	case PatternConvoy:
		g.convoyRound()
	case PatternThrash:
		g.thrashRound()
	default:
		g.chainRound()
	}
	g.round++
}

// bodyWorker returns the next worker thread in round-robin order. The main
// thread is skipped, and in the hub pattern thread 1 (hub2) is too.
func (g *Generator) bodyWorker() int {
	lo := 1
	if g.cfg.Pattern == PatternHub {
		lo = 2
	}
	if g.cfg.Threads <= lo {
		return g.cfg.Threads - 1
	}
	g.worker++
	return lo + (g.worker-1)%(g.cfg.Threads-lo)
}

// hubRound emits one worker transaction of the two-hub retention pattern.
//
// Thread 0 (hub1) and thread 1 (hub2) each keep one transaction open for
// the whole body, seeded with disjoint halves of the hub variable range.
// Workers are split into two disjoint groups:
//
//   - R1 workers read hub1's variables: every R1 transaction gets an
//     incoming edge from the live hub1 transaction, so Velodrome can never
//     collect it — the graph grows linearly.
//   - R2 workers read hub2's variables and are likewise pinned under hub2.
//
// Every AbsorbEvery rounds an R1 transaction writes a fresh hand-off
// variable that hub2 then reads: an edge from a *retained* R1 node into
// hub2, whose out-cone is the whole retained R2 mass. Each such insertion
// forces Velodrome's cycle check to traverse that cone, which is the
// quadratic blowup behind the paper's Table 1 timeout rows. The edge
// orientation is one-way by construction (hub1 → R1 → hub2 → R2, never
// backwards), so the body stays conflict serializable; locks are
// partitioned between the groups because a shared lock chain would close a
// real cycle R2 → R1 → hub2 → R2.
func (g *Generator) hubRound() {
	r2Start := g.r2GroupStart()
	absorb := g.cfg.AbsorbEvery > 0 && g.round%g.cfg.AbsorbEvery == g.cfg.AbsorbEvery-1

	var w int
	if absorb {
		// Absorb rounds always run on an R1 worker.
		w = 2 + g.round%(r2Start-2)
	} else {
		w = g.bodyWorker()
	}
	isR2 := w >= r2Start

	g.begin(w)
	if isR2 {
		g.read(w, g.hubVar(1))
	} else {
		g.read(w, g.hubVar(0))
	}
	if l, ok := g.groupLock(isR2); ok && g.round%3 == 2 {
		g.acquire(w, l)
		g.bodyAccess(w)
		g.release(w, l)
	}
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		g.bodyAccess(w)
	}
	var handoff int32 = -1
	if absorb && !isR2 {
		handoff = g.freshVar()
		g.write(w, handoff)
	}
	g.end(w)

	if handoff >= 0 {
		// hub2 reads the fresh hand-off variable written by a retained R1
		// transaction: an incoming edge into the long-lived hub2 node.
		g.read(1, handoff)
	}
}

// hubVar picks a hub variable from group 0 (hub1's half) or 1 (hub2's).
func (g *Generator) hubVar(group int) int32 {
	h := g.hubVarCount()
	half := h / 2
	if half < 1 {
		half = 1
	}
	if group == 0 {
		return int32(g.rng.Intn(half))
	}
	v := half + g.rng.Intn(h-half)
	if v >= h {
		v = h - 1
	}
	return int32(v)
}

// r2GroupStart returns the first R2-group worker index. Workers occupy
// threads 2..Threads-1; the lower half is R1, the upper half R2 (at least
// one worker in each).
func (g *Generator) r2GroupStart() int {
	return 2 + (g.cfg.Threads-2+1)/2
}

// groupLock picks a lock from the group's partition of the lock pool;
// single-lock pools are reserved for the R1 group.
func (g *Generator) groupLock(isR2 bool) (int32, bool) {
	l := g.cfg.Locks
	if l <= 0 {
		return 0, false
	}
	if l == 1 {
		if isR2 {
			return 0, false
		}
		return 0, true
	}
	half := l / 2
	if isR2 {
		return int32(half + g.rng.Intn(l-half)), true
	}
	return int32(g.rng.Intn(half)), true
}

// chainRound hands a token from the previous worker to the next: conflicts
// point forward only, so Velodrome's GC keeps the graph tiny.
func (g *Generator) chainRound() {
	w := g.bodyWorker()
	prev := w - 1
	if prev < 1 {
		prev = g.cfg.Threads - 1
	}
	if g.cfg.Threads == 1 {
		prev = 0
	}
	g.begin(w)
	g.read(w, g.tokenVar(prev))
	if g.cfg.Locks > 0 && g.round%4 == 3 {
		l := int32(g.rng.Intn(g.cfg.Locks))
		g.acquire(w, l)
		g.bodyAccess(w)
		g.release(w, l)
	}
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		g.bodyAccess(w)
	}
	g.write(w, g.tokenVar(w))
	g.end(w)
}

// prodConsRound emits one producer and one consumer transaction over the
// bounded slot ring (the token-variable region doubles as the ring). The
// consumer trails the producer by half the ring, so every slot it reads
// was written slotLag rounds earlier: the write-read edge points forward
// into the consumer, and the eventual overwrite's anti-dependency points
// forward into a later producer — acyclic by construction.
func (g *Generator) prodConsRound() {
	producers := (g.cfg.Threads - 1) / 2 // threads 1..producers are producers
	if producers < 1 {
		producers = 1
	}
	ring := g.cfg.Threads // slot count = token-region size
	slotLag := ring / 2
	if slotLag < 1 {
		slotLag = 1
	}

	p := 1 + g.round%producers
	g.begin(p)
	g.write(p, g.tokenVar(g.round%ring))
	if g.cfg.Locks > 0 && g.round%3 == 2 {
		l := int32(g.rng.Intn(g.cfg.Locks))
		g.acquire(p, l)
		g.bodyAccess(p)
		g.release(p, l)
	}
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		g.bodyAccess(p)
	}
	g.end(p)

	if g.round >= slotLag {
		consumers := g.cfg.Threads - 1 - producers
		c := 1 + producers + g.round%consumers
		g.begin(c)
		g.read(c, g.tokenVar((g.round-slotLag)%ring))
		for i := 0; i < g.cfg.OpsPerTxn; i++ {
			g.bodyAccess(c)
		}
		g.end(c)
	}
}

// barrierRound emits one whole barrier phase: every worker transaction
// reads the previous phase's generation variable, does private work and
// writes its arrival flag; then the coordinator (the main thread, which
// no other pattern uses as a body worker) reads every flag and writes the
// next generation. Edges fan in to the coordinator and fan out to the
// next phase — forward only, so the body is conflict serializable.
func (g *Generator) barrierRound() {
	genVar := int32(0) // generation lives in the hub-variable region, unused here otherwise
	for w := 1; w < g.cfg.Threads; w++ {
		g.begin(w)
		if g.round > 0 {
			g.read(w, genVar)
		}
		for i := 0; i < g.cfg.OpsPerTxn; i++ {
			g.bodyAccess(w)
		}
		g.write(w, g.tokenVar(w)) // arrival flag
		g.end(w)
	}
	g.begin(0)
	for w := 1; w < g.cfg.Threads; w++ {
		g.read(0, g.tokenVar(w))
	}
	g.write(0, genVar)
	g.end(0)
}

// convoyRound funnels one worker transaction through the hot lock: a
// short critical section over the shared convoy variable, then private
// work outside the lock. Every round extends the single release→acquire
// chain through lock 0. A second, nested lock every few rounds keeps the
// critical sections properly nested rather than degenerate.
func (g *Generator) convoyRound() {
	w := g.bodyWorker()
	hot := int32(0)
	convoyVar := int32(0) // shared hot variable, hub region
	g.begin(w)
	g.acquire(w, hot)
	if g.cfg.Locks > 1 && g.round%4 == 1 {
		inner := int32(1 + g.rng.Intn(g.cfg.Locks-1))
		g.acquire(w, inner)
		g.read(w, convoyVar)
		g.release(w, inner)
	} else {
		g.read(w, convoyVar)
	}
	g.write(w, convoyVar)
	g.release(w, hot)
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		g.bodyAccess(w)
	}
	g.end(w)
}

// thrashRound emits a burst of tiny one-write transactions on fresh
// variables: OpsPerTxn transactions of three events each, every write
// touching a variable no other event will ever touch again. Serializable
// trivially; adversarial because the variable space grows without bound.
func (g *Generator) thrashRound() {
	w := g.bodyWorker()
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		g.begin(w)
		g.write(w, g.freshVar())
		g.end(w)
	}
}

// shardedRound emits thread-private accesses, inside a transaction for a
// TxnFraction of rounds and as unary events otherwise.
func (g *Generator) shardedRound() {
	w := g.bodyWorker()
	inTxn := g.rng.Float64() < g.cfg.TxnFraction
	if inTxn {
		g.begin(w)
	}
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		g.bodyAccess(w)
	}
	if inTxn {
		g.end(w)
	}
}

func (g *Generator) bodyAccess(w int) {
	x := g.privateVar(w)
	if g.rng.Float64() < g.cfg.ReadFrac {
		g.read(w, x)
	} else {
		g.write(w, x)
	}
}

// inject emits the configured violation using fresh variables/locks so the
// preceding body stays serializable and the first cycle closes exactly
// here.
func (g *Generator) inject() {
	switch g.cfg.Inject {
	case ViolationCross:
		ws := g.injectWorkers(2)
		a, b := ws[0], ws[1]
		vx, vy := g.freshVar(), g.freshVar()
		g.begin(a)
		g.write(a, vx)
		g.begin(b)
		g.read(b, vx)
		g.write(b, vy)
		g.read(a, vy) // ← cycle closes: T_a → T_b → T_a
		g.end(a)
		g.end(b)
	case ViolationDelayed:
		ws := g.injectWorkers(3)
		a, b, c := ws[0], ws[1], ws[2]
		vx, vy, vz := g.freshVar(), g.freshVar(), g.freshVar()
		g.begin(a)
		g.write(a, vx)
		g.begin(b)
		g.write(b, vy)
		g.read(b, vx)
		g.end(b)
		g.begin(c)
		g.read(c, vy)
		g.write(c, vz)
		g.end(c)
		g.read(a, vz) // ← ρ4's delayed discovery
		g.end(a)
	case ViolationLock:
		ws := g.injectWorkers(2)
		a, b := ws[0], ws[1]
		l := g.injectLock
		g.injectLock++
		g.begin(a)
		g.acquire(a, l)
		g.release(a, l)
		g.begin(b)
		g.acquire(b, l)
		g.release(b, l)
		g.acquire(a, l) // ← cycle closes on the acquire
		g.release(a, l)
		g.end(a)
		g.end(b)
	}
}

// injectWorkers picks n distinct threads that have no open transaction
// (workers are batch-local, so any non-hub thread qualifies; with few
// threads the main thread may be used when it is not the hub).
func (g *Generator) injectWorkers(n int) []int {
	var ws []int
	for t := g.cfg.Threads - 1; t >= 0 && len(ws) < n; t-- {
		if g.openTxn[t] {
			continue
		}
		ws = append(ws, t)
	}
	for len(ws) < n {
		ws = append(ws, ws[len(ws)-1]) // degenerate fallback (single thread)
	}
	return ws
}

func (g *Generator) freshVar() int32 {
	v := g.injectVars
	g.injectVars++
	return v
}

// Describe summarizes the workload for harness output.
func (g *Generator) Describe() string {
	c := g.cfg
	return fmt.Sprintf("%s: %s pattern, %d threads, %d vars, %d locks, ~%d events, inject=%s@%.0f%%",
		c.Name, c.Pattern, c.Threads, c.Vars, c.Locks, c.Events, c.Inject, c.InjectAt*100)
}

// Config returns the (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }
