package workload_test

import (
	"testing"

	"aerodrome/internal/core"
	"aerodrome/internal/serial"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
	"aerodrome/internal/workload"
)

// smallRows returns all table rows scaled down far enough to validate and
// model-check quickly.
func smallRows(t *testing.T) []workload.PaperRow {
	t.Helper()
	var rows []workload.PaperRow
	rows = append(rows, workload.Table1(30_000, 500)...)
	rows = append(rows, workload.Table2(30_000, 500)...)
	if len(rows) != 21 {
		t.Fatalf("expected 14+7 rows, got %d", len(rows))
	}
	return rows
}

func TestAllRowsWellFormed(t *testing.T) {
	for _, row := range smallRows(t) {
		row := row
		t.Run(row.Config.Name, func(t *testing.T) {
			tr := workload.Generate(row.Config)
			if err := trace.ValidateStrict(tr); err != nil {
				t.Fatalf("%s: malformed trace: %v", row.Config.Name, err)
			}
			if tr.Len() == 0 {
				t.Fatalf("%s: empty trace", row.Config.Name)
			}
			// Event budget respected within one batch of slack.
			if int64(tr.Len()) > row.Config.Events+int64(row.Config.OpsPerTxn*4+64) {
				t.Fatalf("%s: %d events for budget %d", row.Config.Name, tr.Len(), row.Config.Events)
			}
			s := trace.ComputeStats(tr.Cursor())
			if s.Threads > row.Config.Threads {
				t.Fatalf("%s: %d threads exceeds config %d", row.Config.Name, s.Threads, row.Config.Threads)
			}
		})
	}
}

func TestRowVerdictsMatchPaper(t *testing.T) {
	for _, row := range smallRows(t) {
		row := row
		t.Run(row.Config.Name, func(t *testing.T) {
			tr := workload.Generate(row.Config)
			for _, eng := range []core.Engine{core.NewBasic(), core.NewOptimized(), velodrome.New()} {
				v, _ := core.Run(eng, tr.Cursor())
				wantViolation := !row.PaperAtomic
				if (v != nil) != wantViolation {
					t.Fatalf("%s on %s: violation=%v, paper says violation=%v",
						eng.Name(), row.Config.Name, v != nil, wantViolation)
				}
			}
		})
	}
}

func TestPrefixBeforeInjectionIsSerializable(t *testing.T) {
	// The body generated before the injected violation must be conflict
	// serializable — the injection is the *first* cycle. Checked with the
	// O(n²) oracle at small scale for every violating row.
	for _, row := range smallRows(t) {
		if row.Config.Inject == workload.ViolationNone {
			continue
		}
		row := row
		t.Run(row.Config.Name, func(t *testing.T) {
			cfg := row.Config
			cfg.Events = 4_000
			tr := workload.Generate(cfg)
			basic := core.NewBasic()
			v, _ := core.Run(basic, tr.Cursor())
			if v == nil {
				t.Fatalf("%s: expected injected violation", cfg.Name)
			}
			minIndex := int64(float64(cfg.Events) * cfg.InjectAt)
			if v.Index < minIndex {
				t.Fatalf("%s: violation at %d, before injection point %d",
					cfg.Name, v.Index, minIndex)
			}
			// The prefix strictly before the injection batch is serializable.
			prefix := &trace.Trace{}
			for _, e := range tr.Events[:minIndex] {
				prefix.Append(e)
			}
			rep := serial.Check(prefix)
			if !rep.Serializable {
				t.Fatalf("%s: body prefix is not serializable (witness %v)",
					cfg.Name, rep.Witness)
			}
		})
	}
}

func TestSerializableRowsPassOracle(t *testing.T) {
	for _, row := range smallRows(t) {
		if !row.PaperAtomic {
			continue
		}
		row := row
		t.Run(row.Config.Name, func(t *testing.T) {
			cfg := row.Config
			if cfg.Events > 3_000 {
				cfg.Events = 3_000
			}
			tr := workload.Generate(cfg)
			rep := serial.Check(tr)
			if !rep.Serializable {
				t.Fatalf("%s: oracle found a cycle in a ✓ row (witness %v)",
					cfg.Name, rep.Witness)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	cfg := workload.Config{
		Name: "det", Threads: 5, Vars: 100, Locks: 4, Events: 5_000,
		Pattern: workload.PatternHub, Inject: workload.ViolationCross,
		InjectAt: 0.8, AbsorbEvery: 8, Seed: 42,
	}
	a := workload.Generate(cfg)
	b := workload.Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	cfg.Seed = 43
	c := workload.Generate(cfg)
	same := c.Len() == a.Len()
	if same {
		same = false
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Fatalf("different seeds should give different traces")
	}
}

func TestHubRetainsVelodromeGraph(t *testing.T) {
	cfg := workload.Config{
		Name: "hub-retention", Threads: 6, Vars: 200, Locks: 4,
		Events: 20_000, Pattern: workload.PatternHub,
		Inject: workload.ViolationNone, AbsorbEvery: 16, Seed: 7,
	}
	v := velodrome.New()
	viol, _ := core.Run(v, workload.New(cfg))
	if viol != nil {
		t.Fatalf("hub body must be serializable: %v", viol)
	}
	_, max := v.GraphSize()
	// Roughly one retained transaction per R-group round.
	if max < 500 {
		t.Fatalf("hub pattern should retain a large graph, high-water %d", max)
	}
}

func TestChainCollapsesVelodromeGraph(t *testing.T) {
	cfg := workload.Config{
		Name: "chain-gc", Threads: 6, Vars: 200, Locks: 4,
		Events: 20_000, Pattern: workload.PatternChain,
		Inject: workload.ViolationNone, Seed: 7,
	}
	v := velodrome.New()
	viol, _ := core.Run(v, workload.New(cfg))
	if viol != nil {
		t.Fatalf("chain body must be serializable: %v", viol)
	}
	_, max := v.GraphSize()
	if max > 64 {
		t.Fatalf("chain pattern should garbage-collect, high-water %d", max)
	}
}

func TestShardedTxnFraction(t *testing.T) {
	cfg := workload.Config{
		Name: "sharded", Threads: 5, Vars: 100, Locks: 1,
		Events: 10_000, Pattern: workload.PatternSharded,
		TxnFraction: 0, Inject: workload.ViolationNone, Seed: 3,
	}
	tr := workload.Generate(cfg)
	s := trace.ComputeStats(tr.Cursor())
	if s.Transactions != 0 {
		t.Fatalf("TxnFraction=0 should yield no transactions, got %d", s.Transactions)
	}
	cfg.TxnFraction = 1
	tr = workload.Generate(cfg)
	s = trace.ComputeStats(tr.Cursor())
	if s.Transactions < 100 {
		t.Fatalf("TxnFraction=1 should yield many transactions, got %d", s.Transactions)
	}
}

func TestInjectKinds(t *testing.T) {
	for _, kind := range []workload.Violation{
		workload.ViolationCross, workload.ViolationDelayed, workload.ViolationLock,
	} {
		cfg := workload.Config{
			Name: string(kind), Threads: 6, Vars: 60, Locks: 3,
			Events: 2_000, Pattern: workload.PatternChain,
			Inject: kind, InjectAt: 0.5, Seed: 11,
		}
		tr := workload.Generate(cfg)
		if err := trace.ValidateStrict(tr); err != nil {
			t.Fatalf("%s: malformed: %v", kind, err)
		}
		rep := serial.Check(tr)
		if rep.Serializable {
			t.Fatalf("%s: injection did not produce a violation", kind)
		}
		basic := core.NewBasic()
		if v, _ := core.Run(basic, tr.Cursor()); v == nil {
			t.Fatalf("%s: AeroDrome missed the injected violation", kind)
		}
	}
}

func TestFindRow(t *testing.T) {
	r, ok := workload.FindRow("sunflow", 1000, 100)
	if !ok || r.Config.Name != "sunflow" || r.Table != 1 {
		t.Fatalf("FindRow(sunflow) = %+v, %v", r, ok)
	}
	r, ok = workload.FindRow("tomcat", 1000, 100)
	if !ok || r.Table != 2 {
		t.Fatalf("FindRow(tomcat) = %+v, %v", r, ok)
	}
	if _, ok := workload.FindRow("nosuch", 1000, 100); ok {
		t.Fatalf("FindRow(nosuch) should fail")
	}
}

func TestDescribe(t *testing.T) {
	g := workload.New(workload.Config{Name: "d", Threads: 3, Vars: 10, Locks: 1, Events: 100})
	if g.Describe() == "" || g.Config().Name != "d" {
		t.Fatalf("Describe/Config broken")
	}
}
