package bench

// par-* rows: the speculative intra-trace parallel checker
// (internal/parcheck) on the same thread-scaling grid as the engine
// rows, so its ns/event lands directly next to the single-core
// engines it is trying to beat. Workload names are prefixed "par-"
// (par-sharded-t64, ...), the engine label records the worker count
// (par4x-auto). Includes the chain pattern on purpose: it is one
// connected component, the partitioner falls back to a sequential
// pass, and the row shows what that honesty costs (scan overhead,
// nothing more).
//
// Note on reading these rows: wall-clock speedup over the sequential
// engines requires actual cores. On a single-CPU machine the shard
// goroutines timeshare and a par row can only match the sequential
// engine plus scan overhead; capture baselines and afters on the same
// machine class, as with every other row.

import (
	"fmt"
	"runtime"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/parcheck"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// parAlgo is the per-shard engine of the par rows: Auto, the server
// default, which also adapts its clock representation to the smaller
// per-shard thread width.
const parAlgo = core.AlgoOptimizedAuto

// parAlgoLabel is the short engine-label suffix ("par4x-auto").
const parAlgoLabel = "auto"

// MeasureParRows measures the intra-trace parallel checker. Events are
// materialized once per config (the partitioner needs a slice; parse
// cost is excluded, as in the engine rows), then each row follows the
// MeasureRow protocol: warmup, best of runs, one instrumented run.
func MeasureParRows(events int64, runs int) []BenchRow {
	if runs < 1 {
		runs = 1
	}
	type parCase struct {
		cfg     workload.Config
		workers int
	}
	var cases []parCase
	for _, cfg := range ThreadScalingConfigs(events) {
		cases = append(cases, parCase{cfg, 4})
		if cfg.Pattern == workload.PatternSharded && cfg.Threads == 64 {
			// The headline width: add the scaling shape around the default.
			cases = append(cases, parCase{cfg, 2}, parCase{cfg, 8})
		}
	}

	var rows []BenchRow
	for _, c := range cases {
		rows = append(rows, MeasureParRow(c.cfg, c.workers, runs))
	}
	return rows
}

// MeasureParRow measures one (config, worker count) cell of the par
// grid. Exported separately so the CI perf gate (gate.go) can pin a
// single par row without paying for the whole grid.
func MeasureParRow(cfg workload.Config, workers, runs int) BenchRow {
	if runs < 1 {
		runs = 1
	}
	evs := trace.Collect(workload.New(cfg)).Events
	row := BenchRow{
		Workload: "par-" + cfg.Name,
		Pattern:  string(cfg.Pattern),
		Threads:  cfg.Threads,
		Engine:   fmt.Sprintf("par%dx-%s", workers, parAlgoLabel),
		Runs:     runs,
	}

	run := func() int64 {
		v, n, stats := parcheck.Check(evs, parAlgo, workers)
		if v != nil {
			panic(fmt.Sprintf("bench: par%dx on %s: unexpected violation %v", workers, cfg.Name, v))
		}
		if stats.Conflict {
			panic(fmt.Sprintf("bench: par%dx on %s: unexpected cross-shard conflict at %d",
				workers, cfg.Name, stats.ConflictIndex))
		}
		return n
	}

	row.Events = run() // warmup

	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		run()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	row.NsPerEvent = float64(best.Nanoseconds()) / float64(row.Events)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	row.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(row.Events)
	row.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(row.Events)
	return row
}
