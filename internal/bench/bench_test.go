package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/workload"
)

func tinyOptions() Options {
	return Options{
		MaxEvents: 20_000,
		MaxVars:   500,
		Timeout:   20 * time.Second,
	}
}

func TestRunRowProducesMeasurements(t *testing.T) {
	row, ok := workload.FindRow("hedc", 20_000, 500)
	if !ok {
		t.Fatal("hedc row missing")
	}
	res := RunRow(row, tinyOptions())
	if len(res.Measurements) != 2 {
		t.Fatalf("want 2 measurements, got %d", len(res.Measurements))
	}
	if !res.Violation() {
		t.Fatalf("hedc is a ✗ row")
	}
	for _, m := range res.Measurements {
		if m.TimedOut || m.Events == 0 || m.Duration <= 0 {
			t.Fatalf("bad measurement: %+v", m)
		}
	}
	if s := res.Speedup(0, 1); s == "" || s == "–" {
		t.Fatalf("speedup = %q", s)
	}
}

func TestRunTimedTimeout(t *testing.T) {
	// An avrora-style hub row with an absurd deadline must time out.
	row, ok := workload.FindRow("avrora", 500_000, 2_000)
	if !ok {
		t.Fatal("avrora row missing")
	}
	m := RunTimed(Velodrome(), workload.New(row.Config), 30*time.Millisecond)
	if !m.TimedOut {
		t.Skipf("velodrome finished 500k hub events within 30ms; machine too fast for this guard")
	}
	if m.String() != "TO" {
		t.Fatalf("timeout must render as TO, got %q", m)
	}
}

func TestRunTableSmall(t *testing.T) {
	o := tinyOptions()
	res := RunTable(2, o)
	if len(res) != 7 {
		t.Fatalf("table 2 has 7 rows, got %d", len(res))
	}
	var buf bytes.Buffer
	FormatTable(&buf, res, o)
	out := buf.String()
	for _, name := range []string{"batik", "crypt", "fop", "lufact", "series", "sparsematmult", "tomcat"} {
		if !strings.Contains(out, name) {
			t.Fatalf("formatted table missing row %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "velodrome") || !strings.Contains(out, "aerodrome") {
		t.Fatalf("formatted table missing engine columns:\n%s", out)
	}
	// fop is the only ✓ row of table 2.
	for _, r := range res {
		want := !r.Row.PaperAtomic
		if r.Violation() != want {
			t.Fatalf("%s: violation=%v, paper %v", r.Row.Config.Name, r.Violation(), want)
		}
	}
}

func TestEngineSpecs(t *testing.T) {
	specs := []EngineSpec{
		AeroDrome(), Velodrome(), VelodromePK(), DoubleChecker(),
		AeroDromeVariant(core.AlgoBasic), AeroDromeVariant(core.AlgoReadOpt),
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Label == "" || s.New() == nil {
			t.Fatalf("bad spec %+v", s)
		}
		if seen[s.Label] {
			t.Fatalf("duplicate label %q", s.Label)
		}
		seen[s.Label] = true
		// Fresh engines every time.
		if s.New() == s.New() {
			t.Fatalf("%s: New must build fresh engines", s.Label)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		90 * time.Minute:        "1.5h",
		75 * time.Second:        "1m15s",
		1500 * time.Millisecond: "1.50s",
		2500 * time.Microsecond: "2.5ms",
		800 * time.Nanosecond:   "0µs",
	}
	for d, want := range cases {
		if got := formatDuration(d); got != want {
			t.Errorf("formatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int64]string{
		2_400_000_000: "2.4B",
		86_000_000:    "86M",
		22_600:        "22.6K",
		613:           "613",
		16_800_000:    "16.8M",
	}
	for v, want := range cases {
		if got := humanCount(v); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestFiguresOutput(t *testing.T) {
	var buf bytes.Buffer
	Figures(&buf)
	out := buf.String()
	for _, want := range []string{
		"Figure 5", "Figure 6", "Figure 7",
		"⟨2,0⟩", "⟨2,2⟩", "⟨2,2,2⟩",
		"violation",
		"transaction-end", // ρ3 detects at the end event
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("figures output missing %q:\n%s", want, out)
		}
	}
	// ρ2's run stops at e6, ρ4's at e11 — the events after the violation
	// must not appear.
	if strings.Contains(out, "e12") {
		t.Fatalf("figure 7 should stop at e11")
	}
}
