package bench

// Pins the saturation harness's fault-tolerance contract: transport
// resets and retryable statuses are counted and retried (never fatal),
// while non-retryable statuses are counted as hard failures for the
// caller to assert on. The chaos saturation row in
// MeasureSaturationRows relies on exactly this split.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"aerodrome"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/server"
	"aerodrome/internal/workload"
)

// satTestTrace renders a small sharded trace for the flaky-front tests.
func satTestTrace(t *testing.T) []byte {
	t.Helper()
	cfg := workload.Config{
		Name: "sat-test", Threads: 4, Vars: 256, Locks: 8,
		Events: 2_000, OpsPerTxn: 4, Pattern: workload.PatternSharded,
		TxnFraction: 0.5, Inject: workload.ViolationNone, Seed: 7,
	}
	var buf bytes.Buffer
	if _, err := rapidio.WriteSource(&buf, workload.New(cfg)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// flakyFront wraps a real aerodromed handler with periodic injected
// failures chosen by pick (keyed by request ordinal, 1-based).
func flakyFront(t *testing.T, pick func(k int64) string) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Algorithm: aerodrome.Optimized})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch pick(n.Add(1)) {
		case "503":
			w.Header().Set("Retry-After", "0")
			http.Error(w, "injected unavailable", http.StatusServiceUnavailable)
		case "reset":
			// Kill the connection mid-request: the client sees a
			// transport error, not an HTTP status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("ResponseWriter is not a Hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close()
		case "teapot":
			http.Error(w, "injected hard failure", http.StatusTeapot)
		default:
			s.ServeHTTP(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestSaturateToleratesInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation window too long for -short")
	}
	data := satTestTrace(t)
	// Every 5th request 503s and every 7th dies on the wire; the rest
	// reach a real backend. The harness must ride through all of it.
	ts := flakyFront(t, func(k int64) string {
		switch {
		case k > 1 && k%5 == 0:
			return "503"
		case k > 1 && k%7 == 0:
			return "reset"
		}
		return "ok"
	})
	events, _, stats := saturate(ts.URL, data, 4)
	if stats.hard != 0 {
		t.Fatalf("hard failures = %d, want 0", stats.hard)
	}
	if stats.retried == 0 {
		t.Fatal("no retries counted despite injected faults")
	}
	if events == 0 {
		t.Fatal("no events completed despite a live backend")
	}
}

func TestSaturateCountsHardFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation window too long for -short")
	}
	data := satTestTrace(t)
	// The prime request must succeed, then sporadic non-retryable
	// statuses show up: those are hard failures, counted not retried.
	ts := flakyFront(t, func(k int64) string {
		if k > 1 && k%4 == 0 {
			return "teapot"
		}
		return "ok"
	})
	_, _, stats := saturate(ts.URL, data, 2)
	if stats.hard == 0 {
		t.Fatal("non-retryable statuses were not counted as hard failures")
	}
}

// TestPrimeCheckRetriesThenSucceeds pins the priming path: early
// transport faults and 503s must not kill the run.
func TestPrimeCheckRetriesThenSucceeds(t *testing.T) {
	data := satTestTrace(t)
	ts := flakyFront(t, func(k int64) string {
		switch k {
		case 1:
			return "reset"
		case 2:
			return "503"
		}
		return "ok"
	})
	client := &http.Client{}
	ev := primeCheck(client, ts.URL, data)
	if ev <= 0 {
		t.Fatalf("primeCheck returned %d events", ev)
	}
}
