// Package bench is the experiment harness that regenerates the paper's
// evaluation: timed, timeout-guarded head-to-head runs of the checkers over
// the Table 1 / Table 2 workloads, with table formatting that mirrors the
// paper's columns (events, threads, locks, variables, transactions,
// verdict, Velodrome time, AeroDrome time, speedup).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/doublechecker"
	"aerodrome/internal/trace"
	"aerodrome/internal/velodrome"
	"aerodrome/internal/workload"
)

// EngineSpec names a checker and constructs fresh instances of it.
type EngineSpec struct {
	Label string
	New   func() core.Engine
}

// AeroDrome returns the paper's evaluated AeroDrome configuration
// (Algorithm 3).
func AeroDrome() EngineSpec {
	return EngineSpec{Label: "aerodrome", New: func() core.Engine { return core.NewOptimized() }}
}

// AeroDromeVariant returns a specific AeroDrome algorithm variant.
func AeroDromeVariant(a core.Algorithm) EngineSpec {
	return EngineSpec{Label: a.String(), New: func() core.Engine { return core.New(a) }}
}

// AeroDromeTree returns Algorithm 3 on the tree-clock representation.
func AeroDromeTree() EngineSpec {
	return AeroDromeVariant(core.AlgoOptimizedTree)
}

// AeroDromeHybrid returns Algorithm 3 on the hybrid representation (tree
// thread clocks, flat auxiliary clocks).
func AeroDromeHybrid() EngineSpec {
	return AeroDromeVariant(core.AlgoOptimizedHybrid)
}

// Velodrome returns the baseline with per-edge DFS cycle checks.
func Velodrome() EngineSpec {
	return EngineSpec{Label: "velodrome", New: func() core.Engine { return velodrome.New() }}
}

// VelodromePK returns the Pearce–Kelly ablation of the baseline.
func VelodromePK() EngineSpec {
	return EngineSpec{Label: "velodrome-pk", New: func() core.Engine {
		return velodrome.New(velodrome.WithStrategy("pearce-kelly"))
	}}
}

// DoubleChecker returns the two-phase extension.
func DoubleChecker() EngineSpec {
	return EngineSpec{Label: "doublechecker", New: func() core.Engine { return doublechecker.New(0) }}
}

// Measurement is the outcome of one engine on one workload.
type Measurement struct {
	Engine    string
	Duration  time.Duration
	Events    int64
	Violation *core.Violation
	TimedOut  bool
	// Stats holds the engine's introspection counters when the engine
	// implements core.StatsReporter (HasStats distinguishes an engine
	// without counters from one whose counters are all zero).
	Stats    core.EngineStats
	HasStats bool
}

// String renders the measurement's time like the paper ("TO" on timeout).
func (m Measurement) String() string {
	if m.TimedOut {
		return "TO"
	}
	return formatDuration(m.Duration)
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// timeoutCheckEvery bounds how often the deadline is polled.
const timeoutCheckEvery = 8192

// RunTimed drives an engine over a source until the first violation, the
// end of the stream, or the timeout (0 = none).
func RunTimed(spec EngineSpec, src trace.Source, timeout time.Duration) Measurement {
	eng := spec.New()
	start := time.Now()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	m := Measurement{Engine: spec.Label}
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if v := eng.Process(e); v != nil {
			m.Violation = v
			break
		}
		if !deadline.IsZero() && eng.Processed()%timeoutCheckEvery == 0 &&
			time.Now().After(deadline) {
			m.TimedOut = true
			break
		}
	}
	m.Duration = time.Since(start)
	m.Events = eng.Processed()
	if r, ok := eng.(core.StatsReporter); ok {
		m.Stats, m.HasStats = r.Stats(), true
	}
	return m
}

// Result is one benchmark row: the workload's characteristics plus one
// measurement per engine.
type Result struct {
	Row          workload.PaperRow
	Stats        trace.Stats
	Measurements []Measurement
}

// Violation reports whether any engine found a violation.
func (r Result) Violation() bool {
	for _, m := range r.Measurements {
		if m.Violation != nil {
			return true
		}
	}
	return false
}

// Speedup returns t(Measurements[base]) / t(Measurements[subject]) with the
// paper's ">" convention when the base timed out.
func (r Result) Speedup(base, subject int) string {
	b, s := r.Measurements[base], r.Measurements[subject]
	if s.TimedOut {
		return "–"
	}
	ratio := float64(b.Duration) / float64(s.Duration)
	if b.TimedOut {
		return fmt.Sprintf("> %.0f", ratio)
	}
	if ratio >= 100 {
		return fmt.Sprintf("%.0f", ratio)
	}
	return fmt.Sprintf("%.2f", ratio)
}

// Options configures a table run.
type Options struct {
	// MaxEvents caps each row's trace length (default 2M).
	MaxEvents int64
	// MaxVars caps each row's variable pool (default 20k).
	MaxVars int
	// Timeout per engine per row (default 30s; the paper used 10h at full
	// scale).
	Timeout time.Duration
	// Engines to race (default Velodrome then AeroDrome, matching the
	// paper's columns 8 and 9).
	Engines []EngineSpec
	// Progress, when non-nil, receives row-start notifications.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 2_000_000
	}
	if o.MaxVars <= 0 {
		o.MaxVars = 20_000
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if len(o.Engines) == 0 {
		o.Engines = []EngineSpec{Velodrome(), AeroDrome()}
	}
	return o
}

// RunRow measures every engine on one row's workload. Each engine consumes
// a fresh generator with the same seed, i.e. the identical trace — the
// paper's same-logged-trace methodology.
func RunRow(row workload.PaperRow, o Options) Result {
	o = o.withDefaults()
	res := Result{Row: row}
	res.Stats = trace.ComputeStats(workload.New(row.Config))
	for _, spec := range o.Engines {
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "  %-14s %-22s ...", row.Config.Name, spec.Label)
		}
		m := RunTimed(spec, workload.New(row.Config), o.Timeout)
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, " %s\n", m)
		}
		res.Measurements = append(res.Measurements, m)
	}
	return res
}

// RunTable measures all rows of the paper's Table 1 or Table 2.
func RunTable(table int, o Options) []Result {
	o = o.withDefaults()
	var rows []workload.PaperRow
	if table == 1 {
		rows = workload.Table1(o.MaxEvents, o.MaxVars)
	} else {
		rows = workload.Table2(o.MaxEvents, o.MaxVars)
	}
	var out []Result
	for _, row := range rows {
		out = append(out, RunRow(row, o))
	}
	return out
}

// FormatTable renders results in the paper's column layout as a Markdown
// table, with the paper's own numbers inlined for comparison.
func FormatTable(w io.Writer, results []Result, o Options) {
	o = o.withDefaults()
	fmt.Fprintf(w, "| Program | Events | Threads | Locks | Vars | Txns | Atomic? | Paper (V/A/speedup) |")
	for _, e := range o.Engines {
		fmt.Fprintf(w, " %s |", e.Label)
	}
	fmt.Fprintf(w, " Speedup |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|")
	for range o.Engines {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintf(w, "\n")

	for _, r := range results {
		atomic := "✗"
		if !r.Violation() {
			atomic = "✓"
		}
		paperAtomic := "✗"
		if r.Row.PaperAtomic {
			paperAtomic = "✓"
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d | %s | %s | %s (paper %s) | %s/%s/%s |",
			r.Row.Config.Name,
			humanCount(r.Stats.Events),
			r.Stats.Threads,
			r.Stats.Locks,
			humanCount(int64(r.Stats.Vars)),
			humanCount(r.Stats.Transactions),
			atomic, paperAtomic,
			r.Row.PaperVelo, r.Row.PaperAero, r.Row.PaperSpeedup,
		)
		for _, m := range r.Measurements {
			fmt.Fprintf(w, " %s |", m)
		}
		fmt.Fprintf(w, " %s |\n", r.Speedup(0, len(r.Measurements)-1))
	}
}

// humanCount renders counts the way the paper does (2.4B, 86M, 22.6K).
func humanCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return trimZero(fmt.Sprintf("%.1fB", float64(v)/1e9))
	case v >= 1_000_000:
		return trimZero(fmt.Sprintf("%.1fM", float64(v)/1e6))
	case v >= 10_000:
		return trimZero(fmt.Sprintf("%.1fK", float64(v)/1e3))
	default:
		return fmt.Sprintf("%d", v)
	}
}

func trimZero(s string) string {
	return strings.Replace(s, ".0", "", 1)
}
