package bench

// Shared retry semantics for every harness that drives aerodromed over
// HTTP: the saturation bench (saturate.go) and the open-loop load
// harness (internal/loadgen) classify responses and compute backoff
// through this one helper, so what counts as "retryable" and how
// Retry-After is honored cannot drift between the two.

import (
	"net/http"
	"strconv"
	"time"
)

// Outcome classifies one HTTP attempt against aerodromed.
type Outcome int

const (
	// OutcomeOK is an admitted, completed request.
	OutcomeOK Outcome = iota
	// OutcomeRetryable covers transport errors and the statuses the
	// service emits for transient refusal: 429 (quota), 503 (backend
	// down/draining) and 502 (proxy-visible backend failure). Clients
	// back off and retry; under quota pressure or fault injection these
	// are the expected texture of a run, not failures.
	OutcomeRetryable
	// OutcomeHard is everything else — a client-visible failure no
	// amount of retrying excuses. Harnesses assert these stay zero.
	OutcomeHard
)

// ClassifyStatus maps an HTTP status code to an Outcome. Transport
// errors (no status at all) are OutcomeRetryable by definition; callers
// with only an error in hand need not call anything.
func ClassifyStatus(code int) Outcome {
	switch {
	case code >= 200 && code < 300:
		return OutcomeOK
	case code == http.StatusTooManyRequests,
		code == http.StatusServiceUnavailable,
		code == http.StatusBadGateway:
		return OutcomeRetryable
	default:
		return OutcomeHard
	}
}

// Attempt executes req once and classifies the result. On a transport
// error the response is nil and the outcome OutcomeRetryable; otherwise
// the caller owns the response body.
func Attempt(client *http.Client, req *http.Request) (*http.Response, Outcome) {
	resp, err := client.Do(req)
	if err != nil {
		return nil, OutcomeRetryable
	}
	return resp, ClassifyStatus(resp.StatusCode)
}

// RetryPolicy decides how long a client waits after a retryable attempt.
// The zero value never sleeps; both harnesses construct theirs explicitly.
type RetryPolicy struct {
	// Backoff is the flat delay after a retryable outcome.
	Backoff time.Duration
	// HonorRetryAfter makes Delay prefer the server's Retry-After header
	// (whole seconds, as aerodromed emits it) over Backoff when present.
	// The saturation bench deliberately leaves this false — its clients
	// exist to keep the admission queue full — while the load harness
	// sets it, mirroring a well-behaved production client.
	HonorRetryAfter bool
	// RetryAfterCap clamps an honored Retry-After so a pathological
	// header cannot stall an open-loop worker for the whole run.
	RetryAfterCap time.Duration
}

// Delay returns the wait before the next attempt given the retryable
// response (nil for transport errors, which always use Backoff).
func (p RetryPolicy) Delay(resp *http.Response) time.Duration {
	d := p.Backoff
	if !p.HonorRetryAfter || resp == nil {
		return d
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		ra := time.Duration(secs) * time.Second
		if ra > d {
			d = ra
		}
	}
	if p.RetryAfterCap > 0 && d > p.RetryAfterCap {
		d = p.RetryAfterCap
	}
	return d
}
