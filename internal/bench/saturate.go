package bench

// Saturation benchmarking: aggregate /v1/check throughput under N
// concurrent clients, against a single aerodromed and against the shard
// router fronting two backends — the scale-out row the single-stream
// serve-check measurement cannot see.
//
// Topology note: every aerodromed instance in this harness shares one
// process (and, on the benchmark boxes this repository records, one CPU),
// so raw engine throughput cannot scale with backend count here. What does
// scale — and what production capacity planning actually allocates — is
// the per-instance admission budget: each backend grants the bench tenant
// a fixed ingest byte budget (the PR 5 quota layer), clients hammer past
// it and retry on 429, and the router's consistent hashing spreads their
// keys across backends. The single-server topology is therefore bounded
// by one budget and the router topology by the sum of its backends' — the
// serve-sat rows measure how cleanly the router aggregates per-instance
// capacity (proxy tax, rejection churn, placement skew included), and on
// a multi-core box the same harness exposes real CPU scale-out by raising
// satBytesPerSec past the engine rate.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"aerodrome"
	"aerodrome/internal/faultinject"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/server"
	"aerodrome/internal/workload"
)

// SatSingle, SatRouter2, and SatRouter2Chaos are the engine labels of
// the saturation rows.
const (
	SatSingle       = "serve-sat-single"
	SatRouter2      = "serve-sat-router2"
	SatRouter2Chaos = "serve-sat-router2-chaos"
)

const (
	// satTenant is the tenant every saturation client authenticates as.
	satTenant = "bench"
	// satBytesPerSec is the per-backend ingest budget granted to the bench
	// tenant: low enough that one budget, not one CPU, is the single-server
	// bottleneck (so the router row can demonstrate capacity aggregation
	// on any machine), high enough that the checking work is real.
	satBytesPerSec = 6 << 20
	// satEvents keeps individual traces small so a measurement window
	// holds tens of round trips.
	satEvents = 20_000
	// satWarmup runs before counting: it drains the token bucket's initial
	// one-second burst and warms connections, so the window measures the
	// steady state.
	satWarmup = 600 * time.Millisecond
	// satWindow is one measured interval; the best of satRuns windows is
	// reported, mirroring the best-of protocol of the other rows.
	satWindow = 1500 * time.Millisecond
	// satBackoff is the client retry delay after a 429/503. Deliberately
	// shorter than the server's whole-second Retry-After (satPolicy leaves
	// HonorRetryAfter off): saturation clients exist to keep the admission
	// queue full, and the backoff only bounds the rejection churn the
	// server pays.
	satBackoff = 30 * time.Millisecond
	// satRuns is how many windows are measured per row.
	satRuns = 2
	// satPrimeBudget bounds how long the priming request retries before
	// the harness declares the topology broken and panics.
	satPrimeBudget = 10 * time.Second
)

// satPolicy is the saturation clients' retry policy: flat satBackoff,
// Retry-After deliberately ignored (see satBackoff). Classification and
// delay go through the shared retryhttp helper so the semantics match
// internal/loadgen's by construction.
var satPolicy = RetryPolicy{Backoff: satBackoff}

// satStats counts what the saturation clients saw beyond completed
// checks. retried covers OutcomeRetryable attempts — transport errors
// and 429/502/503, expected churn under quota pressure or injected
// faults. hard counts OutcomeHard: client-visible failures that no
// amount of retrying excuses, which the harness asserts to be zero even
// with fault injection enabled.
type satStats struct {
	retried int64
	hard    int64
}

// MeasureSaturationRows renders one small sharded trace and measures
// aggregate events/sec through POST /v1/check at N ∈ {1, 8, 32} clients,
// for the single-server, router+2-backend, and fault-injected
// router+2-backend topologies back-to-back. Every topology asserts zero
// client-visible hard failures — the chaos row is the robustness gate:
// injected transport faults must surface only as retryable 503s.
// Rows report aggregate ns/event (1e9 / events-per-second); the alloc
// columns are zero — process-wide allocation accounting is meaningless
// with client goroutines in the same process.
func MeasureSaturationRows() []BenchRow {
	cfg := workload.Config{
		Name: "sharded-t8", Threads: 8, Vars: 8192, Locks: 32,
		Events: satEvents, OpsPerTxn: 4, Pattern: workload.PatternSharded,
		TxnFraction: 0.5, Inject: workload.ViolationNone, Seed: 42,
	}
	var buf bytes.Buffer
	if _, err := rapidio.WriteSource(&buf, workload.New(cfg)); err != nil {
		panic(fmt.Sprintf("bench: rendering %s: %v", cfg.Name, err))
	}
	data := buf.Bytes()

	quota := server.Config{
		Algorithm: aerodrome.Optimized, // same engine as the serve-check rows
		TenantQuotas: map[string]server.TenantQuota{
			satTenant: {BytesPerSec: satBytesPerSec},
		},
	}

	newBackend := func() (*server.Server, *httptest.Server) {
		s, err := server.New(quota)
		if err != nil {
			panic(fmt.Sprintf("bench: server: %v", err))
		}
		return s, httptest.NewServer(s)
	}

	var rows []BenchRow
	measureTopology := func(label, baseURL string) {
		for _, clients := range []int{1, 8, 32} {
			events, window, stats := saturate(baseURL, data, clients)
			if stats.hard > 0 {
				panic(fmt.Sprintf("bench: saturate %s n=%d: %d client-visible hard failures",
					label, clients, stats.hard))
			}
			row := BenchRow{
				Workload: fmt.Sprintf("%s-n%d", cfg.Name, clients),
				Pattern:  string(cfg.Pattern),
				Threads:  cfg.Threads,
				Engine:   label,
				Events:   events,
				Runs:     satRuns,
			}
			if events > 0 {
				row.NsPerEvent = float64(window.Nanoseconds()) / float64(events)
			}
			rows = append(rows, row)
		}
	}

	// Single server.
	s, ts := newBackend()
	measureTopology(SatSingle, ts.URL)
	ts.Close()
	s.Close()

	// Router + 2 backends.
	s1, ts1 := newBackend()
	s2, ts2 := newBackend()
	rt, err := server.NewRouter(server.RouterConfig{Backends: []string{ts1.URL, ts2.URL}})
	if err != nil {
		panic(fmt.Sprintf("bench: router: %v", err))
	}
	rts := httptest.NewServer(rt)
	measureTopology(SatRouter2, rts.URL)
	rts.Close()
	rt.Close()
	ts1.Close()
	ts2.Close()
	s1.Close()
	s2.Close()

	// Router + 2 backends with fault injection on the router→backend
	// path: a few percent of proxied round trips fail outright and a few
	// pick up extra latency. The router turns transport failures into
	// 503 + Retry-After and marks the backend down until the (clean)
	// health prober restores it; the clients retry. The row exists less
	// for its throughput number than for its invariant — the hard-failure
	// assertion above proves injected faults stay invisible to clients.
	s3, ts3 := newBackend()
	s4, ts4 := newBackend()
	inj := faultinject.New(faultinject.Config{
		ErrorProb:   0.05,
		LatencyProb: 0.05,
		Latency:     2 * time.Millisecond,
		Seed:        42,
	})
	crt, err := server.NewRouter(server.RouterConfig{
		Backends:  []string{ts3.URL, ts4.URL},
		Transport: inj.WrapTransport(nil),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: chaos router: %v", err))
	}
	crts := httptest.NewServer(crt)
	measureTopology(SatRouter2Chaos, crts.URL)
	crts.Close()
	crt.Close()
	ts3.Close()
	ts4.Close()
	s3.Close()
	s4.Close()
	return rows
}

// saturate hammers baseURL with n concurrent clients for satRuns windows
// and returns the event count of the best window, the window length, and
// what the clients saw along the way. Transport errors and retryable
// statuses back off and retry — under fault injection they are the
// expected texture of the run, not harness bugs — while anything else
// counts as a hard failure for the caller to assert on.
func saturate(baseURL string, data []byte, n int) (int64, time.Duration, satStats) {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConnsPerHost: n,
			// With Expect: 100-continue a budget-rejected request costs
			// headers, not a whole trace upload — both a realistic client
			// configuration for quota'd ingest and what keeps rejection
			// churn from drowning the measurement.
			ExpectContinueTimeout: time.Second,
		},
	}
	defer client.CloseIdleConnections()

	// Priming request: connectivity check and the per-check event count
	// (every request carries the same trace).
	evPerCheck := primeCheck(client, baseURL, data)

	var stop atomic.Bool
	var completed, retried, hard atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for attempt := 0; !stop.Load(); attempt++ {
				req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/check",
					bytes.NewReader(data))
				if err != nil {
					panic(err)
				}
				req.Header.Set("Content-Type", "application/octet-stream")
				req.Header.Set(server.DefaultTenantHeader, satTenant)
				// A fresh key per attempt spreads load across the ring; a
				// rejected attempt hops to another backend's budget.
				req.Header.Set(server.RouterTraceHeader, fmt.Sprintf("sat-%d-%d", id, attempt))
				req.Header.Set("Expect", "100-continue")
				resp, out := Attempt(client, req)
				if resp == nil && stop.Load() {
					// Shutdown races a connection teardown; not churn.
					return
				}
				switch out {
				case OutcomeOK:
					// Drain the report like a real client would.
					var rep aerodrome.Report
					json.NewDecoder(resp.Body).Decode(&rep)
					resp.Body.Close()
					completed.Add(1)
				case OutcomeRetryable:
					// Connection resets and injected transport faults are
					// retryable churn, same as a 429/503.
					if resp != nil {
						resp.Body.Close()
					}
					retried.Add(1)
					time.Sleep(satPolicy.Delay(resp))
				default:
					// Anything else is a client-visible hard failure: no
					// retry can excuse it, so count it and let the caller
					// fail the run.
					resp.Body.Close()
					hard.Add(1)
					time.Sleep(satPolicy.Delay(resp))
				}
			}
		}(c)
	}

	time.Sleep(satWarmup)
	var bestChecks int64
	window := satWindow
	for r := 0; r < satRuns; r++ {
		before := completed.Load()
		start := time.Now()
		time.Sleep(satWindow)
		elapsed := time.Since(start)
		checks := completed.Load() - before
		// Normalize to the nominal window so runs compare fairly even if
		// the sleep overshot.
		checks = int64(float64(checks) * float64(satWindow) / float64(elapsed))
		if checks > bestChecks {
			bestChecks = checks
		}
	}
	stop.Store(true)
	wg.Wait()
	return bestChecks * evPerCheck, window, satStats{retried: retried.Load(), hard: hard.Load()}
}

// primeCheck runs one admitted check and returns its event count. It
// retries transport errors and retryable statuses within satPrimeBudget —
// fault injection can hit the very first request — and panics only once
// the budget is spent or a non-retryable status arrives.
func primeCheck(client *http.Client, baseURL string, data []byte) int64 {
	deadline := time.Now().Add(satPrimeBudget)
	var lastErr error
	for time.Now().Before(deadline) {
		req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/check", bytes.NewReader(data))
		if err != nil {
			panic(err)
		}
		req.Header.Set(server.DefaultTenantHeader, satTenant)
		resp, out := Attempt(client, req)
		if resp == nil {
			lastErr = fmt.Errorf("transport error")
			time.Sleep(satPolicy.Delay(nil))
			continue
		}
		if out == OutcomeRetryable {
			lastErr = fmt.Errorf("HTTP %d", resp.StatusCode)
			resp.Body.Close()
			time.Sleep(satPolicy.Delay(resp))
			continue
		}
		if out != OutcomeOK {
			panic(fmt.Sprintf("bench: saturate prime: HTTP %d", resp.StatusCode))
		}
		var rep aerodrome.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			panic(fmt.Sprintf("bench: saturate prime: %v", err))
		}
		resp.Body.Close()
		if !rep.Serializable {
			panic(fmt.Sprintf("bench: saturate prime: unexpected violation %v", rep.Violation))
		}
		return rep.Events
	}
	panic(fmt.Sprintf("bench: saturate prime: no admitted check within %v (last: %v)", satPrimeBudget, lastErr))
}
