package bench

import (
	"fmt"
	"io"

	"aerodrome/internal/core"
	"aerodrome/internal/testutil"
	"aerodrome/internal/trace"
)

// figure describes one of the paper's worked examples.
type figure struct {
	title  string
	trace  *trace.Trace
	dim    int
	tracks []clockTrack
}

// clockTrack is one column of a figure's clock table.
type clockTrack struct {
	label string
	read  func(b *core.Basic) fmt.Stringer
}

func threadTrack(label string, t trace.ThreadID, dim int) clockTrack {
	return clockTrack{label: label, read: func(b *core.Basic) fmt.Stringer {
		return fixed{b.ThreadClock(t), dim}
	}}
}

func writeTrack(label string, x trace.VarID, dim int) clockTrack {
	return clockTrack{label: label, read: func(b *core.Basic) fmt.Stringer {
		return fixed{b.WriteClock(x), dim}
	}}
}

type fixed struct {
	c   interface{ Truncated(int) string }
	dim int
}

func (f fixed) String() string { return f.c.Truncated(f.dim) }

// Figures replays Algorithm 1 on the paper's example traces ρ2, ρ3 and ρ4
// and prints the per-event clock evolution in the layout of Figures 5–7,
// ending with the violation report. This is the textual regeneration of the
// paper's worked figures; the exact clock values are also asserted by
// internal/core's golden tests.
func Figures(w io.Writer) {
	figs := []figure{
		{
			title: "Figure 5 — AeroDrome on trace ρ2 (violation at e6)",
			trace: testutil.Rho2(), dim: 2,
			tracks: []clockTrack{
				threadTrack("Ct1", 0, 2), threadTrack("Ct2", 1, 2),
				writeTrack("Wx", 0, 2), writeTrack("Wy", 1, 2),
			},
		},
		{
			title: "Figure 6 — AeroDrome on trace ρ3 (violation at the end event e7)",
			trace: testutil.Rho3(), dim: 2,
			tracks: []clockTrack{
				threadTrack("Ct1", 0, 2), threadTrack("Ct2", 1, 2),
				writeTrack("Wx", 0, 2), writeTrack("Wy", 1, 2),
			},
		},
		{
			title: "Figure 7 — AeroDrome on trace ρ4 (violation at e11)",
			trace: testutil.Rho4(), dim: 3,
			tracks: []clockTrack{
				threadTrack("Ct1", 0, 3), threadTrack("Ct2", 1, 3), threadTrack("Ct3", 2, 3),
				writeTrack("Wx", 0, 3), writeTrack("Wy", 1, 3), writeTrack("Wz", 2, 3),
			},
		},
	}
	for fi, f := range figs {
		if fi > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, f.title)
		fmt.Fprintf(w, "%-4s %-14s", "e", "event")
		for _, tk := range f.tracks {
			fmt.Fprintf(w, " %-10s", tk.label)
		}
		fmt.Fprintln(w)
		eng := core.NewBasic()
		for i, ev := range f.trace.Events {
			v := eng.Process(ev)
			fmt.Fprintf(w, "e%-3d %-14s", i+1, ev)
			for _, tk := range f.tracks {
				fmt.Fprintf(w, " %-10s", tk.read(eng))
			}
			fmt.Fprintln(w)
			if v != nil {
				fmt.Fprintf(w, "     ⇒ conflict serializability violation (%s check, thread t%d)\n",
					v.Check, v.ActiveThread+1)
				break
			}
		}
	}
}
