package bench

// Machine-readable benchmarking: the thread-scaling grid and a JSON report
// format shared by the BENCH_baseline.json / BENCH_after.json artifacts at
// the repository root. The baseline file is produced by running this same
// harness against the seed engine (same configs, same seed, same schema),
// so ns/event and allocs/event are directly comparable across PRs.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/workload"
)

// BenchRow is one (workload, engine) measurement of the JSON report.
type BenchRow struct {
	Workload       string  `json:"workload"`
	Pattern        string  `json:"pattern"`
	Threads        int     `json:"threads"`
	Engine         string  `json:"engine"`
	Events         int64   `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	Runs           int     `json:"runs"`

	// Load-harness columns, populated only on load-* rows (internal/loadgen):
	// end-to-end latency quantiles measured from each arrival's *scheduled*
	// time (so queueing delay inside the harness counts against the server,
	// never hidden by a blocked generator), plus the open-loop accounting
	// those quantiles depend on. OmissionDebt counts arrivals the harness
	// could not dispatch on schedule — reported, not silently absorbed.
	P50Ms        float64 `json:"p50_ms,omitempty"`
	P99Ms        float64 `json:"p99_ms,omitempty"`
	P999Ms       float64 `json:"p999_ms,omitempty"`
	Arrivals     int64   `json:"arrivals,omitempty"`
	Completed    int64   `json:"completed,omitempty"`
	Rejected     int64   `json:"rejected,omitempty"`
	Failovers    int64   `json:"failovers,omitempty"`
	OmissionDebt int64   `json:"omission_debt,omitempty"`
	// GaveUp counts arrivals that exhausted retries; GaveUpMaxMs is the
	// longest such arrival was held before the harness stopped retrying.
	// Separate from the completion quantiles above so an overloaded run
	// cannot shed its slowest arrivals into invisibility.
	GaveUp      int64   `json:"gave_up,omitempty"`
	GaveUpMaxMs float64 `json:"gave_up_max_ms,omitempty"`

	// Engine-introspection columns, populated when the engine implements
	// core.StatsReporter (zero-valued counters are omitted — a missing
	// column reads as "didn't happen", which is exactly what it means).
	// They make regressions in the internal rates visible next to the
	// ns/event they explain: a row whose ns_per_event grew and whose
	// epoch_hit_rate fell tells the whole story in two columns.
	EpochHitRate     float64 `json:"epoch_hit_rate,omitempty"`
	EpochHits        int64   `json:"epoch_hits,omitempty"`
	EpochMisses      int64   `json:"epoch_misses,omitempty"`
	SparsePromotions int64   `json:"sparse_promotions,omitempty"`
	TreeDemotions    int64   `json:"tree_demotions,omitempty"`
	TreeRepromotions int64   `json:"tree_repromotions,omitempty"`
	WidthPromotions  int64   `json:"width_promotions,omitempty"`
}

// BenchReport is the top-level JSON document.
type BenchReport struct {
	Label     string     `json:"label"`
	GoVersion string     `json:"go_version"`
	Rows      []BenchRow `json:"rows"`
	// GateRows is the pinned CI perf-regression baseline (see gate.go):
	// a small row subset re-measured by the bench-gate CI job and compared
	// against these numbers. Refreshed by `experiments -run bench
	// -update-gate`, deliberately separate from Rows so the historical
	// seed-engine measurements stay untouched.
	GateRows []BenchRow `json:"gate_rows,omitempty"`
}

// ThreadScalingConfigs returns the thread-heavy workload grid used by the
// BENCH JSON artifacts: the sharded and chain patterns at T ∈ {8, 64, 256}.
// Per-event engine cost that is linear in thread count shows up as rows
// whose ns/event grow with T even though the trace shape is otherwise
// fixed.
func ThreadScalingConfigs(events int64) []workload.Config {
	var out []workload.Config
	for _, pattern := range []workload.Pattern{workload.PatternSharded, workload.PatternChain} {
		for _, threads := range []int{8, 64, 256} {
			out = append(out, workload.Config{
				Name:    fmt.Sprintf("%s-t%d", pattern, threads),
				Threads: threads, Vars: 8192, Locks: 32,
				Events: events, OpsPerTxn: 4, Pattern: pattern,
				TxnFraction: 0.5, Inject: workload.ViolationNone, Seed: 42,
			})
		}
	}
	return out
}

// MeasureRow times spec on cfg: one warmup run, then runs timed runs
// keeping the fastest, plus one instrumented run for allocation counts.
// The workload must be violation-free (a violation aborts the stream and
// would skew per-event numbers); MeasureRow panics if one fires.
func MeasureRow(spec EngineSpec, cfg workload.Config, runs int) BenchRow {
	if runs < 1 {
		runs = 1
	}
	row := BenchRow{
		Workload: cfg.Name,
		Pattern:  string(cfg.Pattern),
		Threads:  cfg.Threads,
		Engine:   spec.Label,
		Runs:     runs,
	}

	var lastEng core.Engine
	run := func() int64 {
		eng := spec.New()
		v, n := core.Run(eng, workload.New(cfg))
		if v != nil {
			panic(fmt.Sprintf("bench: %s on %s: unexpected violation %v", spec.Label, cfg.Name, v))
		}
		lastEng = eng
		return n
	}

	row.Events = run() // warmup

	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		run()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	row.NsPerEvent = float64(best.Nanoseconds()) / float64(row.Events)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	row.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(row.Events)
	row.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(row.Events)

	// Counters are deterministic across runs (same seed, same trace), so
	// the instrumented run's engine speaks for all of them.
	if r, ok := lastEng.(core.StatsReporter); ok {
		s := r.Stats()
		row.EpochHitRate = s.EpochHitRate()
		row.EpochHits = s.EpochHits
		row.EpochMisses = s.EpochMisses
		row.SparsePromotions = s.SparsePromotions
		row.TreeDemotions = s.TreeDemotions
		row.TreeRepromotions = s.TreeRepromotions
		row.WidthPromotions = s.WidthPromotions
	}
	return row
}

// MeasureReport measures every (cfg, engine) pair and assembles the report.
func MeasureReport(label string, engines []EngineSpec, cfgs []workload.Config, runs int) BenchReport {
	rep := BenchReport{Label: label, GoVersion: runtime.Version()}
	for _, cfg := range cfgs {
		for _, spec := range engines {
			rep.Rows = append(rep.Rows, MeasureRow(spec, cfg, runs))
		}
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
