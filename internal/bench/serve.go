package bench

// Server benchmarking: end-to-end cost of one trace check through the
// aerodromed HTTP front end — connection, request framing, pipelined
// parse+check, JSON report — against the same bytes through the in-process
// pipelined reader (the ingest-pipe row). The delta is the service tax; a
// regression here that does not show in ingest-pipe is in the HTTP layer,
// not the checker.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"aerodrome"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/server"
	"aerodrome/internal/workload"
)

// ServeCheck is the engine label of the server row.
const ServeCheck = "serve-check"

// MeasureServeRows renders cfg's trace to an in-memory STD log once,
// boots an in-process aerodromed (httptest transport, real HTTP stack)
// and measures POST /v1/check round trips with the default (flat
// Optimized) engine — the same engine and bytes as the ingest rows, so
// serve-check vs ingest-pipe isolates the HTTP layer. Rows follow the
// MeasureRow protocol (warmup, best of runs, one instrumented run).
func MeasureServeRows(cfg workload.Config, runs int) []BenchRow {
	var buf bytes.Buffer
	if _, err := rapidio.WriteSource(&buf, workload.New(cfg)); err != nil {
		panic(fmt.Sprintf("bench: rendering %s: %v", cfg.Name, err))
	}
	data := buf.Bytes()

	srv, err := server.New(server.Config{Algorithm: aerodrome.Optimized})
	if err != nil {
		panic(fmt.Sprintf("bench: server: %v", err))
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	run := func() int64 {
		resp, err := client.Post(ts.URL+"/v1/check", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			panic(fmt.Sprintf("bench: serve %s: %v", cfg.Name, err))
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("bench: serve %s: HTTP %d", cfg.Name, resp.StatusCode))
		}
		var rep aerodrome.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			panic(fmt.Sprintf("bench: serve %s: %v", cfg.Name, err))
		}
		if !rep.Serializable {
			panic(fmt.Sprintf("bench: serve %s: unexpected violation %v", cfg.Name, rep.Violation))
		}
		return rep.Events
	}

	row := BenchRow{
		Workload: cfg.Name,
		Pattern:  string(cfg.Pattern),
		Threads:  cfg.Threads,
		Engine:   ServeCheck,
		Runs:     runs,
	}
	row.Events = run() // warmup
	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		run()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	row.NsPerEvent = float64(best.Nanoseconds()) / float64(row.Events)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	row.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(row.Events)
	row.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(row.Events)
	return []BenchRow{row}
}
