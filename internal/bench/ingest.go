package bench

// Ingest benchmarking: end-to-end parse+check cost over an in-memory STD
// log, sequential vs. pipelined. The engine-only rows of the thread-scaling
// grid feed events from an in-memory generator and therefore measure pure
// checking; these rows measure the ingestion path a service actually runs —
// tokenization, interning and checking — and pin the pipelined reader
// against its sequential equivalent on identical bytes.

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"aerodrome/internal/core"
	"aerodrome/internal/pipeline"
	"aerodrome/internal/race"
	"aerodrome/internal/rapidio"
	"aerodrome/internal/trace"
	"aerodrome/internal/workload"
)

// IngestSeq, IngestPipe and IngestDual are the engine labels of the
// ingest rows. IngestDual is the pipelined reader driving the atomicity
// engine plus the happens-before race detector off one parse; against
// IngestPipe it prices the second analysis (on race-free patterns the
// detector consumes the whole stream, elsewhere it stops at its latch).
const (
	IngestSeq  = "ingest-seq"
	IngestPipe = "ingest-pipe"
	IngestDual = "dual-analysis"
)

// benchRaceSink adapts the race detector to the pipeline sink surface.
type benchRaceSink struct{ d *race.Detector }

func (s benchRaceSink) Process(e trace.Event) { s.d.Process(e) }
func (s benchRaceSink) Done() bool            { return s.d.Violation() != nil }

// MeasureIngestRows renders cfg's trace to an in-memory STD log once and
// measures checking it with the default (flat Optimized) engine through
// the sequential reader and through the pipelined reader: same bytes, same
// engine, so the delta is the ingestion structure alone. Rows follow the
// MeasureRow protocol (warmup, best of runs, one instrumented run).
func MeasureIngestRows(cfg workload.Config, runs int) []BenchRow {
	var buf bytes.Buffer
	if _, err := rapidio.WriteSource(&buf, workload.New(cfg)); err != nil {
		panic(fmt.Sprintf("bench: rendering %s: %v", cfg.Name, err))
	}
	data := buf.Bytes()

	seq := func() int64 {
		eng := core.NewOptimized()
		rd := rapidio.NewReader(bytes.NewReader(data))
		v, n := core.Run(eng, rd)
		if v != nil {
			panic(fmt.Sprintf("bench: ingest %s: unexpected violation %v", cfg.Name, v))
		}
		if err := rd.Err(); err != nil {
			panic(fmt.Sprintf("bench: ingest %s: %v", cfg.Name, err))
		}
		return n
	}
	pipe := func() int64 {
		eng := core.NewOptimized()
		v, n, err := pipeline.Run(eng, rapidio.NewReader(bytes.NewReader(data)), pipeline.Config{})
		if v != nil {
			panic(fmt.Sprintf("bench: ingest %s: unexpected violation %v", cfg.Name, v))
		}
		if err != nil {
			panic(fmt.Sprintf("bench: ingest %s: %v", cfg.Name, err))
		}
		return n
	}
	dual := func() int64 {
		eng := core.NewOptimized()
		sink := benchRaceSink{d: race.New()}
		v, n, err := pipeline.RunMulti(eng, []pipeline.Sink{sink}, rapidio.NewReader(bytes.NewReader(data)), pipeline.Config{})
		if v != nil {
			panic(fmt.Sprintf("bench: ingest %s: unexpected violation %v", cfg.Name, v))
		}
		if err != nil {
			panic(fmt.Sprintf("bench: ingest %s: %v", cfg.Name, err))
		}
		return n
	}

	var rows []BenchRow
	for _, m := range []struct {
		label string
		run   func() int64
	}{
		{IngestSeq, seq},
		{IngestPipe, pipe},
		{IngestDual, dual},
	} {
		row := BenchRow{
			Workload: cfg.Name,
			Pattern:  string(cfg.Pattern),
			Threads:  cfg.Threads,
			Engine:   m.label,
			Runs:     runs,
		}
		row.Events = m.run() // warmup
		best := time.Duration(1<<63 - 1)
		for i := 0; i < runs; i++ {
			start := time.Now()
			m.run()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		row.NsPerEvent = float64(best.Nanoseconds()) / float64(row.Events)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		m.run()
		runtime.ReadMemStats(&after)
		row.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(row.Events)
		row.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(row.Events)
		rows = append(rows, row)
	}
	return rows
}
