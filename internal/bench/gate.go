package bench

// The CI perf-regression gate. None of the repository's perf work (PR 1–4)
// was protected by CI before this: a refactor could quietly triple the hot
// path and every test would stay green. The gate re-measures a pinned,
// fast row subset — the flat engine on sharded-t64 (pure checking) and
// ingest-pipe on the same workload (tokenize+check, the path a service
// request actually runs) — and compares ns/event and allocs/event against
// the gate_rows baseline checked into BENCH_baseline.json.
//
// Thresholds are deliberately generous: CI machines differ from the box
// that recorded the baseline, and same-machine numbers drift ~20% between
// sessions (see ROADMAP). A 2× time budget never fires on noise but
// catches the regressions worth catching (the calibration demo is a 3×
// slowdown patched into the flat engine — it fails the gate; see the CI
// workflow). allocs/event is near machine-independent, so its 2× budget
// is effectively a structural-regression detector. When CI hardware
// changes class, refresh the baseline with
// `experiments -run bench -update-gate`.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"aerodrome/internal/core"
	"aerodrome/internal/workload"
)

const (
	// GateNsThreshold fails the gate when measured ns/event exceeds
	// baseline × this factor.
	GateNsThreshold = 2.0
	// GateAllocsThreshold is the same budget for allocs/event. Baseline
	// zero-alloc rows get an absolute floor instead (see gateAllocsOK).
	GateAllocsThreshold = 2.0
	// gateEvents/gateRuns keep one gate run under ~10s of CI time.
	gateEvents = 200_000
	gateRuns   = 3
)

// gateWorkload returns the pinned workload of the gate rows.
func gateWorkload() workload.Config {
	for _, cfg := range ThreadScalingConfigs(gateEvents) {
		if cfg.Name == "sharded-t64" {
			return cfg
		}
	}
	panic("bench: sharded-t64 missing from the thread-scaling grid")
}

// MeasureGateRows measures the pinned gate subset: the flat Optimized
// engine (engine-only), the pipelined ingest path, and the speculative
// intra-trace parallel checker at four workers, all on sharded-t64.
// The par row guards the partitioner's constant factors (scan, taint
// tracking, projection) rather than a speedup claim — the 2× budget is
// against this row's own baseline, which already absorbs whatever core
// count the baseline machine had.
func MeasureGateRows() []BenchRow {
	cfg := gateWorkload()
	rows := []BenchRow{MeasureRow(AeroDromeVariant(core.AlgoOptimized), cfg, gateRuns)}
	for _, r := range MeasureIngestRows(cfg, gateRuns) {
		if r.Engine == IngestPipe {
			rows = append(rows, r)
		}
	}
	rows = append(rows, MeasureParRow(cfg, 4, gateRuns))
	return rows
}

// gateAllocsOK applies the allocation budget. Rows can legitimately sit
// near zero allocs/event where a ratio is numerically meaningless, so
// below an absolute floor of 0.5 allocs/event the row always passes.
func gateAllocsOK(baseline, measured float64) bool {
	if measured < 0.5 {
		return true
	}
	return measured <= baseline*GateAllocsThreshold
}

// RunGate re-measures the gate rows and compares them against the
// gate_rows baseline in the report at baselinePath, printing a verdict
// table to w. It returns an error (CI failure) when any row breaches a
// threshold, or when the baseline has no gate rows.
func RunGate(w io.Writer, baselinePath string) error {
	baseline, err := readReport(baselinePath)
	if err != nil {
		return err
	}
	if len(baseline.GateRows) == 0 {
		return fmt.Errorf("bench: %s has no gate_rows; run `experiments -run bench -update-gate` and commit the result", baselinePath)
	}
	base := map[string]BenchRow{}
	for _, r := range baseline.GateRows {
		base[r.Workload+"/"+r.Engine] = r
	}

	fmt.Fprintf(w, "bench gate vs %s (time budget %.1fx, alloc budget %.1fx)\n\n",
		baselinePath, GateNsThreshold, GateAllocsThreshold)
	fmt.Fprintf(w, "| row | ns/event (base → now) | ratio | allocs/event (base → now) | verdict |\n|---|---|---|---|---|\n")
	var breaches []string
	for _, m := range MeasureGateRows() {
		key := m.Workload + "/" + m.Engine
		b, ok := base[key]
		if !ok {
			return fmt.Errorf("bench: baseline gate_rows missing %s; refresh with -update-gate", key)
		}
		ratio := m.NsPerEvent / b.NsPerEvent
		verdict := "ok"
		if ratio > GateNsThreshold {
			verdict = "FAIL time"
			breaches = append(breaches, fmt.Sprintf("%s: %.0f ns/event vs baseline %.0f (%.2fx > %.1fx)",
				key, m.NsPerEvent, b.NsPerEvent, ratio, GateNsThreshold))
		}
		if !gateAllocsOK(b.AllocsPerEvent, m.AllocsPerEvent) {
			verdict = "FAIL allocs"
			breaches = append(breaches, fmt.Sprintf("%s: %.2f allocs/event vs baseline %.2f (> %.1fx)",
				key, m.AllocsPerEvent, b.AllocsPerEvent, GateAllocsThreshold))
		}
		fmt.Fprintf(w, "| %s | %.0f → %.0f | %.2fx | %.2f → %.2f | %s |\n",
			key, b.NsPerEvent, m.NsPerEvent, ratio, b.AllocsPerEvent, m.AllocsPerEvent, verdict)
	}
	fmt.Fprintln(w)
	if len(breaches) > 0 {
		for _, b := range breaches {
			fmt.Fprintln(w, "BREACH:", b)
		}
		return fmt.Errorf("bench: perf gate failed (%d breach(es))", len(breaches))
	}
	fmt.Fprintln(w, "bench gate passed")
	return nil
}

// UpdateGateBaseline re-measures the gate rows and writes them into the
// gate_rows field of the report at path, leaving every other field —
// notably the historical seed-engine Rows — untouched.
func UpdateGateBaseline(w io.Writer, path string) error {
	rep, err := readReport(path)
	if err != nil {
		return err
	}
	rep.GateRows = MeasureGateRows()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, r := range rep.GateRows {
		fmt.Fprintf(w, "gate baseline %s/%s: %.0f ns/event, %.2f allocs/event\n",
			r.Workload, r.Engine, r.NsPerEvent, r.AllocsPerEvent)
	}
	return nil
}

// readReport loads a BenchReport JSON file.
func readReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &rep, nil
}
